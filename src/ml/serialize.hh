/**
 * @file
 * Plain-text serialization for the ML substrate. Calibrating the
 * estimators (template characterization + ANN training) is a one-off
 * per device + toolchain; persisting the fitted models lets tools
 * skip recalibration across processes. The format is line-oriented
 * and versioned: `<tag> <count> v1` headers followed by whitespace-
 * separated doubles, written with max_digits10 so round-trips are
 * bit-exact.
 */

#ifndef DHDL_ML_SERIALIZE_HH
#define DHDL_ML_SERIALIZE_HH

#include <iostream>
#include <string>
#include <vector>

#include "ml/linreg.hh"
#include "ml/mlp.hh"
#include "ml/scaler.hh"

namespace dhdl::ml {

/** Write a tagged vector of doubles. */
void writeDoubles(std::ostream& os, const std::string& tag,
                  const std::vector<double>& v);

/** Read a tagged vector of doubles; throws FatalError on mismatch. */
std::vector<double> readDoubles(std::istream& is,
                                const std::string& tag);

void saveLinear(std::ostream& os, const LinearModel& m);
LinearModel loadLinear(std::istream& is);

void saveMlp(std::ostream& os, const Mlp& net);
Mlp loadMlp(std::istream& is);

void saveScaler(std::ostream& os, const MinMaxScaler& s);
MinMaxScaler loadScaler(std::istream& is);

} // namespace dhdl::ml

#endif // DHDL_ML_SERIALIZE_HH

/**
 * @file
 * Plain-text serialization for the ML substrate. Calibrating the
 * estimators (template characterization + ANN training) is a one-off
 * per device + toolchain; persisting the fitted models lets tools
 * skip recalibration across processes. The format is line-oriented
 * and versioned: a `# dhdl-model v1` magic line, then a
 * `<tag> <count> v1` record header, then whitespace-separated
 * doubles written with max_digits10 so round-trips are bit-exact.
 *
 * Robustness: loaders validate everything before allocating or
 * constructing — unknown magic versions, tag mismatches, absurd
 * element counts (a corrupted count line must not become a
 * multi-gigabyte allocation), non-integral or out-of-range MLP layer
 * sizes, and truncated payloads are all rejected with a FatalError
 * carrying DiagCode::ParseError; a short read can never yield
 * uninitialized doubles or UB. Files written before the magic line
 * existed (starting directly with the record header) still load.
 * The tryLoad*() wrappers return the failure as a structured Status
 * for callers that must not throw.
 */

#ifndef DHDL_ML_SERIALIZE_HH
#define DHDL_ML_SERIALIZE_HH

#include <iostream>
#include <string>
#include <vector>

#include "core/diag.hh"
#include "ml/linreg.hh"
#include "ml/mlp.hh"
#include "ml/scaler.hh"

namespace dhdl::ml {

/** Hard ceiling on doubles per record: rejects corrupted counts. */
inline constexpr size_t kMaxModelDoubles = 16u << 20;

/** Write a tagged vector of doubles (with the magic line). */
void writeDoubles(std::ostream& os, const std::string& tag,
                  const std::vector<double>& v);

/**
 * Read a tagged vector of doubles. Throws FatalError
 * (DiagCode::ParseError) on unknown magic version, tag mismatch,
 * out-of-range count, or truncated payload.
 */
std::vector<double> readDoubles(std::istream& is,
                                const std::string& tag);

void saveLinear(std::ostream& os, const LinearModel& m);
LinearModel loadLinear(std::istream& is);

void saveMlp(std::ostream& os, const Mlp& net);
Mlp loadMlp(std::istream& is);

void saveScaler(std::ostream& os, const MinMaxScaler& s);
MinMaxScaler loadScaler(std::istream& is);

/**
 * Non-throwing loaders: the ParseError comes back as an error
 * Status instead of an exception, for callers (tools, services)
 * where a damaged calibration file must degrade, not die.
 */
Status tryLoadLinear(std::istream& is, LinearModel& out);
Status tryLoadMlp(std::istream& is, Mlp& out);
Status tryLoadScaler(std::istream& is, MinMaxScaler& out);

/**
 * A complete surrogate artifact: the feature and target scalers plus
 * the per-target models, bundled so `dhdlc explore --strategy
 * surrogate --save-model/--load-model` moves one self-validating
 * file. Either the Mlp or the LinearModel vector is populated
 * (`useMlp` says which); models are per-target, in target order.
 */
struct SurrogateBundle {
    MinMaxScaler features;
    MinMaxScaler targets;
    bool useMlp = true;
    std::vector<Mlp> nets;
    std::vector<LinearModel> linears;

    size_t
    numModels() const
    {
        return useMlp ? nets.size() : linears.size();
    }
};

/**
 * Bundle framing hardens the whole artifact, not just each record: a
 * `# dhdl-surrogate v1 <bytes> <crc32>` header carries the byte count
 * and IEEE CRC-32 of the serialized body, verified before any record
 * is parsed. Truncation, bit flips and foreign files all fail as
 * structured ParseErrors (exercised by the misuse corpus), never as
 * partial loads.
 */
void saveSurrogateBundle(std::ostream& os, const SurrogateBundle& b);

/** Load and fully validate a bundle; throws FatalError(ParseError). */
SurrogateBundle loadSurrogateBundle(std::istream& is);

/** Non-throwing form of loadSurrogateBundle(). */
Status tryLoadSurrogateBundle(std::istream& is, SurrogateBundle& out);

} // namespace dhdl::ml

#endif // DHDL_ML_SERIALIZE_HH

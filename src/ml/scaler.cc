#include "ml/scaler.hh"

#include <algorithm>
#include <limits>

#include "core/error.hh"

namespace dhdl::ml {

void
MinMaxScaler::fit(const std::vector<std::vector<double>>& rows)
{
    require(!rows.empty(), "scaler fit on empty sample set");
    size_t cols = rows.front().size();
    lo_.assign(cols, std::numeric_limits<double>::infinity());
    hi_.assign(cols, -std::numeric_limits<double>::infinity());
    for (const auto& r : rows) {
        require(r.size() == cols, "ragged sample matrix");
        for (size_t c = 0; c < cols; ++c) {
            lo_[c] = std::min(lo_[c], r[c]);
            hi_[c] = std::max(hi_[c], r[c]);
        }
    }
    for (size_t c = 0; c < cols; ++c) {
        if (hi_[c] - lo_[c] < 1e-12)
            hi_[c] = lo_[c] + 1.0; // constant column: map to 0
    }
}

void
MinMaxScaler::transform(std::vector<double>& row) const
{
    require(row.size() == lo_.size(), "scaler arity mismatch");
    for (size_t c = 0; c < row.size(); ++c)
        row[c] = scaleColumn(c, row[c]);
}

std::vector<double>
MinMaxScaler::transformed(const std::vector<double>& row) const
{
    auto out = row;
    transform(out);
    return out;
}

void
MinMaxScaler::transformInto(const std::vector<double>& row,
                            std::vector<double>& out) const
{
    require(row.size() == lo_.size(), "scaler arity mismatch");
    out.resize(row.size());
    for (size_t c = 0; c < row.size(); ++c)
        out[c] = scaleColumn(c, row[c]);
}

void
MinMaxScaler::transformBatch(const double* rows, size_t n,
                             double* out) const
{
    const size_t cols = lo_.size();
    for (size_t p = 0; p < n; ++p)
        for (size_t c = 0; c < cols; ++c)
            out[p * cols + c] = scaleColumn(c, rows[p * cols + c]);
}

double
MinMaxScaler::scaleColumn(size_t col, double v) const
{
    return (v - lo_[col]) / (hi_[col] - lo_[col]);
}

double
MinMaxScaler::inverseColumn(size_t col, double v) const
{
    return lo_[col] + v * (hi_[col] - lo_[col]);
}

} // namespace dhdl::ml

#include "ml/rng.hh"

#include <cmath>

namespace dhdl::ml {

uint64_t
hashMix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

uint64_t
Rng::next()
{
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
Rng::uniform()
{
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    if (hi <= lo)
        return lo;
    uint64_t span = uint64_t(hi - lo) + 1;
    return lo + int64_t(next() % span);
}

double
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

} // namespace dhdl::ml

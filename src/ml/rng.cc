#include "ml/rng.hh"

#include <cmath>

namespace dhdl::ml {

uint64_t
hashMix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

} // namespace dhdl::ml

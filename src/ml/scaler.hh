/**
 * @file
 * Min-max feature scaling for neural-network inputs and targets.
 * The design-sample features span several orders of magnitude (raw
 * LUT counts vs BRAM counts), so both are normalized to [0, 1]
 * before training, mirroring standard Encog practice.
 */

#ifndef DHDL_ML_SCALER_HH
#define DHDL_ML_SCALER_HH

#include <cstddef>
#include <vector>

namespace dhdl::ml {

/** Per-column min-max scaler mapping features to [0, 1]. */
class MinMaxScaler
{
  public:
    /** Fit column ranges from a row-major sample matrix. */
    void fit(const std::vector<std::vector<double>>& rows);

    /** Scale one row in place. */
    void transform(std::vector<double>& row) const;

    /** Scale a copy of one row. */
    std::vector<double> transformed(const std::vector<double>& row) const;

    /** Scale one row into a caller-owned buffer (no allocation). */
    void transformInto(const std::vector<double>& row,
                       std::vector<double>& out) const;

    /**
     * Scale n row-major rows (n x columns()) into `out` (same
     * shape). Each element goes through the exact scaleColumn()
     * expression, so batched scaling is bit-identical to row-at-a-
     * time scaling.
     */
    void transformBatch(const double* rows, size_t n, double* out) const;

    /** Invert the scaling of one column value. */
    double inverseColumn(size_t col, double v) const;

    /** Forward-scale one column value. */
    double scaleColumn(size_t col, double v) const;

    size_t columns() const { return lo_.size(); }

    const std::vector<double>& lowerBounds() const { return lo_; }
    const std::vector<double>& upperBounds() const { return hi_; }

    /** Reconstruct a fitted scaler from persisted bounds. */
    static MinMaxScaler
    fromBounds(std::vector<double> lo, std::vector<double> hi)
    {
        MinMaxScaler s;
        s.lo_ = std::move(lo);
        s.hi_ = std::move(hi);
        return s;
    }

  private:
    std::vector<double> lo_;
    std::vector<double> hi_;
};

} // namespace dhdl::ml

#endif // DHDL_ML_SCALER_HH

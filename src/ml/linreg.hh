/**
 * @file
 * Ordinary least-squares linear regression via the normal equations
 * (with a small ridge term for conditioning). Used to (a) fit the
 * per-template analytical area models from characterization runs
 * ("we create analytical models of each DHDL template's resource
 * requirements", Section IV-B) and (b) fit the BRAM-duplication
 * estimate as a linear function of routing LUTs (Section IV-B2).
 */

#ifndef DHDL_ML_LINREG_HH
#define DHDL_ML_LINREG_HH

#include <cstddef>
#include <vector>

namespace dhdl::ml {

/** Multivariate linear model y = w . x + b. */
class LinearModel
{
  public:
    /**
     * Fit from row-major features X and targets y with L2 ridge
     * strength lambda. Throws FatalError on dimension mismatch.
     */
    void fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y, double lambda = 1e-9);

    /** Predict one sample. */
    double predict(const std::vector<double>& x) const;

    /** Predict a single-feature model without building a vector. */
    double predict1(double x) const;

    /**
     * Predict n row-major samples (n x cols) into `out`. The arity
     * check runs once for the whole batch; every row then follows the
     * exact predict() accumulation order, so batched prediction is
     * bit-identical to n scalar calls.
     */
    void predictBatch(const double* xs, size_t n, size_t cols,
                      double* out) const;

    const std::vector<double>& weights() const { return w_; }
    double bias() const { return b_; }

    /** Reconstruct a fitted model from persisted coefficients. */
    static LinearModel
    fromWeights(std::vector<double> w, double b)
    {
        LinearModel m;
        m.w_ = std::move(w);
        m.b_ = b;
        return m;
    }

    /** Coefficient of determination on a dataset. */
    double r2(const std::vector<std::vector<double>>& x,
              const std::vector<double>& y) const;

  private:
    std::vector<double> w_;
    double b_ = 0.0;
};

/**
 * Solve the dense symmetric positive-definite system A x = b in place
 * with Gaussian elimination and partial pivoting. Exposed for tests.
 */
std::vector<double> solveDense(std::vector<std::vector<double>> a,
                               std::vector<double> b);

} // namespace dhdl::ml

#endif // DHDL_ML_LINREG_HH

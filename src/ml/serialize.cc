#include "ml/serialize.hh"

#include <iomanip>
#include <limits>

#include "core/error.hh"

namespace dhdl::ml {

void
writeDoubles(std::ostream& os, const std::string& tag,
             const std::vector<double>& v)
{
    os << tag << " " << v.size() << " v1\n";
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (size_t i = 0; i < v.size(); ++i)
        os << v[i] << (i + 1 == v.size() ? "\n" : " ");
    if (v.empty())
        os << "\n";
}

std::vector<double>
readDoubles(std::istream& is, const std::string& tag)
{
    std::string got_tag, version;
    size_t count = 0;
    is >> got_tag >> count >> version;
    require(bool(is), "truncated model file reading '" + tag + "'");
    require(got_tag == tag, "model file tag mismatch: expected '" +
                                tag + "', got '" + got_tag + "'");
    require(version == "v1",
            "unsupported model format version " + version);
    std::vector<double> v(count);
    for (auto& x : v)
        is >> x;
    require(bool(is), "truncated payload for '" + tag + "'");
    return v;
}

void
saveLinear(std::ostream& os, const LinearModel& m)
{
    auto coeffs = m.weights();
    coeffs.push_back(m.bias());
    writeDoubles(os, "linear", coeffs);
}

LinearModel
loadLinear(std::istream& is)
{
    auto coeffs = readDoubles(is, "linear");
    require(!coeffs.empty(), "linear model payload empty");
    double b = coeffs.back();
    coeffs.pop_back();
    return LinearModel::fromWeights(std::move(coeffs), b);
}

void
saveMlp(std::ostream& os, const Mlp& net)
{
    std::vector<double> layers(net.layers().begin(),
                               net.layers().end());
    writeDoubles(os, "mlp_layers", layers);
    writeDoubles(os, "mlp_weights", net.params());
}

Mlp
loadMlp(std::istream& is)
{
    auto layer_doubles = readDoubles(is, "mlp_layers");
    std::vector<int> layers;
    layers.reserve(layer_doubles.size());
    for (double d : layer_doubles)
        layers.push_back(int(d));
    Mlp net(layers);
    auto weights = readDoubles(is, "mlp_weights");
    require(weights.size() == net.numWeights(),
            "MLP weight count mismatch in model file");
    net.params() = std::move(weights);
    return net;
}

void
saveScaler(std::ostream& os, const MinMaxScaler& s)
{
    writeDoubles(os, "scaler_lo", s.lowerBounds());
    writeDoubles(os, "scaler_hi", s.upperBounds());
}

MinMaxScaler
loadScaler(std::istream& is)
{
    auto lo = readDoubles(is, "scaler_lo");
    auto hi = readDoubles(is, "scaler_hi");
    require(lo.size() == hi.size(), "scaler bound size mismatch");
    return MinMaxScaler::fromBounds(std::move(lo), std::move(hi));
}

} // namespace dhdl::ml

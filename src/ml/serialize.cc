#include "ml/serialize.hh"

#include <cmath>
#include <iomanip>
#include <limits>

#include "core/error.hh"

namespace dhdl::ml {

namespace {

constexpr const char* kMagic = "# dhdl-model v1";
constexpr const char* kMagicPrefix = "# dhdl-model";

/** require() that always classifies the failure as a parse error. */
void
check(bool cond, const std::string& msg)
{
    if (!cond)
        fatal(msg, DiagCode::ParseError);
}

/**
 * Consume comment lines before a record header, validating any
 * magic line against the versions this reader understands. Files
 * from before the magic existed start straight at the record header
 * and are accepted as-is.
 */
void
skipHeaderLines(std::istream& is)
{
    while (is >> std::ws && is.peek() == '#') {
        std::string line;
        std::getline(is, line);
        if (line.compare(0, std::string(kMagicPrefix).size(),
                         kMagicPrefix) == 0)
            check(line == kMagic,
                  "unsupported model file version: '" + line + "'");
    }
}

} // namespace

void
writeDoubles(std::ostream& os, const std::string& tag,
             const std::vector<double>& v)
{
    os << kMagic << "\n";
    os << tag << " " << v.size() << " v1\n";
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (size_t i = 0; i < v.size(); ++i)
        os << v[i] << (i + 1 == v.size() ? "\n" : " ");
    if (v.empty())
        os << "\n";
}

std::vector<double>
readDoubles(std::istream& is, const std::string& tag)
{
    skipHeaderLines(is);
    std::string got_tag, version;
    size_t count = 0;
    is >> got_tag >> count >> version;
    check(bool(is), "truncated model file reading '" + tag + "'");
    check(got_tag == tag, "model file tag mismatch: expected '" + tag +
                              "', got '" + got_tag + "'");
    check(version == "v1",
          "unsupported model format version " + version);
    // Validate the count before trusting it with an allocation: a
    // corrupted header must fail a parse, not exhaust memory.
    check(count <= kMaxModelDoubles,
          "model record '" + tag + "' claims " + std::to_string(count) +
              " values; limit is " + std::to_string(kMaxModelDoubles));
    std::vector<double> v(count);
    for (auto& x : v) {
        is >> x;
        check(bool(is), "truncated payload for '" + tag + "'");
        check(std::isfinite(x),
              "non-finite value in model record '" + tag + "'");
    }
    return v;
}

void
saveLinear(std::ostream& os, const LinearModel& m)
{
    auto coeffs = m.weights();
    coeffs.push_back(m.bias());
    writeDoubles(os, "linear", coeffs);
}

LinearModel
loadLinear(std::istream& is)
{
    auto coeffs = readDoubles(is, "linear");
    check(!coeffs.empty(), "linear model payload empty");
    double b = coeffs.back();
    coeffs.pop_back();
    return LinearModel::fromWeights(std::move(coeffs), b);
}

void
saveMlp(std::ostream& os, const Mlp& net)
{
    std::vector<double> layers(net.layers().begin(),
                               net.layers().end());
    writeDoubles(os, "mlp_layers", layers);
    writeDoubles(os, "mlp_weights", net.params());
}

Mlp
loadMlp(std::istream& is)
{
    auto layer_doubles = readDoubles(is, "mlp_layers");
    // Every layer size is validated before the Mlp is constructed:
    // a corrupted record must not turn into a giant or negative
    // allocation inside the network.
    check(layer_doubles.size() >= 2 && layer_doubles.size() <= 64,
          "MLP layer count out of range in model file");
    std::vector<int> layers;
    layers.reserve(layer_doubles.size());
    for (double d : layer_doubles) {
        check(std::isfinite(d) && d == std::floor(d) && d >= 1 &&
                  d <= 1e6,
              "MLP layer size out of range in model file");
        layers.push_back(int(d));
    }
    Mlp net(layers);
    auto weights = readDoubles(is, "mlp_weights");
    check(weights.size() == net.numWeights(),
          "MLP weight count mismatch in model file");
    net.params() = std::move(weights);
    return net;
}

void
saveScaler(std::ostream& os, const MinMaxScaler& s)
{
    writeDoubles(os, "scaler_lo", s.lowerBounds());
    writeDoubles(os, "scaler_hi", s.upperBounds());
}

MinMaxScaler
loadScaler(std::istream& is)
{
    auto lo = readDoubles(is, "scaler_lo");
    auto hi = readDoubles(is, "scaler_hi");
    check(lo.size() == hi.size(), "scaler bound size mismatch");
    return MinMaxScaler::fromBounds(std::move(lo), std::move(hi));
}

namespace {

template <typename Load, typename Out>
Status
tryLoad(std::istream& is, Out& out, Load load, const char* what)
{
    try {
        out = load(is);
        return {};
    } catch (const FatalError& e) {
        Diag d;
        d.code = e.code();
        d.stage = "model-load";
        d.message = std::string(what) + ": " + e.what();
        return Status::error(std::move(d));
    } catch (const std::exception& e) {
        Diag d;
        d.code = DiagCode::ParseError;
        d.stage = "model-load";
        d.message = std::string(what) + ": " + e.what();
        return Status::error(std::move(d));
    }
}

} // namespace

Status
tryLoadLinear(std::istream& is, LinearModel& out)
{
    return tryLoad(is, out, [](std::istream& s) { return loadLinear(s); },
                   "linear model");
}

Status
tryLoadMlp(std::istream& is, Mlp& out)
{
    return tryLoad(is, out, [](std::istream& s) { return loadMlp(s); },
                   "mlp model");
}

Status
tryLoadScaler(std::istream& is, MinMaxScaler& out)
{
    return tryLoad(is, out, [](std::istream& s) { return loadScaler(s); },
                   "scaler");
}

} // namespace dhdl::ml

#include "ml/serialize.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>

#include "core/checksum.hh"
#include "core/error.hh"

namespace dhdl::ml {

namespace {

constexpr const char* kMagic = "# dhdl-model v1";
constexpr const char* kMagicPrefix = "# dhdl-model";
constexpr const char* kBundleMagic = "# dhdl-surrogate v1";
/** Bundle bodies are small (two scalers + a couple of tiny models);
 *  a header claiming more than this is corruption, not data. */
constexpr size_t kMaxBundleBytes = 64u << 20;
constexpr size_t kMaxBundleModels = 16;

/** require() that always classifies the failure as a parse error. */
void
check(bool cond, const std::string& msg)
{
    if (!cond)
        fatal(msg, DiagCode::ParseError);
}

/**
 * Consume comment lines before a record header, validating any
 * magic line against the versions this reader understands. Files
 * from before the magic existed start straight at the record header
 * and are accepted as-is.
 */
void
skipHeaderLines(std::istream& is)
{
    while (is >> std::ws && is.peek() == '#') {
        std::string line;
        std::getline(is, line);
        if (line.compare(0, std::string(kMagicPrefix).size(),
                         kMagicPrefix) == 0)
            check(line == kMagic,
                  "unsupported model file version: '" + line + "'");
    }
}

} // namespace

void
writeDoubles(std::ostream& os, const std::string& tag,
             const std::vector<double>& v)
{
    os << kMagic << "\n";
    os << tag << " " << v.size() << " v1\n";
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (size_t i = 0; i < v.size(); ++i)
        os << v[i] << (i + 1 == v.size() ? "\n" : " ");
    if (v.empty())
        os << "\n";
}

std::vector<double>
readDoubles(std::istream& is, const std::string& tag)
{
    skipHeaderLines(is);
    std::string got_tag, version;
    size_t count = 0;
    is >> got_tag >> count >> version;
    check(bool(is), "truncated model file reading '" + tag + "'");
    check(got_tag == tag, "model file tag mismatch: expected '" + tag +
                              "', got '" + got_tag + "'");
    check(version == "v1",
          "unsupported model format version " + version);
    // Validate the count before trusting it with an allocation: a
    // corrupted header must fail a parse, not exhaust memory.
    check(count <= kMaxModelDoubles,
          "model record '" + tag + "' claims " + std::to_string(count) +
              " values; limit is " + std::to_string(kMaxModelDoubles));
    std::vector<double> v(count);
    for (auto& x : v) {
        is >> x;
        check(bool(is), "truncated payload for '" + tag + "'");
        check(std::isfinite(x),
              "non-finite value in model record '" + tag + "'");
    }
    return v;
}

void
saveLinear(std::ostream& os, const LinearModel& m)
{
    auto coeffs = m.weights();
    coeffs.push_back(m.bias());
    writeDoubles(os, "linear", coeffs);
}

LinearModel
loadLinear(std::istream& is)
{
    auto coeffs = readDoubles(is, "linear");
    check(!coeffs.empty(), "linear model payload empty");
    double b = coeffs.back();
    coeffs.pop_back();
    return LinearModel::fromWeights(std::move(coeffs), b);
}

void
saveMlp(std::ostream& os, const Mlp& net)
{
    std::vector<double> layers(net.layers().begin(),
                               net.layers().end());
    writeDoubles(os, "mlp_layers", layers);
    writeDoubles(os, "mlp_weights", net.params());
}

Mlp
loadMlp(std::istream& is)
{
    auto layer_doubles = readDoubles(is, "mlp_layers");
    // Every layer size is validated before the Mlp is constructed:
    // a corrupted record must not turn into a giant or negative
    // allocation inside the network.
    check(layer_doubles.size() >= 2 && layer_doubles.size() <= 64,
          "MLP layer count out of range in model file");
    std::vector<int> layers;
    layers.reserve(layer_doubles.size());
    for (double d : layer_doubles) {
        check(std::isfinite(d) && d == std::floor(d) && d >= 1 &&
                  d <= 1e6,
              "MLP layer size out of range in model file");
        layers.push_back(int(d));
    }
    Mlp net(layers);
    auto weights = readDoubles(is, "mlp_weights");
    check(weights.size() == net.numWeights(),
          "MLP weight count mismatch in model file");
    net.params() = std::move(weights);
    return net;
}

void
saveScaler(std::ostream& os, const MinMaxScaler& s)
{
    writeDoubles(os, "scaler_lo", s.lowerBounds());
    writeDoubles(os, "scaler_hi", s.upperBounds());
}

MinMaxScaler
loadScaler(std::istream& is)
{
    auto lo = readDoubles(is, "scaler_lo");
    auto hi = readDoubles(is, "scaler_hi");
    check(lo.size() == hi.size(), "scaler bound size mismatch");
    return MinMaxScaler::fromBounds(std::move(lo), std::move(hi));
}

namespace {

template <typename Load, typename Out>
Status
tryLoad(std::istream& is, Out& out, Load load, const char* what)
{
    try {
        out = load(is);
        return {};
    } catch (const FatalError& e) {
        Diag d;
        d.code = e.code();
        d.stage = "model-load";
        d.message = std::string(what) + ": " + e.what();
        return Status::error(std::move(d));
    } catch (const std::exception& e) {
        Diag d;
        d.code = DiagCode::ParseError;
        d.stage = "model-load";
        d.message = std::string(what) + ": " + e.what();
        return Status::error(std::move(d));
    }
}

} // namespace

Status
tryLoadLinear(std::istream& is, LinearModel& out)
{
    return tryLoad(is, out, [](std::istream& s) { return loadLinear(s); },
                   "linear model");
}

Status
tryLoadMlp(std::istream& is, Mlp& out)
{
    return tryLoad(is, out, [](std::istream& s) { return loadMlp(s); },
                   "mlp model");
}

Status
tryLoadScaler(std::istream& is, MinMaxScaler& out)
{
    return tryLoad(is, out, [](std::istream& s) { return loadScaler(s); },
                   "scaler");
}

void
saveSurrogateBundle(std::ostream& os, const SurrogateBundle& b)
{
    // Serialize the body first so the header can carry its byte
    // count and CRC-32: the whole artifact becomes self-validating,
    // not just each record.
    std::ostringstream body;
    writeDoubles(body, "surrogate_meta",
                 {b.useMlp ? 1.0 : 0.0, double(b.numModels())});
    saveScaler(body, b.features);
    saveScaler(body, b.targets);
    if (b.useMlp) {
        for (const Mlp& net : b.nets)
            saveMlp(body, net);
    } else {
        for (const LinearModel& m : b.linears)
            saveLinear(body, m);
    }
    const std::string bytes = body.str();
    char crc[9];
    std::snprintf(crc, sizeof crc, "%08x", unsigned(crc32(bytes)));
    os << kBundleMagic << " " << bytes.size() << " " << crc << "\n"
       << bytes;
}

SurrogateBundle
loadSurrogateBundle(std::istream& is)
{
    std::string header;
    std::getline(is, header);
    check(bool(is), "surrogate bundle: missing header");
    unsigned long long nbytes = 0;
    unsigned crc = 0;
    check(std::sscanf(header.c_str(), "# dhdl-surrogate v1 %llu %8x",
                      &nbytes, &crc) == 2,
          "surrogate bundle: unrecognized header '" + header + "'");
    check(nbytes <= kMaxBundleBytes,
          "surrogate bundle: body size " + std::to_string(nbytes) +
              " exceeds the " + std::to_string(kMaxBundleBytes) +
              "-byte limit");
    // Read and checksum the exact body before parsing one record: a
    // truncated file or a flipped bit fails here, wholesale.
    std::string bytes(size_t(nbytes), '\0');
    is.read(bytes.data(), std::streamsize(nbytes));
    check(size_t(is.gcount()) == size_t(nbytes),
          "surrogate bundle: truncated body (" +
              std::to_string(is.gcount()) + " of " +
              std::to_string(nbytes) + " bytes)");
    check(crc32(bytes) == crc,
          "surrogate bundle: body CRC mismatch");

    std::istringstream body(bytes);
    auto meta = readDoubles(body, "surrogate_meta");
    check(meta.size() == 2, "surrogate bundle: malformed meta record");
    check(meta[0] == 0.0 || meta[0] == 1.0,
          "surrogate bundle: bad model-kind flag");
    check(meta[1] == std::floor(meta[1]) && meta[1] >= 1 &&
              meta[1] <= double(kMaxBundleModels),
          "surrogate bundle: model count out of range");

    SurrogateBundle out;
    out.useMlp = meta[0] == 1.0;
    out.features = loadScaler(body);
    out.targets = loadScaler(body);
    const size_t n = size_t(meta[1]);
    for (size_t i = 0; i < n; ++i) {
        if (out.useMlp)
            out.nets.push_back(loadMlp(body));
        else
            out.linears.push_back(loadLinear(body));
    }
    check(out.features.columns() > 0,
          "surrogate bundle: empty feature scaler");
    check(out.targets.columns() == n,
          "surrogate bundle: target scaler arity does not match the "
          "model count");
    if (out.useMlp) {
        for (const Mlp& net : out.nets) {
            check(size_t(net.layers().front()) ==
                      out.features.columns(),
                  "surrogate bundle: model input arity does not match "
                  "the feature scaler");
            check(net.layers().back() == 1,
                  "surrogate bundle: model must be single-output");
        }
    } else {
        for (const LinearModel& m : out.linears)
            check(m.weights().size() == out.features.columns(),
                  "surrogate bundle: model input arity does not match "
                  "the feature scaler");
    }
    return out;
}

Status
tryLoadSurrogateBundle(std::istream& is, SurrogateBundle& out)
{
    return tryLoad(
        is, out,
        [](std::istream& s) { return loadSurrogateBundle(s); },
        "surrogate bundle");
}

} // namespace dhdl::ml

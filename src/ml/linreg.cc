#include "ml/linreg.hh"

#include <cmath>

#include "core/error.hh"

namespace dhdl::ml {

std::vector<double>
solveDense(std::vector<std::vector<double>> a, std::vector<double> b)
{
    size_t n = a.size();
    invariant(b.size() == n, "solveDense: dimension mismatch");
    for (size_t col = 0; col < n; ++col) {
        // Partial pivot.
        size_t piv = col;
        for (size_t r = col + 1; r < n; ++r) {
            if (std::fabs(a[r][col]) > std::fabs(a[piv][col]))
                piv = r;
        }
        std::swap(a[piv], a[col]);
        std::swap(b[piv], b[col]);
        double d = a[col][col];
        require(std::fabs(d) > 1e-30, "singular system in regression");
        for (size_t r = col + 1; r < n; ++r) {
            double f = a[r][col] / d;
            if (f == 0.0)
                continue;
            for (size_t c = col; c < n; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (size_t i = n; i-- > 0;) {
        double s = b[i];
        for (size_t c = i + 1; c < n; ++c)
            s -= a[i][c] * x[c];
        x[i] = s / a[i][i];
    }
    return x;
}

void
LinearModel::fit(const std::vector<std::vector<double>>& x,
                 const std::vector<double>& y, double lambda)
{
    require(!x.empty() && x.size() == y.size(),
            "linear fit needs matching, non-empty X and y");
    size_t d = x.front().size();
    size_t n = d + 1; // + bias column

    // Normal equations: (X^T X + lambda I) w = X^T y with an appended
    // all-ones column for the bias.
    std::vector<std::vector<double>> xtx(n, std::vector<double>(n, 0.0));
    std::vector<double> xty(n, 0.0);
    for (size_t r = 0; r < x.size(); ++r) {
        require(x[r].size() == d, "ragged feature matrix");
        for (size_t i = 0; i < n; ++i) {
            double xi = i < d ? x[r][i] : 1.0;
            xty[i] += xi * y[r];
            for (size_t j = i; j < n; ++j) {
                double xj = j < d ? x[r][j] : 1.0;
                xtx[i][j] += xi * xj;
            }
        }
    }
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < i; ++j)
            xtx[i][j] = xtx[j][i];
        xtx[i][i] += lambda;
    }

    auto w = solveDense(std::move(xtx), std::move(xty));
    b_ = w.back();
    w.pop_back();
    w_ = std::move(w);
}

double
LinearModel::predict(const std::vector<double>& x) const
{
    require(x.size() == w_.size(), "linear predict arity mismatch");
    double s = b_;
    for (size_t i = 0; i < x.size(); ++i)
        s += w_[i] * x[i];
    return s;
}

void
LinearModel::predictBatch(const double* xs, size_t n, size_t cols,
                          double* out) const
{
    require(cols == w_.size(), "linear predict arity mismatch");
    for (size_t p = 0; p < n; ++p) {
        const double* x = xs + p * cols;
        double s = b_;
        for (size_t i = 0; i < cols; ++i)
            s += w_[i] * x[i];
        out[p] = s;
    }
}

double
LinearModel::predict1(double x) const
{
    require(w_.size() == 1, "predict1 on multi-feature model");
    double s = b_;
    s += w_[0] * x;
    return s;
}

double
LinearModel::r2(const std::vector<std::vector<double>>& x,
                const std::vector<double>& y) const
{
    require(x.size() == y.size() && !y.empty(), "r2 arity mismatch");
    double mean = 0.0;
    for (double v : y)
        mean += v;
    mean /= double(y.size());
    double ss_res = 0.0, ss_tot = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
        double e = y[i] - predict(x[i]);
        ss_res += e * e;
        ss_tot += (y[i] - mean) * (y[i] - mean);
    }
    if (ss_tot < 1e-30)
        return 1.0;
    return 1.0 - ss_res / ss_tot;
}

} // namespace dhdl::ml

/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64 based).
 * Every stochastic component of the framework — the synthetic vendor
 * toolchain's noise, DSE sampling, ANN initialization — draws from
 * this so that builds and experiments are reproducible bit-for-bit.
 */

#ifndef DHDL_ML_RNG_HH
#define DHDL_ML_RNG_HH

#include <cstdint>

namespace dhdl::ml {

/** Small, fast, seedable RNG (SplitMix64). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /**
     * Next raw 64-bit value. Inline: DSE sampling draws one value
     * per parameter per attempt, and the call overhead was showing
     * up in sampling-dominated sweeps.
     */
    uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double uniform() { return double(next() >> 11) * 0x1.0p-53; }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        if (hi <= lo)
            return lo;
        uint64_t span = uint64_t(hi - lo) + 1;
        return lo + int64_t(next() % span);
    }

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

  private:
    uint64_t state_;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/** Mix an arbitrary integer into a well-distributed 64-bit hash. */
uint64_t hashMix(uint64_t x);

} // namespace dhdl::ml

#endif // DHDL_ML_RNG_HH

#include "ml/mlp.hh"

#include <algorithm>
#include <cmath>

#include "core/error.hh"

namespace dhdl::ml {

Mlp::Mlp(std::vector<int> layer_sizes, uint64_t seed)
    : layers_(std::move(layer_sizes))
{
    require(layers_.size() >= 2, "MLP needs at least two layers");
    size_t total = 0;
    for (size_t l = 0; l + 1 < layers_.size(); ++l) {
        wOffset_.push_back(total);
        total += size_t(layers_[l]) * size_t(layers_[l + 1]);
        bOffset_.push_back(total);
        total += size_t(layers_[l + 1]);
    }
    weights_.resize(total);
    Rng rng(seed);
    for (auto& w : weights_)
        w = rng.uniform(-0.5, 0.5);
}

size_t
Mlp::wIndex(size_t layer, int i, int j) const
{
    return wOffset_[layer] + size_t(i) * size_t(layers_[layer]) +
           size_t(j);
}

size_t
Mlp::bIndex(size_t layer, int i) const
{
    return bOffset_[layer] + size_t(i);
}

std::vector<double>
Mlp::forward(const std::vector<double>& in) const
{
    require(int(in.size()) == layers_.front(), "MLP input arity");
    std::vector<double> act = in;
    for (size_t l = 0; l + 1 < layers_.size(); ++l) {
        std::vector<double> next(size_t(layers_[l + 1]), 0.0);
        bool last = l + 2 == layers_.size();
        for (int i = 0; i < layers_[l + 1]; ++i) {
            double s = weights_[bIndex(l, i)];
            for (int j = 0; j < layers_[l]; ++j)
                s += weights_[wIndex(l, i, j)] * act[size_t(j)];
            next[size_t(i)] = last ? s : std::tanh(s);
        }
        act = std::move(next);
    }
    return act;
}

const std::vector<double>&
Mlp::forwardInto(const std::vector<double>& in, std::vector<double>& s0,
                 std::vector<double>& s1) const
{
    require(int(in.size()) == layers_.front(), "MLP input arity");
    const std::vector<double>* act = &in;
    std::vector<double>* cur = &s0;
    std::vector<double>* other = &s1;
    for (size_t l = 0; l + 1 < layers_.size(); ++l) {
        cur->assign(size_t(layers_[l + 1]), 0.0);
        bool last = l + 2 == layers_.size();
        for (int i = 0; i < layers_[l + 1]; ++i) {
            double s = weights_[bIndex(l, i)];
            for (int j = 0; j < layers_[l]; ++j)
                s += weights_[wIndex(l, i, j)] * (*act)[size_t(j)];
            (*cur)[size_t(i)] = last ? s : std::tanh(s);
        }
        act = cur;
        std::swap(cur, other);
    }
    return *act;
}

void
Mlp::forwardBatch(const double* in, size_t n, double* out,
                  MlpWorkspace& ws) const
{
    size_t maxw = 0;
    for (int w : layers_)
        maxw = std::max(maxw, size_t(w));
    ws.a.resize(n * maxw);
    ws.b.resize(n * maxw);

    // Feature-major activations: row j of `act` holds feature j of
    // all n points, so each weight's contribution sweeps a contiguous
    // row of the batch (vectorizable). Per point the arithmetic is
    // the exact scalar loop nest — the sum starts at the bias, adds
    // the weighted features in ascending j, and applies tanh on
    // hidden layers — so every activation bit matches forwardInto();
    // only the loop interchange across points differs.
    size_t act_w = size_t(layers_.front());
    double* cur = ws.b.data();
    double* other = ws.a.data();
    for (size_t j = 0; j < act_w; ++j)
        for (size_t p = 0; p < n; ++p)
            other[j * n + p] = in[p * act_w + j];
    const double* act = other;
    for (size_t l = 0; l + 1 < layers_.size(); ++l) {
        const size_t next_w = size_t(layers_[l + 1]);
        const bool last = l + 2 == layers_.size();
        const double* W = weights_.data() + wOffset_[l];
        const double* B = weights_.data() + bOffset_[l];
        // A single-output final layer lands feature-major and
        // point-major alike; write it straight into `out`.
        double* dst = (last && next_w == 1) ? out : cur;
        for (size_t i = 0; i < next_w; ++i) {
            const double* wi = W + i * act_w;
            double* di = dst + i * n;
            const double bi = B[i];
            for (size_t p = 0; p < n; ++p)
                di[p] = bi;
            for (size_t j = 0; j < act_w; ++j) {
                const double wij = wi[j];
                const double* aj = act + j * n;
                for (size_t p = 0; p < n; ++p)
                    di[p] += wij * aj[p];
            }
            if (!last)
                for (size_t p = 0; p < n; ++p)
                    di[p] = std::tanh(di[p]);
        }
        act = dst;
        act_w = next_w;
        if (dst == cur)
            std::swap(cur, other);
    }
    if (act != out)
        for (size_t p = 0; p < n; ++p)
            for (size_t i = 0; i < act_w; ++i)
                out[p * act_w + i] = act[i * n + p];
}

double
Mlp::predictScalar(const std::vector<double>& in) const
{
    auto out = forward(in);
    invariant(out.size() == 1, "predictScalar on multi-output net");
    return out.front();
}

double
Mlp::predictScalar(const std::vector<double>& in,
                   std::vector<double>& s0, std::vector<double>& s1) const
{
    const auto& out = forwardInto(in, s0, s1);
    invariant(out.size() == 1, "predictScalar on multi-output net");
    return out.front();
}

std::vector<double>
Mlp::gradient(const std::vector<std::vector<double>>& x,
              const std::vector<std::vector<double>>& y) const
{
    require(x.size() == y.size() && !x.empty(),
            "gradient needs matching, non-empty dataset");
    std::vector<double> grad(weights_.size(), 0.0);
    size_t nl = layers_.size();

    for (size_t s = 0; s < x.size(); ++s) {
        // Forward pass, keeping activations per layer.
        std::vector<std::vector<double>> act(nl);
        act[0] = x[s];
        for (size_t l = 0; l + 1 < nl; ++l) {
            act[l + 1].assign(size_t(layers_[l + 1]), 0.0);
            bool last = l + 2 == nl;
            for (int i = 0; i < layers_[l + 1]; ++i) {
                double sum = weights_[bIndex(l, i)];
                for (int j = 0; j < layers_[l]; ++j)
                    sum += weights_[wIndex(l, i, j)] *
                           act[l][size_t(j)];
                act[l + 1][size_t(i)] = last ? sum : std::tanh(sum);
            }
        }

        // Backward pass: delta[i] = dE/d(net input of unit i).
        std::vector<double> delta(act[nl - 1].size());
        for (size_t i = 0; i < delta.size(); ++i)
            delta[i] = 2.0 * (act[nl - 1][i] - y[s][i]) /
                       double(x.size() * delta.size());

        for (size_t l = nl - 1; l-- > 0;) {
            std::vector<double> prev_delta(size_t(layers_[l]), 0.0);
            for (int i = 0; i < layers_[l + 1]; ++i) {
                double d = delta[size_t(i)];
                grad[bIndex(l, i)] += d;
                for (int j = 0; j < layers_[l]; ++j) {
                    grad[wIndex(l, i, j)] += d * act[l][size_t(j)];
                    prev_delta[size_t(j)] +=
                        d * weights_[wIndex(l, i, j)];
                }
            }
            if (l > 0) {
                // Apply tanh' of the hidden activation.
                for (int j = 0; j < layers_[l]; ++j) {
                    double a = act[l][size_t(j)];
                    prev_delta[size_t(j)] *= (1.0 - a * a);
                }
            }
            delta = std::move(prev_delta);
        }
    }
    return grad;
}

double
Mlp::mse(const std::vector<std::vector<double>>& x,
         const std::vector<std::vector<double>>& y) const
{
    require(x.size() == y.size() && !x.empty(), "mse arity mismatch");
    double total = 0.0;
    size_t count = 0;
    for (size_t s = 0; s < x.size(); ++s) {
        auto out = forward(x[s]);
        for (size_t i = 0; i < out.size(); ++i) {
            double e = out[i] - y[s][i];
            total += e * e;
            ++count;
        }
    }
    return total / double(count);
}

RpropTrainer::RpropTrainer(Mlp& net)
    : net_(net), stepSize_(net.numWeights(), 0.1),
      prevGrad_(net.numWeights(), 0.0)
{
}

double
RpropTrainer::train(const std::vector<std::vector<double>>& x,
                    const std::vector<std::vector<double>>& y,
                    int max_epochs, double tolerance)
{
    constexpr double eta_plus = 1.2;
    constexpr double eta_minus = 0.5;
    constexpr double step_max = 50.0;
    constexpr double step_min = 1e-9;

    double err = net_.mse(x, y);
    for (int epoch = 0; epoch < max_epochs && err > tolerance; ++epoch) {
        auto grad = net_.gradient(x, y);
        auto& w = net_.params();
        for (size_t i = 0; i < w.size(); ++i) {
            double sign = prevGrad_[i] * grad[i];
            if (sign > 0) {
                stepSize_[i] = std::min(stepSize_[i] * eta_plus,
                                        step_max);
            } else if (sign < 0) {
                stepSize_[i] = std::max(stepSize_[i] * eta_minus,
                                        step_min);
                grad[i] = 0.0; // RPROP+: skip update after sign flip
            }
            if (grad[i] > 0)
                w[i] -= stepSize_[i];
            else if (grad[i] < 0)
                w[i] += stepSize_[i];
            prevGrad_[i] = grad[i];
        }
        err = net_.mse(x, y);
    }
    return err;
}

} // namespace dhdl::ml

/**
 * @file
 * Feed-forward multilayer perceptron with resilient backpropagation
 * (RPROP+) training. The paper models post-place-and-route effects
 * with "a set of small artificial neural networks ... Each network
 * has three fully connected layers with eleven input nodes, six
 * hidden layer nodes, and a single output node" (Section IV-B2),
 * trained with the Encog library; RPROP is Encog's default trainer.
 * This is a from-scratch replacement with the same topology.
 */

#ifndef DHDL_ML_MLP_HH
#define DHDL_ML_MLP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/rng.hh"

namespace dhdl::ml {

/**
 * Reusable forward-pass scratch. The scalar path uses `a`/`b` as
 * ping-pong activation buffers for one sample; the batch path sizes
 * them as row-major activation matrices (points x layer width). One
 * workspace per evaluating thread; capacity survives across calls so
 * the steady state allocates nothing.
 */
struct MlpWorkspace {
    std::vector<double> a;
    std::vector<double> b;
};

/** A dense feed-forward network with tanh hidden units. */
class Mlp
{
  public:
    /**
     * Construct with the given layer sizes, e.g. {11, 6, 1} for the
     * paper's topology. Weights are initialized from the seed.
     */
    Mlp(std::vector<int> layer_sizes, uint64_t seed = 1);

    /** Forward pass; input size must match the first layer. */
    std::vector<double> forward(const std::vector<double>& in) const;

    /**
     * Forward pass into caller-owned ping-pong scratch buffers (no
     * allocation once their capacity is warm). Returns a reference to
     * whichever buffer holds the output layer's activations.
     */
    const std::vector<double>&
    forwardInto(const std::vector<double>& in, std::vector<double>& s0,
                std::vector<double>& s1) const;

    /** forwardInto() against a shared workspace (the two ping-pong
     *  buffers live in `ws` instead of at every call site). */
    const std::vector<double>&
    forwardInto(const std::vector<double>& in, MlpWorkspace& ws) const
    {
        return forwardInto(in, ws.a, ws.b);
    }

    /**
     * Batched forward pass: `in` is a row-major matrix of n input
     * rows (n x input width), `out` receives n output rows (n x
     * output width). Each row goes through exactly the scalar
     * forward-pass arithmetic — same accumulation order, same tanh
     * calls — so a batched prediction is bit-identical to n scalar
     * ones; the batch form only restructures the loops so the (tiny)
     * weight matrix stays hot across the whole batch.
     */
    void forwardBatch(const double* in, size_t n, double* out,
                      MlpWorkspace& ws) const;

    /** Convenience for single-output networks. */
    double predictScalar(const std::vector<double>& in) const;

    /** predictScalar() with reusable scratch (evaluate-many sweeps). */
    double predictScalar(const std::vector<double>& in,
                         std::vector<double>& s0,
                         std::vector<double>& s1) const;

    /** predictScalar() against a shared workspace. */
    double
    predictScalar(const std::vector<double>& in, MlpWorkspace& ws) const
    {
        return predictScalar(in, ws.a, ws.b);
    }

    size_t numWeights() const { return weights_.size(); }
    const std::vector<int>& layers() const { return layers_; }

    /** Flat parameter access for the trainer and for tests. */
    std::vector<double>& params() { return weights_; }
    const std::vector<double>& params() const { return weights_; }

    /**
     * Full-batch mean-squared-error gradient with respect to all
     * parameters (weights and biases), computed by backpropagation.
     */
    std::vector<double>
    gradient(const std::vector<std::vector<double>>& x,
             const std::vector<std::vector<double>>& y) const;

    /** Mean squared error over a dataset. */
    double mse(const std::vector<std::vector<double>>& x,
               const std::vector<std::vector<double>>& y) const;

  private:
    friend class RpropTrainer;

    /** Weight index of edge (from j in layer l, to i in layer l+1). */
    size_t wIndex(size_t layer, int i, int j) const;
    /** Bias index of unit i in layer l+1. */
    size_t bIndex(size_t layer, int i) const;

    std::vector<int> layers_;
    std::vector<size_t> wOffset_; //!< per-layer weight block offsets
    std::vector<size_t> bOffset_; //!< per-layer bias block offsets
    std::vector<double> weights_; //!< weights and biases, flat
};

/** RPROP+ trainer (Riedmiller & Braun) on the full batch. */
class RpropTrainer
{
  public:
    explicit RpropTrainer(Mlp& net);

    /**
     * Run up to maxEpochs full-batch updates; stops early when the
     * MSE drops below tolerance. Returns the final MSE.
     */
    double train(const std::vector<std::vector<double>>& x,
                 const std::vector<std::vector<double>>& y,
                 int max_epochs = 2000, double tolerance = 1e-7);

  private:
    Mlp& net_;
    std::vector<double> stepSize_;
    std::vector<double> prevGrad_;
};

} // namespace dhdl::ml

#endif // DHDL_ML_MLP_HH

/**
 * @file
 * Host-side runtime facade. The paper "leverage[s] Maxeler's runtime
 * to manage communication and data movement between the host CPU and
 * the MAIA board" (Section V-A); this module is the equivalent layer
 * for the simulated board: bind host buffers to off-chip arrays, run
 * the accelerator (functional + timing), read results back, and
 * account for PCIe transfer time separately from kernel execution —
 * matching the paper's measurement convention ("execution time is
 * measured starting from when the FPGA design is started (after
 * input has been copied to FPGA DRAM)").
 */

#ifndef DHDL_HOST_ACCELERATOR_HH
#define DHDL_HOST_ACCELERATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/instance.hh"
#include "sim/functional.hh"
#include "sim/timing.hh"

namespace dhdl::host {

/** Wall-clock breakdown of one accelerator invocation. */
struct RunReport {
    double copyInSeconds = 0;  //!< Host -> board DRAM over PCIe.
    double kernelSeconds = 0;  //!< FPGA execution (the paper's metric).
    double copyOutSeconds = 0; //!< Board DRAM -> host over PCIe.
    double kernelCycles = 0;

    double
    totalSeconds() const
    {
        return copyInSeconds + kernelSeconds + copyOutSeconds;
    }
};

/**
 * A configured accelerator: one design at one design point, plus the
 * host-side data bindings. Not copyable (owns the simulation state).
 */
class Accelerator
{
  public:
    /** PCIe gen3 x8 effective host-board bandwidth, bytes/second. */
    static constexpr double kPcieBytesPerSecond = 6.0e9;

    Accelerator(const Graph& g, ParamBinding binding,
                fpga::Device dev = fpga::Device::maia());

    /**
     * Stage host data for an off-chip array (copied at run()).
     * Raises FatalError immediately on an unknown array name or a
     * size that does not match the array's extent.
     */
    void setInput(const std::string& name, std::vector<double> data);

    /**
     * Mark an off-chip array to be copied back after run(). Raises
     * FatalError immediately on an unknown array name.
     */
    void requestOutput(const std::string& name);

    /**
     * Execute once: copy staged inputs, run the design functionally
     * and through the timing simulator, copy requested outputs.
     */
    RunReport run();

    /** Read back an output array (after run()). */
    const std::vector<double>& output(const std::string& name) const;

    /** Read back a scalar register (after run()). */
    double scalar(const std::string& name) const;

    const Inst& instance() const { return *inst_; }

  private:
    /** Off-chip array node by name; fatal on an unknown name. */
    NodeId offchipByName(const std::string& name) const;

    const Graph& g_;
    ParamBinding binding_;
    fpga::Device dev_;
    std::unique_ptr<Inst> inst_;
    std::unique_ptr<sim::FunctionalSim> fsim_;
    std::vector<std::pair<std::string, std::vector<double>>> staged_;
    std::vector<std::string> outputs_;
    bool ran_ = false;
};

} // namespace dhdl::host

#endif // DHDL_HOST_ACCELERATOR_HH

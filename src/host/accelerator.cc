#include "host/accelerator.hh"

#include <algorithm>

namespace dhdl::host {

Accelerator::Accelerator(const Graph& g, ParamBinding binding,
                         fpga::Device dev)
    : g_(g), binding_(std::move(binding)), dev_(std::move(dev))
{
    require(g_.root != kNoNode, "design has no accel body");
    inst_ = std::make_unique<Inst>(g_, binding_);
    fsim_ = std::make_unique<sim::FunctionalSim>(*inst_);
}

NodeId
Accelerator::offchipByName(const std::string& name) const
{
    std::string known;
    for (NodeId id : g_.offchipMems) {
        if (g_.node(id).name() == name)
            return id;
        if (!known.empty())
            known += ", ";
        known += g_.node(id).name();
    }
    fatal("no off-chip array named '" + name + "' (arrays: " + known +
              ")",
          DiagCode::HostApiMisuse);
}

void
Accelerator::setInput(const std::string& name,
                      std::vector<double> data)
{
    require(!ran_, "setInput after run(); create a new Accelerator",
            DiagCode::HostApiMisuse);
    NodeId id = offchipByName(name);
    size_t elems = size_t(inst_->memElems(id));
    require(data.size() == elems,
            "setInput('" + name + "'): got " +
                std::to_string(data.size()) + " elements, array holds " +
                std::to_string(elems),
            DiagCode::HostApiMisuse);
    staged_.emplace_back(name, std::move(data));
}

void
Accelerator::requestOutput(const std::string& name)
{
    require(!ran_,
            "requestOutput after run(); create a new Accelerator",
            DiagCode::HostApiMisuse);
    offchipByName(name);
    outputs_.push_back(name);
}

RunReport
Accelerator::run()
{
    require(!ran_, "Accelerator::run() may only be called once");
    RunReport rep;

    // Host -> board DRAM.
    double bytes_in = 0;
    for (auto& [name, data] : staged_) {
        bytes_in += double(data.size()) * 4.0; // f32 payload
        fsim_->setOffchip(name, std::move(data));
    }
    rep.copyInSeconds = bytes_in / kPcieBytesPerSecond;

    // Kernel execution: functional result + simulated wall clock.
    fsim_->run();
    auto timed = sim::TimingSim(*inst_, dev_).run();
    rep.kernelCycles = timed.cycles;
    rep.kernelSeconds = timed.seconds;

    // Board DRAM -> host.
    double bytes_out = 0;
    for (const auto& name : outputs_)
        bytes_out += double(fsim_->offchip(name).size()) * 4.0;
    rep.copyOutSeconds = bytes_out / kPcieBytesPerSecond;

    staged_.clear();
    ran_ = true;
    return rep;
}

const std::vector<double>&
Accelerator::output(const std::string& name) const
{
    require(ran_, "output('" + name + "') before run()",
            DiagCode::HostApiMisuse);
    return fsim_->offchip(name);
}

double
Accelerator::scalar(const std::string& name) const
{
    require(ran_, "scalar('" + name + "') before run()",
            DiagCode::HostApiMisuse);
    return fsim_->regValue(name);
}

} // namespace dhdl::host

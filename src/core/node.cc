#include "core/node.hh"

namespace dhdl {

const char*
opName(Op op)
{
    switch (op) {
      case Op::Const: return "const";
      case Op::Iter: return "iter";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Mod: return "mod";
      case Op::Min: return "min";
      case Op::Max: return "max";
      case Op::Lt: return "lt";
      case Op::Le: return "le";
      case Op::Gt: return "gt";
      case Op::Ge: return "ge";
      case Op::Eq: return "eq";
      case Op::Neq: return "neq";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Not: return "not";
      case Op::Mux: return "mux";
      case Op::Abs: return "abs";
      case Op::Neg: return "neg";
      case Op::Sqrt: return "sqrt";
      case Op::Exp: return "exp";
      case Op::Log: return "log";
      case Op::ToFloat: return "tofloat";
      case Op::ToFixed: return "tofixed";
    }
    return "?";
}

bool
opProducesBit(Op op)
{
    switch (op) {
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Eq:
      case Op::Neq:
      case Op::And:
      case Op::Or:
      case Op::Not:
        return true;
      default:
        return false;
    }
}

const char*
kindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Prim: return "Prim";
      case NodeKind::Load: return "Ld";
      case NodeKind::Store: return "St";
      case NodeKind::OffChipMem: return "OffChipMem";
      case NodeKind::Bram: return "BRAM";
      case NodeKind::Reg: return "Reg";
      case NodeKind::Queue: return "Queue";
      case NodeKind::Counter: return "Counter";
      case NodeKind::Pipe: return "Pipe";
      case NodeKind::Sequential: return "Sequential";
      case NodeKind::ParallelCtrl: return "Parallel";
      case NodeKind::MetaPipe: return "MetaPipe";
      case NodeKind::TileLd: return "TileLd";
      case NodeKind::TileSt: return "TileSt";
    }
    return "?";
}

} // namespace dhdl

/**
 * @file
 * Two renderings of a DHDL graph:
 *
 *  - printGraph(): human-readable indented hierarchy for examples and
 *    reports. Lossy by design (iterators and wiring details elided).
 *  - emitIR(): the canonical `.dhdl` text form. Deterministic, prints
 *    every field of every node, and is parsed back byte-identically by
 *    core/parser (see DESIGN.md for the grammar). This is the on-disk
 *    interchange format of the whole toolchain: `dhdlc emit-ir` writes
 *    it and every dhdlc command accepts it in place of an app name.
 */

#ifndef DHDL_CORE_PRINTER_HH
#define DHDL_CORE_PRINTER_HH

#include <string>

#include "core/graph.hh"

namespace dhdl {

/** Render a graph as an indented hierarchy. */
std::string printGraph(const Graph& g);

/** Render one symbolic size, e.g. "1536" or "$tileSize". */
std::string symStr(const Graph& g, const Sym& s);

/**
 * Serialize a graph to canonical `.dhdl` IR text. Total (never throws
 * on a builder-produced graph) and deterministic: the same graph
 * always yields the same bytes, and parseIR(emitIR(g)) reconstructs a
 * graph whose emitIR() is byte-identical.
 */
std::string emitIR(const Graph& g);

/** Canonical IR spelling of one Sym: `7`, `$2`, `$2+4` or `$2-1`. */
std::string symIR(const Sym& s);

/** Canonical IR spelling of a type, e.g. `f32`, `u8`, `fix<16,16>`. */
std::string dtypeIR(const DType& t);

/** Canonical IR spelling of a double (shortest round-trip form). */
std::string doubleIR(double v);

} // namespace dhdl

#endif // DHDL_CORE_PRINTER_HH

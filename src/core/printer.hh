/**
 * @file
 * Human-readable dump of a DHDL graph: the controller hierarchy with
 * per-node template names, parameters, and data dependencies. Used by
 * examples and tests; the format is stable (golden-tested).
 */

#ifndef DHDL_CORE_PRINTER_HH
#define DHDL_CORE_PRINTER_HH

#include <string>

#include "core/graph.hh"

namespace dhdl {

/** Render a graph as an indented hierarchy. */
std::string printGraph(const Graph& g);

/** Render one symbolic size, e.g. "1536" or "$tileSize". */
std::string symStr(const Graph& g, const Sym& s);

} // namespace dhdl

#endif // DHDL_CORE_PRINTER_HH

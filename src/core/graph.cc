#include "core/graph.hh"

// Graph is header-only today; this translation unit anchors the vtable
// emission for Node subclasses and keeps the build layout uniform.

namespace dhdl {
} // namespace dhdl

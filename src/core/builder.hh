/**
 * @file
 * The DHDL embedded DSL. The paper embeds DHDL in Scala and builds the
 * graph by metaprogramming: the program runs once, instantiating
 * parameterized templates (Figure 4). This builder gives the same
 * style in C++: controller bodies are lambdas executed at construction
 * time, producing the hierarchical dataflow graph.
 *
 * Example (dot product):
 * @code
 *   Design d("dotproduct");
 *   ParamId ts = d.tileParam("tileSize", n);
 *   Mem a = d.offchip("a", DType::f32(), {n});
 *   Mem b = d.offchip("b", DType::f32(), {n});
 *   Mem out = d.reg("out", DType::f32());
 *   d.accel([&](Scope& s) {
 *       s.metaPipeReduce("outer", {ctr(n, Sym::p(ts))}, ...);
 *   });
 * @endcode
 */

#ifndef DHDL_CORE_BUILDER_HH
#define DHDL_CORE_BUILDER_HH

#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/graph.hh"

namespace dhdl {

class Scope;

/** Handle to a memory node created through the DSL. */
struct Mem {
    NodeId id = kNoNode;
    bool valid() const { return id != kNoNode; }
};

/**
 * Handle to a value-producing node (primitive, load, or iterator).
 * Carries its scope so that infix operators can build nodes.
 */
struct Val {
    Scope* scope = nullptr;
    NodeId id = kNoNode;
    bool valid() const { return id != kNoNode; }
};

/** Shorthand for a counter dimension 0..max by step. */
inline CtrDim
ctr(Sym max, Sym step = Sym::c(1))
{
    return CtrDim{Sym::c(0), max, step};
}

inline CtrDim
ctr(int64_t max, Sym step = Sym::c(1))
{
    return CtrDim{Sym::c(0), Sym::c(max), step};
}

/**
 * A DHDL design: a graph, its parameter table, and the DSL entry
 * points. Off-chip memories and host-visible registers are declared on
 * the design; the accelerator body is declared through accel().
 */
class Design
{
  public:
    explicit Design(std::string name);

    Graph& graph() { return graph_; }
    const Graph& graph() const { return graph_; }
    ParamTable& params() { return graph_.params(); }
    const ParamTable& params() const { return graph_.params(); }

    /** Declare a tile-size parameter; legal values divide dataSize. */
    ParamId tileParam(const std::string& name, int64_t data_size,
                      int64_t def = 0, int64_t max_value = INT64_MAX);

    /** Declare a parallelization factor dividing the trip count. */
    ParamId parParam(const std::string& name, int64_t trip,
                     int64_t def = 1, int64_t max_value = 96);

    /** Declare a MetaPipe toggle (0 = Sequential, 1 = MetaPipe). */
    ParamId toggleParam(const std::string& name, int64_t def = 1);

    /** Declare a fixed (non-explored) named constant parameter. */
    ParamId fixedParam(const std::string& name, int64_t value);

    /**
     * Add a cross-parameter legality constraint, e.g.
     * `d.constrain(CExpr::p(ts) % CExpr::p(par) == 0)`.
     */
    void
    constrain(Constraint c)
    {
        graph_.constraints.push_back(std::move(c));
    }

    /** Declare an N-dimensional off-chip DRAM array. */
    Mem offchip(const std::string& name, DType type,
                std::vector<Sym> dims);

    /** Declare a host-visible scalar register (e.g. a final result). */
    Mem reg(const std::string& name, DType type, double init = 0.0);

    /**
     * Define the accelerator body. Creates the top-level Sequential
     * controller and runs fn with its scope. Must be called once.
     */
    void accel(const std::function<void(Scope&)>& fn);

  private:
    friend class Scope;
    Graph graph_;
    std::vector<NodeId> designRegs_;
};

/**
 * Construction context inside one controller. All node-creating calls
 * attach the new node to this scope's controller.
 */
class Scope
{
  public:
    Scope(Design& design, NodeId controller)
        : design_(design), ctrl_(controller) {}

    Design& design() { return design_; }
    Graph& graph() { return design_.graph(); }
    NodeId controller() const { return ctrl_; }

    // ---- Memories -----------------------------------------------------

    /** On-chip scratchpad with the given (possibly symbolic) dims. */
    Mem bram(const std::string& name, DType type, std::vector<Sym> dims);

    /** Local register. */
    Mem reg(const std::string& name, DType type, double init = 0.0);

    /** Priority queue of the given depth. */
    Mem queue(const std::string& name, DType type, Sym depth);

    // ---- Controllers --------------------------------------------------

    /** Sequential block without a loop. */
    void sequential(const std::string& name,
                    const std::function<void(Scope&)>& fn);

    /** Sequential loop over a counter chain. */
    void sequential(const std::string& name, std::vector<CtrDim> dims,
                    const std::function<void(Scope&,
                                             std::vector<Val>)>& fn);

    /** Fork-join parallel block with an implicit barrier. */
    void parallel(const std::string& name,
                  const std::function<void(Scope&)>& fn);

    /** Fine-grained pipeline over a counter chain (Map pattern). */
    void pipe(const std::string& name, std::vector<CtrDim> dims, Sym par,
              const std::function<void(Scope&, std::vector<Val>)>& fn);

    /**
     * Fine-grained pipeline with a reduction: the body's result value
     * is folded into the accumulator register with the combine op.
     */
    void pipeReduce(const std::string& name, std::vector<CtrDim> dims,
                    Sym par, Mem accum, Op combine,
                    const std::function<Val(Scope&,
                                            std::vector<Val>)>& fn);

    /** Coarse-grained pipeline over a counter chain (Map pattern). */
    void metaPipe(const std::string& name, std::vector<CtrDim> dims,
                  Sym par, Sym toggle,
                  const std::function<void(Scope&,
                                           std::vector<Val>)>& fn);

    /**
     * Coarse-grained pipeline with a tile reduction: the memory
     * returned by the body is combined elementwise into the
     * accumulator BRAM every iteration (Figure 4's MetaPipe(..,
     * sigT){..}{_+_}).
     */
    void metaPipeReduce(const std::string& name, std::vector<CtrDim> dims,
                        Sym par, Sym toggle, Mem accum, Op combine,
                        const std::function<Mem(Scope&,
                                                std::vector<Val>)>& fn);

    // ---- Memory command generators -------------------------------------

    /** Load a tile of an off-chip array into a BRAM. */
    void tileLoad(Mem offchip, Mem dst, std::vector<Val> base,
                  std::vector<Sym> extent, Sym par = Sym::c(1));

    /** Store a BRAM tile back to an off-chip array. */
    void tileStore(Mem offchip, Mem src, std::vector<Val> base,
                   std::vector<Sym> extent, Sym par = Sym::c(1));

    // ---- Primitives ----------------------------------------------------

    /** Literal constant. */
    Val constant(double v, DType type = DType::f32());

    /** Read one element of an on-chip memory. */
    Val load(Mem mem, std::vector<Val> addr);

    /** Write one element of an on-chip memory. */
    void store(Mem mem, std::vector<Val> addr, Val value);

    /** Binary operation; result type follows the left operand. */
    Val binop(Op op, Val a, Val b);

    /** Unary operation. */
    Val unary(Op op, Val a);

    /** 2-way multiplexer: sel ? a : b. */
    Val mux(Val sel, Val a, Val b);

  private:
    friend class Design;

    NodeId newController(NodeKind kind, const std::string& name,
                         std::vector<CtrDim> dims, Sym par, Sym toggle,
                         std::vector<Val>& iters_out);
    void attach(NodeId id);

    Design& design_;
    NodeId ctrl_;
};

// ---- Infix operators on Val ---------------------------------------------

Val operator+(Val a, Val b);
Val operator-(Val a, Val b);
Val operator*(Val a, Val b);
Val operator/(Val a, Val b);
Val operator<(Val a, Val b);
Val operator<=(Val a, Val b);
Val operator>(Val a, Val b);
Val operator>=(Val a, Val b);
Val operator==(Val a, Val b);
Val operator!=(Val a, Val b);
Val operator&&(Val a, Val b);
Val operator||(Val a, Val b);
Val operator!(Val a);
Val operator-(Val a);

Val operator+(Val a, double b);
Val operator-(Val a, double b);
Val operator*(Val a, double b);
Val operator/(Val a, double b);
Val operator<(Val a, double b);
Val operator>(Val a, double b);
Val operator>=(Val a, double b);
Val operator<=(Val a, double b);
Val operator-(double a, Val b);
Val operator*(double a, Val b);
Val operator/(double a, Val b);
Val operator+(double a, Val b);

Val vmin(Val a, Val b);
Val vmax(Val a, Val b);
Val vabs(Val a);
Val vsqrt(Val a);
Val vexp(Val a);
Val vlog(Val a);

} // namespace dhdl

#endif // DHDL_CORE_BUILDER_HH

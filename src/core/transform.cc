#include "core/transform.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace dhdl {

std::optional<double>
evalConstOp(Op op, const std::vector<double>& in)
{
    auto a = [&](size_t i) { return in[i]; };
    switch (op) {
      case Op::Add: return in.size() == 2 ? std::optional(a(0) + a(1))
                                          : std::nullopt;
      case Op::Sub: return in.size() == 2 ? std::optional(a(0) - a(1))
                                          : std::nullopt;
      case Op::Mul: return in.size() == 2 ? std::optional(a(0) * a(1))
                                          : std::nullopt;
      case Op::Div:
        if (in.size() != 2 || a(1) == 0.0)
            return std::nullopt;
        return a(0) / a(1);
      case Op::Mod:
        if (in.size() != 2 || a(1) == 0.0)
            return std::nullopt;
        return std::fmod(a(0), a(1));
      case Op::Min: return in.size() == 2
                               ? std::optional(std::min(a(0), a(1)))
                               : std::nullopt;
      case Op::Max: return in.size() == 2
                               ? std::optional(std::max(a(0), a(1)))
                               : std::nullopt;
      case Op::Lt: return in.size() == 2
                              ? std::optional(a(0) < a(1) ? 1.0 : 0.0)
                              : std::nullopt;
      case Op::Le: return in.size() == 2
                              ? std::optional(a(0) <= a(1) ? 1.0 : 0.0)
                              : std::nullopt;
      case Op::Gt: return in.size() == 2
                              ? std::optional(a(0) > a(1) ? 1.0 : 0.0)
                              : std::nullopt;
      case Op::Ge: return in.size() == 2
                              ? std::optional(a(0) >= a(1) ? 1.0 : 0.0)
                              : std::nullopt;
      case Op::Eq: return in.size() == 2
                              ? std::optional(a(0) == a(1) ? 1.0 : 0.0)
                              : std::nullopt;
      case Op::Neq: return in.size() == 2
                               ? std::optional(a(0) != a(1) ? 1.0
                                                            : 0.0)
                               : std::nullopt;
      case Op::And:
        return in.size() == 2
                   ? std::optional(a(0) != 0 && a(1) != 0 ? 1.0 : 0.0)
                   : std::nullopt;
      case Op::Or:
        return in.size() == 2
                   ? std::optional(a(0) != 0 || a(1) != 0 ? 1.0 : 0.0)
                   : std::nullopt;
      case Op::Not: return in.size() == 1
                               ? std::optional(a(0) != 0 ? 0.0 : 1.0)
                               : std::nullopt;
      case Op::Mux:
        return in.size() == 3
                   ? std::optional(a(0) != 0 ? a(1) : a(2))
                   : std::nullopt;
      case Op::Abs: return in.size() == 1
                               ? std::optional(std::fabs(a(0)))
                               : std::nullopt;
      case Op::Neg: return in.size() == 1 ? std::optional(-a(0))
                                          : std::nullopt;
      case Op::Sqrt:
        if (in.size() != 1 || a(0) < 0)
            return std::nullopt;
        return std::sqrt(a(0));
      case Op::Exp: return in.size() == 1
                               ? std::optional(std::exp(a(0)))
                               : std::nullopt;
      case Op::Log:
        if (in.size() != 1 || a(0) <= 0)
            return std::nullopt;
        return std::log(a(0));
      case Op::ToFloat:
      case Op::ToFixed:
        return in.size() == 1 ? std::optional(a(0)) : std::nullopt;
      default:
        return std::nullopt;
    }
}

std::vector<std::pair<NodeId, double>>
foldConstants(const Graph& g)
{
    std::unordered_map<NodeId, double> folded;
    // Ids are topologically ordered by construction, so one pass
    // propagates constants through arbitrarily deep expressions.
    for (NodeId id = 0; id < NodeId(g.numNodes()); ++id) {
        const auto* p = g.tryAs<PrimNode>(id);
        if (!p)
            continue;
        if (p->op == Op::Const) {
            folded[id] = p->constValue;
            continue;
        }
        if (p->op == Op::Iter || p->inputs.empty())
            continue;
        std::vector<double> in;
        in.reserve(p->inputs.size());
        bool all_const = true;
        for (NodeId i : p->inputs) {
            auto it = folded.find(i);
            if (it == folded.end()) {
                all_const = false;
                break;
            }
            in.push_back(it->second);
        }
        if (!all_const)
            continue;
        auto v = evalConstOp(p->op, in);
        if (v)
            folded[id] = *v;
    }
    // Plain Const nodes are already constants; report only derived
    // foldings, in ascending id order.
    std::vector<std::pair<NodeId, double>> out;
    out.reserve(folded.size());
    for (NodeId id = 0; id < NodeId(g.numNodes()); ++id) {
        const auto* p = g.tryAs<PrimNode>(id);
        if (p && p->op == Op::Const)
            continue;
        auto it = folded.find(id);
        if (it != folded.end())
            out.emplace_back(id, it->second);
    }
    return out;
}

std::vector<NodeId>
findDeadNodes(const Graph& g)
{
    // Roots of liveness: stores (value + address), transfer base
    // addresses, and reduce body results.
    std::vector<NodeId> work;
    std::unordered_set<NodeId> live;
    auto mark = [&](NodeId id) {
        if (id != kNoNode && live.insert(id).second)
            work.push_back(id);
    };

    for (NodeId id = 0; id < NodeId(g.numNodes()); ++id) {
        const Node& n = g.node(id);
        switch (n.kind()) {
          case NodeKind::Store: {
            const auto& s = g.nodeAs<StoreNode>(id);
            mark(s.value);
            for (NodeId a : s.addr)
                mark(a);
            break;
          }
          case NodeKind::TileLd: {
            for (NodeId b : g.nodeAs<TileLdNode>(id).base)
                mark(b);
            break;
          }
          case NodeKind::TileSt: {
            for (NodeId b : g.nodeAs<TileStNode>(id).base)
                mark(b);
            break;
          }
          case NodeKind::Pipe:
          case NodeKind::Sequential:
          case NodeKind::ParallelCtrl:
          case NodeKind::MetaPipe: {
            const auto& c = g.nodeAs<ControllerNode>(id);
            if (c.pattern == Pattern::Reduce)
                mark(c.bodyResult);
            break;
          }
          case NodeKind::Load: {
            // Load addresses become live only if the load itself is
            // live; handled in propagation below.
            break;
          }
          default:
            break;
        }
    }

    // Propagate liveness through data inputs.
    while (!work.empty()) {
        NodeId id = work.back();
        work.pop_back();
        const Node& n = g.node(id);
        if (const auto* p = g.tryAs<PrimNode>(id)) {
            for (NodeId i : p->inputs)
                mark(i);
        } else if (const auto* l = g.tryAs<LoadNode>(id)) {
            for (NodeId a : l->addr)
                mark(a);
        }
        (void)n;
    }

    // Dead = value-producing primitives that never became live;
    // ascending id order by construction.
    std::vector<NodeId> dead;
    for (NodeId id = 0; id < NodeId(g.numNodes()); ++id) {
        const Node& n = g.node(id);
        bool value_node =
            n.kind() == NodeKind::Load ||
            (n.kind() == NodeKind::Prim &&
             g.nodeAs<PrimNode>(id).op != Op::Iter);
        if (value_node && !live.count(id))
            dead.push_back(id);
    }
    return dead;
}

GraphStats
computeStats(const Graph& g)
{
    GraphStats s;
    s.params = int(g.params().size());
    s.offchipMems = int(g.offchipMems.size());
    for (NodeId id = 0; id < NodeId(g.numNodes()); ++id) {
        const Node& n = g.node(id);
        if (n.isController()) {
            ++s.controllers;
            if (n.kind() == NodeKind::Pipe)
                ++s.pipes;
            if (n.kind() == NodeKind::MetaPipe)
                ++s.metaPipes;
            // Nesting depth via parent chain.
            int depth = 1;
            NodeId p = n.parent;
            while (p != kNoNode) {
                ++depth;
                p = g.node(p).parent;
            }
            s.maxDepth = std::max(s.maxDepth, depth);
        } else if (n.isMemory()) {
            if (n.kind() != NodeKind::OffChipMem)
                ++s.memories;
        } else if (n.isTileTransfer()) {
            ++s.transfers;
        } else if (n.isPrimitive()) {
            ++s.primitives;
        }
    }
    return s;
}

} // namespace dhdl

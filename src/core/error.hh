/**
 * @file
 * Error reporting for DHDL, following the gem5 fatal/panic distinction:
 * fatal() is a user error (bad design description, illegal parameters);
 * panic() is an internal invariant violation (a bug in this library).
 *
 * Both exception types carry a machine-readable DiagCode so that
 * layers which must not die on a single bad input — the design space
 * explorer above all — can convert a caught exception into a
 * structured diagnostic (see core/diag.hh) instead of a string.
 */

#ifndef DHDL_CORE_ERROR_HH
#define DHDL_CORE_ERROR_HH

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dhdl {

/**
 * Machine-readable classification of an error or warning. Codes are
 * coarse by design: they name the failing subsystem/stage, not the
 * individual message, so that failure statistics can be aggregated
 * over thousands of design points.
 */
enum class DiagCode : uint8_t {
    Ok = 0,
    Unknown,          //!< Exception that carried no DHDL code.
    UserError,        //!< Generic FatalError (malformed design, bad args).
    InternalError,    //!< Generic PanicError (library bug).
    IllegalBinding,   //!< Parameter binding outside the legal space.
    InstantiationFailed,    //!< Inst construction threw.
    AreaEstimationFailed,   //!< Area estimator threw.
    RuntimeEstimationFailed, //!< Runtime estimator threw.
    DeviceCapacityExceeded, //!< Design does not fit the target device.
    TimeBudgetExceeded,     //!< Exploration wall-clock budget hit.
    EvalBudgetExceeded,     //!< Exploration point-count budget hit.
    CheckpointIo,           //!< Checkpoint file unreadable/corrupt.
    CheckpointMismatch,     //!< Checkpoint from a different run refused.
    ShardFailed,            //!< A supervised shard died/hung for good.
    HostApiMisuse,          //!< host::Accelerator called out of contract.
    ParseError,             //!< Malformed `.dhdl` IR text.
    SamplingShortfall,      //!< Legal space yielded fewer points than asked.
    Cancelled,              //!< Run stopped by a cooperative cancel.
    AdmissionRejected,      //!< Serving: request refused by admission control.
    VersionMismatch,        //!< Serving: client/server protocol skew.
};

/** Stable short name of a code (used in checkpoints and reports). */
const char* diagCodeName(DiagCode code);

/** Inverse of diagCodeName(); DiagCode::Unknown for unknown names. */
DiagCode diagCodeFromName(const std::string& name);

/** Raised for user-caused errors: malformed designs, illegal bindings. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg,
                        DiagCode code = DiagCode::UserError)
        : std::runtime_error(msg), code_(code) {}

    DiagCode code() const { return code_; }

  private:
    DiagCode code_;
};

/** Raised for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg,
                        DiagCode code = DiagCode::InternalError)
        : std::logic_error(msg), code_(code) {}

    DiagCode code() const { return code_; }

  private:
    DiagCode code_;
};

/** Throw a FatalError with the given message (and optional code). */
[[noreturn]] inline void
fatal(const std::string& msg, DiagCode code = DiagCode::UserError)
{
    throw FatalError(msg, code);
}

/** Throw a PanicError with the given message (and optional code). */
[[noreturn]] inline void
panic(const std::string& msg, DiagCode code = DiagCode::InternalError)
{
    throw PanicError(msg, code);
}

/** Require a user-level condition; throws FatalError when violated. */
inline void
require(bool cond, const std::string& msg,
        DiagCode code = DiagCode::UserError)
{
    if (!cond)
        fatal(msg, code);
}

/**
 * Literal-message overload: the std::string is materialized only on
 * failure, so a passing check costs one branch. The estimators call
 * require()/invariant() millions of times per sweep; the
 * const std::string& overloads would heap-allocate the message on
 * every successful call.
 */
inline void
require(bool cond, const char* msg,
        DiagCode code = DiagCode::UserError)
{
    if (!cond) [[unlikely]]
        fatal(std::string(msg), code);
}

/** Assert an internal invariant; throws PanicError when violated. */
inline void
invariant(bool cond, const std::string& msg)
{
    if (!cond)
        panic(msg);
}

/** Literal-message overload (see require(bool, const char*)). */
inline void
invariant(bool cond, const char* msg)
{
    if (!cond) [[unlikely]]
        panic(std::string(msg));
}

} // namespace dhdl

#endif // DHDL_CORE_ERROR_HH

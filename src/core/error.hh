/**
 * @file
 * Error reporting for DHDL, following the gem5 fatal/panic distinction:
 * fatal() is a user error (bad design description, illegal parameters);
 * panic() is an internal invariant violation (a bug in this library).
 */

#ifndef DHDL_CORE_ERROR_HH
#define DHDL_CORE_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace dhdl {

/** Raised for user-caused errors: malformed designs, illegal bindings. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Raised for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Throw a FatalError with the given message. */
[[noreturn]] inline void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

/** Throw a PanicError with the given message. */
[[noreturn]] inline void
panic(const std::string& msg)
{
    throw PanicError(msg);
}

/** Require a user-level condition; throws FatalError when violated. */
inline void
require(bool cond, const std::string& msg)
{
    if (!cond)
        fatal(msg);
}

/** Assert an internal invariant; throws PanicError when violated. */
inline void
invariant(bool cond, const std::string& msg)
{
    if (!cond)
        panic(msg);
}

} // namespace dhdl

#endif // DHDL_CORE_ERROR_HH

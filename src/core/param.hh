/**
 * @file
 * Design parameters. Every DHDL template is parameterized (Table I);
 * a concrete design instance is produced by binding every parameter to
 * a value. The design space explorer mutates bindings, so parameters
 * are first-class objects referenced by id rather than baked into the
 * graph (Section III: "DHDL heavily uses metaprogramming, so these
 * values are passed in as arguments to the DHDL program").
 */

#ifndef DHDL_CORE_PARAM_HH
#define DHDL_CORE_PARAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hh"

namespace dhdl {

using ParamId = int32_t;
inline constexpr ParamId kNoParam = -1;

/** Role of a parameter in the design space (Section IV-C). */
enum class ParamKind : uint8_t {
    TileSize,  //!< On-chip buffer extent; legal values divide data size.
    ParFactor, //!< Parallelization factor; legal values divide the trip.
    Toggle,    //!< MetaPipe toggle: 0 = Sequential, 1 = MetaPipe.
    Fixed,     //!< Constant defined by the design, not explored.
};

/** Definition of one explorable design parameter. */
struct ParamDef {
    std::string name;
    ParamKind kind = ParamKind::Fixed;
    int64_t defaultValue = 1;
    /**
     * When > 0, legal values are restricted to divisors of this number
     * (the paper's pruning heuristic: non-divisor tile sizes and
     * parallelization factors create edge cases that are usually
     * suboptimal).
     */
    int64_t divisorOf = 0;
    int64_t minValue = 1;
    int64_t maxValue = INT64_MAX;
};

/** A concrete assignment of values to every parameter of a design. */
struct ParamBinding {
    std::vector<int64_t> values;

    int64_t
    operator[](ParamId p) const
    {
        invariant(p >= 0 && size_t(p) < values.size(),
                  "parameter id out of range");
        return values[size_t(p)];
    }

    int64_t&
    operator[](ParamId p)
    {
        invariant(p >= 0 && size_t(p) < values.size(),
                  "parameter id out of range");
        return values[size_t(p)];
    }
};

/** The table of all parameters declared by a design. */
class ParamTable
{
  public:
    ParamId add(ParamDef def);

    const ParamDef& operator[](ParamId p) const;
    size_t size() const { return defs_.size(); }

    /** Binding with every parameter at its default value. */
    ParamBinding defaults() const;

    /**
     * Enumerate the legal values of a parameter under the divisor
     * pruning heuristics. Values are sorted ascending.
     */
    std::vector<int64_t> legalValues(ParamId p) const;

    /** True when the binding assigns a legal value to every param. */
    bool isLegal(const ParamBinding& b) const;

  private:
    std::vector<ParamDef> defs_;
};

/**
 * A symbolic size: a compile-time constant (dataset annotation) or an
 * affine reference to a design parameter (param + offset). Used for
 * memory dimensions, counter bounds/strides, tile extents, and
 * parallelization factors. The offset form expresses halo'd tiles
 * such as `tileRows + k - 1` in stencil designs.
 */
class Sym
{
  public:
    Sym() : param_(kNoParam), const_(1) {}

    /** Constant symbol. */
    static Sym
    c(int64_t v)
    {
        Sym s;
        s.const_ = v;
        return s;
    }

    /** Parameter reference symbol, optionally offset by a constant. */
    static Sym
    p(ParamId id, int64_t offset = 0)
    {
        Sym s;
        s.param_ = id;
        s.const_ = offset;
        return s;
    }

    bool isParam() const { return param_ != kNoParam; }
    ParamId param() const { return param_; }

    /** Constant offset added after parameter evaluation. */
    int64_t
    offset() const
    {
        return isParam() ? const_ : 0;
    }

    /** Evaluate under a binding. */
    int64_t
    eval(const ParamBinding& b) const
    {
        return isParam() ? b[param_] + const_ : const_;
    }

    /** Constant value; only valid when !isParam(). */
    int64_t
    constant() const
    {
        invariant(!isParam(), "Sym::constant() on a parameter symbol");
        return const_;
    }

  private:
    ParamId param_;
    int64_t const_;
};

/** All divisors of n in ascending order. */
std::vector<int64_t> divisorsOf(int64_t n);

/**
 * Largest divisor of n that is <= cap, preferring divisors that are
 * themselves multiples of `multiple` (useful for defaults that must
 * stay divisible by typical parallelization factors). Returns 1 when
 * nothing else qualifies.
 */
int64_t largestDivisorLE(int64_t n, int64_t cap, int64_t multiple = 1);

} // namespace dhdl

#endif // DHDL_CORE_PARAM_HH

#include "core/diag.hh"

#include <algorithm>
#include <map>

namespace dhdl {

const char*
diagCodeName(DiagCode code)
{
    switch (code) {
      case DiagCode::Ok:
        return "ok";
      case DiagCode::Unknown:
        return "unknown";
      case DiagCode::UserError:
        return "user-error";
      case DiagCode::InternalError:
        return "internal-error";
      case DiagCode::IllegalBinding:
        return "illegal-binding";
      case DiagCode::InstantiationFailed:
        return "instantiation-failed";
      case DiagCode::AreaEstimationFailed:
        return "area-estimation-failed";
      case DiagCode::RuntimeEstimationFailed:
        return "runtime-estimation-failed";
      case DiagCode::DeviceCapacityExceeded:
        return "device-capacity-exceeded";
      case DiagCode::TimeBudgetExceeded:
        return "time-budget-exceeded";
      case DiagCode::EvalBudgetExceeded:
        return "eval-budget-exceeded";
      case DiagCode::CheckpointIo:
        return "checkpoint-io";
      case DiagCode::CheckpointMismatch:
        return "checkpoint-mismatch";
      case DiagCode::ShardFailed:
        return "shard-failed";
      case DiagCode::HostApiMisuse:
        return "host-api-misuse";
      case DiagCode::ParseError:
        return "parse-error";
      case DiagCode::SamplingShortfall:
        return "sampling-shortfall";
      case DiagCode::Cancelled:
        return "cancelled";
      case DiagCode::AdmissionRejected:
        return "admission-rejected";
      case DiagCode::VersionMismatch:
        return "version-mismatch";
    }
    return "unknown";
}

DiagCode
diagCodeFromName(const std::string& name)
{
    static const DiagCode all[] = {
        DiagCode::Ok,
        DiagCode::Unknown,
        DiagCode::UserError,
        DiagCode::InternalError,
        DiagCode::IllegalBinding,
        DiagCode::InstantiationFailed,
        DiagCode::AreaEstimationFailed,
        DiagCode::RuntimeEstimationFailed,
        DiagCode::DeviceCapacityExceeded,
        DiagCode::TimeBudgetExceeded,
        DiagCode::EvalBudgetExceeded,
        DiagCode::CheckpointIo,
        DiagCode::CheckpointMismatch,
        DiagCode::ShardFailed,
        DiagCode::HostApiMisuse,
        DiagCode::ParseError,
        DiagCode::SamplingShortfall,
        DiagCode::Cancelled,
        DiagCode::AdmissionRejected,
        DiagCode::VersionMismatch,
    };
    for (DiagCode c : all) {
        if (name == diagCodeName(c))
            return c;
    }
    return DiagCode::Unknown;
}

std::string
Diag::str() const
{
    std::ostringstream os;
    os << (severity == DiagSeverity::Error ? "error" : "warning");
    os << " [" << diagCodeName(code) << "]";
    if (!stage.empty())
        os << " at " << stage;
    if (pointIndex >= 0)
        os << " (point " << pointIndex << ")";
    if (!worker.empty())
        os << " on " << worker;
    os << ": " << message;
    if (!context.empty())
        os << " {" << context << "}";
    return os.str();
}

void
DiagSink::report(Diag d)
{
    std::lock_guard<std::mutex> lock(mu_);
    (d.severity == DiagSeverity::Error ? errors_ : warnings_)++;
    diags_.push_back(std::move(d));
}

size_t
DiagSink::errorCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return errors_;
}

size_t
DiagSink::warningCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return warnings_;
}

size_t
DiagSink::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return diags_.size();
}

std::vector<Diag>
DiagSink::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return diags_;
}

std::vector<Diag>
DiagSink::drain()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Diag> out = std::move(diags_);
    diags_.clear();
    errors_ = 0;
    warnings_ = 0;
    return out;
}

Diag
diagFromCurrentException(const std::string& stage)
{
    Diag d;
    d.stage = stage;
    try {
        throw;
    } catch (const FatalError& e) {
        d.code = e.code();
        d.message = e.what();
    } catch (const PanicError& e) {
        d.code = e.code();
        d.message = e.what();
    } catch (const std::exception& e) {
        d.code = DiagCode::Unknown;
        d.message = e.what();
    } catch (...) {
        d.code = DiagCode::Unknown;
        d.message = "non-standard exception";
    }
    return d;
}

std::vector<std::pair<std::string, size_t>>
topReasons(const std::vector<Diag>& diags, size_t top)
{
    // Group by (code, stage); keep the first message as an exemplar.
    std::map<std::pair<std::string, std::string>,
             std::pair<size_t, std::string>>
        groups;
    for (const auto& d : diags) {
        if (d.severity != DiagSeverity::Error)
            continue;
        auto key = std::make_pair(std::string(diagCodeName(d.code)),
                                  d.stage);
        auto& g = groups[key];
        if (g.first++ == 0)
            g.second = d.message;
    }
    std::vector<std::pair<std::string, size_t>> out;
    out.reserve(groups.size());
    for (const auto& [key, g] : groups) {
        std::string label = key.first;
        if (!key.second.empty())
            label += "@" + key.second;
        std::string msg = g.second;
        if (msg.size() > 60)
            msg = msg.substr(0, 57) + "...";
        if (!msg.empty())
            label += " (" + msg + ")";
        out.emplace_back(std::move(label), g.first);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const auto& a, const auto& b) {
                         return a.second > b.second;
                     });
    if (out.size() > top)
        out.resize(top);
    return out;
}

} // namespace dhdl

#include "core/constraint.hh"

#include <algorithm>

namespace dhdl {

const char*
arithName(CArith op)
{
    switch (op) {
      case CArith::Add: return "+";
      case CArith::Sub: return "-";
      case CArith::Mul: return "*";
      case CArith::Div: return "/";
      case CArith::Mod: return "%";
    }
    return "?";
}

const char*
cmpName(CCmp op)
{
    switch (op) {
      case CCmp::Eq: return "==";
      case CCmp::Ne: return "!=";
      case CCmp::Lt: return "<";
      case CCmp::Le: return "<=";
      case CCmp::Gt: return ">";
      case CCmp::Ge: return ">=";
    }
    return "?";
}

CExpr
CExpr::arith(CArith op, CExpr lhs, CExpr rhs)
{
    CExpr e;
    e.kind_ = Kind::Arith;
    e.op_ = op;
    e.lhs_ = std::make_shared<const CExpr>(std::move(lhs));
    e.rhs_ = std::make_shared<const CExpr>(std::move(rhs));
    return e;
}

const CExpr&
CExpr::lhs() const
{
    invariant(lhs_ != nullptr, "CExpr::lhs() on a leaf");
    return *lhs_;
}

const CExpr&
CExpr::rhs() const
{
    invariant(rhs_ != nullptr, "CExpr::rhs() on a leaf");
    return *rhs_;
}

std::optional<int64_t>
CExpr::eval(const ParamBinding& b) const
{
    switch (kind_) {
      case Kind::Const:
        return value_;
      case Kind::Param:
        if (param_ < 0 || size_t(param_) >= b.values.size())
            return std::nullopt;
        return b.values[size_t(param_)];
      case Kind::Arith: {
        auto l = lhs().eval(b);
        auto r = rhs().eval(b);
        if (!l || !r)
            return std::nullopt;
        int64_t out = 0;
        switch (op_) {
          case CArith::Add:
            if (__builtin_add_overflow(*l, *r, &out))
                return std::nullopt;
            return out;
          case CArith::Sub:
            if (__builtin_sub_overflow(*l, *r, &out))
                return std::nullopt;
            return out;
          case CArith::Mul:
            if (__builtin_mul_overflow(*l, *r, &out))
                return std::nullopt;
            return out;
          case CArith::Div:
            if (*r == 0 || (*l == INT64_MIN && *r == -1))
                return std::nullopt;
            return *l / *r;
          case CArith::Mod:
            if (*r == 0 || (*l == INT64_MIN && *r == -1))
                return std::nullopt;
            return *l % *r;
        }
        return std::nullopt;
      }
    }
    return std::nullopt;
}

std::string
CExpr::str() const
{
    switch (kind_) {
      case Kind::Const:
        return std::to_string(value_);
      case Kind::Param:
        return "$" + std::to_string(param_);
      case Kind::Arith:
        return "(" + lhs().str() + " " + arithName(op_) + " " +
               rhs().str() + ")";
    }
    return "?";
}

ParamId
CExpr::maxParam() const
{
    switch (kind_) {
      case Kind::Const:
        return kNoParam;
      case Kind::Param:
        return param_;
      case Kind::Arith:
        return std::max(lhs().maxParam(), rhs().maxParam());
    }
    return kNoParam;
}

bool
Constraint::eval(const ParamBinding& b) const
{
    auto l = lhs.eval(b);
    auto r = rhs.eval(b);
    if (!l || !r)
        return false;
    switch (cmp) {
      case CCmp::Eq: return *l == *r;
      case CCmp::Ne: return *l != *r;
      case CCmp::Lt: return *l < *r;
      case CCmp::Le: return *l <= *r;
      case CCmp::Gt: return *l > *r;
      case CCmp::Ge: return *l >= *r;
    }
    return false;
}

std::string
Constraint::str() const
{
    return lhs.str() + " " + cmpName(cmp) + " " + rhs.str();
}

ParamId
Constraint::maxParam() const
{
    return std::max(lhs.maxParam(), rhs.maxParam());
}

} // namespace dhdl

#include "core/builder.hh"

#include <algorithm>

namespace dhdl {

Design::Design(std::string name) : graph_(std::move(name))
{
}

ParamId
Design::tileParam(const std::string& name, int64_t data_size, int64_t def,
                  int64_t max_value)
{
    require(data_size > 0, "tile parameter '" + name +
            "' needs a positive data size");
    ParamDef d;
    d.name = name;
    d.kind = ParamKind::TileSize;
    d.divisorOf = data_size;
    d.minValue = 1;
    d.maxValue = std::min(max_value, data_size);
    if (def <= 0) {
        // Default to the largest legal divisor <= 1024, preferring
        // multiples of 8 so default parallelization factors divide it.
        def = largestDivisorLE(data_size,
                               std::min<int64_t>(1024, d.maxValue), 8);
    }
    d.defaultValue = def;
    return params().add(d);
}

ParamId
Design::parParam(const std::string& name, int64_t trip, int64_t def,
                 int64_t max_value)
{
    require(trip > 0, "par parameter '" + name +
            "' needs a positive trip count");
    ParamDef d;
    d.name = name;
    d.kind = ParamKind::ParFactor;
    d.divisorOf = trip;
    d.minValue = 1;
    d.maxValue = std::min(max_value, trip);
    d.defaultValue = def;
    return params().add(d);
}

ParamId
Design::toggleParam(const std::string& name, int64_t def)
{
    ParamDef d;
    d.name = name;
    d.kind = ParamKind::Toggle;
    d.minValue = 0;
    d.maxValue = 1;
    d.defaultValue = def;
    return params().add(d);
}

ParamId
Design::fixedParam(const std::string& name, int64_t value)
{
    ParamDef d;
    d.name = name;
    d.kind = ParamKind::Fixed;
    d.defaultValue = value;
    d.minValue = value;
    d.maxValue = value;
    return params().add(d);
}

Mem
Design::offchip(const std::string& name, DType type, std::vector<Sym> dims)
{
    require(!dims.empty(), "off-chip memory '" + name + "' needs dims");
    auto& n = graph_.make<OffChipMemNode>(name, type, std::move(dims));
    graph_.offchipMems.push_back(n.id());
    return Mem{n.id()};
}

Mem
Design::reg(const std::string& name, DType type, double init)
{
    auto& n = graph_.make<RegNode>(name, type, init);
    designRegs_.push_back(n.id());
    return Mem{n.id()};
}

void
Design::accel(const std::function<void(Scope&)>& fn)
{
    require(graph_.root == kNoNode, "accel() may only be called once");
    auto& top = graph_.make<SequentialNode>("accel");
    graph_.root = top.id();
    // Design-level registers live inside the top controller.
    for (NodeId r : designRegs_) {
        graph_.node(r).parent = top.id();
        top.children.push_back(r);
    }
    Scope s(*this, top.id());
    fn(s);
}

// ---- Scope ----------------------------------------------------------------

void
Scope::attach(NodeId id)
{
    graph().node(id).parent = ctrl_;
    graph().nodeAs<ControllerNode>(ctrl_).children.push_back(id);
}

Mem
Scope::bram(const std::string& name, DType type, std::vector<Sym> dims)
{
    require(!dims.empty(), "BRAM '" + name + "' needs dims");
    auto& n = graph().make<BramNode>(name, type, std::move(dims));
    attach(n.id());
    return Mem{n.id()};
}

Mem
Scope::reg(const std::string& name, DType type, double init)
{
    auto& n = graph().make<RegNode>(name, type, init);
    attach(n.id());
    return Mem{n.id()};
}

Mem
Scope::queue(const std::string& name, DType type, Sym depth)
{
    auto& n = graph().make<QueueNode>(name, type, depth);
    attach(n.id());
    return Mem{n.id()};
}

NodeId
Scope::newController(NodeKind kind, const std::string& name,
                     std::vector<CtrDim> dims, Sym par, Sym toggle,
                     std::vector<Val>& iters_out)
{
    ControllerNode* c = nullptr;
    switch (kind) {
      case NodeKind::Pipe:
        c = &graph().make<PipeNode>(name);
        break;
      case NodeKind::Sequential:
        c = &graph().make<SequentialNode>(name);
        break;
      case NodeKind::ParallelCtrl:
        c = &graph().make<ParallelNode>(name);
        break;
      case NodeKind::MetaPipe:
        c = &graph().make<MetaPipeNode>(name);
        break;
      default:
        panic("newController: not a controller kind");
    }
    c->par = par;
    c->toggle = toggle;
    attach(c->id());

    if (!dims.empty()) {
        auto& counter = graph().make<CounterNode>(name + ".ctr",
                                                  std::move(dims));
        counter.parent = c->id();
        c->counter = counter.id();
        const auto& cdims =
            graph().nodeAs<CounterNode>(counter.id()).dims;
        for (size_t i = 0; i < cdims.size(); ++i) {
            auto& it = graph().make<PrimNode>(
                name + ".i" + std::to_string(i), Op::Iter, DType::i32());
            it.counter = counter.id();
            it.ctrDim = int(i);
            it.parent = c->id();
            c->children.push_back(it.id());
            iters_out.push_back(Val{nullptr, it.id()});
        }
    }
    return c->id();
}

void
Scope::sequential(const std::string& name,
                  const std::function<void(Scope&)>& fn)
{
    std::vector<Val> iters;
    NodeId id = newController(NodeKind::Sequential, name, {}, Sym::c(1),
                              Sym::c(1), iters);
    Scope s(design_, id);
    fn(s);
}

void
Scope::sequential(const std::string& name, std::vector<CtrDim> dims,
                  const std::function<void(Scope&,
                                           std::vector<Val>)>& fn)
{
    std::vector<Val> iters;
    NodeId id = newController(NodeKind::Sequential, name, std::move(dims),
                              Sym::c(1), Sym::c(1), iters);
    Scope s(design_, id);
    for (auto& it : iters)
        it.scope = &s;
    fn(s, iters);
}

void
Scope::parallel(const std::string& name,
                const std::function<void(Scope&)>& fn)
{
    std::vector<Val> iters;
    NodeId id = newController(NodeKind::ParallelCtrl, name, {}, Sym::c(1),
                              Sym::c(1), iters);
    Scope s(design_, id);
    fn(s);
}

void
Scope::pipe(const std::string& name, std::vector<CtrDim> dims, Sym par,
            const std::function<void(Scope&, std::vector<Val>)>& fn)
{
    std::vector<Val> iters;
    NodeId id = newController(NodeKind::Pipe, name, std::move(dims), par,
                              Sym::c(1), iters);
    Scope s(design_, id);
    for (auto& it : iters)
        it.scope = &s;
    fn(s, iters);
}

void
Scope::pipeReduce(const std::string& name, std::vector<CtrDim> dims,
                  Sym par, Mem accum, Op combine,
                  const std::function<Val(Scope&, std::vector<Val>)>& fn)
{
    require(accum.valid(), "pipeReduce needs an accumulator");
    std::vector<Val> iters;
    NodeId id = newController(NodeKind::Pipe, name, std::move(dims), par,
                              Sym::c(1), iters);
    auto& c = graph().nodeAs<PipeNode>(id);
    c.pattern = Pattern::Reduce;
    c.accum = accum.id;
    c.combine = combine;
    Scope s(design_, id);
    for (auto& it : iters)
        it.scope = &s;
    Val result = fn(s, iters);
    require(result.valid(), "pipeReduce body must return a value");
    c.bodyResult = result.id;
}

void
Scope::metaPipe(const std::string& name, std::vector<CtrDim> dims, Sym par,
                Sym toggle,
                const std::function<void(Scope&, std::vector<Val>)>& fn)
{
    std::vector<Val> iters;
    NodeId id = newController(NodeKind::MetaPipe, name, std::move(dims),
                              par, toggle, iters);
    Scope s(design_, id);
    for (auto& it : iters)
        it.scope = &s;
    fn(s, iters);
}

void
Scope::metaPipeReduce(const std::string& name, std::vector<CtrDim> dims,
                      Sym par, Sym toggle, Mem accum, Op combine,
                      const std::function<Mem(Scope&,
                                              std::vector<Val>)>& fn)
{
    require(accum.valid(), "metaPipeReduce needs an accumulator");
    std::vector<Val> iters;
    NodeId id = newController(NodeKind::MetaPipe, name, std::move(dims),
                              par, toggle, iters);
    auto& c = graph().nodeAs<MetaPipeNode>(id);
    c.pattern = Pattern::Reduce;
    c.accum = accum.id;
    c.combine = combine;
    Scope s(design_, id);
    for (auto& it : iters)
        it.scope = &s;
    Mem result = fn(s, iters);
    require(result.valid(), "metaPipeReduce body must return a memory");
    c.bodyResult = result.id;
}

void
Scope::tileLoad(Mem offchip, Mem dst, std::vector<Val> base,
                std::vector<Sym> extent, Sym par)
{
    require(offchip.valid() && dst.valid(), "tileLoad needs memories");
    auto& n = graph().make<TileLdNode>(
        graph().node(dst.id).name() + ".load", offchip.id, dst.id);
    for (const auto& b : base)
        n.base.push_back(b.id);
    n.base.resize(extent.size(), kNoNode);
    n.extent = std::move(extent);
    n.par = par;
    attach(n.id());
}

void
Scope::tileStore(Mem offchip, Mem src, std::vector<Val> base,
                 std::vector<Sym> extent, Sym par)
{
    require(offchip.valid() && src.valid(), "tileStore needs memories");
    auto& n = graph().make<TileStNode>(
        graph().node(src.id).name() + ".store", offchip.id, src.id);
    for (const auto& b : base)
        n.base.push_back(b.id);
    n.base.resize(extent.size(), kNoNode);
    n.extent = std::move(extent);
    n.par = par;
    attach(n.id());
}

Val
Scope::constant(double v, DType type)
{
    auto& n = graph().make<PrimNode>("const", Op::Const, type);
    n.constValue = v;
    attach(n.id());
    return Val{this, n.id()};
}

Val
Scope::load(Mem mem, std::vector<Val> addr)
{
    require(mem.valid(), "load from invalid memory");
    const auto& m = graph().nodeAs<MemNode>(mem.id);
    auto& n = graph().make<LoadNode>(m.name() + ".ld", mem.id, m.type);
    for (const auto& a : addr)
        n.addr.push_back(a.id);
    attach(n.id());
    return Val{this, n.id()};
}

void
Scope::store(Mem mem, std::vector<Val> addr, Val value)
{
    require(mem.valid(), "store to invalid memory");
    require(value.valid(), "store of invalid value");
    const auto& m = graph().nodeAs<MemNode>(mem.id);
    auto& n = graph().make<StoreNode>(m.name() + ".st", mem.id, value.id);
    for (const auto& a : addr)
        n.addr.push_back(a.id);
    attach(n.id());
}

Val
Scope::binop(Op op, Val a, Val b)
{
    require(a.valid() && b.valid(), "binop on invalid value");
    DType t = DType::f32();
    if (opProducesBit(op)) {
        t = DType::bit();
    } else if (const auto* p = graph().tryAs<PrimNode>(a.id)) {
        t = p->type;
    } else if (const auto* ld = graph().tryAs<LoadNode>(a.id)) {
        t = ld->type;
    }
    auto& n = graph().make<PrimNode>(opName(op), op, t);
    n.inputs = {a.id, b.id};
    attach(n.id());
    return Val{this, n.id()};
}

Val
Scope::unary(Op op, Val a)
{
    require(a.valid(), "unary on invalid value");
    DType t = DType::f32();
    if (const auto* p = graph().tryAs<PrimNode>(a.id))
        t = p->type;
    else if (const auto* ld = graph().tryAs<LoadNode>(a.id))
        t = ld->type;
    if (opProducesBit(op))
        t = DType::bit();
    auto& n = graph().make<PrimNode>(opName(op), op, t);
    n.inputs = {a.id};
    attach(n.id());
    return Val{this, n.id()};
}

Val
Scope::mux(Val sel, Val a, Val b)
{
    require(sel.valid() && a.valid() && b.valid(), "mux on invalid value");
    DType t = DType::f32();
    if (const auto* p = graph().tryAs<PrimNode>(a.id))
        t = p->type;
    else if (const auto* ld = graph().tryAs<LoadNode>(a.id))
        t = ld->type;
    auto& n = graph().make<PrimNode>("mux", Op::Mux, t);
    n.inputs = {sel.id, a.id, b.id};
    attach(n.id());
    return Val{this, n.id()};
}

// ---- Operators -------------------------------------------------------------

namespace {

Scope*
scopeOf(Val a, Val b)
{
    Scope* s = a.scope ? a.scope : b.scope;
    require(s != nullptr, "operator on scope-less values");
    return s;
}

} // namespace

Val operator+(Val a, Val b) { return scopeOf(a, b)->binop(Op::Add, a, b); }
Val operator-(Val a, Val b) { return scopeOf(a, b)->binop(Op::Sub, a, b); }
Val operator*(Val a, Val b) { return scopeOf(a, b)->binop(Op::Mul, a, b); }
Val operator/(Val a, Val b) { return scopeOf(a, b)->binop(Op::Div, a, b); }
Val operator<(Val a, Val b) { return scopeOf(a, b)->binop(Op::Lt, a, b); }
Val operator<=(Val a, Val b) { return scopeOf(a, b)->binop(Op::Le, a, b); }
Val operator>(Val a, Val b) { return scopeOf(a, b)->binop(Op::Gt, a, b); }
Val operator>=(Val a, Val b) { return scopeOf(a, b)->binop(Op::Ge, a, b); }
Val operator==(Val a, Val b) { return scopeOf(a, b)->binop(Op::Eq, a, b); }
Val operator!=(Val a, Val b) { return scopeOf(a, b)->binop(Op::Neq, a, b); }
Val operator&&(Val a, Val b) { return scopeOf(a, b)->binop(Op::And, a, b); }
Val operator||(Val a, Val b) { return scopeOf(a, b)->binop(Op::Or, a, b); }
Val operator!(Val a) { return scopeOf(a, a)->unary(Op::Not, a); }
Val operator-(Val a) { return scopeOf(a, a)->unary(Op::Neg, a); }

namespace {

Val
litLike(Val a, double v)
{
    Scope* s = a.scope;
    require(s != nullptr, "literal operand needs a scoped value");
    DType t = DType::f32();
    if (const auto* p = s->graph().tryAs<PrimNode>(a.id))
        t = p->type;
    else if (const auto* ld = s->graph().tryAs<LoadNode>(a.id))
        t = ld->type;
    return s->constant(v, t);
}

} // namespace

Val operator+(Val a, double b) { return a + litLike(a, b); }
Val operator-(Val a, double b) { return a - litLike(a, b); }
Val operator*(Val a, double b) { return a * litLike(a, b); }
Val operator/(Val a, double b) { return a / litLike(a, b); }
Val operator<(Val a, double b) { return a < litLike(a, b); }
Val operator>(Val a, double b) { return a > litLike(a, b); }
Val operator>=(Val a, double b) { return a >= litLike(a, b); }
Val operator<=(Val a, double b) { return a <= litLike(a, b); }
Val operator-(double a, Val b) { return litLike(b, a) - b; }
Val operator*(double a, Val b) { return litLike(b, a) * b; }
Val operator/(double a, Val b) { return litLike(b, a) / b; }
Val operator+(double a, Val b) { return litLike(b, a) + b; }

Val vmin(Val a, Val b) { return scopeOf(a, b)->binop(Op::Min, a, b); }
Val vmax(Val a, Val b) { return scopeOf(a, b)->binop(Op::Max, a, b); }
Val vabs(Val a) { return scopeOf(a, a)->unary(Op::Abs, a); }
Val vsqrt(Val a) { return scopeOf(a, a)->unary(Op::Sqrt, a); }
Val vexp(Val a) { return scopeOf(a, a)->unary(Op::Exp, a); }
Val vlog(Val a) { return scopeOf(a, a)->unary(Op::Log, a); }

} // namespace dhdl

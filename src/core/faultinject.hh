/**
 * @file
 * Fault-injection harness for crash-safety testing. Production code
 * carries a small number of named injection points (the explorer's
 * evaluation loop, the checkpoint writer); each point is armed by a
 * spec string — programmatically via configure() for tests, or from
 * the DHDL_FAULT environment variable so the CLI and CI chaos jobs
 * can inject faults into unmodified binaries:
 *
 *   DHDL_FAULT="crash-after-evals=40"          kill -9 self after
 *                                              the 40th evaluation
 *   DHDL_FAULT="hang-after-evals=10,hang-seconds=2"
 *                                              sleep 2s after the
 *                                              10th evaluation
 *   DHDL_FAULT="torn-checkpoint=2"             the 2nd checkpoint
 *                                              write leaves a torn
 *                                              tail (mid-record cut)
 *   DHDL_FAULT="corrupt-record=5"              flip one byte in data
 *                                              record 5 of every
 *                                              checkpoint write
 *
 * Armed-but-never-hit points are harmless; a disarmed harness costs
 * one relaxed atomic load per check. Counting-style points
 * (crash/hang/torn) fire exactly once, on the N-th occurrence; the
 * corrupt-record point applies to every checkpoint write while
 * armed, so the file on disk is corrupted no matter which write was
 * the last. Every firing increments an obs counter
 * (`fault.fired.<point>`), so recoveries are attributable in metrics
 * output.
 *
 * The harness is process-wide and thread-safe. It exists to *cause*
 * failures; the recovery paths it exercises (torn-tail truncation,
 * CRC record rejection, supervisor retry) are the product.
 */

#ifndef DHDL_CORE_FAULTINJECT_HH
#define DHDL_CORE_FAULTINJECT_HH

#include <cstdint>
#include <optional>
#include <string>

namespace dhdl::fault {

/** Named injection points threaded through production code. */
enum class Point : uint8_t {
    CrashAfterEvals, //!< SIGKILL self after N completed evaluations.
    HangAfterEvals,  //!< Sleep hangSeconds() after N evaluations.
    TornCheckpoint,  //!< N-th checkpoint write is cut mid-record.
    CorruptRecord,   //!< Flip a byte in data record N on every write.
    kCount,
};

/** Stable spec-string key of a point ("crash-after-evals", ...). */
const char* pointName(Point p);

/**
 * Arm points from a spec: comma-separated `point=value` pairs using
 * the names above, plus `hang-seconds=S`. Throws FatalError on an
 * unknown key or a non-positive value. Replaces any prior
 * configuration; occurrence counters restart at zero.
 */
void configure(const std::string& spec);

/**
 * Arm from the DHDL_FAULT environment variable. Returns true when
 * the variable was set and parsed. Called once per process by the
 * layers that host injection points; safe to call repeatedly.
 */
bool configureFromEnv();

/** Disarm every point and zero all counters. */
void reset();

/** True when any point is armed (one relaxed load). */
bool active();

/** The armed threshold of a point; nullopt when disarmed. */
std::optional<int64_t> armed(Point p);

/**
 * Count one occurrence at a point. Returns true exactly when this
 * occurrence is the armed N-th (one-shot) — the caller then performs
 * the fault. For CorruptRecord the caller instead reads armed() and
 * applies the corruption itself; hit() is for counting-style points.
 */
bool hit(Point p);

/** Duration of an injected hang (spec `hang-seconds`, default 3600). */
double hangSeconds();

/**
 * Die the way a kill -9 does: no unwinding, no atexit, no flush.
 * raise(SIGKILL), with _Exit as a theoretical fallback.
 */
[[noreturn]] void crashHard();

/** Block the calling thread for `seconds` (injected hang body). */
void sleepFor(double seconds);

} // namespace dhdl::fault

#endif // DHDL_CORE_FAULTINJECT_HH

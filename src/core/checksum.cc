#include "core/checksum.hh"

#include <array>

namespace dhdl {

namespace {

constexpr std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr auto kCrcTable = makeCrcTable();

} // namespace

uint32_t
crc32(std::string_view bytes)
{
    uint32_t c = 0xFFFFFFFFu;
    for (unsigned char ch : bytes)
        c = kCrcTable[(c ^ ch) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint64_t
fnv1a(std::string_view bytes)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char ch : bytes) {
        h ^= ch;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace dhdl

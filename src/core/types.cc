#include "core/types.hh"

#include <sstream>

namespace dhdl {

int
DType::bits() const
{
    switch (kind) {
      case TypeKind::Float:
        return 1 + fieldA + fieldB;
      case TypeKind::Fixed:
        return fieldA + fieldB;
      case TypeKind::Bit:
        return 1;
    }
    return 0;
}

std::string
DType::str() const
{
    std::ostringstream os;
    switch (kind) {
      case TypeKind::Float:
        if (fieldA == 8 && fieldB == 23)
            return "f32";
        if (fieldA == 11 && fieldB == 52)
            return "f64";
        os << "flt<" << int(fieldA) << "," << int(fieldB) << ">";
        return os.str();
      case TypeKind::Fixed:
        if (fieldB == 0) {
            os << (sign ? "i" : "u") << int(fieldA);
            return os.str();
        }
        os << "fix<" << int(fieldA) << "," << int(fieldB) << ">";
        return os.str();
      case TypeKind::Bit:
        return "bit";
    }
    return "?";
}

bool
DType::operator==(const DType& o) const
{
    return kind == o.kind && fieldA == o.fieldA && fieldB == o.fieldB &&
           sign == o.sign;
}

} // namespace dhdl

#include "core/parser.hh"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/printer.hh"
#include "obs/trace.hh"

namespace dhdl {
namespace {

// Hard size caps: a hostile file must not be able to make the parser
// allocate unbounded memory before validation has a chance to reject
// it. All are far above anything the builder produces.
constexpr size_t kMaxFileBytes = size_t(1) << 28;  // 256 MiB
constexpr int64_t kMaxNodes = int64_t(1) << 22;
constexpr int64_t kMaxParams = int64_t(1) << 16;
constexpr int64_t kMaxConstraints = int64_t(1) << 16;
constexpr size_t kMaxListLen = size_t(1) << 20;
constexpr size_t kMaxNameLen = 4096;
constexpr int kMaxCExprDepth = 64;

/**
 * Internal parse failure. Thrown inside the parser, converted to a
 * Status at the public boundary — callers never see an exception.
 */
struct ParseFail {
    std::string message;
};

/** Cursor over one line of input. */
class Cursor
{
  public:
    Cursor(std::string_view s, int line) : s_(s), line_(line) {}

    int line() const { return line_; }

    [[noreturn]] void
    fail(const std::string& why) const
    {
        std::ostringstream os;
        os << "line " << line_ << ": " << why;
        throw ParseFail{os.str()};
    }

    void
    skipSpace()
    {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t'))
            ++pos_;
    }

    bool atEnd() const { return pos_ >= s_.size(); }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    bool
    tryConsume(std::string_view tok)
    {
        if (s_.substr(pos_).substr(0, tok.size()) == tok) {
            pos_ += tok.size();
            return true;
        }
        return false;
    }

    void
    expect(std::string_view tok)
    {
        if (!tryConsume(tok))
            fail("expected '" + std::string(tok) + "'");
    }

    /** One space (canonical form) — tolerate runs of blanks. */
    void
    expectSpace()
    {
        if (atEnd() || (s_[pos_] != ' ' && s_[pos_] != '\t'))
            fail("expected whitespace");
        skipSpace();
    }

    void
    expectEnd()
    {
        skipSpace();
        if (!atEnd())
            fail("trailing characters");
    }

    int64_t
    parseInt()
    {
        skipSpace();
        int64_t v = 0;
        const char* b = s_.data() + pos_;
        const char* e = s_.data() + s_.size();
        auto res = std::from_chars(b, e, v);
        if (res.ec != std::errc() || res.ptr == b)
            fail("expected integer");
        pos_ += size_t(res.ptr - b);
        return v;
    }

    double
    parseDouble()
    {
        skipSpace();
        double v = 0;
        const char* b = s_.data() + pos_;
        const char* e = s_.data() + s_.size();
        auto res = std::from_chars(b, e, v);
        if (res.ec != std::errc() || res.ptr == b)
            fail("expected number");
        pos_ += size_t(res.ptr - b);
        return v;
    }

    /** Lower-case keyword: [a-z0-9_-]+. */
    std::string
    parseWord()
    {
        skipSpace();
        size_t start = pos_;
        while (pos_ < s_.size() &&
               ((s_[pos_] >= 'a' && s_[pos_] <= 'z') ||
                (s_[pos_] >= '0' && s_[pos_] <= '9') ||
                s_[pos_] == '_' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected keyword");
        return std::string(s_.substr(start, pos_ - start));
    }

    /** Quoted name with \\ \" \n \t \r escapes. */
    std::string
    parseQuoted()
    {
        skipSpace();
        expect("\"");
        std::string out;
        while (true) {
            if (atEnd())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (atEnd())
                    fail("unterminated escape");
                char e = s_[pos_++];
                switch (e) {
                  case '\\': out += '\\'; break;
                  case '"': out += '"'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  default: fail("unknown escape");
                }
            } else {
                out += c;
            }
            if (out.size() > kMaxNameLen)
                fail("name too long");
        }
        return out;
    }

    /** Node reference: `%<id>` or `_` (= kNoNode). */
    NodeId
    parseRef()
    {
        skipSpace();
        if (tryConsume("_"))
            return kNoNode;
        expect("%");
        int64_t v = parseInt();
        if (v < 0 || v >= kMaxNodes)
            fail("node reference out of range");
        return NodeId(v);
    }

    /** Symbolic size: `<int>`, `$<pid>`, `$<pid>+k` or `$<pid>-k`. */
    Sym
    parseSym(size_t num_params)
    {
        skipSpace();
        if (tryConsume("$")) {
            int64_t pid = parseInt();
            if (pid < 0 || size_t(pid) >= num_params)
                fail("parameter reference out of range");
            int64_t off = 0;
            // A signed offset follows immediately: `$3+1` / `$3-1`.
            // from_chars rejects a leading '+', so consume it here.
            if (tryConsume("+"))
                off = parseInt();
            else if (peek() == '-')
                off = parseInt();
            return Sym::p(ParamId(pid), off);
        }
        return Sym::c(parseInt());
    }

    DType
    parseDType()
    {
        skipSpace();
        // Longest match first: "f32"/"f64" before "flt<", "ufix<"
        // before "u<N>".
        if (tryConsume("f64"))
            return DType::f64();
        if (tryConsume("f32"))
            return DType::f32();
        if (tryConsume("bit"))
            return DType::bit();
        if (tryConsume("uflt<"))
            return parseAngle(TypeKind::Float, false);
        if (tryConsume("flt<"))
            return parseAngle(TypeKind::Float, true);
        if (tryConsume("ufix<"))
            return parseAngle(TypeKind::Fixed, false);
        if (tryConsume("fix<"))
            return parseAngle(TypeKind::Fixed, true);
        if (tryConsume("i"))
            return DType(TypeKind::Fixed, parseWidth(), 0, true);
        if (tryConsume("u"))
            return DType(TypeKind::Fixed, parseWidth(), 0, false);
        fail("expected type");
    }

    CExpr
    parseCExpr(size_t num_params, int depth = 0)
    {
        if (depth > kMaxCExprDepth)
            fail("constraint expression too deep");
        skipSpace();
        if (tryConsume("(")) {
            CExpr lhs = parseCExpr(num_params, depth + 1);
            skipSpace();
            CArith op;
            if (tryConsume("+"))
                op = CArith::Add;
            else if (tryConsume("-"))
                op = CArith::Sub;
            else if (tryConsume("*"))
                op = CArith::Mul;
            else if (tryConsume("/"))
                op = CArith::Div;
            else if (tryConsume("%"))
                op = CArith::Mod;
            else
                fail("expected arithmetic operator");
            CExpr rhs = parseCExpr(num_params, depth + 1);
            skipSpace();
            expect(")");
            return CExpr::arith(op, std::move(lhs), std::move(rhs));
        }
        if (tryConsume("$")) {
            int64_t pid = parseInt();
            if (pid < 0 || size_t(pid) >= num_params)
                fail("parameter reference out of range");
            return CExpr::p(ParamId(pid));
        }
        return CExpr::c(parseInt());
    }

  private:
    uint8_t
    parseWidth()
    {
        int64_t v = parseInt();
        if (v < 0 || v > 255)
            fail("type width out of range");
        return uint8_t(v);
    }

    DType
    parseAngle(TypeKind kind, bool sign)
    {
        uint8_t a = parseWidth();
        expect(",");
        uint8_t b = parseWidth();
        expect(">");
        return DType(kind, a, b, sign);
    }

    std::string_view s_;
    size_t pos_ = 0;
    int line_;
};

/** Sections of a `.dhdl` file, in required order. */
enum class Section : uint8_t {
    Header, Design, Param, Constraint, Node, Root, Offchip, End,
};

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    ParseResult
    run()
    {
        ParseResult out;
        try {
            parse();
            finalValidate();
            out.graph = std::move(graph_);
        } catch (const ParseFail& f) {
            out.status = Status::error(makeDiag(f.message));
            out.graph.reset();
        } catch (const std::exception& e) {
            out.status = Status::error(
                makeDiag(std::string("internal parse failure: ") +
                         e.what()));
            out.graph.reset();
        }
        return out;
    }

  private:
    static Diag
    makeDiag(std::string message)
    {
        Diag d;
        d.code = DiagCode::ParseError;
        d.severity = DiagSeverity::Error;
        d.stage = "parse";
        d.message = std::move(message);
        return d;
    }

    Graph&
    g()
    {
        if (!graph_)
            throw ParseFail{"line " + std::to_string(line_) +
                            ": statement before 'design' header"};
        return *graph_;
    }

    void
    advanceTo(Section s, Cursor& c)
    {
        if (s < section_)
            c.fail("section out of order");
        section_ = s;
    }

    void
    parse()
    {
        if (text_.size() > kMaxFileBytes)
            throw ParseFail{"input exceeds maximum file size"};
        size_t pos = 0;
        bool saw_end = false;
        while (pos <= text_.size()) {
            size_t nl = text_.find('\n', pos);
            std::string_view lineText =
                text_.substr(pos, nl == std::string_view::npos
                                      ? std::string_view::npos
                                      : nl - pos);
            ++line_;
            // Strip a trailing CR so CRLF files parse.
            if (!lineText.empty() && lineText.back() == '\r')
                lineText.remove_suffix(1);
            parseLine(lineText, saw_end);
            if (nl == std::string_view::npos)
                break;
            pos = nl + 1;
            if (pos == text_.size())
                break;
        }
        if (!saw_end)
            throw ParseFail{"missing 'end' (truncated file?)"};
    }

    void
    parseLine(std::string_view lineText, bool& saw_end)
    {
        Cursor c(lineText, line_);
        c.skipSpace();
        if (c.atEnd() || c.peek() == '#')
            return; // blank or comment
        if (saw_end)
            c.fail("content after 'end'");
        std::string kw = c.parseWord();
        if (kw == "dhdl") {
            advanceTo(Section::Header, c);
            if (seen_header_)
                c.fail("duplicate 'dhdl' header");
            seen_header_ = true;
            int64_t v = c.parseInt();
            if (v != 1)
                c.fail("unsupported IR version");
            c.expectEnd();
        } else if (kw == "design") {
            if (!seen_header_)
                c.fail("'design' before 'dhdl' header");
            advanceTo(Section::Design, c);
            if (graph_)
                c.fail("duplicate 'design'");
            graph_.emplace(c.parseQuoted());
            c.expectEnd();
        } else if (kw == "param") {
            advanceTo(Section::Param, c);
            parseParam(c);
        } else if (kw == "constraint") {
            advanceTo(Section::Constraint, c);
            parseConstraint(c);
        } else if (kw == "node") {
            advanceTo(Section::Node, c);
            parseNode(c);
        } else if (kw == "root") {
            advanceTo(Section::Root, c);
            if (seen_root_)
                c.fail("duplicate 'root'");
            seen_root_ = true;
            g().root = c.parseRef();
            c.expectEnd();
        } else if (kw == "offchip") {
            advanceTo(Section::Offchip, c);
            if (seen_offchip_)
                c.fail("duplicate 'offchip'");
            seen_offchip_ = true;
            g().offchipMems = parseRefList(c);
            c.expectEnd();
        } else if (kw == "end") {
            advanceTo(Section::End, c);
            if (!graph_ || !seen_root_ || !seen_offchip_)
                c.fail("'end' before design/root/offchip");
            c.expectEnd();
            saw_end = true;
        } else {
            c.fail("unknown statement '" + kw + "'");
        }
    }

    void
    parseParam(Cursor& c)
    {
        if (int64_t(g().params().size()) >= kMaxParams)
            c.fail("too many parameters");
        ParamDef d;
        d.name = c.parseQuoted();
        c.expectSpace();
        c.expect("kind=");
        std::string k = c.parseWord();
        if (k == "tile")
            d.kind = ParamKind::TileSize;
        else if (k == "par")
            d.kind = ParamKind::ParFactor;
        else if (k == "toggle")
            d.kind = ParamKind::Toggle;
        else if (k == "fixed")
            d.kind = ParamKind::Fixed;
        else
            c.fail("unknown parameter kind '" + k + "'");
        c.expectSpace();
        c.expect("default=");
        d.defaultValue = c.parseInt();
        c.expectSpace();
        c.expect("divisor_of=");
        d.divisorOf = c.parseInt();
        c.expectSpace();
        c.expect("min=");
        d.minValue = c.parseInt();
        c.expectSpace();
        c.expect("max=");
        d.maxValue = c.parseInt();
        c.expectEnd();
        g().params().add(std::move(d));
    }

    void
    parseConstraint(Cursor& c)
    {
        if (int64_t(g().constraints.size()) >= kMaxConstraints)
            c.fail("too many constraints");
        size_t np = g().params().size();
        Constraint cons;
        cons.lhs = c.parseCExpr(np);
        c.skipSpace();
        if (c.tryConsume("=="))
            cons.cmp = CCmp::Eq;
        else if (c.tryConsume("!="))
            cons.cmp = CCmp::Ne;
        else if (c.tryConsume("<="))
            cons.cmp = CCmp::Le;
        else if (c.tryConsume(">="))
            cons.cmp = CCmp::Ge;
        else if (c.tryConsume("<"))
            cons.cmp = CCmp::Lt;
        else if (c.tryConsume(">"))
            cons.cmp = CCmp::Gt;
        else
            c.fail("expected comparison operator");
        cons.rhs = c.parseCExpr(np);
        c.expectEnd();
        g().constraints.push_back(std::move(cons));
    }

    std::vector<NodeId>
    parseRefList(Cursor& c)
    {
        std::vector<NodeId> out;
        c.skipSpace();
        c.expect("[");
        c.skipSpace();
        if (c.tryConsume("]"))
            return out;
        while (true) {
            if (out.size() >= kMaxListLen)
                c.fail("list too long");
            out.push_back(c.parseRef());
            c.skipSpace();
            if (c.tryConsume("]"))
                break;
            c.expect(",");
        }
        return out;
    }

    std::vector<Sym>
    parseSymList(Cursor& c)
    {
        std::vector<Sym> out;
        size_t np = g().params().size();
        c.skipSpace();
        c.expect("[");
        c.skipSpace();
        if (c.tryConsume("]"))
            return out;
        while (true) {
            if (out.size() >= kMaxListLen)
                c.fail("list too long");
            out.push_back(c.parseSym(np));
            c.skipSpace();
            if (c.tryConsume("]"))
                break;
            c.expect(",");
        }
        return out;
    }

    Op
    parseOp(Cursor& c)
    {
        std::string w = c.parseWord();
        for (int i = 0; i <= int(Op::ToFixed); ++i) {
            if (w == opName(Op(i)))
                return Op(i);
        }
        c.fail("unknown op '" + w + "'");
    }

    void
    parseNode(Cursor& c)
    {
        Graph& gr = g();
        if (int64_t(gr.numNodes()) >= kMaxNodes)
            c.fail("too many nodes");
        c.skipSpace();
        c.expect("%");
        int64_t id = c.parseInt();
        if (id != int64_t(gr.numNodes()))
            c.fail("node ids must be sequential");
        c.expectSpace();
        std::string kind = c.parseWord();
        std::string name = c.parseQuoted();
        c.expectSpace();
        c.expect("parent=");
        NodeId parent = c.parseRef();
        size_t np = gr.params().size();

        Node* made = nullptr;
        if (kind == "prim") {
            c.expectSpace();
            c.expect("op=");
            Op op = parseOp(c);
            c.expectSpace();
            c.expect("type=");
            DType t = c.parseDType();
            c.expectSpace();
            c.expect("val=");
            double val = c.parseDouble();
            c.expectSpace();
            c.expect("in=");
            auto inputs = parseRefList(c);
            c.expectSpace();
            c.expect("ctr=");
            NodeId ctr = c.parseRef();
            c.expectSpace();
            c.expect("dim=");
            int64_t dim = c.parseInt();
            if (dim < 0 || dim > int64_t(kMaxListLen))
                c.fail("counter dimension out of range");
            auto& n = gr.make<PrimNode>(std::move(name), op, t);
            n.constValue = val;
            n.inputs = std::move(inputs);
            n.counter = ctr;
            n.ctrDim = int(dim);
            made = &n;
        } else if (kind == "ld") {
            c.expectSpace();
            c.expect("mem=");
            NodeId mem = c.parseRef();
            c.expectSpace();
            c.expect("type=");
            DType t = c.parseDType();
            c.expectSpace();
            c.expect("addr=");
            auto addr = parseRefList(c);
            auto& n = gr.make<LoadNode>(std::move(name), mem, t);
            n.addr = std::move(addr);
            made = &n;
        } else if (kind == "st") {
            c.expectSpace();
            c.expect("mem=");
            NodeId mem = c.parseRef();
            c.expectSpace();
            c.expect("value=");
            NodeId value = c.parseRef();
            c.expectSpace();
            c.expect("addr=");
            auto addr = parseRefList(c);
            auto& n = gr.make<StoreNode>(std::move(name), mem, value);
            n.addr = std::move(addr);
            made = &n;
        } else if (kind == "offchipmem" || kind == "bram") {
            c.expectSpace();
            c.expect("type=");
            DType t = c.parseDType();
            c.expectSpace();
            c.expect("dims=");
            auto dims = parseSymList(c);
            if (dims.empty())
                c.fail("memory needs at least one dimension");
            if (kind == "offchipmem") {
                made = &gr.make<OffChipMemNode>(std::move(name), t,
                                                std::move(dims));
            } else {
                c.expectSpace();
                c.expect("banks=");
                int64_t banks = c.parseInt();
                if (banks < 0 || banks > (int64_t(1) << 20))
                    c.fail("bank count out of range");
                auto& n = gr.make<BramNode>(std::move(name), t,
                                            std::move(dims));
                n.forcedBanks = int(banks);
                made = &n;
            }
        } else if (kind == "reg") {
            c.expectSpace();
            c.expect("type=");
            DType t = c.parseDType();
            c.expectSpace();
            c.expect("init=");
            double init = c.parseDouble();
            made = &gr.make<RegNode>(std::move(name), t, init);
        } else if (kind == "queue") {
            c.expectSpace();
            c.expect("type=");
            DType t = c.parseDType();
            c.expectSpace();
            c.expect("depth=");
            Sym depth = c.parseSym(np);
            made = &gr.make<QueueNode>(std::move(name), t, depth);
        } else if (kind == "counter") {
            c.expectSpace();
            c.expect("dims=");
            std::vector<CtrDim> dims;
            c.expect("[");
            c.skipSpace();
            if (!c.tryConsume("]")) {
                while (true) {
                    if (dims.size() >= kMaxListLen)
                        c.fail("list too long");
                    CtrDim d;
                    d.min = c.parseSym(np);
                    c.expect(":");
                    d.max = c.parseSym(np);
                    c.expect(":");
                    d.step = c.parseSym(np);
                    dims.push_back(d);
                    c.skipSpace();
                    if (c.tryConsume("]"))
                        break;
                    c.expect(",");
                }
            }
            if (dims.empty())
                c.fail("counter needs at least one dimension");
            made = &gr.make<CounterNode>(std::move(name),
                                         std::move(dims));
        } else if (kind == "pipe" || kind == "seq" ||
                   kind == "parallel" || kind == "metapipe") {
            c.expectSpace();
            c.expect("counter=");
            NodeId counter = c.parseRef();
            c.expectSpace();
            c.expect("par=");
            Sym par = c.parseSym(np);
            c.expectSpace();
            c.expect("toggle=");
            Sym toggle = c.parseSym(np);
            c.expectSpace();
            c.expect("pattern=");
            std::string pat = c.parseWord();
            Pattern pattern;
            if (pat == "map")
                pattern = Pattern::Map;
            else if (pat == "reduce")
                pattern = Pattern::Reduce;
            else
                c.fail("unknown pattern '" + pat + "'");
            c.expectSpace();
            c.expect("combine=");
            Op combine = parseOp(c);
            c.expectSpace();
            c.expect("accum=");
            NodeId accum = c.parseRef();
            c.expectSpace();
            c.expect("body=");
            NodeId body = c.parseRef();
            c.expectSpace();
            c.expect("children=");
            auto children = parseRefList(c);
            ControllerNode* n = nullptr;
            if (kind == "pipe")
                n = &gr.make<PipeNode>(std::move(name));
            else if (kind == "seq")
                n = &gr.make<SequentialNode>(std::move(name));
            else if (kind == "parallel")
                n = &gr.make<ParallelNode>(std::move(name));
            else
                n = &gr.make<MetaPipeNode>(std::move(name));
            n->counter = counter;
            n->par = par;
            n->toggle = toggle;
            n->pattern = pattern;
            n->combine = combine;
            n->accum = accum;
            n->bodyResult = body;
            n->children = std::move(children);
            made = n;
        } else if (kind == "tileld" || kind == "tilest") {
            c.expectSpace();
            c.expect("off=");
            NodeId off = c.parseRef();
            c.expectSpace();
            c.expect("on=");
            NodeId on = c.parseRef();
            c.expectSpace();
            c.expect("base=");
            auto base = parseRefList(c);
            c.expectSpace();
            c.expect("extent=");
            auto extent = parseSymList(c);
            c.expectSpace();
            c.expect("par=");
            Sym par = c.parseSym(np);
            if (kind == "tileld") {
                auto& n = gr.make<TileLdNode>(std::move(name), off, on);
                n.base = std::move(base);
                n.extent = std::move(extent);
                n.par = par;
                made = &n;
            } else {
                auto& n = gr.make<TileStNode>(std::move(name), off, on);
                n.base = std::move(base);
                n.extent = std::move(extent);
                n.par = par;
                made = &n;
            }
        } else {
            c.fail("unknown node kind '" + kind + "'");
        }
        made->parent = parent;
        c.expectEnd();
    }

    // ---- Whole-graph validation -------------------------------------------
    //
    // References were stored as written (they may legally point
    // forward); now that every node exists, check that each one lands
    // in range, points at a node of a compatible kind, and that the
    // parent/children structure is a forest — the traversals
    // downstream (printing, flattening, simulation, statistics)
    // recurse over children and walk parent chains and must
    // terminate on any graph this parser accepts.

    [[noreturn]] void
    vfail(NodeId id, const std::string& why)
    {
        std::ostringstream os;
        os << "node %" << id << ": " << why;
        throw ParseFail{os.str()};
    }

    void
    checkRef(NodeId at, NodeId ref, bool allow_none, const char* what)
    {
        if (ref == kNoNode) {
            if (!allow_none)
                vfail(at, std::string(what) + " must not be '_'");
            return;
        }
        if (ref < 0 || size_t(ref) >= g().numNodes())
            vfail(at, std::string(what) + " reference out of range");
    }

    void
    checkKind(NodeId at, NodeId /*ref*/, bool ok, const char* what)
    {
        if (!ok)
            vfail(at, std::string(what) +
                      " references a node of the wrong kind");
    }

    /**
     * Data operands (prim inputs, load/store addresses, store values,
     * transfer bases) must reference strictly earlier nodes. The
     * builder only ever produces such graphs ("ids are topologically
     * ordered by construction") and every downstream consumer —
     * constant folding, the functional simulator, critical-path
     * analysis — relies on it; a forward or self data edge from a
     * hostile file could otherwise drive a traversal in circles.
     */
    void
    checkData(NodeId at, NodeId ref, const char* what)
    {
        checkRef(at, ref, false, what);
        if (ref >= at)
            vfail(at, std::string(what) +
                      " must reference an earlier node");
    }

    void
    finalValidate()
    {
        Graph& gr = g();
        size_t n = gr.numNodes();

        // Parent links: in range, controllers only, acyclic.
        for (NodeId id = 0; id < NodeId(n); ++id) {
            NodeId p = gr.node(id).parent;
            checkRef(id, p, true, "parent");
            if (p == id)
                vfail(id, "node is its own parent");
            if (p != kNoNode && !gr.node(p).isController())
                vfail(id, "parent is not a controller");
        }
        for (NodeId id = 0; id < NodeId(n); ++id) {
            NodeId p = gr.node(id).parent;
            size_t steps = 0;
            while (p != kNoNode) {
                if (++steps > n)
                    vfail(id, "parent chain forms a cycle");
                p = gr.node(p).parent;
            }
        }

        std::vector<bool> is_child(n, false);
        for (NodeId id = 0; id < NodeId(n); ++id) {
            const Node& node = gr.node(id);
            switch (node.kind()) {
              case NodeKind::Prim: {
                const auto& pr = gr.nodeAs<PrimNode>(id);
                for (NodeId in : pr.inputs)
                    checkData(id, in, "input");
                checkRef(id, pr.counter, true, "ctr");
                if (pr.counter != kNoNode) {
                    const auto* cn = gr.tryAs<CounterNode>(pr.counter);
                    checkKind(id, pr.counter, cn != nullptr, "ctr");
                    if (pr.ctrDim < 0 ||
                        size_t(pr.ctrDim) >= cn->dims.size())
                        vfail(id, "counter dimension out of range");
                } else if (pr.op == Op::Iter) {
                    vfail(id, "iter prim needs a counter");
                }
                break;
              }
              case NodeKind::Load: {
                const auto& l = gr.nodeAs<LoadNode>(id);
                checkRef(id, l.mem, false, "mem");
                checkKind(id, l.mem, gr.node(l.mem).isMemory(), "mem");
                for (NodeId a : l.addr)
                    checkData(id, a, "addr");
                break;
              }
              case NodeKind::Store: {
                const auto& s = gr.nodeAs<StoreNode>(id);
                checkRef(id, s.mem, false, "mem");
                checkKind(id, s.mem, gr.node(s.mem).isMemory(), "mem");
                checkData(id, s.value, "value");
                for (NodeId a : s.addr)
                    checkData(id, a, "addr");
                break;
              }
              case NodeKind::Pipe:
              case NodeKind::Sequential:
              case NodeKind::ParallelCtrl:
              case NodeKind::MetaPipe: {
                const auto& ct = gr.nodeAs<ControllerNode>(id);
                checkRef(id, ct.counter, true, "counter");
                if (ct.counter != kNoNode)
                    checkKind(id, ct.counter,
                              gr.tryAs<CounterNode>(ct.counter) !=
                                  nullptr,
                              "counter");
                checkRef(id, ct.accum, true, "accum");
                checkRef(id, ct.bodyResult, true, "body");
                for (NodeId ch : ct.children) {
                    checkRef(id, ch, false, "child");
                    if (ch == id)
                        vfail(id, "controller lists itself as child");
                    if (gr.node(ch).kind() == NodeKind::Counter)
                        vfail(id, "counters attach via counter=, "
                                  "never as children");
                    if (gr.node(ch).parent != id)
                        vfail(id, "child's parent link disagrees with "
                                  "children list");
                    if (is_child[size_t(ch)])
                        vfail(id, "node listed as child twice");
                    is_child[size_t(ch)] = true;
                }
                break;
              }
              case NodeKind::TileLd:
              case NodeKind::TileSt: {
                NodeId off, on;
                const std::vector<NodeId>* base;
                if (node.kind() == NodeKind::TileLd) {
                    const auto& t = gr.nodeAs<TileLdNode>(id);
                    off = t.offchip; on = t.onchip; base = &t.base;
                } else {
                    const auto& t = gr.nodeAs<TileStNode>(id);
                    off = t.offchip; on = t.onchip; base = &t.base;
                }
                checkRef(id, off, false, "off");
                checkKind(id, off,
                          gr.node(off).kind() == NodeKind::OffChipMem,
                          "off");
                checkRef(id, on, false, "on");
                checkKind(id, on, gr.node(on).isMemory(), "on");
                for (NodeId b : *base) {
                    if (b != kNoNode)
                        checkData(id, b, "base");
                }
                break;
              }
              default:
                break; // memories and counters hold no node refs
            }
        }

        if (gr.root == kNoNode)
            throw ParseFail{"design has no root controller"};
        if (gr.root < 0 || size_t(gr.root) >= n)
            throw ParseFail{"root reference out of range"};
        if (!gr.node(gr.root).isController())
            throw ParseFail{"root is not a controller"};
        for (NodeId m : gr.offchipMems) {
            if (m < 0 || size_t(m) >= n ||
                gr.node(m).kind() != NodeKind::OffChipMem)
                throw ParseFail{
                    "offchip list references a non-OffChipMem node"};
        }
        for (const Constraint& cons : gr.constraints) {
            if (cons.maxParam() >= ParamId(gr.params().size()) &&
                cons.maxParam() != kNoParam)
                throw ParseFail{
                    "constraint references an undeclared parameter"};
        }
    }

    std::string_view text_;
    std::optional<Graph> graph_;
    Section section_ = Section::Header;
    bool seen_header_ = false;
    bool seen_root_ = false;
    bool seen_offchip_ = false;
    int line_ = 0;
};

} // namespace

ParseResult
parseIR(std::string_view text)
{
    DHDL_OBS_SPAN("core", "parse-ir");
    return Parser(text).run();
}

ParseResult
parseIRFile(const std::string& path)
{
    DHDL_OBS_SPAN("core", "parse-ir-file");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ParseResult out;
        Diag d;
        d.code = DiagCode::ParseError;
        d.stage = "parse";
        d.message = "cannot open '" + path + "'";
        out.status = Status::error(std::move(d));
        return out;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    if (in.bad()) {
        ParseResult out;
        Diag d;
        d.code = DiagCode::ParseError;
        d.stage = "parse";
        d.message = "read error on '" + path + "'";
        out.status = Status::error(std::move(d));
        return out;
    }
    return parseIR(text);
}

} // namespace dhdl

/**
 * @file
 * Structured diagnostics. Exceptions (core/error.hh) are the right
 * tool when a single computation must abort, but batch layers — the
 * design space explorer evaluates up to 75,000 points per run — need
 * to *record* a failure and keep going. This module provides:
 *
 *  - Diag: one diagnostic with a code, severity, pipeline stage and
 *    contextual payload (design point index, parameter binding);
 *  - Status: a value-or-diagnostic return type for fallible calls
 *    that should not throw;
 *  - DiagSink: a thread-safe collector used by the parallel explorer;
 *  - diagFromException()/topReasons(): conversion and aggregation
 *    helpers for reporting "K failed (top reasons: ...)" summaries.
 */

#ifndef DHDL_CORE_DIAG_HH
#define DHDL_CORE_DIAG_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hh"

namespace dhdl {

/** Severity of a diagnostic. */
enum class DiagSeverity : uint8_t {
    Warning, //!< Degraded but intentional (budget hit, checkpoint skew).
    Error,   //!< A unit of work was lost (a design point failed).
};

/** One structured diagnostic. */
struct Diag {
    DiagCode code = DiagCode::Unknown;
    DiagSeverity severity = DiagSeverity::Error;
    std::string message;
    /** Pipeline stage that reported it ("instantiate", "area", ...). */
    std::string stage;
    /** Free-form context, e.g. the parameter binding "ts=64 par=4". */
    std::string context;
    /** Index of the design point concerned; -1 when not point-bound. */
    int64_t pointIndex = -1;
    /**
     * Thread that produced the diagnostic, as a stable obs name
     * ("worker-2", "main"), never a raw std::thread::id. Display
     * only: excluded from checkpoints and golden fixtures because
     * point-to-worker assignment depends on scheduling.
     */
    std::string worker;

    /** One-line human-readable rendering. */
    std::string str() const;
};

/**
 * Result of a fallible call that must not throw across the caller's
 * boundary: either ok, or an error Diag explaining the failure.
 */
class Status
{
  public:
    /** Default-constructed Status is success. */
    Status() = default;

    static Status
    error(Diag d)
    {
        Status s;
        s.ok_ = false;
        s.diag_ = std::move(d);
        return s;
    }

    bool ok() const { return ok_; }
    explicit operator bool() const { return ok_; }

    /** The diagnostic; only meaningful when !ok(). */
    const Diag& diag() const { return diag_; }

  private:
    bool ok_ = true;
    Diag diag_;
};

/**
 * Thread-safe diagnostic collector. Worker threads report() into it
 * concurrently; the owner drains it once the batch completes. Order
 * of insertion is whatever the threads raced to — callers that need
 * determinism sort the drained vector (e.g. by pointIndex).
 */
class DiagSink
{
  public:
    void report(Diag d);

    size_t errorCount() const;
    size_t warningCount() const;
    size_t size() const;

    /** Copy of everything reported so far. */
    std::vector<Diag> snapshot() const;

    /** Move out everything reported so far, leaving the sink empty. */
    std::vector<Diag> drain();

  private:
    mutable std::mutex mu_;
    std::vector<Diag> diags_;
    size_t errors_ = 0;
    size_t warnings_ = 0;
};

/**
 * Convert the in-flight exception into a Diag. Must be called from
 * inside a catch block. FatalError/PanicError keep their DiagCode;
 * anything else maps to DiagCode::Unknown.
 */
Diag diagFromCurrentException(const std::string& stage);

/**
 * Aggregate error diagnostics into the most frequent failure
 * reasons: groups by (code, stage), returns up to `top` groups as
 * (label, count) sorted by descending count. The label carries one
 * exemplar message so reports stay actionable.
 */
std::vector<std::pair<std::string, size_t>>
topReasons(const std::vector<Diag>& diags, size_t top = 5);

} // namespace dhdl

#endif // DHDL_CORE_DIAG_HH

#include "core/passes.hh"

#include "core/validate.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dhdl {

Status
PassManager::run(const Graph& g, PassContext& ctx)
{
    executed_.clear();
    executed_.reserve(passes_.size());
    for (const Entry& e : passes_) {
        executed_.push_back(e.name);
        const bool rec = obs::enabled();
        const uint64_t t0 = rec ? obs::nowMicros() : 0;
        Status st;
        try {
            st = e.fn(g, ctx);
        } catch (...) {
            Diag d = diagFromCurrentException(e.name);
            st = Status::error(d);
        }
        if (rec) {
            const uint64_t dur = obs::nowMicros() - t0;
            obs::recordSpan("pass", e.name.c_str(), t0, dur);
            obs::addCounter("pass." + e.name + ".us", dur);
            obs::addCounter("pass." + e.name + ".runs", 1);
        }
        if (!st.ok()) {
            ctx.sink().report(st.diag());
            return st;
        }
    }
    return Status();
}

PassManager
standardPasses()
{
    PassManager pm;
    pm.add("validate", [](const Graph& g, PassContext& ctx) {
        ctx.art.validationErrors = validate(g);
        if (ctx.art.validationErrors.empty())
            return Status();
        Diag d;
        d.code = DiagCode::UserError;
        d.stage = "validate";
        d.message = ctx.art.validationErrors.front();
        if (ctx.art.validationErrors.size() > 1) {
            d.message += " (+" +
                std::to_string(ctx.art.validationErrors.size() - 1) +
                " more)";
        }
        return Status::error(std::move(d));
    });
    pm.add("fold-constants", [](const Graph& g, PassContext& ctx) {
        ctx.art.foldedConstants = foldConstants(g);
        return Status();
    });
    pm.add("dead-nodes", [](const Graph& g, PassContext& ctx) {
        ctx.art.deadNodes = findDeadNodes(g);
        return Status();
    });
    pm.add("stats", [](const Graph& g, PassContext& ctx) {
        ctx.art.stats = computeStats(g);
        return Status();
    });
    return pm;
}

} // namespace dhdl

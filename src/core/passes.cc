#include "core/passes.hh"

#include <chrono>

#include "core/validate.hh"

namespace dhdl {

Status
PassManager::run(const Graph& g, PassContext& ctx)
{
    using clock = std::chrono::steady_clock;
    timings_.clear();
    timings_.reserve(passes_.size());
    for (const Entry& e : passes_) {
        auto t0 = clock::now();
        Status st;
        try {
            st = e.fn(g, ctx);
        } catch (...) {
            Diag d = diagFromCurrentException(e.name);
            st = Status::error(d);
        }
        auto t1 = clock::now();
        timings_.push_back(
            {e.name,
             std::chrono::duration<double>(t1 - t0).count()});
        if (!st.ok()) {
            ctx.sink().report(st.diag());
            return st;
        }
    }
    return Status();
}

PassManager
standardPasses()
{
    PassManager pm;
    pm.add("validate", [](const Graph& g, PassContext& ctx) {
        ctx.art.validationErrors = validate(g);
        if (ctx.art.validationErrors.empty())
            return Status();
        Diag d;
        d.code = DiagCode::UserError;
        d.stage = "validate";
        d.message = ctx.art.validationErrors.front();
        if (ctx.art.validationErrors.size() > 1) {
            d.message += " (+" +
                std::to_string(ctx.art.validationErrors.size() - 1) +
                " more)";
        }
        return Status::error(std::move(d));
    });
    pm.add("fold-constants", [](const Graph& g, PassContext& ctx) {
        ctx.art.foldedConstants = foldConstants(g);
        return Status();
    });
    pm.add("dead-nodes", [](const Graph& g, PassContext& ctx) {
        ctx.art.deadNodes = findDeadNodes(g);
        return Status();
    });
    pm.add("stats", [](const Graph& g, PassContext& ctx) {
        ctx.art.stats = computeStats(g);
        return Status();
    });
    return pm;
}

} // namespace dhdl

/**
 * @file
 * Content checksums for durable on-disk formats. Two independent
 * uses, two functions:
 *
 *  - crc32(): IEEE CRC-32, the per-record integrity check of the
 *    explore checkpoint format. Detects torn tails and corrupted
 *    records on resume/merge so a killed writer can never poison a
 *    restored run.
 *  - fnv1a(): 64-bit FNV-1a, the cheap content fingerprint used for
 *    checkpoint headers (design-IR hash, ParamSpace fingerprint).
 *    Not error-detecting in the CRC sense — it answers "is this the
 *    same design/space?", not "did bits rot?".
 *
 * Both are byte-order independent and fully deterministic across
 * platforms, which the byte-identity guarantees of checkpoint merge
 * rely on.
 */

#ifndef DHDL_CORE_CHECKSUM_HH
#define DHDL_CORE_CHECKSUM_HH

#include <cstdint>
#include <string_view>

namespace dhdl {

/** IEEE CRC-32 (polynomial 0xEDB88320) of the bytes. */
uint32_t crc32(std::string_view bytes);

/** 64-bit FNV-1a hash of the bytes. */
uint64_t fnv1a(std::string_view bytes);

} // namespace dhdl

#endif // DHDL_CORE_CHECKSUM_HH

#include "core/faultinject.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#include "core/error.hh"
#include "obs/metrics.hh"

namespace dhdl::fault {

namespace {

constexpr size_t kPoints = size_t(Point::kCount);

struct State {
    /** Armed threshold per point; 0 = disarmed. */
    std::atomic<int64_t> armed[kPoints];
    /** Occurrences counted per point since configure(). */
    std::atomic<int64_t> count[kPoints];
    std::atomic<bool> anyArmed{false};
    std::atomic<double> hangSeconds{3600.0};
};

State&
state()
{
    static State s;
    return s;
}

std::optional<Point>
pointFromName(const std::string& name)
{
    for (size_t i = 0; i < kPoints; ++i) {
        if (name == pointName(Point(i)))
            return Point(i);
    }
    return std::nullopt;
}

} // namespace

const char*
pointName(Point p)
{
    switch (p) {
      case Point::CrashAfterEvals:
        return "crash-after-evals";
      case Point::HangAfterEvals:
        return "hang-after-evals";
      case Point::TornCheckpoint:
        return "torn-checkpoint";
      case Point::CorruptRecord:
        return "corrupt-record";
      case Point::kCount:
        break;
    }
    return "unknown";
}

void
configure(const std::string& spec)
{
    reset();
    State& s = state();
    size_t pos = 0;
    bool any = false;
    while (pos < spec.size()) {
        size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        require(eq != std::string::npos,
                "fault spec item '" + item + "' is not key=value");
        std::string key = item.substr(0, eq);
        int64_t value = 0;
        try {
            value = std::stoll(item.substr(eq + 1));
        } catch (const std::exception&) {
            fatal("fault spec value in '" + item +
                  "' is not an integer");
        }
        require(value > 0, "fault spec value in '" + item +
                               "' must be positive");
        if (key == "hang-seconds") {
            s.hangSeconds.store(double(value));
            continue;
        }
        auto p = pointFromName(key);
        require(p.has_value(), "unknown fault point '" + key + "'");
        s.armed[size_t(*p)].store(value);
        any = true;
    }
    s.anyArmed.store(any);
}

bool
configureFromEnv()
{
    const char* v = std::getenv("DHDL_FAULT");
    if (!v || !*v)
        return false;
    configure(v);
    return true;
}

void
reset()
{
    State& s = state();
    s.anyArmed.store(false);
    for (size_t i = 0; i < kPoints; ++i) {
        s.armed[i].store(0);
        s.count[i].store(0);
    }
    s.hangSeconds.store(3600.0);
}

bool
active()
{
    return state().anyArmed.load(std::memory_order_relaxed);
}

std::optional<int64_t>
armed(Point p)
{
    int64_t n = state().armed[size_t(p)].load(
        std::memory_order_relaxed);
    return n > 0 ? std::optional<int64_t>(n) : std::nullopt;
}

bool
hit(Point p)
{
    State& s = state();
    if (!s.anyArmed.load(std::memory_order_relaxed))
        return false;
    int64_t n = s.armed[size_t(p)].load(std::memory_order_relaxed);
    if (n <= 0)
        return false;
    int64_t seen = s.count[size_t(p)].fetch_add(1) + 1;
    if (seen != n)
        return false;
    obs::addCounter(std::string("fault.fired.") + pointName(p), 1);
    return true;
}

double
hangSeconds()
{
    return state().hangSeconds.load(std::memory_order_relaxed);
}

void
crashHard()
{
    std::raise(SIGKILL);
    std::_Exit(137); // unreachable unless raise itself failed
}

void
sleepFor(double seconds)
{
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
}

} // namespace dhdl::fault

/**
 * @file
 * Parser for the canonical `.dhdl` IR text emitted by emitIR()
 * (core/printer.hh). Reconstructs a Graph byte-identically: for any
 * builder-produced graph g, parseIR(emitIR(g)) succeeds and the
 * round-tripped graph re-emits the exact same bytes.
 *
 * The parser is hardened against hostile input: it never aborts and
 * never exhibits UB. Malformed, truncated, oversized or structurally
 * inconsistent files (dangling references, parent cycles, children
 * that disagree with parent links) produce a Status carrying a
 * structured Diag with DiagCode::ParseError and the offending line
 * number. See DESIGN.md for the grammar.
 */

#ifndef DHDL_CORE_PARSER_HH
#define DHDL_CORE_PARSER_HH

#include <optional>
#include <string>
#include <string_view>

#include "core/diag.hh"
#include "core/graph.hh"

namespace dhdl {

/** Outcome of a parse: a graph on success, a diagnostic on failure. */
struct ParseResult {
    Status status;
    /** Engaged exactly when status.ok(). */
    std::optional<Graph> graph;

    bool ok() const { return status.ok(); }
};

/** Parse `.dhdl` IR text into a fresh graph. Never throws. */
ParseResult parseIR(std::string_view text);

/** Read and parse a `.dhdl` file. Unreadable files are a ParseError. */
ParseResult parseIRFile(const std::string& path);

} // namespace dhdl

#endif // DHDL_CORE_PARSER_HH

/**
 * @file
 * Structural validation of DHDL graphs. Catches malformed designs
 * (user errors) before analysis or simulation: controller nesting
 * rules, operand arity, address arity, reduce wiring, and acyclicity.
 */

#ifndef DHDL_CORE_VALIDATE_HH
#define DHDL_CORE_VALIDATE_HH

#include <string>
#include <vector>

#include "core/graph.hh"

namespace dhdl {

/**
 * Validate a graph; returns the list of violations (empty = valid).
 * Each entry is a human-readable message naming the offending node.
 */
std::vector<std::string> validate(const Graph& g);

/** Validate and throw FatalError with all messages if invalid. */
void validateOrThrow(const Graph& g);

} // namespace dhdl

#endif // DHDL_CORE_VALIDATE_HH

#include "core/validate.hh"

#include <sstream>

namespace dhdl {

namespace {

/** Expected operand count for each op; -1 means variable. */
int
arity(Op op)
{
    switch (op) {
      case Op::Const:
      case Op::Iter:
        return 0;
      case Op::Not:
      case Op::Abs:
      case Op::Neg:
      case Op::Sqrt:
      case Op::Exp:
      case Op::Log:
      case Op::ToFloat:
      case Op::ToFixed:
        return 1;
      case Op::Mux:
        return 3;
      default:
        return 2;
    }
}

class Validator
{
  public:
    explicit Validator(const Graph& g) : g_(g) {}

    std::vector<std::string>
    run()
    {
        if (g_.root == kNoNode) {
            err(kNoNode, "design has no accel() body");
            return errors_;
        }
        if (!g_.node(g_.root).isController())
            err(g_.root, "root is not a controller");
        for (NodeId id = 0; id < NodeId(g_.numNodes()); ++id)
            checkNode(id);
        return errors_;
    }

  private:
    void
    err(NodeId id, const std::string& msg)
    {
        std::ostringstream os;
        if (id != kNoNode) {
            const Node& n = g_.node(id);
            os << kindName(n.kind()) << " '" << n.name() << "' (#" << id
               << "): ";
        }
        os << msg;
        errors_.push_back(os.str());
    }

    void
    checkOperand(NodeId user, NodeId input, const char* what)
    {
        if (input == kNoNode) {
            err(user, std::string("missing ") + what);
            return;
        }
        if (input >= NodeId(g_.numNodes())) {
            err(user, std::string("dangling ") + what);
            return;
        }
        if (input >= user)
            err(user, std::string(what) +
                " does not dominate its use (cycle?)");
    }

    void
    checkNode(NodeId id)
    {
        const Node& n = g_.node(id);
        switch (n.kind()) {
          case NodeKind::Prim:
            checkPrim(g_.nodeAs<PrimNode>(id));
            break;
          case NodeKind::Load:
            checkLoad(g_.nodeAs<LoadNode>(id));
            break;
          case NodeKind::Store:
            checkStore(g_.nodeAs<StoreNode>(id));
            break;
          case NodeKind::Pipe:
          case NodeKind::Sequential:
          case NodeKind::ParallelCtrl:
          case NodeKind::MetaPipe:
            checkController(g_.nodeAs<ControllerNode>(id));
            break;
          case NodeKind::TileLd:
            checkTileLd(g_.nodeAs<TileLdNode>(id));
            break;
          case NodeKind::TileSt:
            checkTileSt(g_.nodeAs<TileStNode>(id));
            break;
          default:
            break;
        }
    }

    void
    checkPrim(const PrimNode& n)
    {
        int want = arity(n.op);
        if (want >= 0 && int(n.inputs.size()) != want)
            err(n.id(), "operand count mismatch");
        for (NodeId in : n.inputs)
            checkOperand(n.id(), in, "operand");
        if (n.op == Op::Iter && n.counter == kNoNode)
            err(n.id(), "iterator without a counter");
    }

    void
    checkLoad(const LoadNode& n)
    {
        const auto* m = g_.tryAs<MemNode>(n.mem);
        if (!m) {
            err(n.id(), "load from a non-memory node");
            return;
        }
        if (m->kind() == NodeKind::OffChipMem)
            err(n.id(), "Ld may not access OffChipMem; use TileLd");
        if (n.addr.size() != m->dims.size())
            err(n.id(), "address arity does not match memory rank");
        for (NodeId a : n.addr)
            checkOperand(n.id(), a, "address");
    }

    void
    checkStore(const StoreNode& n)
    {
        const auto* m = g_.tryAs<MemNode>(n.mem);
        if (!m) {
            err(n.id(), "store to a non-memory node");
            return;
        }
        if (m->kind() == NodeKind::OffChipMem)
            err(n.id(), "St may not access OffChipMem; use TileSt");
        if (n.addr.size() != m->dims.size())
            err(n.id(), "address arity does not match memory rank");
        for (NodeId a : n.addr)
            checkOperand(n.id(), a, "address");
        checkOperand(n.id(), n.value, "stored value");
    }

    void
    checkController(const ControllerNode& c)
    {
        bool is_pipe = c.kind() == NodeKind::Pipe;
        for (NodeId ch : c.children) {
            const Node& n = g_.node(ch);
            if (n.parent != c.id())
                err(ch, "child/parent link mismatch");
            if (is_pipe) {
                if (n.isController() || n.isTileTransfer() ||
                    n.kind() == NodeKind::Bram)
                    err(ch, "Pipe bodies may only contain primitives");
            } else {
                bool iter_or_const =
                    n.kind() == NodeKind::Prim &&
                    (g_.nodeAs<PrimNode>(ch).op == Op::Iter ||
                     g_.nodeAs<PrimNode>(ch).op == Op::Const);
                if (n.isPrimitive() && !iter_or_const)
                    err(ch, "datapath primitive outside a Pipe");
            }
        }
        if (c.pattern == Pattern::Reduce) {
            if (c.accum == kNoNode)
                err(c.id(), "Reduce controller without accumulator");
            else if (!g_.node(c.accum).isMemory())
                err(c.id(), "Reduce accumulator is not a memory");
            if (c.bodyResult == kNoNode)
                err(c.id(), "Reduce controller without a body result");
            if (c.kind() == NodeKind::MetaPipe && c.accum != kNoNode &&
                c.bodyResult != kNoNode) {
                const auto* acc = g_.tryAs<MemNode>(c.accum);
                const auto* res = g_.tryAs<MemNode>(c.bodyResult);
                if (acc && res && acc->dims.size() != res->dims.size())
                    err(c.id(), "tile reduce rank mismatch");
            }
        }
        if (c.kind() == NodeKind::ParallelCtrl && c.counter != kNoNode)
            err(c.id(), "Parallel containers cannot carry a counter");
    }

    void
    checkTileLd(const TileLdNode& n)
    {
        const auto* off = g_.tryAs<OffChipMemNode>(n.offchip);
        const auto* dst = g_.tryAs<BramNode>(n.onchip);
        if (!off)
            err(n.id(), "TileLd source is not an OffChipMem");
        if (!dst)
            err(n.id(), "TileLd destination is not a BRAM");
        if (off && n.extent.size() != off->dims.size())
            err(n.id(), "TileLd extent rank != off-chip rank");
        if (dst && n.extent.size() != dst->dims.size())
            err(n.id(), "TileLd extent rank != BRAM rank");
        for (NodeId b : n.base) {
            if (b != kNoNode)
                checkOperand(n.id(), b, "tile base address");
        }
    }

    void
    checkTileSt(const TileStNode& n)
    {
        const auto* off = g_.tryAs<OffChipMemNode>(n.offchip);
        const auto* src = g_.tryAs<BramNode>(n.onchip);
        if (!off)
            err(n.id(), "TileSt destination is not an OffChipMem");
        if (!src)
            err(n.id(), "TileSt source is not a BRAM");
        if (off && n.extent.size() != off->dims.size())
            err(n.id(), "TileSt extent rank != off-chip rank");
        if (src && n.extent.size() != src->dims.size())
            err(n.id(), "TileSt extent rank != BRAM rank");
        for (NodeId b : n.base) {
            if (b != kNoNode)
                checkOperand(n.id(), b, "tile base address");
        }
    }

    const Graph& g_;
    std::vector<std::string> errors_;
};

} // namespace

std::vector<std::string>
validate(const Graph& g)
{
    return Validator(g).run();
}

void
validateOrThrow(const Graph& g)
{
    auto errs = validate(g);
    if (errs.empty())
        return;
    std::ostringstream os;
    os << "invalid DHDL design '" << g.name() << "':";
    for (const auto& e : errs)
        os << "\n  " << e;
    fatal(os.str());
}

} // namespace dhdl

#include "core/printer.hh"

#include <sstream>

namespace dhdl {

std::string
symStr(const Graph& g, const Sym& s)
{
    if (s.isParam()) {
        std::string out = "$" + g.params()[s.param()].name;
        if (s.offset() > 0)
            out += "+" + std::to_string(s.offset());
        else if (s.offset() < 0)
            out += std::to_string(s.offset());
        return out;
    }
    return std::to_string(s.constant());
}

namespace {

class Printer
{
  public:
    explicit Printer(const Graph& g) : g_(g) {}

    std::string
    run()
    {
        os_ << "design " << g_.name() << " {\n";
        for (NodeId m : g_.offchipMems)
            printOffchip(g_.nodeAs<OffChipMemNode>(m));
        if (g_.root != kNoNode)
            printNode(g_.root, 1);
        os_ << "}\n";
        return os_.str();
    }

  private:
    void
    indent(int depth)
    {
        for (int i = 0; i < depth; ++i)
            os_ << "  ";
    }

    void
    printOffchip(const OffChipMemNode& m)
    {
        indent(1);
        os_ << "offchip " << m.name() << " : " << m.type.str() << "[";
        dims(m.dims);
        os_ << "]\n";
    }

    void
    dims(const std::vector<Sym>& ds)
    {
        for (size_t i = 0; i < ds.size(); ++i) {
            if (i)
                os_ << ", ";
            os_ << symStr(g_, ds[i]);
        }
    }

    void
    printCounter(const ControllerNode& c)
    {
        if (c.counter == kNoNode)
            return;
        const auto& ctr = g_.nodeAs<CounterNode>(c.counter);
        os_ << "(";
        for (size_t i = 0; i < ctr.dims.size(); ++i) {
            if (i)
                os_ << ", ";
            os_ << symStr(g_, ctr.dims[i].min) << ".."
                << symStr(g_, ctr.dims[i].max) << " by "
                << symStr(g_, ctr.dims[i].step);
        }
        os_ << ")";
    }

    void
    printNode(NodeId id, int depth)
    {
        const Node& n = g_.node(id);
        indent(depth);
        switch (n.kind()) {
          case NodeKind::Pipe:
          case NodeKind::Sequential:
          case NodeKind::ParallelCtrl:
          case NodeKind::MetaPipe: {
            const auto& c = g_.nodeAs<ControllerNode>(id);
            os_ << kindName(n.kind()) << " " << n.name();
            printCounter(c);
            if (c.par.isParam() || c.par.constant() != 1)
                os_ << " par=" << symStr(g_, c.par);
            if (c.kind() == NodeKind::MetaPipe)
                os_ << " toggle=" << symStr(g_, c.toggle);
            if (c.pattern == Pattern::Reduce)
                os_ << " reduce(" << opName(c.combine) << " -> "
                    << g_.node(c.accum).name() << ")";
            os_ << " {\n";
            for (NodeId ch : c.children) {
                if (g_.node(ch).kind() == NodeKind::Prim &&
                    g_.nodeAs<PrimNode>(ch).op == Op::Iter)
                    continue;
                printNode(ch, depth + 1);
            }
            indent(depth);
            os_ << "}\n";
            break;
          }
          case NodeKind::Bram: {
            const auto& m = g_.nodeAs<BramNode>(id);
            os_ << "bram " << m.name() << " : " << m.type.str() << "[";
            dims(m.dims);
            os_ << "]\n";
            break;
          }
          case NodeKind::Reg: {
            const auto& m = g_.nodeAs<RegNode>(id);
            os_ << "reg " << m.name() << " : " << m.type.str() << "\n";
            break;
          }
          case NodeKind::Queue: {
            const auto& m = g_.nodeAs<QueueNode>(id);
            os_ << "queue " << m.name() << " : " << m.type.str()
                << " depth=" << symStr(g_, m.depth) << "\n";
            break;
          }
          case NodeKind::TileLd: {
            const auto& t = g_.nodeAs<TileLdNode>(id);
            os_ << "tileLd " << g_.node(t.onchip).name() << " <- "
                << g_.node(t.offchip).name() << "[";
            dims(t.extent);
            os_ << "] par=" << symStr(g_, t.par) << "\n";
            break;
          }
          case NodeKind::TileSt: {
            const auto& t = g_.nodeAs<TileStNode>(id);
            os_ << "tileSt " << g_.node(t.offchip).name() << " <- "
                << g_.node(t.onchip).name() << "[";
            dims(t.extent);
            os_ << "] par=" << symStr(g_, t.par) << "\n";
            break;
          }
          case NodeKind::Prim: {
            const auto& p = g_.nodeAs<PrimNode>(id);
            os_ << "%" << id << " = " << opName(p.op);
            if (p.op == Op::Const)
                os_ << " " << p.constValue;
            for (NodeId in : p.inputs)
                os_ << " %" << in;
            os_ << " : " << p.type.str() << "\n";
            break;
          }
          case NodeKind::Load: {
            const auto& l = g_.nodeAs<LoadNode>(id);
            os_ << "%" << id << " = ld " << g_.node(l.mem).name() << "[";
            for (size_t i = 0; i < l.addr.size(); ++i)
                os_ << (i ? ", %" : "%") << l.addr[i];
            os_ << "]\n";
            break;
          }
          case NodeKind::Store: {
            const auto& s = g_.nodeAs<StoreNode>(id);
            os_ << "st " << g_.node(s.mem).name() << "[";
            for (size_t i = 0; i < s.addr.size(); ++i)
                os_ << (i ? ", %" : "%") << s.addr[i];
            os_ << "] = %" << s.value << "\n";
            break;
          }
          default:
            os_ << kindName(n.kind()) << " " << n.name() << "\n";
            break;
        }
    }

    const Graph& g_;
    std::ostringstream os_;
};

} // namespace

std::string
printGraph(const Graph& g)
{
    return Printer(g).run();
}

} // namespace dhdl

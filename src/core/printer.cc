#include "core/printer.hh"

#include <charconv>
#include <sstream>

namespace dhdl {

std::string
symStr(const Graph& g, const Sym& s)
{
    if (s.isParam()) {
        std::string out = "$" + g.params()[s.param()].name;
        if (s.offset() > 0)
            out += "+" + std::to_string(s.offset());
        else if (s.offset() < 0)
            out += std::to_string(s.offset());
        return out;
    }
    return std::to_string(s.constant());
}

namespace {

class Printer
{
  public:
    explicit Printer(const Graph& g) : g_(g) {}

    std::string
    run()
    {
        os_ << "design " << g_.name() << " {\n";
        for (NodeId m : g_.offchipMems)
            printOffchip(g_.nodeAs<OffChipMemNode>(m));
        if (g_.root != kNoNode)
            printNode(g_.root, 1);
        os_ << "}\n";
        return os_.str();
    }

  private:
    void
    indent(int depth)
    {
        for (int i = 0; i < depth; ++i)
            os_ << "  ";
    }

    void
    printOffchip(const OffChipMemNode& m)
    {
        indent(1);
        os_ << "offchip " << m.name() << " : " << m.type.str() << "[";
        dims(m.dims);
        os_ << "]\n";
    }

    void
    dims(const std::vector<Sym>& ds)
    {
        for (size_t i = 0; i < ds.size(); ++i) {
            if (i)
                os_ << ", ";
            os_ << symStr(g_, ds[i]);
        }
    }

    void
    printCounter(const ControllerNode& c)
    {
        if (c.counter == kNoNode)
            return;
        const auto& ctr = g_.nodeAs<CounterNode>(c.counter);
        os_ << "(";
        for (size_t i = 0; i < ctr.dims.size(); ++i) {
            if (i)
                os_ << ", ";
            os_ << symStr(g_, ctr.dims[i].min) << ".."
                << symStr(g_, ctr.dims[i].max) << " by "
                << symStr(g_, ctr.dims[i].step);
        }
        os_ << ")";
    }

    void
    printNode(NodeId id, int depth)
    {
        const Node& n = g_.node(id);
        indent(depth);
        switch (n.kind()) {
          case NodeKind::Pipe:
          case NodeKind::Sequential:
          case NodeKind::ParallelCtrl:
          case NodeKind::MetaPipe: {
            const auto& c = g_.nodeAs<ControllerNode>(id);
            os_ << kindName(n.kind()) << " " << n.name();
            printCounter(c);
            if (c.par.isParam() || c.par.constant() != 1)
                os_ << " par=" << symStr(g_, c.par);
            if (c.kind() == NodeKind::MetaPipe)
                os_ << " toggle=" << symStr(g_, c.toggle);
            if (c.pattern == Pattern::Reduce)
                os_ << " reduce(" << opName(c.combine) << " -> "
                    << g_.node(c.accum).name() << ")";
            os_ << " {\n";
            for (NodeId ch : c.children) {
                if (g_.node(ch).kind() == NodeKind::Prim &&
                    g_.nodeAs<PrimNode>(ch).op == Op::Iter)
                    continue;
                printNode(ch, depth + 1);
            }
            indent(depth);
            os_ << "}\n";
            break;
          }
          case NodeKind::Bram: {
            const auto& m = g_.nodeAs<BramNode>(id);
            os_ << "bram " << m.name() << " : " << m.type.str() << "[";
            dims(m.dims);
            os_ << "]\n";
            break;
          }
          case NodeKind::Reg: {
            const auto& m = g_.nodeAs<RegNode>(id);
            os_ << "reg " << m.name() << " : " << m.type.str() << "\n";
            break;
          }
          case NodeKind::Queue: {
            const auto& m = g_.nodeAs<QueueNode>(id);
            os_ << "queue " << m.name() << " : " << m.type.str()
                << " depth=" << symStr(g_, m.depth) << "\n";
            break;
          }
          case NodeKind::TileLd: {
            const auto& t = g_.nodeAs<TileLdNode>(id);
            os_ << "tileLd " << g_.node(t.onchip).name() << " <- "
                << g_.node(t.offchip).name() << "[";
            dims(t.extent);
            os_ << "] par=" << symStr(g_, t.par) << "\n";
            break;
          }
          case NodeKind::TileSt: {
            const auto& t = g_.nodeAs<TileStNode>(id);
            os_ << "tileSt " << g_.node(t.offchip).name() << " <- "
                << g_.node(t.onchip).name() << "[";
            dims(t.extent);
            os_ << "] par=" << symStr(g_, t.par) << "\n";
            break;
          }
          case NodeKind::Prim: {
            const auto& p = g_.nodeAs<PrimNode>(id);
            os_ << "%" << id << " = " << opName(p.op);
            if (p.op == Op::Const)
                os_ << " " << p.constValue;
            for (NodeId in : p.inputs)
                os_ << " %" << in;
            os_ << " : " << p.type.str() << "\n";
            break;
          }
          case NodeKind::Load: {
            const auto& l = g_.nodeAs<LoadNode>(id);
            os_ << "%" << id << " = ld " << g_.node(l.mem).name() << "[";
            for (size_t i = 0; i < l.addr.size(); ++i)
                os_ << (i ? ", %" : "%") << l.addr[i];
            os_ << "]\n";
            break;
          }
          case NodeKind::Store: {
            const auto& s = g_.nodeAs<StoreNode>(id);
            os_ << "st " << g_.node(s.mem).name() << "[";
            for (size_t i = 0; i < s.addr.size(); ++i)
                os_ << (i ? ", %" : "%") << s.addr[i];
            os_ << "] = %" << s.value << "\n";
            break;
          }
          default:
            os_ << kindName(n.kind()) << " " << n.name() << "\n";
            break;
        }
    }

    const Graph& g_;
    std::ostringstream os_;
};

} // namespace

std::string
printGraph(const Graph& g)
{
    return Printer(g).run();
}

// ---- Canonical `.dhdl` IR emission -----------------------------------------

std::string
symIR(const Sym& s)
{
    if (!s.isParam())
        return std::to_string(s.constant());
    std::string out = "$" + std::to_string(s.param());
    if (s.offset() > 0)
        out += "+" + std::to_string(s.offset());
    else if (s.offset() < 0)
        out += std::to_string(s.offset());
    return out;
}

std::string
dtypeIR(const DType& t)
{
    std::ostringstream os;
    switch (t.kind) {
      case TypeKind::Float:
        if (t.sign && t.fieldA == 8 && t.fieldB == 23)
            return "f32";
        if (t.sign && t.fieldA == 11 && t.fieldB == 52)
            return "f64";
        os << (t.sign ? "flt<" : "uflt<") << int(t.fieldA) << ","
           << int(t.fieldB) << ">";
        return os.str();
      case TypeKind::Fixed:
        if (t.fieldB == 0) {
            os << (t.sign ? "i" : "u") << int(t.fieldA);
            return os.str();
        }
        os << (t.sign ? "fix<" : "ufix<") << int(t.fieldA) << ","
           << int(t.fieldB) << ">";
        return os.str();
      case TypeKind::Bit:
        return "bit";
    }
    return "bit";
}

std::string
doubleIR(double v)
{
    // Shortest form that parses back to the exact same bits.
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

namespace {

/** Keyword of a node kind in the IR (lower-case, parser-matched). */
const char*
irKindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Prim: return "prim";
      case NodeKind::Load: return "ld";
      case NodeKind::Store: return "st";
      case NodeKind::OffChipMem: return "offchipmem";
      case NodeKind::Bram: return "bram";
      case NodeKind::Reg: return "reg";
      case NodeKind::Queue: return "queue";
      case NodeKind::Counter: return "counter";
      case NodeKind::Pipe: return "pipe";
      case NodeKind::Sequential: return "seq";
      case NodeKind::ParallelCtrl: return "parallel";
      case NodeKind::MetaPipe: return "metapipe";
      case NodeKind::TileLd: return "tileld";
      case NodeKind::TileSt: return "tilest";
    }
    return "?";
}

const char*
paramKindIR(ParamKind k)
{
    switch (k) {
      case ParamKind::TileSize: return "tile";
      case ParamKind::ParFactor: return "par";
      case ParamKind::Toggle: return "toggle";
      case ParamKind::Fixed: return "fixed";
    }
    return "fixed";
}

/** Emitter for the canonical IR text. */
class IREmitter
{
  public:
    explicit IREmitter(const Graph& g) : g_(g) {}

    std::string
    run()
    {
        os_ << "dhdl 1\n";
        os_ << "design ";
        quoted(g_.name());
        os_ << "\n";
        const ParamTable& pt = g_.params();
        for (ParamId p = 0; p < ParamId(pt.size()); ++p) {
            const ParamDef& d = pt[p];
            os_ << "param ";
            quoted(d.name);
            os_ << " kind=" << paramKindIR(d.kind)
                << " default=" << d.defaultValue
                << " divisor_of=" << d.divisorOf
                << " min=" << d.minValue
                << " max=" << d.maxValue << "\n";
        }
        for (const Constraint& c : g_.constraints)
            os_ << "constraint " << c.str() << "\n";
        for (NodeId id = 0; id < NodeId(g_.numNodes()); ++id)
            emitNode(id);
        os_ << "root ";
        ref(g_.root);
        os_ << "\n";
        os_ << "offchip ";
        refList(g_.offchipMems);
        os_ << "\n";
        os_ << "end\n";
        return os_.str();
    }

  private:
    void
    quoted(const std::string& s)
    {
        os_ << '"';
        for (char ch : s) {
            switch (ch) {
              case '"': os_ << "\\\""; break;
              case '\\': os_ << "\\\\"; break;
              case '\n': os_ << "\\n"; break;
              case '\t': os_ << "\\t"; break;
              case '\r': os_ << "\\r"; break;
              default: os_ << ch; break;
            }
        }
        os_ << '"';
    }

    void
    ref(NodeId id)
    {
        if (id == kNoNode)
            os_ << "_";
        else
            os_ << "%" << id;
    }

    void
    refList(const std::vector<NodeId>& ids)
    {
        os_ << "[";
        for (size_t i = 0; i < ids.size(); ++i) {
            if (i)
                os_ << ",";
            ref(ids[i]);
        }
        os_ << "]";
    }

    void
    symList(const std::vector<Sym>& syms)
    {
        os_ << "[";
        for (size_t i = 0; i < syms.size(); ++i) {
            if (i)
                os_ << ",";
            os_ << symIR(syms[i]);
        }
        os_ << "]";
    }

    void
    emitNode(NodeId id)
    {
        const Node& n = g_.node(id);
        os_ << "node %" << id << " " << irKindName(n.kind()) << " ";
        quoted(n.name());
        os_ << " parent=";
        ref(n.parent);
        switch (n.kind()) {
          case NodeKind::Prim: {
            const auto& p = g_.nodeAs<PrimNode>(id);
            os_ << " op=" << opName(p.op)
                << " type=" << dtypeIR(p.type)
                << " val=" << doubleIR(p.constValue) << " in=";
            refList(p.inputs);
            os_ << " ctr=";
            ref(p.counter);
            os_ << " dim=" << p.ctrDim;
            break;
          }
          case NodeKind::Load: {
            const auto& l = g_.nodeAs<LoadNode>(id);
            os_ << " mem=";
            ref(l.mem);
            os_ << " type=" << dtypeIR(l.type) << " addr=";
            refList(l.addr);
            break;
          }
          case NodeKind::Store: {
            const auto& s = g_.nodeAs<StoreNode>(id);
            os_ << " mem=";
            ref(s.mem);
            os_ << " value=";
            ref(s.value);
            os_ << " addr=";
            refList(s.addr);
            break;
          }
          case NodeKind::OffChipMem: {
            const auto& m = g_.nodeAs<OffChipMemNode>(id);
            os_ << " type=" << dtypeIR(m.type) << " dims=";
            symList(m.dims);
            break;
          }
          case NodeKind::Bram: {
            const auto& m = g_.nodeAs<BramNode>(id);
            os_ << " type=" << dtypeIR(m.type) << " dims=";
            symList(m.dims);
            os_ << " banks=" << m.forcedBanks;
            break;
          }
          case NodeKind::Reg: {
            const auto& m = g_.nodeAs<RegNode>(id);
            os_ << " type=" << dtypeIR(m.type)
                << " init=" << doubleIR(m.init);
            break;
          }
          case NodeKind::Queue: {
            const auto& m = g_.nodeAs<QueueNode>(id);
            os_ << " type=" << dtypeIR(m.type)
                << " depth=" << symIR(m.depth);
            break;
          }
          case NodeKind::Counter: {
            const auto& c = g_.nodeAs<CounterNode>(id);
            os_ << " dims=[";
            for (size_t i = 0; i < c.dims.size(); ++i) {
                if (i)
                    os_ << ",";
                os_ << symIR(c.dims[i].min) << ":"
                    << symIR(c.dims[i].max) << ":"
                    << symIR(c.dims[i].step);
            }
            os_ << "]";
            break;
          }
          case NodeKind::Pipe:
          case NodeKind::Sequential:
          case NodeKind::ParallelCtrl:
          case NodeKind::MetaPipe: {
            const auto& c = g_.nodeAs<ControllerNode>(id);
            os_ << " counter=";
            ref(c.counter);
            os_ << " par=" << symIR(c.par)
                << " toggle=" << symIR(c.toggle)
                << " pattern="
                << (c.pattern == Pattern::Reduce ? "reduce" : "map")
                << " combine=" << opName(c.combine) << " accum=";
            ref(c.accum);
            os_ << " body=";
            ref(c.bodyResult);
            os_ << " children=";
            refList(c.children);
            break;
          }
          case NodeKind::TileLd:
          case NodeKind::TileSt: {
            NodeId off, on;
            const std::vector<NodeId>* base;
            const std::vector<Sym>* extent;
            Sym par;
            if (n.kind() == NodeKind::TileLd) {
                const auto& t = g_.nodeAs<TileLdNode>(id);
                off = t.offchip; on = t.onchip;
                base = &t.base; extent = &t.extent; par = t.par;
            } else {
                const auto& t = g_.nodeAs<TileStNode>(id);
                off = t.offchip; on = t.onchip;
                base = &t.base; extent = &t.extent; par = t.par;
            }
            os_ << " off=";
            ref(off);
            os_ << " on=";
            ref(on);
            os_ << " base=";
            refList(*base);
            os_ << " extent=";
            symList(*extent);
            os_ << " par=" << symIR(par);
            break;
          }
        }
        os_ << "\n";
    }

    const Graph& g_;
    std::ostringstream os_;
};

} // namespace

std::string
emitIR(const Graph& g)
{
    return IREmitter(g).run();
}

} // namespace dhdl

/**
 * @file
 * DHDL value types. The paper supports variable bit-width fixed-point
 * types, variable-precision floating-point types, and single-bit values
 * (Section III-B), with type checking on every node that produces or
 * stores data.
 */

#ifndef DHDL_CORE_TYPES_HH
#define DHDL_CORE_TYPES_HH

#include <cstdint>
#include <string>

namespace dhdl {

/** Kind of a DHDL value type. */
enum class TypeKind : uint8_t {
    Float, //!< Sign + exponent + mantissa floating point.
    Fixed, //!< Integer + fractional bits, optionally signed.
    Bit,   //!< Single-bit boolean.
};

/**
 * A DHDL data type. For Float, fieldA is the exponent width and fieldB
 * the mantissa width (a sign bit is implicit). For Fixed, fieldA is the
 * integer width and fieldB the fraction width (sign bit included in
 * fieldA when signed). Bit ignores both fields.
 */
class DType
{
  public:
    DType() : kind(TypeKind::Fixed), fieldA(32), fieldB(0), sign(true) {}
    DType(TypeKind k, uint8_t a, uint8_t b, bool s)
        : kind(k), fieldA(a), fieldB(b), sign(s) {}

    TypeKind kind;
    uint8_t fieldA;
    uint8_t fieldB;
    bool sign;

    /** Total storage width in bits. */
    int bits() const;

    bool isFloat() const { return kind == TypeKind::Float; }
    bool isFixed() const { return kind == TypeKind::Fixed; }
    bool isBit() const { return kind == TypeKind::Bit; }

    /** Human-readable name, e.g. "f32", "fix<16,16>", "bit". */
    std::string str() const;

    bool operator==(const DType& o) const;
    bool operator!=(const DType& o) const { return !(*this == o); }

    /** IEEE-754 single precision (8 exponent, 23 mantissa bits). */
    static DType f32() { return {TypeKind::Float, 8, 23, true}; }
    /** IEEE-754 double precision. */
    static DType f64() { return {TypeKind::Float, 11, 52, true}; }
    /** Signed 32-bit integer. */
    static DType i32() { return {TypeKind::Fixed, 32, 0, true}; }
    /** Signed 16-bit integer. */
    static DType i16() { return {TypeKind::Fixed, 16, 0, true}; }
    /** Signed fixed point with i integer and f fraction bits. */
    static DType fix(uint8_t i, uint8_t f)
    {
        return {TypeKind::Fixed, i, f, true};
    }
    /** Single-bit boolean. */
    static DType bit() { return {TypeKind::Bit, 1, 0, false}; }
};

} // namespace dhdl

#endif // DHDL_CORE_TYPES_HH

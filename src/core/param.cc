#include "core/param.hh"

#include <algorithm>

namespace dhdl {

std::vector<int64_t>
divisorsOf(int64_t n)
{
    std::vector<int64_t> divs;
    if (n <= 0)
        return divs;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            divs.push_back(d);
            if (d != n / d)
                divs.push_back(n / d);
        }
    }
    std::sort(divs.begin(), divs.end());
    return divs;
}

int64_t
largestDivisorLE(int64_t n, int64_t cap, int64_t multiple)
{
    int64_t best = 1, best_mult = 0;
    for (int64_t d : divisorsOf(n)) {
        if (d > cap)
            break;
        best = d;
        if (multiple > 0 && d % multiple == 0)
            best_mult = d;
    }
    return best_mult > 0 ? best_mult : best;
}

ParamId
ParamTable::add(ParamDef def)
{
    require(!def.name.empty(), "parameter must be named");
    require(def.minValue <= def.maxValue,
            "parameter '" + def.name + "' has empty range");
    defs_.push_back(std::move(def));
    return ParamId(defs_.size() - 1);
}

const ParamDef&
ParamTable::operator[](ParamId p) const
{
    invariant(p >= 0 && size_t(p) < defs_.size(),
              "parameter id out of range");
    return defs_[size_t(p)];
}

ParamBinding
ParamTable::defaults() const
{
    ParamBinding b;
    b.values.reserve(defs_.size());
    for (const auto& d : defs_)
        b.values.push_back(d.defaultValue);
    return b;
}

std::vector<int64_t>
ParamTable::legalValues(ParamId p) const
{
    const ParamDef& d = (*this)[p];
    std::vector<int64_t> vals;
    switch (d.kind) {
      case ParamKind::Toggle:
        vals = {0, 1};
        break;
      case ParamKind::Fixed:
        vals = {d.defaultValue};
        break;
      case ParamKind::TileSize:
      case ParamKind::ParFactor:
        if (d.divisorOf > 0) {
            for (int64_t v : divisorsOf(d.divisorOf)) {
                if (v >= d.minValue && v <= d.maxValue)
                    vals.push_back(v);
            }
        } else {
            for (int64_t v = d.minValue;
                 v <= std::min<int64_t>(d.maxValue, d.minValue + 4096); ++v)
                vals.push_back(v);
        }
        break;
    }
    if (vals.empty())
        vals.push_back(d.defaultValue);
    return vals;
}

bool
ParamTable::isLegal(const ParamBinding& b) const
{
    if (b.values.size() != defs_.size())
        return false;
    for (size_t i = 0; i < defs_.size(); ++i) {
        auto legal = legalValues(ParamId(i));
        if (!std::binary_search(legal.begin(), legal.end(), b.values[i]))
            return false;
    }
    return true;
}

} // namespace dhdl

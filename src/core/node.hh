/**
 * @file
 * DHDL node classes. Each node corresponds to one of the architectural
 * templates of Table I in the paper:
 *
 *   Primitives:  +, -, *, /, comparisons, mux, abs/sqrt/log/exp,
 *                Ld, St (on-chip loads/stores)
 *   Memories:    OffChipMem, BRAM, Reg, Priority Queue
 *   Controllers: Counter, Pipe, Sequential, Parallel, MetaPipe
 *   Memory command generators: TileLd, TileSt
 *
 * The graph is hierarchical: every node has a parent controller, and
 * controllers keep an ordered list of children (their pipeline stages
 * or loop body). Parameters (tile sizes, parallelization factors,
 * MetaPipe toggles) appear as Sym references so a single graph
 * describes the whole design space.
 */

#ifndef DHDL_CORE_NODE_HH
#define DHDL_CORE_NODE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/param.hh"
#include "core/types.hh"

namespace dhdl {

using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

/** Discriminator for Node subclasses; one value per Table I template. */
enum class NodeKind : uint8_t {
    Prim,
    Load,
    Store,
    OffChipMem,
    Bram,
    Reg,
    Queue,
    Counter,
    Pipe,
    Sequential,
    ParallelCtrl,
    MetaPipe,
    TileLd,
    TileSt,
};

/** Primitive operations (vectorized; scalar is vector width 1). */
enum class Op : uint8_t {
    Const, //!< Literal constant.
    Iter,  //!< Loop iterator produced by a Counter dimension.
    Add, Sub, Mul, Div, Mod, Min, Max,
    Lt, Le, Gt, Ge, Eq, Neq,
    And, Or, Not,
    Mux,   //!< inputs: select(bit), true-value, false-value.
    Abs, Neg, Sqrt, Exp, Log,
    ToFloat, ToFixed,
};

/** Name of an Op, e.g. "add". */
const char* opName(Op op);

/** True for ops whose result is a single bit (comparisons, logic). */
bool opProducesBit(Op op);

/** Parallel pattern a controller was generated from (Section III-B3). */
enum class Pattern : uint8_t {
    Map,    //!< Replicas connected in parallel.
    Reduce, //!< Replicas connected as a balanced combining tree.
};

/** Abstract base of all DHDL nodes. */
class Node
{
  public:
    Node(NodeKind kind, NodeId id, std::string name)
        : parent(kNoNode), kind_(kind), id_(id), name_(std::move(name)) {}
    virtual ~Node() = default;

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    NodeKind kind() const { return kind_; }
    NodeId id() const { return id_; }
    const std::string& name() const { return name_; }

    /** Enclosing controller (kNoNode only for the root and globals). */
    NodeId parent;

    bool
    isController() const
    {
        return kind_ == NodeKind::Pipe || kind_ == NodeKind::Sequential ||
               kind_ == NodeKind::ParallelCtrl ||
               kind_ == NodeKind::MetaPipe;
    }

    bool
    isMemory() const
    {
        return kind_ == NodeKind::OffChipMem || kind_ == NodeKind::Bram ||
               kind_ == NodeKind::Reg || kind_ == NodeKind::Queue;
    }

    bool
    isPrimitive() const
    {
        return kind_ == NodeKind::Prim || kind_ == NodeKind::Load ||
               kind_ == NodeKind::Store;
    }

    bool
    isTileTransfer() const
    {
        return kind_ == NodeKind::TileLd || kind_ == NodeKind::TileSt;
    }

  private:
    NodeKind kind_;
    NodeId id_;
    std::string name_;
};

/**
 * A primitive compute node. Represents a vector computation; the
 * effective vector width is the product of the parallelization factors
 * of the enclosing controllers.
 */
class PrimNode : public Node
{
  public:
    PrimNode(NodeId id, std::string name, Op op, DType type)
        : Node(NodeKind::Prim, id, std::move(name)), op(op), type(type),
          constValue(0.0), counter(kNoNode), ctrDim(0) {}

    Op op;
    DType type;
    /** Data inputs (operand order is significant, e.g. for Mux). */
    std::vector<NodeId> inputs;
    /** Literal value when op == Op::Const. */
    double constValue;
    /** Producing counter and dimension when op == Op::Iter. */
    NodeId counter;
    int ctrDim;
};

/** On-chip load (Ld template): read one element of a local memory. */
class LoadNode : public Node
{
  public:
    LoadNode(NodeId id, std::string name, NodeId mem, DType type)
        : Node(NodeKind::Load, id, std::move(name)), mem(mem), type(type) {}

    NodeId mem;
    /** One address value per memory dimension. */
    std::vector<NodeId> addr;
    DType type;
};

/** On-chip store (St template): write one element of a local memory. */
class StoreNode : public Node
{
  public:
    StoreNode(NodeId id, std::string name, NodeId mem, NodeId value)
        : Node(NodeKind::Store, id, std::move(name)), mem(mem),
          value(value) {}

    NodeId mem;
    std::vector<NodeId> addr;
    NodeId value;
};

/** Common base of all memory templates. */
class MemNode : public Node
{
  public:
    MemNode(NodeKind kind, NodeId id, std::string name, DType type,
            std::vector<Sym> dims)
        : Node(kind, id, std::move(name)), type(type),
          dims(std::move(dims)) {}

    DType type;
    std::vector<Sym> dims;

    /** Number of addressable elements under a binding. */
    int64_t
    numElems(const ParamBinding& b) const
    {
        int64_t n = 1;
        for (const auto& d : dims)
            n *= d.eval(b);
        return n;
    }
};

/** N-dimensional off-chip DRAM array (dims are dataset constants). */
class OffChipMemNode : public MemNode
{
  public:
    OffChipMemNode(NodeId id, std::string name, DType type,
                   std::vector<Sym> dims)
        : MemNode(NodeKind::OffChipMem, id, std::move(name), type,
                  std::move(dims)) {}
};

/**
 * On-chip scratchpad (BRAM template). Banking is inferred automatically
 * from the vector widths and access patterns of the Ld/St nodes that
 * touch it (Section III-B2); forcedBanks overrides the inference.
 */
class BramNode : public MemNode
{
  public:
    BramNode(NodeId id, std::string name, DType type, std::vector<Sym> dims)
        : MemNode(NodeKind::Bram, id, std::move(name), type,
                  std::move(dims)) {}

    int forcedBanks = 0;
};

/** Non-pipeline register (Reg template). Scalar. */
class RegNode : public MemNode
{
  public:
    RegNode(NodeId id, std::string name, DType type, double init = 0.0)
        : MemNode(NodeKind::Reg, id, std::move(name), type,
                  {Sym::c(1)}), init(init) {}

    double init;
};

/** Hardware sorting queue (Priority Queue template). */
class QueueNode : public MemNode
{
  public:
    QueueNode(NodeId id, std::string name, DType type, Sym depth)
        : MemNode(NodeKind::Queue, id, std::move(name), type, {depth}),
          depth(depth) {}

    Sym depth;
};

/** One dimension of a counter chain: iterates min..max by step. */
struct CtrDim {
    Sym min = Sym::c(0);
    Sym max = Sym::c(1);
    Sym step = Sym::c(1);

    int64_t
    trip(const ParamBinding& b) const
    {
        int64_t lo = min.eval(b), hi = max.eval(b), st = step.eval(b);
        if (st <= 0 || hi <= lo)
            return 0;
        return (hi - lo + st - 1) / st;
    }
};

/** Counter chain producing loop iterators (Counter template). */
class CounterNode : public Node
{
  public:
    CounterNode(NodeId id, std::string name, std::vector<CtrDim> dims)
        : Node(NodeKind::Counter, id, std::move(name)),
          dims(std::move(dims)) {}

    std::vector<CtrDim> dims;

    /** Total iterations = product of per-dimension trip counts. */
    int64_t
    trip(const ParamBinding& b) const
    {
        int64_t t = 1;
        for (const auto& d : dims)
            t *= d.trip(b);
        return t;
    }
};

/**
 * Common base for Pipe / Sequential / Parallel / MetaPipe. Controllers
 * own their body via the ordered children list and may carry a Counter,
 * a parallelization factor, the parallel pattern they were generated
 * from, and (for Reduce) an accumulator and combine function.
 */
class ControllerNode : public Node
{
  public:
    ControllerNode(NodeKind kind, NodeId id, std::string name)
        : Node(kind, id, std::move(name)), counter(kNoNode),
          par(Sym::c(1)), pattern(Pattern::Map), accum(kNoNode),
          bodyResult(kNoNode), combine(Op::Add), toggle(Sym::c(1)) {}

    NodeId counter;
    Sym par;
    Pattern pattern;
    /** Reduce target: a Reg (Pipe) or a BRAM tile (MetaPipe). */
    NodeId accum;
    /** Value (Pipe) or memory (MetaPipe) produced by one iteration. */
    NodeId bodyResult;
    Op combine;
    /**
     * MetaPipe toggle (Section III-C): when bound to 0 the controller
     * executes its stages sequentially and intermediate buffers are not
     * double-buffered; when 1 it overlaps stages as a coarse-grained
     * pipeline. Always 1 for other controller kinds.
     */
    Sym toggle;
    /** Ordered body: stages (outer controllers) or datapath (Pipe). */
    std::vector<NodeId> children;
};

/** Dataflow pipeline of primitive nodes (innermost loop bodies). */
class PipeNode : public ControllerNode
{
  public:
    PipeNode(NodeId id, std::string name)
        : ControllerNode(NodeKind::Pipe, id, std::move(name)) {}
};

/** Unpipelined, in-order execution of child controllers. */
class SequentialNode : public ControllerNode
{
  public:
    SequentialNode(NodeId id, std::string name)
        : ControllerNode(NodeKind::Sequential, id, std::move(name)) {}
};

/** Fork-join container with a synchronizing barrier at the end. */
class ParallelNode : public ControllerNode
{
  public:
    ParallelNode(NodeId id, std::string name)
        : ControllerNode(NodeKind::ParallelCtrl, id, std::move(name)) {}
};

/**
 * Coarse-grained pipeline with asynchronous handshaking across stages;
 * intermediate buffers become double buffers (Section III-B3).
 */
class MetaPipeNode : public ControllerNode
{
  public:
    MetaPipeNode(NodeId id, std::string name)
        : ControllerNode(NodeKind::MetaPipe, id, std::move(name)) {}
};

/**
 * Tile load (TileLd template): burst-transfers a dense N-dimensional
 * tile of an OffChipMem into an on-chip BRAM, instantiating command and
 * data queues toward the memory controller.
 */
class TileLdNode : public Node
{
  public:
    TileLdNode(NodeId id, std::string name, NodeId offchip, NodeId dst)
        : Node(NodeKind::TileLd, id, std::move(name)), offchip(offchip),
          onchip(dst), par(Sym::c(1)) {}

    NodeId offchip;
    NodeId onchip;
    /** Per-dimension base offsets (kNoNode means 0). */
    std::vector<NodeId> base;
    /** Tile extent per dimension; typically tile-size parameters. */
    std::vector<Sym> extent;
    /** Transfer parallelization (elements moved per cycle). */
    Sym par;
};

/** Tile store (TileSt template): BRAM tile back to an OffChipMem. */
class TileStNode : public Node
{
  public:
    TileStNode(NodeId id, std::string name, NodeId offchip, NodeId src)
        : Node(NodeKind::TileSt, id, std::move(name)), offchip(offchip),
          onchip(src), par(Sym::c(1)) {}

    NodeId offchip;
    NodeId onchip;
    std::vector<NodeId> base;
    std::vector<Sym> extent;
    Sym par;
};

/** Name of a node kind, e.g. "MetaPipe". */
const char* kindName(NodeKind k);

} // namespace dhdl

#endif // DHDL_CORE_NODE_HH

/**
 * @file
 * Instrumented pass pipeline over DHDL graphs. The loose analysis
 * entry points (validate, foldConstants, findDeadNodes, computeStats)
 * are still callable directly, but the toolchain front door — dhdlc
 * and anything that loads a `.dhdl` file — runs them through a
 * PassManager so that:
 *
 *  - every pass is recorded through the obs subsystem (a trace span
 *    plus `pass.<name>.us` / `pass.<name>.runs` counters), the same
 *    registry the DSE evaluator feeds, so `dhdlc --profile`,
 *    `--trace` and `--metrics` all render one snapshot;
 *  - failures surface as structured Diags in a DiagSink instead of
 *    stringly exceptions, and the pipeline stops at the first failed
 *    pass;
 *  - built and parsed graphs take the identical analysis path, which
 *    is what makes `.dhdl` files first-class citizens.
 */

#ifndef DHDL_CORE_PASSES_HH
#define DHDL_CORE_PASSES_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/diag.hh"
#include "core/graph.hh"
#include "core/transform.hh"

namespace dhdl {

/**
 * Results the standard passes leave behind. Passes write into this
 * instead of returning values so that downstream passes (and the
 * caller) can consume earlier results.
 */
struct PassArtifacts {
    std::vector<std::string> validationErrors;
    std::vector<std::pair<NodeId, double>> foldedConstants;
    std::vector<NodeId> deadNodes;
    GraphStats stats;
};

/** Per-run state handed to every pass. */
class PassContext
{
  public:
    explicit PassContext(DiagSink& sink) : sink_(sink) {}

    DiagSink& sink() { return sink_; }

    PassArtifacts art;

  private:
    DiagSink& sink_;
};

/**
 * One pass: analyse the graph, record artifacts/diags in the context,
 * return ok to continue the pipeline. Passes must not mutate the
 * graph (it is shared with concurrent evaluators in the DSE).
 */
using PassFn = std::function<Status(const Graph&, PassContext&)>;

/**
 * Ordered pass pipeline. Runs passes in registration order, stops at
 * the first failure, and converts any exception escaping a pass into
 * a Diag — run() never throws. Per-pass wall-clock lands in the obs
 * registry and trace (category "pass") when recording is enabled.
 */
class PassManager
{
  public:
    void
    add(std::string name, PassFn fn)
    {
        passes_.push_back({std::move(name), std::move(fn)});
    }

    /**
     * Execute the pipeline. Failed-pass diagnostics are reported to
     * ctx.sink() and returned; executed() afterwards names every
     * pass that started (including a failing one), in order.
     */
    Status run(const Graph& g, PassContext& ctx);

    size_t size() const { return passes_.size(); }

    /** Names of passes started by the most recent run(), in order. */
    const std::vector<std::string>& executed() const
    {
        return executed_;
    }

  private:
    struct Entry {
        std::string name;
        PassFn fn;
    };

    std::vector<Entry> passes_;
    std::vector<std::string> executed_;
};

/**
 * The standard analysis pipeline: validate, fold-constants,
 * dead-nodes, stats. Artifacts land in PassContext::art.
 */
PassManager standardPasses();

} // namespace dhdl

#endif // DHDL_CORE_PASSES_HH

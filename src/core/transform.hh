/**
 * @file
 * IR transformation and analysis passes over DHDL graphs. The paper's
 * frontend (Step 1 of Figure 1) performs high-level optimizations
 * before handing the tiled design to estimation; these passes cover
 * the target-agnostic cleanups that remain useful at the DHDL level:
 * constant folding of primitive subgraphs, dead-node elimination, and
 * design statistics used by reports and the benches.
 *
 * Graphs are arena-allocated and immutable in shape, so passes mark
 * results rather than physically deleting nodes: downstream analyses
 * (expansion, simulation, codegen) consult the returned sets.
 */

#ifndef DHDL_CORE_TRANSFORM_HH
#define DHDL_CORE_TRANSFORM_HH

#include <optional>
#include <utility>
#include <vector>

#include "core/graph.hh"

namespace dhdl {

/**
 * Constant folding: evaluate primitive nodes whose operands are all
 * Const nodes. Returns (node id, folded value) pairs sorted by node
 * id — a deterministic order, stable across platforms and hash-table
 * implementations, so pass output can be printed or golden-tested
 * byte-for-byte. Graphs stay untouched (consumers may substitute the
 * values).
 */
std::vector<std::pair<NodeId, double>> foldConstants(const Graph& g);

/**
 * Evaluate one primitive op on constant operands (exposed for tests
 * and for the folding pass). Returns nullopt for non-foldable ops
 * (Iter, loads) or arity mismatch.
 */
std::optional<double> evalConstOp(Op op, const std::vector<double>& in);

/**
 * Dead-node elimination: primitives whose values can never reach a
 * store, a tile transfer, a reduce result, or a controller structure.
 * Returns the dead node ids sorted ascending (deterministic across
 * platforms and thread counts).
 */
std::vector<NodeId> findDeadNodes(const Graph& g);

/** Aggregate design statistics (used by reports and examples). */
struct GraphStats {
    int controllers = 0;
    int pipes = 0;
    int metaPipes = 0;
    int memories = 0;
    int offchipMems = 0;
    int transfers = 0;
    int primitives = 0;
    int maxDepth = 0; //!< Deepest controller nesting.
    int params = 0;
};

/** Compute statistics for a graph. */
GraphStats computeStats(const Graph& g);

} // namespace dhdl

#endif // DHDL_CORE_TRANSFORM_HH

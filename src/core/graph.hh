/**
 * @file
 * The hierarchical DHDL dataflow graph. Owns all nodes (arena style)
 * and the design's parameter table. A Graph plus a ParamBinding fully
 * determines a concrete hardware design instance.
 */

#ifndef DHDL_CORE_GRAPH_HH
#define DHDL_CORE_GRAPH_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/constraint.hh"
#include "core/node.hh"
#include "core/param.hh"

namespace dhdl {

/** Arena-owning hierarchical dataflow graph. */
class Graph
{
  public:
    explicit Graph(std::string name) : root(kNoNode),
        name_(std::move(name)) {}

    Graph(const Graph&) = delete;
    Graph& operator=(const Graph&) = delete;
    Graph(Graph&&) = default;
    Graph& operator=(Graph&&) = default;

    const std::string& name() const { return name_; }

    /** Create a node of type T in the arena and return a reference. */
    template <class T, class... Args>
    T&
    make(std::string node_name, Args&&... args)
    {
        auto id = NodeId(nodes_.size());
        auto up = std::make_unique<T>(id, std::move(node_name),
                                      std::forward<Args>(args)...);
        T& ref = *up;
        nodes_.push_back(std::move(up));
        return ref;
    }

    size_t numNodes() const { return nodes_.size(); }

    Node&
    node(NodeId id)
    {
        invariant(id >= 0 && size_t(id) < nodes_.size(),
                  "node id out of range");
        return *nodes_[size_t(id)];
    }

    const Node&
    node(NodeId id) const
    {
        invariant(id >= 0 && size_t(id) < nodes_.size(),
                  "node id out of range");
        return *nodes_[size_t(id)];
    }

    /** Typed access; panics when the node is not of the given kind. */
    template <class T>
    T&
    nodeAs(NodeId id)
    {
        T* p = dynamic_cast<T*>(&node(id));
        invariant(p != nullptr, "node kind mismatch");
        return *p;
    }

    template <class T>
    const T&
    nodeAs(NodeId id) const
    {
        const T* p = dynamic_cast<const T*>(&node(id));
        invariant(p != nullptr, "node kind mismatch");
        return *p;
    }

    /** Typed access that returns nullptr on kind mismatch. */
    template <class T>
    const T*
    tryAs(NodeId id) const
    {
        return dynamic_cast<const T*>(&node(id));
    }

    ParamTable& params() { return params_; }
    const ParamTable& params() const { return params_; }

    /** Top-level controller (set by the builder's accel() call). */
    NodeId root;

    /** Ids of all OffChipMem nodes, in declaration order. */
    std::vector<NodeId> offchipMems;

    /**
     * Cross-parameter legality constraints (e.g. an inner
     * parallelization factor must divide the tile size it iterates
     * over). Checked by the design space explorer before estimating
     * a point. Structured (core/constraint.hh) so they serialize
     * into the `.dhdl` text format together with the graph.
     */
    std::vector<Constraint> constraints;

    /** True when a binding satisfies every design constraint. */
    bool
    satisfiesConstraints(const ParamBinding& b) const
    {
        for (const auto& c : constraints) {
            if (!c.eval(b))
                return false;
        }
        return true;
    }

  private:
    std::string name_;
    std::vector<std::unique_ptr<Node>> nodes_;
    ParamTable params_;
};

} // namespace dhdl

#endif // DHDL_CORE_GRAPH_HH

/**
 * @file
 * Structured cross-parameter constraints. The design space pruning
 * rules of Section IV-C ("legal values divide the tile size they
 * iterate over") used to be captured as opaque C++ closures on the
 * Graph, which made a design impossible to serialize: a `.dhdl` file
 * round-tripped through the parser would silently lose its pruning
 * rules and explore a different (larger) space.
 *
 * A Constraint is instead a small arithmetic expression tree over
 * int64 — constants, parameter references, + - * / %, compared with
 * one of == != < <= > >= — which the printer can emit and the parser
 * can rebuild exactly. Evaluation is total: division by zero and
 * signed overflow make the constraint unsatisfied instead of raising
 * UB, so hostile `.dhdl` inputs cannot crash the explorer.
 */

#ifndef DHDL_CORE_CONSTRAINT_HH
#define DHDL_CORE_CONSTRAINT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/param.hh"

namespace dhdl {

/** Arithmetic operator of an interior constraint-expression node. */
enum class CArith : uint8_t { Add, Sub, Mul, Div, Mod };

/** Comparison operator of a constraint. */
enum class CCmp : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/** Token of a CArith, e.g. "%". */
const char* arithName(CArith op);

/** Token of a CCmp, e.g. "<=". */
const char* cmpName(CCmp op);

/**
 * Constraint expression: a constant, a parameter reference, or a
 * binary arithmetic node. Interior children are shared immutably, so
 * copies are cheap and the type is value-semantic.
 */
class CExpr
{
  public:
    enum class Kind : uint8_t { Const, Param, Arith };

    /** Default: the constant 0. */
    CExpr() = default;

    /** Constant expression. */
    static CExpr
    c(int64_t v)
    {
        CExpr e;
        e.kind_ = Kind::Const;
        e.value_ = v;
        return e;
    }

    /** Parameter reference expression. */
    static CExpr
    p(ParamId id)
    {
        CExpr e;
        e.kind_ = Kind::Param;
        e.param_ = id;
        return e;
    }

    /** Binary arithmetic expression. */
    static CExpr arith(CArith op, CExpr lhs, CExpr rhs);

    Kind kind() const { return kind_; }

    /** Constant value; only meaningful for Kind::Const. */
    int64_t value() const { return value_; }

    /** Referenced parameter; only meaningful for Kind::Param. */
    ParamId param() const { return param_; }

    /** Operator / children; only meaningful for Kind::Arith. */
    CArith op() const { return op_; }
    const CExpr& lhs() const;
    const CExpr& rhs() const;

    /**
     * Evaluate under a binding. Returns nullopt on division or
     * modulo by zero, on signed overflow, or on a parameter
     * reference outside the binding — never UB, never a throw.
     */
    std::optional<int64_t> eval(const ParamBinding& b) const;

    /**
     * Canonical text: fully parenthesized, parameters as `$<id>`,
     * e.g. "(($0 + 4) * 32)". Parsed back by core/parser.
     */
    std::string str() const;

    /** Largest referenced ParamId; kNoParam when none. */
    ParamId maxParam() const;

  private:
    Kind kind_ = Kind::Const;
    int64_t value_ = 0;
    ParamId param_ = kNoParam;
    CArith op_ = CArith::Add;
    std::shared_ptr<const CExpr> lhs_, rhs_;
};

/** One legality constraint: `lhs cmp rhs` must hold. */
struct Constraint {
    CExpr lhs;
    CCmp cmp = CCmp::Eq;
    CExpr rhs;

    /**
     * True when the comparison holds under the binding. A side that
     * fails to evaluate (overflow, division by zero, bad parameter)
     * makes the constraint unsatisfied.
     */
    bool eval(const ParamBinding& b) const;

    /** Canonical text, e.g. "($0 % $2) == 0". */
    std::string str() const;

    /** Largest ParamId referenced by either side; kNoParam if none. */
    ParamId maxParam() const;
};

// ---- Expression-building DSL ---------------------------------------------
//
// Apps write constraints almost as before, swapping b[p] for
// CExpr::p(p):
//
//   d.constrain(CExpr::p(ts) % CExpr::p(par) == 0);
//   d.constrain((CExpr::c(n) / CExpr::p(ts)) % CExpr::p(outer) == 0);

inline CExpr
operator+(CExpr a, CExpr b)
{
    return CExpr::arith(CArith::Add, std::move(a), std::move(b));
}

inline CExpr
operator-(CExpr a, CExpr b)
{
    return CExpr::arith(CArith::Sub, std::move(a), std::move(b));
}

inline CExpr
operator*(CExpr a, CExpr b)
{
    return CExpr::arith(CArith::Mul, std::move(a), std::move(b));
}

inline CExpr
operator/(CExpr a, CExpr b)
{
    return CExpr::arith(CArith::Div, std::move(a), std::move(b));
}

inline CExpr
operator%(CExpr a, CExpr b)
{
    return CExpr::arith(CArith::Mod, std::move(a), std::move(b));
}

inline CExpr operator+(CExpr a, int64_t b) { return std::move(a) + CExpr::c(b); }
inline CExpr operator-(CExpr a, int64_t b) { return std::move(a) - CExpr::c(b); }
inline CExpr operator*(CExpr a, int64_t b) { return std::move(a) * CExpr::c(b); }
inline CExpr operator/(CExpr a, int64_t b) { return std::move(a) / CExpr::c(b); }
inline CExpr operator%(CExpr a, int64_t b) { return std::move(a) % CExpr::c(b); }
inline CExpr operator+(int64_t a, CExpr b) { return CExpr::c(a) + std::move(b); }
inline CExpr operator-(int64_t a, CExpr b) { return CExpr::c(a) - std::move(b); }
inline CExpr operator*(int64_t a, CExpr b) { return CExpr::c(a) * std::move(b); }
inline CExpr operator/(int64_t a, CExpr b) { return CExpr::c(a) / std::move(b); }
inline CExpr operator%(int64_t a, CExpr b) { return CExpr::c(a) % std::move(b); }

inline Constraint
operator==(CExpr a, CExpr b)
{
    return Constraint{std::move(a), CCmp::Eq, std::move(b)};
}

inline Constraint
operator!=(CExpr a, CExpr b)
{
    return Constraint{std::move(a), CCmp::Ne, std::move(b)};
}

inline Constraint
operator<(CExpr a, CExpr b)
{
    return Constraint{std::move(a), CCmp::Lt, std::move(b)};
}

inline Constraint
operator<=(CExpr a, CExpr b)
{
    return Constraint{std::move(a), CCmp::Le, std::move(b)};
}

inline Constraint
operator>(CExpr a, CExpr b)
{
    return Constraint{std::move(a), CCmp::Gt, std::move(b)};
}

inline Constraint
operator>=(CExpr a, CExpr b)
{
    return Constraint{std::move(a), CCmp::Ge, std::move(b)};
}

inline Constraint operator==(CExpr a, int64_t b) { return std::move(a) == CExpr::c(b); }
inline Constraint operator!=(CExpr a, int64_t b) { return std::move(a) != CExpr::c(b); }
inline Constraint operator<(CExpr a, int64_t b) { return std::move(a) < CExpr::c(b); }
inline Constraint operator<=(CExpr a, int64_t b) { return std::move(a) <= CExpr::c(b); }
inline Constraint operator>(CExpr a, int64_t b) { return std::move(a) > CExpr::c(b); }
inline Constraint operator>=(CExpr a, int64_t b) { return std::move(a) >= CExpr::c(b); }

} // namespace dhdl

#endif // DHDL_CORE_CONSTRAINT_HH

/**
 * @file
 * Minimal blocking thread pool with a parallel-for helper, used by
 * the multithreaded CPU reference implementations (the paper runs
 * each CPU benchmark with 6 threads on a Xeon E5-2630).
 */

#ifndef DHDL_CPU_THREAD_POOL_HH
#define DHDL_CPU_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dhdl::cpu {

/**
 * Fixed-size worker pool executing submitted tasks. Workers register
 * with the obs subsystem as "worker-0" ... "worker-N-1" (stable
 * per-pool indices, never raw std::thread::id), so trace events and
 * diagnostics produced on a worker attribute to a readable name.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(int threads = 6);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int threads() const { return int(workers_.size()); }

    /** Submit a task; wait for all with barrier(). */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. A task that
     * threw does not kill its worker thread: the first exception is
     * captured and rethrown here (subsequent ones are dropped), and
     * the pool remains usable afterwards.
     */
    void barrier();

    /**
     * Split [0, n) into one contiguous chunk per worker and run
     * body(begin, end) on each; blocks until all chunks finish.
     */
    void parallelFor(int64_t n,
                     const std::function<void(int64_t, int64_t)>& body);

  private:
    void workerLoop(int index);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    int64_t pending_ = 0;
    bool stop_ = false;
    std::exception_ptr firstError_; //!< Rethrown by barrier().
};

} // namespace dhdl::cpu

#endif // DHDL_CPU_THREAD_POOL_HH

#include "cpu/roofline.hh"

#include <algorithm>

#include "core/error.hh"

namespace dhdl::cpu {

double
cpuTimeSeconds(const CpuPlatform& p, const CpuWorkload& w)
{
    require(w.computeEff > 0 && w.computeEff <= 1.0 &&
                w.memoryEff > 0 && w.memoryEff <= 1.0,
            "roofline efficiencies must be in (0, 1]");
    double compute_s =
        w.flops / (p.peakGflops() * 1e9 * w.computeEff);
    double memory_s = w.bytes / (p.memBwGBs * 1e9 * w.memoryEff);
    return std::max(compute_s, memory_s);
}

} // namespace dhdl::cpu

/**
 * @file
 * Roofline performance model of the paper's CPU baseline: a 6-core
 * Intel Xeon E5-2630 at 2.3 GHz with 42.6 GB/s of main memory
 * bandwidth and a 15 MB LLC (Section V-D). The reproduction host is
 * not that machine, so Figure 6's CPU times come from this calibrated
 * model applied to each benchmark's operation and byte counts; the
 * real multithreaded kernels (kernels.hh) remain the functional
 * oracles. See DESIGN.md for the substitution rationale.
 */

#ifndef DHDL_CPU_ROOFLINE_HH
#define DHDL_CPU_ROOFLINE_HH

#include <cstdint>
#include <string>

namespace dhdl::cpu {

/** CPU platform parameters (defaults: Xeon E5-2630, 6 threads). */
struct CpuPlatform {
    int cores = 6;
    double ghz = 2.3;
    /** Peak single-precision FLOPs per cycle per core (AVX). */
    double flopsPerCycle = 16.0;
    double memBwGBs = 42.6;

    double
    peakGflops() const
    {
        return cores * ghz * flopsPerCycle;
    }
};

/** One benchmark's workload characteristics on the CPU. */
struct CpuWorkload {
    std::string name;
    double flops = 0;      //!< Useful arithmetic operations.
    double bytes = 0;      //!< DRAM traffic (beyond-LLC bytes).
    /** Fraction of peak FLOPs the tuned kernel sustains. */
    double computeEff = 0.5;
    /** Fraction of peak bandwidth the stream sustains. */
    double memoryEff = 0.85;
};

/**
 * Modeled execution time in seconds: the roofline max of compute
 * time and memory time under the given efficiencies.
 */
double cpuTimeSeconds(const CpuPlatform& p, const CpuWorkload& w);

} // namespace dhdl::cpu

#endif // DHDL_CPU_ROOFLINE_HH

#include "cpu/kernels.hh"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "core/error.hh"

namespace dhdl::cpu {

float
dotproduct(ThreadPool& pool, const std::vector<float>& a,
           const std::vector<float>& b)
{
    require(a.size() == b.size(), "dotproduct size mismatch");
    std::mutex mu;
    int64_t n = int64_t(a.size());
    double total = 0.0;
    pool.parallelFor(n, [&](int64_t lo, int64_t hi) {
        double s = 0.0;
        for (int64_t i = lo; i < hi; ++i)
            s += double(a[size_t(i)]) * double(b[size_t(i)]);
        std::lock_guard<std::mutex> lock(mu);
        total += s;
    });
    return float(total);
}

void
outerprod(ThreadPool& pool, const std::vector<float>& a,
          const std::vector<float>& b, std::vector<float>& out)
{
    int64_t n = int64_t(a.size());
    int64_t m = int64_t(b.size());
    require(out.size() == size_t(n * m), "outerprod size mismatch");
    pool.parallelFor(n, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            float ai = a[size_t(i)];
            float* row = &out[size_t(i * m)];
            for (int64_t j = 0; j < m; ++j)
                row[j] = ai * b[size_t(j)];
        }
    });
}

void
gemm(ThreadPool& pool, const std::vector<float>& a,
     const std::vector<float>& b, std::vector<float>& c, int64_t m,
     int64_t n, int64_t k)
{
    require(a.size() == size_t(m * k) && b.size() == size_t(k * n) &&
                c.size() == size_t(m * n),
            "gemm size mismatch");
    std::fill(c.begin(), c.end(), 0.0f);
    constexpr int64_t kc = 64;
    pool.parallelFor(m, [&](int64_t lo, int64_t hi) {
        for (int64_t k0 = 0; k0 < k; k0 += kc) {
            int64_t k1 = std::min(k, k0 + kc);
            for (int64_t i = lo; i < hi; ++i) {
                for (int64_t kk = k0; kk < k1; ++kk) {
                    float aik = a[size_t(i * k + kk)];
                    const float* brow = &b[size_t(kk * n)];
                    float* crow = &c[size_t(i * n)];
                    for (int64_t j = 0; j < n; ++j)
                        crow[j] += aik * brow[j];
                }
            }
        }
    });
}

float
tpchq6(ThreadPool& pool, const std::vector<float>& dates,
       const std::vector<float>& quantities,
       const std::vector<float>& discounts,
       const std::vector<float>& prices, float date_lo, float date_hi,
       float disc_lo, float disc_hi, float qty_max)
{
    int64_t n = int64_t(dates.size());
    require(quantities.size() == size_t(n) &&
                discounts.size() == size_t(n) &&
                prices.size() == size_t(n),
            "tpchq6 size mismatch");
    std::mutex mu;
    double total = 0.0;
    pool.parallelFor(n, [&](int64_t lo, int64_t hi) {
        double s = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
            size_t u = size_t(i);
            bool pass = dates[u] >= date_lo && dates[u] < date_hi &&
                        discounts[u] >= disc_lo &&
                        discounts[u] <= disc_hi &&
                        quantities[u] < qty_max;
            if (pass)
                s += double(prices[u]) * double(discounts[u]);
        }
        std::lock_guard<std::mutex> lock(mu);
        total += s;
    });
    return float(total);
}

namespace {

/** Cumulative normal distribution (PARSEC blackscholes polynomial). */
float
cndf(float x)
{
    bool neg = x < 0.0f;
    float ax = std::fabs(x);
    float k = 1.0f / (1.0f + 0.2316419f * ax);
    float k2 = k * k;
    float k3 = k2 * k;
    float k4 = k3 * k;
    float k5 = k4 * k;
    float poly = 0.319381530f * k - 0.356563782f * k2 +
                 1.781477937f * k3 - 1.821255978f * k4 +
                 1.330274429f * k5;
    float pdf =
        0.39894228040143270286f * std::exp(-0.5f * ax * ax);
    float cnd = 1.0f - pdf * poly;
    return neg ? 1.0f - cnd : cnd;
}

} // namespace

float
blackscholesOne(float otype, float sptprice, float strike, float rate,
                float volatility, float otime)
{
    float sqrt_t = std::sqrt(otime);
    float log_term = std::log(sptprice / strike);
    float pow_term = 0.5f * volatility * volatility;
    float den = volatility * sqrt_t;
    float d1 = (log_term + (rate + pow_term) * otime) / den;
    float d2 = d1 - den;
    float n_d1 = cndf(d1);
    float n_d2 = cndf(d2);
    float fut = strike * std::exp(-rate * otime);
    if (otype != 0.0f)
        return sptprice * n_d1 - fut * n_d2;
    return fut * (1.0f - n_d2) - sptprice * (1.0f - n_d1);
}

void
blackscholes(ThreadPool& pool, const std::vector<float>& otype,
             const std::vector<float>& sptprice,
             const std::vector<float>& strike,
             const std::vector<float>& rate,
             const std::vector<float>& volatility,
             const std::vector<float>& otime,
             std::vector<float>& prices)
{
    int64_t n = int64_t(otype.size());
    require(prices.size() == size_t(n), "blackscholes size mismatch");
    pool.parallelFor(n, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            size_t u = size_t(i);
            prices[u] = blackscholesOne(otype[u], sptprice[u],
                                        strike[u], rate[u],
                                        volatility[u], otime[u]);
        }
    });
}

void
gda(ThreadPool& pool, const std::vector<float>& x,
    const std::vector<float>& y, const std::vector<float>& mu0,
    const std::vector<float>& mu1, std::vector<float>& sigma,
    int64_t rows, int64_t cols)
{
    require(x.size() == size_t(rows * cols) && y.size() == size_t(rows) &&
                mu0.size() == size_t(cols) &&
                mu1.size() == size_t(cols) &&
                sigma.size() == size_t(cols * cols),
            "gda size mismatch");
    std::mutex mu;
    std::fill(sigma.begin(), sigma.end(), 0.0f);
    pool.parallelFor(rows, [&](int64_t lo, int64_t hi) {
        std::vector<float> sub(static_cast<size_t>(cols), 0.0f);
        std::vector<double> local(size_t(cols * cols), 0.0);
        for (int64_t r = lo; r < hi; ++r) {
            const float* mu_r = y[size_t(r)] != 0.0f ? mu1.data()
                                                     : mu0.data();
            const float* xr = &x[size_t(r * cols)];
            for (int64_t c = 0; c < cols; ++c)
                sub[size_t(c)] = xr[c] - mu_r[c];
            for (int64_t i = 0; i < cols; ++i) {
                double si = double(sub[size_t(i)]);
                for (int64_t j = 0; j < cols; ++j)
                    local[size_t(i * cols + j)] +=
                        si * double(sub[size_t(j)]);
            }
        }
        std::lock_guard<std::mutex> lock(mu);
        for (size_t i = 0; i < local.size(); ++i)
            sigma[i] += float(local[i]);
    });
}

void
conv2d(ThreadPool& pool, const std::vector<float>& image,
       const std::vector<float>& kernel, std::vector<float>& out,
       int64_t h, int64_t w, int64_t k)
{
    int64_t h_out = h - k + 1;
    int64_t w_out = w - k + 1;
    require(image.size() == size_t(h * w) &&
                kernel.size() == size_t(k * k) &&
                out.size() == size_t(h_out * w_out),
            "conv2d size mismatch");
    pool.parallelFor(h_out, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            for (int64_t j = 0; j < w_out; ++j) {
                float acc = 0;
                for (int64_t ki = 0; ki < k; ++ki) {
                    const float* row = &image[size_t((i + ki) * w)];
                    const float* kr = &kernel[size_t(ki * k)];
                    for (int64_t kj = 0; kj < k; ++kj)
                        acc += row[j + kj] * kr[kj];
                }
                out[size_t(i * w_out + j)] = acc;
            }
        }
    });
}

void
kmeans(ThreadPool& pool, const std::vector<float>& points,
       const std::vector<float>& centroids,
       std::vector<float>& new_centroids, int64_t n, int64_t k,
       int64_t dim)
{
    require(points.size() == size_t(n * dim) &&
                centroids.size() == size_t(k * dim) &&
                new_centroids.size() == size_t(k * dim),
            "kmeans size mismatch");
    std::mutex mu;
    std::vector<double> acc(size_t(k * dim), 0.0);
    std::vector<int64_t> count(size_t(k), 0);

    pool.parallelFor(n, [&](int64_t lo, int64_t hi) {
        std::vector<double> local_acc(size_t(k * dim), 0.0);
        std::vector<int64_t> local_cnt(size_t(k), 0);
        for (int64_t p = lo; p < hi; ++p) {
            const float* pt = &points[size_t(p * dim)];
            int64_t best = 0;
            double best_d = 1e300;
            for (int64_t c = 0; c < k; ++c) {
                const float* ct = &centroids[size_t(c * dim)];
                double d = 0.0;
                for (int64_t j = 0; j < dim; ++j) {
                    double diff = double(pt[j]) - double(ct[j]);
                    d += diff * diff;
                }
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            ++local_cnt[size_t(best)];
            for (int64_t j = 0; j < dim; ++j)
                local_acc[size_t(best * dim + j)] += double(pt[j]);
        }
        std::lock_guard<std::mutex> lock(mu);
        for (size_t i = 0; i < acc.size(); ++i)
            acc[i] += local_acc[i];
        for (size_t i = 0; i < count.size(); ++i)
            count[i] += local_cnt[i];
    });

    for (int64_t c = 0; c < k; ++c) {
        for (int64_t j = 0; j < dim; ++j) {
            size_t idx = size_t(c * dim + j);
            new_centroids[idx] =
                count[size_t(c)] > 0
                    ? float(acc[idx] / double(count[size_t(c)]))
                    : centroids[idx];
        }
    }
}

} // namespace dhdl::cpu

/**
 * @file
 * Optimized multithreaded CPU reference implementations of the seven
 * evaluation benchmarks (Table II). These serve two purposes: they
 * are the functional oracles for the DHDL simulator, and they define
 * the operation/byte counts the roofline CPU model (Figure 6
 * baseline) is evaluated on.
 */

#ifndef DHDL_CPU_KERNELS_HH
#define DHDL_CPU_KERNELS_HH

#include <cstdint>
#include <vector>

#include "cpu/thread_pool.hh"

namespace dhdl::cpu {

/** Vector dot product: sum(a[i] * b[i]). */
float dotproduct(ThreadPool& pool, const std::vector<float>& a,
                 const std::vector<float>& b);

/** Vector outer product: out[i*m + j] = a[i] * b[j]. */
void outerprod(ThreadPool& pool, const std::vector<float>& a,
               const std::vector<float>& b, std::vector<float>& out);

/** Blocked matrix multiply: c[m x n] = a[m x k] * b[k x n]. */
void gemm(ThreadPool& pool, const std::vector<float>& a,
          const std::vector<float>& b, std::vector<float>& c,
          int64_t m, int64_t n, int64_t k);

/**
 * TPC-H Query 6: sum(price * discount) over rows passing the date /
 * discount / quantity filters.
 */
float tpchq6(ThreadPool& pool, const std::vector<float>& dates,
             const std::vector<float>& quantities,
             const std::vector<float>& discounts,
             const std::vector<float>& prices, float date_lo,
             float date_hi, float disc_lo, float disc_hi,
             float qty_max);

/**
 * Black-Scholes European option pricing; otype selects call (1) or
 * put (0) per option. Writes one price per option.
 */
void blackscholes(ThreadPool& pool, const std::vector<float>& otype,
                  const std::vector<float>& sptprice,
                  const std::vector<float>& strike,
                  const std::vector<float>& rate,
                  const std::vector<float>& volatility,
                  const std::vector<float>& otime,
                  std::vector<float>& prices);

/** Scalar Black-Scholes (shared with the DHDL app's dataflow). */
float blackscholesOne(float otype, float sptprice, float strike,
                      float rate, float volatility, float otime);

/**
 * Gaussian discriminant analysis covariance accumulation:
 * sigma[C x C] = sum_r (x_r - mu_{y_r}) (x_r - mu_{y_r})^T.
 */
void gda(ThreadPool& pool, const std::vector<float>& x,
         const std::vector<float>& y, const std::vector<float>& mu0,
         const std::vector<float>& mu1, std::vector<float>& sigma,
         int64_t rows, int64_t cols);

/**
 * 2-D valid convolution: out[(h-k+1) x (w-k+1)] of image[h x w] with
 * kernel[k x k] (extension app's reference).
 */
void conv2d(ThreadPool& pool, const std::vector<float>& image,
            const std::vector<float>& kernel, std::vector<float>& out,
            int64_t h, int64_t w, int64_t k);

/**
 * One k-means iteration: assign each point to the nearest centroid
 * and emit the recomputed centroids (mean of assigned points; an
 * empty cluster keeps its old centroid).
 */
void kmeans(ThreadPool& pool, const std::vector<float>& points,
            const std::vector<float>& centroids,
            std::vector<float>& new_centroids, int64_t n, int64_t k,
            int64_t dim);

} // namespace dhdl::cpu

#endif // DHDL_CPU_KERNELS_HH

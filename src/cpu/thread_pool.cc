#include "cpu/thread_pool.hh"

#include <algorithm>
#include <utility>

#include "core/error.hh"
#include "obs/metrics.hh"

namespace dhdl::cpu {

namespace {

/** Pool-wide observability: task volume and instantaneous backlog. */
const obs::Counter&
taskCounter()
{
    static const obs::Counter c("cpu.pool.tasks");
    return c;
}

const obs::Gauge&
queueDepth()
{
    static const obs::Gauge g("cpu.pool.queue_depth");
    return g;
}

} // namespace

ThreadPool::ThreadPool(int threads)
{
    require(threads > 0, "thread pool needs at least one worker");
    workers_.reserve(size_t(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::workerLoop(int index)
{
    obs::setThreadName("worker-" + std::to_string(index));
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
            queueDepth().set(int64_t(tasks_.size()));
        }
        try {
            task();
        } catch (...) {
            // Keep the worker alive; surface the failure at the
            // next barrier() instead of std::terminate()ing.
            std::lock_guard<std::mutex> lock(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --pending_;
        }
        idleCv_.notify_all();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        tasks_.push(std::move(task));
        ++pending_;
        queueDepth().set(int64_t(tasks_.size()));
    }
    taskCounter().add(1);
    cv_.notify_one();
}

void
ThreadPool::barrier()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock, [this] { return pending_ == 0; });
    if (firstError_) {
        std::exception_ptr e = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(e);
    }
}

void
ThreadPool::parallelFor(int64_t n,
                        const std::function<void(int64_t, int64_t)>& body)
{
    if (n <= 0)
        return;
    int64_t chunks = std::min<int64_t>(threads(), n);
    int64_t per = (n + chunks - 1) / chunks;
    for (int64_t c = 0; c < chunks; ++c) {
        int64_t lo = c * per;
        int64_t hi = std::min(n, lo + per);
        if (lo >= hi)
            break;
        submit([=, &body] { body(lo, hi); });
    }
    barrier();
}

} // namespace dhdl::cpu

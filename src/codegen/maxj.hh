/**
 * @file
 * MaxJ code generation (Steps 5-7 of Figure 1). The paper's compiler
 * "generates hardware by emitting MaxJ, which is a low-level
 * Java-based hardware generation language" from Maxeler. This module
 * emits a MaxJ Kernel class for a concrete design instance: counter
 * chains for Counter templates, stream offsets/FIFOs for delay
 * matching, Mem.alloc blocks for BRAMs, and LMem command streams for
 * TileLd/TileSt. Without the proprietary MaxCompiler the output is
 * validated structurally (well-formedness + golden substrings).
 */

#ifndef DHDL_CODEGEN_MAXJ_HH
#define DHDL_CODEGEN_MAXJ_HH

#include <string>

#include "analysis/instance.hh"

namespace dhdl::codegen {

/** Emit the MaxJ Kernel source for one design instance. */
std::string emitMaxj(const Inst& inst);

/** Emit the MaxJ Manager (stream + LMem wiring) for the design. */
std::string emitMaxjManager(const Inst& inst);

} // namespace dhdl::codegen

#endif // DHDL_CODEGEN_MAXJ_HH

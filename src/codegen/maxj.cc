#include "codegen/maxj.hh"

#include <cctype>
#include <sstream>

#include "analysis/banking.hh"
#include "obs/trace.hh"

namespace dhdl::codegen {

namespace {

/** Sanitize a DHDL node name into a Java identifier. */
std::string
ident(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name)
        out.push_back(std::isalnum(uint8_t(c)) ? c : '_');
    if (out.empty() || std::isdigit(uint8_t(out[0])))
        out.insert(out.begin(), 'v');
    return out;
}

std::string
typeOf(const DType& t)
{
    std::ostringstream os;
    if (t.isFloat())
        os << "dfeFloat(" << int(t.fieldA) << ", " << int(t.fieldB + 1)
           << ")";
    else if (t.isBit())
        os << "dfeBool()";
    else
        os << "dfeFixOffset(" << t.bits() << ", " << -int(t.fieldB)
           << ", SignMode." << (t.sign ? "TWOSCOMPLEMENT" : "UNSIGNED")
           << ")";
    return os.str();
}

class MaxjEmitter
{
  public:
    MaxjEmitter(const Inst& inst) : inst_(inst), g_(inst.graph()) {}

    std::string
    kernel()
    {
        os_ << "package " << ident(g_.name()) << ";\n\n";
        os_ << "import com.maxeler.maxcompiler.v2.kernelcompiler."
               "Kernel;\n";
        os_ << "import com.maxeler.maxcompiler.v2.kernelcompiler."
               "KernelParameters;\n";
        os_ << "import com.maxeler.maxcompiler.v2.kernelcompiler."
               "stdlib.core.CounterChain;\n";
        os_ << "import com.maxeler.maxcompiler.v2.kernelcompiler."
               "stdlib.memory.Memory;\n\n";
        os_ << "class " << className() << " extends Kernel {\n\n";
        os_ << "    " << className()
            << "(KernelParameters parameters) {\n";
        os_ << "        super(parameters);\n\n";
        if (g_.root != kNoNode)
            emitCtrl(g_.root, 2);
        os_ << "    }\n";
        os_ << "}\n";
        return os_.str();
    }

    std::string
    manager()
    {
        os_ << "package " << ident(g_.name()) << ";\n\n";
        os_ << "import com.maxeler.maxcompiler.v2.managers.custom."
               "CustomManager;\n\n";
        os_ << "class " << className() << "Manager"
            << " extends CustomManager {\n";
        os_ << "    " << className() << "Manager(EngineParameters p) {\n";
        os_ << "        super(p);\n";
        os_ << "        KernelBlock k = addKernel(new " << className()
            << "(makeKernelParameters(\"" << className() << "\")));\n";
        for (NodeId m : g_.offchipMems) {
            const auto& mem = g_.nodeAs<OffChipMemNode>(m);
            os_ << "        // off-chip array " << mem.name() << " ("
                << mem.type.str() << ")\n";
            os_ << "        k.getInput(\"" << ident(mem.name())
                << "\") <== addStreamFromOnCardMemory(\""
                << ident(mem.name())
                << "\", MemoryControlGroup.MemoryAccessPattern."
                   "LINEAR_1D);\n";
        }
        os_ << "    }\n";
        os_ << "}\n";
        return os_.str();
    }

  private:
    std::string
    className()
    {
        std::string n = ident(g_.name());
        n[0] = char(std::toupper(uint8_t(n[0])));
        return n + "Kernel";
    }

    void
    line(int depth, const std::string& text)
    {
        for (int i = 0; i < depth; ++i)
            os_ << "    ";
        os_ << text << "\n";
    }

    std::string
    ref(NodeId id)
    {
        const Node& n = g_.node(id);
        if (n.kind() == NodeKind::Prim) {
            const auto& p = g_.nodeAs<PrimNode>(id);
            if (p.op == Op::Const) {
                std::ostringstream c;
                c << "constant.var(" << p.constValue << ")";
                return c.str();
            }
        }
        return ident(n.name()) + "_" + std::to_string(id);
    }

    void
    emitPrim(NodeId id, int depth)
    {
        const Node& n = g_.node(id);
        std::ostringstream l;
        switch (n.kind()) {
          case NodeKind::Prim: {
            const auto& p = g_.nodeAs<PrimNode>(id);
            if (p.op == Op::Const)
                return;
            if (p.op == Op::Iter)
                return; // emitted with the counter chain
            l << "DFEVar " << ref(id) << " = ";
            auto in = [&](size_t i) { return ref(p.inputs[i]); };
            switch (p.op) {
              case Op::Add: l << in(0) << " + " << in(1); break;
              case Op::Sub: l << in(0) << " - " << in(1); break;
              case Op::Mul: l << in(0) << " * " << in(1); break;
              case Op::Div: l << in(0) << " / " << in(1); break;
              case Op::Mod: l << "KernelMath.modulo(" << in(0) << ", "
                              << in(1) << ")"; break;
              case Op::Min: l << "KernelMath.min(" << in(0) << ", "
                              << in(1) << ")"; break;
              case Op::Max: l << "KernelMath.max(" << in(0) << ", "
                              << in(1) << ")"; break;
              case Op::Lt: l << in(0) << " < " << in(1); break;
              case Op::Le: l << in(0) << " <= " << in(1); break;
              case Op::Gt: l << in(0) << " > " << in(1); break;
              case Op::Ge: l << in(0) << " >= " << in(1); break;
              case Op::Eq: l << in(0) << " === " << in(1); break;
              case Op::Neq: l << in(0) << " !== " << in(1); break;
              case Op::And: l << in(0) << " & " << in(1); break;
              case Op::Or: l << in(0) << " | " << in(1); break;
              case Op::Not: l << "~" << in(0); break;
              case Op::Mux: l << in(0) << " ? " << in(1) << " : "
                              << in(2); break;
              case Op::Abs: l << "KernelMath.abs(" << in(0) << ")";
                            break;
              case Op::Neg: l << "-" << in(0); break;
              case Op::Sqrt: l << "KernelMath.sqrt(" << in(0) << ")";
                             break;
              case Op::Exp: l << "KernelMath.exp(" << in(0) << ")";
                            break;
              case Op::Log: l << "KernelMath.log(" << in(0) << ")";
                            break;
              case Op::ToFloat:
              case Op::ToFixed:
                l << in(0) << ".cast(" << typeOf(p.type) << ")";
                break;
              default: l << in(0); break;
            }
            l << ";";
            line(depth, l.str());
            break;
          }
          case NodeKind::Load: {
            const auto& ld = g_.nodeAs<LoadNode>(id);
            l << "DFEVar " << ref(id) << " = "
              << ident(g_.node(ld.mem).name()) << "_" << ld.mem
              << ".read(" << addr(ld.addr) << ");";
            line(depth, l.str());
            break;
          }
          case NodeKind::Store: {
            const auto& st = g_.nodeAs<StoreNode>(id);
            l << ident(g_.node(st.mem).name()) << "_" << st.mem
              << ".write(" << addr(st.addr) << ", " << ref(st.value)
              << ", constant.var(true));";
            line(depth, l.str());
            break;
          }
          default:
            break;
        }
    }

    std::string
    addr(const std::vector<NodeId>& a)
    {
        std::ostringstream os;
        for (size_t i = 0; i < a.size(); ++i) {
            if (i)
                os << ", ";
            os << ref(a[i]);
        }
        return os.str();
    }

    void
    emitCtrl(NodeId id, int depth)
    {
        const auto& c = g_.nodeAs<ControllerNode>(id);
        std::string kind = kindName(c.kind());
        bool meta = c.kind() == NodeKind::MetaPipe &&
                    inst_.metaActive(id);
        std::ostringstream hdr;
        hdr << "// " << (meta ? "MetaPipe" : kind) << " "
            << c.name() << " par=" << inst_.par(id);
        line(depth, hdr.str());

        if (c.counter != kNoNode) {
            const auto& ctr = g_.nodeAs<CounterNode>(c.counter);
            std::ostringstream cc;
            cc << "CounterChain " << ident(c.name())
               << "_chain = control.count.makeCounterChain();";
            line(depth, cc.str());
            for (size_t d = 0; d < ctr.dims.size(); ++d) {
                std::ostringstream iv;
                iv << "DFEVar " << ident(c.name()) << "_i" << d
                   << " = " << ident(c.name()) << "_chain.addCounter("
                   << inst_.val(ctr.dims[d].max) << ", "
                   << inst_.val(ctr.dims[d].step) << ");";
                line(depth, iv.str());
            }
            // Bind iterator nodes to the chain counters.
            for (NodeId ch : c.children) {
                const auto* p = g_.tryAs<PrimNode>(ch);
                if (p && p->op == Op::Iter) {
                    std::ostringstream b;
                    b << "DFEVar " << ref(ch) << " = "
                      << ident(c.name()) << "_i" << p->ctrDim << ";";
                    line(depth, b.str());
                }
            }
        }

        for (NodeId ch : c.children) {
            const Node& n = g_.node(ch);
            switch (n.kind()) {
              case NodeKind::Bram: {
                const auto& m = g_.nodeAs<BramNode>(ch);
                std::ostringstream l;
                l << "Memory<DFEVar> " << ident(m.name()) << "_" << ch
                  << " = mem.alloc(" << typeOf(m.type) << ", "
                  << inst_.memElems(ch) << "); // banks="
                  << inferBanks(inst_, ch)
                  << (inst_.doubleBuffered(ch) ? " doubleBuffered"
                                               : "");
                line(depth, l.str());
                break;
              }
              case NodeKind::Reg: {
                const auto& m = g_.nodeAs<RegNode>(ch);
                std::ostringstream l;
                l << "DFEVar " << ident(m.name()) << "_" << ch
                  << " = " << typeOf(m.type) << ".newInstance(this);";
                line(depth, l.str());
                break;
              }
              case NodeKind::TileLd: {
                const auto& t = g_.nodeAs<TileLdNode>(ch);
                std::ostringstream l;
                l << "// TileLd: LMem -> "
                  << ident(g_.node(t.onchip).name()) << " ("
                  << inst_.val(t.par) << " elems/cycle)";
                line(depth, l.str());
                line(depth,
                     "LMemCommandStream.makeKernelOutput(\"" +
                         ident(g_.node(t.offchip).name()) +
                         "_cmd\", ...);");
                break;
              }
              case NodeKind::TileSt: {
                const auto& t = g_.nodeAs<TileStNode>(ch);
                std::ostringstream l;
                l << "// TileSt: " << ident(g_.node(t.onchip).name())
                  << " -> LMem (" << inst_.val(t.par)
                  << " elems/cycle)";
                line(depth, l.str());
                line(depth,
                     "LMemCommandStream.makeKernelOutput(\"" +
                         ident(g_.node(t.offchip).name()) +
                         "_cmd\", ...);");
                break;
              }
              case NodeKind::Pipe:
              case NodeKind::Sequential:
              case NodeKind::ParallelCtrl:
              case NodeKind::MetaPipe:
                emitCtrl(ch, depth + 1);
                break;
              default:
                emitPrim(ch, depth);
                break;
            }
        }
    }

    const Inst& inst_;
    const Graph& g_;
    std::ostringstream os_;
};

} // namespace

std::string
emitMaxj(const Inst& inst)
{
    DHDL_OBS_SPAN("codegen", "emit-maxj");
    return MaxjEmitter(inst).kernel();
}

std::string
emitMaxjManager(const Inst& inst)
{
    DHDL_OBS_SPAN("codegen", "emit-maxj-manager");
    return MaxjEmitter(inst).manager();
}

} // namespace dhdl::codegen

#include "dse/pareto.hh"

#include <algorithm>

namespace dhdl::dse {

std::vector<size_t>
paretoFront(size_t n, const std::function<double(size_t)>& x,
            const std::function<double(size_t)>& y)
{
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (x(a) != x(b))
            return x(a) < x(b);
        return y(a) < y(b);
    });

    std::vector<size_t> front;
    double best_y = 1e300;
    for (size_t i : order) {
        if (y(i) < best_y) {
            front.push_back(i);
            best_y = y(i);
        }
    }
    return front;
}

} // namespace dhdl::dse

#include "dse/pareto.hh"

#include <algorithm>

namespace dhdl::dse {

std::vector<size_t>
paretoFront(size_t n, const std::function<double(size_t)>& x,
            const std::function<double(size_t)>& y)
{
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (x(a) != x(b))
            return x(a) < x(b);
        if (y(a) != y(b))
            return y(a) < y(b);
        return a < b;
    });

    std::vector<size_t> front;
    double best_y = 1e300;
    for (size_t i : order) {
        if (y(i) < best_y) {
            front.push_back(i);
            best_y = y(i);
        }
    }
    return front;
}

bool
ParetoFront::dominated(double x, double y) const
{
    // Entries run x strictly ascending / y strictly descending, so
    // among entries with e.x <= x the *last* has the minimum y; it
    // dominates (x, y) iff any entry does. Ties count as dominated.
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), x,
        [](double v, const Entry& e) { return v < e.x; });
    if (it == entries_.begin())
        return false;
    return std::prev(it)->y <= y;
}

bool
ParetoFront::insert(size_t index, double x, double y)
{
    // Position of the first entry with e.x >= x.
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), x,
        [](const Entry& e, double v) { return e.x < v; });

    // Dominance by the predecessor (strictly smaller x): its y is the
    // minimum over all entries left of `it`.
    if (it != entries_.begin() && std::prev(it)->y <= y)
        return false;
    // Dominance by an equal-x entry: smaller y wins; an exact (x, y)
    // duplicate keeps the lowest index (the canonical batch tie rule).
    if (it != entries_.end() && it->x == x &&
        (it->y < y || (it->y == y && it->index < index)))
        return false;

    // The new point enters; evict the contiguous run it dominates
    // (same or larger x, same or larger y — including an exact
    // duplicate with a higher index).
    auto last = it;
    while (last != entries_.end() && last->y >= y)
        ++last;
    it = entries_.erase(it, last);
    entries_.insert(it, Entry{index, x, y});
    return true;
}

std::vector<size_t>
ParetoFront::indices() const
{
    std::vector<size_t> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_)
        out.push_back(e.index);
    return out;
}

} // namespace dhdl::dse

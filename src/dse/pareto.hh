/**
 * @file
 * Pareto-frontier extraction. The paper reports Pareto-optimal
 * designs "along the dimensions of execution time and ALM
 * utilization" (Section V-C1); both objectives are minimized.
 */

#ifndef DHDL_DSE_PARETO_HH
#define DHDL_DSE_PARETO_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace dhdl::dse {

/**
 * Indices of the Pareto-minimal points under objectives (x, y).
 * A point is Pareto-optimal when no other point is <= in both
 * objectives and < in at least one. Returned sorted by x ascending.
 */
std::vector<size_t>
paretoFront(size_t n, const std::function<double(size_t)>& x,
            const std::function<double(size_t)>& y);

} // namespace dhdl::dse

#endif // DHDL_DSE_PARETO_HH

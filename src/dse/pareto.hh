/**
 * @file
 * Pareto-frontier extraction and incremental maintenance. The paper
 * reports Pareto-optimal designs "along the dimensions of execution
 * time and ALM utilization" (Section V-C1); both objectives are
 * minimized.
 *
 * Two forms share one canonical dominance rule:
 *
 *  - paretoFront(): batch extraction over a whole point set;
 *  - ParetoFront: an incremental front that absorbs points one at a
 *    time, used by the round-based search driver so per-round updates
 *    never rescan history.
 *
 * The canonical rule breaks exact (x, y) ties by lowest index, which
 * makes the front a pure function of the point *set*: inserting the
 * same points in any order yields the identical front that a batch
 * rebuild over the full set yields (pinned by a property test).
 */

#ifndef DHDL_DSE_PARETO_HH
#define DHDL_DSE_PARETO_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace dhdl::dse {

/**
 * Indices of the Pareto-minimal points under objectives (x, y).
 * A point is Pareto-optimal when no other point is <= in both
 * objectives and < in at least one; exact (x, y) duplicates keep
 * only the lowest index. Returned sorted by x ascending.
 */
std::vector<size_t>
paretoFront(size_t n, const std::function<double(size_t)>& x,
            const std::function<double(size_t)>& y);

/**
 * Incrementally maintained Pareto front (both objectives minimized).
 *
 * Entries are kept sorted by x strictly ascending / y strictly
 * descending, so membership and insertion are O(log n) plus the
 * number of entries the new point evicts. The tie rule matches
 * paretoFront(): a point with the same (x, y) as an existing entry
 * enters only when its index is lower, so the final front is
 * insertion-order independent.
 */
class ParetoFront
{
  public:
    struct Entry {
        size_t index = 0;
        double x = 0;
        double y = 0;
    };

    /**
     * Offer a point to the front. Returns true when the point enters
     * (possibly evicting dominated entries); false when an existing
     * entry dominates it under the canonical rule.
     */
    bool insert(size_t index, double x, double y);

    /** Would (x, y) be rejected by the current front? Ties count as
     *  dominated (an equal entry keeps the front unchanged). */
    bool dominated(double x, double y) const;

    /** Entries sorted by x ascending (y strictly descending). */
    const std::vector<Entry>& entries() const { return entries_; }

    /** Point indices of the front, sorted by x ascending — the same
     *  vector a canonical batch rebuild would produce. */
    std::vector<size_t> indices() const;

    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }

  private:
    std::vector<Entry> entries_;
};

} // namespace dhdl::dse

#endif // DHDL_DSE_PARETO_HH

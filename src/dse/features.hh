/**
 * @file
 * Deterministic surrogate-search features of a candidate design
 * point. The surrogate strategy must score *un-evaluated* bindings,
 * so every feature here is computable from the binding, the legal
 * parameter space and the compiled (binding-invariant) DesignPlan —
 * no instantiation, no estimator call.
 *
 * Feature schema v1, in order (P = parameter count):
 *
 *   [0 .. P)   log2(1 + value_p)            per parameter, in order
 *   [P]        log2(1 + prod of values)     overall scale
 *   [P + 1]    log2(1 + local memory bits)  ParamSpace::localMemBits
 *   [P + 2]    control-template slot count  (constant per design)
 *   [P + 3]    memory-template slot count   (constant per design)
 *   [P + 4]    transfer-template slot count (constant per design)
 *   [P + 5]    other-template slot count    (constant per design)
 *
 * The trailing structural counts are constant across one design's
 * pool; ml::MinMaxScaler maps constant columns to 0, so they are
 * harmless within a run and make a persisted model refuse (via the
 * scaler bounds) to silently transfer across structurally different
 * designs with the same parameter count.
 */

#ifndef DHDL_DSE_FEATURES_HH
#define DHDL_DSE_FEATURES_HH

#include <vector>

#include "analysis/plan.hh"
#include "dse/space.hh"

namespace dhdl::dse {

/** Version tag of the feature layout above (bump on change). */
inline constexpr int kFeatureSchemaVersion = 1;

/** Compiled-once extractor of surrogate features for one design. */
class FeatureExtractor
{
  public:
    /**
     * `plan` may be null (a structurally broken graph): the slot
     * counts are then zero and the parameter features still work.
     * `space` must outlive the extractor.
     */
    FeatureExtractor(const ParamSpace& space, const DesignPlan* plan);

    /** Length of the feature vector (nparams + 6). */
    size_t count() const { return nparams_ + 6; }

    /** Write the count() features of `b` into out[0..count()). */
    void featuresInto(const ParamBinding& b, double* out) const;

    /** Allocating convenience form of featuresInto(). */
    std::vector<double> features(const ParamBinding& b) const;

  private:
    const ParamSpace& space_;
    size_t nparams_ = 0;
    double slotCounts_[4] = {0, 0, 0, 0};
};

} // namespace dhdl::dse

#endif // DHDL_DSE_FEATURES_HH

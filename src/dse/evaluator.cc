#include "dse/evaluator.hh"

#include <chrono>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dhdl::dse {

std::string
renderBinding(const Graph& g, const ParamBinding& b)
{
    std::ostringstream os;
    for (size_t i = 0; i < b.values.size(); ++i) {
        if (i)
            os << " ";
        if (i < g.params().size())
            os << g.params()[ParamId(i)].name << "=";
        os << b.values[i];
    }
    return os.str();
}

std::shared_ptr<const DesignPlan>
Evaluator::tryCompile(const Graph& g) noexcept
{
    try {
        return std::make_shared<const DesignPlan>(g);
    } catch (...) {
        return nullptr;
    }
}

Evaluator::Evaluator(const est::AreaEstimator& area,
                     const est::RuntimeEstimator& runtime,
                     const Graph& g)
    : Evaluator(area, runtime, g, tryCompile(g))
{
}

Evaluator::Evaluator(const est::AreaEstimator& area,
                     const est::RuntimeEstimator& runtime,
                     const Graph& g,
                     std::shared_ptr<const DesignPlan> plan)
    : area_(area), runtime_(runtime), g_(&g), plan_(std::move(plan))
{
}

void
Evaluator::run(DesignPoint& p, size_t idx, const Hook* hook,
               const char*& stage)
{
    using Clock = std::chrono::steady_clock;
    auto secs = [](Clock::time_point a, Clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };

    if (hook && *hook) {
        stage = "pre-evaluate";
        (*hook)(p.binding, idx);
    }

    stage = "instantiate";
    const auto t0 = Clock::now();
    if (plan_) {
        if (inst_)
            inst_->rebind(p.binding);
        else
            inst_.emplace(*plan_, p.binding);
    } else {
        // The graph failed to compile: reproduce the error per point
        // so it lands on each point's diagnostic, as one-off
        // instantiation always did.
        inst_.emplace(*g_, p.binding);
    }

    stage = "area";
    const auto t1 = Clock::now();
    p.area = area_.estimate(*inst_, ws_);

    stage = "runtime";
    const auto t2 = Clock::now();
    p.cycles = runtime_.estimate(*inst_).cycles;

    stage = "validate";
    const auto t3 = Clock::now();
    p.valid = p.area.fits(area_.device());
    p.evaluated = true;
    const auto t4 = Clock::now();

    times_.instantiate += secs(t0, t1);
    times_.area += secs(t1, t2);
    times_.runtime += secs(t2, t3);
    times_.validate += secs(t3, t4);
    times_.points += 1;

    // Tracing rides the clock reads StageTimes already pays for: one
    // complete span per stage, tagged with the point index, plus the
    // whole-point latency histogram. Purely additive — no effect on
    // p, so golden outputs are identical with tracing on or off.
    if (obs::enabled()) {
        static const obs::Histogram pointLatency(
            "dse.eval.point.us",
            {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
             16384});
        const uint64_t u0 = obs::toMicros(t0);
        const uint64_t u1 = obs::toMicros(t1);
        const uint64_t u2 = obs::toMicros(t2);
        const uint64_t u3 = obs::toMicros(t3);
        const uint64_t u4 = obs::toMicros(t4);
        const int64_t i = int64_t(idx);
        obs::recordSpan("dse", "instantiate", u0, u1 - u0, i);
        obs::recordSpan("dse", "area", u1, u2 - u1, i);
        obs::recordSpan("dse", "runtime", u2, u3 - u2, i);
        obs::recordSpan("dse", "validate", u3, u4 - u3, i);
        pointLatency.observe(u4 - u0);
    }
}

DesignPoint
Evaluator::evaluate(ParamBinding b)
{
    DesignPoint p;
    p.binding = std::move(b);
    const char* stage = "instantiate";
    run(p, 0, nullptr, stage);
    return p;
}

Status
Evaluator::evaluatePoint(DesignPoint& p, size_t idx, const Hook* hook)
{
    const char* stage = "instantiate";
    try {
        run(p, idx, hook, stage);
        return Status();
    } catch (...) {
        Diag d = diagFromCurrentException(stage);
        d.pointIndex = int64_t(idx);
        d.context = renderBinding(*g_, p.binding);
        d.worker = obs::threadName();
        p.evaluated = true;
        p.failed = true;
        p.valid = false;
        p.failCode = d.code;
        p.failStage = stage;
        p.failReason = d.message;
        return Status::error(std::move(d));
    }
}

void
Evaluator::failPoint(DesignPoint& p, size_t idx, const char* stage,
                     DiagSink& sink)
{
    Diag d = diagFromCurrentException(stage);
    d.pointIndex = int64_t(idx);
    d.context = renderBinding(*g_, p.binding);
    d.worker = obs::threadName();
    p.evaluated = true;
    p.failed = true;
    p.valid = false;
    p.failCode = d.code;
    p.failStage = stage;
    p.failReason = d.message;
    sink.report(std::move(d));
}

bool
Evaluator::ensureBatchPlan()
{
    if (!batchPlanTried_) {
        batchPlanTried_ = true;
        if (plan_)
            batchPlan_ = area_.makeBatchPlan(*plan_);
    }
    return batchPlan_.ok();
}

void
Evaluator::evaluateBatch(std::vector<DesignPoint>& points,
                         const size_t* idxs, size_t n, const Hook* hook,
                         DiagSink& sink)
{
    if (n == 0)
        return;

    // A null plan (broken graph) or an uncharacterized template class
    // must surface per point with the scalar path's exact diagnostics,
    // so those designs never enter the batch kernels at all.
    if (!ensureBatchPlan()) {
        for (size_t k = 0; k < n; ++k) {
            Status s = evaluatePoint(points[idxs[k]], idxs[k], hook);
            if (!s.ok())
                sink.report(s.diag());
        }
        return;
    }

    using Clock = std::chrono::steady_clock;
    auto secs = [](Clock::time_point a, Clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };

    // Stage 1 — hook + instantiate: rebind one pool row per point.
    // Failing points are marked and excluded; survivors pack densely
    // into rows [0, live), remembering their point index.
    const auto t0 = Clock::now();
    liveIdx_.clear();
    for (size_t k = 0; k < n; ++k) {
        const size_t idx = idxs[k];
        DesignPoint& p = points[idx];
        const char* stage = "instantiate";
        try {
            if (hook && *hook) {
                stage = "pre-evaluate";
                (*hook)(p.binding, idx);
            }
            stage = "instantiate";
            pool_.assign(liveIdx_.size(), *plan_, p.binding);
            liveIdx_.push_back(idx);
        } catch (...) {
            failPoint(p, idx, stage, sink);
        }
    }
    const size_t live = liveIdx_.size();

    // Stage 2 — area: the fused slot-outer kernel over the whole
    // batch. The kernel is straight-line arithmetic; anything it
    // could throw (a broken plan invariant) is re-run through the
    // scalar pipeline so each point reports it the scalar way. The
    // hook already ran, so the fallback skips it.
    const auto t1 = Clock::now();
    try {
        areaOut_.resize(live);
        area_.estimateBatch(batchPlan_, pool_, live, bws_,
                            areaOut_.data());
    } catch (...) {
        for (size_t r = 0; r < live; ++r) {
            Status s =
                evaluatePoint(points[liveIdx_[r]], liveIdx_[r], nullptr);
            if (!s.ok())
                sink.report(s.diag());
        }
        return;
    }
    for (size_t r = 0; r < live; ++r)
        points[liveIdx_[r]].area = areaOut_[r];

    // Stage 3 — runtime: the cycle model recurses over the controller
    // hierarchy, so points run one at a time inside the batch clock;
    // a throwing point fails exactly like the scalar path (keeping
    // the area estimate it already earned) and drops from validate.
    const auto t2 = Clock::now();
    rowFailed_.assign(live, 0);
    for (size_t r = 0; r < live; ++r) {
        DesignPoint& p = points[liveIdx_[r]];
        try {
            p.cycles = runtime_.estimate(pool_[r]).cycles;
        } catch (...) {
            failPoint(p, liveIdx_[r], "runtime", sink);
            rowFailed_[r] = 1;
        }
    }

    // Stage 4 — validate: pure comparisons across the batch.
    const auto t3 = Clock::now();
    uint64_t completed = 0;
    for (size_t r = 0; r < live; ++r) {
        if (rowFailed_[r])
            continue;
        DesignPoint& p = points[liveIdx_[r]];
        p.valid = p.area.fits(area_.device());
        p.evaluated = true;
        ++completed;
    }
    const auto t4 = Clock::now();

    times_.instantiate += secs(t0, t1);
    times_.area += secs(t1, t2);
    times_.runtime += secs(t2, t3);
    times_.validate += secs(t3, t4);
    times_.points += completed;

    // One span per stage per batch (tagged with the batch's first
    // point) instead of per point: the trace stays readable at
    // batched throughput and the clock reads amortize over the batch.
    if (obs::enabled()) {
        static const obs::Histogram batchLatency(
            "dse.eval.batch.us",
            {4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
             65536});
        const uint64_t u0 = obs::toMicros(t0);
        const uint64_t u1 = obs::toMicros(t1);
        const uint64_t u2 = obs::toMicros(t2);
        const uint64_t u3 = obs::toMicros(t3);
        const uint64_t u4 = obs::toMicros(t4);
        const int64_t i = int64_t(idxs[0]);
        obs::recordSpan("dse", "instantiate", u0, u1 - u0, i);
        obs::recordSpan("dse", "area", u1, u2 - u1, i);
        obs::recordSpan("dse", "runtime", u2, u3 - u2, i);
        obs::recordSpan("dse", "validate", u3, u4 - u3, i);
        batchLatency.observe(u4 - u0);
    }
}

} // namespace dhdl::dse

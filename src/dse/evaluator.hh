/**
 * @file
 * Staged design-point evaluation. The Evaluator owns everything one
 * evaluating thread needs to score bindings of a single graph:
 *
 *  - the shared, compile-once DesignPlan (binding-invariant analysis);
 *  - a reusable Inst overlay, rebound per point without reallocation;
 *  - the estimator scratch workspace (template list, feature vector).
 *
 * Evaluation runs as a fixed pipeline — pre-evaluate hook →
 * instantiate → area → runtime → validate — with a wall-clock
 * counter per stage, surfaced by `dhdlc explore --profile`. The
 * guarded entry point converts any stage exception into a structured
 * diagnostic naming the stage, exactly as the explorer's isolation
 * boundary always has.
 *
 * When plan compilation itself fails (a structurally broken graph),
 * the Evaluator keeps a null plan and falls back to one-off
 * instantiation per point, so the error is reported per point inside
 * the isolation boundary instead of aborting the sweep.
 */

#ifndef DHDL_DSE_EVALUATOR_HH
#define DHDL_DSE_EVALUATOR_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "analysis/instance.hh"
#include "core/diag.hh"
#include "estimate/area_estimator.hh"
#include "estimate/runtime_estimator.hh"

namespace dhdl::dse {

/** One evaluated design point. */
struct DesignPoint {
    ParamBinding binding;
    est::AreaEstimate area;
    double cycles = 0;
    bool valid = false; //!< Fits every device resource capacity.
    /** The point went through evaluation (false = budget-skipped). */
    bool evaluated = false;
    /** Search round that evaluated the point (-1 = unknown, e.g.
     *  restored from a strategy-less checkpoint). Serialized only by
     *  non-random strategies, so historical checkpoints stay
     *  byte-identical. */
    int32_t round = -1;
    /** Evaluation threw; failCode/failStage/failReason say why. */
    bool failed = false;
    DiagCode failCode = DiagCode::Ok;
    /** Pipeline stage that threw ("area", ...); empty when !failed.
     *  Persisted in checkpoints so a restored failure re-surfaces
     *  the identical diagnostic a live run would have produced. */
    std::string failStage;
    std::string failReason;
};

/** Render a binding as "name=value ..." for diagnostic context. */
std::string renderBinding(const Graph& g, const ParamBinding& b);

/** Accumulated wall-clock per evaluation stage, in seconds. */
struct StageTimes {
    double instantiate = 0;
    double area = 0;
    double runtime = 0;
    double validate = 0;
    uint64_t points = 0; //!< Points that completed all stages.

    double
    total() const
    {
        return instantiate + area + runtime + validate;
    }

    StageTimes&
    operator+=(const StageTimes& o)
    {
        instantiate += o.instantiate;
        area += o.area;
        runtime += o.runtime;
        validate += o.validate;
        points += o.points;
        return *this;
    }
};

/**
 * Per-thread staged evaluation pipeline over one graph. Not
 * thread-safe: parallel sweeps construct one Evaluator per worker,
 * all sharing the same compiled plan.
 */
class Evaluator
{
  public:
    using Hook = std::function<void(const ParamBinding&, size_t)>;

    /** Compile the graph's plan inline (null on a broken graph). */
    Evaluator(const est::AreaEstimator& area,
              const est::RuntimeEstimator& runtime, const Graph& g);

    /** Share a pre-compiled plan (may be null: per-point fallback). */
    Evaluator(const est::AreaEstimator& area,
              const est::RuntimeEstimator& runtime, const Graph& g,
              std::shared_ptr<const DesignPlan> plan);

    /** Compile a graph's plan; null (never throws) on failure. */
    static std::shared_ptr<const DesignPlan>
    tryCompile(const Graph& g) noexcept;

    /** The shared plan; null when the graph failed to compile. */
    const std::shared_ptr<const DesignPlan>&
    plan() const
    {
        return plan_;
    }

    /** Evaluate one binding; throws on a bad point. */
    DesignPoint evaluate(ParamBinding b);

    /**
     * Evaluate one point inside the isolation boundary: never
     * throws; on failure marks the point and returns the diagnostic
     * (stage-tagged, with the binding as context). `hook` (may be
     * null) runs before instantiation; `idx` is the point index
     * passed to the hook and recorded on diagnostics.
     */
    Status evaluatePoint(DesignPoint& p, size_t idx,
                         const Hook* hook = nullptr);

    /**
     * Evaluate the n points points[idxs[0..n)] as one batch:
     * structure-of-arrays instantiation against the shared plan, the
     * batched area kernel, then per-point runtime and a batched
     * validate. Every per-point value and every failure diagnostic is
     * bit-identical to n evaluatePoint() calls — batching reorders
     * work across points, never within a point's arithmetic. Failing
     * points (hook, instantiate or runtime) are marked exactly as
     * evaluatePoint() marks them, reported to `sink`, and drop out of
     * the remaining stages; the rest of the batch proceeds. Falls
     * back to the scalar path when the plan is null or has an
     * uncharacterized template class, so those failures keep their
     * scalar per-point diagnostics.
     */
    void evaluateBatch(std::vector<DesignPoint>& points,
                       const size_t* idxs, size_t n, const Hook* hook,
                       DiagSink& sink);

    /** Per-stage wall-clock accumulated by this evaluator. */
    const StageTimes& times() const { return times_; }

  private:
    /** The staged pipeline; throws, leaving `stage` at the culprit. */
    void run(DesignPoint& p, size_t idx, const Hook* hook,
             const char*& stage);

    /** Mark `p` failed from the in-flight exception, mirroring the
     *  evaluatePoint() catch block, and report the diagnostic. */
    void failPoint(DesignPoint& p, size_t idx, const char* stage,
                   DiagSink& sink);

    /** Build the batched area plan on first use; false = fall back
     *  to the scalar path (null or uncharacterizable plan). */
    bool ensureBatchPlan();

    const est::AreaEstimator& area_;
    const est::RuntimeEstimator& runtime_;
    const Graph* g_;
    std::shared_ptr<const DesignPlan> plan_;
    std::optional<Inst> inst_; //!< Reused across points.
    est::AreaWorkspace ws_;
    StageTimes times_;

    // Batched-path state, all reused across batches.
    InstPool pool_;            //!< Rebind-reusing instance rows.
    est::AreaBatchPlan batchPlan_;
    bool batchPlanTried_ = false;
    est::AreaBatchWorkspace bws_;
    std::vector<est::AreaEstimate> areaOut_;
    std::vector<size_t> liveIdx_;  //!< Point index per pool row.
    std::vector<char> rowFailed_;  //!< Runtime-stage failures.
};

} // namespace dhdl::dse

#endif // DHDL_DSE_EVALUATOR_HH

/**
 * @file
 * The design space explorer (Steps 2-4 of Figure 1): randomly sample
 * the legal parameter space, estimate area and runtime for each
 * point with the calibrated estimators, mark points that exceed any
 * device capacity as invalid, and extract the Pareto frontier over
 * (execution cycles, ALM usage).
 *
 * Robustness model: a paper-scale sweep evaluates up to 75,000
 * points, so a single bad point must never abort the run. Every
 * point is evaluated inside an isolation boundary — an exception
 * from instantiation or either estimator is converted into a
 * structured diagnostic (core/diag.hh) and recorded on the point
 * itself; exploration continues. The explorer additionally supports:
 *
 *  - wall-clock and evaluation-count budgets with graceful early
 *    termination (un-evaluated points are reported, not silently
 *    dropped);
 *  - periodic checkpointing of completed points to a CSV file, and
 *    resume-from-checkpoint for interrupted sweeps;
 *  - parallel evaluation over cpu::ThreadPool with deterministic
 *    output: without a time budget, results are identical for any
 *    thread count (points are written to pre-assigned slots and
 *    diagnostics are sorted by point index).
 */

#ifndef DHDL_DSE_EXPLORER_HH
#define DHDL_DSE_EXPLORER_HH

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/diag.hh"
#include "dse/evaluator.hh"
#include "dse/pareto.hh"
#include "dse/space.hh"

namespace dhdl::dse {

/** Selection of the round-based search strategy (dse/strategy.hh). */
enum class StrategyKind : uint8_t {
    /** One round proposing the whole pool in sample order — exactly
     *  the historical sample-everything-then-evaluate sweep. */
    Random,
    /** Surrogate-guided active search: train ml models on evaluated
     *  points between rounds, rank the remaining pool by predicted
     *  Pareto-dominance distance, spend the budget on the top slice
     *  with an ε-greedy floor and geometrically growing rounds. */
    Surrogate,
};

/** Stable CLI/checkpoint name of a strategy ("random", ...). */
const char* strategyName(StrategyKind k);

/** Knobs of the surrogate strategy (ignored by Random). */
struct SurrogateConfig {
    /** Random seed points evaluated in round 0 (the first training
     *  set); also the base of the geometric round-size schedule.
     *  0 = auto: four points per design parameter, clamped to
     *  [8, 16] — small spaces get a cheap cold start, larger ones
     *  enough rows for a stable first fit. */
    int initialPoints = 0;
    /** ε-greedy floor: fraction of every guided round spent on
     *  uniform-random picks so the model never starves of coverage. */
    double epsilon = 0.1;
    /** Successive round-size growth factor: round r proposes about
     *  initialPoints * roundGrowth^r points (successive-halving in
     *  reverse — cheap rounds while the model is weak, bigger
     *  commitments as it sharpens). Slow growth buys more refits
     *  per evaluation, which measures strictly better on the
     *  evals-to-front metric; the extra propose() overhead is model
     *  compute, not evaluation budget. */
    double roundGrowth = 1.25;
    /** Hard cap on guided rounds; 0 = until pool/budget exhausted. */
    int maxRounds = 0;
    /** RPROP epochs per model refit between rounds. */
    int trainEpochs = 200;
    /** Train Mlps ({nf, 8, 1}) once enough rows exist; a ridge
     *  LinearModel handles the small-sample rounds either way. */
    bool useMlp = true;
    /** Warm-start from a saved surrogate bundle (ml/serialize). */
    std::string loadModelPath;
    /** Persist the final trained bundle for later runs. */
    std::string saveModelPath;
};

struct RoundStats;

/** Exploration configuration. */
struct ExploreConfig {
    /** Points sampled from the legal space (paper: up to 75,000). */
    int maxPoints = 75000;
    uint64_t seed = 0xD5Eull;

    /** Worker threads for point evaluation; <=1 evaluates inline. */
    int threads = 1;

    /**
     * Points handed to each Evaluator::evaluateBatch call. Batching
     * never changes a result bit — it only restructures the work into
     * structure-of-arrays kernels — so the default is purely a
     * throughput tuning knob. 0 selects the legacy point-at-a-time
     * path (the reference the batch-equivalence suite compares
     * against). Batches nest inside checkpoint slices and per-worker
     * ranges, so checkpoint cadence and sharding are unaffected.
     */
    int batchSize = 64;

    /** Wall-clock budget in seconds; 0 = unlimited. */
    double timeBudgetSeconds = 0;

    /**
     * Maximum points to evaluate in this call; 0 = unlimited. The
     * remainder is left un-evaluated (and picked up by a later
     * resume when checkpointing is on).
     */
    int64_t evalBudget = 0;

    /** Non-empty enables checkpointing to this file. */
    std::string checkpointPath;

    /** Evaluations between checkpoint writes. */
    int64_t checkpointEvery = 1000;

    /**
     * Deterministic shard assignment: this call evaluates only the
     * sample-set indices congruent to shardIndex modulo shardCount.
     * Every shard of the same (design, seed, maxPoints) derives the
     * identical global sample set, so any assignment of shards to
     * processes reproduces the same points and
     * dse::mergeShards() reassembles the exact unsharded result.
     * The default 0/1 is the unsharded run.
     */
    int shardIndex = 0;
    int shardCount = 1;

    /**
     * Restore previously evaluated points from checkpointPath before
     * evaluating; a missing or mismatched file (different seed,
     * sample count or parameter count) is reported as a warning and
     * ignored.
     */
    bool resume = false;

    /**
     * Test/instrumentation seam, called with (binding, point index)
     * inside the isolation boundary before each evaluation. Used by
     * the fault-injection tests; an exception thrown here fails only
     * that point.
     */
    std::function<void(const ParamBinding&, size_t)> preEvaluate;

    /** Round-based search strategy; Random reproduces the historical
     *  one-shot sweep bit-identically. */
    StrategyKind strategy = StrategyKind::Random;
    SurrogateConfig surrogate;

    /**
     * Precompiled DesignPlan to share (the serving layer's
     * content-addressed plan cache hands one out per cached design).
     * When set, the driver skips plan compilation entirely — no
     * plan-compile span is recorded and stats.planSeconds stays 0 —
     * and every worker evaluator binds against this plan. Must have
     * been compiled from a graph whose canonical IR equals this run's
     * graph; the plan cache keys by exactly that hash.
     */
    std::shared_ptr<const DesignPlan> plan;

    /**
     * Streaming hook, called on the exploring thread after each
     * search round completes (results folded in, front updated) with
     * the round's stats, the incremental front so far, and the full
     * point vector. The serving layer forwards these as incremental
     * Pareto updates to clients. Never called concurrently.
     */
    std::function<void(const RoundStats&, const ParetoFront&,
                       const std::vector<DesignPoint>&)>
        onRound;

    /**
     * Cooperative cancel: when set and it becomes true, the run stops
     * at the next batch boundary exactly like an expired wall clock —
     * remaining points are skipped (and later resumable), a Cancelled
     * warning Diag is reported, and stats.cancelled is set.
     */
    std::shared_ptr<const std::atomic<bool>> cancel;
};

/** Per-round accounting of the search driver. */
struct RoundStats {
    int round = 0;
    size_t poolBefore = 0; //!< Un-evaluated candidates before round.
    size_t proposed = 0;   //!< Points the strategy proposed.
    size_t evaluated = 0;  //!< Points actually evaluated (budgets).
    size_t frontSize = 0;  //!< Incremental Pareto front after round.
    double proposeSeconds = 0; //!< propose() incl. train + rank.
    double trainSeconds = 0;   //!< Surrogate refit inside propose().
    double rankSeconds = 0;    //!< Pool scoring inside propose().
    double evalSeconds = 0;    //!< Evaluation slice loop.
    /** Indices evaluated this round, in evaluation order (the
     *  strategy's ranked proposal order). Lets quality benches
     *  measure evals-to-front at single-evaluation granularity
     *  instead of round granularity. */
    std::vector<size_t> evalOrder;
};

/** Aggregate counters for one explore() call. */
struct ExploreStats {
    /** Points asked of the sampler (cfg.maxPoints). When the legal
     *  space is smaller, total < requested — recorded so no sweep
     *  silently caps its sample set. */
    size_t requested = 0;
    size_t total = 0;     //!< Points sampled from the space.
    size_t evaluated = 0; //!< Points evaluated (incl. restored).
    size_t resumed = 0;   //!< Points restored from a checkpoint.
    size_t failed = 0;    //!< Points whose evaluation threw.
    size_t valid = 0;     //!< Points that fit the device.
    size_t skipped = 0;   //!< Points dropped by a budget.
    size_t notInShard = 0; //!< Points owned by other shards.
    size_t ckptTruncated = 0; //!< Torn-tail records dropped on resume.
    size_t ckptCorrupt = 0;   //!< Corrupt records skipped on resume.
    bool timeBudgetHit = false;
    bool evalBudgetHit = false;
    bool cancelled = false; //!< Stopped by ExploreConfig::cancel.
    double seconds = 0;   //!< Wall-clock of this explore() call.
    /** Wall-clock of the one-time DesignPlan compilation. */
    double planSeconds = 0;
    /** Per-stage evaluation wall-clock, summed over all workers. */
    StageTimes stages;
    /** One entry per search round, in order. */
    std::vector<RoundStats> rounds;
};

/** Exploration output: all evaluated points + the Pareto front. */
struct ExploreResult {
    std::vector<DesignPoint> points;
    /** Indices of Pareto-optimal valid points (cycles vs ALMs). */
    std::vector<size_t> pareto;
    /** Per-point failures and run-level warnings, by point index. */
    std::vector<Diag> diags;
    ExploreStats stats;

    /** The valid point with the fewest cycles; nullopt when none. */
    std::optional<size_t> bestIndex() const;

    /** Most frequent failure reasons, aggregated from diags. */
    std::vector<std::pair<std::string, size_t>>
    failureSummary(size_t top = 5) const;
};

/**
 * DSE driver bound to calibrated estimators. All point evaluation —
 * one-off or sweep — routes through the staged Evaluator pipeline;
 * explore() compiles the graph's DesignPlan once and shares it across
 * worker evaluators.
 */
class Explorer
{
  public:
    Explorer(const est::AreaEstimator& area,
             const est::RuntimeEstimator& runtime)
        : area_(area), runtime_(runtime) {}

    /** Evaluate a single binding; throws on a bad point. */
    DesignPoint evaluate(const Graph& g, ParamBinding b) const;

    /**
     * Evaluate a single binding inside the isolation boundary: never
     * throws, returns error status and marks the point failed when
     * evaluation raises.
     */
    Status evaluateGuarded(const Graph& g, DesignPoint& p) const;

    /** Sample and evaluate the design space of a graph. */
    ExploreResult explore(const Graph& g,
                          const ExploreConfig& cfg = {}) const;

  private:
    const est::AreaEstimator& area_;
    const est::RuntimeEstimator& runtime_;
};

/**
 * The deterministic global sample set explore() evaluates for this
 * configuration: exhaustively enumerated when the pruned space fits
 * in cfg.maxPoints, randomly sampled per cfg.seed otherwise. Shard
 * runs and shard merge derive the identical set from the identical
 * config — the foundation of merge ≡ unsharded byte-identity. A
 * sampling shortfall is reported on `sink` (when given) so explore()
 * and mergeShards() surface the identical warning.
 */
std::vector<ParamBinding> sampleGlobal(const ParamSpace& space,
                                       const ExploreConfig& cfg,
                                       DiagSink* sink = nullptr);

/**
 * Canonical diagnostic order (pointIndex, stage, message): results
 * are identical for any thread count and for merged shard runs.
 */
void sortDiags(std::vector<Diag>& diags);

/** Pareto front (cycles vs ALMs) over the valid points, by index. */
std::vector<size_t> paretoOf(const std::vector<DesignPoint>& points);

} // namespace dhdl::dse

#endif // DHDL_DSE_EXPLORER_HH

/**
 * @file
 * The design space explorer (Steps 2-4 of Figure 1): randomly sample
 * the legal parameter space, estimate area and runtime for each
 * point with the calibrated estimators, mark points that exceed any
 * device capacity as invalid, and extract the Pareto frontier over
 * (execution cycles, ALM usage).
 */

#ifndef DHDL_DSE_EXPLORER_HH
#define DHDL_DSE_EXPLORER_HH

#include "dse/pareto.hh"
#include "dse/space.hh"
#include "estimate/area_estimator.hh"
#include "estimate/runtime_estimator.hh"

namespace dhdl::dse {

/** One evaluated design point. */
struct DesignPoint {
    ParamBinding binding;
    est::AreaEstimate area;
    double cycles = 0;
    bool valid = false; //!< Fits every device resource capacity.
};

/** Exploration configuration. */
struct ExploreConfig {
    /** Points sampled from the legal space (paper: up to 75,000). */
    int maxPoints = 75000;
    uint64_t seed = 0xD5Eull;
};

/** Exploration output: all evaluated points + the Pareto front. */
struct ExploreResult {
    std::vector<DesignPoint> points;
    /** Indices of Pareto-optimal valid points (cycles vs ALMs). */
    std::vector<size_t> pareto;

    /** The valid point with the fewest cycles; SIZE_MAX when none. */
    size_t bestIndex() const;
};

/** DSE driver bound to calibrated estimators. */
class Explorer
{
  public:
    Explorer(const est::AreaEstimator& area,
             const est::RuntimeEstimator& runtime)
        : area_(area), runtime_(runtime) {}

    /** Evaluate a single binding. */
    DesignPoint evaluate(const Graph& g, ParamBinding b) const;

    /** Sample and evaluate the design space of a graph. */
    ExploreResult explore(const Graph& g,
                          const ExploreConfig& cfg = {}) const;

  private:
    const est::AreaEstimator& area_;
    const est::RuntimeEstimator& runtime_;
};

} // namespace dhdl::dse

#endif // DHDL_DSE_EXPLORER_HH

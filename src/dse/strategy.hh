/**
 * @file
 * Pluggable search strategies for the round-based exploration driver
 * (dse/driver.hh). A strategy decides *which* candidates of the
 * global sample set to spend evaluation budget on; the driver owns
 * everything else (evaluation, checkpointing, budgets, the
 * incremental Pareto front).
 *
 * Contract per round r:
 *
 *  - propose(r, pool, budget, front, out, rs) appends up to `budget`
 *    indices drawn from `pool` (the un-evaluated, in-shard candidate
 *    indices, ascending) to `out`. An empty proposal ends the search.
 *  - after evaluating the proposal, the driver calls
 *    observe(r, points, proposed) with every proposed index, so the
 *    strategy can learn from the new results.
 *
 * Strategies are deterministic: same config + same pool ⇒ same
 * proposals, which keeps checkpoint/resume and the golden suites
 * meaningful. RandomStrategy proposes the entire pool in sample
 * order in round 0 — the historical one-shot sweep, bit-identical.
 */

#ifndef DHDL_DSE_STRATEGY_HH
#define DHDL_DSE_STRATEGY_HH

#include <array>
#include <map>
#include <memory>

#include "dse/explorer.hh"
#include "dse/features.hh"
#include "dse/pareto.hh"
#include "ml/serialize.hh"

namespace dhdl::dse {

/** One search strategy instance, owned by a single driver run. */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /** Stable name ("random", "surrogate") for checkpoints and obs. */
    virtual const char* name() const = 0;

    /**
     * Append up to `budget` candidate indices from `pool` to `out`
     * for round `round`. `front` is the current incremental Pareto
     * front over everything evaluated so far. Strategy-internal
     * timing (model refit, pool ranking) is reported on `rs`.
     */
    virtual void propose(int round, const std::vector<size_t>& pool,
                         size_t budget, const ParetoFront& front,
                         std::vector<size_t>& out, RoundStats& rs) = 0;

    /**
     * Digest the round's results: `proposed` are the indices handed
     * back by propose(); points[i].evaluated says whether a budget
     * cut one short.
     */
    virtual void observe(int round,
                         const std::vector<DesignPoint>& points,
                         const std::vector<size_t>& proposed) = 0;

    /** End-of-run hook (e.g. persist the trained model); diagnostics
     *  go to `sink`. */
    virtual void finish(DiagSink& sink) { (void)sink; }
};

/** The historical sweep: everything, in sample order, in one round. */
class RandomStrategy final : public SearchStrategy
{
  public:
    const char* name() const override { return "random"; }

    void propose(int round, const std::vector<size_t>& pool,
                 size_t budget, const ParetoFront& front,
                 std::vector<size_t>& out, RoundStats& rs) override;

    void observe(int, const std::vector<DesignPoint>&,
                 const std::vector<size_t>&) override {}
};

/**
 * Surrogate-guided active search. Round 0 evaluates a random seed
 * slice; each later round refits one model per objective
 * (log2(1+alms), log2(1+cycles)) on every evaluated point, scores
 * the remaining pool by predicted dominance distance to the current
 * front, and proposes the best slice (plus an ε-greedy random floor)
 * at a geometrically growing round size.
 */
class SurrogateStrategy final : public SearchStrategy
{
  public:
    /**
     * `fx` extracts candidate features; `points` is the driver's
     * point array (bindings already populated), borrowed for feature
     * extraction during ranking. `space` must outlive the strategy
     * (it backs the parameter-neighborhood slice). `seed` drives the
     * ε-greedy picks.
     */
    SurrogateStrategy(const SurrogateConfig& cfg, uint64_t seed,
                      const ParamSpace& space, FeatureExtractor fx,
                      const std::vector<DesignPoint>& points);

    const char* name() const override { return "surrogate"; }

    void propose(int round, const std::vector<size_t>& pool,
                 size_t budget, const ParetoFront& front,
                 std::vector<size_t>& out, RoundStats& rs) override;

    void observe(int round, const std::vector<DesignPoint>& points,
                 const std::vector<size_t>& proposed) override;

    void finish(DiagSink& sink) override;

    /**
     * Warm-start from a saved bundle (ml::loadSurrogateBundle). A
     * damaged file or one whose feature arity does not match this
     * design degrades to the untrained state with a warning on
     * `sink`; the strategy still runs.
     */
    void loadModel(const std::string& path, DiagSink& sink);

    /** Rows currently in the training set (tests/bench). */
    size_t trainingRows() const { return trainX_.size(); }

    /** The current fitted bundle; empty scalers before first fit. */
    const ml::SurrogateBundle& bundle() const { return bundle_; }

  private:
    /** Refit scalers + models on the accumulated rows. */
    void train(RoundStats& rs);

    /** Predicted scaled (target-space) objectives of one binding;
     *  optionally also the L1 disagreement between the two model
     *  families (0 when only one is fitted). */
    void predictScaled(const ParamBinding& b, double out[2],
                       double* disagreement = nullptr);

    SurrogateConfig cfg_;
    const ParamSpace& space_;
    FeatureExtractor fx_;
    const std::vector<DesignPoint>& points_;
    /** Sampled binding -> index into points_, for neighbor lookups.
     *  std::map keeps iteration deterministic. */
    std::map<std::vector<int64_t>, size_t> bindingToIdx_;
    uint64_t seed_;
    ml::Rng rng_;
    ml::SurrogateBundle bundle_;
    /** Per-target Mlp committee (odd seed count); predictions take
     *  the median, which removes initialization-luck outliers. The
     *  first member is mirrored into bundle_ for persistence. */
    std::array<std::vector<ml::Mlp>, 2> committee_;
    bool fitted_ = false; //!< bundle_ holds usable models.
    bool dirty_ = false;  //!< new rows since the last fit.

    std::vector<std::vector<double>> trainX_;
    /** Per-row targets: [log2(1+alms), log2(1+cycles)]. */
    std::vector<std::vector<double>> trainY_;

    // Ranking scratch, reused across rounds.
    std::vector<double> feat_;
    std::vector<double> scaled_;
    ml::MlpWorkspace mlpWs_;
    std::vector<std::pair<double, size_t>> scores_;
    std::vector<std::array<double, 2>> preds_;

    /** How the two model families combine into one prediction;
     *  re-selected at every refit on a time-ordered holdout. */
    enum class Blend { Average, MlpOnly, LinearOnly };
    Blend blend_ = Blend::Average;
};

/**
 * Instantiate the strategy selected by `cfg`. For the surrogate this
 * compiles the feature extractor from (space, plan) and, when
 * cfg.surrogate.loadModelPath is set, warm-starts from the saved
 * bundle (a damaged or mismatched file degrades to an untrained
 * strategy with a warning on `sink`).
 */
std::unique_ptr<SearchStrategy>
makeStrategy(const ExploreConfig& cfg, const ParamSpace& space,
             const DesignPlan* plan,
             const std::vector<DesignPoint>& points, DiagSink& sink);

} // namespace dhdl::dse

#endif // DHDL_DSE_STRATEGY_HH

/**
 * @file
 * Shard supervisor: launches worker subprocesses (one per shard),
 * watches them, and retries the ones that die or hang.
 *
 * Failure model — each attempt of each task can end three ways:
 *
 *  - **exit 0**: success, task done;
 *  - **non-zero exit / killed by a signal** (including a crash
 *    injected by the fault harness): retried up to
 *    SupervisorConfig::maxRetries times with exponential backoff
 *    plus deterministic jitter;
 *  - **watchdog timeout**: the attempt has run longer than
 *    timeoutSeconds; the supervisor SIGKILLs the process group and
 *    retries like any other failure.
 *
 * A task that exhausts its retries is a *permanent* failure: the
 * supervisor records a ShardFailed warning Diag and keeps going —
 * the caller merges whatever shards completed (graceful
 * degradation; see dse::mergeShards). The supervisor itself never
 * throws for subprocess misbehaviour.
 *
 * Because every shard re-derives the same deterministic sample set
 * and checkpoints durably, a retried shard resumes from its own
 * checkpoint and loses no completed work — crash-restart loops make
 * forward progress as long as checkpointEvery points complete
 * between crashes.
 */

#ifndef DHDL_DSE_SUPERVISOR_HH
#define DHDL_DSE_SUPERVISOR_HH

#include <string>
#include <utility>
#include <vector>

#include "core/diag.hh"

namespace dhdl::dse {

/** One subprocess the supervisor owns (typically one shard). */
struct SupervisorTask {
    /** argv[0] is the executable (resolved via PATH when relative). */
    std::vector<std::string> argv;
    /** Extra environment entries set in the child (name, value). */
    std::vector<std::pair<std::string, std::string>> env;
    /** stdout+stderr are appended here when non-empty. */
    std::string logPath;
    /** Display name ("shard 2/4") used in diagnostics. */
    std::string label;
};

/** Retry/backoff/watchdog policy, shared by all tasks of one run. */
struct SupervisorConfig {
    /** Watchdog per attempt, seconds; 0 disables the timeout. */
    double timeoutSeconds = 0;
    /** Retries after the first attempt (total attempts = 1+retries). */
    int maxRetries = 2;
    /** First backoff delay; doubles per retry up to backoffMax. */
    double backoffBaseSeconds = 0.25;
    double backoffMaxSeconds = 30;
    /**
     * Seed for the deterministic jitter (hashMix of seed, task and
     * attempt) added to each backoff so retrying shards de-correlate
     * without making test runs flaky.
     */
    uint64_t jitterSeed = 0;
    /** Max concurrently running tasks; 0 = all at once. */
    int maxParallel = 0;
    /** waitpid poll cadence. */
    double pollIntervalSeconds = 0.02;
};

/** What happened to one task across all its attempts. */
struct TaskOutcome {
    bool succeeded = false;
    int attempts = 0;     //!< Attempts actually launched.
    int exitCode = -1;    //!< Last exit code; -1 if signalled/spawn-failed.
    int termSignal = 0;   //!< Signal that killed the last attempt, if any.
    bool timedOut = false; //!< Last failure was a watchdog kill.
    std::string detail;   //!< One-line human-readable summary.
};

/** Aggregate result of one supervised run. */
struct SupervisorResult {
    std::vector<TaskOutcome> tasks; //!< Indexed like the input tasks.
    /** ShardFailed warnings for tasks that exhausted their retries. */
    std::vector<Diag> diags;
    size_t retries = 0;  //!< Re-launches across all tasks.
    size_t timeouts = 0; //!< Watchdog kills across all tasks.

    bool allSucceeded() const;
    /** Indices of tasks that never succeeded. */
    std::vector<int> failedTasks() const;
};

/**
 * Deterministic backoff before retry `attempt` (0-based count of
 * prior failures) of task `task`: min(max, base * 2^attempt) plus up
 * to 25% jitter derived from hashMix(seed, task, attempt). Exposed
 * for the unit tests.
 */
double backoffSeconds(const SupervisorConfig& cfg, int task,
                      int attempt);

/**
 * Run every task to success or permanent failure. Tasks run
 * concurrently (bounded by maxParallel); the call returns when all
 * have settled. Throws FatalError only for caller errors (empty
 * argv); subprocess failure is data, not an exception.
 */
SupervisorResult runSupervised(const std::vector<SupervisorTask>& tasks,
                               const SupervisorConfig& cfg);

} // namespace dhdl::dse

#endif // DHDL_DSE_SUPERVISOR_HH

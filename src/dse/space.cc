#include "dse/space.hh"

namespace dhdl::dse {

namespace {

/**
 * Flat open-addressed set of seen binding hashes. The stored values
 * are themselves the output of a hashMix chain, so identity probing
 * distributes fine. Membership decisions are exactly
 * unordered_set<uint64_t>'s — insert if absent — without the
 * per-node allocation, which makes the sampling loop's dedup check
 * cache-resident during large sweeps.
 */
class SeenSet
{
  public:
    explicit SeenSet(size_t expected)
    {
        size_t cap = 16;
        while (cap < expected * 2)
            cap <<= 1;
        slots_.assign(cap, 0);
    }

    /** True when h was absent (and is now inserted). */
    bool
    insert(uint64_t h)
    {
        if (h == 0) {
            if (hasZero_)
                return false;
            hasZero_ = true;
            return true;
        }
        if ((count_ + 1) * 10 > slots_.size() * 7)
            grow();
        size_t i = size_t(h) & (slots_.size() - 1);
        while (slots_[i] != 0) {
            if (slots_[i] == h)
                return false;
            i = (i + 1) & (slots_.size() - 1);
        }
        slots_[i] = h;
        ++count_;
        return true;
    }

  private:
    void
    grow()
    {
        std::vector<uint64_t> old(slots_.size() * 2, 0);
        old.swap(slots_);
        for (uint64_t h : old) {
            if (h == 0)
                continue;
            size_t i = size_t(h) & (slots_.size() - 1);
            while (slots_[i] != 0)
                i = (i + 1) & (slots_.size() - 1);
            slots_[i] = h;
        }
    }

    std::vector<uint64_t> slots_;
    size_t count_ = 0;
    bool hasZero_ = false;
};

/**
 * Per-parameter value draw with the modulus strength-reduced: the
 * value-list length is invariant across every sampling attempt, so
 * `next() % size` is computed with a precomputed reciprocal (one
 * multiply-high) instead of a hardware divide. Exactness: with
 * m = floor((2^64-1)/d), q = floor(n*m / 2^64) never exceeds
 * floor(n/d) and undershoots it by at most 2, so after subtracting
 * q*d at most two corrective subtractions leave exactly n mod d.
 * Single-value parameters return index 0 without consuming a draw,
 * matching Rng::uniformInt(0, 0).
 */
class FastDraw
{
  public:
    explicit FastDraw(uint64_t d) : d_(d), m_(d > 1 ? ~0ull / d : 0) {}

    size_t
    index(ml::Rng& rng) const
    {
        if (d_ <= 1)
            return 0;
        const uint64_t n = rng.next();
        const uint64_t q =
            uint64_t((unsigned __int128)(n)*m_ >> 64);
        uint64_t r = n - q * d_;
        while (r >= d_)
            r -= d_;
        return size_t(r);
    }

  private:
    uint64_t d_, m_;
};

/** Max operand-stack depth evalCompiled supports; deeper programs
 *  (never seen in practice) fall back to the expression tree. */
constexpr size_t kCStackMax = 64;

/** Flatten an expression to postfix; returns the stack depth. */
size_t
flattenCExpr(const CExpr& e, auto& out)
{
    switch (e.kind()) {
      case CExpr::Kind::Const: {
        auto& i = out.emplace_back();
        i.kind = std::remove_reference_t<decltype(i)>::K::Const;
        i.value = e.value();
        return 1;
      }
      case CExpr::Kind::Param: {
        auto& i = out.emplace_back();
        i.kind = std::remove_reference_t<decltype(i)>::K::Param;
        i.param = e.param();
        return 1;
      }
      case CExpr::Kind::Arith: {
        size_t dl = flattenCExpr(e.lhs(), out);
        size_t dr = flattenCExpr(e.rhs(), out);
        auto& i = out.emplace_back();
        i.kind = std::remove_reference_t<decltype(i)>::K::Arith;
        i.op = e.op();
        return std::max(dl, dr + 1);
      }
    }
    return 1;
}

/** Apply a comparison operator; the final step of constraint eval. */
inline bool
applyCmp(CCmp cmp, int64_t l, int64_t r)
{
    switch (cmp) {
      case CCmp::Eq: return l == r;
      case CCmp::Ne: return l != r;
      case CCmp::Lt: return l < r;
      case CCmp::Le: return l <= r;
      case CCmp::Gt: return l > r;
      case CCmp::Ge: return l >= r;
    }
    return false;
}

} // namespace

ParamSpace::ParamSpace(const Graph& g) : g_(g)
{
    const auto& params = g.params();
    legal_.reserve(params.size());
    for (size_t i = 0; i < params.size(); ++i)
        legal_.push_back(params.legalValues(ParamId(i)));
    for (NodeId id = 0; id < NodeId(g.numNodes()); ++id) {
        const Node& n = g.node(id);
        if (n.kind() == NodeKind::Bram || n.kind() == NodeKind::Queue) {
            const auto& m = g.nodeAs<MemNode>(id);
            MemCheck mc;
            mc.typeBits = m.type.bits();
            mc.terms.reserve(m.dims.size());
            for (const Sym& d : m.dims)
                mc.terms.push_back(d.isParam()
                                       ? MemCheck::Term{d.param(),
                                                        d.offset()}
                                       : MemCheck::Term{kNoParam,
                                                        d.constant()});
            memChecks_.push_back(std::move(mc));
        }
    }
    constraints_.reserve(g.constraints.size());
    for (const Constraint& c : g.constraints) {
        CompiledConstraint cc;
        cc.cmp = c.cmp;
        size_t depth = flattenCExpr(c.lhs, cc.ops);
        depth = std::max(depth, 1 + flattenCExpr(c.rhs, cc.ops));
        if (depth > kCStackMax) {
            cc.ops.clear();
            cc.tree = &c;
        }
        // Recognize the dominant divisibility shapes (see Shape).
        using K = CInstr::K;
        using Shape = CompiledConstraint::Shape;
        const auto& ops = cc.ops;
        if (ops.size() == 4 && ops[0].kind == K::Param &&
            ops[1].kind == K::Param && ops[2].kind == K::Arith &&
            ops[2].op == CArith::Mod && ops[3].kind == K::Const) {
            cc.shape = Shape::PModP;
            cc.pa = ops[0].param;
            cc.pb = ops[1].param;
            cc.rhs = ops[3].value;
        } else if (ops.size() == 6 && ops[0].kind == K::Const &&
                   ops[1].kind == K::Param && ops[2].kind == K::Arith &&
                   ops[2].op == CArith::Div &&
                   ops[3].kind == K::Param && ops[4].kind == K::Arith &&
                   ops[4].op == CArith::Mod &&
                   ops[5].kind == K::Const) {
            cc.shape = Shape::CDivPModP;
            cc.ca = ops[0].value;
            cc.pa = ops[1].param;
            cc.pb = ops[3].param;
            cc.rhs = ops[5].value;
        }
        constraints_.push_back(std::move(cc));
    }
}

bool
ParamSpace::evalCompiled(const CompiledConstraint& c,
                         const ParamBinding& b) const
{
    if (c.tree != nullptr)
        return c.tree->eval(b);
    // Straight-line fast paths; each replicates the interpreter's
    // out-of-range, division-by-zero and INT64_MIN/-1 semantics.
    using Shape = CompiledConstraint::Shape;
    if (c.shape == Shape::PModP) {
        if (c.pa < 0 || size_t(c.pa) >= b.values.size() || c.pb < 0 ||
            size_t(c.pb) >= b.values.size())
            return false;
        const int64_t l = b.values[size_t(c.pa)];
        const int64_t r = b.values[size_t(c.pb)];
        if (r == 0 || (l == INT64_MIN && r == -1))
            return false;
        return applyCmp(c.cmp, l % r, c.rhs);
    }
    if (c.shape == Shape::CDivPModP) {
        if (c.pa < 0 || size_t(c.pa) >= b.values.size() || c.pb < 0 ||
            size_t(c.pb) >= b.values.size())
            return false;
        const int64_t d = b.values[size_t(c.pa)];
        if (d == 0 || (c.ca == INT64_MIN && d == -1))
            return false;
        const int64_t l = c.ca / d;
        const int64_t r = b.values[size_t(c.pb)];
        if (r == 0 || (l == INT64_MIN && r == -1))
            return false;
        return applyCmp(c.cmp, l % r, c.rhs);
    }
    int64_t stack[kCStackMax];
    size_t sp = 0;
    for (const CInstr& i : c.ops) {
        switch (i.kind) {
          case CInstr::K::Const:
            stack[sp++] = i.value;
            break;
          case CInstr::K::Param:
            if (i.param < 0 || size_t(i.param) >= b.values.size())
                return false;
            stack[sp++] = b.values[size_t(i.param)];
            break;
          case CInstr::K::Arith: {
            const int64_t r = stack[--sp];
            const int64_t l = stack[--sp];
            int64_t out = 0;
            switch (i.op) {
              case CArith::Add:
                if (__builtin_add_overflow(l, r, &out))
                    return false;
                break;
              case CArith::Sub:
                if (__builtin_sub_overflow(l, r, &out))
                    return false;
                break;
              case CArith::Mul:
                if (__builtin_mul_overflow(l, r, &out))
                    return false;
                break;
              case CArith::Div:
                if (r == 0 || (l == INT64_MIN && r == -1))
                    return false;
                out = l / r;
                break;
              case CArith::Mod:
                if (r == 0 || (l == INT64_MIN && r == -1))
                    return false;
                out = l % r;
                break;
            }
            stack[sp++] = out;
            break;
          }
        }
    }
    const int64_t r = stack[--sp];
    const int64_t l = stack[--sp];
    return applyCmp(c.cmp, l, r);
}

double
ParamSpace::sizeEstimate() const
{
    double n = 1;
    for (const auto& vs : legal_)
        n *= double(vs.size());
    return n;
}

ParamBinding
ParamSpace::randomBinding(ml::Rng& rng) const
{
    ParamBinding b;
    b.values.reserve(legal_.size());
    for (const auto& vs : legal_)
        b.values.push_back(
            vs[size_t(rng.uniformInt(0, int64_t(vs.size()) - 1))]);
    return b;
}

bool
ParamSpace::isLegal(const ParamBinding& b) const
{
    for (const CompiledConstraint& c : constraints_) {
        if (!evalCompiled(c, b))
            return false;
    }
    const int64_t* vals = b.values.data();
    const size_t nvals = b.values.size();
    for (const MemCheck& m : memChecks_) {
        int64_t n = 1;
        for (const MemCheck::Term& t : m.terms) {
            if (t.param == kNoParam) {
                n *= t.c;
            } else {
                invariant(t.param >= 0 && size_t(t.param) < nvals,
                          "parameter id out of range");
                n *= vals[size_t(t.param)] + t.c;
            }
        }
        if (n * m.typeBits > kMaxLocalMemBits)
            return false;
    }
    return true;
}

std::vector<ParamBinding>
ParamSpace::enumerate(int64_t cap) const
{
    std::vector<ParamBinding> out;
    if (legal_.empty()) {
        out.push_back(ParamBinding{});
        return out;
    }
    std::vector<size_t> idx(legal_.size(), 0);
    while (int64_t(out.size()) < cap) {
        ParamBinding b;
        b.values.reserve(legal_.size());
        for (size_t i = 0; i < legal_.size(); ++i)
            b.values.push_back(legal_[i][idx[i]]);
        if (isLegal(b))
            out.push_back(std::move(b));

        // Odometer advance.
        size_t d = legal_.size();
        while (d-- > 0) {
            if (++idx[d] < legal_[d].size())
                break;
            idx[d] = 0;
            if (d == 0)
                return out;
        }
    }
    return out;
}

int64_t
ParamSpace::localMemBits(const ParamBinding& b) const
{
    const int64_t* vals = b.values.data();
    const size_t nvals = b.values.size();
    int64_t bits = 0;
    for (const MemCheck& m : memChecks_) {
        int64_t n = 1;
        for (const MemCheck::Term& t : m.terms) {
            if (t.param == kNoParam) {
                n *= t.c;
            } else {
                invariant(t.param >= 0 && size_t(t.param) < nvals,
                          "parameter id out of range");
                n *= vals[size_t(t.param)] + t.c;
            }
        }
        bits += n * m.typeBits;
    }
    return bits;
}

std::vector<ParamBinding>
ParamSpace::sample(int n, uint64_t seed, DiagSink* sink) const
{
    ml::Rng rng(ml::hashMix(seed));
    std::vector<ParamBinding> out;
    SeenSet seen{size_t(n)};
    // Per-parameter draw state with the value list flattened to a raw
    // pointer; the draw loop also folds the dedup hash in the same
    // pass (identical hashMix chain over the values in order).
    struct Slot {
        const int64_t* vals;
        FastDraw draw;
    };
    std::vector<Slot> slots;
    slots.reserve(legal_.size());
    for (const auto& vs : legal_)
        slots.push_back({vs.data(), FastDraw(uint64_t(vs.size()))});
    // The legal space can be smaller than n; bound the attempts.
    int64_t attempts = int64_t(n) * 20 + 1000;
    // One candidate reused across rejection attempts; copied into
    // `out` only on acceptance.
    ParamBinding b;
    b.values.resize(legal_.size());
    while (int(out.size()) < n && attempts-- > 0) {
        uint64_t h = 0x9e3779b97f4a7c15ull;
        for (size_t i = 0; i < slots.size(); ++i) {
            const int64_t v = slots[i].vals[slots[i].draw.index(rng)];
            b.values[i] = v;
            h = ml::hashMix(h ^ uint64_t(v));
        }
        if (!seen.insert(h))
            continue;
        if (!isLegal(b))
            continue; // "We immediately discard illegal points."
        out.push_back(b);
    }
    if (sink && int(out.size()) < n) {
        // The shortfall used to be a bench-only footnote
        // (blackscholes: 708 legal < 2000 requested); every sweep now
        // reports it structurally.
        Diag d;
        d.code = DiagCode::SamplingShortfall;
        d.severity = DiagSeverity::Warning;
        d.stage = "sample";
        d.message = "sampling shortfall: drew " +
                    std::to_string(out.size()) + " of " +
                    std::to_string(n) +
                    " requested point(s); the legal space is smaller "
                    "or too sparse";
        sink->report(d);
    }
    return out;
}

} // namespace dhdl::dse

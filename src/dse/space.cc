#include "dse/space.hh"

#include <unordered_set>

namespace dhdl::dse {

ParamSpace::ParamSpace(const Graph& g) : g_(g)
{
    const auto& params = g.params();
    legal_.reserve(params.size());
    for (size_t i = 0; i < params.size(); ++i)
        legal_.push_back(params.legalValues(ParamId(i)));
    for (NodeId id = 0; id < NodeId(g.numNodes()); ++id) {
        const Node& n = g.node(id);
        if (n.kind() == NodeKind::Bram || n.kind() == NodeKind::Queue)
            localMems_.push_back(&g.nodeAs<MemNode>(id));
    }
}

double
ParamSpace::sizeEstimate() const
{
    double n = 1;
    for (const auto& vs : legal_)
        n *= double(vs.size());
    return n;
}

ParamBinding
ParamSpace::randomBinding(ml::Rng& rng) const
{
    ParamBinding b;
    b.values.reserve(legal_.size());
    for (const auto& vs : legal_)
        b.values.push_back(
            vs[size_t(rng.uniformInt(0, int64_t(vs.size()) - 1))]);
    return b;
}

bool
ParamSpace::isLegal(const ParamBinding& b) const
{
    if (!g_.satisfiesConstraints(b))
        return false;
    for (const MemNode* m : localMems_) {
        int64_t bits = m->numElems(b) * m->type.bits();
        if (bits > kMaxLocalMemBits)
            return false;
    }
    return true;
}

std::vector<ParamBinding>
ParamSpace::enumerate(int64_t cap) const
{
    std::vector<ParamBinding> out;
    if (legal_.empty()) {
        out.push_back(ParamBinding{});
        return out;
    }
    std::vector<size_t> idx(legal_.size(), 0);
    while (int64_t(out.size()) < cap) {
        ParamBinding b;
        b.values.reserve(legal_.size());
        for (size_t i = 0; i < legal_.size(); ++i)
            b.values.push_back(legal_[i][idx[i]]);
        if (isLegal(b))
            out.push_back(std::move(b));

        // Odometer advance.
        size_t d = legal_.size();
        while (d-- > 0) {
            if (++idx[d] < legal_[d].size())
                break;
            idx[d] = 0;
            if (d == 0)
                return out;
        }
    }
    return out;
}

std::vector<ParamBinding>
ParamSpace::sample(int n, uint64_t seed) const
{
    ml::Rng rng(ml::hashMix(seed));
    std::vector<ParamBinding> out;
    std::unordered_set<uint64_t> seen;
    seen.reserve(size_t(n) * 2);
    // The legal space can be smaller than n; bound the attempts.
    int64_t attempts = int64_t(n) * 20 + 1000;
    // One candidate reused across rejection attempts; copied into
    // `out` only on acceptance.
    ParamBinding b;
    b.values.reserve(legal_.size());
    while (int(out.size()) < n && attempts-- > 0) {
        b.values.clear();
        for (const auto& vs : legal_)
            b.values.push_back(
                vs[size_t(rng.uniformInt(0, int64_t(vs.size()) - 1))]);
        uint64_t h = 0x9e3779b97f4a7c15ull;
        for (int64_t v : b.values)
            h = ml::hashMix(h ^ uint64_t(v));
        if (!seen.insert(h).second)
            continue;
        if (!isLegal(b))
            continue; // "We immediately discard illegal points."
        out.push_back(b);
    }
    return out;
}

} // namespace dhdl::dse

/**
 * @file
 * Durable exploration checkpoints: the crash-safe, self-validating
 * on-disk format shared by explore(), resume, and shard merge.
 *
 * Format (v2), line-oriented text:
 *
 *   # dhdl-explore-checkpoint v2
 *   # design=<16-hex> space=<16-hex> seed=<u64> total=<n> nparams=<n>
 *   # columns: index,valid,failed,failcode,failstage,alms,luts,
 *   #          regs,dsps,brams,cycles,binding,failreason,crc32
 *   <record>,<8-hex crc32>
 *   ...
 *
 * Guarantees:
 *
 *  - **Atomic writes**: write-temp + flush (fsync) + rename per
 *    checkpoint batch. A kill at any instant leaves either the old
 *    complete file or the new complete file.
 *  - **Self-validating header**: `design` is the FNV-1a hash of the
 *    canonical `.dhdl` serialization, `space` fingerprints the legal
 *    parameter space. Resuming or merging a checkpoint written by a
 *    different design, seed, sample count or space is *refused* with
 *    a structured Diag (CheckpointMismatch) — never a crash, never a
 *    silent wrong merge.
 *  - **Per-record CRC-32**: the last comma-field of every record is
 *    the CRC of everything before it. A torn tail (partial final
 *    record, e.g. from a non-atomic writer or a cut download) is
 *    detected and logically truncated: the valid prefix restores,
 *    the tail is dropped and counted. A CRC failure mid-file marks
 *    the record corrupt; it is skipped and counted, and the point
 *    re-evaluates. Recovery is observable: counts land in
 *    CheckpointLoadStats, warning Diags, and obs counters
 *    (`dse.checkpoint.truncated` / `.corrupt` / `.stale`).
 *  - **Diag fidelity**: records persist the failing pipeline stage,
 *    so a restored failure re-surfaces a diagnostic byte-identical
 *    (in code/stage/message/point) to the live run's.
 *
 * The v1 format (no CRC, no design/space hashes) is still read:
 * malformed or torn trailing lines are skipped and counted instead
 * of mis-parsing, and header fields that v1 carries are validated.
 */

#ifndef DHDL_DSE_CHECKPOINT_HH
#define DHDL_DSE_CHECKPOINT_HH

#include <string>
#include <vector>

#include "core/diag.hh"
#include "dse/evaluator.hh"
#include "dse/space.hh"

namespace dhdl::dse {

/** Identity of one exploration, carried in the checkpoint header. */
struct CheckpointMeta {
    uint64_t designHash = 0; //!< FNV-1a of emitIR(graph).
    uint64_t spaceHash = 0;  //!< FNV-1a of the legal value sets.
    uint64_t seed = 0;
    uint64_t total = 0;      //!< Global sample count.
    uint64_t nparams = 0;
    /**
     * Search strategy that wrote the file. "random" renders the
     * historical v2 layout byte-for-byte; any other name adds a
     * `# strategy=<name>` header line and a per-record round column
     * (still v2: strategy-less readers are the only thing that
     * changed, and loading tolerates either layout). Not part of the
     * identity check — a resumed run may switch strategies and keep
     * its evaluated points.
     */
    std::string strategy = "random";

    bool operator==(const CheckpointMeta&) const = default;
};

/** Fingerprint a run: design-IR hash, space hash, seed, total. */
CheckpointMeta makeCheckpointMeta(const Graph& g,
                                  const ParamSpace& space,
                                  uint64_t seed, size_t total);

/**
 * Serialize every evaluated point under the header. Deterministic:
 * identical points yield identical bytes, which shard-merge
 * byte-identity and the golden suite pin.
 */
std::string renderCheckpoint(const CheckpointMeta& meta,
                             const std::vector<DesignPoint>& points);

/**
 * Atomically persist a checkpoint batch: temp file in the same
 * directory, fsync, rename. Returns false on I/O failure (caller
 * reports; exploration continues). Fault-injection points
 * `torn-checkpoint` and `corrupt-record` act here.
 */
bool writeCheckpointFile(const std::string& path,
                         const CheckpointMeta& meta,
                         const std::vector<DesignPoint>& points);

/** What a load recovered — every recovery is observable. */
struct CheckpointLoadStats {
    size_t restored = 0;  //!< Points restored into the sample set.
    size_t truncated = 0; //!< Torn-tail records dropped.
    size_t corrupt = 0;   //!< Mid-file CRC failures skipped.
    size_t stale = 0;     //!< Index/binding mismatches skipped.
    bool legacy = false;  //!< File was the v1 format.
};

/**
 * Restore evaluated points from `path` into `points` (whose bindings
 * must already hold this run's sample set).
 *
 * Returns an error Status — with nothing restored — when the file is
 * missing (CheckpointIo) or when its header identifies a different
 * exploration (CheckpointMismatch: design, space, seed, sample count
 * or parameter count disagree). The caller chooses the policy:
 * resume downgrades to a warning and starts fresh; shard merge
 * reports the shard missing.
 *
 * Row-level damage never fails the load: torn tails are truncated,
 * corrupt and stale records skipped, each counted in `statsOut` and
 * reported as warning Diags on `sink`. Restored failures re-surface
 * their original error Diag (code, stage, message, binding context).
 */
Status loadCheckpointFile(const std::string& path, const Graph& g,
                          const CheckpointMeta& expect,
                          std::vector<DesignPoint>& points,
                          DiagSink& sink,
                          CheckpointLoadStats* statsOut = nullptr);

} // namespace dhdl::dse

#endif // DHDL_DSE_CHECKPOINT_HH

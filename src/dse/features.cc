#include "dse/features.hh"

#include <cmath>

#include "analysis/templates.hh"
#include "core/error.hh"

namespace dhdl::dse {

FeatureExtractor::FeatureExtractor(const ParamSpace& space,
                                   const DesignPlan* plan)
    : space_(space), nparams_(space.legalValues().size())
{
    if (!plan)
        return;
    for (const TemplateSlot& s : plan->templateSlots())
        slotCounts_[size_t(templateClassOf(s.base.tkind))] += 1.0;
}

void
FeatureExtractor::featuresInto(const ParamBinding& b,
                               double* out) const
{
    require(b.values.size() == nparams_,
            "binding arity does not match the parameter space");
    double prod = 1.0;
    for (size_t i = 0; i < nparams_; ++i) {
        const double v = double(b.values[i]);
        out[i] = std::log2(1.0 + v);
        prod *= v;
    }
    out[nparams_ + 0] = std::log2(1.0 + prod);
    const int64_t bits = space_.localMemBits(b);
    out[nparams_ + 1] = std::log2(1.0 + double(bits > 0 ? bits : 0));
    out[nparams_ + 2] = slotCounts_[0];
    out[nparams_ + 3] = slotCounts_[1];
    out[nparams_ + 4] = slotCounts_[2];
    out[nparams_ + 5] = slotCounts_[3];
}

std::vector<double>
FeatureExtractor::features(const ParamBinding& b) const
{
    std::vector<double> out(count());
    featuresInto(b, out.data());
    return out;
}

} // namespace dhdl::dse

#include "dse/checkpoint.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/checksum.hh"
#include "core/faultinject.hh"
#include "core/printer.hh"
#include "obs/metrics.hh"

namespace dhdl::dse {

namespace {

constexpr const char* kMagicV2 = "# dhdl-explore-checkpoint v2";
constexpr const char* kMagicV1 = "# dhdl-explore-checkpoint v1";

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  (unsigned long long)v);
    return buf;
}

std::string
hex8(uint32_t v)
{
    char buf[9];
    std::snprintf(buf, sizeof buf, "%08x", (unsigned)v);
    return buf;
}

/** Split a row on the first n commas; element n is the remainder. */
std::vector<std::string>
splitFields(const std::string& line, size_t n)
{
    std::vector<std::string> out;
    size_t pos = 0;
    for (size_t i = 0; i < n; ++i) {
        size_t comma = line.find(',', pos);
        if (comma == std::string::npos)
            return out; // short row; caller rejects
        out.push_back(line.substr(pos, comma - pos));
        pos = comma + 1;
    }
    out.push_back(line.substr(pos));
    return out;
}

/** One record's payload (everything before the trailing CRC field).
 *  `withRound` inserts the search-round column (non-random
 *  strategies only, keeping historical files byte-identical). */
std::string
renderRecord(size_t index, const DesignPoint& p, bool withRound)
{
    std::ostringstream os;
    os << std::setprecision(17);
    // Stage and reason are free-form; strip the characters that
    // would break the line/field structure.
    auto clean = [](std::string s, bool commas) {
        std::replace(s.begin(), s.end(), '\n', ' ');
        if (commas)
            std::replace(s.begin(), s.end(), ',', ';');
        return s;
    };
    os << index << "," << (p.valid ? 1 : 0) << ","
       << (p.failed ? 1 : 0) << "," << diagCodeName(p.failCode)
       << "," << clean(p.failStage, true) << "," << p.area.alms
       << "," << p.area.luts << "," << p.area.regs << ","
       << p.area.dsps << "," << p.area.brams << "," << p.cycles
       << ",";
    for (size_t j = 0; j < p.binding.values.size(); ++j)
        os << (j ? " " : "") << p.binding.values[j];
    if (withRound)
        os << "," << p.round;
    // The reason may contain commas; it is delimited by the CRC
    // being the *last* comma-field of the line.
    os << "," << clean(p.failReason, false);
    return os.str();
}

/** Write `bytes` to an fd completely; false on any error. */
bool
writeAll(int fd, const std::string& bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

/** Byte offsets (start, end) of every data line in `content`. */
std::vector<std::pair<size_t, size_t>>
dataLineSpans(const std::string& content)
{
    std::vector<std::pair<size_t, size_t>> spans;
    size_t pos = 0;
    while (pos < content.size()) {
        size_t nl = content.find('\n', pos);
        size_t end = nl == std::string::npos ? content.size() : nl;
        if (end > pos && content[pos] != '#')
            spans.emplace_back(pos, end);
        if (nl == std::string::npos)
            break;
        pos = nl + 1;
    }
    return spans;
}

/**
 * Apply armed checkpoint faults to the serialized content. Returns
 * true when the content must additionally be written *non-atomically*
 * (the torn-tail injection simulates a writer killed mid-write).
 */
bool
injectFaults(std::string& content)
{
    if (!fault::active())
        return false;
    if (auto rec = fault::armed(fault::Point::CorruptRecord)) {
        auto spans = dataLineSpans(content);
        if (size_t(*rec) <= spans.size()) {
            // Flip one payload byte of record `rec` (1-based); any
            // change breaks that record's CRC on load.
            size_t at = spans[size_t(*rec) - 1].first;
            content[at] = content[at] == 'x' ? 'y' : 'x';
            obs::addCounter("fault.fired.corrupt-record", 1);
        }
    }
    if (fault::hit(fault::Point::TornCheckpoint)) {
        auto spans = dataLineSpans(content);
        if (!spans.empty()) {
            auto [lo, hi] = spans.back();
            content.resize(lo + (hi - lo) / 2); // cut mid-record
        }
        return true;
    }
    return false;
}

Status
mismatch(const std::string& path, const std::string& why)
{
    Diag d;
    d.code = DiagCode::CheckpointMismatch;
    d.severity = DiagSeverity::Error;
    d.stage = "checkpoint";
    d.message = "checkpoint '" + path + "' refused: " + why;
    return Status::error(std::move(d));
}

} // namespace

CheckpointMeta
makeCheckpointMeta(const Graph& g, const ParamSpace& space,
                   uint64_t seed, size_t total)
{
    CheckpointMeta meta;
    meta.designHash = fnv1a(emitIR(g));
    std::ostringstream os;
    for (const auto& values : space.legalValues()) {
        for (int64_t v : values)
            os << v << " ";
        os << ";";
    }
    meta.spaceHash = fnv1a(os.str());
    meta.seed = seed;
    meta.total = total;
    meta.nparams = g.params().size();
    return meta;
}

std::string
renderCheckpoint(const CheckpointMeta& meta,
                 const std::vector<DesignPoint>& points)
{
    const bool withRound =
        !meta.strategy.empty() && meta.strategy != "random";
    std::ostringstream os;
    os << kMagicV2 << "\n";
    os << "# design=" << hex16(meta.designHash)
       << " space=" << hex16(meta.spaceHash) << " seed=" << meta.seed
       << " total=" << meta.total << " nparams=" << meta.nparams
       << "\n";
    if (withRound) {
        os << "# strategy=" << meta.strategy << "\n";
        os << "# columns: index,valid,failed,failcode,failstage,alms,"
              "luts,regs,dsps,brams,cycles,binding,round,failreason,"
              "crc32\n";
    } else {
        os << "# columns: index,valid,failed,failcode,failstage,alms,"
              "luts,regs,dsps,brams,cycles,binding,failreason,crc32\n";
    }
    for (size_t i = 0; i < points.size(); ++i) {
        if (!points[i].evaluated)
            continue;
        std::string payload = renderRecord(i, points[i], withRound);
        os << payload << "," << hex8(crc32(payload)) << "\n";
    }
    return os.str();
}

bool
writeCheckpointFile(const std::string& path,
                    const CheckpointMeta& meta,
                    const std::vector<DesignPoint>& points)
{
    std::string content = renderCheckpoint(meta, points);
    if (injectFaults(content)) {
        // Torn-tail injection: bypass the atomic protocol on
        // purpose, leaving exactly the file a killed v1-style
        // writer would have left.
        std::ofstream os(path, std::ios::trunc | std::ios::binary);
        os << content;
        return bool(os);
    }
    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    bool ok = writeAll(fd, content) && ::fsync(fd) == 0;
    ok = (::close(fd) == 0) && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

Status
loadCheckpointFile(const std::string& path, const Graph& g,
                   const CheckpointMeta& expect,
                   std::vector<DesignPoint>& points, DiagSink& sink,
                   CheckpointLoadStats* statsOut)
{
    CheckpointLoadStats ls;
    auto finish = [&] {
        if (statsOut)
            *statsOut = ls;
        if (obs::enabled()) {
            static const obs::Counter cLoads("dse.checkpoint.loads");
            static const obs::Counter cRest(
                "dse.checkpoint.restored");
            static const obs::Counter cTrunc(
                "dse.checkpoint.truncated");
            static const obs::Counter cCorr(
                "dse.checkpoint.corrupt");
            static const obs::Counter cStale(
                "dse.checkpoint.stale");
            cLoads.add(1);
            cRest.add(ls.restored);
            cTrunc.add(ls.truncated);
            cCorr.add(ls.corrupt);
            cStale.add(ls.stale);
        }
    };
    auto warn = [&](const std::string& msg) {
        Diag d;
        d.code = DiagCode::CheckpointIo;
        d.severity = DiagSeverity::Warning;
        d.stage = "checkpoint";
        d.message = msg;
        sink.report(d);
    };

    std::ifstream is(path, std::ios::binary);
    if (!is) {
        finish();
        Diag d;
        d.code = DiagCode::CheckpointIo;
        d.severity = DiagSeverity::Error;
        d.stage = "checkpoint";
        d.message = "checkpoint '" + path + "' not found";
        return Status::error(std::move(d));
    }

    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    if (lines.empty()) {
        finish();
        return mismatch(path, "file is empty");
    }

    bool legacy = false;
    if (lines[0] == kMagicV1)
        legacy = true;
    else if (lines[0] != kMagicV2) {
        finish();
        return mismatch(path, "unknown format");
    }
    ls.legacy = legacy;

    // Header validation: every identity field must agree before a
    // single record is merged.
    unsigned long long seed = 0;
    unsigned long long design = 0, spaceHash = 0;
    size_t total = 0, nparams = 0;
    if (lines.size() < 2 ||
        (legacy
             ? std::sscanf(lines[1].c_str(),
                           "# seed=%llu total=%zu nparams=%zu",
                           &seed, &total, &nparams) != 3
             : std::sscanf(
                   lines[1].c_str(),
                   "# design=%llx space=%llx seed=%llu total=%zu "
                   "nparams=%zu",
                   &design, &spaceHash, &seed, &total,
                   &nparams) != 5)) {
        finish();
        return mismatch(path, "malformed header");
    }
    std::string why;
    auto check = [&](bool same, const char* what) {
        if (!same)
            why += why.empty() ? what : (std::string(", ") + what);
    };
    if (!legacy) {
        check(design == expect.designHash, "design");
        check(spaceHash == expect.spaceHash, "parameter space");
    }
    check(seed == expect.seed, "seed");
    check(total == expect.total, "sample count");
    check(nparams == expect.nparams, "parameter count");
    if (!why.empty()) {
        finish();
        return mismatch(path, "written by a different exploration (" +
                                  why + " mismatch)");
    }

    // A `# strategy=` header comment marks the round-tagged record
    // layout (one extra column before failreason). Comments run from
    // line 2 to the first data line.
    bool hasRound = false;
    for (size_t li = 2; li < lines.size(); ++li) {
        if (lines[li].empty() || lines[li][0] != '#')
            break;
        if (lines[li].rfind("# strategy=", 0) == 0)
            hasRound = true;
    }

    // Index of the last data line: a record that fails its CRC there
    // is a torn tail (truncate); anywhere else it is corruption.
    size_t lastData = lines.size();
    for (size_t i = lines.size(); i-- > 2;) {
        if (!lines[i].empty() && lines[i][0] != '#') {
            lastData = i;
            break;
        }
    }

    for (size_t li = 2; li < lines.size(); ++li) {
        const std::string& row = lines[li];
        if (row.empty() || row[0] == '#')
            continue;
        const bool isTail = li == lastData;
        auto damaged = [&] {
            (isTail ? ls.truncated : ls.corrupt)++;
        };

        std::string payload = row;
        if (!legacy) {
            size_t comma = row.rfind(',');
            if (comma == std::string::npos) {
                damaged();
                continue;
            }
            payload = row.substr(0, comma);
            std::string crcField = row.substr(comma + 1);
            if (crcField.size() != 8 ||
                crcField != hex8(crc32(payload))) {
                damaged();
                continue;
            }
        }
        // v2 payloads carry failstage between failcode and alms (and
        // a round column before failreason when strategy-tagged).
        const size_t ncommas = legacy ? 11 : (hasRound ? 13 : 12);
        auto f = splitFields(payload, ncommas);
        if (f.size() != ncommas + 1) {
            damaged();
            continue;
        }
        const size_t stageAt = legacy ? 0 : 4; // 0 = absent
        const size_t numAt = legacy ? 4 : 5;   // alms..cycles
        const size_t bindAt = numAt + 6;
        size_t idx = 0;
        try {
            idx = size_t(std::stoull(f[0]));
        } catch (const std::exception&) {
            damaged();
            continue;
        }
        if (idx >= points.size() || points[idx].evaluated) {
            ++ls.stale;
            continue;
        }
        DesignPoint& p = points[idx];
        // Guard against a stale file: the stored binding must match
        // the binding sampled at this index this run.
        std::istringstream bs(f[bindAt]);
        std::vector<int64_t> vals;
        int64_t v;
        while (bs >> v)
            vals.push_back(v);
        if (vals != p.binding.values) {
            ++ls.stale;
            continue;
        }
        try {
            p.valid = f[1] == "1";
            p.failed = f[2] == "1";
            p.failCode = diagCodeFromName(f[3]);
            p.area.alms = std::stod(f[numAt + 0]);
            p.area.luts = std::stod(f[numAt + 1]);
            p.area.regs = std::stod(f[numAt + 2]);
            p.area.dsps = std::stod(f[numAt + 3]);
            p.area.brams = std::stod(f[numAt + 4]);
            p.cycles = std::stod(f[numAt + 5]);
            p.round = hasRound ? int32_t(std::stol(f[bindAt + 1]))
                               : int32_t(-1);
        } catch (const std::exception&) {
            p = DesignPoint{};
            p.binding.values = std::move(vals);
            damaged();
            continue;
        }
        p.failStage = stageAt ? f[stageAt] : "";
        p.failReason = f[bindAt + (hasRound ? 2 : 1)];
        p.evaluated = true;
        ++ls.restored;
        if (p.failed) {
            // Re-surface the failure exactly as the live run
            // reported it, so failureSummary() and golden diag
            // renderings cover restored points identically.
            Diag d;
            d.code = p.failCode;
            d.severity = DiagSeverity::Error;
            d.stage = p.failStage.empty() ? "checkpoint"
                                          : p.failStage;
            d.message = p.failReason;
            d.pointIndex = int64_t(idx);
            d.context = renderBinding(g, p.binding);
            sink.report(d);
        }
    }

    if (ls.truncated > 0)
        warn("checkpoint '" + path + "': torn tail, " +
             std::to_string(ls.truncated) +
             " partial record(s) truncated");
    if (ls.corrupt > 0)
        warn("checkpoint '" + path + "': " +
             std::to_string(ls.corrupt) +
             " corrupt record(s) skipped");
    if (ls.stale > 0)
        warn("checkpoint '" + path + "': " +
             std::to_string(ls.stale) +
             " stale record(s) ignored");
    finish();
    return Status();
}

} // namespace dhdl::dse

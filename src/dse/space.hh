/**
 * @file
 * The design parameter space and the paper's pruning heuristics
 * (Section IV-C):
 *
 *  - parallelization factors are integer divisors of trip counts;
 *  - tile sizes are divisors of the annotated data dimensions;
 *  - banking is inferred automatically, not explored;
 *  - each local memory is capped at a fixed maximum size;
 *
 * together defining the "legal" subspace that is randomly sampled
 * (up to 75,000 points in the paper's experiments).
 */

#ifndef DHDL_DSE_SPACE_HH
#define DHDL_DSE_SPACE_HH

#include "analysis/instance.hh"
#include "ml/rng.hh"

namespace dhdl::dse {

/** Maximum size of a single on-chip memory, in bits. */
inline constexpr int64_t kMaxLocalMemBits = int64_t(4) << 20;

/** Enumeration and sampling of a design's legal parameter space. */
class ParamSpace
{
  public:
    explicit ParamSpace(const Graph& g);

    /** Total number of parameter combinations before legality. */
    double sizeEstimate() const;

    /** Legal values of each parameter (pruned). */
    const std::vector<std::vector<int64_t>>& legalValues() const
    {
        return legal_;
    }

    /** Draw one random combination of legal parameter values. */
    ParamBinding randomBinding(ml::Rng& rng) const;

    /**
     * Structural legality of a binding: every local memory within
     * the size cap. (Resource capacity is checked later, against
     * the area estimate.)
     */
    bool isLegal(const ParamBinding& b) const;

    /**
     * Sample up to n distinct legal bindings. May return fewer when
     * the legal space is smaller than n.
     */
    std::vector<ParamBinding> sample(int n, uint64_t seed) const;

    /**
     * Exhaustively enumerate legal bindings (odometer order), up to
     * `cap` results. Used when the pruned space is small enough to
     * walk completely.
     */
    std::vector<ParamBinding> enumerate(int64_t cap) const;

  private:
    const Graph& g_;
    std::vector<std::vector<int64_t>> legal_;
    //!< Size-capped local memories (Bram/Queue) in node-id order,
    //!< resolved once so isLegal() skips the full node walk.
    std::vector<const MemNode*> localMems_;
};

} // namespace dhdl::dse

#endif // DHDL_DSE_SPACE_HH

/**
 * @file
 * The design parameter space and the paper's pruning heuristics
 * (Section IV-C):
 *
 *  - parallelization factors are integer divisors of trip counts;
 *  - tile sizes are divisors of the annotated data dimensions;
 *  - banking is inferred automatically, not explored;
 *  - each local memory is capped at a fixed maximum size;
 *
 * together defining the "legal" subspace that is randomly sampled
 * (up to 75,000 points in the paper's experiments).
 */

#ifndef DHDL_DSE_SPACE_HH
#define DHDL_DSE_SPACE_HH

#include "analysis/instance.hh"
#include "core/diag.hh"
#include "ml/rng.hh"

namespace dhdl::dse {

/** Maximum size of a single on-chip memory, in bits. */
inline constexpr int64_t kMaxLocalMemBits = int64_t(4) << 20;

/** Enumeration and sampling of a design's legal parameter space. */
class ParamSpace
{
  public:
    explicit ParamSpace(const Graph& g);

    /** Total number of parameter combinations before legality. */
    double sizeEstimate() const;

    /** Legal values of each parameter (pruned). */
    const std::vector<std::vector<int64_t>>& legalValues() const
    {
        return legal_;
    }

    /** Draw one random combination of legal parameter values. */
    ParamBinding randomBinding(ml::Rng& rng) const;

    /**
     * Structural legality of a binding: every local memory within
     * the size cap. (Resource capacity is checked later, against
     * the area estimate.)
     */
    bool isLegal(const ParamBinding& b) const;

    /**
     * Sample up to n distinct legal bindings. May return fewer when
     * the legal space is smaller than n (or too sparse for the
     * bounded rejection sampling to fill); the shortfall is then
     * reported on `sink` as a structured SamplingShortfall warning,
     * so no sweep silently caps its sample set.
     */
    std::vector<ParamBinding> sample(int n, uint64_t seed,
                                     DiagSink* sink = nullptr) const;

    /**
     * Total on-chip memory bits implied by a binding, summed over the
     * size-capped local memories — the same flattened terms, multiply
     * order and wraparound as isLegal()'s per-memory check. Used as a
     * surrogate search feature (dse/features).
     */
    int64_t localMemBits(const ParamBinding& b) const;

    /**
     * Exhaustively enumerate legal bindings (odometer order), up to
     * `cap` results. Used when the pruned space is small enough to
     * walk completely.
     */
    std::vector<ParamBinding> enumerate(int64_t cap) const;

  private:
    /** One postfix instruction of a compiled constraint program. */
    struct CInstr {
        enum class K : uint8_t { Const, Param, Arith };
        K kind = K::Const;
        CArith op = CArith::Add;
        ParamId param = kNoParam;
        int64_t value = 0;
    };

    /**
     * A legality constraint flattened to a postfix program (lhs
     * operands then rhs, compared at the end). Evaluating the
     * program on a small stack gives exactly Constraint::eval's
     * result — same overflow, division-by-zero and out-of-range
     * semantics — without walking the shared-pointer expression
     * tree on every sampling attempt.
     */
    struct CompiledConstraint {
        /**
         * Recognized program shapes. Nearly every design constraint
         * is a divisibility condition — `pa % pb == k` or
         * `(ca / pa) % pb == k` — so those run as straight-line code;
         * anything else goes through the postfix interpreter.
         */
        enum class Shape : uint8_t { Generic, PModP, CDivPModP };

        std::vector<CInstr> ops;
        CCmp cmp = CCmp::Eq;
        Shape shape = Shape::Generic;
        ParamId pa = kNoParam, pb = kNoParam;
        int64_t ca = 0;  //!< Leading constant (CDivPModP).
        int64_t rhs = 0; //!< Trailing constant comparand.
        /** Fallback for programs deeper than the fixed eval stack. */
        const Constraint* tree = nullptr;
    };

    bool evalCompiled(const CompiledConstraint& c,
                      const ParamBinding& b) const;

    /**
     * One local memory's size cap, flattened: the bit count is
     * `Π dims · typeBits` where every dimension is an affine Sym
     * (param + offset, or a constant). Storing the terms as plain
     * (param, constant) pairs keeps the hot mem check in isLegal()
     * off the graph entirely — same multiplies, same order, same
     * wraparound as MemNode::numElems.
     */
    struct MemCheck {
        struct Term {
            ParamId param = kNoParam; //!< kNoParam → constant term
            int64_t c = 0;            //!< offset (param) or value
        };
        std::vector<Term> terms; //!< dims in declaration order
        int64_t typeBits = 0;
    };

    const Graph& g_;
    std::vector<std::vector<int64_t>> legal_;
    //!< Size-capped local memories (Bram/Queue) in node-id order,
    //!< compiled once so isLegal() skips the full node walk.
    std::vector<MemCheck> memChecks_;
    std::vector<CompiledConstraint> constraints_;
};

} // namespace dhdl::dse

#endif // DHDL_DSE_SPACE_HH

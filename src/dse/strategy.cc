#include "dse/strategy.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dhdl::dse {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Minimum training rows before the first model fit. */
constexpr size_t kMinTrainRows = 8;
/** Below this many rows the ridge model replaces the Mlp. */
constexpr size_t kMinMlpRows = 32;
/** Holdout rows needed before family selection is trusted. */
constexpr size_t kMinValRows = 16;

/** Mlps per committee (odd, so the median is a member's output).
 *  Three measured best on the quality bench: five averages away the
 *  optimism that finds predicted-front extremes. */
constexpr size_t kCommitteeSize = 3;

} // namespace

void
RandomStrategy::propose(int round, const std::vector<size_t>& pool,
                        size_t budget, const ParetoFront&,
                        std::vector<size_t>& out, RoundStats&)
{
    // The whole pool, in sample order, in one round: exactly the
    // historical sample-everything-then-evaluate sweep. The budget
    // cap reproduces the old todo.resize(evalBudget).
    if (round > 0)
        return;
    const size_t n = std::min(budget, pool.size());
    out.insert(out.end(), pool.begin(), pool.begin() + long(n));
}

SurrogateStrategy::SurrogateStrategy(
    const SurrogateConfig& cfg, uint64_t seed, const ParamSpace& space,
    FeatureExtractor fx, const std::vector<DesignPoint>& points)
    : cfg_(cfg), space_(space), fx_(std::move(fx)), points_(points),
      seed_(seed), rng_(ml::hashMix(seed ^ 0x5a22063aull))
{
    feat_.resize(fx_.count());
    scaled_.resize(fx_.count());
    for (size_t i = 0; i < points_.size(); ++i)
        bindingToIdx_.emplace(points_[i].binding.values, i);
}

void
SurrogateStrategy::loadModel(const std::string& path, DiagSink& sink)
{
    auto warn = [&](const std::string& msg) {
        Diag d;
        d.code = DiagCode::ParseError;
        d.severity = DiagSeverity::Warning;
        d.stage = "surrogate";
        d.message = "surrogate model '" + path + "' ignored: " + msg;
        sink.report(d);
    };
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        Diag d;
        d.code = DiagCode::CheckpointIo;
        d.severity = DiagSeverity::Warning;
        d.stage = "surrogate";
        d.message =
            "surrogate model '" + path + "' not found; training fresh";
        sink.report(d);
        return;
    }
    ml::SurrogateBundle b;
    Status st = ml::tryLoadSurrogateBundle(is, b);
    if (!st.ok()) {
        warn(st.diag().message + "; training fresh");
        return;
    }
    if (b.features.columns() != fx_.count() || b.numModels() != 2) {
        warn("trained for a different design (feature arity " +
             std::to_string(b.features.columns()) + ", expected " +
             std::to_string(fx_.count()) + "); training fresh");
        return;
    }
    bundle_ = std::move(b);
    fitted_ = true;
}

void
SurrogateStrategy::observe(int,
                           const std::vector<DesignPoint>& points,
                           const std::vector<size_t>& proposed)
{
    for (size_t idx : proposed) {
        const DesignPoint& p = points[idx];
        if (!p.evaluated || p.failed)
            continue;
        const double ya = std::log2(1.0 + p.area.alms);
        const double yc = std::log2(1.0 + p.cycles);
        if (!std::isfinite(ya) || !std::isfinite(yc))
            continue;
        trainX_.push_back(fx_.features(p.binding));
        trainY_.push_back({ya, yc});
        dirty_ = true;
    }
}

void
SurrogateStrategy::train(RoundStats& rs)
{
    if (trainX_.size() < kMinTrainRows)
        return;
    const auto t0 = Clock::now();

    bundle_.features.fit(trainX_);
    bundle_.targets.fit(trainY_);

    // Scale features and targets to [0, 1] for both model families.
    std::vector<std::vector<double>> xs(trainX_.size());
    for (size_t i = 0; i < trainX_.size(); ++i)
        bundle_.features.transformInto(trainX_[i], xs[i]);
    std::array<std::vector<double>, 2> ys;
    for (size_t t = 0; t < 2; ++t) {
        ys[t].resize(trainY_.size());
        for (size_t i = 0; i < trainY_.size(); ++i)
            ys[t][i] = bundle_.targets.scaleColumn(t, trainY_[i][t]);
    }
    const bool mlp = cfg_.useMlp && trainX_.size() >= kMinMlpRows;

    auto fitLin = [&](const std::vector<std::vector<double>>& x,
                      const std::vector<double>& y) {
        ml::LinearModel m;
        m.fit(x, y, 1e-6);
        return m;
    };
    auto fitMlp = [&](const std::vector<std::vector<double>>& x,
                      const std::vector<double>& y, size_t t,
                      size_t member) {
        ml::Mlp net({int(fx_.count()), 8, 1},
                    ml::hashMix(seed_ ^
                                (0xB0D31ull + t + 31 * member)));
        std::vector<std::vector<double>> ycol(y.size());
        for (size_t i = 0; i < y.size(); ++i)
            ycol[i] = {y[i]};
        ml::RpropTrainer(net).train(x, ycol,
                                    std::max(1, cfg_.trainEpochs));
        return net;
    };
    auto fitCommittee =
        [&](const std::vector<std::vector<double>>& x,
            const std::vector<double>& y, size_t t) {
            std::vector<ml::Mlp> c;
            for (size_t m = 0; m < kCommitteeSize; ++m)
                c.push_back(fitMlp(x, y, t, m));
            return c;
        };
    auto committeeMedian = [&](std::vector<ml::Mlp>& c,
                               const std::vector<double>& x) {
        double v[kCommitteeSize];
        for (size_t m = 0; m < kCommitteeSize; ++m)
            v[m] = c[m].predictScalar(x, mlpWs_);
        std::sort(v, v + kCommitteeSize);
        return v[kCommitteeSize / 2];
    };

    // Which family ranks this design best is an empirical question —
    // area and cycles are near log-linear for some designs (ridge
    // wins, the Mlp overfits) and full of min/max interactions for
    // others (the Mlp wins, ridge is systematically biased). Decide
    // per refit on a time-ordered holdout: train both families on
    // the older rows, score squared error on the newest quarter, and
    // keep the winner among {Mlp, ridge, their average}.
    blend_ = Blend::LinearOnly;
    if (mlp) {
        blend_ = Blend::MlpOnly;
        const size_t n = xs.size();
        const size_t nVal = n / 4;
        if (nVal >= kMinValRows) {
            const size_t nFit = n - nVal;
            std::vector<std::vector<double>> hx(xs.begin(),
                                                xs.begin() +
                                                    long(nFit));
            double err[3] = {0, 0, 0}; // avg, mlp, lin
            for (size_t t = 0; t < 2; ++t) {
                std::vector<double> hy(ys[t].begin(),
                                       ys[t].begin() + long(nFit));
                ml::LinearModel lm = fitLin(hx, hy);
                std::vector<ml::Mlp> c = fitCommittee(hx, hy, t);
                for (size_t i = nFit; i < n; ++i) {
                    const double pm = committeeMedian(c, xs[i]);
                    const double pl = lm.predict(xs[i]);
                    const double pa = 0.5 * (pm + pl);
                    err[0] += (pa - ys[t][i]) * (pa - ys[t][i]);
                    err[1] += (pm - ys[t][i]) * (pm - ys[t][i]);
                    err[2] += (pl - ys[t][i]) * (pl - ys[t][i]);
                }
            }
            if (err[1] < err[0] && err[1] <= err[2])
                blend_ = Blend::MlpOnly;
            else if (err[2] < err[0] && err[2] < err[1])
                blend_ = Blend::LinearOnly;
        }
    }

    // The final fit uses every row. Both families are kept either
    // way: their disagreement is the exploration signal in
    // propose() regardless of which one ranks.
    bundle_.useMlp = mlp;
    bundle_.nets.clear();
    bundle_.linears.clear();
    committee_[0].clear();
    committee_[1].clear();
    for (size_t t = 0; t < 2; ++t) {
        bundle_.linears.push_back(fitLin(xs, ys[t]));
        if (mlp) {
            committee_[t] = fitCommittee(xs, ys[t], t);
            bundle_.nets.push_back(committee_[t][0]);
        }
    }
    fitted_ = true;
    dirty_ = false;

    const double dt = secondsSince(t0);
    rs.trainSeconds += dt;
    obs::recordSpan("dse", "surrogate-train", obs::toMicros(t0),
                    uint64_t(dt * 1e6));
}

void
SurrogateStrategy::predictScaled(const ParamBinding& b, double out[2],
                                 double* disagreement)
{
    fx_.featuresInto(b, feat_.data());
    bundle_.features.transformInto(feat_, scaled_);
    const bool haveMlp = bundle_.nets.size() == 2;
    const bool haveLin = bundle_.linears.size() == 2;
    double dis = 0;
    for (size_t t = 0; t < 2; ++t) {
        double m = 0, l = 0;
        if (haveMlp) {
            if (committee_[t].size() == kCommitteeSize) {
                // Median over the committee seeds: a minority of
                // unlucky initializations cannot skew the ranking.
                double v[kCommitteeSize];
                for (size_t c = 0; c < kCommitteeSize; ++c)
                    v[c] = committee_[t][c].predictScalar(scaled_,
                                                          mlpWs_);
                std::sort(v, v + kCommitteeSize);
                m = v[kCommitteeSize / 2];
            } else {
                // Warm-started bundle without a committee.
                m = bundle_.nets[t].predictScalar(scaled_, mlpWs_);
            }
        }
        if (haveLin)
            l = bundle_.linears[t].predict(scaled_);
        if (haveMlp && haveLin) {
            dis += std::abs(m - l);
            switch (blend_) {
            case Blend::Average: out[t] = 0.5 * (m + l); break;
            case Blend::MlpOnly: out[t] = m; break;
            case Blend::LinearOnly: out[t] = l; break;
            }
        } else {
            out[t] = haveMlp ? m : l;
        }
    }
    if (disagreement)
        *disagreement = dis;
}

void
SurrogateStrategy::propose(int round, const std::vector<size_t>& pool,
                           size_t budget, const ParetoFront& front,
                           std::vector<size_t>& out, RoundStats& rs)
{
    if (cfg_.maxRounds > 0 && round >= cfg_.maxRounds)
        return;

    // Geometric round schedule: small commitments while the model is
    // weak, larger as it sharpens. The auto cold-start size scales
    // with the space dimensionality (fx_ carries nparams + 6 derived
    // slots): four seed points per parameter, clamped to [8, 16].
    int initial = cfg_.initialPoints;
    if (initial <= 0) {
        const int nparams = std::max(1, int(fx_.count()) - 6);
        initial = std::min(16, std::max(8, 4 * nparams));
    }
    const double base = double(initial);
    const double growth = std::max(1.0, cfg_.roundGrowth);
    double want = base * std::pow(growth, double(round));
    size_t roundSize = size_t(std::min<double>(want, 1e18));
    roundSize = std::min({roundSize, budget, pool.size()});
    if (roundSize == 0)
        return;

    // Deterministic sample-without-replacement from `pick`'s prefix.
    auto drawRandom = [&](std::vector<size_t>& from, size_t n) {
        n = std::min(n, from.size());
        for (size_t k = 0; k < n; ++k) {
            const size_t j =
                k + size_t(rng_.uniformInt(
                        0, int64_t(from.size() - 1 - k)));
            std::swap(from[k], from[j]);
            out.push_back(from[k]);
        }
    };

    if (dirty_)
        train(rs);

    if (!fitted_) {
        // Cold start: a uniform random seed slice trains round 1.
        std::vector<size_t> cand(pool);
        drawRandom(cand, roundSize);
        return;
    }

    const auto t0 = Clock::now();
    // Map the front into scaled target space once; candidates are
    // then scored by their predicted dominance distance — the
    // Chebyshev gap to the nearest front entry, negative when the
    // prediction lands beyond the front (would dominate part of it).
    std::vector<std::pair<double, double>> f;
    f.reserve(front.size());
    for (const ParetoFront::Entry& e : front.entries())
        f.emplace_back(bundle_.targets.scaleColumn(
                           0, std::log2(1.0 + e.x)),
                       bundle_.targets.scaleColumn(
                           1, std::log2(1.0 + e.y)));

    preds_.resize(pool.size());
    std::vector<double> gap(pool.size());
    std::vector<double> disag(pool.size());
    double p[2];
    for (size_t k = 0; k < pool.size(); ++k) {
        predictScaled(points_[pool[k]].binding, p, &disag[k]);
        preds_[k] = {p[0], p[1]};
        double s;
        if (f.empty()) {
            s = p[0] + p[1];
        } else {
            s = 1e300;
            for (const auto& [fx, fy] : f)
                s = std::min(s, std::max(p[0] - fx, p[1] - fy));
        }
        gap[k] = s;
    }

    // Nondominated sort on the predictions: candidates on the first
    // predicted Pareto layer are the ones that could extend or fill
    // gaps in the true front; deeper layers are predicted-dominated.
    // The Chebyshev gap alone cannot make that distinction — a
    // gap-filler between two found front points scores *positive*
    // (there is no found point it beats on both axes), the same sign
    // as a dominated also-ran. Layer first, gap second.
    std::vector<int> layer(pool.size(), std::numeric_limits<int>::max());
    {
        std::vector<size_t> alive(pool.size());
        for (size_t k = 0; k < pool.size(); ++k)
            alive[k] = k;
        size_t ranked = 0;
        for (int l = 0; !alive.empty() && ranked < 4 * roundSize;
             ++l) {
            auto fr = paretoFront(
                alive.size(),
                [&](size_t i) { return preds_[alive[i]][0]; },
                [&](size_t i) { return preds_[alive[i]][1]; });
            std::vector<char> onFront(alive.size(), 0);
            for (size_t i : fr) {
                layer[alive[i]] = l;
                onFront[i] = 1;
            }
            ranked += fr.size();
            size_t w = 0;
            for (size_t i = 0; i < alive.size(); ++i)
                if (!onFront[i])
                    alive[w++] = alive[i];
            alive.resize(w);
        }
    }

    // Crowding distance within each ranked layer (NSGA-II): members
    // in sparse regions of the predicted front — above all, the two
    // endpoints — order first. ADRS against a reference front is
    // dominated by its extreme points, and a gap-score order alone
    // can starve them for several rounds.
    std::vector<double> crowd(pool.size(), 0.0);
    {
        std::vector<std::vector<size_t>> byLayer;
        for (size_t k = 0; k < pool.size(); ++k) {
            const int l = layer[k];
            if (l == std::numeric_limits<int>::max())
                continue;
            if (size_t(l) >= byLayer.size())
                byLayer.resize(size_t(l) + 1);
            byLayer[size_t(l)].push_back(k);
        }
        for (auto& members : byLayer) {
            if (members.size() <= 2) {
                for (size_t k : members)
                    crowd[k] = 1e300;
                continue;
            }
            for (int obj = 0; obj < 2; ++obj) {
                std::sort(members.begin(), members.end(),
                          [&](size_t a, size_t b) {
                              if (preds_[a][obj] != preds_[b][obj])
                                  return preds_[a][obj] <
                                         preds_[b][obj];
                              return a < b;
                          });
                const double span =
                    preds_[members.back()][obj] -
                    preds_[members.front()][obj];
                crowd[members.front()] = 1e300;
                crowd[members.back()] = 1e300;
                if (span <= 0)
                    continue;
                for (size_t i = 1; i + 1 < members.size(); ++i)
                    crowd[members[i]] +=
                        (preds_[members[i + 1]][obj] -
                         preds_[members[i - 1]][obj]) /
                        span;
            }
        }
    }

    scores_.clear();
    scores_.reserve(pool.size());
    for (size_t k = 0; k < pool.size(); ++k)
        scores_.emplace_back(gap[k], k);
    std::sort(scores_.begin(), scores_.end(),
              [&](const auto& a, const auto& b) {
                  if (layer[a.second] != layer[b.second])
                      return layer[a.second] < layer[b.second];
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second < b.second;
              });

    const size_t nRand = std::min(
        roundSize,
        size_t(std::ceil(cfg_.epsilon * double(roundSize))));
    const size_t nTop = roundSize - nRand;

    // Diverse top slice: the best-scored candidates often pile onto
    // one predicted front knee (many bindings, one predicted point),
    // while reaching the whole reference front needs picks spread
    // along it. Greedy passes with a doubling per-cell cap over a
    // grid on the predicted objectives keep score order *within* a
    // region but force coverage *across* regions.
    constexpr int kGrid = 24;
    auto cellOf = [&](const std::array<double, 2>& q) {
        auto lane = [](double v) {
            v = std::min(1.0, std::max(0.0, v));
            return std::min(kGrid - 1, int(v * kGrid));
        };
        return lane(q[0]) * kGrid + lane(q[1]);
    };
    std::vector<char> taken(pool.size(), 0);
    size_t picked = 0;
    // The predicted endpoints of the first layer go first: ADRS
    // against a reference front is dominated by its extreme points,
    // and the gap-score order below can starve them for rounds.
    for (size_t k = 0; k < pool.size() && picked < nTop; ++k) {
        if (layer[k] != 0 || crowd[k] < 1e300)
            continue;
        taken[k] = 1;
        out.push_back(pool[k]);
        if (++picked >= 4)
            break;
    }

    for (size_t cap = 1; picked < nTop; cap *= 2) {
        std::vector<uint32_t> used(size_t(kGrid) * kGrid, 0);
        for (const auto& [s, k] : scores_) {
            if (picked >= nTop)
                break;
            if (taken[k])
                continue;
            const int cell = cellOf(preds_[k]);
            if (used[size_t(cell)] >= cap)
                continue;
            ++used[size_t(cell)];
            taken[k] = 1;
            out.push_back(pool[k]);
            ++picked;
        }
    }
    // Exploration floor: the slice the ranking does not get. It
    // targets, in order: (a) parameter-space neighbors of current
    // front members — fronts are near-connected in parameter space,
    // so the tail points the model mispredicts usually sit one legal
    // step from a found one; (b) the pool's biggest model blind
    // spots, where the two families disagree most; (c) uniform
    // random picks, which need no model at all.
    size_t exLeft = nRand;

    const size_t nNbr = std::min(exLeft / 2, size_t(8));
    for (size_t nbr = 0;
         const ParetoFront::Entry& e : front.entries()) {
        if (nbr >= nNbr)
            break;
        const ParamBinding& fb = points_[e.index].binding;
        for (size_t pi = 0;
             pi < space_.legalValues().size() && nbr < nNbr; ++pi) {
            const auto& lv = space_.legalValues()[pi];
            const auto at = std::lower_bound(lv.begin(), lv.end(),
                                             fb.values[pi]);
            if (at == lv.end() || *at != fb.values[pi])
                continue;
            const long pos = at - lv.begin();
            for (long d : {-1L, 1L}) {
                const long np = pos + d;
                if (np < 0 || size_t(np) >= lv.size())
                    continue;
                std::vector<int64_t> nv = fb.values;
                nv[size_t(pi)] = lv[size_t(np)];
                const auto hit = bindingToIdx_.find(nv);
                if (hit == bindingToIdx_.end())
                    continue;
                const auto pk = std::lower_bound(
                    pool.begin(), pool.end(), hit->second);
                if (pk == pool.end() || *pk != hit->second)
                    continue;
                const size_t k = size_t(pk - pool.begin());
                if (taken[k])
                    continue;
                taken[k] = 1;
                out.push_back(pool[k]);
                --exLeft;
                if (++nbr >= nNbr)
                    break;
            }
        }
    }

    std::vector<size_t> rest;
    rest.reserve(pool.size());
    for (const auto& [s, k] : scores_)
        if (!taken[k])
            rest.push_back(k);
    const bool haveDisag = bundle_.nets.size() == 2 &&
                           bundle_.linears.size() == 2;
    if (haveDisag && exLeft > 0) {
        // Half the remaining slice chases disagreement, half stays
        // uniform: all-disagreement can fixate on one exotic region
        // for several rounds, which is the same failure mode it is
        // meant to prevent.
        std::sort(rest.begin(), rest.end(), [&](size_t a, size_t b) {
            if (disag[a] != disag[b])
                return disag[a] > disag[b];
            return a < b;
        });
        const size_t nDis = std::min(exLeft / 2, rest.size());
        for (size_t k = 0; k < nDis; ++k)
            out.push_back(pool[rest[k]]);
        exLeft -= nDis;
        rest.erase(rest.begin(), rest.begin() + long(nDis));
    }
    for (size_t& k : rest)
        k = pool[k];
    drawRandom(rest, exLeft);

    const double dt = secondsSince(t0);
    rs.rankSeconds += dt;
    obs::recordSpan("dse", "surrogate-rank", obs::toMicros(t0),
                    uint64_t(dt * 1e6));
}

void
SurrogateStrategy::finish(DiagSink& sink)
{
    if (cfg_.saveModelPath.empty())
        return;
    if (dirty_) {
        RoundStats rs;
        train(rs);
    }
    auto warn = [&](DiagCode code, const std::string& msg) {
        Diag d;
        d.code = code;
        d.severity = DiagSeverity::Warning;
        d.stage = "surrogate";
        d.message = msg;
        sink.report(d);
    };
    if (!fitted_) {
        warn(DiagCode::UserError,
             "surrogate model not saved: nothing was trained (" +
                 std::to_string(trainX_.size()) +
                 " usable training point(s))");
        return;
    }
    std::ofstream os(cfg_.saveModelPath,
                     std::ios::trunc | std::ios::binary);
    if (os)
        ml::saveSurrogateBundle(os, bundle_);
    if (!os)
        warn(DiagCode::CheckpointIo, "cannot write surrogate model '" +
                                         cfg_.saveModelPath + "'");
}

std::unique_ptr<SearchStrategy>
makeStrategy(const ExploreConfig& cfg, const ParamSpace& space,
             const DesignPlan* plan,
             const std::vector<DesignPoint>& points, DiagSink& sink)
{
    if (cfg.strategy == StrategyKind::Random)
        return std::make_unique<RandomStrategy>();
    auto s = std::make_unique<SurrogateStrategy>(
        cfg.surrogate, cfg.seed, space, FeatureExtractor(space, plan),
        points);
    if (!cfg.surrogate.loadModelPath.empty())
        s->loadModel(cfg.surrogate.loadModelPath, sink);
    return s;
}

} // namespace dhdl::dse

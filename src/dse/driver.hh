/**
 * @file
 * The round-based search driver: the engine behind
 * Explorer::explore(). One run owns the full evaluate/checkpoint/
 * Pareto machinery; a pluggable SearchStrategy (dse/strategy.hh)
 * decides only *which* candidates each round spends budget on.
 *
 * Per round r the driver:
 *
 *  1. asks the strategy to propose up to the remaining budget from
 *     the pool (un-evaluated, in-shard candidates, ascending index);
 *  2. evaluates the proposal — threaded, batched, in checkpoint
 *     slices — exactly as the historical one-shot sweep did;
 *  3. feeds the results back via observe(), folds valid points into
 *     the incremental ParetoFront, and drops evaluated candidates
 *     from the pool.
 *
 * The loop ends on an empty proposal, an exhausted budget, or an
 * expired wall clock. With RandomStrategy (one round proposing the
 * whole pool in sample order) every byte of the result — points,
 * diagnostic order, Pareto front, checkpoint files — is identical to
 * the pre-driver explore(): the golden, shard-merge and
 * batch-equivalence suites pin this.
 */

#ifndef DHDL_DSE_DRIVER_HH
#define DHDL_DSE_DRIVER_HH

#include "dse/explorer.hh"

namespace dhdl::dse {

/** One exploration engine bound to calibrated estimators. */
class SearchDriver
{
  public:
    SearchDriver(const est::AreaEstimator& area,
                 const est::RuntimeEstimator& runtime)
        : area_(area), runtime_(runtime) {}

    /** Run the round loop; the workhorse of Explorer::explore(). */
    ExploreResult run(const Graph& g, const ExploreConfig& cfg) const;

  private:
    const est::AreaEstimator& area_;
    const est::RuntimeEstimator& runtime_;
};

} // namespace dhdl::dse

#endif // DHDL_DSE_DRIVER_HH

#include "dse/explorer.hh"

#include <algorithm>

#include "dse/driver.hh"

namespace dhdl::dse {

std::vector<ParamBinding>
sampleGlobal(const ParamSpace& space, const ExploreConfig& cfg,
             DiagSink* sink)
{
    // Small pruned spaces are walked exhaustively; larger ones are
    // randomly sampled (the paper samples up to 75,000 legal points).
    // Either path is deterministic per seed, which checkpoint/resume,
    // shard merge and the thread-count invariance all rely on.
    return space.sizeEstimate() <= double(cfg.maxPoints)
               ? space.enumerate(cfg.maxPoints)
               : space.sample(cfg.maxPoints, cfg.seed, sink);
}

void
sortDiags(std::vector<Diag>& diags)
{
    std::sort(diags.begin(), diags.end(),
              [](const Diag& a, const Diag& b) {
                  if (a.pointIndex != b.pointIndex)
                      return a.pointIndex < b.pointIndex;
                  if (a.stage != b.stage)
                      return a.stage < b.stage;
                  return a.message < b.message;
              });
}

std::vector<size_t>
paretoOf(const std::vector<DesignPoint>& points)
{
    // Same algorithm as paretoFront, with the objectives gathered
    // into flat arrays first: the sort comparator then reads two
    // doubles instead of calling through std::function four times,
    // which matters when every explore() call ends here. The
    // comparison outcomes (and hence the sorted order and front) are
    // exactly paretoFront's — including the index tie-break that
    // makes the front canonical under (x, y) duplicates, which the
    // incremental ParetoFront reproduces insertion-order-free.
    std::vector<size_t> valid;
    std::vector<double> xs, ys;
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].valid) {
            valid.push_back(i);
            xs.push_back(points[i].area.alms);
            ys.push_back(double(points[i].cycles));
        }
    }
    std::vector<size_t> order(valid.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (xs[a] != xs[b])
            return xs[a] < xs[b];
        if (ys[a] != ys[b])
            return ys[a] < ys[b];
        return a < b;
    });

    std::vector<size_t> out;
    double best_y = 1e300;
    for (size_t i : order) {
        if (ys[i] < best_y) {
            out.push_back(valid[i]);
            best_y = ys[i];
        }
    }
    return out;
}

std::optional<size_t>
ExploreResult::bestIndex() const
{
    std::optional<size_t> best;
    for (size_t i = 0; i < points.size(); ++i) {
        if (!points[i].valid)
            continue;
        if (!best || points[i].cycles < points[*best].cycles)
            best = i;
    }
    return best;
}

std::vector<std::pair<std::string, size_t>>
ExploreResult::failureSummary(size_t top) const
{
    return topReasons(diags, top);
}

DesignPoint
Explorer::evaluate(const Graph& g, ParamBinding b) const
{
    Evaluator ev(area_, runtime_, g);
    return ev.evaluate(std::move(b));
}

Status
Explorer::evaluateGuarded(const Graph& g, DesignPoint& p) const
{
    Evaluator ev(area_, runtime_, g);
    return ev.evaluatePoint(p, 0, nullptr);
}

ExploreResult
Explorer::explore(const Graph& g, const ExploreConfig& cfg) const
{
    return SearchDriver(area_, runtime_).run(g, cfg);
}

} // namespace dhdl::dse

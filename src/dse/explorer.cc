#include "dse/explorer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>

#include "cpu/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dhdl::dse {

namespace {

constexpr const char* kCheckpointMagic = "# dhdl-explore-checkpoint v1";

/**
 * Persist every evaluated point. The checkpoint carries the fields
 * that reports and the Pareto extraction consume (resource totals,
 * cycles, validity, failure data), not the full per-effect area
 * breakdown; a resumed run reproduces the identical front and stats.
 * The write is atomic (temp file + rename) so an interrupt mid-write
 * cannot corrupt an existing checkpoint.
 */
bool
writeCheckpoint(const std::string& path, uint64_t seed, size_t nparams,
                const std::vector<DesignPoint>& points)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        os << kCheckpointMagic << "\n";
        os << "# seed=" << seed << " total=" << points.size()
           << " nparams=" << nparams << "\n";
        os << "# columns: index,valid,failed,failcode,alms,luts,regs,"
              "dsps,brams,cycles,binding,failreason\n";
        os << std::setprecision(17);
        for (size_t i = 0; i < points.size(); ++i) {
            const DesignPoint& p = points[i];
            if (!p.evaluated)
                continue;
            os << i << "," << (p.valid ? 1 : 0) << ","
               << (p.failed ? 1 : 0) << ","
               << diagCodeName(p.failCode) << "," << p.area.alms
               << "," << p.area.luts << "," << p.area.regs << ","
               << p.area.dsps << "," << p.area.brams << ","
               << p.cycles << ",";
            for (size_t j = 0; j < p.binding.values.size(); ++j)
                os << (j ? " " : "") << p.binding.values[j];
            // The reason goes last so it may contain commas; strip
            // newlines to keep the format line-oriented.
            std::string reason = p.failReason;
            std::replace(reason.begin(), reason.end(), '\n', ' ');
            os << "," << reason << "\n";
        }
        if (!os)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/** Split a row on the first n commas; element n is the remainder. */
std::vector<std::string>
splitFields(const std::string& line, size_t n)
{
    std::vector<std::string> out;
    size_t pos = 0;
    for (size_t i = 0; i < n; ++i) {
        size_t comma = line.find(',', pos);
        if (comma == std::string::npos)
            return out; // short row; caller rejects
        out.push_back(line.substr(pos, comma - pos));
        pos = comma + 1;
    }
    out.push_back(line.substr(pos));
    return out;
}

/**
 * Restore evaluated points from a checkpoint. A missing file or a
 * header that disagrees with this run (seed, sample count, parameter
 * count) yields a warning diagnostic and restores nothing; rows whose
 * binding does not match the freshly sampled binding at that index
 * are skipped the same way. Returns the number of restored points.
 */
size_t
loadCheckpoint(const std::string& path, uint64_t seed, size_t nparams,
               std::vector<DesignPoint>& points, DiagSink& sink)
{
    auto warn = [&](const std::string& msg) {
        Diag d;
        d.code = DiagCode::CheckpointIo;
        d.severity = DiagSeverity::Warning;
        d.stage = "checkpoint";
        d.message = msg;
        sink.report(d);
        return size_t(0);
    };

    std::ifstream is(path);
    if (!is)
        return warn("checkpoint '" + path +
                    "' not found; starting fresh");
    std::string line;
    if (!std::getline(is, line) || line != kCheckpointMagic)
        return warn("checkpoint '" + path +
                    "' has an unknown format; ignored");
    unsigned long long ck_seed = 0;
    size_t ck_total = 0, ck_nparams = 0;
    if (!std::getline(is, line) ||
        std::sscanf(line.c_str(), "# seed=%llu total=%zu nparams=%zu",
                    &ck_seed, &ck_total, &ck_nparams) != 3)
        return warn("checkpoint '" + path +
                    "' has a malformed header; ignored");
    if (ck_seed != seed || ck_total != points.size() ||
        ck_nparams != nparams)
        return warn("checkpoint '" + path +
                    "' was written by a different exploration "
                    "(seed/points/params mismatch); ignored");

    size_t restored = 0, rejected = 0;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        auto f = splitFields(line, 11);
        if (f.size() != 12) {
            ++rejected;
            continue;
        }
        size_t idx = 0;
        try {
            idx = size_t(std::stoull(f[0]));
        } catch (const std::exception&) {
            ++rejected;
            continue;
        }
        if (idx >= points.size() || points[idx].evaluated) {
            ++rejected;
            continue;
        }
        DesignPoint& p = points[idx];
        // Guard against a stale file: the stored binding must match
        // the binding sampled at this index this run.
        std::istringstream bs(f[10]);
        std::vector<int64_t> vals;
        int64_t v;
        while (bs >> v)
            vals.push_back(v);
        if (vals != p.binding.values) {
            ++rejected;
            continue;
        }
        try {
            p.valid = f[1] == "1";
            p.failed = f[2] == "1";
            p.failCode = diagCodeFromName(f[3]);
            p.area.alms = std::stod(f[4]);
            p.area.luts = std::stod(f[5]);
            p.area.regs = std::stod(f[6]);
            p.area.dsps = std::stod(f[7]);
            p.area.brams = std::stod(f[8]);
            p.cycles = std::stod(f[9]);
        } catch (const std::exception&) {
            p.valid = p.failed = false;
            p.failCode = DiagCode::Ok;
            ++rejected;
            continue;
        }
        p.failReason = f[11];
        p.evaluated = true;
        ++restored;
        if (p.failed) {
            // Re-surface the failure so failureSummary() covers
            // restored points too.
            Diag d;
            d.code = p.failCode;
            d.severity = DiagSeverity::Error;
            d.stage = "checkpoint";
            d.message = p.failReason;
            d.pointIndex = int64_t(idx);
            sink.report(d);
        }
    }
    if (rejected > 0)
        warn("checkpoint '" + path + "': " + std::to_string(rejected) +
             " stale/malformed row(s) ignored");
    return restored;
}

} // namespace

std::optional<size_t>
ExploreResult::bestIndex() const
{
    std::optional<size_t> best;
    for (size_t i = 0; i < points.size(); ++i) {
        if (!points[i].valid)
            continue;
        if (!best || points[i].cycles < points[*best].cycles)
            best = i;
    }
    return best;
}

std::vector<std::pair<std::string, size_t>>
ExploreResult::failureSummary(size_t top) const
{
    return topReasons(diags, top);
}

DesignPoint
Explorer::evaluate(const Graph& g, ParamBinding b) const
{
    Evaluator ev(area_, runtime_, g);
    return ev.evaluate(std::move(b));
}

Status
Explorer::evaluateGuarded(const Graph& g, DesignPoint& p) const
{
    Evaluator ev(area_, runtime_, g);
    return ev.evaluatePoint(p, 0, nullptr);
}

ExploreResult
Explorer::explore(const Graph& g, const ExploreConfig& cfg) const
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    DHDL_OBS_SPAN("dse", "explore");

    ParamSpace space(g);
    ExploreResult res;
    DiagSink sink;

    // Small pruned spaces are walked exhaustively; larger ones are
    // randomly sampled (the paper samples up to 75,000 legal points).
    // Either path is deterministic per seed, which checkpoint/resume
    // and the thread-count invariance both rely on.
    auto bindings =
        space.sizeEstimate() <= double(cfg.maxPoints)
            ? space.enumerate(cfg.maxPoints)
            : space.sample(cfg.maxPoints, cfg.seed);
    res.points.resize(bindings.size());
    for (size_t i = 0; i < bindings.size(); ++i)
        res.points[i].binding = std::move(bindings[i]);
    res.stats.total = res.points.size();

    const size_t nparams = g.params().size();
    if (cfg.resume && !cfg.checkpointPath.empty())
        res.stats.resumed = loadCheckpoint(
            cfg.checkpointPath, cfg.seed, nparams, res.points, sink);

    // Work list: everything not restored from the checkpoint, capped
    // by the evaluation-count budget.
    std::vector<size_t> todo;
    todo.reserve(res.points.size());
    for (size_t i = 0; i < res.points.size(); ++i) {
        if (!res.points[i].evaluated)
            todo.push_back(i);
    }
    if (cfg.evalBudget > 0 && int64_t(todo.size()) > cfg.evalBudget) {
        res.stats.evalBudgetHit = true;
        Diag d;
        d.code = DiagCode::EvalBudgetExceeded;
        d.severity = DiagSeverity::Warning;
        d.stage = "explore";
        d.message = "evaluation budget of " +
                    std::to_string(cfg.evalBudget) + " points leaves " +
                    std::to_string(todo.size() - size_t(cfg.evalBudget)) +
                    " un-evaluated";
        sink.report(d);
        todo.resize(size_t(cfg.evalBudget));
    }

    // Wall-clock budget: checked before each point; once expired,
    // remaining points are skipped (and later resumable).
    std::atomic<bool> outOfTime{false};
    const auto deadline =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(
                     cfg.timeBudgetSeconds > 0 ? cfg.timeBudgetSeconds
                                               : 0));
    auto expired = [&]() {
        if (cfg.timeBudgetSeconds <= 0)
            return false;
        if (outOfTime.load(std::memory_order_relaxed))
            return true;
        if (Clock::now() >= deadline) {
            outOfTime.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    };

    // Compile the binding-invariant plan exactly once; every worker
    // evaluator shares it read-only. A broken graph leaves the plan
    // null and each point reports the error individually.
    const auto planT0 = Clock::now();
    auto plan = Evaluator::tryCompile(g);
    res.stats.planSeconds =
        std::chrono::duration<double>(Clock::now() - planT0).count();
    obs::recordSpan("dse", "plan-compile", obs::toMicros(planT0),
                    uint64_t(res.stats.planSeconds * 1e6));

    const auto* hook = cfg.preEvaluate ? &cfg.preEvaluate : nullptr;
    auto evalOne = [&](Evaluator& ev, size_t idx) {
        if (expired())
            return;
        Status s = ev.evaluatePoint(res.points[idx], idx, hook);
        if (!s.ok())
            sink.report(s.diag());
    };

    std::mutex statsMu;
    auto mergeTimes = [&](const Evaluator& ev) {
        std::lock_guard<std::mutex> lk(statsMu);
        res.stats.stages += ev.times();
    };

    std::unique_ptr<cpu::ThreadPool> pool;
    if (cfg.threads > 1)
        pool = std::make_unique<cpu::ThreadPool>(cfg.threads);

    // The serial path reuses one evaluator (and its Inst overlay and
    // estimator scratch) across every slice.
    std::optional<Evaluator> serial;
    if (!pool)
        serial.emplace(area_, runtime_, g, plan);

    // Evaluate in slices so periodic checkpoints land between
    // parallel batches; without checkpointing there is one slice.
    const int64_t n = int64_t(todo.size());
    const int64_t slice = cfg.checkpointPath.empty()
                              ? std::max<int64_t>(n, 1)
                              : std::max<int64_t>(1, cfg.checkpointEvery);
    bool ckFailed = false;
    auto checkpoint = [&]() {
        if (cfg.checkpointPath.empty())
            return;
        if (!writeCheckpoint(cfg.checkpointPath, cfg.seed, nparams,
                             res.points) &&
            !ckFailed) {
            ckFailed = true;
            Diag d;
            d.code = DiagCode::CheckpointIo;
            d.severity = DiagSeverity::Warning;
            d.stage = "checkpoint";
            d.message = "cannot write checkpoint '" +
                        cfg.checkpointPath + "'";
            sink.report(d);
        }
    };

    for (int64_t lo = 0; lo < n; lo += slice) {
        const int64_t hi = std::min(n, lo + slice);
        if (pool) {
            pool->parallelFor(hi - lo, [&](int64_t a, int64_t b) {
                Evaluator ev(area_, runtime_, g, plan);
                for (int64_t i = a; i < b; ++i)
                    evalOne(ev, todo[size_t(lo + i)]);
                mergeTimes(ev);
            });
        } else {
            for (int64_t i = lo; i < hi; ++i)
                evalOne(*serial, todo[size_t(i)]);
        }
        checkpoint();
        if (outOfTime.load())
            break;
    }
    if (serial)
        mergeTimes(*serial);

    // Aggregate stats; points skipped by a budget stay un-evaluated.
    for (const DesignPoint& p : res.points) {
        res.stats.evaluated += p.evaluated ? 1 : 0;
        res.stats.failed += p.failed ? 1 : 0;
        res.stats.valid += p.valid ? 1 : 0;
    }
    res.stats.skipped = res.stats.total - res.stats.evaluated;
    if (outOfTime.load()) {
        res.stats.timeBudgetHit = true;
        Diag d;
        d.code = DiagCode::TimeBudgetExceeded;
        d.severity = DiagSeverity::Warning;
        d.stage = "explore";
        d.message = "wall-clock budget of " +
                    std::to_string(cfg.timeBudgetSeconds) +
                    "s expired; " + std::to_string(res.stats.skipped) +
                    " point(s) skipped";
        sink.report(d);
    }

    // Deterministic diagnostic order regardless of thread count.
    res.diags = sink.drain();
    std::sort(res.diags.begin(), res.diags.end(),
              [](const Diag& a, const Diag& b) {
                  if (a.pointIndex != b.pointIndex)
                      return a.pointIndex < b.pointIndex;
                  if (a.stage != b.stage)
                      return a.stage < b.stage;
                  return a.message < b.message;
              });

    // Pareto over valid points only, then map back to full indices.
    std::vector<size_t> valid;
    for (size_t i = 0; i < res.points.size(); ++i) {
        if (res.points[i].valid)
            valid.push_back(i);
    }
    auto front = paretoFront(
        valid.size(),
        [&](size_t i) { return res.points[valid[i]].area.alms; },
        [&](size_t i) { return res.points[valid[i]].cycles; });
    res.pareto.reserve(front.size());
    for (size_t i : front)
        res.pareto.push_back(valid[i]);

    res.stats.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    // Fold the run into the process-wide registry: these counters are
    // what `dhdlc --profile`, `--metrics` and the throughput bench
    // render. One source of truth with ExploreStats — same numbers,
    // recorded once per explore() call.
    if (obs::enabled()) {
        static const obs::Counter cRuns("dse.explore.runs");
        static const obs::Counter cUs("dse.explore.us");
        static const obs::Counter cPlanUs("dse.plan.compile.us");
        static const obs::Counter cEval("dse.points.evaluated");
        static const obs::Counter cFail("dse.points.failed");
        static const obs::Counter cValid("dse.points.valid");
        static const obs::Counter cSkip("dse.points.skipped");
        static const obs::Counter cDiags("dse.diags");
        static const obs::Counter cInst("dse.stage.instantiate.us");
        static const obs::Counter cArea("dse.stage.area.us");
        static const obs::Counter cRt("dse.stage.runtime.us");
        static const obs::Counter cVal("dse.stage.validate.us");
        auto us = [](double s) {
            return s > 0 ? uint64_t(s * 1e6) : uint64_t(0);
        };
        cRuns.add(1);
        cUs.add(us(res.stats.seconds));
        cPlanUs.add(us(res.stats.planSeconds));
        cEval.add(res.stats.evaluated);
        cFail.add(res.stats.failed);
        cValid.add(res.stats.valid);
        cSkip.add(res.stats.skipped);
        cDiags.add(res.diags.size());
        cInst.add(us(res.stats.stages.instantiate));
        cArea.add(us(res.stats.stages.area));
        cRt.add(us(res.stats.stages.runtime));
        cVal.add(us(res.stats.stages.validate));
    }
    return res;
}

} // namespace dhdl::dse

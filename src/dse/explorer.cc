#include "dse/explorer.hh"

namespace dhdl::dse {

size_t
ExploreResult::bestIndex() const
{
    size_t best = SIZE_MAX;
    for (size_t i = 0; i < points.size(); ++i) {
        if (!points[i].valid)
            continue;
        if (best == SIZE_MAX || points[i].cycles < points[best].cycles)
            best = i;
    }
    return best;
}

DesignPoint
Explorer::evaluate(const Graph& g, ParamBinding b) const
{
    DesignPoint p;
    p.binding = std::move(b);
    Inst inst(g, p.binding);
    p.area = area_.estimate(inst);
    p.cycles = runtime_.estimate(inst).cycles;
    p.valid = p.area.fits(area_.device());
    return p;
}

ExploreResult
Explorer::explore(const Graph& g, const ExploreConfig& cfg) const
{
    ParamSpace space(g);
    ExploreResult res;
    // Small pruned spaces are walked exhaustively; larger ones are
    // randomly sampled (the paper samples up to 75,000 legal points).
    auto bindings =
        space.sizeEstimate() <= double(cfg.maxPoints)
            ? space.enumerate(cfg.maxPoints)
            : space.sample(cfg.maxPoints, cfg.seed);
    res.points.reserve(bindings.size());
    for (auto& b : bindings)
        res.points.push_back(evaluate(g, std::move(b)));

    // Pareto over valid points only, then map back to full indices.
    std::vector<size_t> valid;
    for (size_t i = 0; i < res.points.size(); ++i) {
        if (res.points[i].valid)
            valid.push_back(i);
    }
    auto front = paretoFront(
        valid.size(),
        [&](size_t i) { return res.points[valid[i]].area.alms; },
        [&](size_t i) { return res.points[valid[i]].cycles; });
    res.pareto.reserve(front.size());
    for (size_t i : front)
        res.pareto.push_back(valid[i]);
    return res;
}

} // namespace dhdl::dse

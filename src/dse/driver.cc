#include "dse/driver.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "core/faultinject.hh"
#include "cpu/thread_pool.hh"
#include "dse/checkpoint.hh"
#include "dse/strategy.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dhdl::dse {

const char*
strategyName(StrategyKind k)
{
    switch (k) {
    case StrategyKind::Surrogate:
        return "surrogate";
    case StrategyKind::Random:
        break;
    }
    return "random";
}

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Per-round counters under a dynamic prefix (cold path: once per
 *  round, not per point). */
void
recordRound(const RoundStats& rs)
{
    if (!obs::enabled())
        return;
    auto us = [](double s) {
        return s > 0 ? uint64_t(s * 1e6) : uint64_t(0);
    };
    const std::string p =
        "dse.round." + std::to_string(rs.round) + ".";
    obs::addCounter(p + "pool", rs.poolBefore);
    obs::addCounter(p + "proposed", rs.proposed);
    obs::addCounter(p + "evaluated", rs.evaluated);
    obs::addCounter(p + "front", rs.frontSize);
    obs::addCounter(p + "propose.us", us(rs.proposeSeconds));
    obs::addCounter(p + "train.us", us(rs.trainSeconds));
    obs::addCounter(p + "rank.us", us(rs.rankSeconds));
    obs::addCounter(p + "eval.us", us(rs.evalSeconds));
    obs::addCounter("dse.round.count", 1);
    obs::addCounter("dse.surrogate.train.us", us(rs.trainSeconds));
    obs::addCounter("dse.surrogate.rank.us", us(rs.rankSeconds));
}

} // namespace

ExploreResult
SearchDriver::run(const Graph& g, const ExploreConfig& cfg) const
{
    const auto t0 = Clock::now();
    DHDL_OBS_SPAN("dse", "explore");

    require(cfg.shardCount >= 1 && cfg.shardIndex >= 0 &&
                cfg.shardIndex < cfg.shardCount,
            "shard index must satisfy 0 <= index < count");

    ParamSpace space(g);
    ExploreResult res;
    DiagSink sink;

    auto bindings = sampleGlobal(space, cfg, &sink);
    res.points.resize(bindings.size());
    for (size_t i = 0; i < bindings.size(); ++i)
        res.points[i].binding = std::move(bindings[i]);
    res.stats.requested = size_t(std::max(0, cfg.maxPoints));
    res.stats.total = res.points.size();

    // The meta block re-serializes the design and the space to hash
    // them; skip that entirely when no checkpoint file is involved.
    CheckpointMeta meta;
    if (!cfg.checkpointPath.empty()) {
        meta = makeCheckpointMeta(g, space, cfg.seed, res.points.size());
        meta.strategy = strategyName(cfg.strategy);
    }
    if (cfg.resume && !cfg.checkpointPath.empty()) {
        CheckpointLoadStats ls;
        Status st = loadCheckpointFile(cfg.checkpointPath, g, meta,
                                       res.points, sink, &ls);
        if (!st.ok()) {
            // A refused checkpoint (missing, or written by a
            // different design/seed/space) never merges; the run
            // restarts fresh and says so.
            Diag d = st.diag();
            d.severity = DiagSeverity::Warning;
            d.message += "; starting fresh";
            sink.report(d);
        }
        res.stats.resumed = ls.restored;
        res.stats.ckptTruncated = ls.truncated;
        res.stats.ckptCorrupt = ls.corrupt;
    }

    // Candidate pool: this shard's slice of everything not restored
    // from the checkpoint, in sample order. Strategies draw from it;
    // the evaluation-count budget caps how much of it any strategy
    // may spend.
    std::vector<size_t> pool;
    pool.reserve(res.points.size());
    for (size_t i = 0; i < res.points.size(); ++i) {
        if (res.points[i].evaluated)
            continue;
        if (cfg.shardCount > 1 &&
            int(i % size_t(cfg.shardCount)) != cfg.shardIndex) {
            ++res.stats.notInShard;
            continue;
        }
        pool.push_back(i);
    }
    int64_t remaining = int64_t(pool.size());
    if (cfg.evalBudget > 0 && int64_t(pool.size()) > cfg.evalBudget) {
        res.stats.evalBudgetHit = true;
        Diag d;
        d.code = DiagCode::EvalBudgetExceeded;
        d.severity = DiagSeverity::Warning;
        d.stage = "explore";
        d.message = "evaluation budget of " +
                    std::to_string(cfg.evalBudget) + " points leaves " +
                    std::to_string(pool.size() - size_t(cfg.evalBudget)) +
                    " un-evaluated";
        sink.report(d);
        remaining = cfg.evalBudget;
    }

    // Wall-clock budget: checked before each point; once expired,
    // remaining points are skipped (and later resumable). A
    // cooperative cancel (cfg.cancel) halts through the same seam so
    // cancellation is exactly as prompt — and as resumable — as a
    // budget expiry.
    std::atomic<bool> outOfTime{false};
    std::atomic<bool> cancelled{false};
    const auto deadline =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(
                     cfg.timeBudgetSeconds > 0 ? cfg.timeBudgetSeconds
                                               : 0));
    auto expired = [&]() {
        if (cfg.cancel) {
            if (cancelled.load(std::memory_order_relaxed))
                return true;
            if (cfg.cancel->load(std::memory_order_relaxed)) {
                cancelled.store(true, std::memory_order_relaxed);
                return true;
            }
        }
        if (cfg.timeBudgetSeconds <= 0)
            return false;
        if (outOfTime.load(std::memory_order_relaxed))
            return true;
        if (Clock::now() >= deadline) {
            outOfTime.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    };
    auto halted = [&]() {
        return outOfTime.load() || cancelled.load();
    };

    // Compile the binding-invariant plan exactly once; every worker
    // evaluator shares it read-only. A broken graph leaves the plan
    // null and each point reports the error individually. A caller
    // that already holds the plan (the serving layer's plan cache)
    // passes it in and the compile — span included — never happens.
    auto plan = cfg.plan;
    if (!plan) {
        const auto planT0 = Clock::now();
        plan = Evaluator::tryCompile(g);
        res.stats.planSeconds = secondsSince(planT0);
        obs::recordSpan("dse", "plan-compile", obs::toMicros(planT0),
                        uint64_t(res.stats.planSeconds * 1e6));
    }

    auto strategy =
        makeStrategy(cfg, space, plan.get(), res.points, sink);

    // Incremental Pareto front over everything evaluated so far,
    // seeded with checkpoint-restored points in index order.
    ParetoFront front;
    for (size_t i = 0; i < res.points.size(); ++i) {
        const DesignPoint& p = res.points[i];
        if (p.evaluated && p.valid)
            front.insert(i, p.area.alms, double(p.cycles));
    }

    const auto* hook = cfg.preEvaluate ? &cfg.preEvaluate : nullptr;
    // Chaos seams (disarmed: one relaxed load). The crash is a real
    // SIGKILL — exactly what the durable checkpoint format and the
    // shard supervisor exist to survive. The batched path fires the
    // seams once per point after its batch, so crash-after-N-evals
    // counting is unchanged (the crash lands on a batch boundary,
    // which resume converges from identically).
    auto faultSeams = [&](size_t evals) {
        if (!fault::active())
            return;
        for (size_t k = 0; k < evals; ++k) {
            if (fault::hit(fault::Point::CrashAfterEvals))
                fault::crashHard();
            if (fault::hit(fault::Point::HangAfterEvals))
                fault::sleepFor(fault::hangSeconds());
        }
    };
    // The current round's proposal; the evaluation lambdas index it.
    std::vector<size_t> proposed;
    auto evalOne = [&](Evaluator& ev, size_t idx) {
        if (expired())
            return;
        Status s = ev.evaluatePoint(res.points[idx], idx, hook);
        if (!s.ok())
            sink.report(s.diag());
        faultSeams(1);
    };
    // Batched handout: contiguous runs of the proposal, inside one
    // worker's range, inside one checkpoint slice. Result order is
    // indexed by global point index, so batching cannot reorder it.
    const int64_t bsz = std::max<int64_t>(1, cfg.batchSize);
    auto evalRange = [&](Evaluator& ev, int64_t a, int64_t b) {
        for (int64_t s = a; s < b; s += bsz) {
            if (expired())
                return;
            const size_t bn = size_t(std::min(bsz, b - s));
            ev.evaluateBatch(res.points, &proposed[size_t(s)], bn,
                             hook, sink);
            faultSeams(bn);
        }
    };

    std::mutex statsMu;
    auto mergeTimes = [&](const Evaluator& ev) {
        std::lock_guard<std::mutex> lk(statsMu);
        res.stats.stages += ev.times();
    };

    std::unique_ptr<cpu::ThreadPool> tpool;
    if (cfg.threads > 1)
        tpool = std::make_unique<cpu::ThreadPool>(cfg.threads);

    // The serial path reuses one evaluator (and its Inst overlay and
    // estimator scratch) across every slice of every round.
    std::optional<Evaluator> serial;
    if (!tpool)
        serial.emplace(area_, runtime_, g, plan);

    bool ckFailed = false;
    auto checkpoint = [&]() {
        if (cfg.checkpointPath.empty())
            return;
        if (!writeCheckpointFile(cfg.checkpointPath, meta,
                                 res.points) &&
            !ckFailed) {
            ckFailed = true;
            Diag d;
            d.code = DiagCode::CheckpointIo;
            d.severity = DiagSeverity::Warning;
            d.stage = "checkpoint";
            d.message = "cannot write checkpoint '" +
                        cfg.checkpointPath + "'";
            sink.report(d);
        }
    };

    const bool batched = cfg.batchSize > 0;
    for (int round = 0; remaining > 0; ++round) {
        RoundStats rs;
        rs.round = round;
        rs.poolBefore = pool.size();

        proposed.clear();
        const auto pT0 = Clock::now();
        strategy->propose(round, pool, size_t(remaining), front,
                          proposed, rs);
        rs.proposeSeconds = secondsSince(pT0);
        if (proposed.empty())
            break;
        rs.proposed = proposed.size();
        for (size_t idx : proposed)
            res.points[idx].round = round;

        // Evaluate in slices so periodic checkpoints land between
        // parallel batches; without checkpointing there is one slice.
        const int64_t n = int64_t(proposed.size());
        const int64_t slice =
            cfg.checkpointPath.empty()
                ? std::max<int64_t>(n, 1)
                : std::max<int64_t>(1, cfg.checkpointEvery);
        const auto eT0 = Clock::now();
        for (int64_t lo = 0; lo < n; lo += slice) {
            const int64_t hi = std::min(n, lo + slice);
            if (tpool) {
                tpool->parallelFor(hi - lo, [&](int64_t a, int64_t b) {
                    Evaluator ev(area_, runtime_, g, plan);
                    if (batched)
                        evalRange(ev, lo + a, lo + b);
                    else
                        for (int64_t i = a; i < b; ++i)
                            evalOne(ev, proposed[size_t(lo + i)]);
                    mergeTimes(ev);
                });
            } else if (batched) {
                evalRange(*serial, lo, hi);
            } else {
                for (int64_t i = lo; i < hi; ++i)
                    evalOne(*serial, proposed[size_t(i)]);
            }
            checkpoint();
            if (halted())
                break;
        }
        rs.evalSeconds = secondsSince(eT0);

        strategy->observe(round, res.points, proposed);
        for (size_t idx : proposed) {
            const DesignPoint& p = res.points[idx];
            if (!p.evaluated)
                continue;
            ++rs.evaluated;
            rs.evalOrder.push_back(idx);
            if (p.valid)
                front.insert(idx, p.area.alms, double(p.cycles));
        }
        rs.frontSize = front.size();
        remaining -= int64_t(rs.evaluated);

        // Spent candidates leave the pool; proposed-but-skipped ones
        // (an expired clock) stay, and the next resume retries them.
        size_t w = 0;
        for (size_t idx : pool)
            if (!res.points[idx].evaluated)
                pool[w++] = idx;
        pool.resize(w);

        recordRound(rs);
        res.stats.rounds.push_back(rs);
        if (cfg.onRound)
            cfg.onRound(res.stats.rounds.back(), front, res.points);
        if (halted())
            break;
    }
    if (serial)
        mergeTimes(*serial);
    strategy->finish(sink);

    // Aggregate stats; points skipped by a budget stay un-evaluated.
    for (const DesignPoint& p : res.points) {
        res.stats.evaluated += p.evaluated ? 1 : 0;
        res.stats.failed += p.failed ? 1 : 0;
        res.stats.valid += p.valid ? 1 : 0;
    }
    res.stats.skipped =
        res.stats.total - res.stats.evaluated - res.stats.notInShard;
    if (outOfTime.load()) {
        res.stats.timeBudgetHit = true;
        Diag d;
        d.code = DiagCode::TimeBudgetExceeded;
        d.severity = DiagSeverity::Warning;
        d.stage = "explore";
        d.message = "wall-clock budget of " +
                    std::to_string(cfg.timeBudgetSeconds) +
                    "s expired; " + std::to_string(res.stats.skipped) +
                    " point(s) skipped";
        sink.report(d);
    }
    if (cancelled.load()) {
        res.stats.cancelled = true;
        Diag d;
        d.code = DiagCode::Cancelled;
        d.severity = DiagSeverity::Warning;
        d.stage = "explore";
        d.message = "run cancelled; " +
                    std::to_string(res.stats.skipped) +
                    " point(s) skipped";
        sink.report(d);
    }

    // Deterministic diagnostic order regardless of thread count, then
    // the Pareto front — the incrementally maintained one, which the
    // property suite proves equal to a batch paretoOf() rebuild.
    res.diags = sink.drain();
    sortDiags(res.diags);
    res.pareto = front.indices();

    res.stats.seconds = secondsSince(t0);

    // Fold the run into the process-wide registry: these counters are
    // what `dhdlc --profile`, `--metrics` and the throughput bench
    // render. One source of truth with ExploreStats — same numbers,
    // recorded once per explore() call.
    if (obs::enabled()) {
        static const obs::Counter cRuns("dse.explore.runs");
        static const obs::Counter cUs("dse.explore.us");
        static const obs::Counter cPlanUs("dse.plan.compile.us");
        static const obs::Counter cEval("dse.points.evaluated");
        static const obs::Counter cFail("dse.points.failed");
        static const obs::Counter cValid("dse.points.valid");
        static const obs::Counter cSkip("dse.points.skipped");
        static const obs::Counter cDiags("dse.diags");
        static const obs::Counter cInst("dse.stage.instantiate.us");
        static const obs::Counter cArea("dse.stage.area.us");
        static const obs::Counter cRt("dse.stage.runtime.us");
        static const obs::Counter cVal("dse.stage.validate.us");
        auto us = [](double s) {
            return s > 0 ? uint64_t(s * 1e6) : uint64_t(0);
        };
        cRuns.add(1);
        cUs.add(us(res.stats.seconds));
        cPlanUs.add(us(res.stats.planSeconds));
        cEval.add(res.stats.evaluated);
        cFail.add(res.stats.failed);
        cValid.add(res.stats.valid);
        cSkip.add(res.stats.skipped);
        cDiags.add(res.diags.size());
        cInst.add(us(res.stats.stages.instantiate));
        cArea.add(us(res.stats.stages.area));
        cRt.add(us(res.stats.stages.runtime));
        cVal.add(us(res.stats.stages.validate));
    }
    return res;
}

} // namespace dhdl::dse

#include "dse/supervisor.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ml/rng.hh"
#include "obs/metrics.hh"

namespace dhdl::dse {

namespace {

using Clock = std::chrono::steady_clock;

/** Per-task bookkeeping for the poll loop. */
struct TaskState {
    enum class Phase { Waiting, Running, Done } phase = Phase::Waiting;
    Clock::time_point notBefore{}; //!< Earliest next launch (backoff).
    Clock::time_point deadline{};  //!< Watchdog cutoff of the attempt.
    pid_t pid = -1;
    int failures = 0; //!< Failed attempts so far.
    bool killed = false; //!< Watchdog SIGKILL sent this attempt.
};

pid_t
spawn(const SupervisorTask& t)
{
    const pid_t pid = fork();
    if (pid < 0)
        return -1;
    if (pid > 0) {
        // Both sides setpgid so the group exists before either the
        // child execs or the watchdog kills — whoever runs first.
        setpgid(pid, pid);
        return pid;
    }

    // Child: own process group so a watchdog kill takes any
    // grandchildren down with it.
    setpgid(0, 0);
    for (const auto& [name, value] : t.env)
        setenv(name.c_str(), value.c_str(), 1);
    if (!t.logPath.empty()) {
        const int fd = open(t.logPath.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
            dup2(fd, STDOUT_FILENO);
            dup2(fd, STDERR_FILENO);
            if (fd > STDERR_FILENO)
                close(fd);
        }
    }
    std::vector<char*> argv;
    argv.reserve(t.argv.size() + 1);
    for (const std::string& a : t.argv)
        argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execvp(argv[0], argv.data());
    _exit(127);
}

} // namespace

bool
SupervisorResult::allSucceeded() const
{
    return std::all_of(tasks.begin(), tasks.end(),
                       [](const TaskOutcome& t) { return t.succeeded; });
}

std::vector<int>
SupervisorResult::failedTasks() const
{
    std::vector<int> out;
    for (size_t i = 0; i < tasks.size(); ++i) {
        if (!tasks[i].succeeded)
            out.push_back(int(i));
    }
    return out;
}

double
backoffSeconds(const SupervisorConfig& cfg, int task, int attempt)
{
    double d = cfg.backoffBaseSeconds * std::pow(2.0, attempt);
    d = std::min(d, cfg.backoffMaxSeconds);
    // Deterministic jitter in [0, 25%): retrying shards de-correlate
    // without introducing wall-clock nondeterminism into tests.
    const uint64_t h = ml::hashMix(
        ml::hashMix(cfg.jitterSeed ^ (uint64_t(task) + 1)) ^
        (uint64_t(attempt) + 1));
    return d * (1.0 + 0.25 * (double(h & 0x3FF) / 1024.0));
}

SupervisorResult
runSupervised(const std::vector<SupervisorTask>& tasks,
              const SupervisorConfig& cfg)
{
    for (const SupervisorTask& t : tasks)
        require(!t.argv.empty(), "supervisor task needs an argv");

    SupervisorResult res;
    res.tasks.resize(tasks.size());
    std::vector<TaskState> st(tasks.size());
    const auto now0 = Clock::now();
    for (TaskState& s : st)
        s.notBefore = now0;

    auto toDuration = [](double seconds) {
        return std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(seconds));
    };
    auto label = [&](size_t i) {
        return tasks[i].label.empty() ? "task " + std::to_string(i)
                                      : tasks[i].label;
    };

    size_t running = 0;
    size_t done = 0;
    const size_t cap = cfg.maxParallel > 0 ? size_t(cfg.maxParallel)
                                           : tasks.size();

    // One attempt has settled (child reaped or spawn failed): decide
    // between success, a backed-off retry, and permanent failure.
    auto settle = [&](size_t i, bool ok, int exitCode, int sig,
                      const std::string& how) {
        TaskState& s = st[i];
        TaskOutcome& o = res.tasks[i];
        o.exitCode = exitCode;
        o.termSignal = sig;
        o.timedOut = s.killed;
        if (ok) {
            o.succeeded = true;
            o.detail = label(i) + " succeeded after " +
                       std::to_string(o.attempts) + " attempt(s)";
            if (o.attempts > 1)
                obs::addCounter("dse.supervisor.recoveries", 1);
            s.phase = TaskState::Phase::Done;
            ++done;
            return;
        }
        ++s.failures;
        if (s.failures <= cfg.maxRetries) {
            const double wait =
                backoffSeconds(cfg, int(i), s.failures - 1);
            s.notBefore = Clock::now() + toDuration(wait);
            s.phase = TaskState::Phase::Waiting;
            ++res.retries;
            obs::addCounter("dse.supervisor.retries", 1);
            return;
        }
        o.detail = label(i) + " failed permanently (" + how +
                   ") after " + std::to_string(o.attempts) +
                   " attempt(s)";
        Diag d;
        d.code = DiagCode::ShardFailed;
        d.severity = DiagSeverity::Warning;
        d.stage = "supervise";
        d.message = o.detail;
        res.diags.push_back(std::move(d));
        obs::addCounter("dse.supervisor.failures", 1);
        s.phase = TaskState::Phase::Done;
        ++done;
    };

    while (done < tasks.size()) {
        const auto now = Clock::now();

        // Launch whatever is due, up to the parallelism cap.
        for (size_t i = 0; i < tasks.size() && running < cap; ++i) {
            TaskState& s = st[i];
            if (s.phase != TaskState::Phase::Waiting ||
                now < s.notBefore)
                continue;
            s.pid = spawn(tasks[i]);
            ++res.tasks[i].attempts;
            if (s.pid < 0) {
                settle(i, false, -1, 0, "fork failed");
                continue;
            }
            s.killed = false;
            s.deadline = cfg.timeoutSeconds > 0
                             ? now + toDuration(cfg.timeoutSeconds)
                             : Clock::time_point::max();
            s.phase = TaskState::Phase::Running;
            ++running;
            obs::addCounter("dse.supervisor.launches", 1);
        }

        // Reap exits and enforce watchdogs.
        for (size_t i = 0; i < tasks.size(); ++i) {
            TaskState& s = st[i];
            if (s.phase != TaskState::Phase::Running)
                continue;
            int status = 0;
            const pid_t r = waitpid(s.pid, &status, WNOHANG);
            if (r == s.pid) {
                --running;
                if (WIFEXITED(status)) {
                    const int code = WEXITSTATUS(status);
                    settle(i, code == 0, code, 0,
                           s.killed ? "watchdog timeout"
                                    : "exit " + std::to_string(code));
                } else {
                    const int sig =
                        WIFSIGNALED(status) ? WTERMSIG(status) : 0;
                    settle(i, false, -1, sig,
                           s.killed
                               ? "watchdog timeout"
                               : "killed by signal " +
                                     std::to_string(sig));
                }
                continue;
            }
            if (!s.killed && Clock::now() >= s.deadline) {
                // Hung attempt: kill the whole process group, then
                // let the next sweep reap it as a normal failure.
                s.killed = true;
                ++res.timeouts;
                obs::addCounter("dse.supervisor.timeouts", 1);
                if (kill(-s.pid, SIGKILL) != 0)
                    kill(s.pid, SIGKILL);
            }
        }

        if (done < tasks.size())
            std::this_thread::sleep_for(
                toDuration(cfg.pollIntervalSeconds));
    }
    return res;
}

} // namespace dhdl::dse

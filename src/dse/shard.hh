/**
 * @file
 * First-class sharded exploration. A shard is a deterministic slice
 * of the global sample set: every shard of the same (design, seed,
 * maxPoints) configuration derives the *identical* global point
 * list — sampleGlobal() is pure — and evaluates only the indices
 * congruent to its shard index modulo the shard count. Any
 * assignment of shards to processes or machines therefore covers
 * exactly the unsharded sample set, with no coordination.
 *
 * mergeShards() reassembles shard checkpoints into one
 * ExploreResult whose checkpoint serialization, Pareto front and
 * diagnostics are byte-identical to the unsharded run's — the
 * `merge(shards) ≡ unsharded` property the shard property tests pin.
 * A missing, refused or corrupt shard degrades gracefully: the merge
 * is partial, the absent shards are named in the result and in
 * ShardFailed diagnostics, and nothing aborts.
 */

#ifndef DHDL_DSE_SHARD_HH
#define DHDL_DSE_SHARD_HH

#include <string>
#include <vector>

#include "dse/checkpoint.hh"
#include "dse/explorer.hh"

namespace dhdl::dse {

/** One shard of an N-way partition, named "index/count" on the CLI. */
struct ShardSpec {
    int index = 0; //!< 0-based, < count.
    int count = 1;

    bool isSharded() const { return count > 1; }
};

/**
 * Parse "i/N" (0-based index, 0 <= i < N). Returns an error Status
 * with a UserError Diag on malformed text or out-of-range values.
 */
Status parseShard(const std::string& text, ShardSpec& out);

/** Does global sample index i belong to this shard? */
inline bool
inShard(size_t i, const ShardSpec& s)
{
    return s.count <= 1 || int(i % size_t(s.count)) == s.index;
}

/**
 * Canonical checkpoint path of one shard: "<base>.shard-<i>-of-<N>".
 * The supervisor, the merge command and the tests all derive paths
 * through this one function so they can never disagree.
 */
std::string shardCheckpointPath(const std::string& base, int index,
                                int count);

/** Outcome of merging shard checkpoints back into one result. */
struct ShardMergeResult {
    ExploreResult result;
    CheckpointMeta meta;
    /** Shards whose checkpoint was absent or refused. */
    std::vector<int> missingShards;
    /** Per-shard load stats, indexed by shard. */
    std::vector<CheckpointLoadStats> shardLoads;

    bool complete() const { return missingShards.empty(); }
};

/**
 * Merge the N shard checkpoints "<base>.shard-<i>-of-<N>" of the
 * exploration described by (g, cfg). Rebuilds the global sample set,
 * restores every shard's evaluated points into it, and recomputes
 * stats, sorted diagnostics and the Pareto front exactly as an
 * unsharded explore() would have produced them.
 *
 * Never throws on shard damage: a shard whose checkpoint is missing
 * or identifies a different exploration is recorded in
 * missingShards plus a warning Diag (ShardFailed); its points stay
 * un-evaluated and the merge is explicitly partial. Row-level
 * damage inside a shard (torn tail, corrupt record) is truncated /
 * skipped and counted per shard, as on resume.
 */
ShardMergeResult mergeShards(const Graph& g,
                             const ExploreConfig& cfg,
                             int shardCount,
                             const std::string& checkpointBase);

/**
 * Canonical text form of diagnostics (pointIndex|stage|code|message
 * per line) — the comparison key for merge ≡ unsharded and
 * resume ≡ uninterrupted byte-identity, excluding the display-only
 * fields (worker thread, context) that legitimately vary.
 */
std::string canonicalDiags(const std::vector<Diag>& diags);

} // namespace dhdl::dse

#endif // DHDL_DSE_SHARD_HH

#include "dse/shard.hh"

#include <cstdlib>

#include "obs/metrics.hh"

namespace dhdl::dse {

Status
parseShard(const std::string& text, ShardSpec& out)
{
    auto bad = [&](const std::string& why) {
        Diag d;
        d.code = DiagCode::UserError;
        d.severity = DiagSeverity::Error;
        d.stage = "cli";
        d.message = "bad shard spec '" + text + "': " + why;
        return Status::error(std::move(d));
    };

    const size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size())
        return bad("expected <index>/<count>, e.g. 0/4");

    const std::string is = text.substr(0, slash);
    const std::string ns = text.substr(slash + 1);
    for (const std::string* part : {&is, &ns}) {
        for (char c : *part) {
            if (c < '0' || c > '9')
                return bad("index and count must be decimal integers");
        }
        if (part->size() > 9)
            return bad("value out of range");
    }

    const long i = std::strtol(is.c_str(), nullptr, 10);
    const long n = std::strtol(ns.c_str(), nullptr, 10);
    if (n < 1)
        return bad("count must be >= 1");
    if (i >= n)
        return bad("index is 0-based and must be < count");

    out.index = int(i);
    out.count = int(n);
    return {};
}

std::string
shardCheckpointPath(const std::string& base, int index, int count)
{
    return base + ".shard-" + std::to_string(index) + "-of-" +
           std::to_string(count);
}

ShardMergeResult
mergeShards(const Graph& g, const ExploreConfig& cfg, int shardCount,
            const std::string& checkpointBase)
{
    require(shardCount >= 1, "shard count must be >= 1");
    require(!checkpointBase.empty(),
            "merge needs a checkpoint base path");

    ShardMergeResult out;
    ExploreResult& res = out.result;
    DiagSink sink;

    // Rebuild the global sample set exactly as every shard did —
    // sampleGlobal() is pure in (design, seed, maxPoints) — so each
    // restored record lands in its original global slot.
    ParamSpace space(g);
    auto bindings = sampleGlobal(space, cfg, &sink);
    res.points.resize(bindings.size());
    for (size_t i = 0; i < bindings.size(); ++i)
        res.points[i].binding = std::move(bindings[i]);
    res.stats.total = res.points.size();
    out.meta = makeCheckpointMeta(g, space, cfg.seed, res.points.size());
    out.meta.strategy = strategyName(cfg.strategy);

    out.shardLoads.resize(size_t(shardCount));
    for (int s = 0; s < shardCount; ++s) {
        const std::string path =
            shardCheckpointPath(checkpointBase, s, shardCount);
        Status st = loadCheckpointFile(path, g, out.meta, res.points,
                                       sink, &out.shardLoads[size_t(s)]);
        if (st.ok())
            continue;
        // Graceful degradation: the merge stays partial and says so
        // instead of aborting. The shard's points remain un-evaluated
        // and a later supervisor pass (or manual re-run) fills them.
        out.missingShards.push_back(s);
        Diag d;
        d.code = DiagCode::ShardFailed;
        d.severity = DiagSeverity::Warning;
        d.stage = "merge";
        d.message = "shard " + std::to_string(s) + "/" +
                    std::to_string(shardCount) +
                    " missing from merge: " + st.diag().message;
        sink.report(std::move(d));
        obs::addCounter("dse.merge.missing_shards", 1);
    }

    for (const DesignPoint& p : res.points) {
        res.stats.evaluated += p.evaluated ? 1 : 0;
        res.stats.failed += p.failed ? 1 : 0;
        res.stats.valid += p.valid ? 1 : 0;
    }
    for (const CheckpointLoadStats& ls : out.shardLoads) {
        res.stats.resumed += ls.restored;
        res.stats.ckptTruncated += ls.truncated;
        res.stats.ckptCorrupt += ls.corrupt;
    }
    res.stats.skipped = res.stats.total - res.stats.evaluated;

    // Identical post-processing to explore(): sorted diags, then the
    // Pareto front — the last two pieces of merge ≡ unsharded.
    res.diags = sink.drain();
    sortDiags(res.diags);
    res.pareto = paretoOf(res.points);
    return out;
}

std::string
canonicalDiags(const std::vector<Diag>& diags)
{
    std::string out;
    for (const Diag& d : diags) {
        out += std::to_string(d.pointIndex);
        out += '|';
        out += d.stage;
        out += '|';
        out += diagCodeName(d.code);
        out += '|';
        out += d.message;
        out += '\n';
    }
    return out;
}

} // namespace dhdl::dse

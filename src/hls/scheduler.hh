/**
 * @file
 * Resource-constrained list scheduler over flat operation graphs —
 * the core analysis a C-based HLS tool runs per design point. The
 * cost of this scheduling (ASAP/ALAP mobility computation plus
 * cycle-by-cycle placement) is what makes HLS-based design space
 * exploration slow on unrolled graphs (Table IV).
 */

#ifndef DHDL_HLS_SCHEDULER_HH
#define DHDL_HLS_SCHEDULER_HH

#include <array>

#include "hls/flatten.hh"

namespace dhdl::hls {

/** Functional units available per cycle, per class. */
struct ResourceBudget {
    std::array<int, 6> count = {256, 256, 64, 512, 8, 512};

    int
    of(FuClass c) const
    {
        return count[size_t(c)];
    }
};

/** Scheduling outcome. */
struct ScheduleResult {
    int64_t cycles = 0;     //!< Schedule length.
    int64_t ops = 0;        //!< Operations scheduled.
    bool truncated = false; //!< Flat graph hit the size cap.
};

/** Mobility-driven list scheduling under resource constraints. */
ScheduleResult listSchedule(const FlatGraph& g,
                            const ResourceBudget& budget = {});

} // namespace dhdl::hls

#endif // DHDL_HLS_SCHEDULER_HH

/**
 * @file
 * Reference HLS-style estimator: the Table IV baseline. For each
 * design point it flattens the design the way a C-based HLS tool
 * would (full inner-loop unrolling under pipelined outer loops in
 * Full mode) and runs resource-constrained list scheduling on the
 * flat graph. Restricted mode corresponds to the paper's "Vivado HLS
 * restricted" column, which "ignores outer loop pipelining".
 */

#ifndef DHDL_HLS_HLS_ESTIMATOR_HH
#define DHDL_HLS_HLS_ESTIMATOR_HH

#include "hls/scheduler.hh"

namespace dhdl::hls {

/** Exploration mode of the HLS baseline. */
enum class HlsMode {
    Restricted, //!< No outer-loop pipelining (rolled outer loops).
    Full,       //!< Outer pipelining with full inner unrolling.
};

/** HLS baseline estimate for one design point. */
struct HlsEstimate {
    double cycles = 0;      //!< Estimated design latency.
    int64_t flatOps = 0;    //!< Size of the scheduled graph.
    int64_t scheduleLen = 0;//!< Length of the body schedule.
    bool truncated = false;
};

/** The HLS baseline estimator. */
class HlsEstimator
{
  public:
    explicit HlsEstimator(ResourceBudget budget = {})
        : budget_(budget) {}

    /** Analyze one design point (this is the timed operation). */
    HlsEstimate estimate(const Inst& inst, HlsMode mode) const;

  private:
    double hierarchicalCycles(const Inst& inst, NodeId ctrl,
                              HlsMode mode) const;

    ResourceBudget budget_;
};

} // namespace dhdl::hls

#endif // DHDL_HLS_HLS_ESTIMATOR_HH

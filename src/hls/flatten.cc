#include "hls/flatten.hh"

#include <unordered_map>

#include "analysis/resources.hh"

namespace dhdl::hls {

FuClass
fuClassOf(const Graph& g, NodeId n)
{
    const Node& nd = g.node(n);
    if (nd.kind() == NodeKind::Load || nd.kind() == NodeKind::Store)
        return FuClass::MemPort;
    if (nd.kind() != NodeKind::Prim)
        return FuClass::Other;
    switch (g.nodeAs<PrimNode>(n).op) {
      case Op::Add:
      case Op::Sub:
      case Op::Min:
      case Op::Max:
        return FuClass::AddSub;
      case Op::Mul:
        return FuClass::Mul;
      case Op::Div:
      case Op::Mod:
      case Op::Sqrt:
      case Op::Exp:
      case Op::Log:
        return FuClass::DivSqrt;
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Eq:
      case Op::Neq:
      case Op::And:
      case Op::Or:
      case Op::Not:
      case Op::Mux:
        return FuClass::Logic;
      default:
        return FuClass::Other;
    }
}

namespace {

class Flattener
{
  public:
    Flattener(const Inst& inst, bool allow_pipe)
        : inst_(inst), g_(inst.graph()), allowPipe_(allow_pipe) {}

    FlatGraph
    run(NodeId root)
    {
        if (root != kNoNode)
            visit(root, 1, false);
        return std::move(out_);
    }

  private:
    void
    visit(NodeId ctrl, int64_t repl, bool under_pipeline)
    {
        if (out_.truncated)
            return;
        const auto& c = g_.nodeAs<ControllerNode>(ctrl);

        // The replication that scheduling sees: rolled loops
        // contribute their unroll factor; loops under a pipelined
        // outer loop are completely unrolled (full trip count).
        int64_t trip = inst_.trip(ctrl);
        int64_t factor = under_pipeline ? trip : inst_.par(ctrl);
        int64_t my_repl = repl * std::max<int64_t>(1, factor);

        bool pipeline_here =
            allowPipe_ && c.kind() == NodeKind::MetaPipe &&
            inst_.metaActive(ctrl);

        if (c.kind() == NodeKind::Pipe) {
            emitBody(c, my_repl);
            return;
        }
        for (NodeId ch : c.children) {
            if (g_.node(ch).isController())
                visit(ch, my_repl, under_pipeline || pipeline_here);
        }
    }

    void
    emitBody(const ControllerNode& pipe, int64_t repl)
    {
        // Gather the body's primitive ops once, then replicate.
        std::vector<NodeId> body;
        for (NodeId ch : pipe.children) {
            const Node& n = g_.node(ch);
            if (!n.isPrimitive())
                continue;
            if (n.kind() == NodeKind::Prim) {
                Op op = g_.nodeAs<PrimNode>(ch).op;
                if (op == Op::Const || op == Op::Iter)
                    continue;
            }
            body.push_back(ch);
        }
        if (body.empty())
            return;

        int64_t max_repl =
            (kMaxFlatOps - int64_t(out_.ops.size())) /
            int64_t(body.size());
        if (repl > max_repl) {
            repl = std::max<int64_t>(0, max_repl);
            out_.truncated = true;
        }

        for (int64_t r = 0; r < repl; ++r) {
            std::unordered_map<NodeId, int32_t> local;
            for (NodeId ch : body) {
                FlatOp op;
                op.fu = fuClassOf(g_, ch);
                const Node& n = g_.node(ch);
                if (n.kind() == NodeKind::Prim) {
                    const auto& p = g_.nodeAs<PrimNode>(ch);
                    op.latency = std::max(1, opLatency(p.op, p.type));
                    for (NodeId in : p.inputs) {
                        auto it = local.find(in);
                        if (it != local.end())
                            op.preds.push_back(it->second);
                    }
                } else if (n.kind() == NodeKind::Load) {
                    op.latency = 2;
                    for (NodeId a : g_.nodeAs<LoadNode>(ch).addr) {
                        auto it = local.find(a);
                        if (it != local.end())
                            op.preds.push_back(it->second);
                    }
                } else {
                    op.latency = 1;
                    const auto& s = g_.nodeAs<StoreNode>(ch);
                    for (NodeId a : s.addr) {
                        auto it = local.find(a);
                        if (it != local.end())
                            op.preds.push_back(it->second);
                    }
                    auto it = local.find(s.value);
                    if (it != local.end())
                        op.preds.push_back(it->second);
                }
                local[ch] = int32_t(out_.ops.size());
                out_.ops.push_back(std::move(op));
            }
        }
    }

    const Inst& inst_;
    const Graph& g_;
    bool allowPipe_;
    FlatGraph out_;
};

} // namespace

FlatGraph
flatten(const Inst& inst, bool allow_outer_pipelining)
{
    return Flattener(inst, allow_outer_pipelining)
        .run(inst.graph().root);
}

FlatGraph
flattenSubtree(const Inst& inst, NodeId ctrl, bool allow_outer_pipelining)
{
    return Flattener(inst, allow_outer_pipelining).run(ctrl);
}

} // namespace dhdl::hls

/**
 * @file
 * Design flattening for the reference HLS-style estimator. Commercial
 * HLS tools schedule at the flat operation level: when an outer loop
 * carries a PIPELINE directive, "the tool completely unrolls all
 * inner loops before pipelining the outer loop. This creates a large
 * graph that complicates scheduling." (Section V-C2.) This module
 * reproduces that blow-up: in Full mode, every loop nested below a
 * pipelined outer controller is replicated by its full trip count; in
 * Restricted mode loops stay rolled (replicated only by their
 * unrolling/parallelization factors).
 */

#ifndef DHDL_HLS_FLATTEN_HH
#define DHDL_HLS_FLATTEN_HH

#include <cstdint>
#include <vector>

#include "analysis/instance.hh"

namespace dhdl::hls {

/** Functional-unit class used for resource-constrained scheduling. */
enum class FuClass : uint8_t {
    AddSub,
    Mul,
    DivSqrt,
    Logic,
    MemPort,
    Other,
};

/** One flat scheduled operation. */
struct FlatOp {
    FuClass fu = FuClass::Other;
    int latency = 1;
    /** Indices of predecessor ops in the flat list. */
    std::vector<int32_t> preds;
};

/** Flat operation graph produced from a design instance. */
struct FlatGraph {
    std::vector<FlatOp> ops;
    /** True when flattening hit the safety cap (graph truncated). */
    bool truncated = false;
};

/** Hard cap on flat graph size (keeps degenerate cases bounded). */
inline constexpr int64_t kMaxFlatOps = 4'000'000;

/**
 * Flatten a design instance. With allow_outer_pipelining, controllers
 * whose MetaPipe toggle is enabled act as PIPELINE directives and
 * force full unrolling of everything nested inside them.
 */
FlatGraph flatten(const Inst& inst, bool allow_outer_pipelining);

/** Flatten only the subtree rooted at one controller. */
FlatGraph flattenSubtree(const Inst& inst, NodeId ctrl,
                         bool allow_outer_pipelining);

/** The functional-unit class of a primitive node. */
FuClass fuClassOf(const Graph& g, NodeId n);

} // namespace dhdl::hls

#endif // DHDL_HLS_FLATTEN_HH

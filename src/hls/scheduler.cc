#include "hls/scheduler.hh"

#include <algorithm>
#include <map>
#include <queue>

namespace dhdl::hls {

ScheduleResult
listSchedule(const FlatGraph& g, const ResourceBudget& budget)
{
    ScheduleResult res;
    res.ops = int64_t(g.ops.size());
    res.truncated = g.truncated;
    size_t n = g.ops.size();
    if (n == 0)
        return res;

    // Downward rank (longest path to a sink) as the list priority.
    std::vector<int64_t> rank(n, 0);
    for (size_t i = n; i-- > 0;) {
        rank[i] += g.ops[i].latency;
        for (int32_t p : g.ops[i].preds)
            rank[size_t(p)] = std::max(
                rank[size_t(p)], rank[i] + g.ops[size_t(p)].latency);
    }

    std::vector<int32_t> missing(n, 0);
    std::vector<std::vector<int32_t>> succs(n);
    for (size_t i = 0; i < n; ++i) {
        missing[i] = int32_t(g.ops[i].preds.size());
        for (int32_t p : g.ops[i].preds)
            succs[size_t(p)].push_back(int32_t(i));
    }

    // One ready heap per functional-unit class so each cycle issues
    // exactly min(budget, ready) ops per class without re-heapifying
    // deferred work (keeps scheduling O(V log V)).
    auto cmp = [&](int32_t a, int32_t b) {
        if (rank[size_t(a)] != rank[size_t(b)])
            return rank[size_t(a)] < rank[size_t(b)];
        return a > b;
    };
    using Heap = std::priority_queue<int32_t, std::vector<int32_t>,
                                     decltype(cmp)>;
    std::array<Heap, 6> ready{Heap(cmp), Heap(cmp), Heap(cmp),
                              Heap(cmp), Heap(cmp), Heap(cmp)};
    size_t n_ready = 0;
    for (size_t i = 0; i < n; ++i) {
        if (missing[i] == 0) {
            ready[size_t(g.ops[i].fu)].push(int32_t(i));
            ++n_ready;
        }
    }

    // Completion buckets keyed by cycle.
    std::map<int64_t, std::vector<int32_t>> completions;
    int64_t cycle = 0;
    size_t placed = 0;

    while (placed < n) {
        // Retire everything finishing at or before this cycle.
        while (!completions.empty() &&
               completions.begin()->first <= cycle) {
            for (int32_t op : completions.begin()->second) {
                for (int32_t s : succs[size_t(op)]) {
                    if (--missing[size_t(s)] == 0) {
                        ready[size_t(g.ops[size_t(s)].fu)].push(s);
                        ++n_ready;
                    }
                }
            }
            completions.erase(completions.begin());
        }

        // Issue per class up to the class budget.
        for (size_t c = 0; c < ready.size(); ++c) {
            int avail = budget.count[c];
            while (avail > 0 && !ready[c].empty()) {
                int32_t op = ready[c].top();
                ready[c].pop();
                --n_ready;
                --avail;
                int64_t fin = cycle + g.ops[size_t(op)].latency;
                completions[fin].push_back(op);
                res.cycles = std::max(res.cycles, fin);
                ++placed;
            }
        }

        // Advance: to the next completion when nothing is ready, else
        // to the next cycle.
        if (n_ready == 0) {
            if (completions.empty())
                break;
            cycle = std::max(cycle + 1, completions.begin()->first);
        } else {
            ++cycle;
        }
    }
    return res;
}

} // namespace dhdl::hls

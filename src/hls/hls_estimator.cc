#include "hls/hls_estimator.hh"

#include "obs/trace.hh"

#include <algorithm>
#include <cmath>

namespace dhdl::hls {

double
HlsEstimator::hierarchicalCycles(const Inst& inst, NodeId ctrl,
                                 HlsMode mode) const
{
    const Graph& g = inst.graph();
    const auto& c = g.nodeAs<ControllerNode>(ctrl);
    int64_t trip = inst.trip(ctrl);
    int64_t par = inst.par(ctrl);
    double iters = std::ceil(double(trip) / double(par));

    if (c.kind() == NodeKind::Pipe) {
        // Schedule the (unrolled-by-par) body once; II = 1 pipeline.
        FlatGraph body = flattenSubtree(inst, ctrl, false);
        ScheduleResult s = listSchedule(body, budget_);
        return double(s.cycles) + iters;
    }

    double sum = 0;
    for (NodeId ch : inst.stagesOf(ctrl)) {
        if (g.node(ch).isController())
            sum += hierarchicalCycles(inst, ch, mode);
        else
            sum += 100.0; // memcpy-style transfer, opaque to HLS
    }
    // HLS without coarse-grained pipelining executes stages serially.
    return iters * sum;
}

HlsEstimate
HlsEstimator::estimate(const Inst& inst, HlsMode mode) const
{
    DHDL_OBS_SPAN("hls", "hls-estimate");
    HlsEstimate e;

    // The expensive part: flatten + schedule. In Full mode, pipelined
    // outer loops force complete unrolling of everything below them.
    FlatGraph flat = flatten(inst, mode == HlsMode::Full);
    ScheduleResult s = listSchedule(flat, budget_);
    e.flatOps = s.ops;
    e.scheduleLen = s.cycles;
    e.truncated = s.truncated;

    if (inst.graph().root != kNoNode)
        e.cycles = hierarchicalCycles(inst, inst.graph().root, mode);
    else
        e.cycles = double(s.cycles);
    return e;
}

} // namespace dhdl::hls

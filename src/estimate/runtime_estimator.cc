#include "estimate/runtime_estimator.hh"

#include <algorithm>
#include <cmath>

#include "analysis/resources.hh"

namespace dhdl::est {

namespace {

/** Fixed controller synchronization overhead per stage, cycles. */
constexpr double kStageOverhead = 4.0;

} // namespace

RuntimeEstimator::RuntimeEstimator(fpga::Device dev)
    : dev_(std::move(dev))
{
}

double
RuntimeEstimator::transferBytes(const Inst& inst, NodeId xfer) const
{
    const XferInfo& x = inst.plan().xferInfo(xfer);
    int64_t elems = 1;
    for (const auto& e : *x.extent)
        elems *= inst.val(e);
    return double(elems) * x.bits / 8.0;
}

const std::vector<NodeId>*
RuntimeEstimator::competitors(const Inst& inst, NodeId xfer) const
{
    // Competing accessors: transfers below the nearest enclosing
    // container that executes its contents concurrently (a Parallel,
    // or an active MetaPipe whose stages overlap in steady state).
    // The candidate ancestors and their rival sets were compiled into
    // the plan; only the MetaPipe toggle is checked per binding.
    for (const XferCandidate& c : inst.plan().xferInfo(xfer).candidates) {
        if (c.isParallel || inst.metaActive(c.anc))
            return &c.rivals;
    }
    return nullptr;
}

double
RuntimeEstimator::onchipBytesPerCycle(const Inst& inst,
                                      NodeId xfer) const
{
    const XferInfo& x = inst.plan().xferInfo(xfer);
    return double(std::max<int64_t>(1, inst.val(x.par))) * x.bits /
           8.0;
}

double
RuntimeEstimator::transferCycles(const Inst& inst, NodeId xfer) const
{
    const XferInfo& x = inst.plan().xferInfo(xfer);
    int bits = x.bits;
    int64_t elems = 1;
    for (const auto& e : *x.extent)
        elems *= inst.val(e);
    int64_t inner = inst.val(x.extent->back());
    int64_t par = std::max<int64_t>(1, inst.val(x.par));

    double bytes = double(elems) * bits / 8.0;
    double row_bytes = double(inner) * bits / 8.0;
    if (elems == inner)
        row_bytes = bytes; // one contiguous run

    // Command model: each contiguous row run is a burst-quantized
    // command with a fixed activation overhead ("the number and
    // length of memory commands", Section IV-B).
    constexpr double kRowOverheadCycles = 6.0;
    double peak = dev_.bytesPerCycle();
    double bursts_per_row =
        std::ceil(row_bytes / double(dev_.burstBytes));
    double row_cycles =
        bursts_per_row * double(dev_.burstBytes) / peak +
        kRowOverheadCycles;
    double row_rate = row_bytes / row_cycles;

    // Demand-aware contention: competing streams (including the
    // lanes-replicated copies of each transfer) consume only what
    // their on-chip side can sink, capped at an equal share; this
    // stream gets the remainder (at least an equal split).
    static const std::vector<NodeId> kNoRivals;
    const auto* rivals_p = competitors(inst, xfer);
    const std::vector<NodeId>& rivals = rivals_p ? *rivals_p
                                                 : kNoRivals;
    double self_copies =
        double(std::max<int64_t>(1, inst.lanes(xfer)));
    double n = self_copies;
    for (NodeId r : rivals)
        n += double(std::max<int64_t>(1, inst.lanes(r)));
    // A rival that moves far fewer bytes than this stream finishes
    // early and releases its share; weight its demand by the overlap
    // fraction (the static analogue of max-min fluid sharing).
    double rival_demand = 0;
    for (NodeId r : rivals) {
        double overlap =
            std::min(1.0, transferBytes(inst, r) / std::max(1.0,
                                                            bytes));
        rival_demand += double(std::max<int64_t>(1, inst.lanes(r))) *
                        std::min(onchipBytesPerCycle(inst, r),
                                 peak / n) *
                        overlap;
    }
    double onchip_self = double(par) * bits / 8.0;
    rival_demand +=
        (self_copies - 1.0) * std::min(onchip_self, peak / n);
    double share = std::max(peak / n, peak - rival_demand);

    // On-chip side can also throttle the stream: par elements/cycle.
    double effective = std::min({row_rate, share, onchip_self});
    return double(dev_.dramLatency) + bytes / std::max(1e-9, effective);
}

double
RuntimeEstimator::stageCycles(const Inst& inst, NodeId stage) const
{
    const Graph& g = inst.graph();
    if (g.node(stage).isTileTransfer())
        return transferCycles(inst, stage);
    return ctrlCycles(inst, stage);
}

double
RuntimeEstimator::ctrlCycles(const Inst& inst, NodeId ctrl) const
{
    const ControllerNode* cp = inst.plan().ctrlNode(ctrl);
    if (!cp)
        panic("ctrlCycles on non-controller");
    const auto& c = *cp;
    int64_t trip = inst.trip(ctrl);
    int64_t par = inst.par(ctrl);
    double iters = std::ceil(double(trip) / double(par));

    switch (c.kind()) {
      case NodeKind::Pipe: {
        PipeTiming t = analyzePipe(inst, ctrl);
        return double(t.depth) + iters * double(t.ii) +
               kStageOverhead;
      }
      case NodeKind::ParallelCtrl: {
        double worst = 0;
        for (NodeId s : inst.stagesOf(ctrl))
            worst = std::max(worst, stageCycles(inst, s));
        return worst + kStageOverhead;
      }
      case NodeKind::Sequential:
      case NodeKind::MetaPipe: {
        // Accumulate sum/worst incrementally (same order as a stage
        // list would be summed) instead of materializing a vector.
        double sum = 0, worst = 0;
        size_t nstages = 0;
        for (NodeId s : inst.stagesOf(ctrl)) {
            double t = stageCycles(inst, s);
            sum += t;
            worst = std::max(worst, t);
            ++nstages;
        }

        // Tile reduction of a Reduce MetaPipe is an implicit extra
        // stage combining the body result into the accumulator.
        if (c.pattern == Pattern::Reduce && c.accum != kNoNode) {
            const auto& acc = *inst.plan().memNode(c.accum);
            double elems = double(inst.memElems(c.accum));
            double lat = opLatency(c.combine, acc.type);
            double t = elems / double(par) + lat + kStageOverhead;
            sum += t;
            worst = std::max(worst, t);
            ++nstages;
        }
        if (nstages == 0)
            return kStageOverhead;

        bool overlapped = c.kind() == NodeKind::MetaPipe &&
                          inst.metaActive(ctrl) && nstages > 1;
        if (overlapped) {
            // (N-1) * max(stage) + sum(stage)  [Section IV-B]
            return (iters - 1.0) * worst + sum +
                   kStageOverhead * double(nstages);
        }
        return iters * (sum + kStageOverhead * double(nstages));
      }
      default:
        panic("ctrlCycles on non-controller");
    }
}

RuntimeEstimate
RuntimeEstimator::estimate(const Inst& inst) const
{
    require(inst.graph().root != kNoNode, "design has no accel body");
    RuntimeEstimate e;
    e.cycles = ctrlCycles(inst, inst.graph().root);
    e.seconds = e.cycles / (dev_.fabricMHz * 1e6);
    return e;
}

void
RuntimeEstimator::estimateBatch(const InstPool& insts, size_t n,
                                RuntimeEstimate* out) const
{
    for (size_t p = 0; p < n; ++p)
        out[p] = estimate(insts[p]);
}

} // namespace dhdl::est

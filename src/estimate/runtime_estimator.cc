#include "estimate/runtime_estimator.hh"

#include <algorithm>
#include <cmath>

#include "analysis/resources.hh"

namespace dhdl::est {

namespace {

/** Fixed controller synchronization overhead per stage, cycles. */
constexpr double kStageOverhead = 4.0;

} // namespace

RuntimeEstimator::RuntimeEstimator(fpga::Device dev)
    : dev_(std::move(dev))
{
}

double
RuntimeEstimator::transferBytes(const Inst& inst, NodeId xfer) const
{
    const Graph& g = inst.graph();
    int64_t elems = 1;
    int bits;
    if (g.node(xfer).kind() == NodeKind::TileLd) {
        const auto& t = g.nodeAs<TileLdNode>(xfer);
        bits = g.nodeAs<MemNode>(t.offchip).type.bits();
        for (const auto& e : t.extent)
            elems *= inst.val(e);
    } else {
        const auto& t = g.nodeAs<TileStNode>(xfer);
        bits = g.nodeAs<MemNode>(t.offchip).type.bits();
        for (const auto& e : t.extent)
            elems *= inst.val(e);
    }
    return double(elems) * bits / 8.0;
}

std::vector<NodeId>
RuntimeEstimator::competitors(const Inst& inst, NodeId xfer) const
{
    // Competing accessors: transfers below the nearest enclosing
    // container that executes its contents concurrently (a Parallel,
    // or an active MetaPipe whose stages overlap in steady state).
    const Graph& g = inst.graph();
    NodeId anc = g.node(xfer).parent;
    while (anc != kNoNode) {
        const Node& n = g.node(anc);
        if (n.kind() == NodeKind::ParallelCtrl ||
            (n.kind() == NodeKind::MetaPipe && inst.metaActive(anc)))
            break;
        anc = n.parent;
    }
    std::vector<NodeId> out;
    if (anc == kNoNode)
        return out;
    for (NodeId t : inst.transfers()) {
        if (t == xfer)
            continue;
        NodeId p = t;
        while (p != kNoNode && p != anc)
            p = g.node(p).parent;
        if (p == anc)
            out.push_back(t);
    }
    return out;
}

double
RuntimeEstimator::onchipBytesPerCycle(const Inst& inst,
                                      NodeId xfer) const
{
    const Graph& g = inst.graph();
    if (g.node(xfer).kind() == NodeKind::TileLd) {
        const auto& t = g.nodeAs<TileLdNode>(xfer);
        return double(std::max<int64_t>(1, inst.val(t.par))) *
               g.nodeAs<MemNode>(t.offchip).type.bits() / 8.0;
    }
    const auto& t = g.nodeAs<TileStNode>(xfer);
    return double(std::max<int64_t>(1, inst.val(t.par))) *
           g.nodeAs<MemNode>(t.offchip).type.bits() / 8.0;
}

double
RuntimeEstimator::transferCycles(const Inst& inst, NodeId xfer) const
{
    const Graph& g = inst.graph();
    int bits;
    int64_t elems = 1, inner = 1, par = 1;
    if (g.node(xfer).kind() == NodeKind::TileLd) {
        const auto& t = g.nodeAs<TileLdNode>(xfer);
        bits = g.nodeAs<MemNode>(t.offchip).type.bits();
        for (const auto& e : t.extent)
            elems *= inst.val(e);
        inner = inst.val(t.extent.back());
        par = std::max<int64_t>(1, inst.val(t.par));
    } else {
        const auto& t = g.nodeAs<TileStNode>(xfer);
        bits = g.nodeAs<MemNode>(t.offchip).type.bits();
        for (const auto& e : t.extent)
            elems *= inst.val(e);
        inner = inst.val(t.extent.back());
        par = std::max<int64_t>(1, inst.val(t.par));
    }

    double bytes = double(elems) * bits / 8.0;
    double row_bytes = double(inner) * bits / 8.0;
    if (elems == inner)
        row_bytes = bytes; // one contiguous run

    // Command model: each contiguous row run is a burst-quantized
    // command with a fixed activation overhead ("the number and
    // length of memory commands", Section IV-B).
    constexpr double kRowOverheadCycles = 6.0;
    double peak = dev_.bytesPerCycle();
    double bursts_per_row =
        std::ceil(row_bytes / double(dev_.burstBytes));
    double row_cycles =
        bursts_per_row * double(dev_.burstBytes) / peak +
        kRowOverheadCycles;
    double row_rate = row_bytes / row_cycles;

    // Demand-aware contention: competing streams (including the
    // lanes-replicated copies of each transfer) consume only what
    // their on-chip side can sink, capped at an equal share; this
    // stream gets the remainder (at least an equal split).
    auto rivals = competitors(inst, xfer);
    double self_copies =
        double(std::max<int64_t>(1, inst.lanes(xfer)));
    double n = self_copies;
    for (NodeId r : rivals)
        n += double(std::max<int64_t>(1, inst.lanes(r)));
    // A rival that moves far fewer bytes than this stream finishes
    // early and releases its share; weight its demand by the overlap
    // fraction (the static analogue of max-min fluid sharing).
    double rival_demand = 0;
    for (NodeId r : rivals) {
        double overlap =
            std::min(1.0, transferBytes(inst, r) / std::max(1.0,
                                                            bytes));
        rival_demand += double(std::max<int64_t>(1, inst.lanes(r))) *
                        std::min(onchipBytesPerCycle(inst, r),
                                 peak / n) *
                        overlap;
    }
    double onchip_self = double(par) * bits / 8.0;
    rival_demand +=
        (self_copies - 1.0) * std::min(onchip_self, peak / n);
    double share = std::max(peak / n, peak - rival_demand);

    // On-chip side can also throttle the stream: par elements/cycle.
    double effective = std::min({row_rate, share, onchip_self});
    return double(dev_.dramLatency) + bytes / std::max(1e-9, effective);
}

double
RuntimeEstimator::stageCycles(const Inst& inst, NodeId stage) const
{
    const Graph& g = inst.graph();
    if (g.node(stage).isTileTransfer())
        return transferCycles(inst, stage);
    return ctrlCycles(inst, stage);
}

double
RuntimeEstimator::ctrlCycles(const Inst& inst, NodeId ctrl) const
{
    const Graph& g = inst.graph();
    const auto& c = g.nodeAs<ControllerNode>(ctrl);
    int64_t trip = inst.trip(ctrl);
    int64_t par = inst.par(ctrl);
    double iters = std::ceil(double(trip) / double(par));

    switch (c.kind()) {
      case NodeKind::Pipe: {
        PipeTiming t = analyzePipe(inst, ctrl);
        return double(t.depth) + iters * double(t.ii) +
               kStageOverhead;
      }
      case NodeKind::ParallelCtrl: {
        double worst = 0;
        for (NodeId s : inst.stagesOf(ctrl))
            worst = std::max(worst, stageCycles(inst, s));
        return worst + kStageOverhead;
      }
      case NodeKind::Sequential:
      case NodeKind::MetaPipe: {
        auto stages = inst.stagesOf(ctrl);
        std::vector<double> times;
        times.reserve(stages.size() + 1);
        for (NodeId s : stages)
            times.push_back(stageCycles(inst, s));

        // Tile reduction of a Reduce MetaPipe is an implicit extra
        // stage combining the body result into the accumulator.
        if (c.pattern == Pattern::Reduce && c.accum != kNoNode) {
            const auto& acc = g.nodeAs<MemNode>(c.accum);
            double elems = double(inst.memElems(c.accum));
            double lat = opLatency(c.combine, acc.type);
            times.push_back(elems / double(par) + lat + kStageOverhead);
        }
        if (times.empty())
            return kStageOverhead;

        double sum = 0, worst = 0;
        for (double t : times) {
            sum += t;
            worst = std::max(worst, t);
        }

        bool overlapped = c.kind() == NodeKind::MetaPipe &&
                          inst.metaActive(ctrl) && times.size() > 1;
        if (overlapped) {
            // (N-1) * max(stage) + sum(stage)  [Section IV-B]
            return (iters - 1.0) * worst + sum +
                   kStageOverhead * double(times.size());
        }
        return iters * (sum + kStageOverhead * double(times.size()));
      }
      default:
        panic("ctrlCycles on non-controller");
    }
}

RuntimeEstimate
RuntimeEstimator::estimate(const Inst& inst) const
{
    require(inst.graph().root != kNoNode, "design has no accel body");
    RuntimeEstimate e;
    e.cycles = ctrlCycles(inst, inst.graph().root);
    e.seconds = e.cycles / (dev_.fabricMHz * 1e6);
    return e;
}

} // namespace dhdl::est

#include "estimate/area_estimator.hh"

#include <algorithm>
#include <cmath>

#include "analysis/critical_path.hh"
#include "ml/serialize.hh"

namespace dhdl::est {

std::vector<double>
AreaEstimator::designFeatures(const AreaModel& model,
                              const fpga::Device& dev,
                              const std::vector<TemplateInst>& ts,
                              Resources raw)
{
    std::vector<double> out;
    designFeaturesInto(model, dev, ts, raw, out);
    return out;
}

void
AreaEstimator::designFeaturesInto(const AreaModel& model,
                                  const fpga::Device& dev,
                                  const std::vector<TemplateInst>& ts,
                                  Resources raw,
                                  std::vector<double>& out)
{
    (void)model;
    double n_ctrl = 0, n_mem = 0, n_xfer = 0, bits_sum = 0;
    for (const auto& t : ts) {
        switch (templateClassOf(t.tkind)) {
          case TemplateClass::Control:
            n_ctrl += 1;
            break;
          case TemplateClass::Memory:
            n_mem += 1;
            break;
          case TemplateClass::Transfer:
            n_xfer += 1;
            break;
          case TemplateClass::Other:
            break;
        }
        bits_sum += t.bits;
    }
    double n = double(std::max<size_t>(1, ts.size()));
    out.assign({
        std::log2(1.0 + raw.lutsPack),
        std::log2(1.0 + raw.lutsNoPack),
        std::log2(1.0 + raw.regs),
        std::log2(1.0 + raw.dsps),
        std::log2(1.0 + raw.brams),
        std::log2(1.0 + n),
        n_ctrl,
        n_mem,
        n_xfer,
        bits_sum / n,
        raw.totalLuts() / double(dev.alms * dev.lutsPerAlm),
    });
}

AreaEstimator::AreaEstimator(const fpga::VendorToolchain& tc,
                             int train_designs, uint64_t seed)
    : dev_(tc.device()), routeNet_({11, 6, 1}, seed ^ 1),
      dupRegNet_({11, 6, 1}, seed ^ 2), unavailNet_({11, 6, 1}, seed ^ 3)
{
    // Step 1: characterize templates and fit the analytical models.
    model_.fit(characterizeTemplates(tc));

    // Step 2: train the post-P&R effect networks on random designs.
    auto samples = fpga::randomDesignSamples(tc, train_designs, seed);

    std::vector<std::vector<double>> feats;
    std::vector<std::vector<double>> targets; // route, dupReg, unavail
    std::vector<std::vector<double>> route_x; // for the BRAM-dup fit
    std::vector<double> bram_y;

    for (const auto& s : samples) {
        Resources raw = model_.rawCount(s.templates);
        if (raw.totalLuts() <= 0 || raw.regs <= 0)
            continue;
        feats.push_back(designFeatures(model_, dev_, s.templates, raw));
        targets.push_back({s.report.routeLuts / raw.totalLuts(),
                           s.report.dupRegs / raw.regs,
                           s.report.unavailLuts / raw.totalLuts()});
        route_x.push_back({s.report.routeLuts});
        bram_y.push_back(s.report.dupBrams / std::max(1.0, raw.brams));
    }
    require(feats.size() >= 10, "too few usable training designs");

    featScaler_.fit(feats);
    targetScaler_.fit(targets);
    std::vector<std::vector<double>> xs(feats.size());
    std::array<std::vector<std::vector<double>>, 3> ys;
    for (size_t i = 0; i < feats.size(); ++i) {
        xs[i] = featScaler_.transformed(feats[i]);
        for (int f = 0; f < 3; ++f)
            ys[size_t(f)].push_back(
                {targetScaler_.scaleColumn(size_t(f),
                                           targets[i][size_t(f)])});
    }

    ml::RpropTrainer(routeNet_).train(xs, ys[0], 600);
    ml::RpropTrainer(dupRegNet_).train(xs, ys[1], 600);
    ml::RpropTrainer(unavailNet_).train(xs, ys[2], 600);

    // Step 3: BRAM duplication as a linear function of the number of
    // routing LUTs, "fit using the same data used to train the neural
    // networks". The regressand is the duplication *fraction* so the
    // prediction scales with the design's own block RAM count.
    bramDup_.fit(route_x, bram_y);

    // Step 4: calibrate the packing rate: 1-D search for the rate
    // that minimizes mean relative ALM error on the training designs.
    double best_rate = 1.0, best_err = 1e300;
    for (double rate = 0.5; rate <= 1.001; rate += 0.01) {
        packRate_ = rate;
        double err = 0;
        int m = 0;
        for (const auto& s : samples) {
            if (s.report.alms < 1000)
                continue;
            auto e = estimateList(s.templates);
            err += std::fabs(e.alms - s.report.alms) / s.report.alms;
            ++m;
        }
        if (m > 0 && err / m < best_err) {
            best_err = err / m;
            best_rate = rate;
        }
    }
    packRate_ = best_rate;
}

AreaEstimator::AreaEstimator(fpga::Device dev, std::istream& is)
    : dev_(std::move(dev)), routeNet_({1, 1}), dupRegNet_({1, 1}),
      unavailNet_({1, 1})
{
    std::string tag, version;
    is >> tag >> version;
    require(bool(is) && tag == "area_estimator" && version == "v1",
            "bad calibration file header");
    model_ = AreaModel::load(is);
    routeNet_ = ml::loadMlp(is);
    dupRegNet_ = ml::loadMlp(is);
    unavailNet_ = ml::loadMlp(is);
    featScaler_ = ml::loadScaler(is);
    targetScaler_ = ml::loadScaler(is);
    bramDup_ = ml::loadLinear(is);
    auto rate = ml::readDoubles(is, "pack_rate");
    require(rate.size() == 1, "bad pack-rate record");
    packRate_ = rate.front();
}

void
AreaEstimator::save(std::ostream& os) const
{
    os << "area_estimator v1\n";
    model_.save(os);
    ml::saveMlp(os, routeNet_);
    ml::saveMlp(os, dupRegNet_);
    ml::saveMlp(os, unavailNet_);
    ml::saveScaler(os, featScaler_);
    ml::saveScaler(os, targetScaler_);
    ml::saveLinear(os, bramDup_);
    ml::writeDoubles(os, "pack_rate", {packRate_});
}

AreaEstimate
AreaEstimator::assemble(Resources raw, double route_frac,
                        double dup_reg_frac, double unavail_frac,
                        double pack_rate) const
{
    AreaEstimate e;
    e.raw = raw;
    e.routeLuts = std::max(0.0, route_frac) * raw.totalLuts();
    e.dupRegs = std::max(0.0, dup_reg_frac) * raw.regs;
    e.unavailLuts = std::max(0.0, unavail_frac) * raw.totalLuts();
    e.dupBrams =
        std::max(0.0, bramDup_.predict1(e.routeLuts)) * raw.brams;

    // LUT packing: routing LUTs are assumed packable; packable LUTs
    // pack pairwise (at the calibrated rate) into compute units with
    // two registers each.
    double packable = raw.lutsPack + e.routeLuts;
    double unpackable = raw.lutsNoPack + e.unavailLuts;
    double logic_units =
        unpackable + packable * (1.0 - pack_rate / 2.0);

    e.luts = raw.totalLuts() + e.routeLuts + e.unavailLuts;
    e.regs = raw.regs + e.dupRegs;
    // DSP counts are integral in reality; rounding (not ceiling) the
    // fitted estimate avoids a systematic +1 at small counts.
    e.dsps = std::round(raw.dsps);
    e.brams = std::ceil(raw.brams + e.dupBrams);

    double reg_units = std::max(
        0.0, (e.regs - double(dev_.regsPerAlm) * logic_units) /
                 double(dev_.regsPerAlm));
    e.alms = logic_units + reg_units;
    return e;
}

AreaEstimate
AreaEstimator::estimateList(const std::vector<TemplateInst>& ts,
                            std::vector<double>& feat) const
{
    Resources raw;
    for (const auto& t : ts)
        raw += model_.cost(t, feat);
    auto f = featScaler_.transformed(
        designFeatures(model_, dev_, ts, raw));
    double route = targetScaler_.inverseColumn(
        0, routeNet_.predictScalar(f));
    double dup_reg = targetScaler_.inverseColumn(
        1, dupRegNet_.predictScalar(f));
    double unavail = targetScaler_.inverseColumn(
        2, unavailNet_.predictScalar(f));
    return assemble(raw, route, dup_reg, unavail, packRate_);
}

AreaEstimate
AreaEstimator::estimateList(const std::vector<TemplateInst>& ts,
                            AreaWorkspace& ws) const
{
    Resources raw;
    for (const auto& t : ts)
        raw += model_.cost(t, ws.feat);
    designFeaturesInto(model_, dev_, ts, raw, ws.designFeat);
    featScaler_.transformInto(ws.designFeat, ws.scaled);
    double route = targetScaler_.inverseColumn(
        0, routeNet_.predictScalar(ws.scaled, ws.mlp));
    double dup_reg = targetScaler_.inverseColumn(
        1, dupRegNet_.predictScalar(ws.scaled, ws.mlp));
    double unavail = targetScaler_.inverseColumn(
        2, unavailNet_.predictScalar(ws.scaled, ws.mlp));
    return assemble(raw, route, dup_reg, unavail, packRate_);
}

AreaEstimate
AreaEstimator::estimateList(const std::vector<TemplateInst>& ts) const
{
    std::vector<double> feat;
    return estimateList(ts, feat);
}

namespace {

/** Map a slot's (patch, base kind) onto its fused batch recipe. */
AreaBatchPlan::Recipe
resolveRecipe(const TemplateSlot& s)
{
    using R = AreaBatchPlan::Recipe;
    switch (s.patch) {
      case SlotPatch::Prim:
        return s.base.tkind == TemplateKind::PrimOp ? R::Prim
                                                    : R::Generic;
      case SlotPatch::LoadStore:
        return s.base.tkind == TemplateKind::LoadStore ? R::LoadStore
                                                       : R::Generic;
      case SlotPatch::Bram:
        return s.base.tkind == TemplateKind::BramInst ? R::Bram
                                                      : R::Generic;
      case SlotPatch::Reg:
        return s.base.tkind == TemplateKind::RegInst ? R::Reg
                                                     : R::Generic;
      case SlotPatch::Queue:
        return s.base.tkind == TemplateKind::QueueInst ? R::Queue
                                                       : R::Generic;
      case SlotPatch::Counter:
        return s.base.tkind == TemplateKind::CounterInst ? R::Counter
                                                         : R::Generic;
      case SlotPatch::Ctrl:
        switch (s.base.tkind) {
          case TemplateKind::PipeCtrl:
            return R::PipeCtrl;
          case TemplateKind::SeqCtrl:
          case TemplateKind::ParCtrl:
          case TemplateKind::MetaPipeCtrl:
            return R::Ctrl;
          default:
            return R::Generic;
        }
      case SlotPatch::CtrlSeqOrMeta:
        return R::CtrlSeqOrMeta;
      case SlotPatch::Reduce:
        return s.base.tkind == TemplateKind::ReduceTree ? R::Reduce
                                                        : R::Generic;
      case SlotPatch::DelayLine:
        return s.base.tkind == TemplateKind::DelayLine ? R::DelayLine
                                                       : R::Generic;
      case SlotPatch::Tile:
        return s.base.tkind == TemplateKind::TileTransfer ? R::Tile
                                                          : R::Generic;
    }
    return R::Generic;
}

/** Points per SoA feature tile in estimateBatch. */
constexpr size_t kAreaTile = 64;

/**
 * Fused max(0, w.f + b) accumulation of one slot's five resource
 * models into a point's raw totals. NF is the slot kind's feature
 * count, known at compile time per recipe, so the dot unrolls fully;
 * the q-order accumulation matches LinearModel::predict exactly.
 */
template <size_t NF>
inline void
accumulate(const double* f,
           const double (&w)[5][AreaModel::kMaxFeatures],
           const double (&b)[5], Resources& r)
{
    double s0 = b[0], s1 = b[1], s2 = b[2], s3 = b[3], s4 = b[4];
    for (size_t q = 0; q < NF; ++q) {
        const double fq = f[q];
        s0 += w[0][q] * fq;
        s1 += w[1][q] * fq;
        s2 += w[2][q] * fq;
        s3 += w[3][q] * fq;
        s4 += w[4][q] * fq;
    }
    r.lutsPack += std::max(0.0, s0);
    r.lutsNoPack += std::max(0.0, s1);
    r.regs += std::max(0.0, s2);
    r.dsps += std::max(0.0, s3);
    r.brams += std::max(0.0, s4);
}

/**
 * accumulate() across a whole SoA feature tile: f[q] holds feature q
 * of bn points. Looping points innermost turns every multiply-add
 * into a contiguous vectorizable sweep; per point, the partial sums
 * still start from the bias and add the weighted features in
 * ascending q — the identical order and rounding of accumulate(),
 * hence of the scalar LinearModel::predict chain.
 */
template <size_t NF>
inline void
accumulateTile(const double (&f)[AreaModel::kMaxFeatures][kAreaTile],
               size_t bn,
               const double (&w)[5][AreaModel::kMaxFeatures],
               const double (&b)[5], Resources* raw)
{
    double s[5][kAreaTile];
    for (size_t m = 0; m < 5; ++m) {
        const double bm = b[m];
        for (size_t p = 0; p < bn; ++p)
            s[m][p] = bm;
        for (size_t q = 0; q < NF; ++q) {
            const double wq = w[m][q];
            for (size_t p = 0; p < bn; ++p)
                s[m][p] += wq * f[q][p];
        }
    }
    for (size_t p = 0; p < bn; ++p) {
        Resources& r = raw[p];
        r.lutsPack += std::max(0.0, s[0][p]);
        r.lutsNoPack += std::max(0.0, s[1][p]);
        r.regs += std::max(0.0, s[2][p]);
        r.dsps += std::max(0.0, s[3][p]);
        r.brams += std::max(0.0, s[4][p]);
    }
}

/** accumulate with a runtime feature count (Generic fallback). */
inline void
accumulateN(const double* f, size_t nf,
            const double (&w)[5][AreaModel::kMaxFeatures],
            const double (&b)[5], Resources& r)
{
    double s0 = b[0], s1 = b[1], s2 = b[2], s3 = b[3], s4 = b[4];
    for (size_t q = 0; q < nf; ++q) {
        const double fq = f[q];
        s0 += w[0][q] * fq;
        s1 += w[1][q] * fq;
        s2 += w[2][q] * fq;
        s3 += w[3][q] * fq;
        s4 += w[4][q] * fq;
    }
    r.lutsPack += std::max(0.0, s0);
    r.lutsNoPack += std::max(0.0, s1);
    r.regs += std::max(0.0, s2);
    r.dsps += std::max(0.0, s3);
    r.brams += std::max(0.0, s4);
}

} // namespace

AreaBatchPlan
AreaEstimator::makeBatchPlan(const DesignPlan& plan) const
{
    AreaBatchPlan bp;
    bp.plan_ = &plan;
    const auto& slots = plan.templateSlots();
    bp.kernels_.resize(slots.size());
    bp.ok_ = true;

    // The invariant count features replicate the scalar path's
    // per-point accumulation over doubles; every partial sum is an
    // exact small integer, so the precomputed totals are bit-equal.
    double bits_sum = 0;
    for (size_t i = 0; i < slots.size(); ++i) {
        const TemplateSlot& s = slots[i];
        auto& k = bp.kernels_[i];
        k.slot = &s;
        k.dual = s.patch == SlotPatch::CtrlSeqOrMeta;

        TemplateInst probe = s.base;
        if (k.dual)
            probe.tkind = TemplateKind::SeqCtrl;
        double buf[AreaModel::kMaxFeatures];
        k.nf = uint32_t(AreaModel::featuresInto(probe, buf));
        k.recipe = resolveRecipe(s);

        for (int v = 0; v < (k.dual ? 2 : 1); ++v) {
            if (v == 1)
                probe.tkind = TemplateKind::MetaPipeCtrl;
            const auto* ms = model_.tryModelsFor(probe);
            if (ms == nullptr) {
                bp.ok_ = false;
                continue;
            }
            for (int m = 0; m < 5; ++m) {
                const auto& ws = (*ms)[size_t(m)].weights();
                if (ws.size() != k.nf) {
                    bp.ok_ = false;
                    continue;
                }
                for (size_t q = 0; q < ws.size(); ++q)
                    k.w[v][m][q] = ws[q];
                k.b[v][m] = (*ms)[size_t(m)].bias();
            }
        }

        switch (templateClassOf(k.dual ? TemplateKind::SeqCtrl
                                       : s.base.tkind)) {
          case TemplateClass::Control:
            bp.nCtrl_ += 1;
            break;
          case TemplateClass::Memory:
            bp.nMem_ += 1;
            break;
          case TemplateClass::Transfer:
            bp.nXfer_ += 1;
            break;
          case TemplateClass::Other:
            break;
        }
        bits_sum += s.base.bits;
    }

    double n = double(std::max<size_t>(1, slots.size()));
    bp.log2n_ = std::log2(1.0 + n);
    bp.bitsOverN_ = bits_sum / n;
    bp.lutsDenom_ = double(dev_.alms * dev_.lutsPerAlm);
    return bp;
}

void
AreaEstimator::estimateBatch(const AreaBatchPlan& bp,
                             const InstPool& insts, size_t n,
                             AreaBatchWorkspace& ws,
                             AreaEstimate* out) const
{
    constexpr size_t kd = 11; // ANN design features
    invariant(bp.ok_, "estimateBatch on a failed batch plan");
    ws.raw.assign(n, Resources{});

    // Slot-outer raw counting: per field, each point accumulates one
    // max(0, dot) term per slot in slot order — the scalar path's
    // exact chain, just interleaved across the batch. Each slot's
    // recipe computes featuresInto()'s expressions directly from the
    // bound instance (identical values and operation order) without
    // patching a TemplateInst copy per point.
    for (const auto& k : bp.kernels_) {
        const TemplateSlot& s = *k.slot;
        const TemplateInst& tb = s.base;
        const NodeId id = tb.node;
        const double bits = double(tb.bits);
        const auto& w0 = k.w[0];
        const auto& b0 = k.b[0];
        double f[AreaModel::kMaxFeatures] = {};
        double ft[AreaModel::kMaxFeatures][kAreaTile];
        Resources* raw = ws.raw.data();

        // Tiled recipes gather each feature into a contiguous lane of
        // `ft` (feature-major SoA over up to kAreaTile points), then
        // let accumulateTile sweep the dot across the whole tile.
        using R = AreaBatchPlan::Recipe;
        switch (k.recipe) {
          case R::Prim:
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const double lanes =
                        double(insts[lo + t].lanes(id));
                    ft[0][t] = lanes;
                    ft[1][t] = lanes * bits;
                    ft[2][t] = lanes * bits * bits / 64.0;
                }
                accumulateTile<3>(ft, bn, w0, b0, raw + lo);
            }
            break;
          case R::LoadStore:
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const Inst& in = insts[lo + t];
                    const double lanes = double(in.lanes(id));
                    const int bk = s.ref != kNoNode
                                       ? in.banks(s.ref)
                                       : tb.banks;
                    const double banks = double(std::max(1, bk));
                    ft[0][t] = lanes;
                    ft[1][t] = lanes * bits;
                    ft[2][t] = lanes * banks;
                    ft[3][t] = lanes * bits *
                               std::log2(std::max(1.0, banks));
                }
                accumulateTile<4>(ft, bn, w0, b0, raw + lo);
            }
            break;
          case R::Bram:
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const Inst& in = insts[lo + t];
                    const double lanes = double(in.lanes(id));
                    const double banks =
                        double(std::max(1, in.banks(id)));
                    const double copies =
                        lanes * (in.doubleBuffered(id) ? 2.0 : 1.0);
                    const double depth =
                        std::ceil(double(in.memElems(id)) / banks);
                    const bool mlab = depth * bits <= 640.0;
                    ft[0][t] =
                        mlab ? 0.0
                             : std::max(
                                   std::ceil(depth * bits / 20480.0),
                                   std::ceil(bits / 40.0)) *
                                   banks * copies;
                    ft[1][t] =
                        mlab ? depth * bits * banks * copies : 0.0;
                    ft[2][t] = lanes;
                    ft[3][t] = lanes * banks;
                    ft[4][t] = lanes * bits * banks / 32.0;
                    ft[5][t] = copies * bits * banks / 32.0;
                }
                accumulateTile<6>(ft, bn, w0, b0, raw + lo);
            }
            break;
          case R::Reg:
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const Inst& in = insts[lo + t];
                    const double lanes = double(in.lanes(id));
                    const double copies =
                        lanes * (in.doubleBuffered(id) ? 2.0 : 1.0);
                    ft[0][t] = copies * bits;
                    ft[1][t] = lanes;
                    ft[2][t] = lanes * bits;
                }
                accumulateTile<3>(ft, bn, w0, b0, raw + lo);
            }
            break;
          case R::Queue:
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const Inst& in = insts[lo + t];
                    const double lanes = double(in.lanes(id));
                    ft[0][t] = lanes * double(in.val(s.sym)) * bits;
                    ft[1][t] = lanes;
                }
                accumulateTile<2>(ft, bn, w0, b0, raw + lo);
            }
            break;
          case R::Counter:
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const Inst& in = insts[lo + t];
                    const double lanes = double(
                        s.ref != kNoNode ? in.lanes(s.ref)
                                         : int64_t(1));
                    const double vec = double(std::max<int64_t>(
                        1, s.ref != kNoNode ? in.par(s.ref) : 1));
                    ft[0][t] = lanes * double(tb.ctrDims);
                    ft[1][t] = lanes * vec;
                    ft[2][t] = lanes;
                }
                accumulateTile<3>(ft, bn, w0, b0, raw + lo);
            }
            break;
          case R::PipeCtrl:
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const Inst& in = insts[lo + t];
                    const double lanes = double(in.lanes(id));
                    const double vec =
                        double(std::max<int64_t>(1, in.par(id)));
                    ft[0][t] = lanes;
                    ft[1][t] = lanes * vec;
                }
                accumulateTile<2>(ft, bn, w0, b0, raw + lo);
            }
            break;
          case R::Ctrl:
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const Inst& in = insts[lo + t];
                    const double lanes = double(in.lanes(id));
                    const double vec =
                        double(std::max<int64_t>(1, in.par(id)));
                    ft[0][t] = lanes;
                    ft[1][t] = lanes * double(tb.stages);
                    ft[2][t] = lanes * vec;
                }
                accumulateTile<3>(ft, bn, w0, b0, raw + lo);
            }
            break;
          case R::CtrlSeqOrMeta:
            // Weight bundle toggles per point; stays scalar.
            for (size_t p = 0; p < n; ++p) {
                const Inst& in = insts[p];
                const double lanes = double(in.lanes(id));
                const double vec =
                    double(std::max<int64_t>(1, in.par(id)));
                f[0] = lanes;
                f[1] = lanes * double(tb.stages);
                f[2] = lanes * vec;
                const bool alt = in.metaActive(id);
                accumulate<3>(f, k.w[alt], k.b[alt], raw[p]);
            }
            break;
          case R::Reduce:
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const Inst& in = insts[lo + t];
                    const double lanes = double(in.lanes(id));
                    const double vec =
                        double(std::max<int64_t>(1, in.par(id)));
                    ft[0][t] = lanes * std::max(0.0, vec - 1.0);
                    ft[1][t] =
                        lanes * std::log2(1.0 + vec) * bits / 32.0;
                    ft[2][t] = lanes;
                }
                accumulateTile<3>(ft, bn, w0, b0, raw + lo);
            }
            break;
          case R::DelayLine: {
            const bool fifo = tb.depth > kBramDelayThreshold;
            const double f0w = fifo ? 0.0 : tb.delayBits;
            const double f1w =
                fifo ? std::ceil(tb.delayBits / 20480.0) : 0.0;
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const Inst& in = insts[lo + t];
                    const double lanes =
                        double(in.lanes(id) * in.par(id));
                    ft[0][t] = f0w * lanes;
                    ft[1][t] = f1w * lanes;
                    ft[2][t] = lanes;
                }
                accumulateTile<3>(ft, bn, w0, b0, raw + lo);
            }
            break;
          }
          case R::Tile:
            for (size_t lo = 0; lo < n; lo += kAreaTile) {
                const size_t bn = std::min(kAreaTile, n - lo);
                for (size_t t = 0; t < bn; ++t) {
                    const Inst& in = insts[lo + t];
                    const double lanes = double(in.lanes(id));
                    const double vec =
                        double(std::max<int64_t>(1, in.val(s.sym)));
                    int64_t e = 1;
                    for (const Sym& x : *s.extent)
                        e *= in.val(x);
                    const double width = bits * vec;
                    ft[0][t] = lanes;
                    ft[1][t] = lanes * width;
                    ft[2][t] = lanes * std::log2(1.0 + double(e));
                    ft[3][t] =
                        lanes * std::ceil(512.0 * width / 20480.0);
                }
                accumulateTile<4>(ft, bn, w0, b0, raw + lo);
            }
            break;
          case R::Generic:
            for (size_t p = 0; p < n; ++p) {
                TemplateInst t;
                patchTemplate(s, insts[p], t);
                AreaModel::featuresInto(t, f);
                const bool alt =
                    k.dual &&
                    t.tkind == TemplateKind::MetaPipeCtrl;
                accumulateN(f, k.nf, k.w[alt], k.b[alt], raw[p]);
            }
            break;
        }
    }

    // Batched ANN tail: design-feature rows, scaling, the three
    // effect networks, then per-point assembly.
    ws.designFeat.resize(n * kd);
    ws.scaled.resize(n * kd);
    ws.route.resize(n);
    ws.dupReg.resize(n);
    ws.unavail.resize(n);
    for (size_t p = 0; p < n; ++p) {
        const Resources& raw = ws.raw[p];
        double* df = &ws.designFeat[p * kd];
        df[0] = std::log2(1.0 + raw.lutsPack);
        df[1] = std::log2(1.0 + raw.lutsNoPack);
        df[2] = std::log2(1.0 + raw.regs);
        df[3] = std::log2(1.0 + raw.dsps);
        df[4] = std::log2(1.0 + raw.brams);
        df[5] = bp.log2n_;
        df[6] = bp.nCtrl_;
        df[7] = bp.nMem_;
        df[8] = bp.nXfer_;
        df[9] = bp.bitsOverN_;
        df[10] = raw.totalLuts() / bp.lutsDenom_;
    }
    featScaler_.transformBatch(ws.designFeat.data(), n,
                               ws.scaled.data());
    routeNet_.forwardBatch(ws.scaled.data(), n, ws.route.data(),
                           ws.mlp);
    dupRegNet_.forwardBatch(ws.scaled.data(), n, ws.dupReg.data(),
                            ws.mlp);
    unavailNet_.forwardBatch(ws.scaled.data(), n, ws.unavail.data(),
                             ws.mlp);
    for (size_t p = 0; p < n; ++p)
        out[p] = assemble(ws.raw[p],
                          targetScaler_.inverseColumn(0, ws.route[p]),
                          targetScaler_.inverseColumn(1, ws.dupReg[p]),
                          targetScaler_.inverseColumn(2, ws.unavail[p]),
                          packRate_);
}

AreaEstimate
AreaEstimator::estimate(const Inst& inst) const
{
    AreaWorkspace ws;
    return estimate(inst, ws);
}

AreaEstimate
AreaEstimator::estimate(const Inst& inst, AreaWorkspace& ws) const
{
    expandTemplates(inst, ws.templates);
    return estimateList(ws.templates, ws);
}

AreaEstimate
AreaEstimator::estimateAnalyticOnly(
    const std::vector<TemplateInst>& ts) const
{
    // Average correction factors straight from Section IV-A prose
    // (~10% routing, ~5% duplicated registers, ~4% unavailable), with
    // the BRAM-dup linear model replaced by its training-mean slope.
    // The paper's literal packing assumption ("all packable LUTs will
    // be packed") without the calibration step.
    Resources raw = model_.rawCount(ts);
    return assemble(raw, 0.10, 0.05, 0.04, 1.0);
}

const fpga::VendorToolchain&
defaultToolchain()
{
    static fpga::VendorToolchain tc;
    return tc;
}

const AreaEstimator&
calibratedEstimator()
{
    static AreaEstimator est(defaultToolchain());
    return est;
}

} // namespace dhdl::est

#include "estimate/area_estimator.hh"

#include <algorithm>
#include <cmath>

#include "ml/serialize.hh"

namespace dhdl::est {

std::vector<double>
AreaEstimator::designFeatures(const AreaModel& model,
                              const fpga::Device& dev,
                              const std::vector<TemplateInst>& ts,
                              Resources raw)
{
    std::vector<double> out;
    designFeaturesInto(model, dev, ts, raw, out);
    return out;
}

void
AreaEstimator::designFeaturesInto(const AreaModel& model,
                                  const fpga::Device& dev,
                                  const std::vector<TemplateInst>& ts,
                                  Resources raw,
                                  std::vector<double>& out)
{
    (void)model;
    double n_ctrl = 0, n_mem = 0, n_xfer = 0, bits_sum = 0;
    for (const auto& t : ts) {
        switch (t.tkind) {
          case TemplateKind::PipeCtrl:
          case TemplateKind::SeqCtrl:
          case TemplateKind::ParCtrl:
          case TemplateKind::MetaPipeCtrl:
            n_ctrl += 1;
            break;
          case TemplateKind::BramInst:
          case TemplateKind::RegInst:
          case TemplateKind::QueueInst:
            n_mem += 1;
            break;
          case TemplateKind::TileTransfer:
            n_xfer += 1;
            break;
          default:
            break;
        }
        bits_sum += t.bits;
    }
    double n = double(std::max<size_t>(1, ts.size()));
    out.assign({
        std::log2(1.0 + raw.lutsPack),
        std::log2(1.0 + raw.lutsNoPack),
        std::log2(1.0 + raw.regs),
        std::log2(1.0 + raw.dsps),
        std::log2(1.0 + raw.brams),
        std::log2(1.0 + n),
        n_ctrl,
        n_mem,
        n_xfer,
        bits_sum / n,
        raw.totalLuts() / double(dev.alms * dev.lutsPerAlm),
    });
}

AreaEstimator::AreaEstimator(const fpga::VendorToolchain& tc,
                             int train_designs, uint64_t seed)
    : dev_(tc.device()), routeNet_({11, 6, 1}, seed ^ 1),
      dupRegNet_({11, 6, 1}, seed ^ 2), unavailNet_({11, 6, 1}, seed ^ 3)
{
    // Step 1: characterize templates and fit the analytical models.
    model_.fit(characterizeTemplates(tc));

    // Step 2: train the post-P&R effect networks on random designs.
    auto samples = fpga::randomDesignSamples(tc, train_designs, seed);

    std::vector<std::vector<double>> feats;
    std::vector<std::vector<double>> targets; // route, dupReg, unavail
    std::vector<std::vector<double>> route_x; // for the BRAM-dup fit
    std::vector<double> bram_y;

    for (const auto& s : samples) {
        Resources raw = model_.rawCount(s.templates);
        if (raw.totalLuts() <= 0 || raw.regs <= 0)
            continue;
        feats.push_back(designFeatures(model_, dev_, s.templates, raw));
        targets.push_back({s.report.routeLuts / raw.totalLuts(),
                           s.report.dupRegs / raw.regs,
                           s.report.unavailLuts / raw.totalLuts()});
        route_x.push_back({s.report.routeLuts});
        bram_y.push_back(s.report.dupBrams / std::max(1.0, raw.brams));
    }
    require(feats.size() >= 10, "too few usable training designs");

    featScaler_.fit(feats);
    targetScaler_.fit(targets);
    std::vector<std::vector<double>> xs(feats.size());
    std::array<std::vector<std::vector<double>>, 3> ys;
    for (size_t i = 0; i < feats.size(); ++i) {
        xs[i] = featScaler_.transformed(feats[i]);
        for (int f = 0; f < 3; ++f)
            ys[size_t(f)].push_back(
                {targetScaler_.scaleColumn(size_t(f),
                                           targets[i][size_t(f)])});
    }

    ml::RpropTrainer(routeNet_).train(xs, ys[0], 600);
    ml::RpropTrainer(dupRegNet_).train(xs, ys[1], 600);
    ml::RpropTrainer(unavailNet_).train(xs, ys[2], 600);

    // Step 3: BRAM duplication as a linear function of the number of
    // routing LUTs, "fit using the same data used to train the neural
    // networks". The regressand is the duplication *fraction* so the
    // prediction scales with the design's own block RAM count.
    bramDup_.fit(route_x, bram_y);

    // Step 4: calibrate the packing rate: 1-D search for the rate
    // that minimizes mean relative ALM error on the training designs.
    double best_rate = 1.0, best_err = 1e300;
    for (double rate = 0.5; rate <= 1.001; rate += 0.01) {
        packRate_ = rate;
        double err = 0;
        int m = 0;
        for (const auto& s : samples) {
            if (s.report.alms < 1000)
                continue;
            auto e = estimateList(s.templates);
            err += std::fabs(e.alms - s.report.alms) / s.report.alms;
            ++m;
        }
        if (m > 0 && err / m < best_err) {
            best_err = err / m;
            best_rate = rate;
        }
    }
    packRate_ = best_rate;
}

AreaEstimator::AreaEstimator(fpga::Device dev, std::istream& is)
    : dev_(std::move(dev)), routeNet_({1, 1}), dupRegNet_({1, 1}),
      unavailNet_({1, 1})
{
    std::string tag, version;
    is >> tag >> version;
    require(bool(is) && tag == "area_estimator" && version == "v1",
            "bad calibration file header");
    model_ = AreaModel::load(is);
    routeNet_ = ml::loadMlp(is);
    dupRegNet_ = ml::loadMlp(is);
    unavailNet_ = ml::loadMlp(is);
    featScaler_ = ml::loadScaler(is);
    targetScaler_ = ml::loadScaler(is);
    bramDup_ = ml::loadLinear(is);
    auto rate = ml::readDoubles(is, "pack_rate");
    require(rate.size() == 1, "bad pack-rate record");
    packRate_ = rate.front();
}

void
AreaEstimator::save(std::ostream& os) const
{
    os << "area_estimator v1\n";
    model_.save(os);
    ml::saveMlp(os, routeNet_);
    ml::saveMlp(os, dupRegNet_);
    ml::saveMlp(os, unavailNet_);
    ml::saveScaler(os, featScaler_);
    ml::saveScaler(os, targetScaler_);
    ml::saveLinear(os, bramDup_);
    ml::writeDoubles(os, "pack_rate", {packRate_});
}

AreaEstimate
AreaEstimator::assemble(const std::vector<TemplateInst>& ts,
                        Resources raw, double route_frac,
                        double dup_reg_frac, double unavail_frac,
                        double pack_rate) const
{
    (void)ts;
    AreaEstimate e;
    e.raw = raw;
    e.routeLuts = std::max(0.0, route_frac) * raw.totalLuts();
    e.dupRegs = std::max(0.0, dup_reg_frac) * raw.regs;
    e.unavailLuts = std::max(0.0, unavail_frac) * raw.totalLuts();
    e.dupBrams =
        std::max(0.0, bramDup_.predict1(e.routeLuts)) * raw.brams;

    // LUT packing: routing LUTs are assumed packable; packable LUTs
    // pack pairwise (at the calibrated rate) into compute units with
    // two registers each.
    double packable = raw.lutsPack + e.routeLuts;
    double unpackable = raw.lutsNoPack + e.unavailLuts;
    double logic_units =
        unpackable + packable * (1.0 - pack_rate / 2.0);

    e.luts = raw.totalLuts() + e.routeLuts + e.unavailLuts;
    e.regs = raw.regs + e.dupRegs;
    // DSP counts are integral in reality; rounding (not ceiling) the
    // fitted estimate avoids a systematic +1 at small counts.
    e.dsps = std::round(raw.dsps);
    e.brams = std::ceil(raw.brams + e.dupBrams);

    double reg_units = std::max(
        0.0, (e.regs - double(dev_.regsPerAlm) * logic_units) /
                 double(dev_.regsPerAlm));
    e.alms = logic_units + reg_units;
    return e;
}

AreaEstimate
AreaEstimator::estimateList(const std::vector<TemplateInst>& ts,
                            std::vector<double>& feat) const
{
    Resources raw;
    for (const auto& t : ts)
        raw += model_.cost(t, feat);
    auto f = featScaler_.transformed(
        designFeatures(model_, dev_, ts, raw));
    double route = targetScaler_.inverseColumn(
        0, routeNet_.predictScalar(f));
    double dup_reg = targetScaler_.inverseColumn(
        1, dupRegNet_.predictScalar(f));
    double unavail = targetScaler_.inverseColumn(
        2, unavailNet_.predictScalar(f));
    return assemble(ts, raw, route, dup_reg, unavail, packRate_);
}

AreaEstimate
AreaEstimator::estimateList(const std::vector<TemplateInst>& ts,
                            AreaWorkspace& ws) const
{
    Resources raw;
    for (const auto& t : ts)
        raw += model_.cost(t, ws.feat);
    designFeaturesInto(model_, dev_, ts, raw, ws.designFeat);
    featScaler_.transformInto(ws.designFeat, ws.scaled);
    double route = targetScaler_.inverseColumn(
        0, routeNet_.predictScalar(ws.scaled, ws.mlpA, ws.mlpB));
    double dup_reg = targetScaler_.inverseColumn(
        1, dupRegNet_.predictScalar(ws.scaled, ws.mlpA, ws.mlpB));
    double unavail = targetScaler_.inverseColumn(
        2, unavailNet_.predictScalar(ws.scaled, ws.mlpA, ws.mlpB));
    return assemble(ts, raw, route, dup_reg, unavail, packRate_);
}

AreaEstimate
AreaEstimator::estimateList(const std::vector<TemplateInst>& ts) const
{
    std::vector<double> feat;
    return estimateList(ts, feat);
}

AreaEstimate
AreaEstimator::estimate(const Inst& inst) const
{
    AreaWorkspace ws;
    return estimate(inst, ws);
}

AreaEstimate
AreaEstimator::estimate(const Inst& inst, AreaWorkspace& ws) const
{
    expandTemplates(inst, ws.templates);
    return estimateList(ws.templates, ws);
}

AreaEstimate
AreaEstimator::estimateAnalyticOnly(
    const std::vector<TemplateInst>& ts) const
{
    // Average correction factors straight from Section IV-A prose
    // (~10% routing, ~5% duplicated registers, ~4% unavailable), with
    // the BRAM-dup linear model replaced by its training-mean slope.
    // The paper's literal packing assumption ("all packable LUTs will
    // be packed") without the calibration step.
    Resources raw = model_.rawCount(ts);
    return assemble(ts, raw, 0.10, 0.05, 0.04, 1.0);
}

const fpga::VendorToolchain&
defaultToolchain()
{
    static fpga::VendorToolchain tc;
    return tc;
}

const AreaEstimator&
calibratedEstimator()
{
    static AreaEstimator est(defaultToolchain());
    return est;
}

} // namespace dhdl::est

/**
 * @file
 * High-level power estimation — the extension axis the paper points
 * at via Chen et al. [26] ("perform design space exploration using a
 * high-level power estimator ... characterize area usage of
 * primitives and fit linear models"). Mirrors the area methodology:
 * per-template linear power models fit from isolated vectorless
 * power reports, plus a design-level linear correction for the clock
 * tree and static leakage, fit on the same random design samples the
 * area ANNs train on.
 */

#ifndef DHDL_ESTIMATE_POWER_MODEL_HH
#define DHDL_ESTIMATE_POWER_MODEL_HH

#include <unordered_map>

#include "analysis/instance.hh"
#include "fpga/characterize.hh"
#include "ml/linreg.hh"

namespace dhdl::est {

/** Calibrated template-level + design-level power estimator. */
class PowerEstimator
{
  public:
    /** Calibrate against a toolchain (characterization + fit). */
    explicit PowerEstimator(const fpga::VendorToolchain& tc,
                            int train_designs = 120,
                            uint64_t seed = 0x90E7ull);

    /** Estimated total power of a design instance, mW. */
    double estimateMw(const Inst& inst) const;

    /** Estimated total power of a template list, mW. */
    double estimateListMw(const std::vector<TemplateInst>& ts) const;

    /**
     * Estimate insts[0..n) into out[0..n), reusing one template
     * expansion scratch vector across the batch. Each point runs the
     * exact estimateMw() arithmetic.
     */
    void estimateBatchMw(const InstPool& insts, size_t n, double* out,
                         std::vector<TemplateInst>& scratch) const;

    /** Template-level dynamic power only (no clock tree/static). */
    double templateMw(const TemplateInst& t) const;

  private:
    std::unordered_map<uint64_t, ml::LinearModel> models_;
    ml::LinearModel designLevel_; //!< total ~ [sum dyn, raw LUTs].
};

/** Process-wide power estimator against the default toolchain. */
const PowerEstimator& calibratedPowerEstimator();

} // namespace dhdl::est

#endif // DHDL_ESTIMATE_POWER_MODEL_HH

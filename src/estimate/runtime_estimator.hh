/**
 * @file
 * Cycle-count estimation (Section IV-B1). Recursive over the
 * controller hierarchy:
 *
 *  - Pipe: critical-path depth (ASAP schedule) + one initiation per
 *    iteration (II = 1), with the reduce tree drain when applicable;
 *  - Sequential (and inactive MetaPipes): trip * sum of stage times;
 *  - active MetaPipe: (N-1) * max(stage) + sum(stage) — the paper's
 *    recursive formula;
 *  - Parallel: max over children;
 *  - TileLd/TileSt: command count and length against the achieved
 *    DRAM bandwidth, de-rated by burst efficiency for short rows and
 *    by contention from competing concurrent accessors.
 */

#ifndef DHDL_ESTIMATE_RUNTIME_ESTIMATOR_HH
#define DHDL_ESTIMATE_RUNTIME_ESTIMATOR_HH

#include "analysis/critical_path.hh"
#include "analysis/instance.hh"
#include "fpga/device.hh"

namespace dhdl::est {

/** Runtime estimate for one design instance. */
struct RuntimeEstimate {
    double cycles = 0;
    double seconds = 0;
};

/** Static runtime model over a DHDL design instance. */
class RuntimeEstimator
{
  public:
    explicit RuntimeEstimator(fpga::Device dev = fpga::Device::maia());

    /** Estimate total execution cycles of the design. */
    RuntimeEstimate estimate(const Inst& inst) const;

    /**
     * Estimate insts[0..n) into out[0..n). The cycle model is a
     * recursion over the controller hierarchy, so each point runs the
     * exact estimate() arithmetic; the batched entry lets the
     * evaluator drive one call (and one timing span) per batch.
     */
    void estimateBatch(const InstPool& insts, size_t n,
                       RuntimeEstimate* out) const;

    /** Estimated cycles for one controller subtree (exposed for
     *  tests). */
    double ctrlCycles(const Inst& inst, NodeId ctrl) const;

    /** Estimated cycles for a single tile transfer. */
    double transferCycles(const Inst& inst, NodeId xfer) const;

    const fpga::Device& device() const { return dev_; }

  private:
    double stageCycles(const Inst& inst, NodeId stage) const;

    /**
     * Transfers that may be in flight concurrently with xfer: the
     * rival set of the binding's first active concurrency ancestor
     * (pre-resolved in the plan), or null when none applies.
     */
    const std::vector<NodeId>* competitors(const Inst& inst,
                                           NodeId xfer) const;

    /** Peak bytes/cycle the on-chip side of a transfer can sink. */
    double onchipBytesPerCycle(const Inst& inst, NodeId xfer) const;

    /** Total payload bytes a transfer moves per activation. */
    double transferBytes(const Inst& inst, NodeId xfer) const;

    fpga::Device dev_;
};

} // namespace dhdl::est

#endif // DHDL_ESTIMATE_RUNTIME_ESTIMATOR_HH

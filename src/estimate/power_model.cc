#include "estimate/power_model.hh"

#include <algorithm>

#include "estimate/area_estimator.hh"
#include "fpga/silicon.hh"

namespace dhdl::est {

PowerEstimator::PowerEstimator(const fpga::VendorToolchain& tc,
                               int train_designs, uint64_t seed)
{
    // Per-class template power models on the characterization sweep.
    auto samples = characterizeTemplates(tc);
    std::unordered_map<uint64_t,
                       std::pair<std::vector<std::vector<double>>,
                                 std::vector<double>>>
        groups;
    for (const auto& s : samples) {
        auto& g = groups[AreaModel::classKey(s.inst)];
        g.first.push_back(AreaModel::features(s.inst));
        g.second.push_back(s.powerMw);
    }
    for (auto& [key, g] : groups)
        models_[key].fit(g.first, g.second, 1e-6);

    // Design-level correction: clock tree + static leakage + bias,
    // fit against whole-design power reports.
    auto designs = fpga::randomDesignSamples(tc, train_designs, seed);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    // The LUT feature uses the shared calibrated area model so the
    // fit-time and predict-time inputs come from the same estimator.
    const AreaModel& area = calibratedEstimator().model();
    for (const auto& d : designs) {
        double dyn = 0;
        for (const auto& t : d.templates)
            dyn += templateMw(t);
        Resources raw = area.rawCount(d.templates);
        x.push_back({dyn, raw.totalLuts()});
        y.push_back(d.report.powerMw);
    }
    designLevel_.fit(x, y);
}

double
PowerEstimator::templateMw(const TemplateInst& t) const
{
    auto it = models_.find(AreaModel::classKey(t));
    if (it == models_.end()) {
        TemplateInst d = t;
        d.op = Op::Add;
        d.isFloat = false;
        it = models_.find(AreaModel::classKey(d));
        require(it != models_.end(),
                "uncharacterized template class for power");
    }
    return std::max(0.0, it->second.predict(AreaModel::features(t)));
}

double
PowerEstimator::estimateListMw(
    const std::vector<TemplateInst>& ts) const
{
    double dyn = 0;
    for (const auto& t : ts)
        dyn += templateMw(t);
    // The raw-LUT proxy for the clock-tree term comes from the
    // calibrated area model of the shared estimator.
    Resources raw = calibratedEstimator().model().rawCount(ts);
    return std::max(0.0,
                    designLevel_.predict({dyn, raw.totalLuts()}));
}

double
PowerEstimator::estimateMw(const Inst& inst) const
{
    return estimateListMw(expandTemplates(inst));
}

void
PowerEstimator::estimateBatchMw(const InstPool& insts, size_t n,
                                double* out,
                                std::vector<TemplateInst>& scratch) const
{
    for (size_t p = 0; p < n; ++p) {
        expandTemplates(insts[p], scratch);
        out[p] = estimateListMw(scratch);
    }
}

const PowerEstimator&
calibratedPowerEstimator()
{
    static PowerEstimator est(defaultToolchain());
    return est;
}

} // namespace dhdl::est

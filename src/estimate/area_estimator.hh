/**
 * @file
 * Hybrid area estimation (Section IV-B2). Pipeline:
 *
 *  1. Count raw resources per node from the fitted template models
 *     (including delay-matching resources from ASAP slack analysis).
 *  2. Predict global post-P&R effects with small ANNs (11-6-1, one
 *     per factor): routing LUTs, duplicated registers, unavailable
 *     LUTs. Duplicated BRAMs are a linear function of routing LUTs.
 *  3. Add the effects to the raw counts, then model LUT packing
 *     ("the simple assumption that all packable LUTs will be
 *     packed"), pairing packable LUTs into compute units with two
 *     registers each, to obtain ALMs, DSPs and BRAMs.
 *
 * The estimator is calibrated once per device + toolchain: template
 * characterization plus ANN training on 200 random design samples.
 */

#ifndef DHDL_ESTIMATE_AREA_ESTIMATOR_HH
#define DHDL_ESTIMATE_AREA_ESTIMATOR_HH

#include <iostream>
#include <memory>

#include "analysis/instance.hh"
#include "estimate/area_model.hh"
#include "ml/mlp.hh"
#include "ml/scaler.hh"

namespace dhdl::est {

/** Full area estimate with the intermediate effect predictions. */
struct AreaEstimate {
    Resources raw;          //!< Template-model resource counts.
    double routeLuts = 0;   //!< Predicted route-through LUTs.
    double dupRegs = 0;     //!< Predicted duplicated registers.
    double unavailLuts = 0; //!< Predicted unusable LUTs.
    double dupBrams = 0;    //!< Predicted duplicated block RAMs.
    double alms = 0;
    double luts = 0;
    double regs = 0;
    double dsps = 0;
    double brams = 0;

    bool
    fits(const fpga::Device& d) const
    {
        return alms <= double(d.alms) && dsps <= double(d.dsps) &&
               brams <= double(d.m20ks);
    }
};

/**
 * Reusable scratch storage for evaluate-many sweeps. One workspace
 * per evaluating thread; its vectors keep their capacity across
 * points so the steady state allocates nothing.
 */
struct AreaWorkspace {
    std::vector<TemplateInst> templates;
    std::vector<double> feat;       //!< per-template feature scratch
    std::vector<double> designFeat; //!< 11 ANN design features
    std::vector<double> scaled;     //!< scaled ANN input
    ml::MlpWorkspace mlp;           //!< MLP ping-pong scratch
};

/**
 * Binding-invariant compilation of one design's area estimate: every
 * template slot's linear-model bundle resolved and packed into
 * contiguous weight rows, plus the seven ANN design features that do
 * not depend on the binding (template-kind counts and bit widths are
 * fixed by the plan; only the raw resource totals vary per point).
 * Built once per explored design, shared read-only by every worker.
 *
 * A CtrlSeqOrMeta slot toggles between SeqCtrl and MetaPipeCtrl per
 * binding, so it carries both kinds' bundles and the batch kernel
 * selects per point. Both kinds count as control templates and share
 * a feature layout, so the invariant features stay invariant.
 */
class AreaBatchPlan
{
  public:
    AreaBatchPlan() = default;

    /**
     * False when some slot's template class is uncharacterized (or
     * fitted with a mismatched arity): batched evaluation must then
     * fall back to the scalar path, which reports the failure with
     * per-point diagnostics instead of throwing mid-batch.
     */
    bool ok() const { return ok_; }

    const DesignPlan* plan() const { return plan_; }

    /**
     * Fused patch+featurize recipe per slot, resolved from the slot's
     * (patch, base kind) pair at plan build. Each recipe computes the
     * slot kind's exact featuresInto() expressions straight from the
     * bound instance — same value provenance, same conversions, same
     * operation order — without materializing the TemplateInst copy
     * the scalar path patches. Generic covers any unexpected combo by
     * running the scalar patch+featurize per point.
     */
    enum class Recipe : uint8_t {
        Prim,
        LoadStore,
        Bram,
        Reg,
        Queue,
        Counter,
        PipeCtrl,
        Ctrl,          //!< Seq/Par/Meta via the static Ctrl patch.
        CtrlSeqOrMeta, //!< Ctrl features + per-point bundle toggle.
        Reduce,
        DelayLine,
        Tile,
        Generic,
    };

  private:
    friend class AreaEstimator;

    /** One slot's packed model bundle(s): weights laid out for a
     *  single fused pass over the feature row. */
    struct SlotKernel {
        const TemplateSlot* slot = nullptr;
        uint32_t nf = 0;    //!< feature count of the slot's kind
        Recipe recipe = Recipe::Generic;
        bool dual = false;  //!< CtrlSeqOrMeta: [1] = MetaPipeCtrl
        /** [variant][lutsPack,lutsNoPack,regs,dsps,brams][feature] */
        double w[2][5][AreaModel::kMaxFeatures] = {};
        double b[2][5] = {};
    };

    std::vector<SlotKernel> kernels_;
    const DesignPlan* plan_ = nullptr;
    double nCtrl_ = 0;     //!< control-template count
    double nMem_ = 0;      //!< on-chip memory template count
    double nXfer_ = 0;     //!< tile-transfer template count
    double log2n_ = 0;     //!< log2(1 + template count)
    double bitsOverN_ = 0; //!< mean template bit width
    double lutsDenom_ = 1; //!< device LUT capacity (ratio feature)
    bool ok_ = false;
};

/**
 * Structure-of-arrays scratch for batched estimation: per-point raw
 * totals from the fused slot kernels, then the batched ANN tail. One
 * workspace per evaluating thread; steady state allocates nothing.
 */
struct AreaBatchWorkspace {
    std::vector<Resources> raw;        //!< per-point raw totals
    std::vector<double> designFeat;    //!< n x 11 ANN features
    std::vector<double> scaled;        //!< n x 11 scaled rows
    std::vector<double> route;         //!< routeNet outputs
    std::vector<double> dupReg;        //!< dupRegNet outputs
    std::vector<double> unavail;       //!< unavailNet outputs
    ml::MlpWorkspace mlp;
};

/** Calibrated hybrid area estimator. */
class AreaEstimator
{
  public:
    /**
     * Calibrate against a toolchain: run the template
     * characterization sweep, fit the analytical models, then train
     * the effect ANNs on train_designs random design samples.
     */
    explicit AreaEstimator(const fpga::VendorToolchain& tc,
                           int train_designs = 200,
                           uint64_t seed = 0xA11CE);

    /**
     * Restore a previously calibrated estimator from a stream (see
     * save()); `dev` must be the device it was calibrated for.
     */
    AreaEstimator(fpga::Device dev, std::istream& is);

    /** Persist the full calibration (template models, ANNs, scalers,
     *  BRAM-duplication fit, packing rate). */
    void save(std::ostream& os) const;

    /** Estimate a whole design instance. */
    AreaEstimate estimate(const Inst& inst) const;

    /**
     * Estimate a design instance reusing per-thread scratch storage;
     * ws.templates holds the expansion on return.
     */
    AreaEstimate estimate(const Inst& inst, AreaWorkspace& ws) const;

    /** Estimate a pre-expanded template list. */
    AreaEstimate
    estimateList(const std::vector<TemplateInst>& ts) const;

    /** estimateList with reusable feature scratch. */
    AreaEstimate estimateList(const std::vector<TemplateInst>& ts,
                              std::vector<double>& feat) const;

    /** estimateList with the full per-thread workspace (no allocs). */
    AreaEstimate estimateList(const std::vector<TemplateInst>& ts,
                              AreaWorkspace& ws) const;

    /**
     * Resolve every template slot of `plan` against the calibrated
     * models. Check ok() before using the result with estimateBatch;
     * a failed plan means the design has an uncharacterized template
     * class and points must take the scalar path.
     */
    AreaBatchPlan makeBatchPlan(const DesignPlan& plan) const;

    /**
     * Estimate insts[0..n) — n bindings of the batch plan's design —
     * into out[0..n). Iterates slot-outer: each template slot is
     * patched, featurized and costed across the whole batch before
     * moving to the next slot, which turns the per-point model
     * lookups into contiguous SIMD-friendly loops. Every per-point
     * arithmetic expression and accumulation order matches the scalar
     * estimate() path exactly, so out[i] is bit-identical to
     * estimate(insts[i], ws).
     */
    void estimateBatch(const AreaBatchPlan& bp, const InstPool& insts,
                       size_t n, AreaBatchWorkspace& ws,
                       AreaEstimate* out) const;

    /**
     * Ablation: analytic-only estimate with fixed average correction
     * factors instead of the ANNs (used by bench/ablation_estimator).
     */
    AreaEstimate
    estimateAnalyticOnly(const std::vector<TemplateInst>& ts) const;

    const AreaModel& model() const { return model_; }
    const fpga::Device& device() const { return dev_; }

    /** The 11 ANN input features for a design (Section IV-B2). */
    static std::vector<double>
    designFeatures(const AreaModel& model, const fpga::Device& dev,
                   const std::vector<TemplateInst>& ts, Resources raw);

    /** designFeatures() into a caller-owned buffer (no allocation). */
    static void
    designFeaturesInto(const AreaModel& model, const fpga::Device& dev,
                       const std::vector<TemplateInst>& ts,
                       Resources raw, std::vector<double>& out);

  private:
    AreaEstimate
    assemble(Resources raw, double route_frac, double dup_reg_frac,
             double unavail_frac, double pack_rate) const;

    fpga::Device dev_;
    AreaModel model_;
    ml::Mlp routeNet_;
    ml::Mlp dupRegNet_;
    ml::Mlp unavailNet_;
    ml::MinMaxScaler featScaler_;
    ml::MinMaxScaler targetScaler_; //!< 3 columns: route/dupReg/unavail.
    ml::LinearModel bramDup_;       //!< dupBrams ~ routeLuts.
    /**
     * Calibrated pairwise packing rate: fraction of packable LUTs the
     * toolchain actually packs, fit on the training designs (the
     * paper assumes 1.0 after observing ~0.8 in practice; calibrating
     * removes the systematic ALM bias of that assumption).
     */
    double packRate_ = 1.0;
};

/**
 * Process-wide calibrated estimator against the default MAIA board
 * toolchain (calibration runs once, lazily).
 */
const AreaEstimator& calibratedEstimator();

/** The toolchain instance paired with calibratedEstimator(). */
const fpga::VendorToolchain& defaultToolchain();

} // namespace dhdl::est

#endif // DHDL_ESTIMATE_AREA_ESTIMATOR_HH

/**
 * @file
 * Template-level analytical area models. Each template class (kind,
 * plus operator and number type for datapath templates) gets five
 * linear models — packable LUTs, unpackable LUTs, registers, DSPs and
 * block RAMs — fit against isolated characterization synthesis runs
 * (Section IV-B: "Using this data, we create analytical models of
 * each DHDL template's resource requirements"). The models are
 * application-independent and characterized once per device/toolchain.
 */

#ifndef DHDL_ESTIMATE_AREA_MODEL_HH
#define DHDL_ESTIMATE_AREA_MODEL_HH

#include <array>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "fpga/characterize.hh"
#include "ml/linreg.hh"

namespace dhdl::est {

/** Fitted per-template analytical resource models. */
class AreaModel
{
  public:
    /** Fit from characterization observations. */
    void fit(const std::vector<fpga::TemplateSample>& samples);

    /** Predicted raw resources of one template instance. */
    Resources cost(const TemplateInst& t) const;

    /**
     * Scratch-reusing variant for evaluate-many sweeps: `feat` is
     * overwritten with the instance's feature vector (its capacity is
     * reused across calls).
     */
    Resources cost(const TemplateInst& t,
                   std::vector<double>& feat) const;

    /** Predicted raw resources of a whole template list. */
    Resources rawCount(const std::vector<TemplateInst>& ts) const;

    /** Model-class key for a template instance (exposed for tests). */
    static uint64_t classKey(const TemplateInst& t);

    /** Feature vector used for the class's regression. */
    static std::vector<double> features(const TemplateInst& t);

    /** features(), written into reusable scratch storage. */
    static void featuresInto(const TemplateInst& t,
                             std::vector<double>& out);

    /** Upper bound on the per-template feature count (BramInst). */
    static constexpr size_t kMaxFeatures = 6;

    /**
     * features() into a raw buffer of at least kMaxFeatures slots;
     * returns the kind's feature count. This is the one definition of
     * the feature expressions — the vector overload and the batched
     * matrix form both delegate here, so every path computes
     * bit-identical values.
     */
    static size_t featuresInto(const TemplateInst& t, double* out);

    /**
     * Matrix form for batched sweeps: fill one row of kMaxFeatures
     * per instance (row-major, n x kMaxFeatures; unused tail columns
     * are left as-is). Returns the feature count of the instances'
     * kind, which is uniform for the template-slot batches this
     * serves (a CtrlSeqOrMeta slot alternates between SeqCtrl and
     * MetaPipeCtrl, which share a feature layout).
     */
    static size_t featuresBatchInto(const TemplateInst* ts, size_t n,
                                    double* out);

    /**
     * The class's fitted 5-model bundle (after the kind-wide default
     * fallback), or null when the class is uncharacterized. The
     * batched evaluator resolves every slot through this at batch-
     * plan build time so an uncharacterized class degrades to the
     * scalar path's per-point diagnostics instead of throwing from
     * inside a batch kernel.
     */
    const std::array<ml::LinearModel, 5>*
    tryModelsFor(const TemplateInst& t) const noexcept;

    size_t numClasses() const { return models_.size(); }

    /** Persist the fitted per-class models (text, versioned). */
    void save(std::ostream& os) const;

    /** Restore previously persisted models. */
    static AreaModel load(std::istream& is);

  private:
    /** The 5-model bundle for a template class, with the kind-wide
     *  default fallback; throws when uncharacterized. */
    const std::array<ml::LinearModel, 5>&
    modelsFor(const TemplateInst& t) const;

    /**
     * Rebuild the per-kind resolved table. Kinds whose class key is
     * op-independent (everything except PrimOp/ReduceTree) resolve to
     * one model bundle; copying it into a flat array at fit/load time
     * removes the per-cost hash lookup from the sweep's hot path.
     */
    void resolve();

    /** lutsPack, lutsNoPack, regs, dsps, brams. */
    std::unordered_map<uint64_t, std::array<ml::LinearModel, 5>> models_;

    struct Resolved {
        bool present = false;
        std::array<ml::LinearModel, 5> models;
    };
    std::array<Resolved, kNumTemplateKinds> resolved_;
};

} // namespace dhdl::est

#endif // DHDL_ESTIMATE_AREA_MODEL_HH

/**
 * @file
 * Template-level analytical area models. Each template class (kind,
 * plus operator and number type for datapath templates) gets five
 * linear models — packable LUTs, unpackable LUTs, registers, DSPs and
 * block RAMs — fit against isolated characterization synthesis runs
 * (Section IV-B: "Using this data, we create analytical models of
 * each DHDL template's resource requirements"). The models are
 * application-independent and characterized once per device/toolchain.
 */

#ifndef DHDL_ESTIMATE_AREA_MODEL_HH
#define DHDL_ESTIMATE_AREA_MODEL_HH

#include <array>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "fpga/characterize.hh"
#include "ml/linreg.hh"

namespace dhdl::est {

/** Fitted per-template analytical resource models. */
class AreaModel
{
  public:
    /** Fit from characterization observations. */
    void fit(const std::vector<fpga::TemplateSample>& samples);

    /** Predicted raw resources of one template instance. */
    Resources cost(const TemplateInst& t) const;

    /** Predicted raw resources of a whole template list. */
    Resources rawCount(const std::vector<TemplateInst>& ts) const;

    /** Model-class key for a template instance (exposed for tests). */
    static uint64_t classKey(const TemplateInst& t);

    /** Feature vector used for the class's regression. */
    static std::vector<double> features(const TemplateInst& t);

    size_t numClasses() const { return models_.size(); }

    /** Persist the fitted per-class models (text, versioned). */
    void save(std::ostream& os) const;

    /** Restore previously persisted models. */
    static AreaModel load(std::istream& is);

  private:
    /** lutsPack, lutsNoPack, regs, dsps, brams. */
    std::unordered_map<uint64_t, std::array<ml::LinearModel, 5>> models_;
};

} // namespace dhdl::est

#endif // DHDL_ESTIMATE_AREA_MODEL_HH

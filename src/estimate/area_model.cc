#include "estimate/area_model.hh"

#include <cmath>

#include "analysis/critical_path.hh"
#include "ml/serialize.hh"

namespace dhdl::est {

uint64_t
AreaModel::classKey(const TemplateInst& t)
{
    uint64_t k = uint64_t(t.tkind) << 16;
    if (t.tkind == TemplateKind::PrimOp ||
        t.tkind == TemplateKind::ReduceTree) {
        k |= uint64_t(t.op) << 1;
        k |= uint64_t(t.isFloat);
    }
    return k;
}

void
AreaModel::featuresInto(const TemplateInst& t, std::vector<double>& out)
{
    double lanes = double(t.lanes);
    double vec = double(std::max<int64_t>(1, t.vec));
    double bits = double(t.bits);
    double banks = double(std::max(1, t.banks));
    double copies = lanes * (t.doubleBuf ? 2.0 : 1.0);

    // assign() from a braced list reuses the vector's capacity, so a
    // sweep pays no allocation per template after warm-up.
    switch (t.tkind) {
      case TemplateKind::PrimOp:
        out.assign({lanes, lanes * bits, lanes * bits * bits / 64.0});
        return;
      case TemplateKind::LoadStore:
        out.assign({lanes, lanes * bits, lanes * banks,
                    lanes * bits * std::log2(std::max(1.0, banks))});
        return;
      case TemplateKind::BramInst: {
        // Physical block count is a deterministic function of the
        // geometry; give it to the regression as a feature. Banks of
        // 640 bits or less map to MLAB LUT-RAM, not M20K.
        double depth = std::ceil(double(t.elems) / banks);
        bool mlab = depth * bits <= 640.0;
        double phys = mlab ? 0.0
                           : std::max(std::ceil(depth * bits / 20480.0),
                                      std::ceil(bits / 40.0)) *
                                 banks * copies;
        double mlab_bits = mlab ? depth * bits * banks * copies : 0.0;
        out.assign({phys, mlab_bits, lanes, lanes * banks,
                    lanes * bits * banks / 32.0,
                    copies * bits * banks / 32.0});
        return;
      }
      case TemplateKind::RegInst:
        out.assign({copies * bits, lanes, lanes * bits});
        return;
      case TemplateKind::QueueInst:
        out.assign({lanes * double(t.depth) * bits, lanes});
        return;
      case TemplateKind::CounterInst:
        out.assign({lanes * double(t.ctrDims), lanes * vec, lanes});
        return;
      case TemplateKind::PipeCtrl:
        out.assign({lanes, lanes * vec});
        return;
      case TemplateKind::SeqCtrl:
      case TemplateKind::ParCtrl:
      case TemplateKind::MetaPipeCtrl:
        out.assign({lanes, lanes * double(t.stages), lanes * vec});
        return;
      case TemplateKind::TileTransfer: {
        double width = bits * vec;
        out.assign({lanes, lanes * width,
                    lanes * std::log2(1.0 + double(t.tileElems)),
                    lanes * std::ceil(512.0 * width / 20480.0)});
        return;
      }
      case TemplateKind::ReduceTree:
        out.assign({lanes * std::max(0.0, vec - 1.0),
                    lanes * std::log2(1.0 + vec) * bits / 32.0, lanes});
        return;
      case TemplateKind::DelayLine: {
        bool fifo = t.depth > kBramDelayThreshold;
        double bits_total = t.delayBits * lanes;
        out.assign({fifo ? 0.0 : bits_total,
                    fifo ? std::ceil(t.delayBits / 20480.0) * lanes
                         : 0.0,
                    lanes});
        return;
      }
    }
    out.assign({lanes});
}

std::vector<double>
AreaModel::features(const TemplateInst& t)
{
    std::vector<double> out;
    featuresInto(t, out);
    return out;
}

void
AreaModel::fit(const std::vector<fpga::TemplateSample>& samples)
{
    require(!samples.empty(), "no characterization samples");
    // Group samples per class.
    std::unordered_map<uint64_t, std::vector<const fpga::TemplateSample*>>
        groups;
    for (const auto& s : samples)
        groups[classKey(s.inst)].push_back(&s);

    models_.clear();
    for (auto& [key, group] : groups) {
        std::vector<std::vector<double>> x;
        std::array<std::vector<double>, 5> y;
        for (const auto* s : group) {
            x.push_back(features(s->inst));
            y[0].push_back(s->observed.lutsPack);
            y[1].push_back(s->observed.lutsNoPack);
            y[2].push_back(s->observed.regs);
            y[3].push_back(s->observed.dsps);
            y[4].push_back(s->observed.brams);
        }
        auto& ms = models_[key];
        for (int i = 0; i < 5; ++i)
            ms[size_t(i)].fit(x, y[size_t(i)], 1e-6);
    }
    resolve();
}

void
AreaModel::resolve()
{
    for (auto& r : resolved_)
        r.present = false;
    // Kinds other than PrimOp/ReduceTree ignore op/isFloat in their
    // class key, so each resolves to exactly one bundle.
    for (size_t k = 0; k < kNumTemplateKinds; ++k) {
        auto kind = TemplateKind(k);
        if (kind == TemplateKind::PrimOp ||
            kind == TemplateKind::ReduceTree)
            continue;
        auto it = models_.find(uint64_t(k) << 16);
        if (it == models_.end())
            continue;
        resolved_[k].present = true;
        resolved_[k].models = it->second;
    }
}

const std::array<ml::LinearModel, 5>&
AreaModel::modelsFor(const TemplateInst& t) const
{
    const auto& fast = resolved_[size_t(t.tkind)];
    if (fast.present)
        return fast.models;
    auto it = models_.find(classKey(t));
    if (it == models_.end()) {
        // Fall back to the kind-wide default class (op Add, fixed).
        TemplateInst d = t;
        d.op = Op::Add;
        d.isFloat = false;
        it = models_.find(classKey(d));
        require(it != models_.end(),
                std::string("uncharacterized template class: ") +
                    templateKindName(t.tkind));
    }
    return it->second;
}

Resources
AreaModel::cost(const TemplateInst& t, std::vector<double>& feat) const
{
    const auto& ms = modelsFor(t);
    featuresInto(t, feat);
    Resources r;
    r.lutsPack = std::max(0.0, ms[0].predict(feat));
    r.lutsNoPack = std::max(0.0, ms[1].predict(feat));
    r.regs = std::max(0.0, ms[2].predict(feat));
    r.dsps = std::max(0.0, ms[3].predict(feat));
    r.brams = std::max(0.0, ms[4].predict(feat));
    return r;
}

Resources
AreaModel::cost(const TemplateInst& t) const
{
    std::vector<double> feat;
    return cost(t, feat);
}

Resources
AreaModel::rawCount(const std::vector<TemplateInst>& ts) const
{
    Resources total;
    std::vector<double> feat;
    for (const auto& t : ts)
        total += cost(t, feat);
    return total;
}

void
AreaModel::save(std::ostream& os) const
{
    os << "area_model " << models_.size() << " v1\n";
    for (const auto& [key, ms] : models_) {
        os << "class " << key << "\n";
        for (const auto& m : ms)
            ml::saveLinear(os, m);
    }
}

AreaModel
AreaModel::load(std::istream& is)
{
    std::string tag, version;
    size_t count = 0;
    is >> tag >> count >> version;
    require(bool(is) && tag == "area_model" && version == "v1",
            "bad area-model file header");
    AreaModel model;
    for (size_t i = 0; i < count; ++i) {
        std::string ctag;
        uint64_t key = 0;
        is >> ctag >> key;
        require(bool(is) && ctag == "class",
                "bad area-model class record");
        auto& ms = model.models_[key];
        for (auto& m : ms)
            m = ml::loadLinear(is);
    }
    model.resolve();
    return model;
}

} // namespace dhdl::est

#include "estimate/area_model.hh"

#include <cmath>

#include "analysis/critical_path.hh"
#include "ml/serialize.hh"

namespace dhdl::est {

uint64_t
AreaModel::classKey(const TemplateInst& t)
{
    uint64_t k = uint64_t(t.tkind) << 16;
    if (t.tkind == TemplateKind::PrimOp ||
        t.tkind == TemplateKind::ReduceTree) {
        k |= uint64_t(t.op) << 1;
        k |= uint64_t(t.isFloat);
    }
    return k;
}

std::vector<double>
AreaModel::features(const TemplateInst& t)
{
    double lanes = double(t.lanes);
    double vec = double(std::max<int64_t>(1, t.vec));
    double bits = double(t.bits);
    double banks = double(std::max(1, t.banks));
    double copies = lanes * (t.doubleBuf ? 2.0 : 1.0);

    switch (t.tkind) {
      case TemplateKind::PrimOp:
        return {lanes, lanes * bits, lanes * bits * bits / 64.0};
      case TemplateKind::LoadStore:
        return {lanes, lanes * bits, lanes * banks,
                lanes * bits * std::log2(std::max(1.0, banks))};
      case TemplateKind::BramInst: {
        // Physical block count is a deterministic function of the
        // geometry; give it to the regression as a feature. Banks of
        // 640 bits or less map to MLAB LUT-RAM, not M20K.
        double depth = std::ceil(double(t.elems) / banks);
        bool mlab = depth * bits <= 640.0;
        double phys = mlab ? 0.0
                           : std::max(std::ceil(depth * bits / 20480.0),
                                      std::ceil(bits / 40.0)) *
                                 banks * copies;
        double mlab_bits = mlab ? depth * bits * banks * copies : 0.0;
        return {phys, mlab_bits, lanes, lanes * banks,
                lanes * bits * banks / 32.0,
                copies * bits * banks / 32.0};
      }
      case TemplateKind::RegInst:
        return {copies * bits, lanes, lanes * bits};
      case TemplateKind::QueueInst:
        return {lanes * double(t.depth) * bits, lanes};
      case TemplateKind::CounterInst:
        return {lanes * double(t.ctrDims), lanes * vec, lanes};
      case TemplateKind::PipeCtrl:
        return {lanes, lanes * vec};
      case TemplateKind::SeqCtrl:
      case TemplateKind::ParCtrl:
      case TemplateKind::MetaPipeCtrl:
        return {lanes, lanes * double(t.stages), lanes * vec};
      case TemplateKind::TileTransfer: {
        double width = bits * vec;
        return {lanes, lanes * width,
                lanes * std::log2(1.0 + double(t.tileElems)),
                lanes * std::ceil(512.0 * width / 20480.0)};
      }
      case TemplateKind::ReduceTree:
        return {lanes * std::max(0.0, vec - 1.0),
                lanes * std::log2(1.0 + vec) * bits / 32.0, lanes};
      case TemplateKind::DelayLine: {
        bool fifo = t.depth > kBramDelayThreshold;
        double bits_total = t.delayBits * lanes;
        return {fifo ? 0.0 : bits_total,
                fifo ? std::ceil(t.delayBits / 20480.0) * lanes : 0.0,
                lanes};
      }
    }
    return {lanes};
}

void
AreaModel::fit(const std::vector<fpga::TemplateSample>& samples)
{
    require(!samples.empty(), "no characterization samples");
    // Group samples per class.
    std::unordered_map<uint64_t, std::vector<const fpga::TemplateSample*>>
        groups;
    for (const auto& s : samples)
        groups[classKey(s.inst)].push_back(&s);

    models_.clear();
    for (auto& [key, group] : groups) {
        std::vector<std::vector<double>> x;
        std::array<std::vector<double>, 5> y;
        for (const auto* s : group) {
            x.push_back(features(s->inst));
            y[0].push_back(s->observed.lutsPack);
            y[1].push_back(s->observed.lutsNoPack);
            y[2].push_back(s->observed.regs);
            y[3].push_back(s->observed.dsps);
            y[4].push_back(s->observed.brams);
        }
        auto& ms = models_[key];
        for (int i = 0; i < 5; ++i)
            ms[size_t(i)].fit(x, y[size_t(i)], 1e-6);
    }
}

Resources
AreaModel::cost(const TemplateInst& t) const
{
    auto it = models_.find(classKey(t));
    if (it == models_.end()) {
        // Fall back to the kind-wide default class (op Add, fixed).
        TemplateInst d = t;
        d.op = Op::Add;
        d.isFloat = false;
        it = models_.find(classKey(d));
        require(it != models_.end(),
                std::string("uncharacterized template class: ") +
                    templateKindName(t.tkind));
    }
    auto f = features(t);
    const auto& ms = it->second;
    Resources r;
    r.lutsPack = std::max(0.0, ms[0].predict(f));
    r.lutsNoPack = std::max(0.0, ms[1].predict(f));
    r.regs = std::max(0.0, ms[2].predict(f));
    r.dsps = std::max(0.0, ms[3].predict(f));
    r.brams = std::max(0.0, ms[4].predict(f));
    return r;
}

Resources
AreaModel::rawCount(const std::vector<TemplateInst>& ts) const
{
    Resources total;
    for (const auto& t : ts)
        total += cost(t);
    return total;
}

void
AreaModel::save(std::ostream& os) const
{
    os << "area_model " << models_.size() << " v1\n";
    for (const auto& [key, ms] : models_) {
        os << "class " << key << "\n";
        for (const auto& m : ms)
            ml::saveLinear(os, m);
    }
}

AreaModel
AreaModel::load(std::istream& is)
{
    std::string tag, version;
    size_t count = 0;
    is >> tag >> count >> version;
    require(bool(is) && tag == "area_model" && version == "v1",
            "bad area-model file header");
    AreaModel model;
    for (size_t i = 0; i < count; ++i) {
        std::string ctag;
        uint64_t key = 0;
        is >> ctag >> key;
        require(bool(is) && ctag == "class",
                "bad area-model class record");
        auto& ms = model.models_[key];
        for (auto& m : ms)
            m = ml::loadLinear(is);
    }
    return model;
}

} // namespace dhdl::est

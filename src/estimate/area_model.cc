#include "estimate/area_model.hh"

#include <cmath>

#include "analysis/critical_path.hh"
#include "ml/serialize.hh"

namespace dhdl::est {

uint64_t
AreaModel::classKey(const TemplateInst& t)
{
    uint64_t k = uint64_t(t.tkind) << 16;
    if (t.tkind == TemplateKind::PrimOp ||
        t.tkind == TemplateKind::ReduceTree) {
        k |= uint64_t(t.op) << 1;
        k |= uint64_t(t.isFloat);
    }
    return k;
}

size_t
AreaModel::featuresInto(const TemplateInst& t, double* out)
{
    double lanes = double(t.lanes);
    double vec = double(std::max<int64_t>(1, t.vec));
    double bits = double(t.bits);
    double banks = double(std::max(1, t.banks));
    double copies = lanes * (t.doubleBuf ? 2.0 : 1.0);

    switch (t.tkind) {
      case TemplateKind::PrimOp:
        out[0] = lanes;
        out[1] = lanes * bits;
        out[2] = lanes * bits * bits / 64.0;
        return 3;
      case TemplateKind::LoadStore:
        out[0] = lanes;
        out[1] = lanes * bits;
        out[2] = lanes * banks;
        out[3] = lanes * bits * std::log2(std::max(1.0, banks));
        return 4;
      case TemplateKind::BramInst: {
        // Physical block count is a deterministic function of the
        // geometry; give it to the regression as a feature. Banks of
        // 640 bits or less map to MLAB LUT-RAM, not M20K.
        double depth = std::ceil(double(t.elems) / banks);
        bool mlab = depth * bits <= 640.0;
        double phys = mlab ? 0.0
                           : std::max(std::ceil(depth * bits / 20480.0),
                                      std::ceil(bits / 40.0)) *
                                 banks * copies;
        double mlab_bits = mlab ? depth * bits * banks * copies : 0.0;
        out[0] = phys;
        out[1] = mlab_bits;
        out[2] = lanes;
        out[3] = lanes * banks;
        out[4] = lanes * bits * banks / 32.0;
        out[5] = copies * bits * banks / 32.0;
        return 6;
      }
      case TemplateKind::RegInst:
        out[0] = copies * bits;
        out[1] = lanes;
        out[2] = lanes * bits;
        return 3;
      case TemplateKind::QueueInst:
        out[0] = lanes * double(t.depth) * bits;
        out[1] = lanes;
        return 2;
      case TemplateKind::CounterInst:
        out[0] = lanes * double(t.ctrDims);
        out[1] = lanes * vec;
        out[2] = lanes;
        return 3;
      case TemplateKind::PipeCtrl:
        out[0] = lanes;
        out[1] = lanes * vec;
        return 2;
      case TemplateKind::SeqCtrl:
      case TemplateKind::ParCtrl:
      case TemplateKind::MetaPipeCtrl:
        out[0] = lanes;
        out[1] = lanes * double(t.stages);
        out[2] = lanes * vec;
        return 3;
      case TemplateKind::TileTransfer: {
        double width = bits * vec;
        out[0] = lanes;
        out[1] = lanes * width;
        out[2] = lanes * std::log2(1.0 + double(t.tileElems));
        out[3] = lanes * std::ceil(512.0 * width / 20480.0);
        return 4;
      }
      case TemplateKind::ReduceTree:
        out[0] = lanes * std::max(0.0, vec - 1.0);
        out[1] = lanes * std::log2(1.0 + vec) * bits / 32.0;
        out[2] = lanes;
        return 3;
      case TemplateKind::DelayLine: {
        bool fifo = t.depth > kBramDelayThreshold;
        double bits_total = t.delayBits * lanes;
        out[0] = fifo ? 0.0 : bits_total;
        out[1] = fifo ? std::ceil(t.delayBits / 20480.0) * lanes : 0.0;
        out[2] = lanes;
        return 3;
      }
    }
    out[0] = lanes;
    return 1;
}

void
AreaModel::featuresInto(const TemplateInst& t, std::vector<double>& out)
{
    // Range-assign from warm capacity allocates nothing per template;
    // the raw overload holds the one copy of the feature expressions.
    double buf[kMaxFeatures];
    size_t n = featuresInto(t, buf);
    out.assign(buf, buf + n);
}

size_t
AreaModel::featuresBatchInto(const TemplateInst* ts, size_t n,
                             double* out)
{
    size_t nf = 0;
    for (size_t i = 0; i < n; ++i)
        nf = featuresInto(ts[i], out + i * kMaxFeatures);
    return nf;
}

std::vector<double>
AreaModel::features(const TemplateInst& t)
{
    std::vector<double> out;
    featuresInto(t, out);
    return out;
}

void
AreaModel::fit(const std::vector<fpga::TemplateSample>& samples)
{
    require(!samples.empty(), "no characterization samples");
    // Group samples per class.
    std::unordered_map<uint64_t, std::vector<const fpga::TemplateSample*>>
        groups;
    for (const auto& s : samples)
        groups[classKey(s.inst)].push_back(&s);

    models_.clear();
    for (auto& [key, group] : groups) {
        std::vector<std::vector<double>> x;
        std::array<std::vector<double>, 5> y;
        for (const auto* s : group) {
            x.push_back(features(s->inst));
            y[0].push_back(s->observed.lutsPack);
            y[1].push_back(s->observed.lutsNoPack);
            y[2].push_back(s->observed.regs);
            y[3].push_back(s->observed.dsps);
            y[4].push_back(s->observed.brams);
        }
        auto& ms = models_[key];
        for (int i = 0; i < 5; ++i)
            ms[size_t(i)].fit(x, y[size_t(i)], 1e-6);
    }
    resolve();
}

void
AreaModel::resolve()
{
    for (auto& r : resolved_)
        r.present = false;
    // Kinds other than PrimOp/ReduceTree ignore op/isFloat in their
    // class key, so each resolves to exactly one bundle.
    for (size_t k = 0; k < kNumTemplateKinds; ++k) {
        auto kind = TemplateKind(k);
        if (kind == TemplateKind::PrimOp ||
            kind == TemplateKind::ReduceTree)
            continue;
        auto it = models_.find(uint64_t(k) << 16);
        if (it == models_.end())
            continue;
        resolved_[k].present = true;
        resolved_[k].models = it->second;
    }
}

const std::array<ml::LinearModel, 5>*
AreaModel::tryModelsFor(const TemplateInst& t) const noexcept
{
    const auto& fast = resolved_[size_t(t.tkind)];
    if (fast.present)
        return &fast.models;
    auto it = models_.find(classKey(t));
    if (it == models_.end()) {
        // Fall back to the kind-wide default class (op Add, fixed).
        TemplateInst d = t;
        d.op = Op::Add;
        d.isFloat = false;
        it = models_.find(classKey(d));
        if (it == models_.end())
            return nullptr;
    }
    return &it->second;
}

const std::array<ml::LinearModel, 5>&
AreaModel::modelsFor(const TemplateInst& t) const
{
    const auto* ms = tryModelsFor(t);
    require(ms != nullptr,
            std::string("uncharacterized template class: ") +
                templateKindName(t.tkind));
    return *ms;
}

Resources
AreaModel::cost(const TemplateInst& t, std::vector<double>& feat) const
{
    const auto& ms = modelsFor(t);
    featuresInto(t, feat);
    Resources r;
    r.lutsPack = std::max(0.0, ms[0].predict(feat));
    r.lutsNoPack = std::max(0.0, ms[1].predict(feat));
    r.regs = std::max(0.0, ms[2].predict(feat));
    r.dsps = std::max(0.0, ms[3].predict(feat));
    r.brams = std::max(0.0, ms[4].predict(feat));
    return r;
}

Resources
AreaModel::cost(const TemplateInst& t) const
{
    std::vector<double> feat;
    return cost(t, feat);
}

Resources
AreaModel::rawCount(const std::vector<TemplateInst>& ts) const
{
    Resources total;
    std::vector<double> feat;
    for (const auto& t : ts)
        total += cost(t, feat);
    return total;
}

void
AreaModel::save(std::ostream& os) const
{
    os << "area_model " << models_.size() << " v1\n";
    for (const auto& [key, ms] : models_) {
        os << "class " << key << "\n";
        for (const auto& m : ms)
            ml::saveLinear(os, m);
    }
}

AreaModel
AreaModel::load(std::istream& is)
{
    std::string tag, version;
    size_t count = 0;
    is >> tag >> count >> version;
    require(bool(is) && tag == "area_model" && version == "v1",
            "bad area-model file header");
    AreaModel model;
    for (size_t i = 0; i < count; ++i) {
        std::string ctag;
        uint64_t key = 0;
        is >> ctag >> key;
        require(bool(is) && ctag == "class",
                "bad area-model class record");
        auto& ms = model.models_[key];
        for (auto& m : ms)
            m = ml::loadLinear(is);
    }
    model.resolve();
    return model;
}

} // namespace dhdl::est

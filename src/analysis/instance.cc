#include "analysis/instance.hh"

#include <algorithm>

#include "analysis/banking.hh"

namespace dhdl {

Inst::Inst(const Graph& g, const ParamBinding& b) : b_(b)
{
    require(b_.values.size() == g.params().size(),
            "binding size does not match design parameter count");
    owned_ = std::make_shared<const DesignPlan>(g);
    plan_ = owned_.get();
    bind();
}

Inst::Inst(const DesignPlan& plan, const ParamBinding& b)
    : plan_(&plan), b_(b)
{
    require(b_.values.size() == plan.graph().params().size(),
            "binding size does not match design parameter count");
    bind();
}

void
Inst::rebind(const ParamBinding& b)
{
    require(b.values.size() == plan_->graph().params().size(),
            "binding size does not match design parameter count");
    b_ = b;
    bind();
}

void
Inst::bind()
{
    const DesignPlan& plan = *plan_;
    const size_t n = plan.numNodes();
    par_.assign(n, 1);
    trip_.assign(n, 1);
    metaActive_.assign(n, 0);
    memElems_.assign(n, 0);
    if (lanes_.size() != n)
        lanes_.resize(n);
    banks_.assign(n, 1);

    for (NodeId c : plan.controllers()) {
        const ControllerNode* cn = plan.ctrlNode(c);
        par_[size_t(c)] = std::max<int64_t>(1, cn->par.eval(b_));
        const CounterNode* ctr = plan.counterOf(c);
        trip_[size_t(c)] = ctr ? ctr->trip(b_) : 1;
        if (cn->kind() == NodeKind::MetaPipe)
            metaActive_[size_t(c)] = cn->toggle.eval(b_) != 0;
    }

    // Lane products in parents-before-children order: a node's
    // replication is its parent's replication times the parent's
    // parallelization.
    for (NodeId id : plan.bindOrder()) {
        NodeId p = plan.parent(id);
        lanes_[size_t(id)] =
            p == kNoNode ? 1 : lanes_[size_t(p)] * par_[size_t(p)];
    }

    for (NodeId m : plan.onchipMems())
        memElems_[size_t(m)] = plan.memNode(m)->numElems(b_);
    for (NodeId m : plan.graph().offchipMems)
        memElems_[size_t(m)] = plan.memNode(m)->numElems(b_);

    // Banking last: the inference reads lanes and transfer widths.
    for (NodeId m : plan.brams())
        banks_[size_t(m)] = detail::computeBanks(*this, m, bankScratch_);
}

} // namespace dhdl

#include "analysis/instance.hh"

#include <algorithm>

namespace dhdl {

Inst::Inst(const Graph& g, const ParamBinding& b) : g_(g), b_(b)
{
    require(b_.values.size() == g_.params().size(),
            "binding size does not match design parameter count");
    index();
}

void
Inst::index()
{
    // Preorder controller listing from the root.
    if (g_.root != kNoNode) {
        std::vector<NodeId> stack{g_.root};
        while (!stack.empty()) {
            NodeId id = stack.back();
            stack.pop_back();
            ctrls_.push_back(id);
            const auto& c = g_.nodeAs<ControllerNode>(id);
            // Push children in reverse to visit in declaration order.
            for (auto it = c.children.rbegin(); it != c.children.rend();
                 ++it) {
                if (g_.node(*it).isController())
                    stack.push_back(*it);
            }
        }
    }

    for (NodeId id = 0; id < NodeId(g_.numNodes()); ++id) {
        const Node& n = g_.node(id);
        switch (n.kind()) {
          case NodeKind::Load:
            accessorIdx_[g_.nodeAs<LoadNode>(id).mem].push_back(id);
            break;
          case NodeKind::Store:
            accessorIdx_[g_.nodeAs<StoreNode>(id).mem].push_back(id);
            break;
          case NodeKind::TileLd:
            accessorIdx_[g_.nodeAs<TileLdNode>(id).onchip].push_back(id);
            transfers_.push_back(id);
            break;
          case NodeKind::TileSt:
            accessorIdx_[g_.nodeAs<TileStNode>(id).onchip].push_back(id);
            transfers_.push_back(id);
            break;
          case NodeKind::Bram:
          case NodeKind::Reg:
          case NodeKind::Queue:
            mems_.push_back(id);
            break;
          default:
            break;
        }
    }
}

int64_t
Inst::par(NodeId ctrl) const
{
    const auto& c = g_.nodeAs<ControllerNode>(ctrl);
    return std::max<int64_t>(1, val(c.par));
}

bool
Inst::metaActive(NodeId ctrl) const
{
    const Node& n = g_.node(ctrl);
    if (n.kind() != NodeKind::MetaPipe)
        return false;
    return val(g_.nodeAs<MetaPipeNode>(ctrl).toggle) != 0;
}

int64_t
Inst::trip(NodeId ctrl) const
{
    const auto& c = g_.nodeAs<ControllerNode>(ctrl);
    if (c.counter == kNoNode)
        return 1;
    return g_.nodeAs<CounterNode>(c.counter).trip(b_);
}

int64_t
Inst::lanes(NodeId n) const
{
    auto it = laneCache_.find(n);
    if (it != laneCache_.end())
        return it->second;
    int64_t l = 1;
    NodeId p = g_.node(n).parent;
    while (p != kNoNode) {
        l *= par(p);
        p = g_.node(p).parent;
    }
    laneCache_[n] = l;
    return l;
}

int64_t
Inst::memElems(NodeId mem) const
{
    return g_.nodeAs<MemNode>(mem).numElems(b_);
}

bool
Inst::doubleBuffered(NodeId mem) const
{
    NodeId p = g_.node(mem).parent;
    if (p == kNoNode)
        return false;
    return metaActive(p);
}

const std::vector<NodeId>&
Inst::accessors(NodeId mem) const
{
    auto it = accessorIdx_.find(mem);
    return it == accessorIdx_.end() ? empty_ : it->second;
}

std::vector<NodeId>
Inst::stagesOf(NodeId ctrl) const
{
    std::vector<NodeId> out;
    const auto& c = g_.nodeAs<ControllerNode>(ctrl);
    for (NodeId ch : c.children) {
        const Node& n = g_.node(ch);
        if (n.isController() || n.isTileTransfer())
            out.push_back(ch);
    }
    return out;
}

} // namespace dhdl

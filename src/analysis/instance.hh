/**
 * @file
 * Design instances. A DHDL graph plus a parameter binding describes a
 * single concrete hardware design point. Inst caches the derived
 * per-node quantities every downstream pass needs: evaluated symbols,
 * replication (lane) counts from parallelization factors, counter trip
 * counts, active-MetaPipe decisions, double-buffering, and the
 * memory-accessor index used by banking inference.
 */

#ifndef DHDL_ANALYSIS_INSTANCE_HH
#define DHDL_ANALYSIS_INSTANCE_HH

#include <unordered_map>
#include <vector>

#include "core/graph.hh"

namespace dhdl {

/** A concrete design point: graph + binding + cached derived values. */
class Inst
{
  public:
    Inst(const Graph& g, const ParamBinding& b);

    const Graph& graph() const { return g_; }
    const ParamBinding& binding() const { return b_; }

    /** Evaluate a symbolic size under this binding. */
    int64_t val(const Sym& s) const { return s.eval(b_); }

    /** Parallelization factor of a controller (>= 1). */
    int64_t par(NodeId ctrl) const;

    /**
     * Whether a MetaPipe executes as a coarse-grained pipeline (toggle
     * bound to nonzero) or falls back to Sequential semantics.
     */
    bool metaActive(NodeId ctrl) const;

    /** Trip count of a controller's counter (1 when counter-less). */
    int64_t trip(NodeId ctrl) const;

    /**
     * Replication factor of a node: the product of the parallelization
     * factors of all enclosing controllers, including the immediate
     * parent. This is the number of hardware copies instantiated.
     */
    int64_t lanes(NodeId n) const;

    /** Number of elements of a memory under this binding. */
    int64_t memElems(NodeId mem) const;

    /**
     * Whether an on-chip buffer is double-buffered: true when its
     * enclosing controller is an active MetaPipe, whose stages
     * communicate through it (Section III-B3).
     */
    bool doubleBuffered(NodeId mem) const;

    /** Ld/St/TileLd/TileSt nodes that access the given memory. */
    const std::vector<NodeId>& accessors(NodeId mem) const;

    /** All controller node ids, in hierarchical (preorder) order. */
    const std::vector<NodeId>& controllers() const { return ctrls_; }

    /** Child controllers-or-transfers of a controller (its stages). */
    std::vector<NodeId> stagesOf(NodeId ctrl) const;

    /** All TileLd/TileSt node ids. */
    const std::vector<NodeId>& transfers() const { return transfers_; }

    /** All on-chip memory node ids (BRAM/Reg/Queue). */
    const std::vector<NodeId>& onchipMems() const { return mems_; }

  private:
    void index();

    const Graph& g_;
    ParamBinding b_;
    mutable std::unordered_map<NodeId, int64_t> laneCache_;
    std::unordered_map<NodeId, std::vector<NodeId>> accessorIdx_;
    std::vector<NodeId> ctrls_;
    std::vector<NodeId> transfers_;
    std::vector<NodeId> mems_;
    std::vector<NodeId> empty_;
};

} // namespace dhdl

#endif // DHDL_ANALYSIS_INSTANCE_HH

/**
 * @file
 * Design instances. A DHDL graph plus a parameter binding describes a
 * single concrete hardware design point. Inst is a thin overlay over
 * a DesignPlan (the compile-once, binding-invariant analysis of the
 * graph): construction evaluates only the binding-dependent
 * quantities — parallelization factors, counter trips, MetaPipe
 * toggles, lane products, memory sizes and bank counts — eagerly
 * into flat per-node vectors. All structural queries (controllers,
 * accessors, stages, transfers) forward to the shared plan.
 *
 * The overlay is reusable: rebind() re-evaluates the scratch vectors
 * for a new binding without re-walking the graph or reallocating,
 * which is what makes evaluate-many design space sweeps cheap.
 */

#ifndef DHDL_ANALYSIS_INSTANCE_HH
#define DHDL_ANALYSIS_INSTANCE_HH

#include <memory>
#include <utility>
#include <vector>

#include "analysis/plan.hh"
#include "core/graph.hh"

namespace dhdl {

/** A concrete design point: plan + binding + derived value vectors. */
class Inst
{
  public:
    /**
     * One-off instantiation: compiles a private DesignPlan for the
     * graph first. Sweeps should compile the plan once and use the
     * plan-sharing constructor instead.
     */
    Inst(const Graph& g, const ParamBinding& b);

    /** Overlay a binding on a shared, pre-compiled plan. */
    Inst(const DesignPlan& plan, const ParamBinding& b);

    /** Re-evaluate this overlay for a new binding (no reallocation,
     *  no graph re-walk). */
    void rebind(const ParamBinding& b);

    const Graph& graph() const { return plan_->graph(); }
    const DesignPlan& plan() const { return *plan_; }
    const ParamBinding& binding() const { return b_; }

    /** Evaluate a symbolic size under this binding. */
    int64_t val(const Sym& s) const { return s.eval(b_); }

    /** Parallelization factor of a controller (>= 1). */
    int64_t
    par(NodeId ctrl) const
    {
        invariant(plan_->isController(ctrl), "par on a non-controller");
        return par_[size_t(ctrl)];
    }

    /**
     * Whether a MetaPipe executes as a coarse-grained pipeline (toggle
     * bound to nonzero) or falls back to Sequential semantics.
     */
    bool
    metaActive(NodeId ctrl) const
    {
        return metaActive_[size_t(checked(ctrl))] != 0;
    }

    /** Trip count of a controller's counter (1 when counter-less). */
    int64_t
    trip(NodeId ctrl) const
    {
        invariant(plan_->isController(ctrl),
                  "trip on a non-controller");
        return trip_[size_t(ctrl)];
    }

    /**
     * Replication factor of a node: the product of the parallelization
     * factors of all enclosing controllers, including the immediate
     * parent. This is the number of hardware copies instantiated.
     */
    int64_t lanes(NodeId n) const { return lanes_[size_t(checked(n))]; }

    /** Number of elements of a memory under this binding. */
    int64_t
    memElems(NodeId mem) const
    {
        invariant(plan_->isMem(mem), "memElems on a non-memory");
        return memElems_[size_t(mem)];
    }

    /** Inferred (or forced) bank count of a BRAM. */
    int banks(NodeId bram) const { return banks_[size_t(checked(bram))]; }

    /**
     * Whether an on-chip buffer is double-buffered: true when its
     * enclosing controller is an active MetaPipe, whose stages
     * communicate through it (Section III-B3).
     */
    bool
    doubleBuffered(NodeId mem) const
    {
        NodeId p = plan_->parent(mem);
        return p != kNoNode && metaActive_[size_t(p)] != 0;
    }

    /** Ld/St/TileLd/TileSt nodes that access the given memory. */
    const std::vector<NodeId>&
    accessors(NodeId mem) const
    {
        return plan_->accessors(mem);
    }

    /** All controller node ids, in hierarchical (preorder) order. */
    const std::vector<NodeId>&
    controllers() const
    {
        return plan_->controllers();
    }

    /** Child controllers-or-transfers of a controller (its stages). */
    const std::vector<NodeId>&
    stagesOf(NodeId ctrl) const
    {
        return plan_->stagesOf(ctrl);
    }

    /** All TileLd/TileSt node ids. */
    const std::vector<NodeId>&
    transfers() const
    {
        return plan_->transfers();
    }

    /** All on-chip memory node ids (BRAM/Reg/Queue). */
    const std::vector<NodeId>&
    onchipMems() const
    {
        return plan_->onchipMems();
    }

  private:
    NodeId
    checked(NodeId n) const
    {
        invariant(n >= 0 && size_t(n) < lanes_.size(),
                  "node id out of range");
        return n;
    }

    void bind();

    std::shared_ptr<const DesignPlan> owned_; //!< One-off ctor only.
    const DesignPlan* plan_;
    ParamBinding b_;
    std::vector<int64_t> par_;
    std::vector<int64_t> trip_;
    std::vector<int64_t> lanes_;
    std::vector<int64_t> memElems_;
    std::vector<int> banks_;
    std::vector<uint8_t> metaActive_;
    //!< Banking-inference scratch, reused across rebind() calls.
    std::vector<std::pair<NodeId, int64_t>> bankScratch_;
};

/**
 * Plan-side scratch for batched sweeps: a pool of Inst overlays, one
 * per point of the current batch, grown on demand and rebound in
 * place thereafter. Like a single reused Inst, the steady state
 * allocates nothing; unlike one, a whole batch of points stays
 * instantiated at once so the per-slot estimation loops can run
 * structure-of-arrays (slot-outer, point-inner) over it.
 */
class InstPool
{
  public:
    /** Overlay binding `b` on slot `i` of the pool (grow or rebind). */
    Inst&
    assign(size_t i, const DesignPlan& plan, const ParamBinding& b)
    {
        if (i < insts_.size()) {
            insts_[i].rebind(b);
        } else {
            invariant(i == insts_.size(), "InstPool grows densely");
            insts_.emplace_back(plan, b);
        }
        return insts_[i];
    }

    const Inst& operator[](size_t i) const { return insts_[i]; }
    Inst& operator[](size_t i) { return insts_[i]; }
    size_t size() const { return insts_.size(); }

  private:
    std::vector<Inst> insts_;
};

} // namespace dhdl

#endif // DHDL_ANALYSIS_INSTANCE_HH

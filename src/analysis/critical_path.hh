/**
 * @file
 * ASAP scheduling of Pipe bodies. Computes the critical-path depth of
 * a dataflow pipeline (cycles through the body) and the pipeline
 * balancing delays required on slack paths: "Paths with slack
 * relative to the critical path to that node require their width (in
 * bits) multiplied by the slack delay resources. Delays over a
 * synthesis tool-specific threshold are modeled as block RAMs.
 * Otherwise, they are modeled as registers." (Section IV-B2.)
 */

#ifndef DHDL_ANALYSIS_CRITICAL_PATH_HH
#define DHDL_ANALYSIS_CRITICAL_PATH_HH

#include "analysis/instance.hh"

namespace dhdl {

/** Delay threshold (cycles) above which a delay becomes a BRAM FIFO. */
inline constexpr int64_t kBramDelayThreshold = 16;

/** Result of scheduling one Pipe body. */
struct PipeTiming {
    /** Critical-path depth in cycles (pipeline fill latency). */
    int64_t depth = 0;
    /** Slack-bits absorbed by register delay lines (per replica). */
    double delayRegBits = 0.0;
    /** Slack-bits absorbed by BRAM delay lines (per replica). */
    double delayBramBits = 0.0;
    /**
     * Initiation interval. 1 for pure dataflow bodies; raised by
     * loop-carried read-modify-write recurrences (a load whose memory
     * is stored in the same body along a dependent path): the
     * recurrence forces II = ceil(cycle latency / dependence
     * distance), where the distance is the iteration gap until the
     * same address recurs.
     */
    int64_t ii = 1;
};

/**
 * Binding-invariant half of the analysis: ASAP-schedule the body of a
 * Pipe controller and record its depth, delay-matching requirements
 * and loop-carried recurrences as a PipeSkeleton. Computed once per
 * graph by DesignPlan.
 */
PipeSkeleton buildPipeSkeleton(const Graph& g, NodeId pipe);

/**
 * Schedule the body of a Pipe controller with ASAP semantics and
 * return its depth and delay-matching requirements. For Reduce pipes
 * the combining tree depth is included. Reads the plan's skeleton and
 * only evaluates the binding-dependent parts (recurrence distances,
 * reduce-tree depth).
 */
PipeTiming analyzePipe(const Inst& inst, NodeId pipe);

} // namespace dhdl

#endif // DHDL_ANALYSIS_CRITICAL_PATH_HH

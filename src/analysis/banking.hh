/**
 * @file
 * Automatic BRAM banking (Section III-B2): "The banking factor for a
 * BRAM node is automatically calculated using the vector widths and
 * access patterns of all the Ld and St nodes accessing it such that
 * the required memory bandwidth can be met." Banking is therefore not
 * an independent design-space variable (Section IV-C pruning).
 */

#ifndef DHDL_ANALYSIS_BANKING_HH
#define DHDL_ANALYSIS_BANKING_HH

#include "analysis/instance.hh"

namespace dhdl {

/**
 * Required number of banks for a BRAM: the maximum per-cycle element
 * bandwidth demanded by any accessor. For a Ld/St inside a Pipe the
 * demand is the vector width of the access, i.e. the lane count of
 * the accessing node relative to the memory's scope; for TileLd /
 * TileSt it is the transfer parallelization factor. A forcedBanks
 * override on the node wins.
 *
 * Inst computes this eagerly for every BRAM at bind time; this reads
 * the cached value.
 */
int inferBanks(const Inst& inst, NodeId bram);

namespace detail {

/**
 * The actual inference, called by Inst::bind() to fill its cache.
 * `per_pipe` is caller-owned scratch (cleared here) so rebind-heavy
 * sweeps do not allocate per BRAM per point.
 */
int computeBanks(const Inst& inst, NodeId bram,
                 std::vector<std::pair<NodeId, int64_t>>& per_pipe);

} // namespace detail

/**
 * Elements per bank after interleaving (ceil division); the per-bank
 * depth used to compute physical block RAM counts.
 */
int64_t bankDepth(const Inst& inst, NodeId bram);

} // namespace dhdl

#endif // DHDL_ANALYSIS_BANKING_HH

#include "analysis/resources.hh"

#include <algorithm>

#include "analysis/banking.hh"
#include "analysis/critical_path.hh"

namespace dhdl {

const char*
templateKindName(TemplateKind k)
{
    switch (k) {
      case TemplateKind::PrimOp: return "PrimOp";
      case TemplateKind::LoadStore: return "LoadStore";
      case TemplateKind::BramInst: return "BramInst";
      case TemplateKind::RegInst: return "RegInst";
      case TemplateKind::QueueInst: return "QueueInst";
      case TemplateKind::CounterInst: return "CounterInst";
      case TemplateKind::PipeCtrl: return "PipeCtrl";
      case TemplateKind::SeqCtrl: return "SeqCtrl";
      case TemplateKind::ParCtrl: return "ParCtrl";
      case TemplateKind::MetaPipeCtrl: return "MetaPipeCtrl";
      case TemplateKind::TileTransfer: return "TileTransfer";
      case TemplateKind::ReduceTree: return "ReduceTree";
      case TemplateKind::DelayLine: return "DelayLine";
    }
    return "?";
}

int
opLatency(Op op, const DType& type)
{
    if (type.isFloat()) {
        switch (op) {
          case Op::Add:
          case Op::Sub:
            return 10;
          case Op::Mul:
            return 6;
          case Op::Div:
            return 28;
          case Op::Sqrt:
            return 28;
          case Op::Exp:
            return 17;
          case Op::Log:
            return 21;
          case Op::Min:
          case Op::Max:
            return 2;
          case Op::Lt:
          case Op::Le:
          case Op::Gt:
          case Op::Ge:
          case Op::Eq:
          case Op::Neq:
            return 2;
          case Op::ToFloat:
          case Op::ToFixed:
            return 6;
          case Op::Abs:
          case Op::Neg:
          case Op::Mux:
            return 1;
          case Op::Const:
          case Op::Iter:
            return 0;
          default:
            return 1;
        }
    }
    // Fixed point and bit types.
    switch (op) {
      case Op::Mul:
        return 2;
      case Op::Div:
      case Op::Mod:
        return 24;
      case Op::Sqrt:
        return 16;
      case Op::Exp:
      case Op::Log:
        return 20;
      case Op::Const:
      case Op::Iter:
        return 0;
      default:
        return 1;
    }
}

int
valueBits(const Graph& g, NodeId n)
{
    const Node& nd = g.node(n);
    switch (nd.kind()) {
      case NodeKind::Prim:
        return g.nodeAs<PrimNode>(n).type.bits();
      case NodeKind::Load:
        return g.nodeAs<LoadNode>(n).type.bits();
      default:
        return 32;
    }
}

namespace {

int64_t
tileElemsOf(const Inst& inst, const std::vector<Sym>& extent)
{
    int64_t e = 1;
    for (const auto& s : extent)
        e *= inst.val(s);
    return e;
}

} // namespace

std::vector<TemplateInst>
expandTemplates(const Inst& inst)
{
    const Graph& g = inst.graph();
    std::vector<TemplateInst> out;
    out.reserve(g.numNodes());

    for (NodeId id = 0; id < NodeId(g.numNodes()); ++id) {
        const Node& n = g.node(id);
        TemplateInst t;
        t.node = id;

        switch (n.kind()) {
          case NodeKind::Prim: {
            const auto& p = g.nodeAs<PrimNode>(id);
            if (p.op == Op::Const || p.op == Op::Iter)
                break; // wiring / counter outputs: no datapath cost
            t.tkind = TemplateKind::PrimOp;
            t.op = p.op;
            t.isFloat = p.type.isFloat();
            t.bits = p.type.bits();
            t.lanes = inst.lanes(id);
            out.push_back(t);
            break;
          }
          case NodeKind::Load:
          case NodeKind::Store: {
            NodeId mem = n.kind() == NodeKind::Load
                             ? g.nodeAs<LoadNode>(id).mem
                             : g.nodeAs<StoreNode>(id).mem;
            t.tkind = TemplateKind::LoadStore;
            t.bits = valueBits(g, n.kind() == NodeKind::Load
                                      ? id
                                      : g.nodeAs<StoreNode>(id).value);
            t.lanes = inst.lanes(id);
            if (g.node(mem).kind() == NodeKind::Bram)
                t.banks = inferBanks(inst, mem);
            out.push_back(t);
            break;
          }
          case NodeKind::Bram: {
            const auto& m = g.nodeAs<BramNode>(id);
            t.tkind = TemplateKind::BramInst;
            t.bits = m.type.bits();
            t.lanes = inst.lanes(id);
            t.elems = inst.memElems(id);
            t.banks = inferBanks(inst, id);
            t.doubleBuf = inst.doubleBuffered(id);
            out.push_back(t);
            break;
          }
          case NodeKind::Reg: {
            const auto& m = g.nodeAs<RegNode>(id);
            t.tkind = TemplateKind::RegInst;
            t.bits = m.type.bits();
            t.lanes = inst.lanes(id);
            t.doubleBuf = inst.doubleBuffered(id);
            out.push_back(t);
            break;
          }
          case NodeKind::Queue: {
            const auto& m = g.nodeAs<QueueNode>(id);
            t.tkind = TemplateKind::QueueInst;
            t.bits = m.type.bits();
            t.lanes = inst.lanes(id);
            t.depth = inst.val(m.depth);
            t.elems = t.depth;
            t.doubleBuf = inst.doubleBuffered(id);
            out.push_back(t);
            break;
          }
          case NodeKind::Counter: {
            const auto& c = g.nodeAs<CounterNode>(id);
            t.tkind = TemplateKind::CounterInst;
            t.ctrDims = int(c.dims.size());
            // The counter's vector width equals the parallelization of
            // its controller; it is replicated once per controller copy.
            NodeId ctrl = n.parent;
            t.lanes = ctrl != kNoNode ? inst.lanes(ctrl) : 1;
            t.vec = ctrl != kNoNode ? inst.par(ctrl) : 1;
            out.push_back(t);
            break;
          }
          case NodeKind::Pipe:
          case NodeKind::Sequential:
          case NodeKind::ParallelCtrl:
          case NodeKind::MetaPipe: {
            const auto& c = g.nodeAs<ControllerNode>(id);
            bool meta = n.kind() == NodeKind::MetaPipe &&
                        inst.metaActive(id);
            if (n.kind() == NodeKind::Pipe)
                t.tkind = TemplateKind::PipeCtrl;
            else if (n.kind() == NodeKind::ParallelCtrl)
                t.tkind = TemplateKind::ParCtrl;
            else if (meta)
                t.tkind = TemplateKind::MetaPipeCtrl;
            else
                t.tkind = TemplateKind::SeqCtrl;
            t.lanes = inst.lanes(id);
            t.vec = inst.par(id);
            t.stages = int(inst.stagesOf(id).size());
            out.push_back(t);

            // Reduce pattern: a balanced combining tree (plus the tile
            // accumulation datapath for MetaPipe reduces).
            if (c.pattern == Pattern::Reduce && c.accum != kNoNode) {
                TemplateInst r;
                r.node = id;
                r.tkind = TemplateKind::ReduceTree;
                r.op = c.combine;
                const auto& acc = g.nodeAs<MemNode>(c.accum);
                r.isFloat = acc.type.isFloat();
                r.bits = acc.type.bits();
                r.lanes = inst.lanes(id);
                r.vec = inst.par(id);
                r.elems = inst.memElems(c.accum);
                out.push_back(r);
            }

            // Delay-matching resources inside Pipe bodies.
            if (n.kind() == NodeKind::Pipe) {
                PipeTiming pt = analyzePipe(inst, id);
                if (pt.delayRegBits > 0 || pt.delayBramBits > 0) {
                    TemplateInst d;
                    d.node = id;
                    d.tkind = TemplateKind::DelayLine;
                    d.lanes = inst.lanes(id) * inst.par(id);
                    d.delayBits = pt.delayRegBits;
                    d.depth = 0;
                    out.push_back(d);
                    if (pt.delayBramBits > 0) {
                        TemplateInst db = d;
                        db.delayBits = pt.delayBramBits;
                        db.depth = kBramDelayThreshold + 1;
                        out.push_back(db);
                    }
                }
            }
            break;
          }
          case NodeKind::TileLd:
          case NodeKind::TileSt: {
            t.tkind = TemplateKind::TileTransfer;
            t.lanes = inst.lanes(id);
            if (n.kind() == NodeKind::TileLd) {
                const auto& x = g.nodeAs<TileLdNode>(id);
                t.bits = g.nodeAs<MemNode>(x.offchip).type.bits();
                t.vec = inst.val(x.par);
                t.tileElems = tileElemsOf(inst, x.extent);
            } else {
                const auto& x = g.nodeAs<TileStNode>(id);
                t.bits = g.nodeAs<MemNode>(x.offchip).type.bits();
                t.vec = inst.val(x.par);
                t.tileElems = tileElemsOf(inst, x.extent);
            }
            out.push_back(t);
            break;
          }
          default:
            break;
        }
    }
    return out;
}

} // namespace dhdl

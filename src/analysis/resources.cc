#include "analysis/resources.hh"

#include <algorithm>

#include "analysis/plan.hh"

namespace dhdl {

const char*
templateKindName(TemplateKind k)
{
    switch (k) {
      case TemplateKind::PrimOp: return "PrimOp";
      case TemplateKind::LoadStore: return "LoadStore";
      case TemplateKind::BramInst: return "BramInst";
      case TemplateKind::RegInst: return "RegInst";
      case TemplateKind::QueueInst: return "QueueInst";
      case TemplateKind::CounterInst: return "CounterInst";
      case TemplateKind::PipeCtrl: return "PipeCtrl";
      case TemplateKind::SeqCtrl: return "SeqCtrl";
      case TemplateKind::ParCtrl: return "ParCtrl";
      case TemplateKind::MetaPipeCtrl: return "MetaPipeCtrl";
      case TemplateKind::TileTransfer: return "TileTransfer";
      case TemplateKind::ReduceTree: return "ReduceTree";
      case TemplateKind::DelayLine: return "DelayLine";
    }
    return "?";
}

int
opLatency(Op op, const DType& type)
{
    if (type.isFloat()) {
        switch (op) {
          case Op::Add:
          case Op::Sub:
            return 10;
          case Op::Mul:
            return 6;
          case Op::Div:
            return 28;
          case Op::Sqrt:
            return 28;
          case Op::Exp:
            return 17;
          case Op::Log:
            return 21;
          case Op::Min:
          case Op::Max:
            return 2;
          case Op::Lt:
          case Op::Le:
          case Op::Gt:
          case Op::Ge:
          case Op::Eq:
          case Op::Neq:
            return 2;
          case Op::ToFloat:
          case Op::ToFixed:
            return 6;
          case Op::Abs:
          case Op::Neg:
          case Op::Mux:
            return 1;
          case Op::Const:
          case Op::Iter:
            return 0;
          default:
            return 1;
        }
    }
    // Fixed point and bit types.
    switch (op) {
      case Op::Mul:
        return 2;
      case Op::Div:
      case Op::Mod:
        return 24;
      case Op::Sqrt:
        return 16;
      case Op::Exp:
      case Op::Log:
        return 20;
      case Op::Const:
      case Op::Iter:
        return 0;
      default:
        return 1;
    }
}

int
valueBits(const Graph& g, NodeId n)
{
    const Node& nd = g.node(n);
    switch (nd.kind()) {
      case NodeKind::Prim:
        return g.nodeAs<PrimNode>(n).type.bits();
      case NodeKind::Load:
        return g.nodeAs<LoadNode>(n).type.bits();
      default:
        return 32;
    }
}

void
patchTemplate(const TemplateSlot& s, const Inst& inst, TemplateInst& t)
{
    t = s.base;
    const NodeId id = t.node;
    switch (s.patch) {
      case SlotPatch::Prim:
        t.lanes = inst.lanes(id);
        break;
      case SlotPatch::LoadStore:
        t.lanes = inst.lanes(id);
        if (s.ref != kNoNode)
            t.banks = inst.banks(s.ref);
        break;
      case SlotPatch::Bram:
        t.lanes = inst.lanes(id);
        t.elems = inst.memElems(id);
        t.banks = inst.banks(id);
        t.doubleBuf = inst.doubleBuffered(id);
        break;
      case SlotPatch::Reg:
        t.lanes = inst.lanes(id);
        t.doubleBuf = inst.doubleBuffered(id);
        break;
      case SlotPatch::Queue:
        t.lanes = inst.lanes(id);
        t.depth = inst.val(s.sym);
        t.elems = t.depth;
        t.doubleBuf = inst.doubleBuffered(id);
        break;
      case SlotPatch::Counter:
        // The counter's vector width equals the parallelization of
        // its controller; it is replicated once per controller copy.
        t.lanes = s.ref != kNoNode ? inst.lanes(s.ref) : 1;
        t.vec = s.ref != kNoNode ? inst.par(s.ref) : 1;
        break;
      case SlotPatch::Ctrl:
        t.lanes = inst.lanes(id);
        t.vec = inst.par(id);
        break;
      case SlotPatch::CtrlSeqOrMeta:
        t.tkind = inst.metaActive(id) ? TemplateKind::MetaPipeCtrl
                                      : TemplateKind::SeqCtrl;
        t.lanes = inst.lanes(id);
        t.vec = inst.par(id);
        break;
      case SlotPatch::Reduce:
        t.lanes = inst.lanes(id);
        t.vec = inst.par(id);
        t.elems = inst.memElems(s.ref);
        break;
      case SlotPatch::DelayLine:
        t.lanes = inst.lanes(id) * inst.par(id);
        break;
      case SlotPatch::Tile: {
        t.lanes = inst.lanes(id);
        t.vec = inst.val(s.sym);
        int64_t e = 1;
        for (const Sym& x : *s.extent)
            e *= inst.val(x);
        t.tileElems = e;
        break;
      }
    }
}

void
expandTemplates(const Inst& inst, std::vector<TemplateInst>& out)
{
    // The expansion order and every invariant field were compiled
    // into the plan's template slots; per point, copy each slot's
    // base and patch in the handful of binding-dependent fields.
    const auto& slots = inst.plan().templateSlots();
    out.resize(slots.size());
    for (size_t i = 0; i < slots.size(); ++i)
        patchTemplate(slots[i], inst, out[i]);
}

std::vector<TemplateInst>
expandTemplates(const Inst& inst)
{
    std::vector<TemplateInst> out;
    expandTemplates(inst, out);
    return out;
}

} // namespace dhdl

/**
 * @file
 * The compile-once design plan. A DSE sweep evaluates up to 75,000
 * bindings of the SAME graph, so everything that does not depend on
 * the binding is compiled exactly once here and shared read-only by
 * every per-point Inst overlay:
 *
 *  - hierarchy indexes: preorder controllers, per-memory accessor
 *    lists, transfer and on-chip memory lists, controller stages,
 *    parent links and a parents-before-children evaluation order;
 *  - typed node pointers (controller/counter/memory), so per-point
 *    code never pays a dynamic_cast;
 *  - the ASAP critical-path skeleton of every Pipe body (depth,
 *    slack delay bits, loop-carried recurrences) — only the
 *    initiation interval and reduce-tree depth remain per-binding;
 *  - concurrency candidates per tile transfer with pre-resolved
 *    rival sets, for the runtime contention model;
 *  - the template skeleton: one slot per TemplateInst the design
 *    expands to, with all binding-invariant fields pre-filled and a
 *    patch tag describing the handful of per-binding fields.
 *
 * Rule for future passes: binding-invariant work lives in the plan;
 * Inst only evaluates binding-dependent quantities (lanes, trips,
 * MetaPipe toggles, memory sizes, banks) into flat scratch vectors.
 */

#ifndef DHDL_ANALYSIS_PLAN_HH
#define DHDL_ANALYSIS_PLAN_HH

#include <vector>

#include "analysis/templates.hh"
#include "core/graph.hh"

namespace dhdl {

/** One loop-carried read-modify-write recurrence in a Pipe body. */
struct PlanRecurrence {
    /** Load-to-store feedback latency along the dependent path. */
    int64_t cycleLatency = 0;
    /**
     * The store address varies with the innermost counter dimension,
     * so the dependence distance is that dimension's trip count
     * (otherwise the same address recurs on the next iteration).
     */
    bool innerTripDistance = false;
};

/**
 * Binding-invariant ASAP schedule of one Pipe body (Section IV-B2).
 * analyzePipe() combines this with a binding: recurrence distances
 * and the reduce-tree depth are the only per-point quantities.
 */
struct PipeSkeleton {
    int64_t depth = 0;          //!< Critical path, sans reduce tree.
    double delayRegBits = 0.0;  //!< Slack-bits in register delays.
    double delayBramBits = 0.0; //!< Slack-bits in BRAM delays.
    std::vector<PlanRecurrence> recurrences;
    /** Innermost counter dimension (distance evaluation); may be
     *  null when the pipe has no counter. */
    const CtrDim* innerDim = nullptr;
    bool hasReduce = false;     //!< Pattern::Reduce pipe.
    int combineLatency = 0;     //!< Latency of the combine operator.
};

/** One concurrency ancestor a transfer may contend under. */
struct XferCandidate {
    NodeId anc = kNoNode;
    /** Parallel controller: contends regardless of the binding (an
     *  inactive MetaPipe does not). */
    bool isParallel = false;
    /** Transfers under `anc` other than this one, in transfer-list
     *  order. */
    std::vector<NodeId> rivals;
};

/** Binding-invariant facts about one TileLd/TileSt. */
struct XferInfo {
    int bits = 32;              //!< Off-chip element width.
    Sym par;                    //!< Transfer parallelization factor.
    const std::vector<Sym>* extent = nullptr; //!< Tile extent syms.
    /** Concurrency candidates, nearest enclosing first. */
    std::vector<XferCandidate> candidates;
};

/** Which per-binding fields a template slot needs patched. */
enum class SlotPatch : uint8_t {
    Prim,          //!< lanes
    LoadStore,     //!< lanes (+ banks of the accessed BRAM)
    Bram,          //!< lanes, elems, banks, doubleBuf
    Reg,           //!< lanes, doubleBuf
    Queue,         //!< lanes, depth/elems, doubleBuf
    Counter,       //!< lanes/vec of the owning controller (ref)
    Ctrl,          //!< lanes, vec
    CtrlSeqOrMeta, //!< Ctrl + tkind from the MetaPipe toggle
    Reduce,        //!< lanes, vec, accumulator elems (ref)
    DelayLine,     //!< lanes * par
    Tile,          //!< lanes, vec = par value, tileElems
};

/** One pre-compiled template instantiation slot. */
struct TemplateSlot {
    /** Invariant fields pre-filled; patched fields overwritten. */
    TemplateInst base;
    SlotPatch patch = SlotPatch::Prim;
    /** Patch-specific node: accessed BRAM (LoadStore), owning
     *  controller (Counter), accumulator (Reduce). */
    NodeId ref = kNoNode;
    Sym sym;                    //!< Queue depth / Tile par.
    const std::vector<Sym>* extent = nullptr; //!< Tile extent.
};

/** Binding-invariant compilation of one Graph. */
class DesignPlan
{
  public:
    explicit DesignPlan(const Graph& g);

    const Graph& graph() const { return *g_; }
    size_t numNodes() const { return parent_.size(); }

    /** All controller node ids, in hierarchical (preorder) order. */
    const std::vector<NodeId>& controllers() const { return ctrls_; }

    /** All TileLd/TileSt node ids, in node-id order. */
    const std::vector<NodeId>& transfers() const { return transfers_; }

    /** All on-chip memory node ids (BRAM/Reg/Queue). */
    const std::vector<NodeId>& onchipMems() const { return mems_; }

    /** All BRAM node ids (banking is inferred for these). */
    const std::vector<NodeId>& brams() const { return brams_; }

    /** Ld/St/TileLd/TileSt nodes accessing the given memory. */
    const std::vector<NodeId>&
    accessors(NodeId mem) const
    {
        return accessors_[checked(mem)];
    }

    /** Child controllers-or-transfers of a controller (its stages). */
    const std::vector<NodeId>&
    stagesOf(NodeId ctrl) const
    {
        return stages_[checked(ctrl)];
    }

    /** Node ids ordered parents-before-children (lane products). */
    const std::vector<NodeId>& bindOrder() const { return bindOrder_; }

    NodeId parent(NodeId n) const { return parent_[checked(n)]; }

    bool
    isController(NodeId n) const
    {
        return ctrlNode_[checked(n)] != nullptr;
    }

    bool isMem(NodeId n) const { return memNode_[checked(n)] != nullptr; }

    /** Typed controller access; null for non-controllers. */
    const ControllerNode*
    ctrlNode(NodeId n) const
    {
        return ctrlNode_[checked(n)];
    }

    /** Counter of a controller; null when counter-less. */
    const CounterNode*
    counterOf(NodeId ctrl) const
    {
        return ctrlCounter_[checked(ctrl)];
    }

    /** Typed memory access; null for non-memories. */
    const MemNode* memNode(NodeId n) const { return memNode_[checked(n)]; }

    /** Typed BRAM access; null for non-BRAM nodes. */
    const BramNode*
    bramNode(NodeId n) const
    {
        return bramNode_[checked(n)];
    }

    /** ASAP skeleton of a Pipe controller. */
    const PipeSkeleton&
    pipeSkeleton(NodeId pipe) const
    {
        int32_t i = pipeIdx_[checked(pipe)];
        invariant(i >= 0, "pipeSkeleton on a non-Pipe controller");
        return pipeSkeletons_[size_t(i)];
    }

    /** Transfer facts of a TileLd/TileSt node. */
    const XferInfo&
    xferInfo(NodeId xfer) const
    {
        int32_t i = xferIdx_[checked(xfer)];
        invariant(i >= 0, "xferInfo on a non-transfer node");
        return xferInfos_[size_t(i)];
    }

    /** Pre-compiled template slots, in expansion order. */
    const std::vector<TemplateSlot>& templateSlots() const
    {
        return slots_;
    }

  private:
    size_t
    checked(NodeId n) const
    {
        invariant(n >= 0 && size_t(n) < parent_.size(),
                  "node id out of range");
        return size_t(n);
    }

    void indexHierarchy();
    void buildBindOrder();
    void buildXferInfos();
    void buildTemplateSlots();

    const Graph* g_;
    std::vector<NodeId> ctrls_;
    std::vector<NodeId> transfers_;
    std::vector<NodeId> mems_;
    std::vector<NodeId> brams_;
    std::vector<NodeId> bindOrder_;
    std::vector<NodeId> parent_;
    std::vector<std::vector<NodeId>> accessors_;
    std::vector<std::vector<NodeId>> stages_;
    std::vector<const ControllerNode*> ctrlNode_;
    std::vector<const CounterNode*> ctrlCounter_;
    std::vector<const MemNode*> memNode_;
    std::vector<const BramNode*> bramNode_;
    std::vector<int32_t> pipeIdx_;
    std::vector<int32_t> xferIdx_;
    std::vector<PipeSkeleton> pipeSkeletons_;
    std::vector<XferInfo> xferInfos_;
    std::vector<TemplateSlot> slots_;
};

} // namespace dhdl

#endif // DHDL_ANALYSIS_PLAN_HH

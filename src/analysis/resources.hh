/**
 * @file
 * Raw resource accounting. A design instance is expanded into a list
 * of TemplateInst records — one per instantiated architectural
 * template, with the concrete parameters that determine its cost
 * (bit width, vector width, replication, memory geometry, stage
 * count). Both the area estimator (fitted models, Section IV-B) and
 * the synthetic vendor toolchain (hidden silicon tables) consume this
 * expansion, so the two never share cost coefficients — only the
 * structural walk.
 */

#ifndef DHDL_ANALYSIS_RESOURCES_HH
#define DHDL_ANALYSIS_RESOURCES_HH

#include <vector>

#include "analysis/instance.hh"

namespace dhdl {

/**
 * FPGA resource bundle. LUTs are split into packable and unpackable
 * populations to support the LUT-packing model (Section IV-B: "we
 * split template LUT resource requirements into the number of
 * 'packable' and 'unpackable' LUTs required").
 */
struct Resources {
    double lutsPack = 0.0;
    double lutsNoPack = 0.0;
    double regs = 0.0;
    double dsps = 0.0;
    double brams = 0.0;

    double totalLuts() const { return lutsPack + lutsNoPack; }

    Resources&
    operator+=(const Resources& o)
    {
        lutsPack += o.lutsPack;
        lutsNoPack += o.lutsNoPack;
        regs += o.regs;
        dsps += o.dsps;
        brams += o.brams;
        return *this;
    }

    Resources
    operator*(double k) const
    {
        return {lutsPack * k, lutsNoPack * k, regs * k, dsps * k,
                brams * k};
    }

    Resources
    operator+(const Resources& o) const
    {
        Resources r = *this;
        r += o;
        return r;
    }
};

/** Characterizable template categories. */
enum class TemplateKind : uint8_t {
    PrimOp,       //!< One primitive operator (per Op and type).
    LoadStore,    //!< On-chip access port: bank address mux network.
    BramInst,     //!< Banked scratchpad.
    RegInst,      //!< Register (optionally double-buffered).
    QueueInst,    //!< Priority queue.
    CounterInst,  //!< Counter chain.
    PipeCtrl,     //!< Fine-grained pipeline control FSM.
    SeqCtrl,      //!< Sequential controller FSM.
    ParCtrl,      //!< Fork-join container with barrier.
    MetaPipeCtrl, //!< Coarse-grained pipeline handshake network.
    TileTransfer, //!< TileLd/TileSt command generator + queues.
    ReduceTree,   //!< Balanced combining tree for Reduce patterns.
    DelayLine,    //!< Pipeline balancing delays (regs or BRAM FIFOs).
};

/** Name of a template kind, e.g. "PrimOp". */
const char* templateKindName(TemplateKind k);

/** One instantiated template with its concrete cost parameters. */
struct TemplateInst {
    TemplateKind tkind = TemplateKind::PrimOp;
    NodeId node = kNoNode;
    Op op = Op::Add;        //!< PrimOp operator / ReduceTree combiner.
    bool isFloat = false;   //!< Floating-point datapath.
    int bits = 32;          //!< Operand / element width.
    int64_t lanes = 1;      //!< Hardware replication count.
    int64_t vec = 1;        //!< Vector width within one replica.
    int64_t elems = 0;      //!< Memory elements per replica.
    int banks = 1;          //!< BRAM banks.
    bool doubleBuf = false; //!< Double-buffered (MetaPipe comms).
    int64_t depth = 0;      //!< Queue depth / delay cycles.
    int stages = 0;         //!< Controller stage count.
    int ctrDims = 0;        //!< Counter chain length.
    int64_t tileElems = 0;  //!< Elements per tile command (TileLd/St).
    double delayBits = 0;   //!< DelayLine: total slack-bits to absorb.
};

/**
 * Expand a design instance into its template instantiation list.
 * Includes the DelayLine instances implied by ASAP-schedule slack
 * matching inside every Pipe (Section IV-B2).
 */
std::vector<TemplateInst> expandTemplates(const Inst& inst);

/**
 * Pipeline latency, in cycles, of one primitive operation at the
 * 150 MHz fabric clock used throughout the paper's evaluation.
 */
int opLatency(Op op, const DType& type);

/** Value width in bits of the node producing a value. */
int valueBits(const Graph& g, NodeId n);

} // namespace dhdl

#endif // DHDL_ANALYSIS_RESOURCES_HH

/**
 * @file
 * Raw resource accounting. A design instance is expanded into a list
 * of TemplateInst records — one per instantiated architectural
 * template, with the concrete parameters that determine its cost
 * (bit width, vector width, replication, memory geometry, stage
 * count). Both the area estimator (fitted models, Section IV-B) and
 * the synthetic vendor toolchain (hidden silicon tables) consume this
 * expansion, so the two never share cost coefficients — only the
 * structural walk.
 */

#ifndef DHDL_ANALYSIS_RESOURCES_HH
#define DHDL_ANALYSIS_RESOURCES_HH

#include <vector>

#include "analysis/instance.hh"
#include "analysis/templates.hh"

namespace dhdl {

/**
 * FPGA resource bundle. LUTs are split into packable and unpackable
 * populations to support the LUT-packing model (Section IV-B: "we
 * split template LUT resource requirements into the number of
 * 'packable' and 'unpackable' LUTs required").
 */
struct Resources {
    double lutsPack = 0.0;
    double lutsNoPack = 0.0;
    double regs = 0.0;
    double dsps = 0.0;
    double brams = 0.0;

    double totalLuts() const { return lutsPack + lutsNoPack; }

    Resources&
    operator+=(const Resources& o)
    {
        lutsPack += o.lutsPack;
        lutsNoPack += o.lutsNoPack;
        regs += o.regs;
        dsps += o.dsps;
        brams += o.brams;
        return *this;
    }

    Resources
    operator*(double k) const
    {
        return {lutsPack * k, lutsNoPack * k, regs * k, dsps * k,
                brams * k};
    }

    Resources
    operator+(const Resources& o) const
    {
        Resources r = *this;
        r += o;
        return r;
    }
};

/**
 * Expand a design instance into its template instantiation list.
 * Includes the DelayLine instances implied by ASAP-schedule slack
 * matching inside every Pipe (Section IV-B2). The expansion walks the
 * plan's pre-compiled template slots and patches only the
 * binding-dependent fields (TemplateKind and TemplateInst live in
 * analysis/templates.hh).
 */
std::vector<TemplateInst> expandTemplates(const Inst& inst);

/**
 * Scratch-reusing variant for evaluate-many sweeps: clears `out` and
 * refills it without releasing its capacity.
 */
void expandTemplates(const Inst& inst, std::vector<TemplateInst>& out);

/**
 * Patch one pre-compiled template slot against a binding: copy the
 * slot's invariant base and overwrite only the binding-dependent
 * fields. expandTemplates() is this applied to every slot in order;
 * the batched evaluator applies it slot-by-slot across a whole batch
 * of instances instead, so both paths share one patch rule.
 */
void patchTemplate(const TemplateSlot& s, const Inst& inst,
                   TemplateInst& t);

/**
 * Pipeline latency, in cycles, of one primitive operation at the
 * 150 MHz fabric clock used throughout the paper's evaluation.
 */
int opLatency(Op op, const DType& type);

/** Value width in bits of the node producing a value. */
int valueBits(const Graph& g, NodeId n);

} // namespace dhdl

#endif // DHDL_ANALYSIS_RESOURCES_HH

#include "analysis/banking.hh"

#include <algorithm>
#include <utility>
#include <vector>

namespace dhdl {

int
detail::computeBanks(const Inst& inst, NodeId bram,
                     std::vector<std::pair<NodeId, int64_t>>& per_pipe)
{
    const Graph& g = inst.graph();
    const BramNode* memp = inst.plan().bramNode(bram);
    invariant(memp != nullptr, "computeBanks on non-BRAM node");
    const auto& mem = *memp;
    if (mem.forcedBanks > 0)
        return mem.forcedBanks;

    // The memory itself is replicated lanes(bram) times; accesses from
    // nodes deeper in the hierarchy demand lanes(access)/lanes(bram)
    // parallel ports on each copy. Accessors inside the same Pipe are
    // concurrent (one issue per cycle each), so their demands add —
    // e.g. GDA's P2 reads subT(i) and subT(j) every cycle, doubling
    // the required banking.
    int64_t mem_lanes = inst.lanes(bram);
    // A memory has a handful of accessing pipes at most; a linear
    // scan over a flat pair list beats a hash map here.
    per_pipe.clear();
    int64_t banks = 1;
    for (NodeId a : inst.accessors(bram)) {
        const Node& n = g.node(a);
        int64_t demand = 1;
        if (n.kind() == NodeKind::Load || n.kind() == NodeKind::Store) {
            demand = std::max<int64_t>(1, inst.lanes(a) / mem_lanes);
            auto it = std::find_if(
                per_pipe.begin(), per_pipe.end(),
                [&](const auto& e) { return e.first == n.parent; });
            if (it == per_pipe.end())
                it = per_pipe.emplace(per_pipe.end(), n.parent, 0);
            it->second += demand;
            banks = std::max(banks, it->second);
            continue;
        }
        if (n.isTileTransfer())
            demand = inst.val(inst.plan().xferInfo(a).par);
        banks = std::max(banks, demand);
    }
    return int(std::min<int64_t>(banks, 1 << 20));
}

int
inferBanks(const Inst& inst, NodeId bram)
{
    return inst.banks(bram);
}

int64_t
bankDepth(const Inst& inst, NodeId bram)
{
    int64_t elems = inst.memElems(bram);
    int64_t banks = inferBanks(inst, bram);
    return (elems + banks - 1) / banks;
}

} // namespace dhdl

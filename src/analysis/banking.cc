#include "analysis/banking.hh"

#include <algorithm>
#include <unordered_map>

namespace dhdl {

int
inferBanks(const Inst& inst, NodeId bram)
{
    const Graph& g = inst.graph();
    const auto& mem = g.nodeAs<BramNode>(bram);
    if (mem.forcedBanks > 0)
        return mem.forcedBanks;

    // The memory itself is replicated lanes(bram) times; accesses from
    // nodes deeper in the hierarchy demand lanes(access)/lanes(bram)
    // parallel ports on each copy. Accessors inside the same Pipe are
    // concurrent (one issue per cycle each), so their demands add —
    // e.g. GDA's P2 reads subT(i) and subT(j) every cycle, doubling
    // the required banking.
    int64_t mem_lanes = inst.lanes(bram);
    std::unordered_map<NodeId, int64_t> per_pipe;
    int64_t banks = 1;
    for (NodeId a : inst.accessors(bram)) {
        const Node& n = g.node(a);
        int64_t demand = 1;
        if (n.kind() == NodeKind::Load || n.kind() == NodeKind::Store) {
            demand = std::max<int64_t>(1, inst.lanes(a) / mem_lanes);
            int64_t& total = per_pipe[n.parent];
            total += demand;
            banks = std::max(banks, total);
            continue;
        }
        if (n.kind() == NodeKind::TileLd) {
            demand = inst.val(g.nodeAs<TileLdNode>(a).par);
        } else if (n.kind() == NodeKind::TileSt) {
            demand = inst.val(g.nodeAs<TileStNode>(a).par);
        }
        banks = std::max(banks, demand);
    }
    return int(std::min<int64_t>(banks, 1 << 20));
}

int64_t
bankDepth(const Inst& inst, NodeId bram)
{
    int64_t elems = inst.memElems(bram);
    int64_t banks = inferBanks(inst, bram);
    return (elems + banks - 1) / banks;
}

} // namespace dhdl

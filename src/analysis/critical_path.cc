#include "analysis/critical_path.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "analysis/resources.hh"

namespace dhdl {

namespace {

/** Gather data inputs of a primitive-level node. */
std::vector<NodeId>
dataInputs(const Graph& g, NodeId id)
{
    std::vector<NodeId> ins;
    const Node& n = g.node(id);
    switch (n.kind()) {
      case NodeKind::Prim:
        ins = g.nodeAs<PrimNode>(id).inputs;
        break;
      case NodeKind::Load:
        ins = g.nodeAs<LoadNode>(id).addr;
        break;
      case NodeKind::Store: {
        const auto& s = g.nodeAs<StoreNode>(id);
        ins = s.addr;
        ins.push_back(s.value);
        break;
      }
      default:
        break;
    }
    return ins;
}

int
nodeLatency(const Graph& g, NodeId id)
{
    const Node& n = g.node(id);
    switch (n.kind()) {
      case NodeKind::Prim: {
        const auto& p = g.nodeAs<PrimNode>(id);
        return opLatency(p.op, p.type);
      }
      case NodeKind::Load:
        return 2; // registered BRAM read
      case NodeKind::Store:
        return 1;
      default:
        return 0;
    }
}

} // namespace

PipeSkeleton
buildPipeSkeleton(const Graph& g, NodeId pipe)
{
    const auto& c = g.nodeAs<ControllerNode>(pipe);
    invariant(c.kind() == NodeKind::Pipe,
              "analyzePipe on a non-Pipe controller");

    PipeSkeleton sk;
    // arrival[n]: cycle at which n's result is available. Children are
    // stored in creation order, which is a topological order because
    // the DSL only references already-created values.
    std::unordered_map<NodeId, int64_t> arrival;

    auto arrivalOf = [&](NodeId id) -> int64_t {
        auto it = arrival.find(id);
        // Values defined outside this pipe (iterators of outer loops,
        // constants hoisted to outer scopes) are ready at cycle 0.
        return it == arrival.end() ? 0 : it->second;
    };

    for (NodeId ch : c.children) {
        const Node& n = g.node(ch);
        if (!n.isPrimitive())
            continue;
        auto ins = dataInputs(g, ch);
        int64_t ready = 0;
        for (NodeId in : ins) {
            if (in != kNoNode)
                ready = std::max(ready, arrivalOf(in));
        }
        int64_t lat = nodeLatency(g, ch);
        int64_t out = ready + lat;
        arrival[ch] = out;
        sk.depth = std::max(sk.depth, out);

        // Slack matching: every input that arrives before `ready`
        // needs a delay line of (ready - arrival[in]) cycles carrying
        // its full width.
        for (NodeId in : ins) {
            if (in == kNoNode)
                continue;
            int64_t slack = ready - arrivalOf(in);
            if (slack <= 0)
                continue;
            double bits = double(valueBits(g, in)) * double(slack);
            if (slack > kBramDelayThreshold)
                sk.delayBramBits += bits;
            else
                sk.delayRegBits += bits;
        }
    }

    // Loop-carried read-modify-write recurrences: for every load
    // whose memory is also stored in this body along a dependent
    // path, the accumulation cannot issue faster than the recurrence
    // allows. The feedback latency and the address/iterator
    // dependence structure are graph properties; only the dependence
    // distance (the innermost trip count) is per-binding.
    {
        // Transitive data dependence test within the body.
        std::function<bool(NodeId, NodeId)> depends =
            [&](NodeId node, NodeId on) -> bool {
            if (node == on)
                return true;
            if (node == kNoNode || !g.node(node).isPrimitive())
                return false;
            for (NodeId in : dataInputs(g, node)) {
                if (in != kNoNode && depends(in, on))
                    return true;
            }
            return false;
        };

        NodeId inner_iter = kNoNode;
        if (c.counter != kNoNode) {
            const auto& ctr = g.nodeAs<CounterNode>(c.counter);
            int last = int(ctr.dims.size()) - 1;
            sk.innerDim = &ctr.dims[size_t(last)];
            for (NodeId ch : c.children) {
                const auto* p = g.tryAs<PrimNode>(ch);
                if (p && p->op == Op::Iter && p->ctrDim == last)
                    inner_iter = ch;
            }
        }

        for (NodeId st_id : c.children) {
            const auto* st = g.tryAs<StoreNode>(st_id);
            if (!st)
                continue;
            for (NodeId ld_id : c.children) {
                const auto* ld = g.tryAs<LoadNode>(ld_id);
                if (!ld || ld->mem != st->mem)
                    continue;
                if (!depends(st->value, ld_id))
                    continue;
                PlanRecurrence r;
                r.cycleLatency = arrivalOf(st_id) -
                                 (arrivalOf(ld_id) -
                                  nodeLatency(g, ld_id));
                if (inner_iter != kNoNode) {
                    for (NodeId a : st->addr) {
                        if (a != kNoNode && depends(a, inner_iter))
                            r.innerTripDistance = true;
                    }
                }
                sk.recurrences.push_back(r);
            }
        }
    }

    // Reduce pipes append a balanced combining tree over the vector
    // lanes plus the accumulator feedback stage; the tree width is
    // the binding's par, so only the operator latency is recorded.
    if (c.pattern == Pattern::Reduce) {
        const auto* acc = g.tryAs<MemNode>(c.accum);
        DType at = acc ? acc->type : DType::f32();
        sk.hasReduce = true;
        sk.combineLatency = opLatency(c.combine, at);
    }

    return sk;
}

PipeTiming
analyzePipe(const Inst& inst, NodeId pipe)
{
    const PipeSkeleton& sk = inst.plan().pipeSkeleton(pipe);
    PipeTiming t;
    t.depth = sk.depth;
    t.delayRegBits = sk.delayRegBits;
    t.delayBramBits = sk.delayBramBits;

    for (const PlanRecurrence& r : sk.recurrences) {
        int64_t distance = 1;
        if (r.innerTripDistance && sk.innerDim) {
            distance = std::max<int64_t>(
                1, sk.innerDim->trip(inst.binding()));
        }
        int64_t ii = (r.cycleLatency + distance - 1) /
                     std::max<int64_t>(1, distance);
        t.ii = std::max(t.ii, std::max<int64_t>(1, ii));
    }

    if (sk.hasReduce) {
        int64_t p = inst.par(pipe);
        int64_t tree_depth =
            int64_t(std::ceil(std::log2(std::max<int64_t>(2, p)))) *
            sk.combineLatency;
        t.depth += tree_depth + sk.combineLatency;
    }
    return t;
}

} // namespace dhdl

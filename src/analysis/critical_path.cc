#include "analysis/critical_path.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "analysis/resources.hh"

namespace dhdl {

namespace {

/** Gather data inputs of a primitive-level node. */
std::vector<NodeId>
dataInputs(const Graph& g, NodeId id)
{
    std::vector<NodeId> ins;
    const Node& n = g.node(id);
    switch (n.kind()) {
      case NodeKind::Prim:
        ins = g.nodeAs<PrimNode>(id).inputs;
        break;
      case NodeKind::Load:
        ins = g.nodeAs<LoadNode>(id).addr;
        break;
      case NodeKind::Store: {
        const auto& s = g.nodeAs<StoreNode>(id);
        ins = s.addr;
        ins.push_back(s.value);
        break;
      }
      default:
        break;
    }
    return ins;
}

int
nodeLatency(const Graph& g, NodeId id)
{
    const Node& n = g.node(id);
    switch (n.kind()) {
      case NodeKind::Prim: {
        const auto& p = g.nodeAs<PrimNode>(id);
        return opLatency(p.op, p.type);
      }
      case NodeKind::Load:
        return 2; // registered BRAM read
      case NodeKind::Store:
        return 1;
      default:
        return 0;
    }
}

} // namespace

PipeTiming
analyzePipe(const Inst& inst, NodeId pipe)
{
    const Graph& g = inst.graph();
    const auto& c = g.nodeAs<ControllerNode>(pipe);
    invariant(c.kind() == NodeKind::Pipe,
              "analyzePipe on a non-Pipe controller");

    PipeTiming t;
    // arrival[n]: cycle at which n's result is available. Children are
    // stored in creation order, which is a topological order because
    // the DSL only references already-created values.
    std::unordered_map<NodeId, int64_t> arrival;

    auto arrivalOf = [&](NodeId id) -> int64_t {
        auto it = arrival.find(id);
        // Values defined outside this pipe (iterators of outer loops,
        // constants hoisted to outer scopes) are ready at cycle 0.
        return it == arrival.end() ? 0 : it->second;
    };

    for (NodeId ch : c.children) {
        const Node& n = g.node(ch);
        if (!n.isPrimitive())
            continue;
        auto ins = dataInputs(g, ch);
        int64_t ready = 0;
        for (NodeId in : ins) {
            if (in != kNoNode)
                ready = std::max(ready, arrivalOf(in));
        }
        int64_t lat = nodeLatency(g, ch);
        int64_t out = ready + lat;
        arrival[ch] = out;
        t.depth = std::max(t.depth, out);

        // Slack matching: every input that arrives before `ready`
        // needs a delay line of (ready - arrival[in]) cycles carrying
        // its full width.
        for (NodeId in : ins) {
            if (in == kNoNode)
                continue;
            int64_t slack = ready - arrivalOf(in);
            if (slack <= 0)
                continue;
            double bits = double(valueBits(g, in)) * double(slack);
            if (slack > kBramDelayThreshold)
                t.delayBramBits += bits;
            else
                t.delayRegBits += bits;
        }
    }

    // Loop-carried read-modify-write recurrences: for every load
    // whose memory is also stored in this body along a dependent
    // path, the accumulation cannot issue faster than the recurrence
    // allows. Dependence distance: if the store address varies with
    // the innermost counter dimension, the same address only recurs
    // after that dimension's full trip; otherwise it recurs on the
    // next iteration.
    {
        // Transitive data dependence test within the body.
        std::function<bool(NodeId, NodeId)> depends =
            [&](NodeId node, NodeId on) -> bool {
            if (node == on)
                return true;
            if (node == kNoNode || !g.node(node).isPrimitive())
                return false;
            for (NodeId in : dataInputs(g, node)) {
                if (in != kNoNode && depends(in, on))
                    return true;
            }
            return false;
        };

        // Does a value depend on the innermost iterator of this pipe?
        int64_t inner_trip = 1;
        NodeId inner_iter = kNoNode;
        if (c.counter != kNoNode) {
            const auto& ctr = g.nodeAs<CounterNode>(c.counter);
            int last = int(ctr.dims.size()) - 1;
            inner_trip = ctr.dims[size_t(last)].trip(inst.binding());
            for (NodeId ch : c.children) {
                const auto* p = g.tryAs<PrimNode>(ch);
                if (p && p->op == Op::Iter && p->ctrDim == last)
                    inner_iter = ch;
            }
        }

        for (NodeId st_id : c.children) {
            const auto* st = g.tryAs<StoreNode>(st_id);
            if (!st)
                continue;
            for (NodeId ld_id : c.children) {
                const auto* ld = g.tryAs<LoadNode>(ld_id);
                if (!ld || ld->mem != st->mem)
                    continue;
                if (!depends(st->value, ld_id))
                    continue;
                int64_t cyc_lat = arrivalOf(st_id) -
                                  (arrivalOf(ld_id) -
                                   nodeLatency(g, ld_id));
                int64_t distance = 1;
                if (inner_iter != kNoNode) {
                    for (NodeId a : st->addr) {
                        if (a != kNoNode && depends(a, inner_iter))
                            distance = std::max<int64_t>(1,
                                                         inner_trip);
                    }
                }
                int64_t ii =
                    (cyc_lat + distance - 1) / std::max<int64_t>(
                                                   1, distance);
                t.ii = std::max(t.ii, std::max<int64_t>(1, ii));
            }
        }
    }

    // Reduce pipes append a balanced combining tree over the vector
    // lanes plus the accumulator feedback stage.
    if (c.pattern == Pattern::Reduce) {
        int64_t p = inst.par(pipe);
        const auto* acc = g.tryAs<MemNode>(c.accum);
        DType at = acc ? acc->type : DType::f32();
        int64_t tree_depth =
            int64_t(std::ceil(std::log2(std::max<int64_t>(2, p)))) *
            opLatency(c.combine, at);
        t.depth += tree_depth + opLatency(c.combine, at);
    }

    return t;
}

} // namespace dhdl

#include "analysis/plan.hh"

#include <algorithm>

#include "analysis/critical_path.hh"
#include "analysis/resources.hh"

namespace dhdl {

DesignPlan::DesignPlan(const Graph& g) : g_(&g)
{
    const size_t n = g.numNodes();
    parent_.resize(n);
    accessors_.assign(n, {});
    stages_.assign(n, {});
    ctrlNode_.assign(n, nullptr);
    ctrlCounter_.assign(n, nullptr);
    memNode_.assign(n, nullptr);
    bramNode_.assign(n, nullptr);
    pipeIdx_.assign(n, -1);
    xferIdx_.assign(n, -1);

    indexHierarchy();
    buildBindOrder();

    // ASAP skeletons for every Pipe body, before the template slots
    // that embed their delay-line requirements.
    for (NodeId c : ctrls_) {
        if (g.node(c).kind() != NodeKind::Pipe)
            continue;
        pipeIdx_[size_t(c)] = int32_t(pipeSkeletons_.size());
        pipeSkeletons_.push_back(buildPipeSkeleton(g, c));
    }

    buildXferInfos();
    buildTemplateSlots();
}

void
DesignPlan::indexHierarchy()
{
    const Graph& g = *g_;

    // Preorder controller listing from the root.
    if (g.root != kNoNode) {
        std::vector<NodeId> stack{g.root};
        while (!stack.empty()) {
            NodeId id = stack.back();
            stack.pop_back();
            ctrls_.push_back(id);
            const auto& c = g.nodeAs<ControllerNode>(id);
            // Push children in reverse to visit in declaration order.
            for (auto it = c.children.rbegin(); it != c.children.rend();
                 ++it) {
                if (g.node(*it).isController())
                    stack.push_back(*it);
            }
        }
    }

    for (NodeId id = 0; id < NodeId(g.numNodes()); ++id) {
        const Node& n = g.node(id);
        parent_[size_t(id)] = n.parent;
        switch (n.kind()) {
          case NodeKind::Load:
            accessors_[size_t(g.nodeAs<LoadNode>(id).mem)].push_back(id);
            break;
          case NodeKind::Store:
            accessors_[size_t(g.nodeAs<StoreNode>(id).mem)]
                .push_back(id);
            break;
          case NodeKind::TileLd:
            accessors_[size_t(g.nodeAs<TileLdNode>(id).onchip)]
                .push_back(id);
            transfers_.push_back(id);
            break;
          case NodeKind::TileSt:
            accessors_[size_t(g.nodeAs<TileStNode>(id).onchip)]
                .push_back(id);
            transfers_.push_back(id);
            break;
          case NodeKind::Bram:
            mems_.push_back(id);
            brams_.push_back(id);
            bramNode_[size_t(id)] = &g.nodeAs<BramNode>(id);
            break;
          case NodeKind::Reg:
          case NodeKind::Queue:
            mems_.push_back(id);
            break;
          default:
            break;
        }
        if (n.isController()) {
            const auto& c = g.nodeAs<ControllerNode>(id);
            ctrlNode_[size_t(id)] = &c;
            if (c.counter != kNoNode) {
                ctrlCounter_[size_t(id)] =
                    &g.nodeAs<CounterNode>(c.counter);
            }
            auto& st = stages_[size_t(id)];
            for (NodeId ch : c.children) {
                const Node& cn = g.node(ch);
                if (cn.isController() || cn.isTileTransfer())
                    st.push_back(ch);
            }
        }
        if (n.isMemory())
            memNode_[size_t(id)] = &g.nodeAs<MemNode>(id);
    }
}

void
DesignPlan::buildBindOrder()
{
    // Lane products need every node's ancestors resolved first; order
    // nodes by hierarchy depth (stable within a depth, so node-id
    // order is preserved for peers).
    const size_t n = parent_.size();
    std::vector<int32_t> depth(n, -1);
    std::vector<NodeId> chain;
    for (NodeId id = 0; id < NodeId(n); ++id) {
        NodeId cur = id;
        chain.clear();
        while (cur != kNoNode && depth[size_t(cur)] < 0) {
            chain.push_back(cur);
            cur = parent_[size_t(cur)];
        }
        int32_t base = cur == kNoNode ? -1 : depth[size_t(cur)];
        for (auto it = chain.rbegin(); it != chain.rend(); ++it)
            depth[size_t(*it)] = ++base;
    }

    int32_t max_depth = 0;
    for (int32_t d : depth)
        max_depth = std::max(max_depth, d);
    std::vector<std::vector<NodeId>> by_depth(size_t(max_depth) + 1);
    for (NodeId id = 0; id < NodeId(n); ++id)
        by_depth[size_t(depth[size_t(id)])].push_back(id);
    bindOrder_.reserve(n);
    for (const auto& level : by_depth)
        bindOrder_.insert(bindOrder_.end(), level.begin(), level.end());
}

void
DesignPlan::buildXferInfos()
{
    const Graph& g = *g_;
    xferInfos_.reserve(transfers_.size());
    for (NodeId x : transfers_) {
        XferInfo xi;
        const Node& n = g.node(x);
        if (n.kind() == NodeKind::TileLd) {
            const auto& t = g.nodeAs<TileLdNode>(x);
            xi.bits = g.nodeAs<MemNode>(t.offchip).type.bits();
            xi.par = t.par;
            xi.extent = &t.extent;
        } else {
            const auto& t = g.nodeAs<TileStNode>(x);
            xi.bits = g.nodeAs<MemNode>(t.offchip).type.bits();
            xi.par = t.par;
            xi.extent = &t.extent;
        }

        // Concurrency candidates: enclosing Parallel or MetaPipe
        // containers, nearest first. A Parallel always contends, so
        // nothing beyond it can be selected; a MetaPipe contends only
        // when its toggle binds active, so the walk records every
        // MetaPipe up to the first Parallel.
        NodeId anc = n.parent;
        while (anc != kNoNode) {
            const Node& a = g.node(anc);
            if (a.kind() == NodeKind::ParallelCtrl ||
                a.kind() == NodeKind::MetaPipe) {
                XferCandidate c;
                c.anc = anc;
                c.isParallel = a.kind() == NodeKind::ParallelCtrl;
                for (NodeId t : transfers_) {
                    if (t == x)
                        continue;
                    NodeId p = t;
                    while (p != kNoNode && p != anc)
                        p = parent_[size_t(p)];
                    if (p == anc)
                        c.rivals.push_back(t);
                }
                bool stop = c.isParallel;
                xi.candidates.push_back(std::move(c));
                if (stop)
                    break;
            }
            anc = a.parent;
        }
        xferIdx_[size_t(x)] = int32_t(xferInfos_.size());
        xferInfos_.push_back(std::move(xi));
    }
}

void
DesignPlan::buildTemplateSlots()
{
    const Graph& g = *g_;
    slots_.reserve(g.numNodes());

    for (NodeId id = 0; id < NodeId(g.numNodes()); ++id) {
        const Node& n = g.node(id);
        TemplateSlot s;
        s.base.node = id;

        switch (n.kind()) {
          case NodeKind::Prim: {
            const auto& p = g.nodeAs<PrimNode>(id);
            if (p.op == Op::Const || p.op == Op::Iter)
                break; // wiring / counter outputs: no datapath cost
            s.base.tkind = TemplateKind::PrimOp;
            s.base.op = p.op;
            s.base.isFloat = p.type.isFloat();
            s.base.bits = p.type.bits();
            s.patch = SlotPatch::Prim;
            slots_.push_back(s);
            break;
          }
          case NodeKind::Load:
          case NodeKind::Store: {
            NodeId mem = n.kind() == NodeKind::Load
                             ? g.nodeAs<LoadNode>(id).mem
                             : g.nodeAs<StoreNode>(id).mem;
            s.base.tkind = TemplateKind::LoadStore;
            s.base.bits =
                valueBits(g, n.kind() == NodeKind::Load
                                 ? id
                                 : g.nodeAs<StoreNode>(id).value);
            s.patch = SlotPatch::LoadStore;
            if (g.node(mem).kind() == NodeKind::Bram)
                s.ref = mem;
            slots_.push_back(s);
            break;
          }
          case NodeKind::Bram: {
            s.base.tkind = TemplateKind::BramInst;
            s.base.bits = g.nodeAs<BramNode>(id).type.bits();
            s.patch = SlotPatch::Bram;
            slots_.push_back(s);
            break;
          }
          case NodeKind::Reg: {
            s.base.tkind = TemplateKind::RegInst;
            s.base.bits = g.nodeAs<RegNode>(id).type.bits();
            s.patch = SlotPatch::Reg;
            slots_.push_back(s);
            break;
          }
          case NodeKind::Queue: {
            const auto& m = g.nodeAs<QueueNode>(id);
            s.base.tkind = TemplateKind::QueueInst;
            s.base.bits = m.type.bits();
            s.patch = SlotPatch::Queue;
            s.sym = m.depth;
            slots_.push_back(s);
            break;
          }
          case NodeKind::Counter: {
            const auto& c = g.nodeAs<CounterNode>(id);
            s.base.tkind = TemplateKind::CounterInst;
            s.base.ctrDims = int(c.dims.size());
            s.patch = SlotPatch::Counter;
            s.ref = n.parent;
            slots_.push_back(s);
            break;
          }
          case NodeKind::Pipe:
          case NodeKind::Sequential:
          case NodeKind::ParallelCtrl:
          case NodeKind::MetaPipe: {
            const auto& c = g.nodeAs<ControllerNode>(id);
            if (n.kind() == NodeKind::Pipe) {
                s.base.tkind = TemplateKind::PipeCtrl;
                s.patch = SlotPatch::Ctrl;
            } else if (n.kind() == NodeKind::ParallelCtrl) {
                s.base.tkind = TemplateKind::ParCtrl;
                s.patch = SlotPatch::Ctrl;
            } else if (n.kind() == NodeKind::MetaPipe) {
                s.base.tkind = TemplateKind::SeqCtrl; // patched
                s.patch = SlotPatch::CtrlSeqOrMeta;
            } else {
                s.base.tkind = TemplateKind::SeqCtrl;
                s.patch = SlotPatch::Ctrl;
            }
            s.base.stages = int(stages_[size_t(id)].size());
            slots_.push_back(s);

            // Reduce pattern: a balanced combining tree (plus the
            // tile accumulation datapath for MetaPipe reduces).
            if (c.pattern == Pattern::Reduce && c.accum != kNoNode) {
                TemplateSlot r;
                r.base.node = id;
                r.base.tkind = TemplateKind::ReduceTree;
                r.base.op = c.combine;
                const auto& acc = g.nodeAs<MemNode>(c.accum);
                r.base.isFloat = acc.type.isFloat();
                r.base.bits = acc.type.bits();
                r.patch = SlotPatch::Reduce;
                r.ref = c.accum;
                slots_.push_back(r);
            }

            // Delay-matching resources inside Pipe bodies; the slack
            // bits are binding-invariant, so the slots exist exactly
            // when the skeleton carries delay bits.
            if (n.kind() == NodeKind::Pipe) {
                const PipeSkeleton& sk =
                    pipeSkeletons_[size_t(pipeIdx_[size_t(id)])];
                if (sk.delayRegBits > 0 || sk.delayBramBits > 0) {
                    TemplateSlot d;
                    d.base.node = id;
                    d.base.tkind = TemplateKind::DelayLine;
                    d.base.delayBits = sk.delayRegBits;
                    d.base.depth = 0;
                    d.patch = SlotPatch::DelayLine;
                    slots_.push_back(d);
                    if (sk.delayBramBits > 0) {
                        TemplateSlot db = d;
                        db.base.delayBits = sk.delayBramBits;
                        db.base.depth = kBramDelayThreshold + 1;
                        slots_.push_back(db);
                    }
                }
            }
            break;
          }
          case NodeKind::TileLd:
          case NodeKind::TileSt: {
            s.base.tkind = TemplateKind::TileTransfer;
            s.patch = SlotPatch::Tile;
            if (n.kind() == NodeKind::TileLd) {
                const auto& x = g.nodeAs<TileLdNode>(id);
                s.base.bits = g.nodeAs<MemNode>(x.offchip).type.bits();
                s.sym = x.par;
                s.extent = &x.extent;
            } else {
                const auto& x = g.nodeAs<TileStNode>(id);
                s.base.bits = g.nodeAs<MemNode>(x.offchip).type.bits();
                s.sym = x.par;
                s.extent = &x.extent;
            }
            slots_.push_back(s);
            break;
          }
          default:
            break;
        }
    }
}

} // namespace dhdl

/**
 * @file
 * Template instantiation records. A design instance expands into a
 * list of TemplateInst entries — one per instantiated architectural
 * template, with the concrete parameters that determine its cost.
 * Split out of resources.hh so the compile-once DesignPlan can carry
 * a pre-built template skeleton without an include cycle.
 */

#ifndef DHDL_ANALYSIS_TEMPLATES_HH
#define DHDL_ANALYSIS_TEMPLATES_HH

#include <cstdint>

#include "core/node.hh"

namespace dhdl {

/** Characterizable template categories. */
enum class TemplateKind : uint8_t {
    PrimOp,       //!< One primitive operator (per Op and type).
    LoadStore,    //!< On-chip access port: bank address mux network.
    BramInst,     //!< Banked scratchpad.
    RegInst,      //!< Register (optionally double-buffered).
    QueueInst,    //!< Priority queue.
    CounterInst,  //!< Counter chain.
    PipeCtrl,     //!< Fine-grained pipeline control FSM.
    SeqCtrl,      //!< Sequential controller FSM.
    ParCtrl,      //!< Fork-join container with barrier.
    MetaPipeCtrl, //!< Coarse-grained pipeline handshake network.
    TileTransfer, //!< TileLd/TileSt command generator + queues.
    ReduceTree,   //!< Balanced combining tree for Reduce patterns.
    DelayLine,    //!< Pipeline balancing delays (regs or BRAM FIFOs).
};

/** Number of TemplateKind values (for dense per-kind tables). */
inline constexpr size_t kNumTemplateKinds =
    size_t(TemplateKind::DelayLine) + 1;

/** Name of a template kind, e.g. "PrimOp". */
const char* templateKindName(TemplateKind k);

/**
 * Coarse template classes used by design-level feature vectors: the
 * area ANN inputs count control / on-chip-memory / tile-transfer
 * templates (Section IV-B2), and the DSE surrogate features reuse the
 * same classification of a plan's template slots.
 */
enum class TemplateClass : uint8_t {
    Control,  //!< Pipe/Seq/Par/MetaPipe controller FSMs.
    Memory,   //!< Bram/Reg/Queue on-chip memories.
    Transfer, //!< TileLd/TileSt command generators.
    Other,    //!< Datapath and glue (PrimOp, counters, delays, ...).
};

/** Classify a template kind into its coarse feature class. */
constexpr TemplateClass
templateClassOf(TemplateKind k)
{
    switch (k) {
      case TemplateKind::PipeCtrl:
      case TemplateKind::SeqCtrl:
      case TemplateKind::ParCtrl:
      case TemplateKind::MetaPipeCtrl:
        return TemplateClass::Control;
      case TemplateKind::BramInst:
      case TemplateKind::RegInst:
      case TemplateKind::QueueInst:
        return TemplateClass::Memory;
      case TemplateKind::TileTransfer:
        return TemplateClass::Transfer;
      default:
        return TemplateClass::Other;
    }
}

/** One instantiated template with its concrete cost parameters. */
struct TemplateInst {
    TemplateKind tkind = TemplateKind::PrimOp;
    NodeId node = kNoNode;
    Op op = Op::Add;        //!< PrimOp operator / ReduceTree combiner.
    bool isFloat = false;   //!< Floating-point datapath.
    int bits = 32;          //!< Operand / element width.
    int64_t lanes = 1;      //!< Hardware replication count.
    int64_t vec = 1;        //!< Vector width within one replica.
    int64_t elems = 0;      //!< Memory elements per replica.
    int banks = 1;          //!< BRAM banks.
    bool doubleBuf = false; //!< Double-buffered (MetaPipe comms).
    int64_t depth = 0;      //!< Queue depth / delay cycles.
    int stages = 0;         //!< Controller stage count.
    int ctrDims = 0;        //!< Counter chain length.
    int64_t tileElems = 0;  //!< Elements per tile command (TileLd/St).
    double delayBits = 0;   //!< DelayLine: total slack-bits to absorb.
};

} // namespace dhdl

#endif // DHDL_ANALYSIS_TEMPLATES_HH

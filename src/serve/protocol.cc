#include "serve/protocol.hh"

#include "dse/evaluator.hh"

#ifndef DHDL_VERSION_STRING
#define DHDL_VERSION_STRING "0.10.0"
#endif

namespace dhdl::serve {

const char*
versionString()
{
    return DHDL_VERSION_STRING;
}

Json
diagToJson(const Diag& d)
{
    Json j = Json::object();
    j.set("code", diagCodeName(d.code));
    j.set("severity",
          d.severity == DiagSeverity::Error ? "error" : "warning");
    if (!d.stage.empty())
        j.set("stage", d.stage);
    j.set("message", d.message);
    if (d.pointIndex >= 0)
        j.set("point", int64_t(d.pointIndex));
    if (!d.context.empty())
        j.set("context", d.context);
    return j;
}

Json
errorResponse(const Diag& d)
{
    Json j = Json::object();
    j.set("ok", false);
    j.set("error", diagToJson(d));
    return j;
}

Json
errorResponse(DiagCode code, const std::string& message,
              const std::string& stage)
{
    Diag d;
    d.code = code;
    d.severity = DiagSeverity::Error;
    d.stage = stage;
    d.message = message;
    return errorResponse(d);
}

Json
frontToJson(const Graph& g, const std::vector<dse::DesignPoint>& points,
            const std::vector<size_t>& front)
{
    Json arr = Json::array();
    for (size_t idx : front) {
        const dse::DesignPoint& p = points[idx];
        Json e = Json::object();
        e.set("index", int64_t(idx));
        e.set("cycles", p.cycles);
        e.set("alms", p.area.alms);
        e.set("dsps", p.area.dsps);
        e.set("brams", p.area.brams);
        e.set("binding", dse::renderBinding(g, p.binding));
        arr.push(std::move(e));
    }
    return arr;
}

Json
resultToJson(const Graph& g, const dse::ExploreResult& res)
{
    const dse::ExploreStats& s = res.stats;
    Json stats = Json::object();
    stats.set("requested", s.requested);
    stats.set("sampled", s.total);
    // The sampling-shortfall marker rides the result itself, not just
    // the diag stream: clients see "708/2000" without grepping diags.
    stats.set("shortfall", s.total < s.requested);
    stats.set("evaluated", s.evaluated);
    stats.set("resumed", s.resumed);
    stats.set("failed", s.failed);
    stats.set("valid", s.valid);
    stats.set("skipped", s.skipped);
    stats.set("cancelled", s.cancelled);
    stats.set("time_budget_hit", s.timeBudgetHit);
    stats.set("eval_budget_hit", s.evalBudgetHit);
    stats.set("rounds", s.rounds.size());

    Json diags = Json::array();
    for (const Diag& d : res.diags) {
        if (d.severity == DiagSeverity::Warning)
            diags.push(diagToJson(d));
    }

    Json j = Json::object();
    j.set("design", g.name());
    j.set("stats", std::move(stats));
    j.set("front", frontToJson(g, res.points, res.pareto));
    j.set("warnings", std::move(diags));
    return j;
}

namespace {

void
pushSpan(Json& events, const char* name, uint64_t ts, uint64_t dur)
{
    Json e = Json::object();
    e.set("name", name);
    e.set("cat", "serve");
    e.set("ph", "X");
    e.set("pid", 1);
    e.set("tid", 1);
    e.set("ts", ts);
    e.set("dur", dur);
    events.push(std::move(e));
}

} // namespace

Json
jobTraceToJson(const dse::ExploreResult& res)
{
    auto us = [](double sec) {
        return sec > 0 ? uint64_t(sec * 1e6) : uint64_t(0);
    };
    Json events = Json::array();
    uint64_t now = 0;
    // planSeconds is 0 exactly when the driver received a cached
    // plan, so a cache-hit job's trace has no plan-compile span.
    if (res.stats.planSeconds > 0) {
        pushSpan(events, "plan-compile", now,
                 us(res.stats.planSeconds));
        now += us(res.stats.planSeconds);
    }
    for (const dse::RoundStats& rs : res.stats.rounds) {
        const std::string label = "round-" + std::to_string(rs.round);
        pushSpan(events, (label + ".propose").c_str(), now,
                 us(rs.proposeSeconds));
        if (rs.trainSeconds > 0)
            pushSpan(events, (label + ".train").c_str(), now,
                     us(rs.trainSeconds));
        if (rs.rankSeconds > 0)
            pushSpan(events, (label + ".rank").c_str(), now,
                     us(rs.rankSeconds));
        now += us(rs.proposeSeconds);
        pushSpan(events, (label + ".eval").c_str(), now,
                 us(rs.evalSeconds));
        now += us(rs.evalSeconds);
    }
    Json j = Json::object();
    j.set("traceEvents", std::move(events));
    j.set("displayTimeUnit", "ms");
    return j;
}

} // namespace dhdl::serve

/**
 * @file
 * Blocking line-protocol client for dhdld. One Client owns one TCP
 * connection; request() sends a JSON object and reads the response
 * line, send()/recvLine() expose the raw stream for consumers of
 * streamed round events. Used by `dhdlc submit/status/result/cancel`,
 * the serving tests, and bench/bench_serving.
 */

#ifndef DHDL_SERVE_CLIENT_HH
#define DHDL_SERVE_CLIENT_HH

#include <string>

#include "serve/protocol.hh"

namespace dhdl::serve {

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    Client(Client&& other) noexcept
        : fd_(other.fd_), buf_(std::move(other.buf_))
    {
        other.fd_ = -1;
    }
    Client&
    operator=(Client&& other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            buf_ = std::move(other.buf_);
            other.fd_ = -1;
        }
        return *this;
    }

    /**
     * Connect to "host:port" or "port" (host defaults to 127.0.0.1).
     */
    Status connect(const std::string& address);

    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * Exchange the version handshake; fails with VersionMismatch when
     * the server speaks a different protocol. Fills `serverVersion`
     * when given.
     */
    Status hello(std::string* serverVersion = nullptr);

    /**
     * Send one request object (the protocol version is stamped in)
     * and parse the response line. A transport error or unparsable
     * response is a Status error; a `{"ok":false}` response is NOT —
     * callers inspect the returned Json.
     */
    Status request(const Json& req, Json& resp);

    /** Send one raw line (a rendered JSON object). */
    Status send(const Json& req);

    /** Send arbitrary bytes + newline (tests: malformed requests). */
    Status sendLine(const std::string& raw);

    /** Read the next protocol line into `out`; error on EOF. */
    Status recvLine(std::string& out);

    /** Read and parse the next line. */
    Status recv(Json& out);

  private:
    int fd_ = -1;
    std::string buf_;
};

} // namespace dhdl::serve

#endif // DHDL_SERVE_CLIENT_HH

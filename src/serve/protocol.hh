/**
 * @file
 * The dhdld wire protocol: newline-delimited JSON over a local TCP
 * socket, one request or event per line. Ops:
 *
 *   {"op":"hello","proto":1,"version":"..."}       version handshake
 *   {"op":"submit","tenant":"t","design":"gda",     enqueue a job
 *    "scale":1.0,"config":{...},"stream":true}      (or "ir":"<.dhdl
 *                                                    text>")
 *   {"op":"status","job":N}                         poll a job
 *   {"op":"result","job":N,"wait":true}             fetch the result
 *   {"op":"cancel","job":N}                         cooperative cancel
 *   {"op":"metrics"}                                /metrics text
 *   {"op":"trace","job":N}                          per-job trace JSON
 *   {"op":"shutdown"}                               graceful drain
 *
 * Responses are `{"ok":true,...}` or `{"ok":false,"error":{...}}`
 * where the error object is a rendered structured Diag — admission
 * rejections, parse failures and version skew are all Diags, never
 * silent drops. A streaming submit additionally receives
 * `{"event":"round",...}` lines as search rounds complete and a final
 * `{"event":"done","result":{...}}`.
 *
 * The same socket doubles as a plain-text scrape target: a line
 * beginning with `GET /metrics` is answered with an HTTP/1.0
 * Prometheus exposition-format response and the connection closes —
 * `curl http://127.0.0.1:PORT/metrics` works against a dhdld.
 *
 * This header also owns the compile-time version string and the
 * deterministic renderers (Pareto front, job result, per-job trace)
 * shared by the server, the dhdlc client mode, and the byte-identity
 * tests: a streamed front and an offline `dhdlc explore` of the same
 * seed/config render through the identical code path, so equal
 * results are equal bytes.
 */

#ifndef DHDL_SERVE_PROTOCOL_HH
#define DHDL_SERVE_PROTOCOL_HH

#include <string>

#include "dse/explorer.hh"
#include "serve/json.hh"

namespace dhdl::serve {

/** Wire-protocol revision; bumped on incompatible changes. */
constexpr int kProtocolVersion = 1;

/**
 * Compile-time version string of this build (overridable with
 * -DDHDL_VERSION_STRING=...). Embedded in `dhdlc --version`, the
 * hello handshake, and every submit response, so client/server skew
 * is detected instead of silently misparsing.
 */
const char* versionString();

/** Render a structured Diag as a protocol error object. */
Json diagToJson(const Diag& d);

/** `{"ok":false,"error":{...}}` for the given Diag. */
Json errorResponse(const Diag& d);

/** Convenience: build a Diag and wrap it in errorResponse(). */
Json errorResponse(DiagCode code, const std::string& message,
                   const std::string& stage = "serve");

/**
 * The Pareto front as a deterministic JSON array: one object per
 * front index (ascending ALMs) with index, cycles, area and the
 * rendered binding. Byte-identical for byte-identical results — the
 * serving end-to-end test compares a streamed front against an
 * offline explore through this exact function.
 */
Json frontToJson(const Graph& g, const std::vector<dse::DesignPoint>& points,
                 const std::vector<size_t>& front);

/**
 * Full job result: stats (sampled/requested with an explicit
 * shortfall marker, evaluated, failed, valid, cancelled, rounds),
 * the front via frontToJson(), and every warning diag. Wall-clock
 * fields are excluded so equal explorations render equal bytes.
 */
Json resultToJson(const Graph& g, const dse::ExploreResult& res);

/**
 * Per-job Chrome-trace export built from ExploreStats: a
 * plan-compile span (only when this job actually compiled — a plan
 * cache hit has none, which the end-to-end test asserts) and one
 * propose/train/rank/eval span group per search round, on a
 * synthetic timeline starting at 0.
 */
Json jobTraceToJson(const dse::ExploreResult& res);

} // namespace dhdl::serve

#endif // DHDL_SERVE_PROTOCOL_HH

#include "serve/plan_cache.hh"

#include <algorithm>
#include <chrono>

#include "core/checksum.hh"
#include "core/printer.hh"
#include "obs/metrics.hh"

namespace dhdl::serve {

namespace {

/** Compile the plan for an entry, recording its wall-clock. */
void
compileInto(CachedPlan& entry)
{
    auto t0 = std::chrono::steady_clock::now();
    entry.plan = dse::Evaluator::tryCompile(entry.graph);
    entry.planSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - t0)
            .count();
}

} // namespace

PlanCache::PlanCache(size_t capacity)
    : cap_(std::max<size_t>(1, capacity)) {}

void
PlanCache::touch(Slot& slot, uint64_t key)
{
    lru_.erase(slot.lru);
    lru_.push_front(key);
    slot.lru = lru_.begin();
}

std::shared_ptr<const CachedPlan>
PlanCache::acquire(Graph g, bool* hit)
{
    static const obs::Counter cHit("serve.cache.hit");
    static const obs::Counter cMiss("serve.cache.miss");
    static const obs::Counter cEvict("serve.cache.evict");

    const std::string ir = emitIR(g);
    const uint64_t key = fnv1a(ir);
    if (hit)
        *hit = false;

    std::unique_lock<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        // Entry exists or is being built by another thread; wait for
        // the builder so every concurrent requester receives the
        // identical plan pointer.
        builtCv_.wait(lock, [&] {
            auto e = map_.find(key);
            return e == map_.end() || e->second.entry != nullptr;
        });
        it = map_.find(key);
        if (it != map_.end() && it->second.entry) {
            if (it->second.entry->ir == ir) {
                touch(it->second, key);
                ++hits_;
                if (hit)
                    *hit = true;
                cHit.add(1);
                return it->second.entry;
            }
            // FNV collision: never serve a plan for a different IR.
            // Compile outside the cache and leave the resident entry
            // alone.
            ++collisions_;
            ++misses_;
            lock.unlock();
            auto entry = std::make_shared<CachedPlan>(std::move(g));
            entry->key = key;
            entry->ir = ir;
            compileInto(*entry);
            cMiss.add(1);
            return entry;
        }
        // The builder vanished (its insert failed); fall through and
        // build ourselves.
    }

    // Miss: reserve the key (null entry = building) so concurrent
    // requesters wait instead of compiling twice, then compile
    // outside the lock.
    ++misses_;
    lru_.push_front(key);
    map_[key] = Slot{nullptr, lru_.begin()};
    lock.unlock();
    cMiss.add(1);

    // The plan points into the graph, so the graph must reach its
    // final address (inside the shared entry) before compilation.
    auto entry = std::make_shared<CachedPlan>(std::move(g));
    entry->key = key;
    entry->ir = ir;
    compileInto(*entry);

    lock.lock();
    auto slot = map_.find(key);
    if (slot != map_.end())
        slot->second.entry = entry;
    // Evict least-recently-used complete entries over capacity.
    // In-flight builds (null entries) are never evicted.
    while (map_.size() > cap_ && !lru_.empty()) {
        bool evicted = false;
        for (auto r = lru_.rbegin(); r != lru_.rend(); ++r) {
            auto v = map_.find(*r);
            if (v == map_.end() || !v->second.entry ||
                v->second.entry == entry)
                continue;
            lru_.erase(std::next(r).base());
            map_.erase(v);
            ++evictions_;
            cEvict.add(1);
            evicted = true;
            break;
        }
        if (!evicted)
            break;
    }
    lock.unlock();
    builtCv_.notify_all();
    return entry;
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.collisions = collisions_;
    s.size = map_.size();
    s.capacity = cap_;
    return s;
}

} // namespace dhdl::serve

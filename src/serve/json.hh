/**
 * @file
 * Minimal JSON value type + hardened parser for the serving
 * protocol (serve/protocol.hh). The daemon reads untrusted bytes off
 * a socket, so the parser follows the core/parser rules: it never
 * throws, never aborts, caps input size and nesting depth, and turns
 * every rejection into a structured ParseError Diag.
 *
 * Rendering is deterministic: object members keep insertion order,
 * numbers render as exact integers when integral and as shortest
 * round-trip ("%.17g") doubles otherwise, and no whitespace is
 * emitted. parse(render(v)) reproduces v exactly — the serving
 * byte-identity tests lean on this round trip.
 */

#ifndef DHDL_SERVE_JSON_HH
#define DHDL_SERVE_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/diag.hh"

namespace dhdl::serve {

/** One JSON value; arrays/objects own their children. */
class Json
{
  public:
    enum class Kind : uint8_t {
        Null,
        Bool,
        Int,    //!< Integral number, rendered without a decimal point.
        Double, //!< Non-integral number.
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    // Spelled with the fundamental integer types (not the
    // <cstdint> aliases) so every width converts without the
    // aliases colliding on LP64 targets.
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(long v) : kind_(Kind::Int), int_(v) {}
    Json(long long v) : kind_(Kind::Int), int_(int64_t(v)) {}
    Json(unsigned v) : kind_(Kind::Int), int_(int64_t(v)) {}
    Json(unsigned long v) : kind_(Kind::Int), int_(int64_t(v)) {}
    Json(unsigned long long v) : kind_(Kind::Int), int_(int64_t(v)) {}
    Json(double v) : kind_(Kind::Double), dbl_(v) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Json(const char* s) : kind_(Kind::String), str_(s) {}

    static Json
    array()
    {
        Json j;
        j.kind_ = Kind::Array;
        return j;
    }

    static Json
    object()
    {
        Json j;
        j.kind_ = Kind::Object;
        return j;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isString() const { return kind_ == Kind::String; }
    bool
    isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }

    bool
    asBool(bool dflt = false) const
    {
        return kind_ == Kind::Bool ? bool_ : dflt;
    }

    int64_t
    asInt(int64_t dflt = 0) const
    {
        if (kind_ == Kind::Int)
            return int_;
        if (kind_ == Kind::Double)
            return int64_t(dbl_);
        return dflt;
    }

    double
    asDouble(double dflt = 0) const
    {
        if (kind_ == Kind::Double)
            return dbl_;
        if (kind_ == Kind::Int)
            return double(int_);
        return dflt;
    }

    const std::string&
    asString() const
    {
        return str_;
    }

    /** Append to an array (turns a Null into an Array). */
    Json&
    push(Json v)
    {
        kind_ = Kind::Array;
        items_.push_back(std::move(v));
        return *this;
    }

    /** Set an object member (turns a Null into an Object); keeps
     *  insertion order, replaces an existing key in place. */
    Json& set(const std::string& key, Json v);

    /** Member by key; nullptr when absent or not an object. */
    const Json* find(const std::string& key) const;

    /** Array items (empty unless isArray()). */
    const std::vector<Json>& items() const { return items_; }

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>>&
    members() const
    {
        return members_;
    }

    /** Deterministic single-line rendering (no whitespace). */
    std::string render() const;
    void renderTo(std::string& out) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double dbl_ = 0;
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

/** Parser limits; the defaults bound a hostile peer. */
struct JsonLimits {
    size_t maxBytes = 32u << 20; //!< Input size cap.
    int maxDepth = 64;           //!< Array/object nesting cap.
};

/**
 * Parse one JSON document (surrounding whitespace allowed, trailing
 * garbage rejected). Never throws; failures return a ParseError
 * Status naming the byte offset.
 */
Status parseJson(std::string_view text, Json& out,
                 const JsonLimits& limits = {});

} // namespace dhdl::serve

#endif // DHDL_SERVE_JSON_HH

#include "serve/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dhdl::serve {

Json&
Json::set(const std::string& key, Json v)
{
    kind_ = Kind::Object;
    for (auto& [k, val] : members_) {
        if (k == key) {
            val = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
}

const Json*
Json::find(const std::string& key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto& [k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

void
escapeTo(std::string& out, const std::string& s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::renderTo(std::string& out) const
{
    switch (kind_) {
    case Kind::Null:
        out += "null";
        return;
    case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
    case Kind::Int: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(int_));
        out += buf;
        return;
    }
    case Kind::Double: {
        // %.17g round-trips every finite double through strtod, so
        // parse(render(v)) == v and re-rendering is byte-stable.
        // Non-finite values have no JSON spelling; emit null.
        if (!std::isfinite(dbl_)) {
            out += "null";
            return;
        }
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", dbl_);
        out += buf;
        return;
    }
    case Kind::String:
        escapeTo(out, str_);
        return;
    case Kind::Array:
        out += '[';
        for (size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            items_[i].renderTo(out);
        }
        out += ']';
        return;
    case Kind::Object:
        out += '{';
        for (size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            escapeTo(out, members_[i].first);
            out += ':';
            members_[i].second.renderTo(out);
        }
        out += '}';
        return;
    }
}

std::string
Json::render() const
{
    std::string out;
    renderTo(out);
    return out;
}

namespace {

/** Recursive-descent parser over a bounded view; never throws. */
class Parser
{
  public:
    Parser(std::string_view text, const JsonLimits& limits)
        : text_(text), limits_(limits) {}

    Status
    parse(Json& out)
    {
        if (text_.size() > limits_.maxBytes)
            return fail(0, "input exceeds size cap");
        Status st = value(out, 0);
        if (!st.ok())
            return st;
        skipWs();
        if (pos_ != text_.size())
            return fail(pos_, "trailing bytes after document");
        return Status();
    }

  private:
    static Status
    fail(size_t at, const std::string& what)
    {
        Diag d;
        d.code = DiagCode::ParseError;
        d.severity = DiagSeverity::Error;
        d.stage = "json";
        d.message = what + " (byte " + std::to_string(at) + ")";
        return Status::error(std::move(d));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (text_.size() - pos_ < n ||
            text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Status
    value(Json& out, int depth)
    {
        if (depth > limits_.maxDepth)
            return fail(pos_, "nesting exceeds depth cap");
        skipWs();
        if (pos_ >= text_.size())
            return fail(pos_, "unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return object(out, depth);
        if (c == '[')
            return array(out, depth);
        if (c == '"') {
            std::string s;
            Status st = string(s);
            if (!st.ok())
                return st;
            out = Json(std::move(s));
            return Status();
        }
        if (literal("true")) {
            out = Json(true);
            return Status();
        }
        if (literal("false")) {
            out = Json(false);
            return Status();
        }
        if (literal("null")) {
            out = Json();
            return Status();
        }
        return number(out);
    }

    Status
    object(Json& out, int depth)
    {
        consume('{');
        out = Json::object();
        skipWs();
        if (consume('}'))
            return Status();
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail(pos_, "expected object key");
            std::string key;
            Status st = string(key);
            if (!st.ok())
                return st;
            skipWs();
            if (!consume(':'))
                return fail(pos_, "expected ':' after key");
            Json v;
            st = value(v, depth + 1);
            if (!st.ok())
                return st;
            out.set(key, std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return Status();
            return fail(pos_, "expected ',' or '}' in object");
        }
    }

    Status
    array(Json& out, int depth)
    {
        consume('[');
        out = Json::array();
        skipWs();
        if (consume(']'))
            return Status();
        while (true) {
            Json v;
            Status st = value(v, depth + 1);
            if (!st.ok())
                return st;
            out.push(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return Status();
            return fail(pos_, "expected ',' or ']' in array");
        }
    }

    Status
    string(std::string& out)
    {
        const size_t start = pos_;
        consume('"');
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return Status();
            if (uint8_t(c) < 0x20)
                return fail(pos_ - 1,
                            "unescaped control byte in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                uint32_t cp = 0;
                if (!hex4(cp))
                    return fail(pos_, "bad \\u escape");
                // Surrogate pair: combine when a low surrogate
                // follows; a lone surrogate encodes as U+FFFD.
                if (cp >= 0xD800 && cp <= 0xDBFF &&
                    text_.size() - pos_ >= 6 &&
                    text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
                    pos_ += 2;
                    uint32_t lo = 0;
                    if (!hex4(lo))
                        return fail(pos_, "bad \\u escape");
                    if (lo >= 0xDC00 && lo <= 0xDFFF)
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    else
                        cp = 0xFFFD;
                } else if (cp >= 0xD800 && cp <= 0xDFFF) {
                    cp = 0xFFFD;
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                return fail(pos_ - 1, "bad escape character");
            }
        }
        return fail(start, "unterminated string");
    }

    bool
    hex4(uint32_t& out)
    {
        if (text_.size() - pos_ < 4)
            return false;
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= uint32_t(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= uint32_t(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= uint32_t(c - 'A' + 10);
            else
                return false;
        }
        return true;
    }

    static void
    appendUtf8(std::string& out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xC0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += char(0xE0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        } else {
            out += char(0xF0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3F));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        }
    }

    Status
    number(Json& out)
    {
        const size_t start = pos_;
        bool integral = true;
        if (consume('-')) {
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start ||
            (pos_ == start + 1 && text_[start] == '-'))
            return fail(start, "expected a value");
        const std::string tok(text_.substr(start, pos_ - start));
        errno = 0;
        char* end = nullptr;
        if (integral) {
            const long long v = std::strtoll(tok.c_str(), &end, 10);
            if (end == tok.c_str() + tok.size() && errno != ERANGE) {
                out = Json(int64_t(v));
                return Status();
            }
            // Out-of-range integers fall through to double.
        }
        errno = 0;
        const double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || !std::isfinite(d))
            return fail(start, "malformed number");
        out = Json(d);
        return Status();
    }

    std::string_view text_;
    const JsonLimits& limits_;
    size_t pos_ = 0;
};

} // namespace

Status
parseJson(std::string_view text, Json& out, const JsonLimits& limits)
{
    Parser p(text, limits);
    return p.parse(out);
}

} // namespace dhdl::serve

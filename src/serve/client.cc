#include "serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace dhdl::serve {

namespace {

Status
transportError(std::string message)
{
    Diag d;
    d.code = DiagCode::UserError;
    d.severity = DiagSeverity::Error;
    d.stage = "client";
    d.message = std::move(message);
    return Status::error(d);
}

} // namespace

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

Status
Client::connect(const std::string& address)
{
    close();
    std::string host = "127.0.0.1";
    std::string portStr = address;
    if (size_t colon = address.rfind(':');
        colon != std::string::npos) {
        host = address.substr(0, colon);
        portStr = address.substr(colon + 1);
    }
    char* end = nullptr;
    long port = std::strtol(portStr.c_str(), &end, 10);
    if (portStr.empty() || *end != '\0' || port <= 0 || port > 65535)
        return transportError("bad server address \"" + address +
                              "\" (want host:port)");

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return transportError(std::string("socket: ") +
                              std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(uint16_t(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return transportError("bad host \"" + host +
                              "\" (want an IPv4 address)");
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) < 0) {
        Status st = transportError("connect to " + address + ": " +
                                   std::strerror(errno));
        ::close(fd);
        return st;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    fd_ = fd;
    return Status();
}

Status
Client::send(const Json& req)
{
    return sendLine(req.render());
}

Status
Client::sendLine(const std::string& raw)
{
    if (fd_ < 0)
        return transportError("not connected");
    std::string line = raw;
    line += '\n';
    size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::send(fd_, line.data() + off, line.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return transportError(std::string("send: ") +
                                  std::strerror(errno));
        off += size_t(n);
    }
    return Status();
}

Status
Client::recvLine(std::string& out)
{
    if (fd_ < 0)
        return transportError("not connected");
    while (true) {
        size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return Status();
        }
        char chunk[16384];
        ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n <= 0)
            return transportError(
                n == 0 ? "server closed the connection"
                       : std::string("recv: ") +
                             std::strerror(errno));
        buf_.append(chunk, size_t(n));
    }
}

Status
Client::recv(Json& out)
{
    std::string line;
    if (Status st = recvLine(line); !st.ok())
        return st;
    return parseJson(line, out);
}

Status
Client::request(const Json& reqIn, Json& resp)
{
    Json req = reqIn;
    if (!req.find("proto"))
        req.set("proto", kProtocolVersion);
    if (Status st = send(req); !st.ok())
        return st;
    return recv(resp);
}

Status
Client::hello(std::string* serverVersion)
{
    Json req = Json::object();
    req.set("op", "hello");
    Json resp;
    if (Status st = request(req, resp); !st.ok())
        return st;
    const Json* ok = resp.find("ok");
    if (!ok || !ok->asBool()) {
        Diag d;
        d.code = DiagCode::VersionMismatch;
        d.severity = DiagSeverity::Error;
        d.stage = "client";
        d.message = "handshake rejected";
        if (const Json* e = resp.find("error"))
            if (const Json* m = e->find("message"))
                d.message = m->asString();
        return Status::error(d);
    }
    if (const Json* proto = resp.find("proto");
        !proto || proto->asInt() != kProtocolVersion) {
        Diag d;
        d.code = DiagCode::VersionMismatch;
        d.severity = DiagSeverity::Error;
        d.stage = "client";
        d.message = "server speaks a different protocol version";
        return Status::error(d);
    }
    if (serverVersion) {
        *serverVersion = "unknown";
        if (const Json* v = resp.find("version"))
            *serverVersion = v->asString();
    }
    return Status();
}

} // namespace dhdl::serve

/**
 * @file
 * Content-addressed DesignPlan cache: the serving layer's
 * amortization of compile-once plans across repeated submissions.
 *
 * Keying: the 64-bit FNV-1a hash (core/checksum) of the canonical
 * `.dhdl` serialization (emitIR) after the standard pass pipeline —
 * the same fingerprint the checkpoint header uses, so "same design"
 * means the same thing everywhere. Two submissions of byte-different
 * text that canonicalize to the same IR share one plan. The full
 * canonical IR is stored alongside the key and compared on every
 * hit, so an FNV collision degrades to an uncached compile, never to
 * serving the wrong plan.
 *
 * Concurrency: acquire() is thread-safe. Concurrent requests for the
 * same key compile once — the first requester builds while the rest
 * wait on the entry — and all receive the identical CachedPlan (and
 * thus the identical DesignPlan pointer), which the 8-thread reuse
 * test asserts. Entries are handed out as shared_ptr, so LRU
 * eviction never invalidates a plan a running job still holds.
 */

#ifndef DHDL_SERVE_PLAN_CACHE_HH
#define DHDL_SERVE_PLAN_CACHE_HH

#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/graph.hh"
#include "dse/evaluator.hh"

namespace dhdl::serve {

/** One cached design: canonical identity + compiled plan. */
struct CachedPlan {
    uint64_t key = 0;  //!< fnv1a(ir).
    std::string ir;    //!< Canonical emitIR text (collision guard).
    Graph graph;       //!< The graph the plan was compiled from.
    /** Compile-once plan; null for structurally broken graphs (the
     *  evaluator then falls back per point, as everywhere else). */
    std::shared_ptr<const DesignPlan> plan;
    /** Wall-clock of the one-time compile. The serving layer stamps
     *  this into the *first* job's stats so a cold job's trace shows
     *  the plan-compile span and a cache hit's doesn't. */
    double planSeconds = 0;

    explicit CachedPlan(Graph g) : graph(std::move(g)) {}
};

class PlanCache
{
  public:
    explicit PlanCache(size_t capacity = 32);

    /**
     * Look up the canonical IR of `g`, compiling and inserting on a
     * miss. On a hit the passed graph is discarded and the cached
     * entry (graph + plan) is returned; `hit`, when given, reports
     * which path was taken. Never returns null.
     */
    std::shared_ptr<const CachedPlan> acquire(Graph g,
                                              bool* hit = nullptr);

    struct Stats {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        uint64_t collisions = 0; //!< FNV collisions, served uncached.
        size_t size = 0;
        size_t capacity = 0;
    };
    Stats stats() const;

  private:
    struct Slot {
        std::shared_ptr<CachedPlan> entry; //!< Null while building.
        std::list<uint64_t>::iterator lru;
    };

    void touch(Slot& slot, uint64_t key);

    mutable std::mutex mu_;
    std::condition_variable builtCv_;
    std::unordered_map<uint64_t, Slot> map_;
    std::list<uint64_t> lru_; //!< Front = most recently used.
    size_t cap_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t collisions_ = 0;
};

} // namespace dhdl::serve

#endif // DHDL_SERVE_PLAN_CACHE_HH

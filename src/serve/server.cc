#include "serve/server.hh"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "apps/apps.hh"
#include "core/parser.hh"
#include "core/passes.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"

namespace dhdl::serve {

const char*
jobStateName(JobState s)
{
    switch (s) {
    case JobState::Queued:
        return "queued";
    case JobState::Running:
        return "running";
    case JobState::Done:
        return "done";
    case JobState::Failed:
        return "failed";
    case JobState::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

/** One admitted exploration job and its streaming event log. */
struct Server::Job {
    uint64_t id = 0;
    std::string tenant;
    std::shared_ptr<const CachedPlan> design;
    dse::ExploreConfig cfg;
    bool cacheHit = false;
    int64_t charged = 0; //!< Points charged to the tenant budget.

    JobState state = JobState::Queued;
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
    dse::ExploreResult result; //!< Valid when Done/Cancelled.
    Diag error;                //!< Valid when Failed.
    bool finished = false;

    // Progress (guarded by Server::jobsMu_).
    size_t rounds = 0;
    size_t evaluated = 0;
    size_t frontSize = 0;

    /** Rendered event lines, appended as rounds complete; streaming
     *  sessions replay this log so no event is ever missed. */
    std::vector<std::string> events;
};

namespace {

/** Write all bytes + newline; MSG_NOSIGNAL so a gone client is an
 *  error return, not a SIGPIPE. */
bool
writeLine(int fd, const std::string& line)
{
    std::string out = line;
    out += '\n';
    size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

bool
writeAll(int fd, const std::string& bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

/** Pull one '\n'-terminated line out of buf/fd; false on EOF. A
 *  hostile peer can't balloon the buffer: lines are capped. */
bool
readLine(int fd, std::string& buf, std::string& line)
{
    constexpr size_t kMaxLine = 64u << 20;
    while (true) {
        size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            line = buf.substr(0, nl);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            buf.erase(0, nl + 1);
            return true;
        }
        if (buf.size() > kMaxLine)
            return false;
        char chunk[16384];
        ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return false;
        buf.append(chunk, size_t(n));
    }
}

Diag
makeDiag(DiagCode code, DiagSeverity sev, const std::string& stage,
         std::string message)
{
    Diag d;
    d.code = code;
    d.severity = sev;
    d.stage = stage;
    d.message = std::move(message);
    return d;
}

} // namespace

Server::Server(const est::AreaEstimator& area,
               const est::RuntimeEstimator& runtime, ServerConfig cfg)
    : area_(area), runtime_(runtime), cfg_(std::move(cfg)),
      cache_(cfg_.cacheCapacity)
{
    cfg_.executors = std::max(1, cfg_.executors);
    cfg_.jobThreads = std::max(1, cfg_.jobThreads);
}

Server::~Server()
{
    requestStop();
    wait();
}

Status
Server::start()
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::error(makeDiag(
            DiagCode::InternalError, DiagSeverity::Error, "serve",
            std::string("socket: ") + std::strerror(errno)));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(uint16_t(cfg_.port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(fd, 64) < 0) {
        Status st = Status::error(makeDiag(
            DiagCode::UserError, DiagSeverity::Error, "serve",
            std::string("bind/listen on port ") +
                std::to_string(cfg_.port) + ": " +
                std::strerror(errno)));
        ::close(fd);
        return st;
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = int(ntohs(addr.sin_port));

    listenFd_.store(fd);
    pool_ = std::make_unique<cpu::ThreadPool>(cfg_.executors);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return Status();
}

void
Server::requestStop()
{
    draining_.store(true);
    const int fd = listenFd_.exchange(-1);
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
    jobsCv_.notify_all();
}

void
Server::wait()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::unique_lock<std::mutex> lk(jobsMu_);
        jobsCv_.wait(lk, [&] { return activeJobs_ == 0; });
    }
    // Jobs are drained and their final events appended; unblock any
    // idle sessions still waiting for a next request.
    {
        std::lock_guard<std::mutex> lk(sessionsMu_);
        for (int fd : sessionFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> sessions;
    {
        std::lock_guard<std::mutex> lk(sessionsMu_);
        sessions.swap(sessions_);
    }
    for (auto& t : sessions)
        if (t.joinable())
            t.join();
    pool_.reset();
}

void
Server::acceptLoop()
{
    obs::setThreadName("serve-accept");
    while (true) {
        const int lfd = listenFd_.load();
        if (lfd < 0)
            break;
        int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (draining_.load())
                break;
            continue;
        }
        if (draining_.load()) {
            ::close(fd);
            break;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        std::lock_guard<std::mutex> lk(sessionsMu_);
        sessionFds_.insert(fd);
        sessions_.emplace_back([this, fd] { session(fd); });
    }
    const int lfd = listenFd_.exchange(-1);
    if (lfd >= 0)
        ::close(lfd);
}

void
Server::session(int fd)
{
    obs::setThreadName("serve-session");
    std::string buf;
    while (true) {
        std::string line;
        if (!readLine(fd, buf, line))
            break;
        if (line.rfind("GET ", 0) == 0) {
            serveHttp(fd, line);
            break;
        }
        if (line.empty())
            continue;

        Json req;
        Json resp;
        bool closeAfter = false;
        Status st = parseJson(line, req);
        if (!st.ok() || !req.isObject()) {
            std::lock_guard<std::mutex> lk(jobsMu_);
            ++counters_.requests;
            ++counters_.malformed;
            resp = st.ok() ? errorResponse(
                                 DiagCode::ParseError,
                                 "request must be a JSON object")
                           : errorResponse(st.diag());
        } else {
            resp = dispatch(fd, req, closeAfter);
        }
        if (!resp.isNull() && !writeLine(fd, resp.render()))
            break;
        if (closeAfter)
            break;
    }
    ::close(fd);
    std::lock_guard<std::mutex> lk(sessionsMu_);
    sessionFds_.erase(fd);
}

void
Server::serveHttp(int fd, const std::string& requestLine)
{
    const bool metrics =
        requestLine.rfind("GET /metrics", 0) == 0;
    std::string body = metrics ? metricsText() : "not found\n";
    std::ostringstream os;
    os << "HTTP/1.0 " << (metrics ? "200 OK" : "404 Not Found")
       << "\r\nContent-Type: text/plain; version=0.0.4; "
          "charset=utf-8\r\nContent-Length: "
       << body.size() << "\r\nConnection: close\r\n\r\n"
       << body;
    writeAll(fd, os.str());
}

Json
Server::dispatch(int fd, const Json& req, bool& closeAfter)
{
    {
        std::lock_guard<std::mutex> lk(jobsMu_);
        ++counters_.requests;
    }
    // Any request may carry the handshake field; skew is an explicit
    // structured error, never a silent misparse.
    if (const Json* proto = req.find("proto");
        proto && proto->asInt() != kProtocolVersion) {
        return errorResponse(
            DiagCode::VersionMismatch,
            "client speaks protocol " +
                std::to_string(proto->asInt()) +
                ", server speaks " +
                std::to_string(kProtocolVersion) + " (dhdld " +
                versionString() + ")");
    }
    const Json* op = req.find("op");
    if (!op || !op->isString()) {
        std::lock_guard<std::mutex> lk(jobsMu_);
        ++counters_.malformed;
        return errorResponse(DiagCode::ParseError,
                             "request has no \"op\"");
    }
    const std::string& name = op->asString();
    if (name == "hello")
        return handleHello(req);
    if (name == "submit")
        return handleSubmit(fd, req);
    if (name == "status")
        return handleStatus(req);
    if (name == "result")
        return handleResult(req);
    if (name == "cancel")
        return handleCancel(req);
    if (name == "trace")
        return handleTrace(req);
    if (name == "metrics")
        return handleMetrics();
    if (name == "shutdown") {
        requestStop();
        closeAfter = true;
        Json j = Json::object();
        j.set("ok", true);
        j.set("draining", true);
        return j;
    }
    {
        std::lock_guard<std::mutex> lk(jobsMu_);
        ++counters_.malformed;
    }
    return errorResponse(DiagCode::ParseError,
                         "unknown op \"" + name + "\"");
}

Json
Server::handleHello(const Json& req)
{
    (void)req; // proto skew already rejected in dispatch().
    Json j = Json::object();
    j.set("ok", true);
    j.set("proto", kProtocolVersion);
    j.set("version", versionString());
    return j;
}

std::shared_ptr<Server::Job>
Server::findJob(const Json& req, Json* err)
{
    const Json* id = req.find("job");
    if (!id || !id->isNumber()) {
        *err = errorResponse(DiagCode::ParseError,
                             "request has no \"job\" id");
        return nullptr;
    }
    std::lock_guard<std::mutex> lk(jobsMu_);
    auto it = jobs_.find(uint64_t(id->asInt()));
    if (it == jobs_.end()) {
        *err = errorResponse(DiagCode::UserError,
                             "unknown job " +
                                 std::to_string(id->asInt()));
        return nullptr;
    }
    return it->second;
}

Json
Server::handleSubmit(int fd, const Json& req)
{
    static const obs::Counter cAdmit("serve.jobs.admitted");
    static const obs::Counter cReject("serve.jobs.rejected");

    std::string tenant = "anonymous";
    if (const Json* t = req.find("tenant");
        t && t->isString() && !t->asString().empty())
        tenant = t->asString();

    // Explore configuration from the request, server-side caps
    // applied. Unknown strategy names and out-of-range sizes are
    // user errors, not crashes.
    dse::ExploreConfig ecfg;
    ecfg.maxPoints = 2000;
    ecfg.threads = cfg_.jobThreads;
    if (const Json* c = req.find("config"); c && c->isObject()) {
        if (const Json* v = c->find("points"))
            ecfg.maxPoints = int(v->asInt(ecfg.maxPoints));
        if (const Json* v = c->find("seed"))
            ecfg.seed = uint64_t(v->asInt(int64_t(ecfg.seed)));
        if (const Json* v = c->find("threads"))
            ecfg.threads =
                std::clamp(int(v->asInt(ecfg.threads)), 1, 16);
        if (const Json* v = c->find("batch"))
            ecfg.batchSize = std::max(0, int(v->asInt()));
        if (const Json* v = c->find("eval_budget"))
            ecfg.evalBudget = v->asInt();
        if (const Json* v = c->find("time_budget"))
            ecfg.timeBudgetSeconds = v->asDouble();
        if (const Json* v = c->find("initial_points"))
            ecfg.surrogate.initialPoints = int(v->asInt());
        if (const Json* v = c->find("max_rounds"))
            ecfg.surrogate.maxRounds = int(v->asInt());
        if (const Json* v = c->find("strategy")) {
            const std::string& s = v->asString();
            if (s == "random")
                ecfg.strategy = dse::StrategyKind::Random;
            else if (s == "surrogate")
                ecfg.strategy = dse::StrategyKind::Surrogate;
            else
                return errorResponse(DiagCode::UserError,
                                     "unknown strategy \"" + s +
                                         "\" (random|surrogate)");
        }
    }
    if (ecfg.maxPoints <= 0 || ecfg.maxPoints > cfg_.maxPointsPerJob)
        return errorResponse(
            DiagCode::AdmissionRejected,
            "points must be in [1, " +
                std::to_string(cfg_.maxPointsPerJob) + "], got " +
                std::to_string(ecfg.maxPoints),
            "admission");

    // Reserve capacity under the lock; roll back if the design turns
    // out to be unloadable. All three refusals are structured
    // backpressure: the client is told exactly which limit it hit.
    const int64_t charge = ecfg.maxPoints;
    {
        std::lock_guard<std::mutex> lk(jobsMu_);
        auto reject = [&](std::string why) {
            ++counters_.rejected;
            cReject.add(1);
            return errorResponse(DiagCode::AdmissionRejected,
                                 std::move(why), "admission");
        };
        if (draining_.load())
            return reject("server is draining; not accepting jobs");
        if (queued_ >= cfg_.maxQueue)
            return reject("job queue full (" +
                          std::to_string(queued_) +
                          " queued); retry later");
        Tenant& t = tenants_[tenant];
        if (t.active >= cfg_.tenantMaxJobs)
            return reject("tenant \"" + tenant + "\" already has " +
                          std::to_string(t.active) +
                          " active job(s) (limit " +
                          std::to_string(cfg_.tenantMaxJobs) + ")");
        if (cfg_.tenantEvalBudget > 0 &&
            t.spent + charge > cfg_.tenantEvalBudget)
            return reject(
                "tenant \"" + tenant + "\" evaluation budget " +
                "exhausted: " + std::to_string(t.spent) + " spent + " +
                std::to_string(charge) + " requested > " +
                std::to_string(cfg_.tenantEvalBudget));
        t.active += 1;
        t.spent += charge;
        queued_ += 1;
        activeJobs_ += 1;
    }
    auto rollback = [&] {
        std::lock_guard<std::mutex> lk(jobsMu_);
        Tenant& t = tenants_[tenant];
        t.active -= 1;
        t.spent -= charge;
        queued_ -= 1;
        activeJobs_ -= 1;
        jobsCv_.notify_all();
    };

    // Load the design: inline `.dhdl` text or a registry name. The
    // standard pass pipeline runs on every load (exactly like dhdlc),
    // so the cache keys canonical post-pass IR.
    std::optional<Graph> g;
    const double scale =
        req.find("scale") ? req.find("scale")->asDouble(1.0) : 1.0;
    if (const Json* ir = req.find("ir"); ir && ir->isString()) {
        ParseResult pr = parseIR(ir->asString());
        if (!pr.ok()) {
            rollback();
            return errorResponse(pr.status.diag());
        }
        g = std::move(*pr.graph);
    } else if (const Json* d = req.find("design");
               d && d->isString()) {
        try {
            Design design = apps::buildApp(d->asString(), scale);
            g = std::move(design.graph());
        } catch (const std::exception& e) {
            rollback();
            return errorResponse(DiagCode::UserError, e.what(),
                                 "load");
        }
    } else {
        rollback();
        return errorResponse(DiagCode::ParseError,
                             "submit needs \"design\" or \"ir\"");
    }
    {
        DiagSink psink;
        PassContext ctx(psink);
        PassManager pm = standardPasses();
        Status st = pm.run(*g, ctx);
        if (!st.ok()) {
            rollback();
            return errorResponse(st.diag());
        }
    }

    bool hit = false;
    auto design = cache_.acquire(std::move(*g), &hit);

    auto job = std::make_shared<Job>();
    job->tenant = tenant;
    job->design = design;
    job->cfg = ecfg;
    job->cacheHit = hit;
    job->charged = charge;
    {
        std::lock_guard<std::mutex> lk(jobsMu_);
        job->id = nextJobId_++;
        jobs_[job->id] = job;
        ++counters_.submitted;
    }
    cAdmit.add(1);
    pool_->submit([this, job] { runJob(job); });

    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("job", job->id);
    resp.set("cached", hit);
    resp.set("version", versionString());
    resp.set("proto", kProtocolVersion);

    const Json* stream = req.find("stream");
    if (stream && stream->asBool()) {
        if (!writeLine(fd, resp.render()))
            return Json();
        streamEvents(fd, job);
        return Json(); // Everything already written.
    }
    return resp;
}

void
Server::runJob(std::shared_ptr<Job> j)
{
    static const obs::Counter cDone("serve.jobs.done");
    static const obs::Counter cFailed("serve.jobs.failed");
    static const obs::Counter cCancelled("serve.jobs.cancelled");
    static const obs::Histogram hJobUs(
        "serve.job.us",
        {1000, 10000, 100000, 1000000, 10000000, 100000000});

    {
        std::lock_guard<std::mutex> lk(jobsMu_);
        queued_ -= 1;
        if (j->cancel->load()) {
            j->state = JobState::Cancelled;
        } else {
            j->state = JobState::Running;
        }
    }
    if (j->state == JobState::Running) {
        const auto t0 = std::chrono::steady_clock::now();
        dse::ExploreConfig cfg = j->cfg;
        cfg.plan = j->design->plan;
        cfg.cancel = j->cancel;
        cfg.onRound = [this, j](const dse::RoundStats& rs,
                                const dse::ParetoFront& front,
                                const std::vector<dse::DesignPoint>&
                                    pts) {
            Json ev = Json::object();
            ev.set("event", "round");
            ev.set("job", j->id);
            ev.set("round", rs.round);
            ev.set("evaluated", rs.evaluated);
            ev.set("front_size", front.size());
            ev.set("front",
                   frontToJson(j->design->graph, pts, front.indices()));
            std::lock_guard<std::mutex> lk(jobsMu_);
            j->rounds = size_t(rs.round) + 1;
            j->evaluated += rs.evaluated;
            j->frontSize = front.size();
            j->events.push_back(ev.render());
            jobsCv_.notify_all();
        };
        dse::Explorer ex(area_, runtime_);
        try {
            dse::ExploreResult res =
                ex.explore(j->design->graph, cfg);
            // The plan was compiled inside the cache, not the driver;
            // attribute its wall-clock to the first (miss) job so a
            // cold trace shows the plan-compile span and a cache hit's
            // doesn't.
            if (!j->cacheHit)
                res.stats.planSeconds = j->design->planSeconds;
            std::lock_guard<std::mutex> lk(jobsMu_);
            j->result = std::move(res);
            j->state = j->result.stats.cancelled
                           ? JobState::Cancelled
                           : JobState::Done;
        } catch (...) {
            Diag d = diagFromCurrentException("serve");
            std::lock_guard<std::mutex> lk(jobsMu_);
            j->error = std::move(d);
            j->state = JobState::Failed;
        }
        hJobUs.observe(uint64_t(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    }

    std::lock_guard<std::mutex> lk(jobsMu_);
    Json ev = Json::object();
    ev.set("event", "done");
    ev.set("job", j->id);
    ev.set("state", jobStateName(j->state));
    ev.set("cached", j->cacheHit);
    switch (j->state) {
    case JobState::Done:
        ++counters_.done;
        cDone.add(1);
        ev.set("result", resultToJson(j->design->graph, j->result));
        break;
    case JobState::Cancelled:
        ++counters_.cancelled;
        cCancelled.add(1);
        ev.set("result", resultToJson(j->design->graph, j->result));
        break;
    default:
        ++counters_.failed;
        cFailed.add(1);
        ev.set("error", diagToJson(j->error));
        break;
    }
    j->events.push_back(ev.render());
    j->finished = true;

    // Refund the unevaluated remainder of the admission charge so a
    // cancelled or budget-cut job doesn't burn its tenant's budget.
    Tenant& t = tenants_[j->tenant];
    t.active -= 1;
    const int64_t used = int64_t(j->result.stats.evaluated);
    t.spent -= std::max<int64_t>(0, j->charged - used);
    activeJobs_ -= 1;
    jobsCv_.notify_all();
}

bool
Server::streamEvents(int fd, const std::shared_ptr<Job>& j)
{
    size_t sent = 0;
    std::unique_lock<std::mutex> lk(jobsMu_);
    while (true) {
        jobsCv_.wait(lk, [&] {
            return j->events.size() > sent || j->finished;
        });
        while (sent < j->events.size()) {
            std::string line = j->events[sent++];
            lk.unlock();
            if (!writeLine(fd, line))
                return false; // Client gone; the job runs on.
            lk.lock();
        }
        if (j->finished && sent >= j->events.size())
            return true;
    }
}

Json
Server::handleStatus(const Json& req)
{
    Json err;
    auto j = findJob(req, &err);
    if (!j)
        return err;
    std::lock_guard<std::mutex> lk(jobsMu_);
    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("job", j->id);
    resp.set("state", jobStateName(j->state));
    resp.set("cached", j->cacheHit);
    resp.set("rounds", j->rounds);
    resp.set("evaluated", j->evaluated);
    resp.set("front_size", j->frontSize);
    return resp;
}

Json
Server::handleResult(const Json& req)
{
    Json err;
    auto j = findJob(req, &err);
    if (!j)
        return err;
    const Json* wait = req.find("wait");
    std::unique_lock<std::mutex> lk(jobsMu_);
    if (wait && wait->asBool())
        jobsCv_.wait(lk, [&] { return j->finished; });
    Json resp = Json::object();
    if (j->state == JobState::Failed) {
        resp.set("ok", false);
        resp.set("job", j->id);
        resp.set("state", jobStateName(j->state));
        resp.set("error", diagToJson(j->error));
        return resp;
    }
    resp.set("ok", true);
    resp.set("job", j->id);
    resp.set("state", jobStateName(j->state));
    resp.set("cached", j->cacheHit);
    if (j->finished)
        resp.set("result", resultToJson(j->design->graph, j->result));
    return resp;
}

Json
Server::handleCancel(const Json& req)
{
    Json err;
    auto j = findJob(req, &err);
    if (!j)
        return err;
    j->cancel->store(true);
    std::lock_guard<std::mutex> lk(jobsMu_);
    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("job", j->id);
    resp.set("state", jobStateName(j->state));
    resp.set("cancelling", !j->finished);
    return resp;
}

Json
Server::handleTrace(const Json& req)
{
    Json err;
    auto j = findJob(req, &err);
    if (!j)
        return err;
    std::lock_guard<std::mutex> lk(jobsMu_);
    if (!j->finished || j->state == JobState::Failed)
        return errorResponse(DiagCode::UserError,
                             "job " + std::to_string(j->id) +
                                 " has no trace (state " +
                                 jobStateName(j->state) + ")");
    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("job", j->id);
    resp.set("cached", j->cacheHit);
    resp.set("trace", jobTraceToJson(j->result));
    return resp;
}

Json
Server::handleMetrics()
{
    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("text", metricsText());
    return resp;
}

ServerCounters
Server::counters() const
{
    std::lock_guard<std::mutex> lk(jobsMu_);
    return counters_;
}

std::string
Server::metricsText() const
{
    std::ostringstream os;
    obs::snapshotMetrics().renderProm(os);
    // The server's own series render unconditionally: the scrape
    // endpoint is useful even when obs recording is off.
    const PlanCache::Stats cs = cache_.stats();
    ServerCounters c;
    int queued = 0;
    int active = 0;
    {
        std::lock_guard<std::mutex> lk(jobsMu_);
        c = counters_;
        queued = queued_;
        active = activeJobs_;
    }
    auto counter = [&](const char* name, uint64_t v) {
        os << "# TYPE " << name << " counter\n"
           << name << " " << v << "\n";
    };
    auto gauge = [&](const char* name, int64_t v) {
        os << "# TYPE " << name << " gauge\n"
           << name << " " << v << "\n";
    };
    counter("dhdl_serve_requests_total", c.requests);
    counter("dhdl_serve_requests_malformed_total", c.malformed);
    counter("dhdl_serve_jobs_submitted_total", c.submitted);
    counter("dhdl_serve_jobs_rejected_total", c.rejected);
    counter("dhdl_serve_jobs_done_total", c.done);
    counter("dhdl_serve_jobs_failed_total", c.failed);
    counter("dhdl_serve_jobs_cancelled_total", c.cancelled);
    counter("dhdl_serve_plan_cache_hits_total", cs.hits);
    counter("dhdl_serve_plan_cache_misses_total", cs.misses);
    counter("dhdl_serve_plan_cache_evictions_total", cs.evictions);
    gauge("dhdl_serve_plan_cache_entries", int64_t(cs.size));
    gauge("dhdl_serve_jobs_queued", queued);
    gauge("dhdl_serve_jobs_active", active);
    return os.str();
}

} // namespace dhdl::serve

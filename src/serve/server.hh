/**
 * @file
 * `dhdld`: the persistent DSE-as-a-service daemon. One Server owns
 *
 *  - a loopback TCP listener speaking the line-delimited JSON
 *    protocol (serve/protocol.hh), one session thread per connection
 *    (plus a `GET /metrics` HTTP fast path for scrapers);
 *  - the content-addressed DesignPlan cache (serve/plan_cache.hh),
 *    so a resubmitted design never recompiles its plan;
 *  - an admission-controlled job queue executed on the existing
 *    cpu::ThreadPool: a global queue-depth cap, a per-tenant
 *    concurrent-job cap, and a per-tenant evaluation-point budget.
 *    Every rejection is a structured AdmissionRejected Diag on the
 *    wire — backpressure is explicit, requests are never dropped;
 *  - streaming: jobs ride the search driver's round boundaries
 *    (ExploreConfig::onRound) and publish incremental Pareto-front
 *    events that submitting clients consume live.
 *
 * Shutdown is a graceful drain: requestStop() (also wired to
 * SIGTERM in tools/dhdld.cc) stops accepting connections and
 * submissions, lets running jobs finish and their final events
 * flush to streaming clients, then closes sessions. wait() returns
 * when everything is down.
 */

#ifndef DHDL_SERVE_SERVER_HH
#define DHDL_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cpu/thread_pool.hh"
#include "dse/explorer.hh"
#include "serve/plan_cache.hh"
#include "serve/protocol.hh"

namespace dhdl::serve {

struct ServerConfig {
    /** Bind address; loopback only by design (no auth on the wire). */
    std::string host = "127.0.0.1";
    int port = 0; //!< 0 = ephemeral; Server::port() has the real one.

    int executors = 2;  //!< Concurrent jobs (ThreadPool workers).
    int jobThreads = 1; //!< Default eval threads per job.
    size_t cacheCapacity = 32; //!< Plan cache entries (LRU).

    // Admission control.
    int maxQueue = 64;      //!< Queued-but-not-running jobs, global.
    int tenantMaxJobs = 8;  //!< Queued+running jobs per tenant.
    /** Lifetime evaluation-point budget per tenant; 0 = unlimited.
     *  Jobs are charged their requested points at admission and
     *  refunded the unevaluated remainder at completion. */
    int64_t tenantEvalBudget = 0;
    int maxPointsPerJob = 100000; //!< Per-request sample-count cap.
};

enum class JobState : uint8_t {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
};

/** Stable wire name ("queued", "running", ...). */
const char* jobStateName(JobState s);

/** Monotonic request/job totals, for /metrics and the bench. */
struct ServerCounters {
    uint64_t requests = 0;  //!< Protocol requests parsed.
    uint64_t malformed = 0; //!< Lines rejected as bad JSON/protocol.
    uint64_t submitted = 0; //!< Jobs admitted.
    uint64_t rejected = 0;  //!< Submissions refused by admission.
    uint64_t done = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
};

class Server
{
  public:
    Server(const est::AreaEstimator& area,
           const est::RuntimeEstimator& runtime,
           ServerConfig cfg = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Bind, listen, spawn the accept loop. */
    Status start();

    /** The bound port (after start()). */
    int port() const { return port_; }

    /**
     * Begin a graceful drain: stop accepting connections and
     * submissions. Async-signal-safe (atomics + shutdown(2) only);
     * callable from a SIGTERM handler. wait() completes the drain.
     */
    void requestStop();

    /** Block until drained: jobs finished, sessions closed. */
    void wait();

    bool draining() const { return draining_.load(); }

    PlanCache::Stats cacheStats() const { return cache_.stats(); }
    ServerCounters counters() const;

    /**
     * The `/metrics` payload: the obs registry in Prometheus
     * exposition format plus the server's own cache/admission/job
     * series (always present, obs enabled or not).
     */
    std::string metricsText() const;

  private:
    struct Job;
    struct Tenant {
        int active = 0;    //!< Queued + running jobs.
        int64_t spent = 0; //!< Evaluation points charged.
    };

    void acceptLoop();
    void session(int fd);
    /** Dispatch one request line; returns the response to write, or
     *  a null Json when the response was already streamed. */
    Json dispatch(int fd, const Json& req, bool& closeAfter);

    Json handleHello(const Json& req);
    Json handleSubmit(int fd, const Json& req);
    Json handleStatus(const Json& req);
    Json handleResult(const Json& req);
    Json handleCancel(const Json& req);
    Json handleTrace(const Json& req);
    Json handleMetrics();

    void runJob(std::shared_ptr<Job> j);
    std::shared_ptr<Job> findJob(const Json& req, Json* err);
    /** Stream job events to fd from `from`; returns false when the
     *  client went away. */
    bool streamEvents(int fd, const std::shared_ptr<Job>& j);
    void serveHttp(int fd, const std::string& requestLine);

    const est::AreaEstimator& area_;
    const est::RuntimeEstimator& runtime_;
    ServerConfig cfg_;
    PlanCache cache_;

    std::atomic<int> listenFd_{-1};
    int port_ = 0;
    std::atomic<bool> draining_{false};
    std::thread acceptThread_;

    std::mutex sessionsMu_;
    std::vector<std::thread> sessions_;
    std::set<int> sessionFds_;

    mutable std::mutex jobsMu_;
    std::condition_variable jobsCv_;
    std::unordered_map<uint64_t, std::shared_ptr<Job>> jobs_;
    std::unordered_map<std::string, Tenant> tenants_;
    uint64_t nextJobId_ = 1;
    int queued_ = 0;     //!< Admitted, not yet running.
    int activeJobs_ = 0; //!< Queued + running (drain waits on 0).
    ServerCounters counters_;

    std::unique_ptr<cpu::ThreadPool> pool_;
};

} // namespace dhdl::serve

#endif // DHDL_SERVE_SERVER_HH

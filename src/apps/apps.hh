/**
 * @file
 * The seven evaluation benchmarks of Table II, each expressed as a
 * parameterized DHDL design via the builder DSL. Every design
 * declares the paper's explored parameters — tile sizes,
 * parallelization factors at each loop level, and MetaPipe toggles —
 * so a single graph spans the whole design space (Section III-C).
 *
 * Configs default to the paper's dataset sizes; tests pass reduced
 * sizes for functional verification against the CPU kernels.
 */

#ifndef DHDL_APPS_APPS_HH
#define DHDL_APPS_APPS_HH

#include <functional>
#include <string>

#include "apps/datasets.hh"
#include "core/builder.hh"

namespace dhdl::apps {

struct DotproductConfig {
    int64_t n = PaperSizes::dotN;
};
Design buildDotproduct(const DotproductConfig& cfg = {});

struct OuterprodConfig {
    int64_t n = PaperSizes::outerN;
    int64_t m = PaperSizes::outerM;
};
Design buildOuterprod(const OuterprodConfig& cfg = {});

struct GemmConfig {
    int64_t m = PaperSizes::gemmM;
    int64_t n = PaperSizes::gemmN;
    int64_t k = PaperSizes::gemmK;
};
Design buildGemm(const GemmConfig& cfg = {});

struct Tpchq6Config {
    int64_t n = PaperSizes::tpchN;
};
Design buildTpchq6(const Tpchq6Config& cfg = {});

struct BlackscholesConfig {
    int64_t n = PaperSizes::bsN;
};
Design buildBlackscholes(const BlackscholesConfig& cfg = {});

struct GdaConfig {
    int64_t rows = PaperSizes::gdaR;
    int64_t cols = PaperSizes::gdaC;
};
Design buildGda(const GdaConfig& cfg = {});

struct KmeansConfig {
    int64_t n = PaperSizes::kmN;
    int64_t k = PaperSizes::kmK;
    int64_t dim = PaperSizes::kmD;
};
Design buildKmeans(const KmeansConfig& cfg = {});

/**
 * Extension app (not part of Table II): 2-D valid convolution of an
 * image with a small kernel, demonstrating stencil-style designs.
 * Output is (h-k+1) x (w-k+1).
 */
struct Conv2dConfig {
    int64_t h = 1024;
    int64_t w = 1024;
    int64_t k = 5;
};
Design buildConv2d(const Conv2dConfig& cfg = {});

/** One registry entry: a named benchmark with scalable datasets. */
struct AppEntry {
    std::string name;
    /** Build at `scale` (1.0 = Table II sizes; smaller shrinks). */
    std::function<Design(double)> build;
};

/** All seven Table II benchmarks, in paper order. */
const std::vector<AppEntry>& allApps();

/** Round v*scale down to a multiple of `quantum` (at least one). */
int64_t scaledSize(int64_t v, double scale, int64_t quantum);

/**
 * Build a named app at `scale`: any allApps() entry plus the
 * "conv2d" extension app. Throws FatalError for unknown names.
 */
Design buildApp(const std::string& name, double scale = 1.0);

/**
 * Uniform graph front door for the whole toolchain: a name ending in
 * ".dhdl" is parsed from disk (core/parser), anything else is built
 * by buildApp(). Parse failures throw FatalError carrying the parse
 * diagnostic, so callers treat files and names identically.
 */
Graph loadGraph(const std::string& nameOrPath, double scale = 1.0);

} // namespace dhdl::apps

#endif // DHDL_APPS_APPS_HH

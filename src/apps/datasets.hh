/**
 * @file
 * Evaluation dataset sizes (Table II) and deterministic synthetic
 * input generation shared by the DHDL benchmark apps, the CPU
 * reference kernels, and the benches.
 *
 *   dotproduct    187,200,000 element vectors
 *   outerprod     38,400 x 38,400
 *   gemm          1536 x 1536 matrices
 *   tpchq6        N = 18,720,000 records
 *   blackscholes  N = 9,995,328 options
 *   gda           R = 360,000, D = 96
 *   kmeans        960,000 points, k = 8, dim = 384
 */

#ifndef DHDL_APPS_DATASETS_HH
#define DHDL_APPS_DATASETS_HH

#include <cstdint>
#include <vector>

namespace dhdl::apps {

/** Table II dataset sizes (paper scale). */
struct PaperSizes {
    static constexpr int64_t dotN = 187'200'000;
    static constexpr int64_t outerN = 38'400;
    static constexpr int64_t outerM = 38'400;
    static constexpr int64_t gemmM = 1536;
    static constexpr int64_t gemmN = 1536;
    static constexpr int64_t gemmK = 1536;
    static constexpr int64_t tpchN = 18'720'000;
    static constexpr int64_t bsN = 9'995'328;
    static constexpr int64_t gdaR = 360'000;
    static constexpr int64_t gdaC = 96;
    static constexpr int64_t kmN = 960'000;
    static constexpr int64_t kmK = 8;
    static constexpr int64_t kmD = 384;
};

/** TPC-H Q6 filter constants shared by app, kernel and tests. */
struct Tpchq6Filter {
    static constexpr float dateLo = 19940101.0f;
    static constexpr float dateHi = 19950101.0f;
    static constexpr float discLo = 0.05f;
    static constexpr float discHi = 0.07f;
    static constexpr float qtyMax = 24.0f;
};

/** Deterministic pseudo-random float vector in [lo, hi). */
std::vector<float> randomVector(int64_t n, uint64_t seed,
                                float lo = 0.0f, float hi = 1.0f);

/** Deterministic 0/1 label vector with the given 1-probability. */
std::vector<float> randomLabels(int64_t n, uint64_t seed,
                                double p_one = 0.5);

/** Promote a float vector to the double type the simulator uses. */
std::vector<double> toDouble(const std::vector<float>& v);

/** Demote a double vector to float (for CPU-kernel comparison). */
std::vector<float> toFloat(const std::vector<double>& v);

} // namespace dhdl::apps

#endif // DHDL_APPS_DATASETS_HH

#include "apps/apps.hh"

namespace dhdl::apps {

/**
 * Tiled matrix multiplication (compute + locality bound). Three tile
 * sizes (M, N, K blocking), a MetaPipe reduce over the K dimension
 * accumulating output blocks, and a read-modify-write inner pipe with
 * a first-iteration mux resetting the partial sums.
 */
Design
buildGemm(const GemmConfig& cfg)
{
    Design d("gemm");
    int64_t m = cfg.m, n = cfg.n, k = cfg.k;

    ParamId tm = d.tileParam("tileM", m, 0, 768);
    ParamId tn = d.tileParam("tileN", n, 0, 768);
    ParamId tk = d.tileParam("tileK", k, 0, 768);
    ParamId row_par = d.parParam("rowPar", 96, 1, 16);
    ParamId inner_par = d.parParam("innerPar", 96, 2, 96);
    ParamId m1 = d.toggleParam("M1toggle");
    ParamId m2 = d.toggleParam("M2toggle");
    ParamId m3 = d.toggleParam("M3toggle");

    d.constrain(CExpr::p(tk) % CExpr::p(inner_par) == 0);
    d.constrain(CExpr::p(tm) % CExpr::p(row_par) == 0);

    Mem a = d.offchip("a", DType::f32(), {Sym::c(m), Sym::c(k)});
    Mem b = d.offchip("b", DType::f32(), {Sym::c(k), Sym::c(n)});
    Mem c = d.offchip("c", DType::f32(), {Sym::c(m), Sym::c(n)});

    d.accel([&](Scope& s) {
        s.metaPipe(
            "M1", {ctr(m, Sym::p(tm))}, Sym::c(1), Sym::p(m1),
            [&](Scope& s1, std::vector<Val> iv) {
                Val i0 = iv[0];
                s1.metaPipe(
                    "M2", {ctr(n, Sym::p(tn))}, Sym::c(1), Sym::p(m2),
                    [&](Scope& s2, std::vector<Val> jv) {
                        Val j0 = jv[0];
                        Mem c_t = s2.bram("cT", DType::f32(),
                                          {Sym::p(tm), Sym::p(tn)});
                        s2.metaPipeReduce(
                            "M3", {ctr(k, Sym::p(tk))}, Sym::c(1),
                            Sym::p(m3), c_t, Op::Add,
                            [&](Scope& s3, std::vector<Val> kv) -> Mem {
                                Val k0 = kv[0];
                                Mem a_t = s3.bram(
                                    "aT", DType::f32(),
                                    {Sym::p(tm), Sym::p(tk)});
                                Mem b_t = s3.bram(
                                    "bT", DType::f32(),
                                    {Sym::p(tk), Sym::p(tn)});
                                s3.parallel("loads", [&](Scope& p) {
                                    p.tileLoad(a, a_t, {i0, k0},
                                               {Sym::p(tm), Sym::p(tk)},
                                               Sym::p(inner_par));
                                    p.tileLoad(b, b_t, {k0, j0},
                                               {Sym::p(tk), Sym::p(tn)},
                                               Sym::p(inner_par));
                                });
                                Mem c_blk = s3.bram(
                                    "cBlk", DType::f32(),
                                    {Sym::p(tm), Sym::p(tn)});
                                s3.metaPipe(
                                    "M4", {ctr(Sym::p(tm))},
                                    Sym::p(row_par), Sym::c(1),
                                    [&](Scope& s4,
                                        std::vector<Val> ii) {
                                        s4.pipe(
                                            "P1",
                                            {ctr(Sym::p(tn)),
                                             ctr(Sym::p(tk))},
                                            Sym::p(inner_par),
                                            [&](Scope& p,
                                                std::vector<Val> jk) {
                                                Val jj = jk[0];
                                                Val kk = jk[1];
                                                Val first =
                                                    p.binop(
                                                        Op::Eq, kk,
                                                        p.constant(
                                                            0.0,
                                                            DType::
                                                                i32()));
                                                Val prev = p.load(
                                                    c_blk,
                                                    {ii[0], jj});
                                                Val prod =
                                                    p.load(a_t,
                                                           {ii[0],
                                                            kk}) *
                                                    p.load(b_t,
                                                           {kk, jj});
                                                Val zero = p.constant(
                                                    0.0,
                                                    DType::f32());
                                                Val base = p.mux(
                                                    first, zero,
                                                    prev);
                                                p.store(
                                                    c_blk,
                                                    {ii[0], jj},
                                                    base + prod);
                                            });
                                    });
                                return c_blk;
                            });
                        s2.tileStore(c, c_t, {i0, j0},
                                     {Sym::p(tm), Sym::p(tn)},
                                     Sym::p(inner_par));
                    });
            });
    });
    return d;
}

} // namespace dhdl::apps

#include "apps/apps.hh"

namespace dhdl::apps {

namespace {

/** Cumulative normal distribution as a DHDL dataflow subgraph;
 *  mirrors the CPU kernel's polynomial approximation exactly. */
Val
cndfVal(Scope& s, Val x)
{
    Val zero = s.constant(0.0, DType::f32());
    Val neg = s.binop(Op::Lt, x, zero);
    Val ax = vabs(x);
    Val k = 1.0 / (1.0 + 0.2316419 * ax);
    Val k2 = k * k;
    Val k3 = k2 * k;
    Val k4 = k3 * k;
    Val k5 = k4 * k;
    Val poly = 0.319381530 * k - 0.356563782 * k2 +
               1.781477937 * k3 - 1.821255978 * k4 +
               1.330274429 * k5;
    Val pdf = 0.39894228040143270286 * vexp(-0.5 * ax * ax);
    Val cnd = 1.0 - pdf * poly;
    return s.mux(neg, 1.0 - cnd, cnd);
}

} // namespace

/**
 * Black-Scholes option pricing (compute bound): deeply pipelined
 * floating-point dataflow over six streamed input arrays, the
 * benchmark where the FPGA's instruction-level parallelism advantage
 * is largest (16.7x in the paper).
 */
Design
buildBlackscholes(const BlackscholesConfig& cfg)
{
    Design d("blackscholes");
    int64_t n = cfg.n;

    ParamId ts = d.tileParam("tileSize", n, 0, 16384);
    ParamId inner_par = d.parParam("innerPar", 96, 2, 96);
    ParamId m1 = d.toggleParam("M1toggle");

    d.constrain(CExpr::p(ts) % CExpr::p(inner_par) == 0);

    Mem otype = d.offchip("otype", DType::f32(), {Sym::c(n)});
    Mem sptprice = d.offchip("sptprice", DType::f32(), {Sym::c(n)});
    Mem strike = d.offchip("strike", DType::f32(), {Sym::c(n)});
    Mem rate = d.offchip("rate", DType::f32(), {Sym::c(n)});
    Mem vol = d.offchip("volatility", DType::f32(), {Sym::c(n)});
    Mem otime = d.offchip("otime", DType::f32(), {Sym::c(n)});
    Mem prices = d.offchip("prices", DType::f32(), {Sym::c(n)});

    d.accel([&](Scope& s) {
        s.metaPipe(
            "M1", {ctr(n, Sym::p(ts))}, Sym::c(1), Sym::p(m1),
            [&](Scope& m, std::vector<Val> iv) {
                Val r = iv[0];
                auto mk = [&](const char* nm) {
                    return m.bram(nm, DType::f32(), {Sym::p(ts)});
                };
                Mem o_t = mk("otypeT");
                Mem s_t = mk("sptT");
                Mem k_t = mk("strikeT");
                Mem r_t = mk("rateT");
                Mem v_t = mk("volT");
                Mem t_t = mk("otimeT");
                Mem p_t = mk("priceT");
                m.parallel("loads", [&](Scope& p) {
                    p.tileLoad(otype, o_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                    p.tileLoad(sptprice, s_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                    p.tileLoad(strike, k_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                    p.tileLoad(rate, r_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                    p.tileLoad(vol, v_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                    p.tileLoad(otime, t_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                });
                m.pipe(
                    "P1", {ctr(Sym::p(ts))}, Sym::p(inner_par),
                    [&](Scope& p, std::vector<Val> ii) {
                        Val i = ii[0];
                        Val ot = p.load(o_t, {i});
                        Val sp = p.load(s_t, {i});
                        Val kk = p.load(k_t, {i});
                        Val rr = p.load(r_t, {i});
                        Val vv = p.load(v_t, {i});
                        Val tt = p.load(t_t, {i});

                        Val sqrt_t = vsqrt(tt);
                        Val log_term = vlog(sp / kk);
                        Val pow_term = 0.5 * vv * vv;
                        Val den = vv * sqrt_t;
                        Val d1 = (log_term + (rr + pow_term) * tt) /
                                 den;
                        Val d2 = d1 - den;
                        Val n_d1 = cndfVal(p, d1);
                        Val n_d2 = cndfVal(p, d2);
                        Val fut = kk * vexp(-rr * tt);
                        Val call = sp * n_d1 - fut * n_d2;
                        Val put = fut * (1.0 - n_d2) -
                                  sp * (1.0 - n_d1);
                        Val zero = p.constant(0.0, DType::f32());
                        Val is_call = p.binop(Op::Neq, ot, zero);
                        p.store(p_t, {i}, p.mux(is_call, call, put));
                    });
                m.tileStore(prices, p_t, {r}, {Sym::p(ts)},
                            Sym::p(inner_par));
            });
    });
    return d;
}

} // namespace dhdl::apps

#include "apps/apps.hh"

namespace dhdl::apps {

/**
 * 2-D valid convolution (extension app, not part of Table II). Each
 * MetaPipe iteration loads a halo'd row tile (tileRows + k - 1 input
 * rows) and computes tileRows output rows. The inner pipe iterates
 * kernel-major (ki, kj, i, j) so the output accumulation address
 * varies on the innermost axes and the RMW recurrence keeps II = 1.
 */
Design
buildConv2d(const Conv2dConfig& cfg)
{
    Design d("conv2d");
    int64_t h = cfg.h, w = cfg.w, k = cfg.k;
    require(k >= 1 && h >= k && w >= k, "conv2d: kernel too large");
    int64_t h_out = h - k + 1;
    int64_t w_out = w - k + 1;

    ParamId th = d.tileParam("tileRows", h_out, 0, 256);
    ParamId par = d.parParam("innerPar", 96, 2, 96);
    ParamId m1 = d.toggleParam("M1toggle");

    // The halo'd input tile must fit on chip.
    d.constrain((CExpr::p(th) + (k - 1)) * w * 32 <= int64_t(4) << 20);

    Mem img = d.offchip("image", DType::f32(), {Sym::c(h), Sym::c(w)});
    Mem ker =
        d.offchip("kernel", DType::f32(), {Sym::c(k), Sym::c(k)});
    Mem out = d.offchip("out", DType::f32(),
                        {Sym::c(h_out), Sym::c(w_out)});

    d.accel([&](Scope& s) {
        Mem ker_t =
            s.bram("kerT", DType::f32(), {Sym::c(k), Sym::c(k)});
        s.tileLoad(ker, ker_t, {}, {Sym::c(k), Sym::c(k)});

        s.metaPipe(
            "M1", {ctr(h_out, Sym::p(th))}, Sym::c(1), Sym::p(m1),
            [&](Scope& m, std::vector<Val> rv) {
                Val r = rv[0];
                // Input rows r .. r+th+k-2 (body + halo).
                Mem in_t = m.bram("inT", DType::f32(),
                                  {Sym::p(th, k - 1), Sym::c(w)});
                Mem out_t = m.bram("outT", DType::f32(),
                                   {Sym::p(th), Sym::c(w_out)});
                m.tileLoad(img, in_t, {r},
                           {Sym::p(th, k - 1), Sym::c(w)},
                           Sym::p(par));

                m.pipe(
                    "PConv",
                    {ctr(k), ctr(k), ctr(Sym::p(th)), ctr(w_out)},
                    Sym::p(par),
                    [&](Scope& p, std::vector<Val> v) {
                        Val ki = v[0];
                        Val kj = v[1];
                        Val i = v[2];
                        Val j = v[3];
                        Val zero = p.constant(0.0, DType::i32());
                        Val first =
                            p.binop(Op::And,
                                    p.binop(Op::Eq, ki, zero),
                                    p.binop(Op::Eq, kj, zero));
                        Val prev = p.load(out_t, {i, j});
                        Val fzero = p.constant(0.0, DType::f32());
                        Val base = p.mux(first, fzero, prev);
                        Val row = p.binop(Op::Add, i, ki);
                        Val col = p.binop(Op::Add, j, kj);
                        Val pix = p.load(in_t, {row, col});
                        Val kv = p.load(ker_t, {ki, kj});
                        p.store(out_t, {i, j}, base + pix * kv);
                    });
                m.tileStore(out, out_t, {r},
                            {Sym::p(th), Sym::c(w_out)},
                            Sym::p(par));
            });
    });
    return d;
}

} // namespace dhdl::apps

#include "apps/apps.hh"

#include <algorithm>

namespace dhdl::apps {

/**
 * One k-means clustering iteration (ALM bound): for each input point
 * the design computes K x D distance terms, reduces to the nearest
 * centroid with a min tree, and accumulates the per-cluster sums and
 * counts with predicated (mux) updates — matching the paper's
 * observation that compute scales with K x D per point.
 */
Design
buildKmeans(const KmeansConfig& cfg)
{
    Design d("kmeans");
    int64_t n = cfg.n, k = cfg.k, dim = cfg.dim;

    // The point tile is ts x dim elements; cap ts so it always fits
    // the local-memory limit.
    int64_t max_tile = (int64_t(4) << 20) / (32 * dim);
    ParamId ts = d.tileParam("tileSize", n, 0,
                             std::min<int64_t>(2048, max_tile));
    // The distance/accumulate pipes iterate the k x dim cross product,
    // so their parallelization may divide k*dim (the paper notes the
    // design wants all K x D operations in parallel but is ALM bound).
    ParamId dist_par = d.parParam("distPar", k * dim, 2, 192);
    ParamId acc_par = d.parParam("accPar", k * dim, 2, 192);
    // Points processed concurrently by the per-point MetaPipe.
    ParamId point_par = d.parParam("pointPar", 4, 1, 4);
    ParamId m1t = d.toggleParam("M1toggle");
    ParamId m2t = d.toggleParam("M2toggle");

    // On-chip point tile must fit the local memory cap, and the
    // point-level parallelization must divide the tile.
    d.constrain(CExpr::p(ts) * dim * 32 <= int64_t(4) << 20);
    d.constrain(CExpr::p(ts) % CExpr::p(point_par) == 0);

    Mem points =
        d.offchip("points", DType::f32(), {Sym::c(n), Sym::c(dim)});
    Mem cents =
        d.offchip("centroids", DType::f32(), {Sym::c(k), Sym::c(dim)});
    Mem out = d.offchip("newCentroids", DType::f32(),
                        {Sym::c(k), Sym::c(dim)});

    d.accel([&](Scope& s) {
        Mem c_t =
            s.bram("cT", DType::f32(), {Sym::c(k), Sym::c(dim)});
        s.tileLoad(cents, c_t, {}, {Sym::c(k), Sym::c(dim)},
                   Sym::p(dist_par));

        Mem acc_t =
            s.bram("accT", DType::f32(), {Sym::c(k), Sym::c(dim)});
        Mem cnt_t = s.bram("cntT", DType::f32(), {Sym::c(k)});
        s.pipe("PInitAcc", {ctr(k), ctr(dim)}, Sym::p(acc_par),
               [&](Scope& p, std::vector<Val> cj) {
                   p.store(acc_t, {cj[0], cj[1]},
                           p.constant(0.0, DType::f32()));
               });
        s.pipe("PInitCnt", {ctr(k)}, Sym::c(1),
               [&](Scope& p, std::vector<Val> cc) {
                   p.store(cnt_t, {cc[0]},
                           p.constant(0.0, DType::f32()));
               });

        s.metaPipe(
            "M1", {ctr(n, Sym::p(ts))}, Sym::c(1), Sym::p(m1t),
            [&](Scope& m1, std::vector<Val> rv) {
                Val r = rv[0];
                Mem pt_t = m1.bram("ptT", DType::f32(),
                                   {Sym::p(ts), Sym::c(dim)});
                m1.tileLoad(points, pt_t, {r},
                            {Sym::p(ts), Sym::c(dim)},
                            Sym::p(dist_par));

                m1.metaPipe(
                    "M2", {ctr(Sym::p(ts))}, Sym::p(point_par),
                    Sym::p(m2t),
                    [&](Scope& m2, std::vector<Val> iv) {
                        Val i = iv[0];
                        Mem dist_t = m2.bram("distT", DType::f32(),
                                             {Sym::c(k)});
                        // Dimension-major order: the innermost (c)
                        // axis varies the accumulator address, so the
                        // RMW recurrence distance is k and II stays 1
                        // (dimension-major interleaved accumulation).
                        m2.pipe(
                            "PDist", {ctr(dim), ctr(k)},
                            Sym::p(dist_par),
                            [&](Scope& p, std::vector<Val> jc) {
                                Val j = jc[0];
                                Val c = jc[1];
                                Val diff = p.load(pt_t, {i, j}) -
                                           p.load(c_t, {c, j});
                                Val sq = diff * diff;
                                Val first = p.binop(
                                    Op::Eq, j,
                                    p.constant(0.0, DType::i32()));
                                Val prev = p.load(dist_t, {c});
                                Val zero =
                                    p.constant(0.0, DType::f32());
                                Val base = p.mux(first, zero, prev);
                                p.store(dist_t, {c}, base + sq);
                            });

                        Mem best = m2.reg("best", DType::f32());
                        m2.pipeReduce(
                            "PMin", {ctr(k)}, Sym::c(1), best,
                            Op::Min,
                            [&](Scope& p, std::vector<Val> cc) {
                                return p.load(dist_t, {cc[0]});
                            });

                        m2.pipe(
                            "PAcc", {ctr(k), ctr(dim)},
                            Sym::p(acc_par),
                            [&](Scope& p, std::vector<Val> cj) {
                                Val c = cj[0];
                                Val j = cj[1];
                                Val b = p.load(
                                    best,
                                    {p.constant(0.0, DType::i32())});
                                Val match = p.binop(
                                    Op::Eq, p.load(dist_t, {c}), b);
                                Val zero =
                                    p.constant(0.0, DType::f32());
                                Val add = p.mux(
                                    match, p.load(pt_t, {i, j}),
                                    zero);
                                p.store(acc_t, {c, j},
                                        p.load(acc_t, {c, j}) + add);
                            });
                        m2.pipe(
                            "PCnt", {ctr(k)}, Sym::c(1),
                            [&](Scope& p, std::vector<Val> cc) {
                                Val c = cc[0];
                                Val b = p.load(
                                    best,
                                    {p.constant(0.0, DType::i32())});
                                Val match = p.binop(
                                    Op::Eq, p.load(dist_t, {c}), b);
                                Val one =
                                    p.constant(1.0, DType::f32());
                                Val zero =
                                    p.constant(0.0, DType::f32());
                                p.store(cnt_t, {c},
                                        p.load(cnt_t, {c}) +
                                            p.mux(match, one, zero));
                            });
                    });
            });

        Mem out_t =
            s.bram("outT", DType::f32(), {Sym::c(k), Sym::c(dim)});
        s.pipe("PFinal", {ctr(k), ctr(dim)}, Sym::p(acc_par),
               [&](Scope& p, std::vector<Val> cj) {
                   Val c = cj[0];
                   Val j = cj[1];
                   Val cnt = p.load(cnt_t, {c});
                   Val zero = p.constant(0.0, DType::f32());
                   Val empty = p.binop(Op::Eq, cnt, zero);
                   Val mean = p.load(acc_t, {c, j}) / cnt;
                   Val keep = p.load(c_t, {c, j});
                   p.store(out_t, {c, j}, p.mux(empty, keep, mean));
               });
        s.tileStore(out, out_t, {}, {Sym::c(k), Sym::c(dim)},
                    Sym::p(acc_par));
    });
    return d;
}

} // namespace dhdl::apps

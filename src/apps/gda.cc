#include "apps/apps.hh"

namespace dhdl::apps {

/**
 * Gaussian discriminant analysis (compute bound, nested parallelism):
 * the running example of the paper, mirroring the DHDL source of
 * Figure 4 — two nested reduce MetaPipes with double-buffered tiles,
 * a subtraction pipe (P1) selecting the class mean with a mux, and an
 * outer-product accumulation pipe (P2).
 */
Design
buildGda(const GdaConfig& cfg)
{
    Design d("gda");
    int64_t rows = cfg.rows;
    int64_t cols = cfg.cols;

    // muSize is Figure 3's mu-vector tile; the full covariance needs
    // muSize = D, so it is a named constant rather than an explored
    // axis (exploring it would shrink the computed output block).
    ParamId mu_size = d.fixedParam("muSize", cols);
    ParamId in_tile = d.tileParam("inTileSize", rows, 0, 4096);
    ParamId p1_par = d.parParam("P1Par", 96, 2, 96);
    ParamId p2_par = d.parParam("P2Par", 96, 2, 96);
    ParamId m1_par = d.parParam("M1Par", 96, 1, 4);
    ParamId m2_par = d.parParam("M2Par", 96, 1, 8);
    ParamId m1t = d.toggleParam("M1toggle");
    ParamId m2t = d.toggleParam("M2toggle");

    d.constrain(CExpr::p(mu_size) % CExpr::p(p1_par) == 0);
    d.constrain(CExpr::p(mu_size) % CExpr::p(p2_par) == 0);
    d.constrain(CExpr::p(in_tile) % CExpr::p(m2_par) == 0);
    d.constrain((CExpr::c(rows) / CExpr::p(in_tile)) % CExpr::p(m1_par) ==
                0);

    Mem x = d.offchip("x", DType::f32(), {Sym::c(rows), Sym::c(cols)});
    Mem y = d.offchip("y", DType::bit(), {Sym::c(rows)});
    Mem mu0 = d.offchip("mu0", DType::f32(), {Sym::c(cols)});
    Mem mu1 = d.offchip("mu1", DType::f32(), {Sym::c(cols)});
    Mem sigma =
        d.offchip("sigma", DType::f32(), {Sym::c(cols), Sym::c(cols)});

    d.accel([&](Scope& s) {
        Mem mu0_t = s.bram("mu0T", DType::f32(), {Sym::p(mu_size)});
        Mem mu1_t = s.bram("mu1T", DType::f32(), {Sym::p(mu_size)});
        s.parallel("muLoads", [&](Scope& p) {
            p.tileLoad(mu0, mu0_t, {}, {Sym::p(mu_size)});
            p.tileLoad(mu1, mu1_t, {}, {Sym::p(mu_size)});
        });

        Mem sig_t = s.bram("sigT", DType::f32(),
                           {Sym::p(mu_size), Sym::p(mu_size)});
        s.metaPipeReduce(
            "M1", {ctr(rows, Sym::p(in_tile))}, Sym::p(m1_par),
            Sym::p(m1t), sig_t, Op::Add,
            [&](Scope& m1, std::vector<Val> rv) -> Mem {
                Val r = rv[0];
                Mem y_t = m1.bram("yT", DType::bit(),
                                  {Sym::p(in_tile)});
                Mem x_t = m1.bram("xT", DType::f32(),
                                  {Sym::p(in_tile), Sym::p(mu_size)});
                m1.parallel("tileLoads", [&](Scope& p) {
                    p.tileLoad(x, x_t, {r},
                               {Sym::p(in_tile), Sym::p(mu_size)},
                               Sym::p(p1_par));
                    p.tileLoad(y, y_t, {r}, {Sym::p(in_tile)});
                });

                Mem sigma_blk = m1.bram(
                    "sigmaBlk", DType::f32(),
                    {Sym::p(mu_size), Sym::p(mu_size)});
                m1.metaPipeReduce(
                    "M2", {ctr(Sym::p(in_tile))}, Sym::p(m2_par),
                    Sym::p(m2t), sigma_blk, Op::Add,
                    [&](Scope& m2, std::vector<Val> rrv) -> Mem {
                        Val rr = rrv[0];
                        Mem sub_t = m2.bram("subT", DType::f32(),
                                            {Sym::p(mu_size)});
                        Mem sigma_tile = m2.bram(
                            "sigmaTile", DType::f32(),
                            {Sym::p(mu_size), Sym::p(mu_size)});
                        m2.pipe(
                            "P1", {ctr(Sym::p(mu_size))},
                            Sym::p(p1_par),
                            [&](Scope& p, std::vector<Val> cc) {
                                Val c = cc[0];
                                Val label = p.load(y_t, {rr});
                                Val mu_sel =
                                    p.mux(label, p.load(mu1_t, {c}),
                                          p.load(mu0_t, {c}));
                                Val xv = p.load(x_t, {rr, c});
                                p.store(sub_t, {c}, xv - mu_sel);
                            });
                        m2.pipe(
                            "P2",
                            {ctr(Sym::p(mu_size)),
                             ctr(Sym::p(mu_size))},
                            Sym::p(p2_par),
                            [&](Scope& p, std::vector<Val> ij) {
                                Val prod = p.load(sub_t, {ij[0]}) *
                                           p.load(sub_t, {ij[1]});
                                p.store(sigma_tile, {ij[0], ij[1]},
                                        prod);
                            });
                        return sigma_tile;
                    });
                return sigma_blk;
            });
        s.tileStore(sigma, sig_t, {},
                    {Sym::p(mu_size), Sym::p(mu_size)}, Sym::p(p2_par));
    });
    return d;
}

} // namespace dhdl::apps

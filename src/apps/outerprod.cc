#include "apps/apps.hh"

namespace dhdl::apps {

/**
 * Vector outer product (BRAM + memory bound): the output tile grows
 * quadratically with the input tile sizes, so on-chip capacity
 * dominates the design space (Section V-C1).
 */
Design
buildOuterprod(const OuterprodConfig& cfg)
{
    Design d("outerprod");
    int64_t n = cfg.n;
    int64_t m = cfg.m;

    // Default tiles kept small: the output tile is ts1 x ts2 and must
    // fit the local-memory cap (the quadratic-BRAM effect the paper
    // highlights for this benchmark).
    ParamId ts1 = d.tileParam("tileSizeA", n,
                              largestDivisorLE(n, 256, 8), 16384);
    ParamId ts2 = d.tileParam("tileSizeB", m,
                              largestDivisorLE(m, 256, 8), 16384);
    ParamId par = d.parParam("innerPar", 96, 2, 96);
    ParamId m1 = d.toggleParam("M1toggle");
    ParamId m2 = d.toggleParam("M2toggle");

    d.constrain(CExpr::p(ts2) % CExpr::p(par) == 0);

    Mem a = d.offchip("a", DType::f32(), {Sym::c(n)});
    Mem bv = d.offchip("b", DType::f32(), {Sym::c(m)});
    Mem out = d.offchip("out", DType::f32(), {Sym::c(n), Sym::c(m)});

    d.accel([&](Scope& s) {
        s.metaPipe(
            "M1", {ctr(n, Sym::p(ts1))}, Sym::c(1), Sym::p(m1),
            [&](Scope& mo, std::vector<Val> ri) {
                Val r = ri[0];
                Mem a_t = mo.bram("aT", DType::f32(), {Sym::p(ts1)});
                mo.tileLoad(a, a_t, {r}, {Sym::p(ts1)}, Sym::p(par));
                mo.metaPipe(
                    "M2", {ctr(m, Sym::p(ts2))}, Sym::c(1), Sym::p(m2),
                    [&](Scope& mi, std::vector<Val> ci) {
                        Val c = ci[0];
                        Mem b_t = mi.bram("bT", DType::f32(),
                                          {Sym::p(ts2)});
                        mi.tileLoad(bv, b_t, {c}, {Sym::p(ts2)},
                                    Sym::p(par));
                        Mem out_t = mi.bram(
                            "outT", DType::f32(),
                            {Sym::p(ts1), Sym::p(ts2)});
                        mi.pipe(
                            "P1",
                            {ctr(Sym::p(ts1)), ctr(Sym::p(ts2))},
                            Sym::p(par),
                            [&](Scope& p, std::vector<Val> ij) {
                                Val prod = p.load(a_t, {ij[0]}) *
                                           p.load(b_t, {ij[1]});
                                p.store(out_t, {ij[0], ij[1]}, prod);
                            });
                        mi.tileStore(out, out_t, {r, c},
                                     {Sym::p(ts1), Sym::p(ts2)},
                                     Sym::p(par));
                    });
            });
    });
    return d;
}

} // namespace dhdl::apps

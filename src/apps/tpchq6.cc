#include "apps/apps.hh"

namespace dhdl::apps {

/**
 * TPC-H Query 6 (memory bound, data-dependent filter): streams four
 * record columns and reduces price * discount over rows passing the
 * date / discount / quantity predicates. The branch becomes a mux in
 * the dataflow pipeline (Section V-D).
 */
Design
buildTpchq6(const Tpchq6Config& cfg)
{
    Design d("tpchq6");
    int64_t n = cfg.n;

    ParamId ts = d.tileParam("tileSize", n, 0, 32768);
    ParamId outer_par = d.parParam("outerPar", 96, 1, 8);
    ParamId inner_par = d.parParam("innerPar", 96, 4, 96);
    ParamId m1 = d.toggleParam("M1toggle");

    d.constrain(CExpr::p(ts) % CExpr::p(inner_par) == 0);
    d.constrain((CExpr::c(n) / CExpr::p(ts)) % CExpr::p(outer_par) == 0);

    Mem dates = d.offchip("dates", DType::f32(), {Sym::c(n)});
    Mem qtys = d.offchip("quantities", DType::f32(), {Sym::c(n)});
    Mem discs = d.offchip("discounts", DType::f32(), {Sym::c(n)});
    Mem prices = d.offchip("prices", DType::f32(), {Sym::c(n)});
    Mem out = d.reg("revenue", DType::f32());

    d.accel([&](Scope& s) {
        s.metaPipeReduce(
            "M1", {ctr(n, Sym::p(ts))}, Sym::p(outer_par), Sym::p(m1),
            out, Op::Add,
            [&](Scope& m, std::vector<Val> iv) -> Mem {
                Val r = iv[0];
                auto tile = [&](const char* nm, Mem src) {
                    Mem t = m.bram(nm, DType::f32(), {Sym::p(ts)});
                    return std::make_pair(t, src);
                };
                auto [date_t, date_src] = tile("dateT", dates);
                auto [qty_t, qty_src] = tile("qtyT", qtys);
                auto [disc_t, disc_src] = tile("discT", discs);
                auto [price_t, price_src] = tile("priceT", prices);
                m.parallel("loads", [&](Scope& p) {
                    p.tileLoad(date_src, date_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                    p.tileLoad(qty_src, qty_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                    p.tileLoad(disc_src, disc_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                    p.tileLoad(price_src, price_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                });
                Mem acc = m.reg("acc", DType::f32());
                m.pipeReduce(
                    "P1", {ctr(Sym::p(ts))}, Sym::p(inner_par), acc,
                    Op::Add,
                    [&](Scope& p, std::vector<Val> ii) -> Val {
                        Val i = ii[0];
                        Val dt = p.load(date_t, {i});
                        Val q = p.load(qty_t, {i});
                        Val ds = p.load(disc_t, {i});
                        Val pr = p.load(price_t, {i});
                        Val pass = (dt >= double(Tpchq6Filter::dateLo)) &&
                                   (dt < double(Tpchq6Filter::dateHi)) &&
                                   (ds >= double(Tpchq6Filter::discLo)) &&
                                   (ds <= double(Tpchq6Filter::discHi)) &&
                                   (q < double(Tpchq6Filter::qtyMax));
                        Val zero = p.constant(0.0, DType::f32());
                        return p.mux(pass, pr * ds, zero);
                    });
                return acc;
            });
    });
    return d;
}

} // namespace dhdl::apps

#include "apps/apps.hh"

namespace dhdl::apps {

/**
 * Vector dot product (memory bound). Outer MetaPipe streams tiles of
 * both vectors, an inner Pipe multiplies element pairs, and reduce
 * trees fold the products; the tile results are folded into a single
 * output register.
 */
Design
buildDotproduct(const DotproductConfig& cfg)
{
    Design d("dotproduct");
    int64_t n = cfg.n;

    ParamId ts = d.tileParam("tileSize", n, 0, 131072);
    ParamId outer_par = d.parParam("outerPar", 96, 1, 8);
    ParamId inner_par = d.parParam("innerPar", 96, 4, 96);
    ParamId m1 = d.toggleParam("M1toggle");

    // Pruning: inner parallelization must divide the tile size, and
    // outer parallelization the number of tiles.
    d.constrain(CExpr::p(ts) % CExpr::p(inner_par) == 0);
    d.constrain((CExpr::c(n) / CExpr::p(ts)) % CExpr::p(outer_par) == 0);

    Mem a = d.offchip("a", DType::f32(), {Sym::c(n)});
    Mem b = d.offchip("b", DType::f32(), {Sym::c(n)});
    Mem out = d.reg("out", DType::f32());

    d.accel([&](Scope& s) {
        s.metaPipeReduce(
            "M1", {ctr(n, Sym::p(ts))}, Sym::p(outer_par), Sym::p(m1),
            out, Op::Add,
            [&](Scope& m, std::vector<Val> iv) -> Mem {
                Val r = iv[0];
                Mem a_t = m.bram("aT", DType::f32(), {Sym::p(ts)});
                Mem b_t = m.bram("bT", DType::f32(), {Sym::p(ts)});
                m.parallel("loads", [&](Scope& p) {
                    p.tileLoad(a, a_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                    p.tileLoad(b, b_t, {r}, {Sym::p(ts)},
                               Sym::p(inner_par));
                });
                Mem acc = m.reg("acc", DType::f32());
                m.pipeReduce(
                    "P1", {ctr(Sym::p(ts))}, Sym::p(inner_par), acc,
                    Op::Add,
                    [&](Scope& p, std::vector<Val> ii) -> Val {
                        Val av = p.load(a_t, {ii[0]});
                        Val bv = p.load(b_t, {ii[0]});
                        return av * bv;
                    });
                return acc;
            });
    });
    return d;
}

} // namespace dhdl::apps

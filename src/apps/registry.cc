#include "apps/apps.hh"

#include <algorithm>

namespace dhdl::apps {

int64_t
scaledSize(int64_t v, double scale, int64_t quantum)
{
    int64_t scaled = int64_t(double(v) * scale);
    scaled = (scaled / quantum) * quantum;
    return std::max(quantum, scaled);
}

const std::vector<AppEntry>&
allApps()
{
    static const std::vector<AppEntry> apps = {
        {"dotproduct",
         [](double s) {
             DotproductConfig c;
             c.n = scaledSize(c.n, s, 9600);
             return buildDotproduct(c);
         }},
        {"outerprod",
         [](double s) {
             OuterprodConfig c;
             c.n = scaledSize(c.n, s, 960);
             c.m = scaledSize(c.m, s, 960);
             return buildOuterprod(c);
         }},
        {"gemm",
         [](double s) {
             GemmConfig c;
             c.m = scaledSize(c.m, s, 96);
             c.n = scaledSize(c.n, s, 96);
             c.k = scaledSize(c.k, s, 96);
             return buildGemm(c);
         }},
        {"tpchq6",
         [](double s) {
             Tpchq6Config c;
             c.n = scaledSize(c.n, s, 9600);
             return buildTpchq6(c);
         }},
        {"blackscholes",
         [](double s) {
             BlackscholesConfig c;
             c.n = scaledSize(c.n, s, 9216);
             return buildBlackscholes(c);
         }},
        {"gda",
         [](double s) {
             GdaConfig c;
             c.rows = scaledSize(c.rows, s, 960);
             return buildGda(c);
         }},
        {"kmeans",
         [](double s) {
             KmeansConfig c;
             c.n = scaledSize(c.n, s, 960);
             return buildKmeans(c);
         }},
    };
    return apps;
}

} // namespace dhdl::apps

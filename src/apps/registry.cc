#include "apps/apps.hh"

#include <algorithm>

#include "core/parser.hh"

namespace dhdl::apps {

int64_t
scaledSize(int64_t v, double scale, int64_t quantum)
{
    int64_t scaled = int64_t(double(v) * scale);
    scaled = (scaled / quantum) * quantum;
    return std::max(quantum, scaled);
}

const std::vector<AppEntry>&
allApps()
{
    static const std::vector<AppEntry> apps = {
        {"dotproduct",
         [](double s) {
             DotproductConfig c;
             c.n = scaledSize(c.n, s, 9600);
             return buildDotproduct(c);
         }},
        {"outerprod",
         [](double s) {
             OuterprodConfig c;
             c.n = scaledSize(c.n, s, 960);
             c.m = scaledSize(c.m, s, 960);
             return buildOuterprod(c);
         }},
        {"gemm",
         [](double s) {
             GemmConfig c;
             c.m = scaledSize(c.m, s, 96);
             c.n = scaledSize(c.n, s, 96);
             c.k = scaledSize(c.k, s, 96);
             return buildGemm(c);
         }},
        {"tpchq6",
         [](double s) {
             Tpchq6Config c;
             c.n = scaledSize(c.n, s, 9600);
             return buildTpchq6(c);
         }},
        {"blackscholes",
         [](double s) {
             BlackscholesConfig c;
             c.n = scaledSize(c.n, s, 9216);
             return buildBlackscholes(c);
         }},
        {"gda",
         [](double s) {
             GdaConfig c;
             c.rows = scaledSize(c.rows, s, 960);
             return buildGda(c);
         }},
        {"kmeans",
         [](double s) {
             KmeansConfig c;
             c.n = scaledSize(c.n, s, 960);
             return buildKmeans(c);
         }},
    };
    return apps;
}

Design
buildApp(const std::string& name, double scale)
{
    for (const auto& app : allApps()) {
        if (app.name == name)
            return app.build(scale);
    }
    // conv2d is an extension app, outside the Table II registry.
    if (name == "conv2d") {
        Conv2dConfig c;
        c.h = scaledSize(c.h, scale, 64);
        c.w = scaledSize(c.w, scale, 64);
        return buildConv2d(c);
    }
    fatal("unknown benchmark '" + name + "'; try `dhdlc list`");
}

Graph
loadGraph(const std::string& nameOrPath, double scale)
{
    const std::string suffix = ".dhdl";
    if (nameOrPath.size() > suffix.size() &&
        nameOrPath.compare(nameOrPath.size() - suffix.size(),
                           suffix.size(), suffix) == 0) {
        ParseResult res = parseIRFile(nameOrPath);
        if (!res.ok())
            fatal(res.status.diag().str(), DiagCode::ParseError);
        return std::move(*res.graph);
    }
    Design d = buildApp(nameOrPath, scale);
    return std::move(d.graph());
}

} // namespace dhdl::apps

#include "apps/datasets.hh"

#include <cstddef>

#include "ml/rng.hh"

namespace dhdl::apps {

std::vector<float>
randomVector(int64_t n, uint64_t seed, float lo, float hi)
{
    ml::Rng rng(ml::hashMix(seed));
    std::vector<float> v(static_cast<size_t>(n));
    for (auto& x : v)
        x = float(rng.uniform(lo, hi));
    return v;
}

std::vector<float>
randomLabels(int64_t n, uint64_t seed, double p_one)
{
    ml::Rng rng(ml::hashMix(seed ^ 0xBADF00Dull));
    std::vector<float> v(static_cast<size_t>(n));
    for (auto& x : v)
        x = rng.uniform() < p_one ? 1.0f : 0.0f;
    return v;
}

std::vector<double>
toDouble(const std::vector<float>& v)
{
    return {v.begin(), v.end()};
}

std::vector<float>
toFloat(const std::vector<double>& v)
{
    std::vector<float> out(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = float(v[i]);
    return out;
}

} // namespace dhdl::apps

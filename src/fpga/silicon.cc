#include "fpga/silicon.hh"

#include <algorithm>
#include <cmath>

namespace dhdl::fpga {

namespace {

/** ceil(a / b) for positive operands. */
int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

double
log2p1(double x)
{
    return std::log2(1.0 + std::max(0.0, x));
}

/** Cost of one floating-point operator instance (per lane). */
Resources
floatOpCost(Op op, int bits)
{
    // Scaled relative to single precision; normalize/round logic grows
    // slightly super-linearly with mantissa width.
    double w = double(bits) / 32.0;
    double w2 = w * (1.0 + 0.15 * (w - 1.0));
    switch (op) {
      case Op::Add:
      case Op::Sub:
        return {380 * w2, 170 * w2, 610 * w2, 0, 0};
      case Op::Mul:
        return {90 * w2, 40 * w2, 185 * w2, bits <= 32 ? 1.0 : 4.0, 0};
      case Op::Div:
        return {980 * w2, 430 * w2, 1750 * w2, 0, 0};
      case Op::Sqrt:
        return {830 * w2, 390 * w2, 1480 * w2, 0, 0};
      case Op::Exp:
        return {620 * w2, 290 * w2, 1060 * w2, 2, 2};
      case Op::Log:
        return {700 * w2, 320 * w2, 1190 * w2, 2, 2};
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Eq:
      case Op::Neq:
        return {58 * w, 22 * w, 64 * w, 0, 0};
      case Op::Min:
      case Op::Max:
        return {74 * w, 28 * w, 70 * w, 0, 0};
      case Op::Mux:
        return {0.55 * bits, 0.1 * bits, 0.3 * bits, 0, 0};
      case Op::Abs:
      case Op::Neg:
        return {6 * w, 2 * w, 34 * w, 0, 0};
      case Op::ToFloat:
      case Op::ToFixed:
        return {170 * w2, 80 * w2, 300 * w2, 0, 0};
      default:
        return {20 * w, 10 * w, 20 * w, 0, 0};
    }
}

/** Cost of one fixed-point / bit operator instance (per lane). */
Resources
fixedOpCost(Op op, int bits)
{
    double b = double(bits);
    switch (op) {
      case Op::Add:
      case Op::Sub:
        return {0.52 * b, 0.06 * b, 1.05 * b, 0, 0};
      case Op::Mul: {
        double dsp = bits <= 18 ? 1.0 : (bits <= 27 ? 2.0 : 3.0);
        return {18, 8, 0.9 * b, dsp, 0};
      }
      case Op::Div:
      case Op::Mod:
        return {16.5 * b, 4.0 * b, 14.0 * b, 0, 0};
      case Op::Sqrt:
        return {9.0 * b, 2.5 * b, 8.0 * b, 0, 0};
      case Op::Exp:
      case Op::Log:
        return {11.0 * b, 3.0 * b, 9.0 * b, 1, 1};
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Eq:
      case Op::Neq:
        return {0.40 * b, 0.05 * b, 0.15 * b, 0, 0};
      case Op::Min:
      case Op::Max:
        return {0.95 * b, 0.12 * b, 1.0 * b, 0, 0};
      case Op::And:
      case Op::Or:
      case Op::Not:
        return {0.5 * b, 0.05 * b, 0.1 * b, 0, 0};
      case Op::Mux:
        return {0.55 * b, 0.08 * b, 0.25 * b, 0, 0};
      case Op::Abs:
      case Op::Neg:
        return {0.5 * b, 0.06 * b, 0.6 * b, 0, 0};
      case Op::ToFloat:
      case Op::ToFixed:
        return {150, 70, 260, 0, 0};
      default:
        return {0.5 * b, 0.1 * b, 0.3 * b, 0, 0};
    }
}

} // namespace

Resources
siliconCost(const Device& dev, const TemplateInst& t)
{
    Resources r;
    double lanes = double(t.lanes);
    double vec = double(std::max<int64_t>(1, t.vec));

    switch (t.tkind) {
      case TemplateKind::PrimOp:
        r = t.isFloat ? floatOpCost(t.op, t.bits)
                      : fixedOpCost(t.op, t.bits);
        r = r * lanes;
        break;

      case TemplateKind::LoadStore: {
        // Per access port: address decode plus log2(banks) switching
        // stages of the bank interconnect (a Benes-style network is
        // lanes x width x log(banks) overall) — the non-linear term
        // that linear template models approximate.
        double banks = std::max(1, t.banks);
        double xbar = 0.30 * t.bits * log2p1(banks - 1);
        r.lutsPack = (14 + 0.12 * t.bits) + xbar * 0.75;
        r.lutsNoPack = 4 + xbar * 0.25;
        r.regs = 18 + 0.4 * t.bits;
        r = r * lanes;
        break;
      }

      case TemplateKind::BramInst: {
        int banks = std::max(1, t.banks);
        int64_t depth = ceilDiv(std::max<int64_t>(1, t.elems), banks);
        double copies = (t.doubleBuf ? 2.0 : 1.0) * lanes;
        if (depth * t.bits <= dev.mlabBits) {
            // Small banks go to MLAB LUT-RAM (no M20K consumed).
            r.lutsPack += 0.55 * depth * t.bits * copies * banks /
                          16.0;
            r.lutsNoPack += 2.0 * copies * banks;
        } else {
            int64_t per_bank =
                std::max(ceilDiv(depth * t.bits, dev.m20kBits),
                         ceilDiv(t.bits, dev.m20kMaxWidth));
            r.brams = double(per_bank * banks) * copies;
        }
        // Bank address decode + write enables; double buffers add a
        // swap mux on the full width.
        r.lutsPack += (6.0 + 1.8 * banks + 0.02 * t.bits * banks) *
                      lanes;
        r.lutsNoPack += (2.0 + 0.5 * banks) * lanes;
        r.regs = (12.0 + 1.2 * banks) * lanes;
        if (t.doubleBuf) {
            r.lutsPack += 0.5 * t.bits * banks * lanes;
            r.regs += (8.0 + 0.2 * t.bits) * lanes;
        }
        break;
      }

      case TemplateKind::RegInst: {
        double copies = (t.doubleBuf ? 2.0 : 1.0) * lanes;
        r.regs = double(t.bits) * copies + 4.0 * lanes;
        r.lutsPack = 0.3 * t.bits * lanes;
        if (t.doubleBuf)
            r.lutsPack += 0.5 * t.bits * lanes;
        break;
      }

      case TemplateKind::QueueInst: {
        // Sorting network over the queue depth.
        double depth = double(std::max<int64_t>(2, t.depth));
        r.lutsPack = (1.35 * depth * t.bits) * lanes;
        r.lutsNoPack = (0.3 * depth * t.bits) * lanes;
        r.regs = (1.1 * depth * t.bits) * lanes;
        r.brams = 0;
        break;
      }

      case TemplateKind::CounterInst: {
        double dims = std::max(1, t.ctrDims);
        r.lutsPack = (18.0 * dims + 6.0 * vec) * lanes;
        r.lutsNoPack = (4.0 * dims) * lanes;
        r.regs = (34.0 * dims + 8.0 * vec) * lanes;
        break;
      }

      case TemplateKind::PipeCtrl:
        r.lutsPack = (36.0 + 1.5 * vec) * lanes;
        r.lutsNoPack = 9.0 * lanes;
        r.regs = (52.0 + 2.0 * vec) * lanes;
        break;

      case TemplateKind::SeqCtrl:
        r.lutsPack = (48.0 + 11.0 * t.stages) * lanes;
        r.lutsNoPack = (12.0 + 2.0 * t.stages) * lanes;
        r.regs = (66.0 + 9.0 * t.stages) * lanes;
        break;

      case TemplateKind::ParCtrl:
        r.lutsPack = (40.0 + 16.0 * t.stages) * lanes;
        r.lutsNoPack = (10.0 + 3.0 * t.stages) * lanes;
        r.regs = (55.0 + 12.0 * t.stages) * lanes;
        break;

      case TemplateKind::MetaPipeCtrl:
        // Asynchronous handshaking across stages: token FIFOs, stage
        // enables, done-signal synchronizers.
        r.lutsPack = (95.0 + 34.0 * t.stages + 2.0 * vec) * lanes;
        r.lutsNoPack = (25.0 + 7.0 * t.stages) * lanes;
        r.regs = (130.0 + 42.0 * t.stages) * lanes;
        break;

      case TemplateKind::TileTransfer: {
        // Command generator FSM + burst aligner + data/command FIFOs.
        double width = double(t.bits) * vec;
        double fifo_bits = 512.0 * width;
        r.lutsPack = (230.0 + 0.45 * width +
                      8.0 * log2p1(double(t.tileElems))) * lanes;
        r.lutsNoPack = (70.0 + 0.12 * width) * lanes;
        r.regs = (310.0 + 0.9 * width) * lanes;
        r.brams = std::max<double>(
                      1.0, std::ceil(fifo_bits / double(dev.m20kBits))) *
                  lanes;
        break;
      }

      case TemplateKind::ReduceTree: {
        // vec-1 combiners in a balanced tree plus the staging regs.
        Resources comb = t.isFloat ? floatOpCost(t.op, t.bits)
                                   : fixedOpCost(t.op, t.bits);
        double n = std::max(0.0, vec - 1.0);
        r = comb * (n * lanes);
        r.regs += 1.2 * t.bits * log2p1(vec) * lanes;
        break;
      }

      case TemplateKind::DelayLine: {
        if (t.depth > 0) {
            // Long delays become BRAM FIFOs.
            r.brams = std::ceil(t.delayBits / double(dev.m20kBits)) *
                      lanes;
            r.lutsPack = 9.0 * lanes;
            r.regs = 14.0 * lanes;
        } else {
            r.regs = t.delayBits * lanes;
            r.lutsPack = 0.02 * t.delayBits * lanes;
        }
        break;
      }
    }
    return r;
}

double
siliconPowerMw(const Device& dev, const TemplateInst& t)
{
    Resources r = siliconCost(dev, t);
    // Per-resource dynamic power at 150 MHz, 28 nm, typical activity:
    // LUT+FF pair ~6 uW, register ~2 uW, M20K ~1.9 mW, DSP ~2.4 mW.
    double mw = r.totalLuts() * 0.006 + r.regs * 0.002 +
                r.brams * 1.9 + r.dsps * 2.4;
    // Memory command generators keep burst logic toggling at the
    // memory clock, costing extra.
    if (t.tkind == TemplateKind::TileTransfer)
        mw *= 1.35;
    return mw;
}

} // namespace dhdl::fpga

/**
 * @file
 * The synthetic vendor toolchain: a stand-in for Altera's logic
 * synthesis + place-and-route flow, which this reproduction cannot
 * run. It produces post-P&R resource reports for whole designs by
 * applying the low-level effects the paper identifies (Section IV-A):
 *
 *   - LUT packing: ~80% of packable functions pack in pairs,
 *     reducing used LUTs by ~40%;
 *   - routing LUTs: ~10% of total LUT usage;
 *   - register duplication: ~5% of registers;
 *   - BRAM duplication: 10-100% depending on design complexity;
 *   - unavailable LUTs: ~4% from mapping constraints.
 *
 * The effects are noisy but deterministic per design (seeded by a
 * structural hash), so reports are reproducible and distinct designs
 * receive independent perturbations — giving the estimator a
 * realistic target with irreducible error, like real P&R.
 */

#ifndef DHDL_FPGA_TOOLCHAIN_HH
#define DHDL_FPGA_TOOLCHAIN_HH

#include <cstdint>
#include <vector>

#include "analysis/resources.hh"
#include "fpga/device.hh"

namespace dhdl::fpga {

/** A post-place-and-route resource report. */
struct PnrReport {
    double alms = 0;       //!< Adaptive logic modules used.
    double luts = 0;       //!< Total LUTs incl. routing/unavailable.
    double routeLuts = 0;  //!< Route-through LUTs.
    double unavailLuts = 0;//!< LUTs lost to mapping constraints.
    double regs = 0;       //!< Registers incl. duplicates.
    double dupRegs = 0;    //!< Duplicated registers.
    double dsps = 0;       //!< DSP blocks.
    double brams = 0;      //!< M20K blocks incl. duplicates.
    double dupBrams = 0;   //!< Duplicated M20Ks.
    double powerMw = 0;    //!< Total power (static + dynamic), mW.

    /** True when the design exceeds some device capacity. */
    bool fits(const Device& d) const;
};

/** The synthetic synthesis + P&R flow. */
class VendorToolchain
{
  public:
    explicit VendorToolchain(Device dev = Device::maia(),
                             uint64_t seed = 0xD4D1ull);

    const Device& device() const { return dev_; }

    /** Synthesize a whole design instance. */
    PnrReport synthesize(const Inst& inst) const;

    /** Synthesize a pre-expanded template list (used for training). */
    PnrReport synthesizeList(const std::vector<TemplateInst>& ts) const;

    /**
     * Characterization synthesis of a single isolated template: the
     * pre-P&R resource report a vendor tool gives for a tiny design,
     * with measurement-level noise. This is the only ground-truth
     * window the estimator's template models may learn from.
     */
    Resources isolatedSynthesis(const TemplateInst& t) const;

    /** Vectorless power analysis of one isolated template, mW. */
    double isolatedPowerMw(const TemplateInst& t) const;

    /** Structural hash of a template list (noise key). */
    static uint64_t designKey(const std::vector<TemplateInst>& ts);

  private:
    Device dev_;
    uint64_t seed_;
};

} // namespace dhdl::fpga

#endif // DHDL_FPGA_TOOLCHAIN_HH

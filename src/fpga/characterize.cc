#include "fpga/characterize.hh"

#include <algorithm>
#include <cmath>

#include "ml/rng.hh"

namespace dhdl::fpga {

using ml::Rng;

namespace {

/** All primitive ops characterized for datapath use. */
const Op kAllOps[] = {
    Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Mod, Op::Min, Op::Max,
    Op::Lt, Op::Le, Op::Gt, Op::Ge, Op::Eq, Op::Neq, Op::And, Op::Or,
    Op::Not, Op::Mux, Op::Abs, Op::Neg, Op::Sqrt, Op::Exp, Op::Log,
    Op::ToFloat, Op::ToFixed,
};

void
addSample(std::vector<TemplateSample>& out, const VendorToolchain& tc,
          const TemplateInst& t)
{
    out.push_back({t, tc.isolatedSynthesis(t),
                   tc.isolatedPowerMw(t)});
}

} // namespace

std::vector<TemplateSample>
characterizeTemplates(const VendorToolchain& tc)
{
    std::vector<TemplateSample> out;

    // Primitive operators: sweep lanes for float and fixed variants.
    for (Op op : kAllOps) {
        for (bool is_float : {false, true}) {
            for (int64_t lanes : {1, 2, 4, 8, 16, 48}) {
                for (int bits : {16, 32}) {
                    if (is_float && bits != 32)
                        continue;
                    TemplateInst t;
                    t.tkind = TemplateKind::PrimOp;
                    t.op = op;
                    t.isFloat = is_float;
                    t.bits = is_float ? 32 : bits;
                    t.lanes = lanes;
                    addSample(out, tc, t);
                }
            }
        }
    }

    // Single-bit logic variants (predicates).
    for (Op op : {Op::And, Op::Or, Op::Not, Op::Mux}) {
        for (int64_t lanes : {1, 4, 16}) {
            TemplateInst t;
            t.tkind = TemplateKind::PrimOp;
            t.op = op;
            t.bits = 1;
            t.lanes = lanes;
            addSample(out, tc, t);
        }
    }

    // On-chip access ports across banking factors.
    for (int banks : {1, 2, 4, 8, 16, 32}) {
        for (int64_t lanes : {1, 2, 8}) {
            for (int bits : {1, 32}) {
                TemplateInst t;
                t.tkind = TemplateKind::LoadStore;
                t.bits = bits;
                t.banks = banks;
                t.lanes = lanes;
                addSample(out, tc, t);
            }
        }
    }

    // Scratchpads across geometry, banking and double buffering.
    for (int64_t elems : {64, 512, 4096, 16384, 131072}) {
        for (int banks : {1, 2, 4, 16}) {
            for (bool db : {false, true}) {
                for (int bits : {1, 32}) {
                    for (int64_t lanes : {1, 3}) {
                        TemplateInst t;
                        t.tkind = TemplateKind::BramInst;
                        t.bits = bits;
                        t.elems = elems;
                        t.banks = banks;
                        t.doubleBuf = db;
                        t.lanes = lanes;
                        addSample(out, tc, t);
                    }
                }
            }
        }
    }

    // Registers.
    for (int bits : {1, 16, 32, 64}) {
        for (bool db : {false, true}) {
            for (int64_t lanes : {1, 8, 48}) {
                TemplateInst t;
                t.tkind = TemplateKind::RegInst;
                t.bits = bits;
                t.doubleBuf = db;
                t.lanes = lanes;
                addSample(out, tc, t);
            }
        }
    }

    // Priority queues.
    for (int64_t depth : {4, 8, 16, 32, 64, 128}) {
        for (int64_t lanes : {1, 2, 4}) {
            TemplateInst t;
            t.tkind = TemplateKind::QueueInst;
            t.bits = 32;
            t.depth = depth;
            t.elems = depth;
            t.lanes = lanes;
            addSample(out, tc, t);
        }
    }

    // Counter chains.
    for (int dims : {1, 2, 3, 4}) {
        for (int64_t vec : {1, 2, 8, 16}) {
            for (int64_t lanes : {1, 4}) {
                TemplateInst t;
                t.tkind = TemplateKind::CounterInst;
                t.ctrDims = dims;
                t.vec = vec;
                t.lanes = lanes;
                addSample(out, tc, t);
            }
        }
    }

    // Controller FSMs.
    for (TemplateKind k : {TemplateKind::PipeCtrl, TemplateKind::SeqCtrl,
                           TemplateKind::ParCtrl,
                           TemplateKind::MetaPipeCtrl}) {
        for (int stages : {1, 2, 3, 4, 6, 10}) {
            for (int64_t vec : {1, 4, 16}) {
                for (int64_t lanes : {1, 4}) {
                    TemplateInst t;
                    t.tkind = k;
                    t.stages = stages;
                    t.vec = vec;
                    t.lanes = lanes;
                    addSample(out, tc, t);
                }
            }
        }
    }

    // Tile transfer engines.
    for (int64_t vec : {1, 2, 4, 8, 16}) {
        for (int64_t tile_elems : {256, 4096, 65536, 1048576}) {
            for (int bits : {1, 32}) {
                for (int64_t lanes : {1, 2}) {
                    TemplateInst t;
                    t.tkind = TemplateKind::TileTransfer;
                    t.bits = bits;
                    t.vec = vec;
                    t.tileElems = tile_elems;
                    t.lanes = lanes;
                    addSample(out, tc, t);
                }
            }
        }
    }

    // Reduction trees.
    for (Op op : {Op::Add, Op::Min, Op::Max, Op::And}) {
        for (bool is_float : {false, true}) {
            for (int64_t vec : {2, 4, 8, 16, 48}) {
                for (int64_t lanes : {1, 4}) {
                    TemplateInst t;
                    t.tkind = TemplateKind::ReduceTree;
                    t.op = op;
                    t.isFloat = is_float;
                    t.bits = 32;
                    t.vec = vec;
                    t.lanes = lanes;
                    addSample(out, tc, t);
                }
            }
        }
    }

    // Delay lines: register and BRAM-FIFO variants.
    for (double bits : {64.0, 256.0, 1024.0, 8192.0}) {
        for (int64_t depth : {0, 17}) {
            for (int64_t lanes : {1, 4}) {
                TemplateInst t;
                t.tkind = TemplateKind::DelayLine;
                t.delayBits = bits;
                t.depth = depth;
                t.lanes = lanes;
                addSample(out, tc, t);
            }
        }
    }

    return out;
}

std::vector<TemplateInst>
randomTemplateList(const Device& dev, uint64_t seed)
{
    Rng rng(ml::hashMix(seed));
    std::vector<TemplateInst> ts;

    // Overall scale: from a few percent to near-full device.
    double scale = std::pow(10.0, rng.uniform(0.0, 2.2)); // 1 .. ~160

    int n_pipes = std::max<int64_t>(1, int64_t(scale * 0.4));
    int n_outer = 1 + int(rng.uniformInt(0, 3));
    bool is_float = rng.uniform() < 0.7;

    // Outer controllers.
    for (int i = 0; i < n_outer; ++i) {
        TemplateInst c;
        c.tkind = rng.uniform() < 0.5 ? TemplateKind::MetaPipeCtrl
                                      : TemplateKind::SeqCtrl;
        c.stages = int(rng.uniformInt(2, 6));
        c.lanes = 1;
        c.vec = 1;
        ts.push_back(c);

        TemplateInst ctr;
        ctr.tkind = TemplateKind::CounterInst;
        ctr.ctrDims = int(rng.uniformInt(1, 3));
        ctr.vec = 1;
        ts.push_back(ctr);
    }

    // Datapath pipes with operators and accesses.
    const Op datapath_ops[] = {Op::Add, Op::Sub, Op::Mul, Op::Div,
                               Op::Mux, Op::Lt, Op::Min, Op::Sqrt,
                               Op::Exp};
    for (int p = 0; p < n_pipes; ++p) {
        int64_t lanes = int64_t(1) << rng.uniformInt(0, 4);
        TemplateInst pc;
        pc.tkind = TemplateKind::PipeCtrl;
        pc.vec = lanes;
        ts.push_back(pc);

        int n_ops = int(rng.uniformInt(2, 14));
        for (int i = 0; i < n_ops; ++i) {
            TemplateInst t;
            t.tkind = TemplateKind::PrimOp;
            t.op = datapath_ops[rng.uniformInt(0, 8)];
            t.isFloat = is_float && !opProducesBit(t.op);
            t.bits = 32;
            t.lanes = lanes;
            ts.push_back(t);
        }

        int n_access = int(rng.uniformInt(1, 4));
        for (int i = 0; i < n_access; ++i) {
            TemplateInst t;
            t.tkind = TemplateKind::LoadStore;
            t.bits = 32;
            t.banks = int(lanes);
            t.lanes = lanes;
            ts.push_back(t);
        }

        if (rng.uniform() < 0.4) {
            TemplateInst t;
            t.tkind = TemplateKind::ReduceTree;
            t.op = Op::Add;
            t.isFloat = is_float;
            t.bits = 32;
            t.vec = lanes;
            ts.push_back(t);
        }

        if (rng.uniform() < 0.5) {
            TemplateInst t;
            t.tkind = TemplateKind::DelayLine;
            t.delayBits = rng.uniform(32.0, 4096.0);
            t.depth = rng.uniform() < 0.3 ? 17 : 0;
            t.lanes = lanes;
            ts.push_back(t);
        }
    }

    // Buffers sized to mirror the scale of the compute.
    int n_brams = std::max<int64_t>(1, int64_t(scale * 0.25));
    for (int i = 0; i < n_brams; ++i) {
        TemplateInst t;
        t.tkind = TemplateKind::BramInst;
        t.bits = 32;
        t.elems = int64_t(1) << rng.uniformInt(6, 17);
        t.banks = 1 << rng.uniformInt(0, 4);
        t.doubleBuf = rng.uniform() < 0.5;
        ts.push_back(t);
    }

    // A quarter of designs are BRAM-dominated (huge tiles, little
    // logic) so the post-P&R models see that regime too — several of
    // the paper's benchmarks live there (gemm, dotproduct tiles).
    if (rng.uniform() < 0.25) {
        int n_big = int(rng.uniformInt(2, 6));
        for (int i = 0; i < n_big; ++i) {
            TemplateInst t;
            t.tkind = TemplateKind::BramInst;
            t.bits = 32;
            t.elems = int64_t(1) << rng.uniformInt(15, 17);
            t.banks = 1 << rng.uniformInt(0, 6);
            t.doubleBuf = rng.uniform() < 0.5;
            t.lanes = rng.uniformInt(1, 4);
            ts.push_back(t);
        }
    }

    int n_regs = int(rng.uniformInt(2, 12));
    for (int i = 0; i < n_regs; ++i) {
        TemplateInst t;
        t.tkind = TemplateKind::RegInst;
        t.bits = 32;
        t.doubleBuf = rng.uniform() < 0.3;
        t.lanes = int64_t(1) << rng.uniformInt(0, 3);
        ts.push_back(t);
    }

    int n_xfer = int(rng.uniformInt(1, 6));
    for (int i = 0; i < n_xfer; ++i) {
        TemplateInst t;
        t.tkind = TemplateKind::TileTransfer;
        t.bits = 32;
        t.vec = int64_t(1) << rng.uniformInt(0, 3);
        t.tileElems = int64_t(1) << rng.uniformInt(8, 20);
        ts.push_back(t);
    }

    (void)dev;
    return ts;
}

std::vector<DesignSample>
randomDesignSamples(const VendorToolchain& tc, int n, uint64_t seed)
{
    std::vector<DesignSample> out;
    out.reserve(size_t(n));
    for (int i = 0; i < n; ++i) {
        DesignSample s;
        s.templates =
            randomTemplateList(tc.device(), seed + uint64_t(i) * 7919);
        s.report = tc.synthesizeList(s.templates);
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace dhdl::fpga

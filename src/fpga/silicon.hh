/**
 * @file
 * Hidden "silicon" cost tables of the synthetic vendor toolchain.
 *
 * These tables stand in for the real resource costs that Altera's
 * logic synthesis assigns to each DHDL template on Stratix V. They
 * are intentionally private to the toolchain: the area estimator must
 * never read them directly — it learns template costs by running
 * characterization synthesis (Section IV-B: "We obtain
 * characterization data by synthesizing multiple instances of each
 * template instantiated for combinations of its parameters").
 *
 * Costs include mild non-linear terms (width-dependent carry/normalize
 * logic, bank-mux growth) so that linear template models carry a small
 * residual error, as real models do.
 */

#ifndef DHDL_FPGA_SILICON_HH
#define DHDL_FPGA_SILICON_HH

#include "analysis/resources.hh"
#include "fpga/device.hh"

namespace dhdl::fpga {

/**
 * Ground-truth pre-place-and-route resource cost of one template
 * instance (all replicas included). Deterministic.
 */
Resources siliconCost(const Device& dev, const TemplateInst& t);

/**
 * Ground-truth dynamic power of one template instance at the 150 MHz
 * fabric clock, in milliwatts (all replicas included). Deterministic;
 * derived from the silicon resource cost with per-resource activity
 * factors (DSPs and BRAMs toggle harder than LUT fabric).
 */
double siliconPowerMw(const Device& dev, const TemplateInst& t);

} // namespace dhdl::fpga

#endif // DHDL_FPGA_SILICON_HH

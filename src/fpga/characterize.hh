/**
 * @file
 * Characterization data generation (Section IV-B): "We obtain
 * characterization data by synthesizing multiple instances of each
 * template instantiated for combinations of its parameters ... Most
 * templates require about six synthesized designs to characterize
 * their resource and area usage." plus the "common set of 200 design
 * samples with varying levels of resource usage" used to train the
 * post-P&R artificial neural networks.
 *
 * Both datasets are produced by running the (synthetic) vendor
 * toolchain; they are application-independent and only need to be
 * generated once per device + toolchain pair.
 */

#ifndef DHDL_FPGA_CHARACTERIZE_HH
#define DHDL_FPGA_CHARACTERIZE_HH

#include <cstdint>
#include <vector>

#include "fpga/toolchain.hh"

namespace dhdl::fpga {

/** One isolated-template synthesis observation. */
struct TemplateSample {
    TemplateInst inst;
    Resources observed;
    /** Vectorless power-analysis report for the instance, mW. */
    double powerMw = 0.0;
};

/** One whole-design synthesis observation (ANN training row). */
struct DesignSample {
    std::vector<TemplateInst> templates;
    PnrReport report;
};

/**
 * Synthesize the per-template characterization sweep: for each
 * template class, several instances across its parameter ranges.
 */
std::vector<TemplateSample>
characterizeTemplates(const VendorToolchain& tc);

/**
 * Generate n random synthetic designs spanning small to near-full
 * device utilization and synthesize each with the full P&R flow.
 */
std::vector<DesignSample>
randomDesignSamples(const VendorToolchain& tc, int n,
                    uint64_t seed = 0x5EEDull);

/**
 * Generate one random template list (exposed for tests and for the
 * estimator-ablation bench).
 */
std::vector<TemplateInst>
randomTemplateList(const Device& dev, uint64_t seed);

} // namespace dhdl::fpga

#endif // DHDL_FPGA_CHARACTERIZE_HH

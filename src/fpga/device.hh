/**
 * @file
 * Target device and board model. The paper evaluates on an Altera
 * 28 nm Stratix V on a Maxeler Max4 MAIA board: 150 MHz fabric clock,
 * 48 GB DDR3 with 76.8 GB/s peak and 37.5 GB/s achieved bandwidth
 * (Section V-A). Stratix V ALMs contain a fracturable 8-input LUT
 * (pairwise packable) and two registers.
 */

#ifndef DHDL_FPGA_DEVICE_HH
#define DHDL_FPGA_DEVICE_HH

#include <cstdint>
#include <string>

namespace dhdl::fpga {

/** FPGA device + board capacities and clocks. */
struct Device {
    std::string name = "StratixV-D8";

    // Fabric capacity.
    int64_t alms = 262400;
    int64_t dsps = 1963;
    int64_t m20ks = 2567;
    int64_t m20kBits = 20480;
    /** Widest native M20K port in bits. */
    int m20kMaxWidth = 40;
    /**
     * Banks at or below this many bits are mapped to MLAB LUT-RAM
     * instead of M20K blocks (Stratix V MLAB = 640 bits).
     */
    int64_t mlabBits = 640;
    /** LUTs per ALM when fully packed. */
    int lutsPerAlm = 2;
    /** Registers per ALM. */
    int regsPerAlm = 2;

    // Clocks.
    double fabricMHz = 150.0;

    // Off-chip memory system.
    double peakBwGBs = 76.8;
    double achievedBwGBs = 37.5;
    int64_t burstBytes = 384;
    /** Fixed command round-trip latency, fabric cycles. */
    int64_t dramLatency = 120;

    /** Bytes the memory system can deliver per fabric cycle. */
    double
    bytesPerCycle() const
    {
        return achievedBwGBs * 1e9 / (fabricMHz * 1e6);
    }

    /** The board used throughout the paper's evaluation. */
    static Device maia();
};

} // namespace dhdl::fpga

#endif // DHDL_FPGA_DEVICE_HH

#include "fpga/device.hh"

namespace dhdl::fpga {

Device
Device::maia()
{
    return Device{};
}

} // namespace dhdl::fpga

#include "fpga/toolchain.hh"

#include <algorithm>
#include <cmath>

#include "fpga/silicon.hh"
#include "ml/rng.hh"

namespace dhdl::fpga {

using ml::Rng;
using ml::hashMix;

bool
PnrReport::fits(const Device& d) const
{
    return alms <= double(d.alms) && dsps <= double(d.dsps) &&
           brams <= double(d.m20ks);
}

VendorToolchain::VendorToolchain(Device dev, uint64_t seed)
    : dev_(std::move(dev)), seed_(seed)
{
}

uint64_t
VendorToolchain::designKey(const std::vector<TemplateInst>& ts)
{
    uint64_t h = 0x243f6a8885a308d3ull;
    auto mix = [&](uint64_t v) { h = hashMix(h ^ v); };
    for (const auto& t : ts) {
        mix(uint64_t(t.tkind));
        mix(uint64_t(t.op));
        mix(uint64_t(t.bits));
        mix(uint64_t(t.lanes));
        mix(uint64_t(t.vec));
        mix(uint64_t(t.elems));
        mix(uint64_t(t.banks));
        mix(uint64_t(t.doubleBuf));
        mix(uint64_t(t.depth));
        mix(uint64_t(t.stages));
        mix(uint64_t(t.tileElems));
        mix(uint64_t(t.delayBits * 16.0));
    }
    return h;
}

PnrReport
VendorToolchain::synthesize(const Inst& inst) const
{
    return synthesizeList(expandTemplates(inst));
}

PnrReport
VendorToolchain::synthesizeList(const std::vector<TemplateInst>& ts) const
{
    Resources raw;
    for (const auto& t : ts)
        raw += siliconCost(dev_, t);

    Rng rng(hashMix(designKey(ts) ^ seed_));

    // Congestion: how crowded the device is, driving routing pressure
    // and duplication. BRAM-heavy designs route worse (long wires to
    // M20K columns).
    double lut_frac =
        raw.totalLuts() / double(dev_.alms * dev_.lutsPerAlm);
    double bram_frac = raw.brams / double(dev_.m20ks);
    double size_term =
        std::log2(1.0 + double(ts.size())) / 24.0;
    double congestion = std::clamp(
        0.55 * lut_frac + 0.75 * bram_frac + 0.35 * size_term, 0.0, 1.0);

    double route_frac =
        std::max(0.0, 0.068 + 0.055 * congestion + rng.normal(0, 0.008));
    double dup_reg_frac =
        std::max(0.0, 0.042 + 0.018 * congestion + rng.normal(0, 0.006));
    double dup_bram_frac = std::clamp(
        0.08 + 0.85 * std::pow(congestion, 1.5) + rng.normal(0, 0.055),
        0.02, 1.0);
    double unavail_frac =
        std::max(0.0, 0.034 + 0.012 * congestion + rng.normal(0, 0.004));
    double pack_prob =
        std::clamp(0.80 + rng.normal(0, 0.015), 0.5, 0.95);

    PnrReport rep;
    rep.routeLuts = route_frac * raw.totalLuts();
    rep.unavailLuts = unavail_frac * raw.totalLuts();
    rep.dupRegs = dup_reg_frac * raw.regs;
    rep.dupBrams = dup_bram_frac * raw.brams;

    // Route-through LUTs are packable; unavailable LUTs are not.
    double packable = raw.lutsPack + rep.routeLuts;
    double unpackable = raw.lutsNoPack + rep.unavailLuts;
    double logic_units = unpackable + packable * (1.0 - pack_prob / 2.0);

    rep.luts = raw.totalLuts() + rep.routeLuts + rep.unavailLuts;
    rep.regs = raw.regs + rep.dupRegs;
    // DSP balancing: synthesis occasionally implements a multiplier
    // in soft logic (timing/placement driven) or splits one across
    // two blocks, so the final count drifts by a block or two plus a
    // small fraction on DSP-heavy designs.
    double dsp_drift = std::round(rng.normal(0.0, 0.35)) +
                       std::round(raw.dsps *
                                  std::max(0.0, rng.normal(0.008,
                                                           0.008)));
    rep.dsps = std::max(0.0, std::ceil(raw.dsps) + dsp_drift);
    rep.brams = std::ceil(raw.brams + rep.dupBrams);

    double reg_units = std::max(
        0.0, (rep.regs - double(dev_.regsPerAlm) * logic_units) /
                 double(dev_.regsPerAlm));
    rep.alms = logic_units + reg_units;

    // Power: per-template dynamic power, a clock-tree term that
    // grows with placed area, the device's static floor, and a few
    // percent of report noise.
    double dynamic = 0;
    for (const auto& t : ts)
        dynamic += siliconPowerMw(dev_, t);
    double clock_tree = 0.004 * rep.alms;
    double static_mw = 1800.0; // 28 nm large-device leakage floor
    rep.powerMw = (dynamic + clock_tree) *
                      std::max(0.5, 1.0 + rng.normal(0.0, 0.03)) +
                  static_mw;
    return rep;
}

Resources
VendorToolchain::isolatedSynthesis(const TemplateInst& t) const
{
    Resources r = siliconCost(dev_, t);
    // Measurement-level jitter: vendor reports for tiny designs vary
    // by a percent or two run to run (seed-dependent optimization).
    Rng rng(hashMix(designKey({t}) ^ seed_ ^ 0xC0FFEEull));
    auto jitter = [&](double v) {
        return std::max(0.0, v * (1.0 + rng.normal(0, 0.015)));
    };
    r.lutsPack = jitter(r.lutsPack);
    r.lutsNoPack = jitter(r.lutsNoPack);
    r.regs = jitter(r.regs);
    r.brams = std::ceil(r.brams);
    return r;
}

double
VendorToolchain::isolatedPowerMw(const TemplateInst& t) const
{
    Rng rng(hashMix(designKey({t}) ^ seed_ ^ 0x90E7ull));
    return std::max(
        0.0, siliconPowerMw(dev_, t) * (1.0 + rng.normal(0, 0.02)));
}

} // namespace dhdl::fpga

#include "sim/functional.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dhdl::sim {

namespace {

/** Identity element of a combine operator. */
double
reduceIdentity(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Sub:
      case Op::Or:
        return 0.0;
      case Op::Mul:
      case Op::And:
        return 1.0;
      case Op::Min:
        return std::numeric_limits<double>::infinity();
      case Op::Max:
        return -std::numeric_limits<double>::infinity();
      default:
        return 0.0;
    }
}

} // namespace

FunctionalSim::FunctionalSim(const Inst& inst)
    : inst_(inst), g_(inst.graph())
{
    size_t n = g_.numNodes();
    iterVal_.assign(n, 0.0);
    value_.assign(n, 0.0);
    valueEpoch_.assign(n, 0);

    for (NodeId id : g_.offchipMems)
        mem_[id].assign(size_t(inst_.memElems(id)), 0.0);
    for (NodeId id : inst_.onchipMems()) {
        if (g_.node(id).kind() == NodeKind::Reg)
            mem_[id].assign(1, g_.nodeAs<RegNode>(id).init);
        else if (g_.node(id).kind() == NodeKind::Queue)
            mem_[id].clear(); // queues start empty
        else
            mem_[id].assign(size_t(inst_.memElems(id)), 0.0);
    }
}

NodeId
FunctionalSim::memByName(const std::string& name) const
{
    for (const auto& [id, data] : mem_) {
        if (g_.node(id).name() == name)
            return id;
    }
    fatal("no memory named '" + name + "'");
}

void
FunctionalSim::setOffchip(const std::string& name,
                          std::vector<double> data)
{
    NodeId id = memByName(name);
    require(g_.node(id).kind() == NodeKind::OffChipMem,
            "'" + name + "' is not an off-chip memory");
    require(data.size() == mem_[id].size(),
            "data size mismatch for '" + name + "'");
    mem_[id] = std::move(data);
}

const std::vector<double>&
FunctionalSim::offchip(const std::string& name) const
{
    NodeId id = memByName(name);
    require(g_.node(id).kind() == NodeKind::OffChipMem,
            "'" + name + "' is not an off-chip memory");
    return mem_.at(id);
}

double
FunctionalSim::regValue(const std::string& name) const
{
    NodeId id = memByName(name);
    require(g_.node(id).kind() == NodeKind::Reg,
            "'" + name + "' is not a register");
    return mem_.at(id).front();
}

const std::vector<double>&
FunctionalSim::onchip(const std::string& name) const
{
    return mem_.at(memByName(name));
}

void
FunctionalSim::run()
{
    require(g_.root != kNoNode, "design has no accel body");
    execCtrl(g_.root);
}

double
FunctionalSim::quantize(const DType& t, double v) const
{
    switch (t.kind) {
      case TypeKind::Float:
        if (t.bits() <= 32)
            return double(float(v));
        return v;
      case TypeKind::Fixed: {
        if (t.fieldB == 0)
            return std::nearbyint(v);
        double scale = double(int64_t(1) << t.fieldB);
        return std::nearbyint(v * scale) / scale;
      }
      case TypeKind::Bit:
        return v != 0.0 ? 1.0 : 0.0;
    }
    return v;
}

double
FunctionalSim::combineVals(Op op, const DType& t, double a,
                           double b) const
{
    double r = 0.0;
    switch (op) {
      case Op::Add: r = a + b; break;
      case Op::Sub: r = a - b; break;
      case Op::Mul: r = a * b; break;
      case Op::Div: r = a / b; break;
      case Op::Mod: r = std::fmod(a, b); break;
      case Op::Min: r = std::min(a, b); break;
      case Op::Max: r = std::max(a, b); break;
      case Op::And: r = (a != 0 && b != 0) ? 1.0 : 0.0; break;
      case Op::Or: r = (a != 0 || b != 0) ? 1.0 : 0.0; break;
      default:
        panic("combineVals: unsupported combine operator");
    }
    return quantize(t, r);
}

int64_t
FunctionalSim::flatAddr(const MemNode& m,
                        const std::vector<int64_t>& idx) const
{
    invariant(idx.size() == m.dims.size(), "address rank mismatch");
    int64_t flat = 0;
    for (size_t d = 0; d < idx.size(); ++d) {
        int64_t extent = inst_.val(m.dims[d]);
        require(idx[d] >= 0 && idx[d] < extent,
                "out-of-bounds access to '" + m.name() + "'");
        flat = flat * extent + idx[d];
    }
    return flat;
}

double
FunctionalSim::eval(NodeId n)
{
    if (valueEpoch_[size_t(n)] == epoch_)
        return value_[size_t(n)];

    const Node& node = g_.node(n);
    double v = 0.0;
    switch (node.kind()) {
      case NodeKind::Prim: {
        const auto& p = g_.nodeAs<PrimNode>(n);
        switch (p.op) {
          case Op::Const:
            v = quantize(p.type, p.constValue);
            break;
          case Op::Iter:
            v = iterVal_[size_t(n)];
            break;
          case Op::Mux: {
            double sel = eval(p.inputs[0]);
            v = sel != 0.0 ? eval(p.inputs[1]) : eval(p.inputs[2]);
            v = quantize(p.type, v);
            break;
          }
          case Op::Not:
            v = eval(p.inputs[0]) != 0.0 ? 0.0 : 1.0;
            break;
          case Op::Abs:
            v = quantize(p.type, std::fabs(eval(p.inputs[0])));
            break;
          case Op::Neg:
            v = quantize(p.type, -eval(p.inputs[0]));
            break;
          case Op::Sqrt:
            v = quantize(p.type, std::sqrt(eval(p.inputs[0])));
            break;
          case Op::Exp:
            v = quantize(p.type, std::exp(eval(p.inputs[0])));
            break;
          case Op::Log:
            v = quantize(p.type, std::log(eval(p.inputs[0])));
            break;
          case Op::ToFloat:
          case Op::ToFixed:
            v = quantize(p.type, eval(p.inputs[0]));
            break;
          case Op::Lt:
            v = eval(p.inputs[0]) < eval(p.inputs[1]) ? 1.0 : 0.0;
            break;
          case Op::Le:
            v = eval(p.inputs[0]) <= eval(p.inputs[1]) ? 1.0 : 0.0;
            break;
          case Op::Gt:
            v = eval(p.inputs[0]) > eval(p.inputs[1]) ? 1.0 : 0.0;
            break;
          case Op::Ge:
            v = eval(p.inputs[0]) >= eval(p.inputs[1]) ? 1.0 : 0.0;
            break;
          case Op::Eq:
            v = eval(p.inputs[0]) == eval(p.inputs[1]) ? 1.0 : 0.0;
            break;
          case Op::Neq:
            v = eval(p.inputs[0]) != eval(p.inputs[1]) ? 1.0 : 0.0;
            break;
          default:
            v = combineVals(p.op, p.type, eval(p.inputs[0]),
                            eval(p.inputs[1]));
            break;
        }
        break;
      }
      case NodeKind::Load: {
        const auto& l = g_.nodeAs<LoadNode>(n);
        const auto& m = g_.nodeAs<MemNode>(l.mem);
        // Priority queues: address i reads the i-th smallest pushed
        // value; unfilled slots read +infinity.
        if (m.kind() == NodeKind::Queue) {
            int64_t i = int64_t(std::llround(eval(l.addr.front())));
            const auto& q = mem_.at(l.mem);
            require(i >= 0 && i < inst_.memElems(l.mem),
                    "queue peek index out of range");
            v = size_t(i) < q.size()
                    ? q[size_t(i)]
                    : std::numeric_limits<double>::infinity();
            break;
        }
        std::vector<int64_t> idx;
        idx.reserve(l.addr.size());
        for (NodeId a : l.addr)
            idx.push_back(int64_t(std::llround(eval(a))));
        v = mem_.at(l.mem)[size_t(flatAddr(m, idx))];
        break;
      }
      default:
        panic("eval on non-value node");
    }
    value_[size_t(n)] = v;
    valueEpoch_[size_t(n)] = epoch_;
    return v;
}

void
FunctionalSim::execPipeIteration(NodeId pipe)
{
    ++epoch_;
    const auto& c = g_.nodeAs<ControllerNode>(pipe);
    for (NodeId ch : c.children) {
        if (g_.node(ch).kind() != NodeKind::Store)
            continue;
        const auto& s = g_.nodeAs<StoreNode>(ch);
        const auto& m = g_.nodeAs<MemNode>(s.mem);

        // Priority queues: a store is a push (the address is
        // ignored); the queue keeps the `depth` smallest values in
        // sorted order, evicting the largest on overflow.
        if (m.kind() == NodeKind::Queue) {
            double v = quantize(m.type, eval(s.value));
            auto& q = mem_.at(s.mem);
            auto pos = std::upper_bound(q.begin(), q.end(), v);
            size_t depth = size_t(inst_.memElems(s.mem));
            if (q.size() < depth) {
                q.insert(pos, v);
            } else if (pos != q.end()) {
                q.insert(pos, v);
                q.pop_back();
            }
            continue;
        }

        std::vector<int64_t> idx;
        idx.reserve(s.addr.size());
        for (NodeId a : s.addr)
            idx.push_back(int64_t(std::llround(eval(a))));
        mem_.at(s.mem)[size_t(flatAddr(m, idx))] =
            quantize(m.type, eval(s.value));
    }
}

void
FunctionalSim::execTransfer(NodeId xfer)
{
    ++epoch_;
    const Node& n = g_.node(xfer);
    bool is_load = n.kind() == NodeKind::TileLd;
    NodeId off_id, on_id;
    const std::vector<NodeId>* base;
    const std::vector<Sym>* extent;
    if (is_load) {
        const auto& t = g_.nodeAs<TileLdNode>(xfer);
        off_id = t.offchip;
        on_id = t.onchip;
        base = &t.base;
        extent = &t.extent;
    } else {
        const auto& t = g_.nodeAs<TileStNode>(xfer);
        off_id = t.offchip;
        on_id = t.onchip;
        base = &t.base;
        extent = &t.extent;
    }
    const auto& off = g_.nodeAs<MemNode>(off_id);
    const auto& on = g_.nodeAs<MemNode>(on_id);

    size_t rank = extent->size();
    std::vector<int64_t> base_idx(rank, 0), ext(rank, 1);
    for (size_t d = 0; d < rank; ++d) {
        if ((*base)[d] != kNoNode)
            base_idx[d] = int64_t(std::llround(eval((*base)[d])));
        ext[d] = inst_.val((*extent)[d]);
    }

    // Iterate the tile region in row-major order.
    std::vector<int64_t> idx(rank, 0);
    while (true) {
        std::vector<int64_t> off_idx(rank);
        for (size_t d = 0; d < rank; ++d)
            off_idx[d] = base_idx[d] + idx[d];
        int64_t o = flatAddr(off, off_idx);
        int64_t c = flatAddr(on, idx);
        if (is_load)
            mem_.at(on_id)[size_t(c)] = mem_.at(off_id)[size_t(o)];
        else
            mem_.at(off_id)[size_t(o)] = mem_.at(on_id)[size_t(c)];

        // Advance the index vector.
        size_t d = rank;
        while (d-- > 0) {
            if (++idx[d] < ext[d])
                break;
            idx[d] = 0;
            if (d == 0)
                return;
        }
    }
}

void
FunctionalSim::resetAccum(const ControllerNode& c)
{
    if (c.pattern != Pattern::Reduce || c.accum == kNoNode)
        return;
    double id_val = reduceIdentity(c.combine);
    auto& data = mem_.at(c.accum);
    std::fill(data.begin(), data.end(), id_val);
}

void
FunctionalSim::foldReduce(const ControllerNode& c)
{
    if (c.pattern != Pattern::Reduce || c.accum == kNoNode)
        return;
    const auto& acc = g_.nodeAs<MemNode>(c.accum);
    auto& dst = mem_.at(c.accum);
    if (c.kind() == NodeKind::Pipe) {
        // Scalar fold of the body's value into a register.
        double v = eval(c.bodyResult);
        dst[0] = combineVals(c.combine, acc.type, dst[0], v);
        return;
    }
    // Tile fold: elementwise combine of the body-result memory.
    const auto& src = mem_.at(c.bodyResult);
    require(src.size() == dst.size(),
            "reduce tile size mismatch for '" + acc.name() + "'");
    for (size_t i = 0; i < dst.size(); ++i)
        dst[i] = combineVals(c.combine, acc.type, dst[i], src[i]);
}

void
FunctionalSim::execBody(NodeId ctrl)
{
    const auto& c = g_.nodeAs<ControllerNode>(ctrl);
    if (c.kind() == NodeKind::Pipe) {
        execPipeIteration(ctrl);
        return;
    }
    for (NodeId ch : c.children) {
        const Node& n = g_.node(ch);
        if (n.isController())
            execCtrl(ch);
        else if (n.isTileTransfer())
            execTransfer(ch);
    }
}

void
FunctionalSim::execCtrl(NodeId ctrl)
{
    const auto& c = g_.nodeAs<ControllerNode>(ctrl);
    resetAccum(c);

    if (c.counter == kNoNode) {
        execBody(ctrl);
        foldReduce(c);
        return;
    }

    const auto& ctr = g_.nodeAs<CounterNode>(c.counter);
    size_t rank = ctr.dims.size();

    // Iterator nodes of this controller, by dimension.
    std::vector<NodeId> iters(rank, kNoNode);
    for (NodeId ch : c.children) {
        const auto* p = g_.tryAs<PrimNode>(ch);
        if (p && p->op == Op::Iter && p->counter == c.counter)
            iters[size_t(p->ctrDim)] = ch;
    }

    std::vector<int64_t> lo(rank), hi(rank), st(rank);
    for (size_t d = 0; d < rank; ++d) {
        lo[d] = inst_.val(ctr.dims[d].min);
        hi[d] = inst_.val(ctr.dims[d].max);
        st[d] = inst_.val(ctr.dims[d].step);
        require(st[d] > 0, "non-positive counter step");
    }

    std::vector<int64_t> idx = lo;
    if (rank == 0)
        return;
    while (idx[0] < hi[0]) {
        for (size_t d = 0; d < rank; ++d) {
            if (iters[d] != kNoNode)
                iterVal_[size_t(iters[d])] = double(idx[d]);
        }
        execBody(ctrl);
        foldReduce(c);

        // Advance odometer.
        size_t d = rank;
        while (d-- > 0) {
            idx[d] += st[d];
            if (idx[d] < hi[d] || d == 0)
                break;
            idx[d] = lo[d];
        }
        if (idx[0] >= hi[0])
            break;
    }
}

} // namespace dhdl::sim

/**
 * @file
 * Functional simulation of DHDL designs: executes the dataflow graph
 * on real data, element by element, with per-type value quantization
 * (float32 rounding, fixed-point quantization). This is the oracle
 * used to check that generated accelerator designs compute the same
 * results as the reference CPU implementations, and it feeds the
 * data-dependent aspects of benchmarks like TPC-H Q6.
 */

#ifndef DHDL_SIM_FUNCTIONAL_HH
#define DHDL_SIM_FUNCTIONAL_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/instance.hh"

namespace dhdl::sim {

/** Interpreter over a concrete design instance. */
class FunctionalSim
{
  public:
    explicit FunctionalSim(const Inst& inst);

    /** Bind host data (row-major) to an off-chip memory by name. */
    void setOffchip(const std::string& name, std::vector<double> data);

    /** Read back an off-chip memory after run(). */
    const std::vector<double>& offchip(const std::string& name) const;

    /** Read a register's final value after run(). */
    double regValue(const std::string& name) const;

    /** Read an on-chip memory's contents (tests). */
    const std::vector<double>& onchip(const std::string& name) const;

    /** Execute the design once. */
    void run();

  private:
    NodeId memByName(const std::string& name) const;

    void execCtrl(NodeId ctrl);
    void execBody(NodeId ctrl);
    void execPipeIteration(NodeId pipe);
    void execTransfer(NodeId xfer);
    void resetAccum(const ControllerNode& c);
    void foldReduce(const ControllerNode& c);

    double eval(NodeId n);
    double quantize(const DType& t, double v) const;
    double combineVals(Op op, const DType& t, double a, double b) const;

    int64_t flatAddr(const MemNode& m, const std::vector<int64_t>& idx)
        const;

    const Inst& inst_;
    const Graph& g_;

    std::unordered_map<NodeId, std::vector<double>> mem_;
    std::vector<double> iterVal_;   //!< per Iter-node current value
    std::vector<double> value_;     //!< per-node evaluated value
    std::vector<uint64_t> valueEpoch_;
    uint64_t epoch_ = 0;
};

} // namespace dhdl::sim

#endif // DHDL_SIM_FUNCTIONAL_HH

/**
 * @file
 * Bottleneck reporting: renders the simulated cycle budget of a
 * design instance as an indented controller tree with per-stage
 * shares, so a user can see which stage dominates (the analysis the
 * paper does by hand in Section V-C1, e.g. "the dominant stage
 * becomes the dot product reduction tree").
 */

#ifndef DHDL_SIM_REPORT_HH
#define DHDL_SIM_REPORT_HH

#include <string>
#include <vector>

#include "sim/timing.hh"

namespace dhdl::sim {

/** One line of the bottleneck report. */
struct BottleneckEntry {
    NodeId node = kNoNode;
    std::string name;
    std::string kind;
    int depth = 0;        //!< Nesting level (root = 0).
    double cycles = 0;    //!< Simulated cycles of this subtree/stage.
    double fraction = 0;  //!< Share of the root's total cycles.
};

/** Collect the per-controller/transfer timing breakdown. */
std::vector<BottleneckEntry>
collectBottlenecks(const Inst& inst,
                   fpga::Device dev = fpga::Device::maia());

/** Render the breakdown as an indented text report. */
std::string timingReport(const Inst& inst,
                         fpga::Device dev = fpga::Device::maia());

} // namespace dhdl::sim

#endif // DHDL_SIM_REPORT_HH

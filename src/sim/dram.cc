#include "sim/dram.hh"

#include <algorithm>
#include <cmath>

#include "core/error.hh"

namespace dhdl::sim {

namespace {

/** Extra cycles per row activation (precharge + activate + CAS). */
constexpr double kRowOverheadCycles = 6.0;

/** Refresh derating: fraction of time the DRAM is unavailable. */
constexpr double kRefreshDerate = 0.015;

} // namespace

DramModel::DramModel(fpga::Device dev) : dev_(std::move(dev))
{
}

double
DramModel::effectiveRate(const StreamReq& s) const
{
    double peak = dev_.bytesPerCycle() * (1.0 - kRefreshDerate);
    double row = std::max(1.0, s.rowBytes);
    // Each row run costs its payload time plus a fixed activation
    // overhead; bursts are quantized to the board's burst size.
    double bursts_per_row = std::ceil(row / double(dev_.burstBytes));
    double row_cycles =
        bursts_per_row * double(dev_.burstBytes) / peak +
        kRowOverheadCycles;
    double rate = row / row_cycles;
    return std::min({rate, peak, s.onchipBytesPerCycle});
}

double
DramModel::streamCycles(const StreamReq& s, double share) const
{
    require(share > 0.0 && share <= 1.0, "bad bandwidth share");
    if (s.bytes <= 0)
        return latency();
    double rate = effectiveRate(s) * share;
    return latency() + s.bytes / std::max(1e-9, rate);
}

std::vector<double>
DramModel::concurrentCycles(const std::vector<StreamReq>& streams) const
{
    size_t n = streams.size();
    std::vector<double> finish(n, 0.0);
    if (n == 0)
        return finish;
    if (n == 1) {
        finish[0] = streamCycles(streams[0]);
        return finish;
    }

    // Fluid max-min fair sharing: all streams start at cycle 0; each
    // round, active streams split the controller bandwidth, capped by
    // their own effective rate; the next completion defines the round.
    std::vector<double> remaining(n);
    std::vector<double> cap(n);
    for (size_t i = 0; i < n; ++i) {
        remaining[i] = std::max(0.0, streams[i].bytes);
        cap[i] = effectiveRate(streams[i]);
    }
    double total_bw = dev_.bytesPerCycle() * (1.0 - kRefreshDerate);
    double now = 0.0;
    size_t active = n;

    while (active > 0) {
        // Max-min allocation: water-fill bandwidth across streams that
        // still have data, honoring per-stream caps.
        std::vector<double> rate(n, 0.0);
        double bw_left = total_bw;
        size_t uncapped = 0;
        for (size_t i = 0; i < n; ++i)
            if (remaining[i] > 0)
                ++uncapped;
        // Iterative water-filling.
        std::vector<bool> frozen(n, false);
        while (uncapped > 0) {
            double fair = bw_left / double(uncapped);
            bool changed = false;
            for (size_t i = 0; i < n; ++i) {
                if (remaining[i] <= 0 || frozen[i])
                    continue;
                if (cap[i] <= fair) {
                    rate[i] = cap[i];
                    bw_left -= cap[i];
                    frozen[i] = true;
                    --uncapped;
                    changed = true;
                }
            }
            if (!changed) {
                for (size_t i = 0; i < n; ++i) {
                    if (remaining[i] > 0 && !frozen[i])
                        rate[i] = fair;
                }
                break;
            }
        }

        // Advance to the next completion.
        double dt = 1e300;
        for (size_t i = 0; i < n; ++i) {
            if (remaining[i] > 0 && rate[i] > 0)
                dt = std::min(dt, remaining[i] / rate[i]);
        }
        invariant(dt < 1e299, "DRAM fluid simulation stalled");
        now += dt;
        for (size_t i = 0; i < n; ++i) {
            if (remaining[i] <= 0)
                continue;
            remaining[i] -= rate[i] * dt;
            if (remaining[i] <= 1e-6) {
                remaining[i] = 0;
                finish[i] = now + latency();
                --active;
            }
        }
    }
    return finish;
}

} // namespace dhdl::sim

/**
 * @file
 * Timing simulation of DHDL designs: the reproduction's stand-in for
 * executing a generated bitstream on the MAIA board. Unlike the
 * static runtime estimator (Section IV-B1), the timing simulator
 * models burst-level DRAM behaviour (row overheads, refresh, max-min
 * fair arbitration between concurrent streams), per-controller
 * handshake overheads, and exact pipeline fill/drain recurrences, so
 * estimator error against it has the same causes as in the paper.
 */

#ifndef DHDL_SIM_TIMING_HH
#define DHDL_SIM_TIMING_HH

#include <unordered_map>

#include "sim/dram.hh"
#include "analysis/instance.hh"

namespace dhdl::sim {

/** Timing result for one design instance. */
struct TimingResult {
    double cycles = 0;
    double seconds = 0;
};

/** Cycle-level timing model over a concrete design instance. */
class TimingSim
{
  public:
    explicit TimingSim(const Inst& inst,
                       fpga::Device dev = fpga::Device::maia());

    /** Simulate the whole design. */
    TimingResult run();

    /** Simulated cycles for one controller subtree (tests). */
    double ctrlCycles(NodeId ctrl);

    /** Simulated cycles for one tile transfer, with contention. */
    double transferCycles(NodeId xfer);

  private:
    double stageCycles(NodeId stage);
    StreamReq streamOf(NodeId xfer) const;
    double handshake(NodeId ctrl) const;

    const Inst& inst_;
    const Graph& g_;
    DramModel dram_;
    std::unordered_map<NodeId, double> cache_;
};

} // namespace dhdl::sim

#endif // DHDL_SIM_TIMING_HH

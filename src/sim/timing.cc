#include "sim/timing.hh"

#include "obs/trace.hh"

#include <algorithm>
#include <cmath>

#include "analysis/critical_path.hh"
#include "analysis/resources.hh"

namespace dhdl::sim {

TimingSim::TimingSim(const Inst& inst, fpga::Device dev)
    : inst_(inst), g_(inst.graph()), dram_(std::move(dev))
{
}

double
TimingSim::handshake(NodeId ctrl) const
{
    // Controller enable/done synchronization: a small,
    // design-dependent number of cycles (placement-dependent on real
    // hardware; deterministic per node here).
    return 3.0 + double(ctrl % 5);
}

StreamReq
TimingSim::streamOf(NodeId xfer) const
{
    StreamReq s;
    int bits;
    int64_t elems = 1, inner = 1, par = 1;
    if (g_.node(xfer).kind() == NodeKind::TileLd) {
        const auto& t = g_.nodeAs<TileLdNode>(xfer);
        bits = g_.nodeAs<MemNode>(t.offchip).type.bits();
        for (const auto& e : t.extent)
            elems *= inst_.val(e);
        inner = inst_.val(t.extent.back());
        par = std::max<int64_t>(1, inst_.val(t.par));
    } else {
        const auto& t = g_.nodeAs<TileStNode>(xfer);
        bits = g_.nodeAs<MemNode>(t.offchip).type.bits();
        for (const auto& e : t.extent)
            elems *= inst_.val(e);
        inner = inst_.val(t.extent.back());
        par = std::max<int64_t>(1, inst_.val(t.par));
    }
    s.bytes = double(elems) * bits / 8.0;
    s.rowBytes = elems == inner ? s.bytes : double(inner) * bits / 8.0;
    s.onchipBytesPerCycle = double(par) * bits / 8.0;
    return s;
}

double
TimingSim::transferCycles(NodeId xfer)
{
    auto it = cache_.find(xfer);
    if (it != cache_.end())
        return it->second;

    // Build the steady-state contention set: transfers below the
    // nearest concurrent container (Parallel or active MetaPipe).
    NodeId anc = g_.node(xfer).parent;
    while (anc != kNoNode) {
        const Node& n = g_.node(anc);
        if (n.kind() == NodeKind::ParallelCtrl ||
            (n.kind() == NodeKind::MetaPipe && inst_.metaActive(anc)))
            break;
        anc = n.parent;
    }

    std::vector<NodeId> set;
    if (anc == kNoNode) {
        set.push_back(xfer);
    } else {
        for (NodeId t : inst_.transfers()) {
            NodeId p = t;
            while (p != kNoNode && p != anc)
                p = g_.node(p).parent;
            if (p == anc)
                set.push_back(t);
        }
    }

    // Each transfer is physically replicated lanes() times (its
    // enclosing controllers' parallelization); every copy is an
    // independent stream at the memory controller.
    std::vector<StreamReq> reqs;
    size_t self = SIZE_MAX;
    for (NodeId t : set) {
        int64_t copies =
            std::min<int64_t>(128, std::max<int64_t>(1,
                                                     inst_.lanes(t)));
        for (int64_t c = 0; c < copies; ++c) {
            if (t == xfer && self == SIZE_MAX)
                self = reqs.size();
            reqs.push_back(streamOf(t));
        }
    }
    invariant(self != SIZE_MAX, "transfer missing from its own set");
    double cycles = dram_.concurrentCycles(reqs)[self] +
                    handshake(xfer);
    cache_[xfer] = cycles;
    return cycles;
}

double
TimingSim::stageCycles(NodeId stage)
{
    if (g_.node(stage).isTileTransfer())
        return transferCycles(stage);
    return ctrlCycles(stage);
}

double
TimingSim::ctrlCycles(NodeId ctrl)
{
    auto cached = cache_.find(ctrl);
    if (cached != cache_.end())
        return cached->second;

    const auto& c = g_.nodeAs<ControllerNode>(ctrl);
    int64_t trip = inst_.trip(ctrl);
    int64_t par = inst_.par(ctrl);
    double iters = std::ceil(double(trip) / double(par));
    double total = 0;

    switch (c.kind()) {
      case NodeKind::Pipe: {
        PipeTiming t = analyzePipe(inst_, ctrl);
        // Fill plus one initiation per vectorized iteration, spaced
        // by the initiation interval of any RMW recurrence.
        total = double(t.depth) + iters * double(t.ii) +
                handshake(ctrl);
        break;
      }
      case NodeKind::ParallelCtrl: {
        double worst = 0;
        for (NodeId s : inst_.stagesOf(ctrl))
            worst = std::max(worst, stageCycles(s));
        total = worst + handshake(ctrl);
        break;
      }
      case NodeKind::Sequential:
      case NodeKind::MetaPipe: {
        auto stages = inst_.stagesOf(ctrl);
        std::vector<double> d;
        d.reserve(stages.size() + 1);
        for (NodeId s : stages)
            d.push_back(stageCycles(s) + handshake(s));

        if (c.pattern == Pattern::Reduce && c.accum != kNoNode) {
            const auto& acc = g_.nodeAs<MemNode>(c.accum);
            double elems = double(inst_.memElems(c.accum));
            double lat = opLatency(c.combine, acc.type);
            // The fold engine runs `par` lanes wide.
            d.push_back(std::ceil(elems / double(par)) + lat +
                        handshake(ctrl));
        }
        if (d.empty()) {
            total = handshake(ctrl);
            break;
        }

        bool overlapped = c.kind() == NodeKind::MetaPipe &&
                          inst_.metaActive(ctrl) && d.size() > 1;
        if (overlapped && iters >= 1) {
            // Exact coarse-grained pipeline recurrence with constant
            // stage durations and double buffering:
            //   start(s, i) = max(finish(s-1, i), finish(s, i-1))
            // Run the recurrence directly (durations are constant so
            // a window is enough, but trips here are small because
            // each iteration covers a whole tile).
            size_t ns = d.size();
            std::vector<double> fin(ns, 0.0);
            int64_t n = int64_t(iters);
            // Cap the explicit event loop; beyond the cap the steady
            // state advances by exactly max(d) per iteration.
            int64_t explicit_iters = std::min<int64_t>(n, 4096);
            for (int64_t i = 0; i < explicit_iters; ++i) {
                double prev = 0.0;
                for (size_t s = 0; s < ns; ++s) {
                    double start = std::max(prev, fin[s]);
                    fin[s] = start + d[s];
                    prev = fin[s];
                }
            }
            total = fin[ns - 1];
            if (n > explicit_iters) {
                double worst = *std::max_element(d.begin(), d.end());
                total += double(n - explicit_iters) * worst;
            }
            total += handshake(ctrl);
        } else {
            double sum = 0;
            for (double x : d)
                sum += x;
            total = iters * sum + handshake(ctrl);
        }
        break;
      }
      default:
        panic("ctrlCycles on non-controller");
    }

    cache_[ctrl] = total;
    return total;
}

TimingResult
TimingSim::run()
{
    DHDL_OBS_SPAN("sim", "timing-sim");
    require(g_.root != kNoNode, "design has no accel body");
    TimingResult r;
    r.cycles = ctrlCycles(g_.root);
    r.seconds = r.cycles / (dram_.device().fabricMHz * 1e6);
    return r;
}

} // namespace dhdl::sim

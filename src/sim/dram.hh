/**
 * @file
 * Off-chip memory-system model for the timing simulator. Models the
 * MAIA board's DDR3 system at burst granularity: per-row activation
 * overhead, 384-byte bursts, refresh derating, and max-min fair
 * bandwidth sharing among concurrently active streams (a fluid-flow
 * approximation of the memory controller's arbitration). This is the
 * "ground truth" the static runtime estimator is judged against,
 * mirroring how the paper's estimates are judged against runs on the
 * physical board.
 */

#ifndef DHDL_SIM_DRAM_HH
#define DHDL_SIM_DRAM_HH

#include <vector>

#include "fpga/device.hh"

namespace dhdl::sim {

/** One tile-transfer stream's demand. */
struct StreamReq {
    double bytes = 0;            //!< Total payload bytes.
    double rowBytes = 0;         //!< Contiguous bytes per DRAM row run.
    double onchipBytesPerCycle = 1e30; //!< On-chip side throughput cap.
};

/** Burst-level DDR3 + memory controller model. */
class DramModel
{
  public:
    explicit DramModel(fpga::Device dev);

    /**
     * Cycles to complete one stream at the given share of controller
     * bandwidth (0 < share <= 1), including burst quantization and
     * per-row activation overhead.
     */
    double streamCycles(const StreamReq& s, double share = 1.0) const;

    /**
     * Fluid simulation of concurrently started streams with max-min
     * fair sharing; returns each stream's completion cycle. Early
     * finishers release their bandwidth to the rest.
     */
    std::vector<double>
    concurrentCycles(const std::vector<StreamReq>& streams) const;

    /** Fixed round-trip command latency in fabric cycles. */
    double latency() const { return double(dev_.dramLatency); }

    const fpga::Device& device() const { return dev_; }

  private:
    /** Effective payload rate (bytes/cycle) of a stream at full BW. */
    double effectiveRate(const StreamReq& s) const;

    fpga::Device dev_;
};

} // namespace dhdl::sim

#endif // DHDL_SIM_DRAM_HH

#include "sim/report.hh"

#include <iomanip>
#include <sstream>

namespace dhdl::sim {

namespace {

void
walk(const Inst& inst, TimingSim& sim, NodeId node, int depth,
     double total, std::vector<BottleneckEntry>& out)
{
    const Graph& g = inst.graph();
    BottleneckEntry e;
    e.node = node;
    e.name = g.node(node).name();
    e.kind = kindName(g.node(node).kind());
    e.depth = depth;
    e.cycles = g.node(node).isTileTransfer()
                   ? sim.transferCycles(node)
                   : sim.ctrlCycles(node);
    e.fraction = total > 0 ? e.cycles / total : 1.0;
    out.push_back(e);

    if (g.node(node).isTileTransfer())
        return;
    for (NodeId s : inst.stagesOf(node))
        walk(inst, sim, s, depth + 1, total, out);
}

} // namespace

std::vector<BottleneckEntry>
collectBottlenecks(const Inst& inst, fpga::Device dev)
{
    std::vector<BottleneckEntry> out;
    if (inst.graph().root == kNoNode)
        return out;
    TimingSim sim(inst, std::move(dev));
    double total = sim.ctrlCycles(inst.graph().root);
    walk(inst, sim, inst.graph().root, 0, total, out);
    return out;
}

std::string
timingReport(const Inst& inst, fpga::Device dev)
{
    auto entries = collectBottlenecks(inst, std::move(dev));
    std::ostringstream os;
    os << "timing breakdown (cycles, share of total):\n";
    for (const auto& e : entries) {
        for (int i = 0; i < e.depth; ++i)
            os << "  ";
        os << e.kind << " " << e.name << ": "
           << int64_t(e.cycles) << " (" << std::fixed
           << std::setprecision(1) << e.fraction * 100.0 << "%)\n";
    }
    return os.str();
}

} // namespace dhdl::sim

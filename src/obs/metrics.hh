/**
 * @file
 * Metrics registry: named counters, gauges and fixed-bucket
 * histograms. Recording is lock-free on the hot path — counters and
 * histogram buckets live in thread-local shards of relaxed atomics,
 * merged only when a snapshot is taken — so the explorer's worker
 * pool can record per-point latencies at full evaluation throughput.
 *
 * Handles (Counter, Gauge, Histogram) are cheap value types holding
 * a slot id; construct them once (member or function-local static)
 * and record through them. Registration by name is idempotent: two
 * handles with the same name share the metric. A bounded slot table
 * keeps shards fixed-size; registrations past the cap are absorbed
 * by a sink slot and counted in `obs.metrics.dropped`.
 *
 * Naming convention: dotted lowercase paths, unit suffix where one
 * applies — `dse.stage.area.us`, `dse.points.evaluated`,
 * `cpu.pool.queue_depth`.
 */

#ifndef DHDL_OBS_METRICS_HH
#define DHDL_OBS_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hh"

namespace dhdl::obs {

/** Monotonic counter, sharded per thread. */
class Counter
{
  public:
    explicit Counter(const std::string& name);

    /** Add n; no-op while recording is disabled. */
    void add(uint64_t n = 1) const;

  private:
    uint32_t slot_;
};

/** Last-write-wins instantaneous value (global, not sharded). */
class Gauge
{
  public:
    explicit Gauge(const std::string& name);

    void set(int64_t v) const;
    void add(int64_t delta) const;

  private:
    uint32_t id_;
};

/**
 * Fixed-bucket histogram of non-negative integer observations
 * (latencies in microseconds, queue depths, ...). `bounds` are
 * ascending inclusive upper bucket edges; an implicit overflow
 * bucket catches everything above the last edge.
 */
class Histogram
{
  public:
    Histogram(const std::string& name, std::vector<uint64_t> bounds);

    void observe(uint64_t v) const;

  private:
    uint32_t slot_;      //!< First bucket slot in the shard.
    uint32_t nbounds_;   //!< Finite edges; buckets = nbounds_ + 1.
    const std::vector<uint64_t>* bounds_; //!< Registry-owned edges.
};

/** Merged view of one histogram. */
struct HistogramSnapshot {
    std::string name;
    std::vector<uint64_t> bounds;
    /** bounds.size() + 1 entries; the last is the overflow bucket. */
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    uint64_t sum = 0;

    double mean() const { return count ? double(sum) / double(count) : 0.0; }
};

/**
 * Point-in-time merge of every shard. Deterministic: entries are
 * sorted by name, values are sums over all threads that ever
 * recorded (shards outlive their threads).
 */
struct MetricsSnapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** Value of a counter by name; 0 when absent. */
    uint64_t counter(const std::string& name) const;

    /** Machine-readable JSON ({"counters":{...},...}). */
    void writeJson(std::ostream& os) const;

    /** Human-readable rendering (the `--profile` output). */
    void renderText(std::ostream& os) const;

    /**
     * Prometheus exposition-format rendering (the `dhdld` `/metrics`
     * endpoint). Dotted names become underscore-separated with a
     * `dhdl_` prefix (`dse.points.evaluated` →
     * `dhdl_dse_points_evaluated`); histograms render as cumulative
     * `_bucket{le=...}` series plus `_sum`/`_count`. Deterministic:
     * entries in snapshot (name-sorted) order.
     */
    void renderProm(std::ostream& os) const;
};

/** Merge all shards into a snapshot. Callable at any time. */
MetricsSnapshot snapshotMetrics();

/**
 * Zero every counter, gauge and histogram bucket (registrations are
 * kept). Test isolation only — racing recorders may leave partial
 * sums behind.
 */
void resetMetrics();

/** One-off counter add by name (cold paths with dynamic names). */
void addCounter(const std::string& name, uint64_t n);

} // namespace dhdl::obs

#endif // DHDL_OBS_METRICS_HH

/**
 * @file
 * Observability core: the process-wide enable switch, the trace
 * clock, and per-thread identity. The obs subsystem (metrics.hh,
 * trace.hh) is the single source of truth for timing data across the
 * toolchain — the DSE evaluator's stage times, the pass manager's
 * per-pass wall-clocks and `dhdlc --profile` all render the same
 * registry snapshot.
 *
 * Design rules:
 *
 *  - Recording never perturbs results. Instrumentation writes only
 *    to obs-owned state (thread-local metric shards and trace ring
 *    buffers), so golden outputs are byte-identical with tracing on
 *    or off — the golden-equivalence suite pins this.
 *  - Disabled means near-zero cost: every record path starts with a
 *    single relaxed atomic load. Compiling with -DDHDL_OBS_DISABLE
 *    strips the span macros entirely (see trace.hh).
 *  - No dependency on dhdl_core: obs sits below every other library.
 *
 * The switch defaults to the DHDL_OBS environment variable ("1",
 * "ON", "TRUE" enable; anything else, or unset, disables) so CI can
 * run the whole test suite traced without touching code.
 */

#ifndef DHDL_OBS_OBS_HH
#define DHDL_OBS_OBS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace dhdl::obs {

namespace detail {
extern std::atomic<bool> gEnabled;
} // namespace detail

/** Is recording currently on? One relaxed load; safe anywhere. */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/** Turn recording on or off process-wide (overrides DHDL_OBS). */
void setEnabled(bool on);

/** The DHDL_OBS environment setting; nullopt when unset. */
std::optional<bool> envEnabled();

/**
 * Microseconds on the trace clock (steady, starts near process
 * start). All trace timestamps and span durations use this clock.
 */
uint64_t nowMicros();

/** Convert a steady_clock time point onto the trace clock. */
uint64_t toMicros(std::chrono::steady_clock::time_point tp);

/**
 * Small dense id of the calling thread, assigned on first use in
 * registration order (the main thread is almost always 0). Stable
 * for the thread's lifetime; trace events carry it as "tid".
 */
uint32_t threadId();

/**
 * Name the calling thread for trace attribution ("worker-3"). The
 * thread pool names its workers; unnamed threads render as
 * "thread-N". Works whether or not recording is enabled, so
 * diagnostics can attribute work deterministically either way.
 */
void setThreadName(const std::string& name);

/** The calling thread's name (copy; safe to hold across threads). */
std::string threadName();

} // namespace dhdl::obs

#endif // DHDL_OBS_OBS_HH

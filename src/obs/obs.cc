/**
 * Implementation of the obs subsystem (obs.hh, metrics.hh,
 * trace.hh). All global state lives in one immortal GlobalState —
 * deliberately leaked so recording from detached or late-exiting
 * threads can never touch a destroyed object.
 *
 * Concurrency model:
 *  - metric shards: one fixed-size array of relaxed atomics per
 *    thread, written only through handle ids; snapshot() sums across
 *    shards without stopping writers (counters are monotone, so a
 *    racing snapshot is merely slightly stale, never torn);
 *  - trace rings: one vector per thread guarded by a per-thread
 *    mutex (uncontended except while an export drains it);
 *  - the global mutex guards registration, thread naming and the
 *    shard list — never the record hot path.
 */

#include "obs/obs.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dhdl::obs {

namespace {

/** Total metric slots per shard; registrations past this are sunk. */
constexpr uint32_t kMaxSlots = 1024;
/** Slot 0 absorbs over-cap registrations (never reported). */
constexpr uint32_t kSinkSlot = 0;

constexpr size_t kDefaultRingCap = 16384;
constexpr size_t kMinRingCap = 64;
constexpr size_t kMaxRingCap = size_t(1) << 20;

enum class Kind : uint8_t { Counter, Histogram };

struct MetricDef {
    std::string name;
    Kind kind = Kind::Counter;
    std::vector<uint64_t> bounds; //!< Histogram edges; else empty.
    uint32_t slot = kSinkSlot;    //!< First shard slot.
    uint32_t nslots = 1;
};

struct ThreadState {
    uint32_t tid = 0;
    std::string name; //!< Guarded by the global mutex.
    std::array<std::atomic<uint64_t>, kMaxSlots> slots{};

    std::mutex traceMu;
    std::vector<TraceEvent> ring;
    uint64_t next = 0; //!< Events ever recorded by this thread.
};

size_t
envRingCap()
{
    const char* v = std::getenv("DHDL_OBS_RING");
    if (!v || !*v)
        return kDefaultRingCap;
    char* end = nullptr;
    unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v)
        return kDefaultRingCap;
    return std::clamp<size_t>(size_t(n), kMinRingCap, kMaxRingCap);
}

struct GlobalState {
    const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();

    std::mutex mu;
    // deques: element addresses stay valid across growth, which the
    // thread_local shard pointers and histogram-bounds pointers rely
    // on.
    std::deque<ThreadState> threads;
    std::deque<MetricDef> defs;
    std::unordered_map<std::string, uint32_t> byName;
    uint32_t nextSlot = kSinkSlot + 1;
    uint64_t droppedMetrics = 0;

    std::deque<std::atomic<int64_t>> gauges;
    std::vector<std::string> gaugeNames;
    std::unordered_map<std::string, uint32_t> gaugeByName;

    std::atomic<size_t> ringCap{envRingCap()};
};

GlobalState&
G()
{
    static GlobalState* g = new GlobalState; // immortal by design
    return *g;
}

thread_local ThreadState* tlsState = nullptr;

/** The calling thread's shard, registered on first use. */
ThreadState&
ts()
{
    if (!tlsState) {
        GlobalState& g = G();
        std::lock_guard<std::mutex> lock(g.mu);
        g.threads.emplace_back();
        ThreadState& t = g.threads.back();
        t.tid = uint32_t(g.threads.size() - 1);
        // The first thread to touch obs is the process main thread
        // in every binary we ship; label it for trace readability.
        t.name = t.tid == 0 ? "main"
                            : "thread-" + std::to_string(t.tid);
        tlsState = &t;
    }
    return *tlsState;
}

/**
 * Register (or look up) a metric; returns its definition. Name
 * collisions across kinds and over-cap registrations fall back to
 * the sink slot so a misconfigured call site can never corrupt
 * another metric.
 */
const MetricDef&
registerMetric(const std::string& name, Kind kind,
               std::vector<uint64_t> bounds)
{
    GlobalState& g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    static const MetricDef sink; // slot 0, 1 slot
    auto it = g.byName.find(name);
    if (it != g.byName.end()) {
        const MetricDef& d = g.defs[it->second];
        if (d.kind != kind || d.bounds != bounds) {
            ++g.droppedMetrics;
            return sink;
        }
        return d;
    }
    uint32_t nslots =
        kind == Kind::Counter ? 1 : uint32_t(bounds.size()) + 2;
    if (g.nextSlot + nslots > kMaxSlots) {
        ++g.droppedMetrics;
        return sink;
    }
    g.byName.emplace(name, uint32_t(g.defs.size()));
    g.defs.push_back(
        {name, kind, std::move(bounds), g.nextSlot, nslots});
    g.nextSlot += nslots;
    return g.defs.back();
}

void
copyTruncated(char* dst, size_t cap, const char* src)
{
    size_t n = std::min(cap - 1, std::strlen(src));
    std::memcpy(dst, src, n);
    dst[n] = '\0';
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

namespace detail {
std::atomic<bool> gEnabled{envEnabled().value_or(false)};
} // namespace detail

void
setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

std::optional<bool>
envEnabled()
{
    const char* v = std::getenv("DHDL_OBS");
    if (!v || !*v)
        return std::nullopt;
    std::string s(v);
    for (char& c : s)
        c = char(std::tolower(uint8_t(c)));
    if (s == "1" || s == "on" || s == "true" || s == "yes")
        return true;
    if (s == "0" || s == "off" || s == "false" || s == "no")
        return false;
    return std::nullopt;
}

uint64_t
nowMicros()
{
    return toMicros(std::chrono::steady_clock::now());
}

uint64_t
toMicros(std::chrono::steady_clock::time_point tp)
{
    auto d = tp - G().epoch;
    auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(d)
            .count();
    return us > 0 ? uint64_t(us) : 0;
}

uint32_t
threadId()
{
    return ts().tid;
}

void
setThreadName(const std::string& name)
{
    ThreadState& t = ts();
    std::lock_guard<std::mutex> lock(G().mu);
    t.name = name;
}

std::string
threadName()
{
    ThreadState& t = ts();
    std::lock_guard<std::mutex> lock(G().mu);
    return t.name;
}

// ---------------------------------------------------------------- metrics

Counter::Counter(const std::string& name)
    : slot_(registerMetric(name, Kind::Counter, {}).slot)
{
}

void
Counter::add(uint64_t n) const
{
    if (!enabled())
        return;
    ts().slots[slot_].fetch_add(n, std::memory_order_relaxed);
}

Gauge::Gauge(const std::string& name)
{
    GlobalState& g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    auto it = g.gaugeByName.find(name);
    if (it != g.gaugeByName.end()) {
        id_ = it->second;
        return;
    }
    id_ = uint32_t(g.gauges.size());
    g.gauges.emplace_back(0);
    g.gaugeNames.push_back(name);
    g.gaugeByName.emplace(name, id_);
}

void
Gauge::set(int64_t v) const
{
    if (!enabled())
        return;
    G().gauges[id_].store(v, std::memory_order_relaxed);
}

void
Gauge::add(int64_t delta) const
{
    if (!enabled())
        return;
    G().gauges[id_].fetch_add(delta, std::memory_order_relaxed);
}

Histogram::Histogram(const std::string& name,
                     std::vector<uint64_t> bounds)
{
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()),
                 bounds.end());
    const MetricDef& d =
        registerMetric(name, Kind::Histogram, std::move(bounds));
    slot_ = d.slot;
    nbounds_ = uint32_t(d.bounds.size());
    bounds_ = &d.bounds;
}

void
Histogram::observe(uint64_t v) const
{
    if (!enabled())
        return;
    ThreadState& t = ts();
    if (slot_ == kSinkSlot) { // sunk registration
        t.slots[kSinkSlot].fetch_add(1, std::memory_order_relaxed);
        return;
    }
    // Bucket = first edge >= v; nbounds_ = the overflow bucket.
    uint32_t b = uint32_t(
        std::lower_bound(bounds_->begin(), bounds_->end(), v) -
        bounds_->begin());
    t.slots[slot_ + b].fetch_add(1, std::memory_order_relaxed);
    t.slots[slot_ + nbounds_ + 1].fetch_add(
        v, std::memory_order_relaxed); // sum slot
}

void
addCounter(const std::string& name, uint64_t n)
{
    if (!enabled())
        return;
    Counter(name).add(n);
}

uint64_t
MetricsSnapshot::counter(const std::string& name) const
{
    for (const auto& [n, v] : counters) {
        if (n == name)
            return v;
    }
    return 0;
}

MetricsSnapshot
snapshotMetrics()
{
    GlobalState& g = G();
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(g.mu);

    auto sumSlot = [&](uint32_t slot) {
        uint64_t total = 0;
        for (const ThreadState& t : g.threads)
            total += t.slots[slot].load(std::memory_order_relaxed);
        return total;
    };

    for (const MetricDef& d : g.defs) {
        if (d.kind == Kind::Counter) {
            snap.counters.emplace_back(d.name, sumSlot(d.slot));
        } else {
            HistogramSnapshot h;
            h.name = d.name;
            h.bounds = d.bounds;
            h.counts.resize(d.bounds.size() + 1);
            for (size_t b = 0; b < h.counts.size(); ++b) {
                h.counts[b] = sumSlot(d.slot + uint32_t(b));
                h.count += h.counts[b];
            }
            h.sum = sumSlot(d.slot + uint32_t(d.bounds.size()) + 1);
            snap.histograms.push_back(std::move(h));
        }
    }
    if (g.droppedMetrics > 0)
        snap.counters.emplace_back("obs.metrics.dropped",
                                   g.droppedMetrics);
    for (size_t i = 0; i < g.gauges.size(); ++i)
        snap.gauges.emplace_back(
            g.gaugeNames[i],
            g.gauges[i].load(std::memory_order_relaxed));

    auto byName = [](const auto& a, const auto& b) {
        return a.first < b.first;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), byName);
    std::sort(snap.gauges.begin(), snap.gauges.end(), byName);
    std::sort(snap.histograms.begin(), snap.histograms.end(),
              [](const HistogramSnapshot& a,
                 const HistogramSnapshot& b) { return a.name < b.name; });
    return snap;
}

void
resetMetrics()
{
    GlobalState& g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    for (ThreadState& t : g.threads) {
        for (auto& s : t.slots)
            s.store(0, std::memory_order_relaxed);
    }
    for (auto& gauge : g.gauges)
        gauge.store(0, std::memory_order_relaxed);
    g.droppedMetrics = 0;
}

void
MetricsSnapshot::writeJson(std::ostream& os) const
{
    os << "{\n  \"counters\": {";
    for (size_t i = 0; i < counters.size(); ++i)
        os << (i ? "," : "") << "\n    \""
           << jsonEscape(counters[i].first)
           << "\": " << counters[i].second;
    os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    for (size_t i = 0; i < gauges.size(); ++i)
        os << (i ? "," : "") << "\n    \""
           << jsonEscape(gauges[i].first)
           << "\": " << gauges[i].second;
    os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    for (size_t i = 0; i < histograms.size(); ++i) {
        const HistogramSnapshot& h = histograms[i];
        os << (i ? "," : "") << "\n    \"" << jsonEscape(h.name)
           << "\": {\"bounds\": [";
        for (size_t b = 0; b < h.bounds.size(); ++b)
            os << (b ? "," : "") << h.bounds[b];
        os << "], \"counts\": [";
        for (size_t b = 0; b < h.counts.size(); ++b)
            os << (b ? "," : "") << h.counts[b];
        os << "], \"count\": " << h.count << ", \"sum\": " << h.sum
           << "}";
    }
    os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

void
MetricsSnapshot::renderText(std::ostream& os) const
{
    size_t width = 0;
    for (const auto& [n, v] : counters)
        width = std::max(width, n.size());
    for (const auto& [n, v] : gauges)
        width = std::max(width, n.size());
    auto pad = [&](const std::string& n) {
        os << "  " << n << std::string(width + 2 - n.size(), ' ');
    };
    os << "obs profile (merged over all threads):\n";
    for (const auto& [n, v] : counters) {
        pad(n);
        os << v;
        // Microsecond totals get a human-scale echo.
        if (n.size() > 3 && n.compare(n.size() - 3, 3, ".us") == 0)
            os << "  (" << double(v) / 1e3 << " ms)";
        os << "\n";
    }
    for (const auto& [n, v] : gauges) {
        pad(n);
        os << v << " (gauge)\n";
    }
    for (const HistogramSnapshot& h : histograms) {
        os << "  " << h.name << "  count=" << h.count
           << " mean=" << h.mean() << " sum=" << h.sum << "\n";
        if (h.count == 0)
            continue;
        os << "    ";
        for (size_t b = 0; b < h.counts.size(); ++b) {
            if (b)
                os << " ";
            if (b < h.bounds.size())
                os << "<=" << h.bounds[b];
            else
                os << ">" << (h.bounds.empty() ? 0 : h.bounds.back());
            os << ":" << h.counts[b];
        }
        os << "\n";
    }
}

namespace {

/** `dse.points.evaluated` → `dhdl_dse_points_evaluated`. */
std::string
promName(const std::string& name)
{
    std::string out = "dhdl_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

void
MetricsSnapshot::renderProm(std::ostream& os) const
{
    for (const auto& [n, v] : counters) {
        const std::string p = promName(n);
        os << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
    }
    for (const auto& [n, v] : gauges) {
        const std::string p = promName(n);
        os << "# TYPE " << p << " gauge\n" << p << " " << v << "\n";
    }
    for (const HistogramSnapshot& h : histograms) {
        const std::string p = promName(h.name);
        os << "# TYPE " << p << " histogram\n";
        uint64_t cum = 0;
        for (size_t b = 0; b < h.counts.size(); ++b) {
            cum += h.counts[b];
            os << p << "_bucket{le=\"";
            if (b < h.bounds.size())
                os << h.bounds[b];
            else
                os << "+Inf";
            os << "\"} " << cum << "\n";
        }
        os << p << "_sum " << h.sum << "\n"
           << p << "_count " << h.count << "\n";
    }
}

// ---------------------------------------------------------------- tracing

void
recordSpan(const char* cat, const char* name, uint64_t tsMicros,
           uint64_t durMicros, int64_t arg)
{
    if (!enabled())
        return;
    ThreadState& t = ts();
    std::lock_guard<std::mutex> lock(t.traceMu);
    if (t.ring.empty())
        t.ring.resize(G().ringCap.load(std::memory_order_relaxed));
    TraceEvent& e = t.ring[t.next % t.ring.size()];
    copyTruncated(e.name, kTraceNameCap, name);
    copyTruncated(e.cat, kTraceCatCap, cat);
    e.ts = tsMicros;
    e.dur = durMicros;
    e.arg = arg;
    ++t.next;
}

TraceStats
traceStats()
{
    GlobalState& g = G();
    TraceStats s;
    std::lock_guard<std::mutex> lock(g.mu);
    for (ThreadState& t : g.threads) {
        std::lock_guard<std::mutex> tl(t.traceMu);
        s.recorded += t.next;
        s.retained += std::min<uint64_t>(t.next, t.ring.size());
    }
    s.dropped = s.recorded - s.retained;
    return s;
}

void
setRingCapacity(size_t events)
{
    G().ringCap.store(
        std::clamp(events, kMinRingCap, kMaxRingCap),
        std::memory_order_relaxed);
}

void
writeChromeTrace(std::ostream& os)
{
    GlobalState& g = G();
    std::lock_guard<std::mutex> lock(g.mu);

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    uint64_t dropped = 0;
    std::vector<TraceEvent> events;
    for (ThreadState& t : g.threads) {
        {
            std::lock_guard<std::mutex> tl(t.traceMu);
            uint64_t kept =
                std::min<uint64_t>(t.next, t.ring.size());
            dropped += t.next - kept;
            events.clear();
            events.reserve(size_t(kept));
            // Oldest retained event first.
            for (uint64_t i = t.next - kept; i < t.next; ++i)
                events.push_back(t.ring[i % t.ring.size()]);
        }
        if (events.empty())
            continue;
        std::stable_sort(events.begin(), events.end(),
                         [](const TraceEvent& a, const TraceEvent& b) {
                             return a.ts < b.ts;
                         });
        os << (first ? "" : ",") << "\n {\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << t.tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(t.name) << "\"}}";
        first = false;
        for (const TraceEvent& e : events) {
            os << ",\n {\"ph\":\"X\",\"pid\":1,\"tid\":" << t.tid
               << ",\"cat\":\"" << jsonEscape(e.cat)
               << "\",\"name\":\"" << jsonEscape(e.name)
               << "\",\"ts\":" << e.ts << ",\"dur\":" << e.dur;
            if (e.arg >= 0)
                os << ",\"args\":{\"i\":" << e.arg << "}";
            os << "}";
        }
    }
    os << "\n],\"otherData\":{\"droppedEvents\":" << dropped
       << "}}\n";
}

void
resetTrace()
{
    GlobalState& g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    for (ThreadState& t : g.threads) {
        std::lock_guard<std::mutex> tl(t.traceMu);
        t.next = 0;
    }
}

} // namespace dhdl::obs

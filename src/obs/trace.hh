/**
 * @file
 * Structured tracing: scoped spans recorded into per-thread ring
 * buffers and exported as Chrome-trace JSON (loadable in Perfetto /
 * chrome://tracing). A span is one complete "X" event — name,
 * category, start timestamp, duration, thread id, optional integer
 * argument (the explorer stores the design-point index).
 *
 * Ring buffers are fixed-capacity per thread: when a sweep records
 * more events than fit, the oldest are overwritten and the export
 * reports how many were dropped. Each buffer is written only by its
 * owning thread under a per-thread mutex that the exporter takes
 * when draining — uncontended in steady state, so recording stays
 * O(copy one small struct).
 *
 * Instrument with the DHDL_OBS_SPAN macro (compiles to nothing under
 * -DDHDL_OBS_DISABLE), or call recordSpan() directly when the
 * timestamps already exist — the evaluator reuses the clock reads it
 * takes for StageTimes, so tracing adds no extra clock calls on the
 * hot path.
 */

#ifndef DHDL_OBS_TRACE_HH
#define DHDL_OBS_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/obs.hh"

namespace dhdl::obs {

/** Max bytes (incl. NUL) of a span name / category kept per event. */
constexpr size_t kTraceNameCap = 48;
constexpr size_t kTraceCatCap = 16;

/** One completed span in a ring buffer (POD, no heap). */
struct TraceEvent {
    char name[kTraceNameCap];
    char cat[kTraceCatCap];
    uint64_t ts = 0;  //!< Start, trace-clock micros.
    uint64_t dur = 0; //!< Duration, micros.
    int64_t arg = -1; //!< Rendered as args:{"i":...} when >= 0.
};

/**
 * Record a completed span with caller-supplied timestamps. No-op
 * while disabled. `name`/`cat` are truncated to the event caps.
 */
void recordSpan(const char* cat, const char* name, uint64_t tsMicros,
                uint64_t durMicros, int64_t arg = -1);

/** RAII span: times its own scope on the trace clock. */
class TraceSpan
{
  public:
    TraceSpan(const char* cat, const char* name)
        : cat_(cat), name_(name),
          start_(enabled() ? nowMicros() : kInactive)
    {
    }

    /** Dynamic names (pass names): pointer must outlive the span. */
    TraceSpan(const char* cat, const std::string& name)
        : TraceSpan(cat, name.c_str())
    {
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    /** Attach the integer argument emitted with the event. */
    void setArg(int64_t arg) { arg_ = arg; }

    ~TraceSpan()
    {
        if (start_ != kInactive)
            recordSpan(cat_, name_, start_, nowMicros() - start_,
                       arg_);
    }

  private:
    static constexpr uint64_t kInactive = ~uint64_t(0);

    const char* cat_;
    const char* name_;
    uint64_t start_;
    int64_t arg_ = -1;
};

/** Occupancy/drop accounting across all thread ring buffers. */
struct TraceStats {
    uint64_t recorded = 0; //!< Events ever recorded.
    uint64_t retained = 0; //!< Events currently held.
    uint64_t dropped = 0;  //!< Overwritten by ring wraparound.
};

TraceStats traceStats();

/**
 * Ring capacity (events per thread) for buffers created after the
 * call; existing buffers keep their size. Also settable via the
 * DHDL_OBS_RING environment variable. Values are clamped to
 * [64, 1<<20]. Default: 16384.
 */
void setRingCapacity(size_t events);

/**
 * Export everything recorded so far as one Chrome-trace JSON object
 * ({"displayTimeUnit":"ms","traceEvents":[...]}), with thread-name
 * metadata events so Perfetto labels rows "worker-N". Events are
 * emitted per thread in timestamp order.
 */
void writeChromeTrace(std::ostream& os);

/** Drop all recorded events (buffers stay allocated). Tests only. */
void resetTrace();

} // namespace dhdl::obs

// Scoped-span convenience macro; strips to nothing when obs is
// compiled out so instrumented hot paths carry zero residue.
#ifndef DHDL_OBS_DISABLE
#define DHDL_OBS_CONCAT_IMPL(a, b) a##b
#define DHDL_OBS_CONCAT(a, b) DHDL_OBS_CONCAT_IMPL(a, b)
#define DHDL_OBS_SPAN(cat, name)                                      \
    ::dhdl::obs::TraceSpan DHDL_OBS_CONCAT(obs_span_, __LINE__)(cat,  \
                                                                name)
#else
#define DHDL_OBS_SPAN(cat, name)                                      \
    do {                                                              \
    } while (0)
#endif

#endif // DHDL_OBS_TRACE_HH

/**
 * dhdld — the persistent DSE-as-a-service daemon (src/serve).
 *
 * Usage:
 *   dhdld [--port N] [--port-file FILE] [--executors N]
 *         [--threads T] [--cache-size N] [--max-queue N]
 *         [--tenant-jobs N] [--tenant-eval-budget N]
 *         [--max-points N] [--version]
 *
 * Binds a loopback TCP listener (an ephemeral port by default;
 * --port-file publishes the bound port for scripts and CI), prints
 * "dhdld listening on 127.0.0.1:PORT", and serves the line-delimited
 * JSON protocol until SIGTERM/SIGINT, which begin a graceful drain:
 * running jobs finish, streaming clients receive their final events,
 * new submissions are rejected with a structured admission
 * diagnostic. `GET /metrics` on the same port returns the metrics
 * registry in Prometheus exposition format. DHDL_OBS=ON additionally
 * enables span/metric recording inside jobs.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "estimate/area_estimator.hh"
#include "serve/server.hh"

using namespace dhdl;

namespace {

serve::Server* gServer = nullptr;

/** SIGTERM/SIGINT: requestStop() is async-signal-safe by contract. */
void
onSignal(int)
{
    if (gServer)
        gServer->requestStop();
}

int
usage()
{
    std::cerr << "usage: dhdld [--port N] [--port-file FILE]"
                 " [--executors N] [--threads T] [--cache-size N]"
                 " [--max-queue N] [--tenant-jobs N]"
                 " [--tenant-eval-budget N] [--max-points N]"
                 " [--version]"
              << std::endl;
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    serve::ServerConfig cfg;
    std::string portFile;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--version") {
            std::cout << "dhdld " << serve::versionString()
                      << " (protocol " << serve::kProtocolVersion
                      << ")\n";
            return 0;
        }
        if (i + 1 >= argc)
            return usage();
        const char* v = argv[++i];
        if (flag == "--port")
            cfg.port = std::atoi(v);
        else if (flag == "--port-file")
            portFile = v;
        else if (flag == "--executors")
            cfg.executors = std::atoi(v);
        else if (flag == "--threads")
            cfg.jobThreads = std::atoi(v);
        else if (flag == "--cache-size")
            cfg.cacheCapacity = size_t(std::atoll(v));
        else if (flag == "--max-queue")
            cfg.maxQueue = std::atoi(v);
        else if (flag == "--tenant-jobs")
            cfg.tenantMaxJobs = std::atoi(v);
        else if (flag == "--tenant-eval-budget")
            cfg.tenantEvalBudget = std::atoll(v);
        else if (flag == "--max-points")
            cfg.maxPointsPerJob = std::atoi(v);
        else
            return usage();
    }

    static est::RuntimeEstimator runtime;
    serve::Server server(est::calibratedEstimator(), runtime, cfg);
    if (Status st = server.start(); !st.ok()) {
        std::cerr << "dhdld: " << st.diag().str() << "\n";
        return 1;
    }
    gServer = &server;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    if (!portFile.empty()) {
        std::ofstream pf(portFile);
        pf << server.port() << "\n";
        if (!pf) {
            std::cerr << "dhdld: cannot write " << portFile << "\n";
            server.requestStop();
            server.wait();
            return 1;
        }
    }
    std::cout << "dhdld listening on 127.0.0.1:" << server.port()
              << std::endl; // endl: flush before callers parse it.

    server.wait();

    const serve::ServerCounters c = server.counters();
    const serve::PlanCache::Stats cs = server.cacheStats();
    std::cout << "dhdld drained: " << c.done << " done, " << c.failed
              << " failed, " << c.cancelled << " cancelled, "
              << c.rejected << " rejected; plan cache " << cs.hits
              << " hit(s) / " << cs.misses << " miss(es)"
              << std::endl;
    return 0;
}

/**
 * dhdlc — command-line driver for the DHDL framework.
 *
 * Usage:
 *   dhdlc list
 *   dhdlc explore <design> [--scale S] [--points N] [--top K]
 *                 [--threads T] [--time-budget SEC] [--seed SEED]
 *                 [--checkpoint FILE] [--resume] [--profile]
 *                 [--shard I/N] [--shards N] [--shard-timeout SEC]
 *                 [--retries R] [--trace FILE] [--metrics FILE]
 *   dhdlc merge <design> --shards N --checkpoint FILE
 *                 [--scale S] [--points N] [--seed SEED] [--top K]
 *   dhdlc report <design> [--scale S] [--points N]
 *   dhdlc emit <design> [--scale S] [--points N] [--out DIR]
 *   dhdlc emit-ir <design> [--scale S]
 *   dhdlc print <design> [--scale S]
 *   dhdlc calibrate [--out DIR]
 *   dhdlc submit <design> --server HOST:PORT [--tenant T]
 *                 [--points N] [--seed SEED] [--strategy ...]
 *                 [--follow]
 *   dhdlc status --server HOST:PORT --job ID
 *   dhdlc result --server HOST:PORT --job ID [--wait]
 *   dhdlc cancel --server HOST:PORT --job ID
 *   dhdlc --version
 *
 * The serving commands talk to a running `dhdld` daemon over its
 * line-delimited JSON protocol (src/serve). `submit` sends a design
 * by registry name, or — when given a `.dhdl` path — reads the file
 * here and ships the IR text, so the daemon never touches client
 * paths. `--follow` streams incremental Pareto-front updates as
 * search rounds complete. `status`/`result`/`cancel` poll, fetch
 * (`--wait` blocks until the job finishes) and cooperatively cancel.
 * Every exchange carries the protocol version; skew is rejected with
 * a structured version-mismatch diagnostic on both sides.
 *
 * <design> is either a benchmark name from `dhdlc list` or a path to
 * a `.dhdl` IR file (anything ending in ".dhdl"); both take the
 * identical pipeline. `explore` runs design space exploration and
 * prints the Pareto frontier; `report` additionally synthesizes +
 * simulates the best point (estimate vs ground truth); `emit` writes
 * the MaxJ kernel and manager for the best point; `emit-ir` writes
 * the canonical `.dhdl` serialization to stdout (round-trippable:
 * `dhdlc emit-ir gda > gda.dhdl && dhdlc explore gda.dhdl`); `print`
 * dumps the human-readable hierarchy; `calibrate` runs
 * characterization + ANN training and persists the calibration to
 * <DIR>/dhdl_calibration.txt (reloadable via
 * est::AreaEstimator(device, stream)).
 *
 * Every load — built or parsed — runs the standard analysis pass
 * pipeline (validate, fold-constants, dead-nodes, stats); pass
 * failures are reported as structured diagnostics and abort the
 * command.
 *
 * Observability (src/obs) flags, accepted by every command:
 *   --trace FILE    write a Chrome-trace / Perfetto JSON timeline
 *                   (per-thread spans: passes, DSE stages per point,
 *                   plan compile, sim, codegen)
 *   --metrics FILE  write the metrics registry snapshot as JSON
 *   --profile       print the same snapshot as text to stderr
 * Any of the three enables recording; so does DHDL_OBS=ON in the
 * environment. All three render one registry snapshot — there is no
 * separate timing plumbing.
 *
 * Sharded exploration (crash-safe distribution, DESIGN.md §10):
 *   --shard I/N     evaluate only shard I of an N-way deterministic
 *                   partition; the checkpoint goes to
 *                   <FILE>.shard-I-of-N
 *   --shards N      supervisor mode: launch all N shards of this
 *                   machine as subprocesses, watchdog + retry each
 *                   (--shard-timeout, --retries), then merge the
 *                   shard checkpoints and print the global result
 *   merge           reassemble shard checkpoints without running
 *                   anything; shards that are missing or belong to a
 *                   different run degrade to an explicit partial
 *                   merge
 *
 * Fault injection (chaos testing): DHDL_FAULT=point=value[,...] in
 * the environment arms crash/hang/torn-write/corrupt-record seams
 * (src/core/faultinject.hh); dhdlc is the only place that reads it.
 */

#include <cstdio>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "apps/apps.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "codegen/maxj.hh"
#include "core/faultinject.hh"
#include "core/passes.hh"
#include "core/printer.hh"
#include "core/transform.hh"
#include "dse/explorer.hh"
#include "dse/shard.hh"
#include "dse/supervisor.hh"
#include "estimate/power_model.hh"
#include "fpga/toolchain.hh"
#include "serve/client.hh"
#include "sim/report.hh"
#include "sim/timing.hh"

using namespace dhdl;

namespace {

struct Args {
    std::string command;
    std::string benchmark;
    double scale = 1.0;
    int points = 2000;
    int top = 10;
    std::string out = ".";
    int threads = 1;
    int batch = -1; //!< -1 keeps the ExploreConfig default; 0 = scalar.
    double timeBudget = 0;
    std::string checkpoint;
    bool resume = false;
    bool profile = false;
    std::string trace;
    std::string metrics;
    long long seed = -1;   //!< -1 keeps the ExploreConfig default.
    long long checkpointEvery = 0; //!< 0 keeps the default cadence.
    std::string shard;     //!< "I/N": run one shard of a partition.
    int shards = 0;        //!< >0: supervise all N shards locally.
    double shardTimeout = 0; //!< Watchdog per shard attempt.
    int retries = 2;       //!< Supervisor retries per shard.
    std::string strategy;  //!< "random" (default) or "surrogate".
    int initialPoints = 0; //!< >0 overrides the surrogate seed round.
    int maxRounds = 0;     //!< >0 caps surrogate rounds.
    std::string saveModel; //!< Persist the trained surrogate bundle.
    std::string loadModel; //!< Warm-start from a saved bundle.
    std::string server;    //!< dhdld address ("host:port" or "port").
    std::string tenant;    //!< Tenant id for serving admission.
    long long job = -1;    //!< Job id for status/result/cancel.
    bool follow = false;   //!< Stream round events on submit.
    bool wait = false;     //!< Block in `result` until finished.
    bool version = false;  //!< Print version + protocol and exit.
};

/**
 * The one flag table: each entry carries the flag name, its operand
 * placeholder (nullptr for booleans) and the setter. parse() and
 * usage() both walk it, so adding a flag is one line and the two can
 * never disagree — the historical per-flag if/else blocks duplicated
 * every name three times.
 */
struct FlagDef {
    const char* name;
    const char* operand; //!< e.g. "N"; nullptr = boolean flag.
    std::function<void(Args&, const char*)> set;
};

const std::vector<FlagDef>&
flagTable()
{
    auto num = [](int Args::* f) {
        return [f](Args& a, const char* v) { a.*f = std::atoi(v); };
    };
    auto lnum = [](long long Args::* f) {
        return [f](Args& a, const char* v) { a.*f = std::atoll(v); };
    };
    auto fnum = [](double Args::* f) {
        return [f](Args& a, const char* v) { a.*f = std::atof(v); };
    };
    auto str = [](std::string Args::* f) {
        return [f](Args& a, const char* v) { a.*f = v; };
    };
    auto flag = [](bool Args::* f) {
        return [f](Args& a, const char*) { a.*f = true; };
    };
    static const std::vector<FlagDef> table = {
        {"--scale", "S", fnum(&Args::scale)},
        {"--points", "N", num(&Args::points)},
        {"--top", "K", num(&Args::top)},
        {"--out", "DIR", str(&Args::out)},
        {"--threads", "T", num(&Args::threads)},
        {"--batch", "B", num(&Args::batch)},
        {"--time-budget", "SEC", fnum(&Args::timeBudget)},
        {"--seed", "SEED", lnum(&Args::seed)},
        {"--checkpoint", "FILE", str(&Args::checkpoint)},
        {"--checkpoint-every", "N", lnum(&Args::checkpointEvery)},
        {"--resume", nullptr, flag(&Args::resume)},
        {"--shard", "I/N", str(&Args::shard)},
        {"--shards", "N", num(&Args::shards)},
        {"--shard-timeout", "SEC", fnum(&Args::shardTimeout)},
        {"--retries", "R", num(&Args::retries)},
        {"--strategy", "random|surrogate", str(&Args::strategy)},
        {"--initial-points", "N", num(&Args::initialPoints)},
        {"--max-rounds", "R", num(&Args::maxRounds)},
        {"--save-model", "FILE", str(&Args::saveModel)},
        {"--load-model", "FILE", str(&Args::loadModel)},
        {"--server", "HOST:PORT", str(&Args::server)},
        {"--tenant", "NAME", str(&Args::tenant)},
        {"--job", "ID", lnum(&Args::job)},
        {"--follow", nullptr, flag(&Args::follow)},
        {"--wait", nullptr, flag(&Args::wait)},
        {"--profile", nullptr, flag(&Args::profile)},
        {"--trace", "FILE", str(&Args::trace)},
        {"--metrics", "FILE", str(&Args::metrics)},
        {"--version", nullptr, flag(&Args::version)},
    };
    return table;
}

int
usage()
{
    std::cerr << "usage: dhdlc "
                 "<list|print|explore|merge|report|emit|emit-ir|"
                 "calibrate|submit|status|result|cancel> "
                 "[benchmark|file.dhdl]";
    for (const FlagDef& f : flagTable()) {
        std::cerr << " [" << f.name;
        if (f.operand)
            std::cerr << " " << f.operand;
        std::cerr << "]";
    }
    std::cerr << "\n       dhdlc --version" << std::endl;
    return 2;
}

bool
parse(int argc, char** argv, Args& args)
{
    if (argc < 2)
        return false;
    args.command = argv[1];
    int i = 2;
    if (args.command == "--version") {
        args.version = true;
        i = 1; // No command; still parse any remaining flags.
    }
    if (i < argc && argv[i][0] != '-')
        args.benchmark = argv[i++];
    for (; i < argc; ++i) {
        const FlagDef* def = nullptr;
        for (const FlagDef& f : flagTable())
            if (f.name == std::string(argv[i]))
                def = &f;
        if (!def)
            return false;
        const char* v = nullptr;
        if (def->operand) {
            if (i + 1 >= argc)
                return false;
            v = argv[++i];
        }
        def->set(args, v);
    }
    return true;
}

/**
 * Everything dhdlc knows about the design it operates on: the graph
 * (built from a registry name or parsed from a `.dhdl` file) plus the
 * artifacts of the standard pass pipeline, which runs on every load
 * so files and built designs behave identically.
 */
struct Loaded {
    Graph graph;
    PassArtifacts art;
};

Loaded
load(const Args& args)
{
    Graph g = apps::loadGraph(args.benchmark, args.scale);
    DiagSink sink;
    PassContext ctx(sink);
    PassManager pm = standardPasses();
    Status st = pm.run(g, ctx);
    if (!st.ok()) {
        for (const auto& d : sink.snapshot())
            std::cerr << "dhdlc: " << d.str() << "\n";
        for (const auto& e : ctx.art.validationErrors)
            std::cerr << "dhdlc:   " << e << "\n";
        fatal("design '" + args.benchmark + "' failed the " +
                  "analysis pipeline",
              st.diag().code);
    }
    return Loaded{std::move(g), std::move(ctx.art)};
}

/** Output stem: the graph name for files, the CLI name otherwise. */
std::string
designStem(const Args& args, const Graph& g)
{
    if (args.benchmark.size() > 5 &&
        args.benchmark.compare(args.benchmark.size() - 5, 5,
                               ".dhdl") == 0)
        return g.name();
    return args.benchmark;
}

void
printBinding(const Graph& g, const ParamBinding& b)
{
    for (size_t i = 0; i < g.params().size(); ++i)
        std::cout << (i ? " " : "") << g.params()[ParamId(i)].name
                  << "=" << b.values[i];
}

/**
 * The one ExploreConfig builder every command shares: shard runs,
 * the supervisor and `merge` must all derive the identical global
 * sample set, so they must all come through here.
 */
dse::ExploreConfig
makeConfig(const Args& args)
{
    dse::ExploreConfig cfg;
    cfg.maxPoints = args.points;
    cfg.threads = args.threads;
    if (args.batch >= 0)
        cfg.batchSize = args.batch;
    cfg.timeBudgetSeconds = args.timeBudget;
    cfg.checkpointPath = args.checkpoint;
    cfg.resume = args.resume;
    if (args.seed >= 0)
        cfg.seed = uint64_t(args.seed);
    if (args.checkpointEvery > 0)
        cfg.checkpointEvery = args.checkpointEvery;
    if (!args.strategy.empty()) {
        if (args.strategy == "random")
            cfg.strategy = dse::StrategyKind::Random;
        else if (args.strategy == "surrogate")
            cfg.strategy = dse::StrategyKind::Surrogate;
        else
            fatal("unknown --strategy '" + args.strategy +
                      "' (random|surrogate)",
                  DiagCode::UserError);
    }
    if (args.initialPoints > 0)
        cfg.surrogate.initialPoints = args.initialPoints;
    if (args.maxRounds > 0)
        cfg.surrogate.maxRounds = args.maxRounds;
    cfg.surrogate.saveModelPath = args.saveModel;
    cfg.surrogate.loadModelPath = args.loadModel;
    if (!args.shard.empty()) {
        dse::ShardSpec spec;
        Status st = dse::parseShard(args.shard, spec);
        if (!st.ok())
            fatal(st.diag().message, st.diag().code);
        cfg.shardIndex = spec.index;
        cfg.shardCount = spec.count;
        // Each shard checkpoints to its own file next to the base
        // path, so concurrent shards never contend on one file and
        // merge knows where to look.
        if (!args.checkpoint.empty())
            cfg.checkpointPath = dse::shardCheckpointPath(
                args.checkpoint, spec.index, spec.count);
    }
    return cfg;
}

dse::ExploreResult
explore(const Graph& g, const Args& args)
{
    static est::RuntimeEstimator rt;
    dse::Explorer ex(est::calibratedEstimator(), rt);
    return ex.explore(g, makeConfig(args));
}

/** One-line sweep health summary: evaluated/failed/valid/Pareto. */
void
printStats(const dse::ExploreResult& res)
{
    const auto& s = res.stats;
    std::cout << s.total << " points sampled";
    if (s.requested && s.total < s.requested)
        std::cout << " (of " << s.requested
                  << " requested; sampling shortfall)";
    std::cout << ", " << s.evaluated << " evaluated";
    if (s.resumed)
        std::cout << " (" << s.resumed << " from checkpoint)";
    if (s.skipped) {
        std::cout << ", " << s.skipped << " un-evaluated";
        if (s.timeBudgetHit || s.evalBudgetHit)
            std::cout << " (" << (s.timeBudgetHit ? "time" : "eval")
                      << " budget)";
    }
    std::cout << ", " << s.failed << " failed, " << s.valid
              << " valid, " << res.pareto.size()
              << " Pareto-optimal\n";
    if (s.failed) {
        std::cout << "top failure reasons:\n";
        for (const auto& [label, count] : res.failureSummary())
            std::cout << "  " << count << "x " << label << "\n";
    }
    for (const auto& d : res.diags) {
        if (d.severity == DiagSeverity::Warning)
            std::cout << "note: " << d.str() << "\n";
    }
}

int
cmdList()
{
    std::cout << "benchmarks (Table II):\n";
    for (const auto& app : apps::allApps())
        std::cout << "  " << app.name << "\n";
    std::cout << "  conv2d\n";
    return 0;
}

int
cmdPrint(const Args& args)
{
    Loaded l = load(args);
    std::cout << printGraph(l.graph);
    const auto& stats = l.art.stats;
    std::cout << "\n# controllers=" << stats.controllers
              << " pipes=" << stats.pipes
              << " metapipes=" << stats.metaPipes
              << " memories=" << stats.memories
              << " transfers=" << stats.transfers
              << " primitives=" << stats.primitives
              << " depth=" << stats.maxDepth
              << " params=" << stats.params << "\n";
    return 0;
}

int
cmdEmitIR(const Args& args)
{
    Loaded l = load(args);
    std::cout << emitIR(l.graph);
    return 0;
}

void
printPareto(const Graph& g, const dse::ExploreResult& res, int top)
{
    const auto& dev = est::calibratedEstimator().device();
    int shown = 0;
    for (size_t idx : res.pareto) {
        if (shown++ >= top)
            break;
        const auto& p = res.points[idx];
        std::cout << "cycles=" << int64_t(p.cycles)
                  << " alm=" << int64_t(100.0 * p.area.alms /
                                        double(dev.alms))
                  << "% bram=" << int64_t(100.0 * p.area.brams /
                                          double(dev.m20ks))
                  << "%  [";
        printBinding(g, p.binding);
        std::cout << "]\n";
    }
}

/** Path of this binary, for relaunching ourselves as shard workers. */
std::string
selfExe(const char* argv0)
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

const char* gArgv0 = "dhdlc";

/**
 * Supervisor mode (`--shards N`): run every shard of this design as
 * a watched subprocess of this same binary, retrying crashed or hung
 * shards with backoff, then merge whatever completed. A permanently
 * failed shard degrades the merge to partial — reported, not fatal.
 */
int
cmdSupervise(const Args& args)
{
    require(!args.checkpoint.empty(),
            "--shards needs --checkpoint (shard files derive from it)");
    require(args.shards >= 1, "--shards must be >= 1");
    Loaded l = load(args); // Validate the design before spawning.

    const std::string exe = selfExe(gArgv0);
    std::vector<dse::SupervisorTask> tasks;
    for (int s = 0; s < args.shards; ++s) {
        dse::SupervisorTask t;
        const std::string spec =
            std::to_string(s) + "/" + std::to_string(args.shards);
        t.argv = {exe,
                  "explore",
                  args.benchmark,
                  "--scale",
                  std::to_string(args.scale),
                  "--points",
                  std::to_string(args.points),
                  "--threads",
                  std::to_string(args.threads),
                  "--shard",
                  spec,
                  "--checkpoint",
                  args.checkpoint,
                  "--resume"};
        if (args.seed >= 0) {
            t.argv.push_back("--seed");
            t.argv.push_back(std::to_string(args.seed));
        }
        if (args.batch >= 0) {
            t.argv.push_back("--batch");
            t.argv.push_back(std::to_string(args.batch));
        }
        if (args.checkpointEvery > 0) {
            t.argv.push_back("--checkpoint-every");
            t.argv.push_back(std::to_string(args.checkpointEvery));
        }
        if (args.timeBudget > 0) {
            t.argv.push_back("--time-budget");
            t.argv.push_back(std::to_string(args.timeBudget));
        }
        if (!args.strategy.empty()) {
            t.argv.push_back("--strategy");
            t.argv.push_back(args.strategy);
        }
        if (args.initialPoints > 0) {
            t.argv.push_back("--initial-points");
            t.argv.push_back(std::to_string(args.initialPoints));
        }
        if (args.maxRounds > 0) {
            t.argv.push_back("--max-rounds");
            t.argv.push_back(std::to_string(args.maxRounds));
        }
        t.logPath = dse::shardCheckpointPath(args.checkpoint, s,
                                             args.shards) +
                    ".log";
        t.label = "shard " + spec;
        tasks.push_back(std::move(t));
    }

    dse::SupervisorConfig sc;
    sc.timeoutSeconds = args.shardTimeout;
    sc.maxRetries = args.retries;
    sc.jitterSeed = args.seed >= 0 ? uint64_t(args.seed) : 0xD5Eull;
    auto sup = dse::runSupervised(tasks, sc);
    for (const auto& t : sup.tasks)
        std::cout << (t.succeeded ? "done: " : "FAILED: ") << t.detail
                  << "\n";
    if (sup.retries)
        std::cout << sup.retries << " retried attempt(s), "
                  << sup.timeouts << " watchdog timeout(s)\n";

    auto merged = dse::mergeShards(l.graph, makeConfig(args),
                                   args.shards, args.checkpoint);
    if (!merged.complete()) {
        std::cout << "partial merge; missing shard(s):";
        for (int s : merged.missingShards)
            std::cout << " " << s;
        std::cout << "\n";
    }
    printStats(merged.result);
    printPareto(l.graph, merged.result, args.top);
    return merged.complete() && sup.allSucceeded() ? 0 : 1;
}

int
cmdExplore(const Args& args)
{
    if (args.shards > 0)
        return cmdSupervise(args);
    Loaded l = load(args);
    auto res = explore(l.graph, args);
    printStats(res);
    printPareto(l.graph, res, args.top);
    return 0;
}

/**
 * Merge shard checkpoints into the global result without evaluating
 * anything — the off-machine half of a distributed sweep.
 */
int
cmdMerge(const Args& args)
{
    require(!args.checkpoint.empty(), "merge needs --checkpoint");
    require(args.shards >= 1, "merge needs --shards N");
    Loaded l = load(args);
    auto merged = dse::mergeShards(l.graph, makeConfig(args),
                                   args.shards, args.checkpoint);
    if (!merged.complete()) {
        std::cout << "partial merge; missing shard(s):";
        for (int s : merged.missingShards)
            std::cout << " " << s;
        std::cout << "\n";
    }
    printStats(merged.result);
    printPareto(l.graph, merged.result, args.top);
    return merged.complete() ? 0 : 1;
}

int
cmdReport(const Args& args)
{
    Loaded l = load(args);
    auto res = explore(l.graph, args);
    auto best = res.bestIndex();
    if (!best) {
        printStats(res);
        std::cerr << "no valid design found\n";
        return 1;
    }
    const auto& p = res.points[*best];
    Inst inst(l.graph, p.binding);
    auto truth = est::defaultToolchain().synthesize(inst);
    auto timed = sim::TimingSim(inst).run();

    std::cout << "best design: [";
    printBinding(l.graph, p.binding);
    std::cout << "]\n";
    std::cout << "             estimate      synthesized/simulated\n";
    std::cout << "ALMs     " << int64_t(p.area.alms) << "  vs  "
              << int64_t(truth.alms) << "\n";
    std::cout << "DSPs     " << int64_t(p.area.dsps) << "  vs  "
              << int64_t(truth.dsps) << "\n";
    std::cout << "BRAMs    " << int64_t(p.area.brams) << "  vs  "
              << int64_t(truth.brams) << "\n";
    std::cout << "cycles   " << int64_t(p.cycles) << "  vs  "
              << int64_t(timed.cycles) << "\n";
    std::cout << "power    "
              << int64_t(
                     est::calibratedPowerEstimator().estimateMw(inst))
              << "  vs  " << int64_t(truth.powerMw) << " mW\n";
    std::cout << "runtime  " << timed.seconds * 1e3
              << " ms at 150 MHz\n\n";
    std::cout << sim::timingReport(inst);
    return 0;
}

int
cmdEmit(const Args& args)
{
    Loaded l = load(args);
    auto res = explore(l.graph, args);
    auto best = res.bestIndex();
    if (!best) {
        printStats(res);
        std::cerr << "no valid design found\n";
        return 1;
    }
    Inst inst(l.graph, res.points[*best].binding);
    std::string stem = designStem(args, l.graph);
    std::string kpath = args.out + "/" + stem + ".maxj";
    std::string mpath = args.out + "/" + stem + "Manager.maxj";
    std::ofstream(kpath) << codegen::emitMaxj(inst);
    std::ofstream(mpath) << codegen::emitMaxjManager(inst);
    std::cout << "wrote " << kpath << " and " << mpath << "\n";
    return 0;
}

/** Exit path for client-side failures (transport, handshake). */
int
clientFail(const Status& st)
{
    std::cerr << "dhdlc: " << st.diag().str() << "\n";
    return 1;
}

/** Connect + handshake; shared by every serving command. */
int
clientConnect(const Args& args, serve::Client& c)
{
    require(!args.server.empty(),
            "serving commands need --server HOST:PORT");
    if (Status st = c.connect(args.server); !st.ok())
        return clientFail(st);
    if (Status st = c.hello(); !st.ok())
        return clientFail(st);
    return 0;
}

/** A one-line human summary of a server-side result object. */
void
printRemoteResult(const serve::Json& result)
{
    const serve::Json* stats = result.find("stats");
    const serve::Json* front = result.find("front");
    if (!stats)
        return;
    auto n = [&](const char* k) {
        const serve::Json* v = stats->find(k);
        return v ? v->asInt() : 0;
    };
    std::cout << n("sampled") << " points sampled";
    const serve::Json* shortfall = stats->find("shortfall");
    if (shortfall && shortfall->asBool())
        std::cout << " (of " << n("requested")
                  << " requested; sampling shortfall)";
    std::cout << ", " << n("evaluated") << " evaluated, "
              << n("failed") << " failed, " << n("valid")
              << " valid, " << (front ? front->items().size() : 0)
              << " Pareto-optimal\n";
    if (const serve::Json* warns = result.find("warnings"))
        for (const serve::Json& w : warns->items())
            if (const serve::Json* m = w.find("message"))
                std::cout << "note: " << m->asString() << "\n";
}

int
cmdSubmit(const Args& args)
{
    require(!args.benchmark.empty(),
            "submit needs a benchmark name or .dhdl file");
    serve::Client c;
    if (int rc = clientConnect(args, c))
        return rc;

    serve::Json req = serve::Json::object();
    req.set("op", "submit");
    req.set("tenant", args.tenant.empty() ? "dhdlc" : args.tenant);
    if (args.benchmark.size() > 5 &&
        args.benchmark.compare(args.benchmark.size() - 5, 5,
                               ".dhdl") == 0) {
        // Ship the IR text: the daemon never reads client paths.
        std::ifstream in(args.benchmark);
        require(bool(in), "cannot read " + args.benchmark);
        std::ostringstream text;
        text << in.rdbuf();
        req.set("ir", text.str());
    } else {
        req.set("design", args.benchmark);
        req.set("scale", args.scale);
    }
    serve::Json cfg = serve::Json::object();
    cfg.set("points", args.points);
    if (args.seed >= 0)
        cfg.set("seed", args.seed);
    if (args.threads > 1)
        cfg.set("threads", args.threads);
    if (args.batch >= 0)
        cfg.set("batch", args.batch);
    if (args.timeBudget > 0)
        cfg.set("time_budget", args.timeBudget);
    if (!args.strategy.empty())
        cfg.set("strategy", args.strategy);
    if (args.initialPoints > 0)
        cfg.set("initial_points", args.initialPoints);
    if (args.maxRounds > 0)
        cfg.set("max_rounds", args.maxRounds);
    req.set("config", std::move(cfg));
    if (args.follow)
        req.set("stream", true);

    serve::Json resp;
    if (Status st = c.request(req, resp); !st.ok())
        return clientFail(st);
    const serve::Json* ok = resp.find("ok");
    if (!ok || !ok->asBool()) {
        std::cout << resp.render() << "\n";
        return 1;
    }
    const serve::Json* jobId = resp.find("job");
    const serve::Json* cached = resp.find("cached");
    std::cout << "job " << (jobId ? jobId->asInt() : -1)
              << " submitted"
              << (cached && cached->asBool() ? " (plan cache hit)"
                                             : "")
              << "\n";
    if (!args.follow)
        return 0;

    // Stream events until the final "done".
    while (true) {
        serve::Json ev;
        if (Status st = c.recv(ev); !st.ok())
            return clientFail(st);
        const serve::Json* kind = ev.find("event");
        if (!kind)
            continue;
        if (kind->asString() == "round") {
            auto n = [&](const char* k) {
                const serve::Json* v = ev.find(k);
                return v ? v->asInt() : 0;
            };
            std::cout << "round " << n("round") << ": "
                      << n("evaluated") << " evaluated, front size "
                      << n("front_size") << "\n";
            continue;
        }
        if (kind->asString() == "done") {
            const serve::Json* state = ev.find("state");
            std::cout << "job finished: "
                      << (state ? state->asString() : "?") << "\n";
            if (const serve::Json* result = ev.find("result"))
                printRemoteResult(*result);
            else if (const serve::Json* err = ev.find("error"))
                std::cout << "error: " << err->render() << "\n";
            return state && state->asString() == "done" ? 0 : 1;
        }
    }
}

/** status/result/cancel: one request referencing --job. */
int
cmdJobOp(const Args& args, const char* op)
{
    require(args.job >= 0,
            std::string(op) + " needs --job ID");
    serve::Client c;
    if (int rc = clientConnect(args, c))
        return rc;
    serve::Json req = serve::Json::object();
    req.set("op", op);
    req.set("job", args.job);
    if (std::string(op) == "result" && args.wait)
        req.set("wait", true);
    serve::Json resp;
    if (Status st = c.request(req, resp); !st.ok())
        return clientFail(st);
    std::cout << resp.render() << "\n";
    const serve::Json* ok = resp.find("ok");
    return ok && ok->asBool() ? 0 : 1;
}

int
runCommand(const Args& args)
{
    if (args.command == "list")
        return cmdList();
    if (args.command == "calibrate") {
        std::string path = args.out + "/dhdl_calibration.txt";
        std::ofstream out(path);
        est::calibratedEstimator().save(out);
        std::cout << "wrote " << path << "\n";
        return 0;
    }
    if (args.command == "status")
        return cmdJobOp(args, "status");
    if (args.command == "result")
        return cmdJobOp(args, "result");
    if (args.command == "cancel")
        return cmdJobOp(args, "cancel");
    if (args.benchmark.empty())
        return usage();
    if (args.command == "submit")
        return cmdSubmit(args);
    if (args.command == "print")
        return cmdPrint(args);
    if (args.command == "emit-ir")
        return cmdEmitIR(args);
    if (args.command == "explore")
        return cmdExplore(args);
    if (args.command == "merge")
        return cmdMerge(args);
    if (args.command == "report")
        return cmdReport(args);
    if (args.command == "emit")
        return cmdEmit(args);
    return usage();
}

/**
 * Per-round search breakdown from the metrics snapshot: one row per
 * `dse.round.<i>.*` counter group the driver recorded. Rendered only
 * when rounds exist (any explore records round 0, so the table shows
 * for every profiled sweep; surrogate runs get one row per round).
 */
void
renderRounds(const obs::MetricsSnapshot& snap, std::ostream& os)
{
    const uint64_t rounds = snap.counter("dse.round.count");
    if (!rounds)
        return;
    os << "search rounds:\n"
       << "  round      pool  proposed evaluated     front"
          "  propose(ms)    train(ms)     rank(ms)     eval(ms)\n";
    auto ms = [](uint64_t us) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.1f", double(us) / 1e3);
        return std::string(buf);
    };
    for (uint64_t r = 0; r < rounds; ++r) {
        const std::string p = "dse.round." + std::to_string(r) + ".";
        os << "  " << std::setw(5) << r << std::setw(10)
           << snap.counter(p + "pool") << std::setw(10)
           << snap.counter(p + "proposed") << std::setw(10)
           << snap.counter(p + "evaluated") << std::setw(10)
           << snap.counter(p + "front") << std::setw(13)
           << ms(snap.counter(p + "propose.us")) << std::setw(13)
           << ms(snap.counter(p + "train.us")) << std::setw(13)
           << ms(snap.counter(p + "rank.us")) << std::setw(13)
           << ms(snap.counter(p + "eval.us")) << "\n";
    }
}

/**
 * Flush observability output. Runs even when the command failed —
 * a trace of a run that died mid-pipeline is exactly the trace worth
 * keeping.
 */
void
finishObs(const Args& args)
{
    if (args.profile) {
        auto snap = obs::snapshotMetrics();
        snap.renderText(std::cerr);
        renderRounds(snap, std::cerr);
    }
    if (!args.metrics.empty()) {
        std::ofstream os(args.metrics);
        obs::snapshotMetrics().writeJson(os);
        if (os)
            std::cerr << "wrote metrics to " << args.metrics << "\n";
        else
            std::cerr << "dhdlc: cannot write metrics to "
                      << args.metrics << "\n";
    }
    if (!args.trace.empty()) {
        std::ofstream os(args.trace);
        obs::writeChromeTrace(os);
        if (os)
            std::cerr << "wrote trace to " << args.trace
                      << " (load at ui.perfetto.dev)\n";
        else
            std::cerr << "dhdlc: cannot write trace to " << args.trace
                      << "\n";
    }
}

} // namespace

int
main(int argc, char** argv)
{
    gArgv0 = argv[0];
    Args args;
    if (!parse(argc, argv, args))
        return usage();
    if (args.version) {
        std::cout << "dhdlc " << serve::versionString()
                  << " (protocol " << serve::kProtocolVersion
                  << ")\n";
        return 0;
    }
    if (args.profile || !args.trace.empty() || !args.metrics.empty())
        obs::setEnabled(true);
    // Chaos seams (DHDL_FAULT=...) are armed only here, at process
    // scope — library consumers and unit tests stay deterministic
    // unless they call fault::configure() themselves.
    fault::configureFromEnv();
    int rc;
    try {
        rc = runCommand(args);
    } catch (const std::exception& e) {
        std::cerr << "dhdlc: " << e.what() << "\n";
        rc = 1;
    }
    finishObs(args);
    return rc;
}

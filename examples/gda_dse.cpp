/**
 * GDA design space walkthrough — the paper's running example
 * (Figures 2-4). Prints the parameterized IR with all eight design
 * parameters (two tile sizes, four parallelization factors, two
 * MetaPipe toggles), explores the space, contrasts MetaPipe-on vs
 * MetaPipe-off points, and emits the MaxJ kernel for the best design.
 *
 * Build & run:  ./build/examples/gda_dse
 */

#include <iostream>

#include "apps/apps.hh"
#include "codegen/maxj.hh"
#include "core/printer.hh"
#include "dse/explorer.hh"

using namespace dhdl;

int
main()
{
    Design design = apps::buildGda({38400, 96});
    std::cout << "=== GDA in DHDL (Figure 4) ===\n"
              << printGraph(design.graph()) << "\n";

    est::RuntimeEstimator rt;
    dse::Explorer explorer(est::calibratedEstimator(), rt);

    // The two MetaPipe toggles are the design points HLS tools cannot
    // express (Section III-C); compare them directly.
    auto base = design.params().defaults();
    ParamId m1 = kNoParam, m2 = kNoParam;
    for (size_t i = 0; i < design.params().size(); ++i) {
        if (design.params()[ParamId(i)].name == "M1toggle")
            m1 = ParamId(i);
        if (design.params()[ParamId(i)].name == "M2toggle")
            m2 = ParamId(i);
    }
    std::cout << "=== MetaPipe toggles (Sequential vs MetaPipe) ===\n";
    for (int t1 : {0, 1}) {
        for (int t2 : {0, 1}) {
            auto b = base;
            b[m1] = t1;
            b[m2] = t2;
            auto p = explorer.evaluate(design.graph(), b);
            std::cout << "M1toggle=" << t1 << " M2toggle=" << t2
                      << "  cycles=" << int64_t(p.cycles)
                      << "  ALMs=" << int64_t(p.area.alms)
                      << "  BRAMs=" << int64_t(p.area.brams) << "\n";
        }
    }

    dse::ExploreConfig cfg;
    cfg.maxPoints = 2000;
    auto res = explorer.explore(design.graph(), cfg);
    std::cout << "\n=== Exploration ===\n"
              << res.points.size() << " legal points, "
              << res.pareto.size() << " Pareto-optimal\n";
    std::cout << "Pareto frontier (cycles vs ALMs):\n";
    for (size_t idx : res.pareto) {
        const auto& p = res.points[idx];
        std::cout << "  cycles=" << int64_t(p.cycles)
                  << "  ALMs=" << int64_t(p.area.alms) << "  [";
        for (size_t i = 0; i < design.params().size(); ++i) {
            if (i)
                std::cout << " ";
            std::cout << design.params()[ParamId(i)].name << "="
                      << p.binding.values[i];
        }
        std::cout << "]\n";
    }

    auto best = res.bestIndex();
    if (!best) {
        std::cout << "No valid design found for this device.\n";
        return 1;
    }
    Inst inst(design.graph(), res.points[*best].binding);
    std::cout << "\n=== MaxJ kernel for the best design (excerpt) "
                 "===\n";
    std::string maxj = codegen::emitMaxj(inst);
    std::cout << maxj.substr(0, 1500) << "\n... ("
              << maxj.size() << " bytes total)\n";
    return 0;
}

/**
 * Quickstart: the full DHDL flow on a dot product, in five steps —
 * describe the accelerator in the DSL, print its IR, estimate area
 * and runtime, explore the design space, and verify the selected
 * design computes the right answer with the functional simulator.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "apps/apps.hh"
#include "core/printer.hh"
#include "dse/explorer.hh"
#include "sim/functional.hh"
#include "sim/timing.hh"

using namespace dhdl;

int
main()
{
    // 1. Describe the accelerator (a parameterized DHDL design).
    const int64_t n = 96'000;
    Design design = apps::buildDotproduct({n});
    std::cout << "=== 1. DHDL IR ===\n"
              << printGraph(design.graph()) << "\n";

    // 2. Estimate one design point (the defaults).
    auto binding = design.params().defaults();
    Inst inst(design.graph(), binding);
    auto area = est::calibratedEstimator().estimate(inst);
    auto runtime = est::RuntimeEstimator().estimate(inst);
    std::cout << "=== 2. Estimates (default parameters) ===\n"
              << "ALMs:   " << int64_t(area.alms) << "\n"
              << "DSPs:   " << int64_t(area.dsps) << "\n"
              << "BRAMs:  " << int64_t(area.brams) << "\n"
              << "Cycles: " << int64_t(runtime.cycles) << " ("
              << runtime.seconds * 1e3 << " ms at 150 MHz)\n\n";

    // 3. Explore the design space.
    est::RuntimeEstimator rt;
    dse::Explorer explorer(est::calibratedEstimator(), rt);
    dse::ExploreConfig cfg;
    cfg.maxPoints = 500;
    auto result = explorer.explore(design.graph(), cfg);
    auto best = result.bestIndex();
    std::cout << "=== 3. Design space ===\n"
              << "Evaluated " << result.stats.evaluated
              << " legal points (" << result.stats.failed
              << " failed), Pareto front size "
              << result.pareto.size() << "\n";
    if (!best) {
        std::cout << "No valid design found for this device.\n";
        return 1;
    }
    std::cout << "Best design:";
    for (size_t i = 0; i < design.params().size(); ++i)
        std::cout << " " << design.params()[ParamId(i)].name << "="
                  << result.points[*best].binding.values[i];
    std::cout << "\nBest cycles: "
              << int64_t(result.points[*best].cycles) << "\n\n";

    // 4. Simulate the best design's timing in detail.
    Inst best_inst(design.graph(), result.points[*best].binding);
    auto timed = sim::TimingSim(best_inst).run();
    std::cout << "=== 4. Timing simulation ===\n"
              << "Simulated cycles: " << int64_t(timed.cycles)
              << "  (estimate was "
              << int64_t(result.points[*best].cycles) << ")\n\n";

    // 5. Execute functionally and check the result.
    sim::FunctionalSim fsim(best_inst);
    auto a = apps::randomVector(n, 1);
    auto b = apps::randomVector(n, 2);
    fsim.setOffchip("a", apps::toDouble(a));
    fsim.setOffchip("b", apps::toDouble(b));
    fsim.run();
    double expect = 0;
    for (int64_t i = 0; i < n; ++i)
        expect += double(a[size_t(i)]) * double(b[size_t(i)]);
    std::cout << "=== 5. Functional check ===\n"
              << "accelerator: " << fsim.regValue("out") << "\n"
              << "reference:   " << expect << "\n";
    return 0;
}

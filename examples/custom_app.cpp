/**
 * Writing your own accelerator — a 1-D convolution (FIR filter) that
 * is not one of the paper's benchmarks, built directly with the DHDL
 * DSL: tile the signal, keep the taps in a small BRAM, and explore
 * the tile-size / parallelism / MetaPipe space like any built-in app.
 *
 * Build & run:  ./build/examples/custom_app
 */

#include <cmath>
#include <iostream>

#include "core/builder.hh"
#include "core/printer.hh"
#include "core/validate.hh"
#include "dse/explorer.hh"
#include "sim/functional.hh"

using namespace dhdl;

namespace {

/** signal[n] (*) taps[k] -> out[n], zero-padded at the left edge. */
Design
buildFir(int64_t n, int64_t k)
{
    Design d("fir");
    ParamId ts = d.tileParam("tileSize", n, 0, 8192);
    ParamId par = d.parParam("innerPar", 96, 2);
    ParamId m1 = d.toggleParam("M1toggle");
    d.constrain(CExpr::p(ts) % CExpr::p(par) == 0);

    Mem sig = d.offchip("signal", DType::f32(), {Sym::c(n)});
    Mem taps = d.offchip("taps", DType::f32(), {Sym::c(k)});
    Mem out = d.offchip("out", DType::f32(), {Sym::c(n)});

    d.accel([&](Scope& s) {
        Mem taps_t = s.bram("tapsT", DType::f32(), {Sym::c(k)});
        s.tileLoad(taps, taps_t, {}, {Sym::c(k)});
        s.metaPipe(
            "M1", {ctr(n, Sym::p(ts))}, Sym::c(1), Sym::p(m1),
            [&](Scope& m, std::vector<Val> rv) {
                Mem sig_t =
                    m.bram("sigT", DType::f32(), {Sym::p(ts)});
                Mem out_t =
                    m.bram("outT", DType::f32(), {Sym::p(ts)});
                m.tileLoad(sig, sig_t, {rv[0]}, {Sym::p(ts)},
                           Sym::p(par));
                // acc(i) accumulated over taps with the
                // first-iteration mux idiom; out-of-range samples
                // (i < j) contribute zero. Tap-major order keeps the
                // accumulator address varying on the innermost axis,
                // so the RMW recurrence does not raise the II.
                m.pipe(
                    "P1", {ctr(k), ctr(Sym::p(ts))}, Sym::p(par),
                    [&](Scope& p, std::vector<Val> ij) {
                        Val j = ij[0];
                        Val i = ij[1];
                        Val first = p.binop(
                            Op::Eq, j,
                            p.constant(0.0, DType::i32()));
                        Val prev = p.load(out_t, {i});
                        Val zero = p.constant(0.0, DType::f32());
                        Val base = p.mux(first, zero, prev);
                        Val in_range = p.binop(Op::Ge, i - j, zero);
                        Val idx = p.mux(in_range, i - j, zero);
                        Val prod = p.load(sig_t, {idx}) *
                                   p.load(taps_t, {j});
                        Val term = p.mux(in_range, prod, zero);
                        p.store(out_t, {i}, base + term);
                    });
                m.tileStore(out, out_t, {rv[0]}, {Sym::p(ts)},
                            Sym::p(par));
            });
    });
    return d;
}

} // namespace

int
main()
{
    const int64_t n = 4096, k = 8;
    Design d = buildFir(n, k);
    validateOrThrow(d.graph());
    std::cout << printGraph(d.graph()) << "\n";

    // Explore.
    est::RuntimeEstimator rt;
    dse::Explorer explorer(est::calibratedEstimator(), rt);
    dse::ExploreConfig cfg;
    cfg.maxPoints = 400;
    auto res = explorer.explore(d.graph(), cfg);
    auto best = res.bestIndex();
    if (!best) {
        std::cout << "No valid design found for this device.\n";
        return 1;
    }
    std::cout << "Explored " << res.points.size()
              << " points; best cycles = "
              << int64_t(res.points[*best].cycles) << "\n";

    // Verify against a scalar reference (within one tile, so the
    // zero-padding at tile boundaries matches the reference).
    Inst inst(d.graph(), d.params().defaults());
    sim::FunctionalSim sim(inst);
    std::vector<double> signal(static_cast<size_t>(n));
    std::vector<double> taps(static_cast<size_t>(k));
    for (int64_t i = 0; i < n; ++i)
        signal[size_t(i)] = std::sin(double(i) * 0.01);
    for (int64_t j = 0; j < k; ++j)
        taps[size_t(j)] = 1.0 / double(j + 1);
    sim.setOffchip("signal", signal);
    sim.setOffchip("taps", taps);
    sim.run();

    int64_t tile = d.params().defaults()[0];
    double worst = 0;
    for (int64_t i = 0; i < tile; ++i) {
        double expect = 0;
        for (int64_t j = 0; j < k && j <= i; ++j)
            expect += signal[size_t(i - j)] * taps[size_t(j)];
        worst = std::max(worst, std::fabs(sim.offchip("out")[size_t(
                                              i)] -
                                          expect));
    }
    std::cout << "FIR functional check (first tile): max |diff| = "
              << worst << "\n";
    return 0;
}

/**
 * Black-Scholes accelerator — the paper's biggest FPGA win (16.7x).
 * Finds the best design, simulates it at Table II scale, verifies a
 * reduced-size run against the multithreaded CPU kernel, and reports
 * the modeled speedup over the paper's Xeon.
 *
 * Build & run:  ./build/examples/blackscholes_accel
 */

#include <cmath>
#include <iostream>

#include "apps/apps.hh"
#include "cpu/kernels.hh"
#include "cpu/roofline.hh"
#include "dse/explorer.hh"
#include "sim/functional.hh"
#include "sim/timing.hh"

using namespace dhdl;

int
main()
{
    // Full-size design for DSE + timing.
    Design design = apps::buildBlackscholes({});
    est::RuntimeEstimator rt;
    dse::Explorer explorer(est::calibratedEstimator(), rt);
    dse::ExploreConfig cfg;
    cfg.maxPoints = 1500;
    auto res = explorer.explore(design.graph(), cfg);
    auto best = res.bestIndex();
    if (!best) {
        std::cout << "No valid design found for this device.\n";
        return 1;
    }
    std::cout << "Best design of " << res.points.size()
              << " explored:";
    for (size_t i = 0; i < design.params().size(); ++i)
        std::cout << " " << design.params()[ParamId(i)].name << "="
                  << res.points[*best].binding.values[i];
    std::cout << "\n";

    Inst inst(design.graph(), res.points[*best].binding);
    auto timed = sim::TimingSim(inst).run();
    std::cout << "FPGA time for " << apps::PaperSizes::bsN
              << " options: " << timed.seconds * 1e3 << " ms\n";

    cpu::CpuPlatform xeon;
    cpu::CpuWorkload w;
    w.flops = 250.0 * double(apps::PaperSizes::bsN);
    w.bytes = 28.0 * double(apps::PaperSizes::bsN);
    w.computeEff = 0.075;
    double cpu_s = cpu::cpuTimeSeconds(xeon, w);
    std::cout << "Modeled 6-core Xeon time: " << cpu_s * 1e3
              << " ms  => speedup " << cpu_s / timed.seconds
              << "x (paper: 16.73x)\n\n";

    // Reduced-size functional verification against the CPU kernel.
    const int64_t n = 9216;
    Design small = apps::buildBlackscholes({n});
    Inst small_inst(small.graph(), small.params().defaults());
    sim::FunctionalSim fsim(small_inst);
    auto ot = apps::randomLabels(n, 1);
    auto sp = apps::randomVector(n, 2, 50, 150);
    auto st = apps::randomVector(n, 3, 50, 150);
    auto ra = apps::randomVector(n, 4, 0.01f, 0.1f);
    auto vo = apps::randomVector(n, 5, 0.1f, 0.6f);
    auto ti = apps::randomVector(n, 6, 0.2f, 2.0f);
    fsim.setOffchip("otype", apps::toDouble(ot));
    fsim.setOffchip("sptprice", apps::toDouble(sp));
    fsim.setOffchip("strike", apps::toDouble(st));
    fsim.setOffchip("rate", apps::toDouble(ra));
    fsim.setOffchip("volatility", apps::toDouble(vo));
    fsim.setOffchip("otime", apps::toDouble(ti));
    fsim.run();

    cpu::ThreadPool pool(4);
    std::vector<float> expect(static_cast<size_t>(n));
    cpu::blackscholes(pool, ot, sp, st, ra, vo, ti, expect);
    double worst = 0;
    const auto& got = fsim.offchip("prices");
    for (size_t i = 0; i < expect.size(); ++i)
        worst = std::max(worst,
                         std::fabs(got[i] - double(expect[i])));
    std::cout << "Functional check vs CPU kernel on " << n
              << " options: max |diff| = " << worst << "\n";
    return 0;
}

/**
 * Top-K selection with the Priority Queue template (Table I): stream
 * a large array through a hardware sorting queue that retains the K
 * smallest values — the streaming-analytics use case the paper's
 * template set anticipates but its benchmarks don't exercise.
 *
 * Build & run:  ./build/examples/topk_queue
 */

#include <algorithm>
#include <iostream>

#include "apps/datasets.hh"
#include "core/builder.hh"
#include "core/printer.hh"
#include "core/validate.hh"
#include "estimate/area_estimator.hh"
#include "estimate/runtime_estimator.hh"
#include "sim/functional.hh"

using namespace dhdl;

namespace {

Design
buildTopk(int64_t n, int64_t k)
{
    Design d("topk");
    ParamId ts = d.tileParam("tileSize", n, 0, 16384);
    ParamId m1 = d.toggleParam("M1toggle");
    Mem in = d.offchip("in", DType::f32(), {Sym::c(n)});
    Mem out = d.offchip("out", DType::f32(), {Sym::c(k)});
    d.accel([&](Scope& s) {
        Mem q = s.queue("q", DType::f32(), Sym::c(k));
        s.metaPipe(
            "M1", {ctr(n, Sym::p(ts))}, Sym::c(1), Sym::p(m1),
            [&](Scope& m, std::vector<Val> rv) {
                Mem t = m.bram("t", DType::f32(), {Sym::p(ts)});
                m.tileLoad(in, t, {rv[0]}, {Sym::p(ts)});
                m.pipe("PPush", {ctr(Sym::p(ts))}, Sym::c(1),
                       [&](Scope& p, std::vector<Val> ii) {
                           Val zero = p.constant(0.0, DType::i32());
                           p.store(q, {zero}, p.load(t, {ii[0]}));
                       });
            });
        Mem o = s.bram("o", DType::f32(), {Sym::c(k)});
        s.pipe("PDrain", {ctr(k)}, Sym::c(1),
               [&](Scope& p, std::vector<Val> ii) {
                   p.store(o, {ii[0]}, p.load(q, {ii[0]}));
               });
        s.tileStore(out, o, {}, {Sym::c(k)});
    });
    return d;
}

} // namespace

int
main()
{
    const int64_t n = 96'000, k = 16;
    Design d = buildTopk(n, k);
    validateOrThrow(d.graph());
    std::cout << printGraph(d.graph()) << "\n";

    Inst inst(d.graph(), d.params().defaults());
    auto area = est::calibratedEstimator().estimate(inst);
    auto rt = est::RuntimeEstimator().estimate(inst);
    std::cout << "estimated: " << int64_t(area.alms) << " ALMs, "
              << int64_t(area.brams) << " BRAMs, "
              << int64_t(rt.cycles) << " cycles ("
              << rt.seconds * 1e3 << " ms)\n";

    sim::FunctionalSim sim(inst);
    auto data = apps::randomVector(n, 42, 0.0f, 1e6f);
    sim.setOffchip("in", apps::toDouble(data));
    sim.run();

    auto expect = data;
    std::partial_sort(expect.begin(), expect.begin() + k,
                      expect.end());
    bool ok = true;
    for (int64_t i = 0; i < k; ++i)
        ok &= float(sim.offchip("out")[size_t(i)]) ==
              expect[size_t(i)];
    std::cout << "top-" << k << " of " << n << " values "
              << (ok ? "MATCH" : "MISMATCH")
              << " the std::partial_sort reference\n";
    return ok ? 0 : 1;
}

file(REMOVE_RECURSE
  "CMakeFiles/dse_tests.dir/dse/enumerate_test.cc.o"
  "CMakeFiles/dse_tests.dir/dse/enumerate_test.cc.o.d"
  "CMakeFiles/dse_tests.dir/dse/explorer_test.cc.o"
  "CMakeFiles/dse_tests.dir/dse/explorer_test.cc.o.d"
  "CMakeFiles/dse_tests.dir/dse/pareto_test.cc.o"
  "CMakeFiles/dse_tests.dir/dse/pareto_test.cc.o.d"
  "CMakeFiles/dse_tests.dir/dse/space_test.cc.o"
  "CMakeFiles/dse_tests.dir/dse/space_test.cc.o.d"
  "dse_tests"
  "dse_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/builder_test.cc.o"
  "CMakeFiles/core_tests.dir/core/builder_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/param_test.cc.o"
  "CMakeFiles/core_tests.dir/core/param_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/printer_test.cc.o"
  "CMakeFiles/core_tests.dir/core/printer_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/transform_test.cc.o"
  "CMakeFiles/core_tests.dir/core/transform_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/types_test.cc.o"
  "CMakeFiles/core_tests.dir/core/types_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/validate_test.cc.o"
  "CMakeFiles/core_tests.dir/core/validate_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

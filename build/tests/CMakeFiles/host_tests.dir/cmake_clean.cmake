file(REMOVE_RECURSE
  "CMakeFiles/host_tests.dir/host/accelerator_test.cc.o"
  "CMakeFiles/host_tests.dir/host/accelerator_test.cc.o.d"
  "host_tests"
  "host_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

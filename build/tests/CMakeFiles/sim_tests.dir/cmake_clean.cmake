file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/dram_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/dram_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/functional_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/functional_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/queue_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/queue_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/report_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/report_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/timing_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/timing_test.cc.o.d"
  "sim_tests"
  "sim_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

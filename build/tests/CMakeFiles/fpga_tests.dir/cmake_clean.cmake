file(REMOVE_RECURSE
  "CMakeFiles/fpga_tests.dir/fpga/characterize_test.cc.o"
  "CMakeFiles/fpga_tests.dir/fpga/characterize_test.cc.o.d"
  "CMakeFiles/fpga_tests.dir/fpga/silicon_test.cc.o"
  "CMakeFiles/fpga_tests.dir/fpga/silicon_test.cc.o.d"
  "CMakeFiles/fpga_tests.dir/fpga/toolchain_test.cc.o"
  "CMakeFiles/fpga_tests.dir/fpga/toolchain_test.cc.o.d"
  "fpga_tests"
  "fpga_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fpga_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/estimate_tests.dir/estimate/area_estimator_test.cc.o"
  "CMakeFiles/estimate_tests.dir/estimate/area_estimator_test.cc.o.d"
  "CMakeFiles/estimate_tests.dir/estimate/area_model_test.cc.o"
  "CMakeFiles/estimate_tests.dir/estimate/area_model_test.cc.o.d"
  "CMakeFiles/estimate_tests.dir/estimate/persist_test.cc.o"
  "CMakeFiles/estimate_tests.dir/estimate/persist_test.cc.o.d"
  "CMakeFiles/estimate_tests.dir/estimate/power_model_test.cc.o"
  "CMakeFiles/estimate_tests.dir/estimate/power_model_test.cc.o.d"
  "CMakeFiles/estimate_tests.dir/estimate/runtime_estimator_test.cc.o"
  "CMakeFiles/estimate_tests.dir/estimate/runtime_estimator_test.cc.o.d"
  "estimate_tests"
  "estimate_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

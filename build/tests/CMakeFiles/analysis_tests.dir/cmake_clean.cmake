file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/banking_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/banking_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/critical_path_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/critical_path_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/instance_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/instance_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/resources_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/resources_test.cc.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hls_tests.dir/hls/flatten_test.cc.o"
  "CMakeFiles/hls_tests.dir/hls/flatten_test.cc.o.d"
  "CMakeFiles/hls_tests.dir/hls/scheduler_test.cc.o"
  "CMakeFiles/hls_tests.dir/hls/scheduler_test.cc.o.d"
  "hls_tests"
  "hls_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hls_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

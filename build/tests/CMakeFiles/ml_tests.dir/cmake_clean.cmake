file(REMOVE_RECURSE
  "CMakeFiles/ml_tests.dir/ml/linreg_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/linreg_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/ml/mlp_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/mlp_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/ml/rng_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/rng_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/ml/scaler_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/scaler_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/ml/serialize_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/serialize_test.cc.o.d"
  "ml_tests"
  "ml_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/codegen_tests.dir/codegen/maxj_test.cc.o"
  "CMakeFiles/codegen_tests.dir/codegen/maxj_test.cc.o.d"
  "codegen_tests"
  "codegen_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

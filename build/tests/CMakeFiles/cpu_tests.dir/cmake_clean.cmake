file(REMOVE_RECURSE
  "CMakeFiles/cpu_tests.dir/cpu/kernels_test.cc.o"
  "CMakeFiles/cpu_tests.dir/cpu/kernels_test.cc.o.d"
  "CMakeFiles/cpu_tests.dir/cpu/roofline_test.cc.o"
  "CMakeFiles/cpu_tests.dir/cpu/roofline_test.cc.o.d"
  "CMakeFiles/cpu_tests.dir/cpu/thread_pool_test.cc.o"
  "CMakeFiles/cpu_tests.dir/cpu/thread_pool_test.cc.o.d"
  "cpu_tests"
  "cpu_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core_tests "/root/repo/build/tests/core_tests")
set_tests_properties(core_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_tests "/root/repo/build/tests/analysis_tests")
set_tests_properties(analysis_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ml_tests "/root/repo/build/tests/ml_tests")
set_tests_properties(ml_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;27;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fpga_tests "/root/repo/build/tests/fpga_tests")
set_tests_properties(fpga_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;35;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(estimate_tests "/root/repo/build/tests/estimate_tests")
set_tests_properties(estimate_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;41;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_tests "/root/repo/build/tests/sim_tests")
set_tests_properties(sim_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;49;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dse_tests "/root/repo/build/tests/dse_tests")
set_tests_properties(dse_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;57;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hls_tests "/root/repo/build/tests/hls_tests")
set_tests_properties(hls_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;64;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cpu_tests "/root/repo/build/tests/cpu_tests")
set_tests_properties(cpu_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;69;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(apps_tests "/root/repo/build/tests/apps_tests")
set_tests_properties(apps_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;75;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(codegen_tests "/root/repo/build/tests/codegen_tests")
set_tests_properties(codegen_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;81;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_tests "/root/repo/build/tests/integration_tests")
set_tests_properties(integration_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;85;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(host_tests "/root/repo/build/tests/host_tests")
set_tests_properties(host_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;90;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_tests "/root/repo/build/tests/property_tests")
set_tests_properties(property_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;94;dhdl_test;/root/repo/tests/CMakeLists.txt;0;")

# Empty dependencies file for dhdlc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dhdlc.dir/dhdlc.cc.o"
  "CMakeFiles/dhdlc.dir/dhdlc.cc.o.d"
  "dhdlc"
  "dhdlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

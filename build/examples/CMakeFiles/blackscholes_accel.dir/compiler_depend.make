# Empty compiler generated dependencies file for blackscholes_accel.
# This may be replaced when dependencies are built.

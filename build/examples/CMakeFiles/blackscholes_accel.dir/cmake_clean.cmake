file(REMOVE_RECURSE
  "CMakeFiles/blackscholes_accel.dir/blackscholes_accel.cpp.o"
  "CMakeFiles/blackscholes_accel.dir/blackscholes_accel.cpp.o.d"
  "blackscholes_accel"
  "blackscholes_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackscholes_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gda_dse.
# This may be replaced when dependencies are built.

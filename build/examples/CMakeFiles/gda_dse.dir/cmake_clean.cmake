file(REMOVE_RECURSE
  "CMakeFiles/gda_dse.dir/gda_dse.cpp.o"
  "CMakeFiles/gda_dse.dir/gda_dse.cpp.o.d"
  "gda_dse"
  "gda_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gda_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

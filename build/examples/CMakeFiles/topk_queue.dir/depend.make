# Empty dependencies file for topk_queue.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/topk_queue.dir/topk_queue.cpp.o"
  "CMakeFiles/topk_queue.dir/topk_queue.cpp.o.d"
  "topk_queue"
  "topk_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

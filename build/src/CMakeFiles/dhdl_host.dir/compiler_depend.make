# Empty compiler generated dependencies file for dhdl_host.
# This may be replaced when dependencies are built.

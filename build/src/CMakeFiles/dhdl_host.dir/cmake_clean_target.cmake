file(REMOVE_RECURSE
  "libdhdl_host.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dhdl_host.dir/host/accelerator.cc.o"
  "CMakeFiles/dhdl_host.dir/host/accelerator.cc.o.d"
  "libdhdl_host.a"
  "libdhdl_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdhdl_estimate.a"
)

# Empty compiler generated dependencies file for dhdl_estimate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dhdl_estimate.dir/estimate/area_estimator.cc.o"
  "CMakeFiles/dhdl_estimate.dir/estimate/area_estimator.cc.o.d"
  "CMakeFiles/dhdl_estimate.dir/estimate/area_model.cc.o"
  "CMakeFiles/dhdl_estimate.dir/estimate/area_model.cc.o.d"
  "CMakeFiles/dhdl_estimate.dir/estimate/power_model.cc.o"
  "CMakeFiles/dhdl_estimate.dir/estimate/power_model.cc.o.d"
  "CMakeFiles/dhdl_estimate.dir/estimate/runtime_estimator.cc.o"
  "CMakeFiles/dhdl_estimate.dir/estimate/runtime_estimator.cc.o.d"
  "libdhdl_estimate.a"
  "libdhdl_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdhdl_core.a"
)

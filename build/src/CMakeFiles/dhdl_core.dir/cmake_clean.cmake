file(REMOVE_RECURSE
  "CMakeFiles/dhdl_core.dir/core/builder.cc.o"
  "CMakeFiles/dhdl_core.dir/core/builder.cc.o.d"
  "CMakeFiles/dhdl_core.dir/core/graph.cc.o"
  "CMakeFiles/dhdl_core.dir/core/graph.cc.o.d"
  "CMakeFiles/dhdl_core.dir/core/node.cc.o"
  "CMakeFiles/dhdl_core.dir/core/node.cc.o.d"
  "CMakeFiles/dhdl_core.dir/core/param.cc.o"
  "CMakeFiles/dhdl_core.dir/core/param.cc.o.d"
  "CMakeFiles/dhdl_core.dir/core/printer.cc.o"
  "CMakeFiles/dhdl_core.dir/core/printer.cc.o.d"
  "CMakeFiles/dhdl_core.dir/core/transform.cc.o"
  "CMakeFiles/dhdl_core.dir/core/transform.cc.o.d"
  "CMakeFiles/dhdl_core.dir/core/types.cc.o"
  "CMakeFiles/dhdl_core.dir/core/types.cc.o.d"
  "CMakeFiles/dhdl_core.dir/core/validate.cc.o"
  "CMakeFiles/dhdl_core.dir/core/validate.cc.o.d"
  "libdhdl_core.a"
  "libdhdl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

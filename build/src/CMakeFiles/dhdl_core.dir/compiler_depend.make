# Empty compiler generated dependencies file for dhdl_core.
# This may be replaced when dependencies are built.

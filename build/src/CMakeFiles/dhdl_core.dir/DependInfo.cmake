
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builder.cc" "src/CMakeFiles/dhdl_core.dir/core/builder.cc.o" "gcc" "src/CMakeFiles/dhdl_core.dir/core/builder.cc.o.d"
  "/root/repo/src/core/graph.cc" "src/CMakeFiles/dhdl_core.dir/core/graph.cc.o" "gcc" "src/CMakeFiles/dhdl_core.dir/core/graph.cc.o.d"
  "/root/repo/src/core/node.cc" "src/CMakeFiles/dhdl_core.dir/core/node.cc.o" "gcc" "src/CMakeFiles/dhdl_core.dir/core/node.cc.o.d"
  "/root/repo/src/core/param.cc" "src/CMakeFiles/dhdl_core.dir/core/param.cc.o" "gcc" "src/CMakeFiles/dhdl_core.dir/core/param.cc.o.d"
  "/root/repo/src/core/printer.cc" "src/CMakeFiles/dhdl_core.dir/core/printer.cc.o" "gcc" "src/CMakeFiles/dhdl_core.dir/core/printer.cc.o.d"
  "/root/repo/src/core/transform.cc" "src/CMakeFiles/dhdl_core.dir/core/transform.cc.o" "gcc" "src/CMakeFiles/dhdl_core.dir/core/transform.cc.o.d"
  "/root/repo/src/core/types.cc" "src/CMakeFiles/dhdl_core.dir/core/types.cc.o" "gcc" "src/CMakeFiles/dhdl_core.dir/core/types.cc.o.d"
  "/root/repo/src/core/validate.cc" "src/CMakeFiles/dhdl_core.dir/core/validate.cc.o" "gcc" "src/CMakeFiles/dhdl_core.dir/core/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

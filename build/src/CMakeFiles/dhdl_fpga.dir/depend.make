# Empty dependencies file for dhdl_fpga.
# This may be replaced when dependencies are built.

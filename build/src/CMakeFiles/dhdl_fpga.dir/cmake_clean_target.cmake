file(REMOVE_RECURSE
  "libdhdl_fpga.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/characterize.cc" "src/CMakeFiles/dhdl_fpga.dir/fpga/characterize.cc.o" "gcc" "src/CMakeFiles/dhdl_fpga.dir/fpga/characterize.cc.o.d"
  "/root/repo/src/fpga/device.cc" "src/CMakeFiles/dhdl_fpga.dir/fpga/device.cc.o" "gcc" "src/CMakeFiles/dhdl_fpga.dir/fpga/device.cc.o.d"
  "/root/repo/src/fpga/silicon.cc" "src/CMakeFiles/dhdl_fpga.dir/fpga/silicon.cc.o" "gcc" "src/CMakeFiles/dhdl_fpga.dir/fpga/silicon.cc.o.d"
  "/root/repo/src/fpga/toolchain.cc" "src/CMakeFiles/dhdl_fpga.dir/fpga/toolchain.cc.o" "gcc" "src/CMakeFiles/dhdl_fpga.dir/fpga/toolchain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

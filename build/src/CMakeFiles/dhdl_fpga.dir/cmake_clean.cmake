file(REMOVE_RECURSE
  "CMakeFiles/dhdl_fpga.dir/fpga/characterize.cc.o"
  "CMakeFiles/dhdl_fpga.dir/fpga/characterize.cc.o.d"
  "CMakeFiles/dhdl_fpga.dir/fpga/device.cc.o"
  "CMakeFiles/dhdl_fpga.dir/fpga/device.cc.o.d"
  "CMakeFiles/dhdl_fpga.dir/fpga/silicon.cc.o"
  "CMakeFiles/dhdl_fpga.dir/fpga/silicon.cc.o.d"
  "CMakeFiles/dhdl_fpga.dir/fpga/toolchain.cc.o"
  "CMakeFiles/dhdl_fpga.dir/fpga/toolchain.cc.o.d"
  "libdhdl_fpga.a"
  "libdhdl_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dhdl_cpu.dir/cpu/kernels.cc.o"
  "CMakeFiles/dhdl_cpu.dir/cpu/kernels.cc.o.d"
  "CMakeFiles/dhdl_cpu.dir/cpu/roofline.cc.o"
  "CMakeFiles/dhdl_cpu.dir/cpu/roofline.cc.o.d"
  "CMakeFiles/dhdl_cpu.dir/cpu/thread_pool.cc.o"
  "CMakeFiles/dhdl_cpu.dir/cpu/thread_pool.cc.o.d"
  "libdhdl_cpu.a"
  "libdhdl_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdhdl_cpu.a"
)

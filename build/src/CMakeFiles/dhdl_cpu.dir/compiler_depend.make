# Empty compiler generated dependencies file for dhdl_cpu.
# This may be replaced when dependencies are built.

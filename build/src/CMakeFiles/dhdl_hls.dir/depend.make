# Empty dependencies file for dhdl_hls.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdhdl_hls.a"
)

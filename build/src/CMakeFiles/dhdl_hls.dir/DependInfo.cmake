
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/flatten.cc" "src/CMakeFiles/dhdl_hls.dir/hls/flatten.cc.o" "gcc" "src/CMakeFiles/dhdl_hls.dir/hls/flatten.cc.o.d"
  "/root/repo/src/hls/hls_estimator.cc" "src/CMakeFiles/dhdl_hls.dir/hls/hls_estimator.cc.o" "gcc" "src/CMakeFiles/dhdl_hls.dir/hls/hls_estimator.cc.o.d"
  "/root/repo/src/hls/scheduler.cc" "src/CMakeFiles/dhdl_hls.dir/hls/scheduler.cc.o" "gcc" "src/CMakeFiles/dhdl_hls.dir/hls/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dhdl_hls.dir/hls/flatten.cc.o"
  "CMakeFiles/dhdl_hls.dir/hls/flatten.cc.o.d"
  "CMakeFiles/dhdl_hls.dir/hls/hls_estimator.cc.o"
  "CMakeFiles/dhdl_hls.dir/hls/hls_estimator.cc.o.d"
  "CMakeFiles/dhdl_hls.dir/hls/scheduler.cc.o"
  "CMakeFiles/dhdl_hls.dir/hls/scheduler.cc.o.d"
  "libdhdl_hls.a"
  "libdhdl_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

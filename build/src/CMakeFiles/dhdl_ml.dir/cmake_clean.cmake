file(REMOVE_RECURSE
  "CMakeFiles/dhdl_ml.dir/ml/linreg.cc.o"
  "CMakeFiles/dhdl_ml.dir/ml/linreg.cc.o.d"
  "CMakeFiles/dhdl_ml.dir/ml/mlp.cc.o"
  "CMakeFiles/dhdl_ml.dir/ml/mlp.cc.o.d"
  "CMakeFiles/dhdl_ml.dir/ml/rng.cc.o"
  "CMakeFiles/dhdl_ml.dir/ml/rng.cc.o.d"
  "CMakeFiles/dhdl_ml.dir/ml/scaler.cc.o"
  "CMakeFiles/dhdl_ml.dir/ml/scaler.cc.o.d"
  "CMakeFiles/dhdl_ml.dir/ml/serialize.cc.o"
  "CMakeFiles/dhdl_ml.dir/ml/serialize.cc.o.d"
  "libdhdl_ml.a"
  "libdhdl_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdhdl_ml.a"
)

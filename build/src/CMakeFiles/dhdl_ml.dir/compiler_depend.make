# Empty compiler generated dependencies file for dhdl_ml.
# This may be replaced when dependencies are built.

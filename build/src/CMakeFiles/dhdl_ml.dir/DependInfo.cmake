
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/linreg.cc" "src/CMakeFiles/dhdl_ml.dir/ml/linreg.cc.o" "gcc" "src/CMakeFiles/dhdl_ml.dir/ml/linreg.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/CMakeFiles/dhdl_ml.dir/ml/mlp.cc.o" "gcc" "src/CMakeFiles/dhdl_ml.dir/ml/mlp.cc.o.d"
  "/root/repo/src/ml/rng.cc" "src/CMakeFiles/dhdl_ml.dir/ml/rng.cc.o" "gcc" "src/CMakeFiles/dhdl_ml.dir/ml/rng.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/CMakeFiles/dhdl_ml.dir/ml/scaler.cc.o" "gcc" "src/CMakeFiles/dhdl_ml.dir/ml/scaler.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/CMakeFiles/dhdl_ml.dir/ml/serialize.cc.o" "gcc" "src/CMakeFiles/dhdl_ml.dir/ml/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

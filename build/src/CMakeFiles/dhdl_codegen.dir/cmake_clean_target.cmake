file(REMOVE_RECURSE
  "libdhdl_codegen.a"
)

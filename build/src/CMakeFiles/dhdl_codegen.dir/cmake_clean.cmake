file(REMOVE_RECURSE
  "CMakeFiles/dhdl_codegen.dir/codegen/maxj.cc.o"
  "CMakeFiles/dhdl_codegen.dir/codegen/maxj.cc.o.d"
  "libdhdl_codegen.a"
  "libdhdl_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

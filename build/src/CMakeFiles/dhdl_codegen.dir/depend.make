# Empty dependencies file for dhdl_codegen.
# This may be replaced when dependencies are built.

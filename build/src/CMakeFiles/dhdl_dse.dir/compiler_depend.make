# Empty compiler generated dependencies file for dhdl_dse.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/explorer.cc" "src/CMakeFiles/dhdl_dse.dir/dse/explorer.cc.o" "gcc" "src/CMakeFiles/dhdl_dse.dir/dse/explorer.cc.o.d"
  "/root/repo/src/dse/pareto.cc" "src/CMakeFiles/dhdl_dse.dir/dse/pareto.cc.o" "gcc" "src/CMakeFiles/dhdl_dse.dir/dse/pareto.cc.o.d"
  "/root/repo/src/dse/space.cc" "src/CMakeFiles/dhdl_dse.dir/dse/space.cc.o" "gcc" "src/CMakeFiles/dhdl_dse.dir/dse/space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhdl_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dhdl_dse.dir/dse/explorer.cc.o"
  "CMakeFiles/dhdl_dse.dir/dse/explorer.cc.o.d"
  "CMakeFiles/dhdl_dse.dir/dse/pareto.cc.o"
  "CMakeFiles/dhdl_dse.dir/dse/pareto.cc.o.d"
  "CMakeFiles/dhdl_dse.dir/dse/space.cc.o"
  "CMakeFiles/dhdl_dse.dir/dse/space.cc.o.d"
  "libdhdl_dse.a"
  "libdhdl_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdhdl_dse.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/blackscholes.cc" "src/CMakeFiles/dhdl_apps.dir/apps/blackscholes.cc.o" "gcc" "src/CMakeFiles/dhdl_apps.dir/apps/blackscholes.cc.o.d"
  "/root/repo/src/apps/conv2d.cc" "src/CMakeFiles/dhdl_apps.dir/apps/conv2d.cc.o" "gcc" "src/CMakeFiles/dhdl_apps.dir/apps/conv2d.cc.o.d"
  "/root/repo/src/apps/datasets.cc" "src/CMakeFiles/dhdl_apps.dir/apps/datasets.cc.o" "gcc" "src/CMakeFiles/dhdl_apps.dir/apps/datasets.cc.o.d"
  "/root/repo/src/apps/dotproduct.cc" "src/CMakeFiles/dhdl_apps.dir/apps/dotproduct.cc.o" "gcc" "src/CMakeFiles/dhdl_apps.dir/apps/dotproduct.cc.o.d"
  "/root/repo/src/apps/gda.cc" "src/CMakeFiles/dhdl_apps.dir/apps/gda.cc.o" "gcc" "src/CMakeFiles/dhdl_apps.dir/apps/gda.cc.o.d"
  "/root/repo/src/apps/gemm.cc" "src/CMakeFiles/dhdl_apps.dir/apps/gemm.cc.o" "gcc" "src/CMakeFiles/dhdl_apps.dir/apps/gemm.cc.o.d"
  "/root/repo/src/apps/kmeans.cc" "src/CMakeFiles/dhdl_apps.dir/apps/kmeans.cc.o" "gcc" "src/CMakeFiles/dhdl_apps.dir/apps/kmeans.cc.o.d"
  "/root/repo/src/apps/outerprod.cc" "src/CMakeFiles/dhdl_apps.dir/apps/outerprod.cc.o" "gcc" "src/CMakeFiles/dhdl_apps.dir/apps/outerprod.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/CMakeFiles/dhdl_apps.dir/apps/registry.cc.o" "gcc" "src/CMakeFiles/dhdl_apps.dir/apps/registry.cc.o.d"
  "/root/repo/src/apps/tpchq6.cc" "src/CMakeFiles/dhdl_apps.dir/apps/tpchq6.cc.o" "gcc" "src/CMakeFiles/dhdl_apps.dir/apps/tpchq6.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhdl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

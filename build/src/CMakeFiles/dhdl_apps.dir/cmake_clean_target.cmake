file(REMOVE_RECURSE
  "libdhdl_apps.a"
)

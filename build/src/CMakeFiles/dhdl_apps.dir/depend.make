# Empty dependencies file for dhdl_apps.
# This may be replaced when dependencies are built.

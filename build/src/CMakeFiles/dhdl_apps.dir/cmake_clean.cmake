file(REMOVE_RECURSE
  "CMakeFiles/dhdl_apps.dir/apps/blackscholes.cc.o"
  "CMakeFiles/dhdl_apps.dir/apps/blackscholes.cc.o.d"
  "CMakeFiles/dhdl_apps.dir/apps/conv2d.cc.o"
  "CMakeFiles/dhdl_apps.dir/apps/conv2d.cc.o.d"
  "CMakeFiles/dhdl_apps.dir/apps/datasets.cc.o"
  "CMakeFiles/dhdl_apps.dir/apps/datasets.cc.o.d"
  "CMakeFiles/dhdl_apps.dir/apps/dotproduct.cc.o"
  "CMakeFiles/dhdl_apps.dir/apps/dotproduct.cc.o.d"
  "CMakeFiles/dhdl_apps.dir/apps/gda.cc.o"
  "CMakeFiles/dhdl_apps.dir/apps/gda.cc.o.d"
  "CMakeFiles/dhdl_apps.dir/apps/gemm.cc.o"
  "CMakeFiles/dhdl_apps.dir/apps/gemm.cc.o.d"
  "CMakeFiles/dhdl_apps.dir/apps/kmeans.cc.o"
  "CMakeFiles/dhdl_apps.dir/apps/kmeans.cc.o.d"
  "CMakeFiles/dhdl_apps.dir/apps/outerprod.cc.o"
  "CMakeFiles/dhdl_apps.dir/apps/outerprod.cc.o.d"
  "CMakeFiles/dhdl_apps.dir/apps/registry.cc.o"
  "CMakeFiles/dhdl_apps.dir/apps/registry.cc.o.d"
  "CMakeFiles/dhdl_apps.dir/apps/tpchq6.cc.o"
  "CMakeFiles/dhdl_apps.dir/apps/tpchq6.cc.o.d"
  "libdhdl_apps.a"
  "libdhdl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dram.cc" "src/CMakeFiles/dhdl_sim.dir/sim/dram.cc.o" "gcc" "src/CMakeFiles/dhdl_sim.dir/sim/dram.cc.o.d"
  "/root/repo/src/sim/functional.cc" "src/CMakeFiles/dhdl_sim.dir/sim/functional.cc.o" "gcc" "src/CMakeFiles/dhdl_sim.dir/sim/functional.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/dhdl_sim.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/dhdl_sim.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/timing.cc" "src/CMakeFiles/dhdl_sim.dir/sim/timing.cc.o" "gcc" "src/CMakeFiles/dhdl_sim.dir/sim/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

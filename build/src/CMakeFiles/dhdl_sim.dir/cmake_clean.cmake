file(REMOVE_RECURSE
  "CMakeFiles/dhdl_sim.dir/sim/dram.cc.o"
  "CMakeFiles/dhdl_sim.dir/sim/dram.cc.o.d"
  "CMakeFiles/dhdl_sim.dir/sim/functional.cc.o"
  "CMakeFiles/dhdl_sim.dir/sim/functional.cc.o.d"
  "CMakeFiles/dhdl_sim.dir/sim/report.cc.o"
  "CMakeFiles/dhdl_sim.dir/sim/report.cc.o.d"
  "CMakeFiles/dhdl_sim.dir/sim/timing.cc.o"
  "CMakeFiles/dhdl_sim.dir/sim/timing.cc.o.d"
  "libdhdl_sim.a"
  "libdhdl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

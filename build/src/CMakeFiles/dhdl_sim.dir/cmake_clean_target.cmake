file(REMOVE_RECURSE
  "libdhdl_sim.a"
)

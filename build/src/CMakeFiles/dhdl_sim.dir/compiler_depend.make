# Empty compiler generated dependencies file for dhdl_sim.
# This may be replaced when dependencies are built.

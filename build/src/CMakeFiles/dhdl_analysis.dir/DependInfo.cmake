
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/banking.cc" "src/CMakeFiles/dhdl_analysis.dir/analysis/banking.cc.o" "gcc" "src/CMakeFiles/dhdl_analysis.dir/analysis/banking.cc.o.d"
  "/root/repo/src/analysis/critical_path.cc" "src/CMakeFiles/dhdl_analysis.dir/analysis/critical_path.cc.o" "gcc" "src/CMakeFiles/dhdl_analysis.dir/analysis/critical_path.cc.o.d"
  "/root/repo/src/analysis/instance.cc" "src/CMakeFiles/dhdl_analysis.dir/analysis/instance.cc.o" "gcc" "src/CMakeFiles/dhdl_analysis.dir/analysis/instance.cc.o.d"
  "/root/repo/src/analysis/resources.cc" "src/CMakeFiles/dhdl_analysis.dir/analysis/resources.cc.o" "gcc" "src/CMakeFiles/dhdl_analysis.dir/analysis/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhdl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

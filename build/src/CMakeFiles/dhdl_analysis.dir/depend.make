# Empty dependencies file for dhdl_analysis.
# This may be replaced when dependencies are built.

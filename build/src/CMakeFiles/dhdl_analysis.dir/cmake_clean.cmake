file(REMOVE_RECURSE
  "CMakeFiles/dhdl_analysis.dir/analysis/banking.cc.o"
  "CMakeFiles/dhdl_analysis.dir/analysis/banking.cc.o.d"
  "CMakeFiles/dhdl_analysis.dir/analysis/critical_path.cc.o"
  "CMakeFiles/dhdl_analysis.dir/analysis/critical_path.cc.o.d"
  "CMakeFiles/dhdl_analysis.dir/analysis/instance.cc.o"
  "CMakeFiles/dhdl_analysis.dir/analysis/instance.cc.o.d"
  "CMakeFiles/dhdl_analysis.dir/analysis/resources.cc.o"
  "CMakeFiles/dhdl_analysis.dir/analysis/resources.cc.o.d"
  "libdhdl_analysis.a"
  "libdhdl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhdl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

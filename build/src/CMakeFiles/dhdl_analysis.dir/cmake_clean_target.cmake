file(REMOVE_RECURSE
  "libdhdl_analysis.a"
)

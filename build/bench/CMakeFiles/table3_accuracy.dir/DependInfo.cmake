
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cc" "bench/CMakeFiles/table3_accuracy.dir/bench_common.cc.o" "gcc" "bench/CMakeFiles/table3_accuracy.dir/bench_common.cc.o.d"
  "/root/repo/bench/table3_accuracy.cc" "bench/CMakeFiles/table3_accuracy.dir/table3_accuracy.cc.o" "gcc" "bench/CMakeFiles/table3_accuracy.dir/table3_accuracy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhdl_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dhdl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

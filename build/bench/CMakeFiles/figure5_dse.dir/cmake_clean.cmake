file(REMOVE_RECURSE
  "CMakeFiles/figure5_dse.dir/bench_common.cc.o"
  "CMakeFiles/figure5_dse.dir/bench_common.cc.o.d"
  "CMakeFiles/figure5_dse.dir/figure5_dse.cc.o"
  "CMakeFiles/figure5_dse.dir/figure5_dse.cc.o.d"
  "figure5_dse"
  "figure5_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

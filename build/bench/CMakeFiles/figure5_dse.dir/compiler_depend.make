# Empty compiler generated dependencies file for figure5_dse.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table4_speed.dir/bench_common.cc.o"
  "CMakeFiles/table4_speed.dir/bench_common.cc.o.d"
  "CMakeFiles/table4_speed.dir/table4_speed.cc.o"
  "CMakeFiles/table4_speed.dir/table4_speed.cc.o.d"
  "table4_speed"
  "table4_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

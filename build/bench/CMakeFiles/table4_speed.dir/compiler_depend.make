# Empty compiler generated dependencies file for table4_speed.
# This may be replaced when dependencies are built.

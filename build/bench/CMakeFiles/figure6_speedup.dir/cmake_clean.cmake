file(REMOVE_RECURSE
  "CMakeFiles/figure6_speedup.dir/bench_common.cc.o"
  "CMakeFiles/figure6_speedup.dir/bench_common.cc.o.d"
  "CMakeFiles/figure6_speedup.dir/figure6_speedup.cc.o"
  "CMakeFiles/figure6_speedup.dir/figure6_speedup.cc.o.d"
  "figure6_speedup"
  "figure6_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

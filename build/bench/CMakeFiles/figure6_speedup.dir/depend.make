# Empty dependencies file for figure6_speedup.
# This may be replaced when dependencies are built.

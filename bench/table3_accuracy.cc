/**
 * Table III — Average absolute error for resource usage and runtime.
 *
 * Methodology (Section V-B): for each benchmark, select five Pareto
 * points from design space exploration, "synthesize" each with the
 * vendor toolchain (here: the synthetic P&R flow) and run it (here:
 * the timing simulator), then compare the estimates against the
 * post-P&R report and the observed runtime.
 *
 * Paper row (average): ALMs 4.8%, DSPs 7.5%, BRAM 12.3%, runtime 6.1%.
 */

#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench_common.hh"
#include "fpga/toolchain.hh"
#include "sim/timing.hh"

using namespace dhdl;

namespace {

struct ErrorRow {
    std::string name;
    double alm = 0, dsp = 0, bram = 0, runtime = 0;
};

double
relErr(double est, double truth)
{
    if (truth <= 0)
        return est > 0 ? 1.0 : 0.0;
    return std::fabs(est - truth) / truth;
}

} // namespace

int
main()
{
    double scale = bench::benchScale();
    int points = bench::benchPoints();
    const auto& tc = est::defaultToolchain();

    std::cout << "Table III: average absolute error for resource "
                 "usage and runtime\n";
    std::cout << "(scale=" << scale << ", DSE points=" << points
              << ", 5 Pareto points per benchmark)\n\n";
    std::cout << std::left << std::setw(14) << "Benchmark"
              << std::right << std::setw(8) << "ALMs" << std::setw(8)
              << "DSPs" << std::setw(8) << "BRAM" << std::setw(10)
              << "Runtime" << "\n";
    bench::rule(48);

    ErrorRow avg{"Average"};
    int n_rows = 0;
    for (const auto& app : apps::allApps()) {
        Design d = app.build(scale);
        auto pareto =
            bench::selectParetoPoints(d.graph(), points, 5);
        if (pareto.empty()) {
            std::cout << std::left << std::setw(14) << app.name
                      << "  (no valid designs)\n";
            continue;
        }
        ErrorRow row{app.name};
        for (const auto& p : pareto) {
            Inst inst(d.graph(), p.binding);
            auto report = tc.synthesize(inst);
            auto timed = sim::TimingSim(inst).run();
            row.alm += relErr(p.area.alms, report.alms);
            row.dsp += relErr(p.area.dsps, report.dsps);
            row.bram += relErr(p.area.brams, report.brams);
            row.runtime += relErr(p.cycles, timed.cycles);
        }
        double k = double(pareto.size());
        row.alm /= k;
        row.dsp /= k;
        row.bram /= k;
        row.runtime /= k;

        std::cout << std::left << std::setw(14) << row.name
                  << std::right << std::setw(8)
                  << bench::pct(row.alm) << std::setw(8)
                  << bench::pct(row.dsp) << std::setw(8)
                  << bench::pct(row.bram) << std::setw(10)
                  << bench::pct(row.runtime) << "\n";
        avg.alm += row.alm;
        avg.dsp += row.dsp;
        avg.bram += row.bram;
        avg.runtime += row.runtime;
        ++n_rows;
    }
    bench::rule(48);
    if (n_rows > 0) {
        std::cout << std::left << std::setw(14) << "Average"
                  << std::right << std::setw(8)
                  << bench::pct(avg.alm / n_rows) << std::setw(8)
                  << bench::pct(avg.dsp / n_rows) << std::setw(8)
                  << bench::pct(avg.bram / n_rows) << std::setw(10)
                  << bench::pct(avg.runtime / n_rows) << "\n";
    }
    std::cout << "\nPaper (Table III) average: ALMs 4.8%  DSPs 7.5%  "
                 "BRAM 12.3%  runtime 6.1%\n";
    return 0;
}

#include "bench_common.hh"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dhdl::bench {

double
envDouble(const char* name, double def)
{
    const char* v = std::getenv(name);
    return v ? std::atof(v) : def;
}

int64_t
envInt(const char* name, int64_t def)
{
    const char* v = std::getenv(name);
    return v ? std::atoll(v) : def;
}

double
benchScale()
{
    return envDouble("DHDL_BENCH_SCALE", 1.0);
}

int
benchPoints()
{
    return int(envInt("DHDL_BENCH_POINTS", 5000));
}

const est::RuntimeEstimator&
runtimeEstimator()
{
    static est::RuntimeEstimator rt;
    return rt;
}

const dse::Explorer&
explorer()
{
    static dse::Explorer ex(est::calibratedEstimator(),
                            runtimeEstimator());
    return ex;
}

std::vector<dse::DesignPoint>
selectParetoPoints(const Graph& g, int max_points, int take,
                   uint64_t seed)
{
    dse::ExploreConfig cfg;
    cfg.maxPoints = max_points;
    cfg.seed = seed;
    auto res = explorer().explore(g, cfg);
    std::vector<dse::DesignPoint> out;
    if (res.pareto.empty())
        return out;
    size_t n = res.pareto.size();
    size_t want = size_t(take) < n ? size_t(take) : n;
    for (size_t i = 0; i < want; ++i) {
        size_t idx = want == 1 ? 0 : i * (n - 1) / (want - 1);
        out.push_back(res.points[res.pareto[idx]]);
    }
    return out;
}

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string
pct(double fraction)
{
    return fmt(fraction * 100.0, 1) + "%";
}

void
rule(int width)
{
    for (int i = 0; i < width; ++i)
        std::cout << '-';
    std::cout << "\n";
}

} // namespace dhdl::bench

/**
 * Ablation — the Section IV-C pruning heuristics. Compares, for each
 * benchmark:
 *   - the unpruned parameter-space size (every integer tile size and
 *     parallelization factor in range) against the pruned legal
 *     subspace (divisors only, banking inferred, memory caps), and
 *   - the quality of the best design found within a fixed sampling
 *     budget when sampling the pruned space vs sampling the raw
 *     space (raw samples are rounded to the nearest legal point,
 *     wasting budget on duplicates and cap violations).
 */

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <unordered_set>

#include "bench_common.hh"

using namespace dhdl;

namespace {

/** Unpruned size: every integer value in [min, min(max, divisorOf)]. */
double
unprunedSize(const ParamTable& params)
{
    double n = 1;
    for (size_t i = 0; i < params.size(); ++i) {
        const auto& d = params[ParamId(i)];
        double range;
        switch (d.kind) {
          case ParamKind::Toggle:
            range = 2;
            break;
          case ParamKind::Fixed:
            range = 1;
            break;
          default:
            range = double(std::min(
                d.maxValue,
                d.divisorOf > 0 ? d.divisorOf : d.maxValue));
            break;
        }
        n *= std::max(1.0, range);
    }
    return n;
}

/** Round a raw value onto the nearest legal value of a parameter. */
int64_t
snap(const std::vector<int64_t>& legal, int64_t v)
{
    auto it = std::lower_bound(legal.begin(), legal.end(), v);
    if (it == legal.end())
        return legal.back();
    if (it == legal.begin())
        return legal.front();
    return (*it - v) < (v - *(it - 1)) ? *it : *(it - 1);
}

} // namespace

int
main()
{
    int budget = int(bench::envInt("DHDL_ABL_BUDGET", 400));
    double scale = bench::benchScale();

    std::cout << "Ablation: divisor pruning of the design space "
                 "(sample budget "
              << budget << ")\n\n";
    std::cout << std::left << std::setw(14) << "Benchmark"
              << std::right << std::setw(13) << "raw space"
              << std::setw(13) << "pruned" << std::setw(11)
              << "reduction" << std::setw(14) << "best pruned"
              << std::setw(14) << "best raw" << "\n";
    bench::rule(79);

    for (const auto& app : apps::allApps()) {
        Design d = app.build(scale);
        dse::ParamSpace space(d.graph());
        double raw = unprunedSize(d.params());
        double pruned = space.sizeEstimate();

        // Pruned sampling: budget distinct legal points.
        dse::ExploreConfig cfg;
        cfg.maxPoints = budget;
        auto res = bench::explorer().explore(d.graph(), cfg);
        auto best = res.bestIndex();
        double best_pruned = best ? res.points[*best].cycles : -1;
        if (res.stats.failed)
            std::cout << "  (" << app.name << ": "
                      << res.stats.failed
                      << " points failed evaluation)\n";

        // Raw sampling: draw raw integers, snap to legal, dedupe; the
        // budget counts raw draws, so duplicates burn it.
        ml::Rng rng(0xAB2);
        std::unordered_set<uint64_t> seen;
        double best_raw = -1;
        for (int i = 0; i < budget; ++i) {
            ParamBinding b;
            for (size_t pi = 0; pi < d.params().size(); ++pi) {
                const auto& def = d.params()[ParamId(pi)];
                auto legal = d.params().legalValues(ParamId(pi));
                int64_t hi = std::min(
                    def.maxValue,
                    def.divisorOf > 0 ? def.divisorOf : def.maxValue);
                int64_t v = rng.uniformInt(def.minValue,
                                           std::max(def.minValue,
                                                    hi));
                b.values.push_back(snap(legal, v));
            }
            uint64_t h = 0x9e3779b97f4a7c15ull;
            for (int64_t v : b.values)
                h = ml::hashMix(h ^ uint64_t(v));
            if (!seen.insert(h).second)
                continue; // duplicate: budget wasted
            if (!space.isLegal(b))
                continue; // cap violation: budget wasted
            auto p = bench::explorer().evaluate(d.graph(), b);
            if (p.valid && (best_raw < 0 || p.cycles < best_raw))
                best_raw = p.cycles;
        }

        std::cout << std::left << std::setw(14) << app.name
                  << std::right << std::setw(13)
                  << bench::fmt(raw, 0) << std::setw(13)
                  << bench::fmt(pruned, 0) << std::setw(10)
                  << bench::fmt(raw / std::max(1.0, pruned), 0)
                  << "x" << std::setw(14)
                  << (best_pruned < 0 ? "-"
                                      : bench::fmt(best_pruned, 0))
                  << std::setw(14)
                  << (best_raw < 0 ? "-" : bench::fmt(best_raw, 0))
                  << "\n";
    }
    std::cout << "\nLower best-cycles is better; equal-budget raw "
                 "sampling wastes draws on\nduplicates after "
                 "snapping, so pruned sampling should match or win."
              << "\n";
    return 0;
}

/**
 * Figure 5 — Design space exploration scatter plots.
 *
 * For each of the seven benchmarks (panels A-U of the paper: one row
 * per benchmark, one column per resource), this bench samples the
 * legal design space, estimates every point, and emits:
 *   - a console summary (points, valid/invalid split, Pareto size,
 *     fastest design, and its parameters), and
 *   - one CSV per benchmark (out/figure5_<name>.csv) with columns
 *     alm_pct, dsp_pct, bram_pct, log10_cycles, valid, pareto —
 *     exactly the data plotted in the paper's scatter panels.
 *
 * Generated artifacts land under out/ (created on demand), never in
 * the repo root.
 */

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <set>

#include "bench_common.hh"

using namespace dhdl;

int
main()
{
    double scale = bench::benchScale();
    int points = bench::benchPoints();
    const auto& dev = est::calibratedEstimator().device();

    std::cout << "Figure 5: design space exploration (scale=" << scale
              << ", up to " << points << " legal points/benchmark)\n\n";
    std::filesystem::create_directories("out");

    std::cout << std::left << std::setw(14) << "Benchmark"
              << std::right << std::setw(9) << "points"
              << std::setw(8) << "failed" << std::setw(9) << "valid"
              << std::setw(9) << "pareto" << std::setw(14)
              << "best cycles" << std::setw(11) << "best %ALM"
              << std::setw(11) << "best %BRAM" << "\n";
    bench::rule(85);

    for (const auto& app : apps::allApps()) {
        Design d = app.build(scale);
        dse::ExploreConfig cfg;
        cfg.maxPoints = points;
        auto res = bench::explorer().explore(d.graph(), cfg);

        std::set<size_t> pareto(res.pareto.begin(),
                                res.pareto.end());

        std::ofstream csv("out/figure5_" + app.name + ".csv");
        csv << "alm_pct,dsp_pct,bram_pct,log10_cycles,valid,pareto\n";
        for (size_t i = 0; i < res.points.size(); ++i) {
            const auto& p = res.points[i];
            csv << 100.0 * p.area.alms / double(dev.alms) << ","
                << 100.0 * p.area.dsps / double(dev.dsps) << ","
                << 100.0 * p.area.brams / double(dev.m20ks) << ","
                << std::log10(std::max(1.0, p.cycles)) << ","
                << (p.valid ? 1 : 0) << ","
                << (pareto.count(i) ? 1 : 0) << "\n";
        }

        auto best = res.bestIndex();
        std::cout << std::left << std::setw(14) << app.name
                  << std::right << std::setw(9) << res.points.size()
                  << std::setw(8) << res.stats.failed << std::setw(9)
                  << res.stats.valid << std::setw(9)
                  << res.pareto.size();
        if (best) {
            const auto& bp = res.points[*best];
            std::cout << std::setw(14)
                      << bench::fmt(bp.cycles, 0) << std::setw(10)
                      << bench::fmt(
                             100.0 * bp.area.alms / double(dev.alms),
                             1)
                      << "%" << std::setw(10)
                      << bench::fmt(100.0 * bp.area.brams /
                                        double(dev.m20ks),
                                    1)
                      << "%";
        }
        std::cout << "\n";

        // Surface per-point failures instead of dying on them: a
        // sweep is useful even when some bindings cannot be built.
        if (res.stats.failed) {
            for (const auto& [label, count] : res.failureSummary())
                std::cout << "    failures: " << count << "x "
                          << label << "\n";
        }

        // Print the Pareto frontier series (the highlighted curve in
        // each panel), up to 8 points.
        size_t n = res.pareto.size();
        size_t show = n < 8 ? n : 8;
        for (size_t i = 0; i < show; ++i) {
            size_t idx = res.pareto[show == 1
                                        ? 0
                                        : i * (n - 1) / (show - 1)];
            const auto& p = res.points[idx];
            std::cout << "    pareto: cycles="
                      << bench::fmt(p.cycles, 0) << " alm="
                      << bench::fmt(
                             100.0 * p.area.alms / double(dev.alms),
                             1)
                      << "% dsp="
                      << bench::fmt(
                             100.0 * p.area.dsps / double(dev.dsps),
                             1)
                      << "% bram="
                      << bench::fmt(100.0 * p.area.brams /
                                        double(dev.m20ks),
                                    1)
                      << "%  [";
            for (size_t j = 0; j < p.binding.values.size(); ++j) {
                if (j)
                    std::cout << " ";
                std::cout << d.params()[ParamId(j)].name << "="
                          << p.binding.values[j];
            }
            std::cout << "]\n";
        }
    }
    std::cout << "\nCSV panels written to out/figure5_<benchmark>.csv\n";
    return 0;
}

/**
 * Serving-throughput tracker: an in-process dhdld Server saturated by
 * 1, 4 and 8 concurrent protocol clients, each submitting explore
 * jobs over the real loopback socket and waiting for results. Emits
 * BENCH_serving.json with requests/sec, p50/p99 end-to-end latency
 * and the plan-cache hit rate per concurrency level.
 *
 * Every client rotates through a small design mix (gda, kmeans,
 * dotproduct), so after each design's first submission the plan
 * cache serves every recompile — the measured steady state is the
 * one a long-lived daemon actually runs in.
 *
 * Knobs:
 *   DHDL_BENCH_SERVE_REQUESTS  requests per client (default 6)
 *   DHDL_BENCH_SERVE_POINTS    points per job (default 200)
 *   DHDL_BENCH_SERVE_SCALE     dataset scale (default 0.05)
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "estimate/area_estimator.hh"
#include "serve/client.hh"
#include "serve/server.hh"

using namespace dhdl;
using namespace dhdl::serve;

namespace {

/** Concurrency levels measured; the acceptance series. */
constexpr int kClientCounts[] = {1, 4, 8};

const char* kDesigns[] = {"gda", "kmeans", "dotproduct"};

struct Level {
    int clients = 0;
    size_t requests = 0;
    double seconds = 0;
    double reqPerSec = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    double hitRate = 0;
};

double
percentile(std::vector<double>& v, double p)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    size_t idx = size_t(p * double(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

/** One client's session: submit + wait-for-result, round robin over
 *  the design mix. Latency is submit-to-final-result wall clock —
 *  what a caller of the service actually experiences. */
void
clientLoop(int port, int id, int requests, int points, double scale,
           std::vector<double>& latenciesMs, bool& ok)
{
    using Clock = std::chrono::steady_clock;
    Client c;
    if (!c.connect(std::to_string(port)).ok() || !c.hello().ok()) {
        ok = false;
        return;
    }
    for (int i = 0; i < requests; ++i) {
        const char* design = kDesigns[(id + i) % 3];
        Json cfg = Json::object();
        cfg.set("points", points);
        cfg.set("seed", 7);
        Json req = Json::object();
        req.set("op", "submit");
        req.set("tenant", "bench-" + std::to_string(id));
        req.set("design", design);
        req.set("scale", scale);
        req.set("config", cfg);

        auto t0 = Clock::now();
        Json resp;
        if (!c.request(req, resp).ok() || !resp.find("ok") ||
            !resp.find("ok")->asBool()) {
            ok = false;
            return;
        }
        Json wait = Json::object();
        wait.set("op", "result");
        wait.set("job", resp.find("job")->asInt());
        wait.set("wait", true);
        if (!c.request(wait, resp).ok() || !resp.find("ok") ||
            !resp.find("ok")->asBool()) {
            ok = false;
            return;
        }
        latenciesMs.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
    }
}

Level
measure(int clients, int requests, int points, double scale)
{
    using Clock = std::chrono::steady_clock;
    ServerConfig cfg;
    cfg.executors = 4;
    cfg.jobThreads = 1;
    cfg.maxQueue = 256;
    cfg.tenantMaxJobs = 64;
    static est::RuntimeEstimator rt;
    Server server(est::calibratedEstimator(), rt, cfg);
    if (!server.start().ok()) {
        std::cerr << "bench_serving: server failed to start\n";
        std::exit(1);
    }

    std::vector<std::vector<double>> lats(static_cast<size_t>(clients));
    std::vector<char> oks(static_cast<size_t>(clients), 1);
    std::vector<std::thread> threads;
    auto t0 = Clock::now();
    for (int i = 0; i < clients; ++i)
        threads.emplace_back([&, i] {
            bool ok = true;
            clientLoop(server.port(), i, requests, points, scale,
                       lats[size_t(i)], ok);
            oks[size_t(i)] = ok;
        });
    for (auto& t : threads)
        t.join();
    double dt = std::chrono::duration<double>(Clock::now() - t0).count();

    server.requestStop();
    server.wait();

    Level lv;
    lv.clients = clients;
    std::vector<double> all;
    for (auto& l : lats)
        all.insert(all.end(), l.begin(), l.end());
    for (size_t i = 0; i < oks.size(); ++i)
        if (!oks[i])
            std::cerr << "bench_serving: client " << i
                      << " saw a failed request\n";
    lv.requests = all.size();
    lv.seconds = dt;
    lv.reqPerSec = dt > 0 ? double(all.size()) / dt : 0;
    lv.p50Ms = percentile(all, 0.50);
    lv.p99Ms = percentile(all, 0.99);
    auto cs = server.cacheStats();
    lv.cacheHits = cs.hits;
    lv.cacheMisses = cs.misses;
    uint64_t total = cs.hits + cs.misses;
    lv.hitRate = total ? double(cs.hits) / double(total) : 0;
    return lv;
}

void
writeJson(const std::vector<Level>& levels, int requests, int points,
          double scale)
{
    std::ofstream os("BENCH_serving.json");
    os << std::setprecision(10);
    os << "{\n  \"bench\": \"serving\",\n"
       << "  \"requests_per_client\": " << requests << ",\n"
       << "  \"points_per_job\": " << points << ",\n"
       << "  \"scale\": " << scale << ",\n  \"levels\": [\n";
    for (size_t i = 0; i < levels.size(); ++i) {
        const Level& l = levels[i];
        os << "    {\"clients\": " << l.clients << ", \"requests\": "
           << l.requests << ", \"seconds\": " << l.seconds
           << ", \"req_per_sec\": " << l.reqPerSec << ",\n     "
           << "\"p50_ms\": " << l.p50Ms << ", \"p99_ms\": " << l.p99Ms
           << ", \"cache_hits\": " << l.cacheHits
           << ", \"cache_misses\": " << l.cacheMisses
           << ", \"cache_hit_rate\": " << l.hitRate << "}"
           << (i + 1 < levels.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int
main()
{
    int requests = int(bench::envInt("DHDL_BENCH_SERVE_REQUESTS", 6));
    int points = int(bench::envInt("DHDL_BENCH_SERVE_POINTS", 200));
    double scale = bench::envDouble("DHDL_BENCH_SERVE_SCALE", 0.05);

    std::cout << "Serving throughput (" << requests
              << " requests/client, " << points << " points/job, scale="
              << scale << ")\n\n";

    // Warm the calibrated estimator: its one-off calibration must not
    // land inside the first measured level.
    (void)est::calibratedEstimator();

    std::cout << std::left << std::setw(9) << "clients" << std::right
              << std::setw(9) << "reqs" << std::setw(11) << "req/s"
              << std::setw(11) << "p50 ms" << std::setw(11) << "p99 ms"
              << std::setw(10) << "hit rate" << "\n";
    bench::rule(61);

    std::vector<Level> levels;
    for (int clients : kClientCounts) {
        Level lv = measure(clients, requests, points, scale);
        levels.push_back(lv);
        std::cout << std::left << std::setw(9) << lv.clients
                  << std::right << std::setw(9) << lv.requests
                  << std::setw(11) << bench::fmt(lv.reqPerSec, 1)
                  << std::setw(11) << bench::fmt(lv.p50Ms, 1)
                  << std::setw(11) << bench::fmt(lv.p99Ms, 1)
                  << std::setw(10) << bench::pct(lv.hitRate) << "\n";
    }
    writeJson(levels, requests, points, scale);
    std::cout << "\nwrote BENCH_serving.json\n";
    return 0;
}

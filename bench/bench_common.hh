/**
 * @file
 * Shared helpers for the experiment benches: environment-variable
 * knobs (dataset scale, DSE sample counts), Pareto-point selection,
 * and table formatting.
 *
 * Knobs:
 *   DHDL_BENCH_SCALE   dataset scale factor (default 1.0 = Table II)
 *   DHDL_BENCH_POINTS  DSE sample count (default 5000; paper: 75000)
 */

#ifndef DHDL_BENCH_BENCH_COMMON_HH
#define DHDL_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "apps/apps.hh"
#include "dse/explorer.hh"

namespace dhdl::bench {

/** Read a double knob from the environment. */
double envDouble(const char* name, double def);

/** Read an integer knob from the environment. */
int64_t envInt(const char* name, int64_t def);

/** Dataset scale for this bench run. */
double benchScale();

/** DSE sample budget for this bench run. */
int benchPoints();

/** The process-wide explorer over calibrated estimators. */
const dse::Explorer& explorer();

/** The process-wide runtime estimator. */
const est::RuntimeEstimator& runtimeEstimator();

/**
 * Explore a design and return up to `take` Pareto points spread
 * evenly along the frontier (the paper selects five per benchmark).
 */
std::vector<dse::DesignPoint>
selectParetoPoints(const Graph& g, int max_points, int take,
                   uint64_t seed = 0xD5Eull);

/** Render a value with fixed precision (for table rows). */
std::string fmt(double v, int precision = 1);

/** Percent with one decimal, e.g. "4.8%". */
std::string pct(double fraction);

/** Print a horizontal rule of the given width. */
void rule(int width);

} // namespace dhdl::bench

#endif // DHDL_BENCH_BENCH_COMMON_HH

/**
 * Ablation — the hybrid area estimator's ANN corrections vs an
 * analytic-only estimator using the fixed average factors from
 * Section IV-A prose (~10% routing, ~5% register duplication, ~4%
 * unavailable LUTs). Quantifies how much of Table III's accuracy the
 * design-level neural networks buy, on held-out random designs.
 * Also reports the throughput of one hybrid estimate via
 * google-benchmark (it must stay in the sub-millisecond regime that
 * makes 75,000-point DSE practical).
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench_common.hh"
#include "fpga/toolchain.hh"

using namespace dhdl;

namespace {

void
BM_HybridEstimateList(benchmark::State& state)
{
    const auto& est = est::calibratedEstimator();
    auto ts = fpga::randomTemplateList(est.device(), 123);
    for (auto _ : state) {
        auto e = est.estimateList(ts);
        benchmark::DoNotOptimize(e.alms);
    }
}
BENCHMARK(BM_HybridEstimateList);

} // namespace

int
main(int argc, char** argv)
{
    const auto& est = est::calibratedEstimator();
    const auto& tc = est::defaultToolchain();
    int n = int(bench::envInt("DHDL_ABL_DESIGNS", 80));

    double hyb_alm = 0, ana_alm = 0, hyb_bram = 0, ana_bram = 0;
    int used = 0;
    for (int i = 0; i < n; ++i) {
        auto ts = fpga::randomTemplateList(est.device(),
                                           0xAB1A7E + uint64_t(i));
        auto truth = tc.synthesizeList(ts);
        if (truth.alms < 1000)
            continue;
        auto hyb = est.estimateList(ts);
        auto ana = est.estimateAnalyticOnly(ts);
        hyb_alm += std::fabs(hyb.alms - truth.alms) / truth.alms;
        ana_alm += std::fabs(ana.alms - truth.alms) / truth.alms;
        hyb_bram += std::fabs(hyb.brams - truth.brams) /
                    std::max(1.0, truth.brams);
        ana_bram += std::fabs(ana.brams - truth.brams) /
                    std::max(1.0, truth.brams);
        ++used;
    }

    std::cout << "Ablation: hybrid (template models + ANNs) vs "
                 "analytic-only area estimation\n("
              << used << " held-out random designs)\n\n";
    std::cout << std::left << std::setw(26) << "Estimator"
              << std::right << std::setw(12) << "ALM err"
              << std::setw(12) << "BRAM err" << "\n";
    bench::rule(50);
    std::cout << std::left << std::setw(26) << "Hybrid (paper)"
              << std::right << std::setw(12)
              << bench::pct(hyb_alm / used) << std::setw(12)
              << bench::pct(hyb_bram / used) << "\n";
    std::cout << std::left << std::setw(26) << "Analytic-only"
              << std::right << std::setw(12)
              << bench::pct(ana_alm / used) << std::setw(12)
              << bench::pct(ana_bram / used) << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

/**
 * @file
 * Search-quality tracker: evaluations-to-front of the surrogate
 * strategy against the random sweep, per benchmark app. Emits
 * BENCH_dse_quality.json so the sample-efficiency of the guided
 * search is tracked alongside raw evaluation throughput.
 *
 * Method, per app:
 *
 *  1. One full random sweep evaluates the whole sample set; its
 *     Pareto front is the *reference front* for this (design, seed).
 *  2. Random baseline: random search with budget N evaluates exactly
 *     the first N points of the sample set, so its front after N
 *     evals is the front of the prefix — no re-evaluation needed.
 *     The ADRS of the prefix front is monotone non-increasing in N,
 *     so a binary search finds the smallest N within tolerance.
 *  3. Surrogate run: same design, same seed, same sample set. The
 *     front after round r is the front over points with round <= r;
 *     evals spent is the cumulative per-round evaluation count. The
 *     first round within tolerance sets the surrogate's cost.
 *
 * Distance is ADRS (average distance to reference set): for each
 * reference-front point, the smallest worst-axis relative gap to any
 * achieved point, averaged — 0 when the achieved front covers the
 * reference everywhere within rounding.
 *
 * Knobs:
 *   DHDL_BENCH_SCALE    dataset scale factor (default 1.0)
 *   DHDL_QUALITY_POINTS points sampled per app (default 2000)
 *   DHDL_QUALITY_TOL    ADRS tolerance (default 0.02)
 *   DHDL_QUALITY_APPS   comma list to restrict apps (default: all 8)
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "dse/pareto.hh"

using namespace dhdl;

namespace {

using XY = std::pair<double, double>;

int
qualityPoints()
{
    return int(bench::envInt("DHDL_QUALITY_POINTS", 2000));
}

double
qualityTol()
{
    return bench::envDouble("DHDL_QUALITY_TOL", 0.02);
}

/** The (alms, cycles) front over a bag of objective pairs. */
std::vector<XY>
frontOf(const std::vector<XY>& pts)
{
    auto idx = dse::paretoFront(
        pts.size(), [&](size_t i) { return pts[i].first; },
        [&](size_t i) { return pts[i].second; });
    std::vector<XY> out;
    out.reserve(idx.size());
    for (size_t i : idx)
        out.push_back(pts[i]);
    return out;
}

/**
 * Average distance to the reference set. Per reference point, the
 * best achievable worst-axis relative gap over the achieved front;
 * averaged over the reference front. 0 = reference reached.
 */
double
adrs(const std::vector<XY>& ref, const std::vector<XY>& got)
{
    if (ref.empty())
        return 0;
    if (got.empty())
        return 1e30;
    double sum = 0;
    for (const XY& r : ref) {
        double best = 1e30;
        for (const XY& g : got) {
            const double dx =
                r.first > 0 ? (g.first - r.first) / r.first : 0;
            const double dy = r.second > 0
                                  ? (g.second - r.second) / r.second
                                  : 0;
            best = std::min(best, std::max({dx, dy, 0.0}));
        }
        sum += best;
    }
    return sum / double(ref.size());
}

struct Row {
    std::string app;
    size_t sampled = 0;
    size_t refFront = 0;
    double tol = 0;
    size_t randomEvals = 0;    //!< Prefix length reaching tolerance.
    size_t surrogateEvals = 0; //!< Cumulative evals reaching it.
    int surrogateRounds = 0;   //!< Rounds spent to get there.
    bool reached = false;      //!< Surrogate got within tolerance.
    double speedup = 0;        //!< randomEvals / surrogateEvals.
    std::vector<double> seedSpeedups; //!< One entry per seed tried.
};

Row
measureApp(const std::string& name, double scale, int points,
           double tol, uint64_t seed)
{
    Design d = apps::buildApp(name, scale);

    // 1. Reference: the full random sweep.
    dse::ExploreConfig cfg;
    cfg.maxPoints = points;
    cfg.seed = seed;
    auto ref = bench::explorer().explore(d.graph(), cfg);
    std::vector<XY> refFront;
    for (size_t i : ref.pareto)
        refFront.push_back(
            {ref.points[i].area.alms, double(ref.points[i].cycles)});

    Row r;
    r.app = name;
    r.sampled = ref.stats.total;
    r.refFront = refFront.size();
    r.tol = tol;

    // 2. Random baseline: smallest prefix within tolerance. The
    //    prefix front only improves with N, so ADRS is monotone and
    //    the threshold is binary-searchable.
    auto prefixAdrs = [&](size_t n) {
        std::vector<XY> pts;
        for (size_t i = 0; i < n && i < ref.points.size(); ++i)
            if (ref.points[i].valid)
                pts.push_back({ref.points[i].area.alms,
                               double(ref.points[i].cycles)});
        return adrs(refFront, frontOf(pts));
    };
    auto randomAt = [&](double t) {
        size_t lo = 1, hi = ref.points.size();
        while (lo < hi) {
            const size_t mid = lo + (hi - lo) / 2;
            if (prefixAdrs(mid) <= t)
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    };
    r.randomEvals = randomAt(tol);

    // 3. Surrogate: same seed and sample set, guided rounds.
    auto scfg = cfg;
    scfg.strategy = dse::StrategyKind::Surrogate;
    scfg.surrogate.initialPoints =
        int(bench::envInt("DHDL_QUALITY_INITIAL",
                          scfg.surrogate.initialPoints));
    scfg.surrogate.roundGrowth = bench::envDouble(
        "DHDL_QUALITY_GROWTH", scfg.surrogate.roundGrowth);
    scfg.surrogate.epsilon = bench::envDouble(
        "DHDL_QUALITY_EPSILON", scfg.surrogate.epsilon);
    scfg.surrogate.useMlp =
        bench::envInt("DHDL_QUALITY_MLP", scfg.surrogate.useMlp) != 0;
    scfg.surrogate.trainEpochs =
        int(bench::envInt("DHDL_QUALITY_EPOCHS",
                          scfg.surrogate.trainEpochs));
    auto sur = bench::explorer().explore(d.graph(), scfg);

    // The surrogate's evaluation sequence: rounds in order, ranked
    // proposal order within each round. Its prefix ADRS is monotone
    // for the same reason the random prefix is, so the same binary
    // search applies — both baselines are measured at
    // single-evaluation granularity.
    std::vector<size_t> order;
    for (const dse::RoundStats& rs : sur.stats.rounds)
        order.insert(order.end(), rs.evalOrder.begin(),
                     rs.evalOrder.end());
    auto surPrefixAdrs = [&](size_t n) {
        std::vector<XY> pts;
        for (size_t k = 0; k < n && k < order.size(); ++k) {
            const dse::DesignPoint& p = sur.points[order[k]];
            if (p.valid)
                pts.push_back({p.area.alms, double(p.cycles)});
        }
        return adrs(refFront, frontOf(pts));
    };
    auto surrogateAt = [&](double t, bool* ok) {
        if (order.empty() || surPrefixAdrs(order.size()) > t) {
            *ok = false;
            return order.size();
        }
        *ok = true;
        size_t slo = 1, shi = order.size();
        while (slo < shi) {
            const size_t mid = slo + (shi - slo) / 2;
            if (surPrefixAdrs(mid) <= t)
                shi = mid;
            else
                slo = mid + 1;
        }
        return slo;
    };
    r.surrogateEvals = surrogateAt(tol, &r.reached);
    {
        size_t seen = 0;
        for (const dse::RoundStats& rs : sur.stats.rounds) {
            seen += rs.evalOrder.size();
            ++r.surrogateRounds;
            if (r.reached && seen >= r.surrogateEvals)
                break;
        }
    }
    r.speedup = r.surrogateEvals
                    ? double(r.randomEvals) / double(r.surrogateEvals)
                    : 0;

    // Optional tolerance sweep from the same pair of runs: ratio as
    // a function of how close to the reference front "reached" is.
    if (const char* env = std::getenv("DHDL_QUALITY_SWEEP")) {
        std::stringstream ss(env);
        std::string tok;
        std::cout << "  sweep " << name << ":";
        while (std::getline(ss, tok, ',')) {
            const double t = std::stod(tok);
            bool ok = false;
            const size_t se = surrogateAt(t, &ok);
            const size_t re = randomAt(t);
            std::cout << "  tol=" << t << " " << re << "/" << se
                      << (ok ? "=" : ">") << std::fixed
                      << std::setprecision(1)
                      << (se ? double(re) / double(se) : 0.0)
                      << "x" << std::defaultfloat
                      << std::setprecision(6);
        }
        std::cout << "\n";
    }
    return r;
}

void
writeJson(const std::vector<Row>& rows, double scale, int points)
{
    std::ofstream os("BENCH_dse_quality.json");
    os << std::setprecision(10);
    os << "{\n  \"bench\": \"dse_quality\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"points_per_app\": " << points << ",\n  \"apps\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        os << "    {\"app\": \"" << r.app << "\", \"sampled\": "
           << r.sampled << ", \"ref_front\": " << r.refFront
           << ", \"tol\": " << r.tol << ",\n     \"random_evals\": "
           << r.randomEvals << ", \"surrogate_evals\": "
           << r.surrogateEvals << ", \"surrogate_rounds\": "
           << r.surrogateRounds << ", \"reached\": "
           << (r.reached ? "true" : "false") << ", \"speedup\": "
           << r.speedup << ",\n     \"seed_speedups\": [";
        for (size_t s = 0; s < r.seedSpeedups.size(); ++s)
            os << (s ? ", " : "") << r.seedSpeedups[s];
        os << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

std::vector<std::string>
appNames()
{
    std::vector<std::string> names;
    if (const char* env = std::getenv("DHDL_QUALITY_APPS")) {
        std::stringstream ss(env);
        std::string tok;
        while (std::getline(ss, tok, ','))
            if (!tok.empty())
                names.push_back(tok);
        return names;
    }
    for (const auto& app : apps::allApps())
        names.push_back(app.name);
    names.push_back("conv2d");
    return names;
}

} // namespace

int
main()
{
    const double scale = bench::benchScale();
    const int points = qualityPoints();
    const double tol = qualityTol();

    std::cout << "DSE search quality (scale=" << scale << ", up to "
              << points << " points/app, ADRS tol=" << tol << ")\n\n";
    (void)est::calibratedEstimator();

    std::cout << std::left << std::setw(14) << "Benchmark"
              << std::right << std::setw(9) << "sampled"
              << std::setw(7) << "front" << std::setw(10) << "random"
              << std::setw(11) << "surrogate" << std::setw(8)
              << "rounds" << std::setw(9) << "speedup" << "\n";
    bench::rule(68);

    // Evals-to-front is a tail statistic (the last uncovered front
    // point dominates), so a single seed is noisy. Measure three
    // seeds per app and report the median-speedup run.
    const uint64_t seeds[3] = {0xD5Eull, 0x1D5Eull, 0x2D5Eull};

    std::vector<Row> rows;
    for (const std::string& name : appNames()) {
        std::vector<Row> trials;
        std::vector<double> sp;
        for (uint64_t s : seeds) {
            trials.push_back(measureApp(name, scale, points, tol, s));
            sp.push_back(trials.back().speedup);
        }
        std::sort(trials.begin(), trials.end(),
                  [](const Row& a, const Row& b) {
                      return a.speedup < b.speedup;
                  });
        Row r = trials[1];
        r.seedSpeedups = sp;
        rows.push_back(r);
        std::cout << std::left << std::setw(14) << r.app << std::right
                  << std::setw(9) << r.sampled << std::setw(7)
                  << r.refFront << std::setw(10) << r.randomEvals
                  << std::setw(11) << r.surrogateEvals << std::setw(8)
                  << r.surrogateRounds << std::setw(9)
                  << bench::fmt(r.speedup, 1)
                  << (r.reached ? "" : "  (tolerance not reached)")
                  << "\n";
    }
    writeJson(rows, scale, points);
    std::cout << "\nwrote BENCH_dse_quality.json\n";
    return 0;
}
